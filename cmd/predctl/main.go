// Command predctl operates a predserverd cluster.
//
//	predctl rebalance -from URL[,URL...] -to URL[,URL...]
//	predctl status -nodes URL[,URL...]
//
// rebalance drives an N→M membership change with the session-handoff
// protocol: every node of the old membership exports the sessions the
// new rendezvous map assigns elsewhere, each session is imported into
// its new owner, and only after every import succeeded is the source
// told to drop its copies. A pass that dies mid-transfer (node crash,
// network cut, injected fault) is retried from the export; imports are
// last-writer-wins on observation count, so retries converge without
// double-counting and without merging.
//
// status probes each node's /healthz, /readyz and /v1/stats and prints
// one line per node — the operator's view during a rolling restart or
// resize.
//
// Examples:
//
//	# grow 2 → 3: move only the paths the new map assigns to the new node
//	predctl rebalance -from :8455,:8456 -to :8455,:8456,:8457
//
//	# shrink 3 → 2: the leaving node exports everything it holds
//	predctl rebalance -from :8455,:8456,:8457 -to :8455,:8456
//
//	predctl status -nodes :8455,:8456,:8457
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/predsvc"
	"repro/internal/predsvc/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("predctl: ")
	if len(os.Args) < 2 {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	switch os.Args[1] {
	case "rebalance":
		rebalanceCmd(ctx, os.Args[2:])
	case "status":
		statusCmd(ctx, os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  predctl rebalance -from URL[,URL...] -to URL[,URL...] [-attempts N] [-q]
  predctl status -nodes URL[,URL...]`)
	os.Exit(2)
}

func rebalanceCmd(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("rebalance", flag.ExitOnError)
	from := fs.String("from", "", "comma-separated base URLs of the current membership")
	to := fs.String("to", "", "comma-separated base URLs of the new membership")
	attempts := fs.Int("attempts", 5, "retry cap per source node's handoff pass")
	quiet := fs.Bool("q", false, "suppress per-source progress lines")
	fs.Parse(args)
	fromNodes, toNodes := splitNodes(*from), splitNodes(*to)
	if len(fromNodes) == 0 || len(toNodes) == 0 {
		log.Fatal("rebalance needs both -from and -to")
	}
	cfg := predsvc.RebalanceConfig{
		From:     fromNodes,
		To:       toNodes,
		Attempts: *attempts,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	rep, err := predsvc.Rebalance(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
}

func statusCmd(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	nodeList := fs.String("nodes", "", "comma-separated base URLs to probe")
	fs.Parse(args)
	nodes := splitNodes(*nodeList)
	if len(nodes) == 0 {
		log.Fatal("status needs -nodes")
	}
	cc := cluster.NewClient(cluster.ClientConfig{Nodes: nodes, RetryDeadline: -1})
	exit := 0
	for _, n := range nodes {
		healthy, ready := cc.Probe(ctx, n)
		line := fmt.Sprintf("%-28s healthy=%-5v ready=%-5v", n, healthy, ready)
		if st, err := fetchStats(ctx, n); err == nil {
			line += fmt.Sprintf(" paths=%-6d draining=%-5v observations=%d",
				st.Paths, st.Draining, st.Metrics.Observations)
		}
		fmt.Println(line)
		if !healthy {
			exit = 1
		}
	}
	os.Exit(exit)
}

func fetchStats(ctx context.Context, node string) (*predsvc.StatsResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st predsvc.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// splitNodes parses a comma-separated node list, accepting the same bare
// host:port forms predserverd's -addr takes.
func splitNodes(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			if !strings.Contains(n, "://") {
				n = "http://" + n
			}
			out = append(out, n)
		}
	}
	return out
}
