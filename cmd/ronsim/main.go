// Command ronsim collects a measurement dataset on the simulated RON-style
// testbed and writes it to disk for later analysis by cmd/repro.
//
// Usage:
//
//	ronsim [-out data/d1.json.gz] [-seed 1] [-full] [-second]
//
// By default a scaled-down campaign runs (12 paths × 2 traces × 40 epochs);
// -full restores the paper's 35 × 7 × 150 scale (slow). -second collects
// the Mar-2006-style second dataset with 120 s checkpointed transfers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/testbed"
	"repro/internal/traceio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ronsim: ")

	out := flag.String("out", "", "output file (.json or .json.gz); default depends on -second")
	seed := flag.Int64("seed", 1, "campaign seed")
	full := flag.Bool("full", false, "run at the paper's full scale (35x7x150; slow)")
	second := flag.Bool("second", false, "collect the second (120s-transfer) dataset for Fig 11")
	workers := flag.Int("workers", 0, "parallel trace workers (0 = GOMAXPROCS)")
	flag.Parse()

	var cfg testbed.RunConfig
	name := "d1"
	switch {
	case *second:
		cfg = testbed.SecondSet(*seed, !*full)
		name = "d2"
	case *full:
		cfg = testbed.PaperScale(*seed)
	default:
		cfg = testbed.DefaultScaled(*seed)
	}
	cfg.Parallelism = *workers
	if *out == "" {
		*out = fmt.Sprintf("data/%s-seed%d.json.gz", name, *seed)
	}

	start := time.Now()
	ds := testbed.Collect(cfg)
	log.Printf("collected %d traces / %d epochs in %v", len(ds.Traces), ds.Epochs(), time.Since(start).Round(time.Second))

	if err := traceio.Save(*out, ds); err != nil {
		log.Printf("save: %v", err)
		os.Exit(1)
	}
	log.Printf("wrote %s", *out)
}
