// Command ronsim collects a measurement dataset on the simulated RON-style
// testbed and writes it to disk for later analysis by cmd/repro.
//
// Usage:
//
//	ronsim [-out data/d1.json.gz] [-seed 1] [-full] [-second]
//	       [-workers N] [-progress bar|jsonl|off] [-retries N]
//
// By default a scaled-down campaign runs (12 paths × 2 traces × 40 epochs);
// -full restores the paper's 35 × 7 × 150 scale (slow). -second collects
// the Mar-2006-style second dataset with 120 s checkpointed transfers.
//
// Collection runs on the campaign runner: live progress (trace counts,
// epoch rate, ETA) goes to stderr, -progress=jsonl emits machine-readable
// JSON lines instead, and a trace that faults is retried with the same
// seed rather than aborting the campaign. Interrupting with Ctrl-C stops
// at the next epoch boundaries and saves the completed traces as a
// partial dataset.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/testbed"
	"repro/internal/traceio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ronsim: ")

	out := flag.String("out", "", "output file (.json or .json.gz); default depends on -second")
	seed := flag.Int64("seed", 1, "campaign seed")
	full := flag.Bool("full", false, "run at the paper's full scale (35x7x150; slow)")
	second := flag.Bool("second", false, "collect the second (120s-transfer) dataset for Fig 11")
	workers := flag.Int("workers", 0, "parallel trace workers (0 = GOMAXPROCS)")
	progress := flag.String("progress", "bar", "progress reporting: bar | jsonl | off")
	retries := flag.Int("retries", 1, "retries per faulted trace (same seed); negative disables")
	flag.Parse()

	var cfg testbed.RunConfig
	name := "d1"
	switch {
	case *second:
		cfg = testbed.SecondSet(*seed, !*full)
		name = "d2"
	case *full:
		cfg = testbed.PaperScale(*seed)
	default:
		cfg = testbed.DefaultScaled(*seed)
	}
	cfg.Parallelism = *workers
	cfg.Retries = *retries
	if *out == "" {
		*out = fmt.Sprintf("data/%s-seed%d.json.gz", name, *seed)
	}

	obs, err := observerFor(*progress)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Observer = obs

	// Ctrl-C / SIGTERM cancels the campaign; traces abort at their next
	// epoch boundary and whatever completed is still saved below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	ds, err := testbed.CollectContext(ctx, cfg)
	partial := false
	if err != nil {
		if errors.Is(err, context.Canceled) {
			partial = true
			log.Printf("interrupted; keeping %d completed traces", len(ds.Traces))
		} else {
			// Trace faults: the campaign carried on without them.
			log.Printf("completed with failed traces: %v", err)
		}
	}
	log.Printf("collected %d traces / %d epochs in %v", len(ds.Traces), ds.Epochs(), time.Since(start).Round(time.Second))

	if len(ds.Traces) == 0 {
		log.Print("nothing to save")
		os.Exit(1)
	}
	if partial {
		ds.Label += "-partial"
	}
	if err := traceio.Save(*out, ds); err != nil {
		log.Printf("save: %v", err)
		os.Exit(1)
	}
	log.Printf("wrote %s", *out)
	if partial {
		os.Exit(1)
	}
}

// observerFor maps the -progress flag to a campaign observer.
func observerFor(mode string) (campaign.Observer, error) {
	switch mode {
	case "bar":
		return campaign.NewProgress(os.Stderr), nil
	case "jsonl":
		return campaign.NewJSONL(os.Stderr), nil
	case "off", "none", "":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown -progress mode %q (want bar, jsonl or off)", mode)
	}
}
