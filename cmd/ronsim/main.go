// Command ronsim collects a measurement dataset on the simulated RON-style
// testbed and writes it to disk for later analysis by cmd/repro.
//
// Usage:
//
//	ronsim [-out data/d1.json.gz] [-seed 1] [-full] [-second]
//	       [-scenarios] [-per-scenario N]
//	       [-workers N] [-progress bar|jsonl|off] [-retries N]
//	       [-paths N] [-traces N] [-epochs N] [-stream=false]
//	       [-obs-addr :6060] [-obs-dump dir]
//
// By default a scaled-down campaign runs (12 paths × 2 traces × 40 epochs);
// -full restores the paper's 35 × 7 × 150 scale (slow). -second collects
// the Mar-2006-style second dataset with 120 s checkpointed transfers.
// -scenarios collects the CC × link scenario matrix (reno/cubic/bbr
// senders over droptail/randomdrop/cellular/rwnd-limited bottlenecks,
// -per-scenario paths per cell) for the ext-cc experiment.
// -paths/-traces/-epochs shrink (or grow) any scale — CI uses them to make
// a seconds-long run that still exercises the whole pipeline.
//
// -obs-addr serves live observability endpoints (/metrics Prometheus
// exposition, /debug/pprof/ profiles, /debug/trace span timeline) while
// the campaign runs; -obs-dump writes the same telemetry to files
// (trace.json, trace.txt, metrics.prom) when it finishes. Either flag
// enables instrumentation; with neither, the campaign runs untraced.
//
// Collection runs on the campaign runner: live progress (trace counts,
// epoch rate, ETA) goes to stderr, -progress=jsonl emits machine-readable
// JSON lines instead, and a trace that faults is retried with the same
// seed rather than aborting the campaign. Interrupting with Ctrl-C stops
// at the next epoch boundaries and saves the completed traces as a
// partial dataset.
//
// By default traces stream to disk as they complete (record-per-epoch
// inside the optionally-gzipped output), so memory use is constant even
// for 10k-path campaigns; cmd/repro auto-detects the format.
// -stream=false restores the legacy materialize-then-save behavior.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/testbed"
	"repro/internal/traceio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ronsim: ")

	out := flag.String("out", "", "output file (.json or .json.gz); default depends on -second")
	seed := flag.Int64("seed", 1, "campaign seed")
	full := flag.Bool("full", false, "run at the paper's full scale (35x7x150; slow)")
	second := flag.Bool("second", false, "collect the second (120s-transfer) dataset for Fig 11")
	scenarios := flag.Bool("scenarios", false, "collect the CC × link scenario-matrix dataset for ext-cc")
	perScenario := flag.Int("per-scenario", 0, "scenario mode: paths per (sender × link) cell (0 = 1)")
	workers := flag.Int("workers", 0, "parallel trace workers (0 = GOMAXPROCS)")
	progress := flag.String("progress", "bar", "progress reporting: bar | jsonl | off")
	retries := flag.Int("retries", 1, "retries per faulted trace (same seed); negative disables")
	paths := flag.Int("paths", 0, "override the catalog's path count (0 = per-scale default)")
	traces := flag.Int("traces", 0, "override traces per path (0 = per-scale default)")
	epochs := flag.Int("epochs", 0, "override epochs per trace (0 = per-scale default)")
	obsAddr := flag.String("obs-addr", "", "serve live /metrics + /debug/pprof/ + /debug/trace on this address during the run")
	obsDump := flag.String("obs-dump", "", "write trace.json/trace.txt/metrics.prom artifacts to this directory after the run")
	stream := flag.Bool("stream", true, "write traces to disk as they complete (constant memory; record-per-epoch stream format); -stream=false materializes the whole dataset and writes the legacy single-document form")
	flag.Parse()

	var cfg testbed.RunConfig
	name := "d1"
	switch {
	case *scenarios:
		cfg = testbed.ScenarioScaled(*seed, testbed.ScenarioConfig{PathsPerScenario: *perScenario})
		name = "cc"
	case *second:
		cfg = testbed.SecondSet(*seed, !*full)
		name = "d2"
	case *full:
		cfg = testbed.PaperScale(*seed)
	default:
		cfg = testbed.DefaultScaled(*seed)
	}
	cfg.Parallelism = *workers
	cfg.Retries = *retries
	if *paths > 0 && !*scenarios {
		cfg.Catalog.NumPaths = *paths
		// Keep the special-class counts inside the shrunken catalog.
		cfg.Catalog.NumDSL = min(cfg.Catalog.NumDSL, *paths/3)
		cfg.Catalog.NumTrans = min(cfg.Catalog.NumTrans, *paths/3)
		cfg.Catalog.NumKorea = min(cfg.Catalog.NumKorea, *paths/3)
	}
	if *traces > 0 {
		cfg.TracesPerPath = *traces
	}
	if *epochs > 0 {
		cfg.EpochsPerTrace = *epochs
	}
	if *out == "" {
		*out = fmt.Sprintf("data/%s-seed%d.json.gz", name, *seed)
	}

	prog, err := observerFor(*progress)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Observer = prog

	var telemetry *obs.Obs
	if *obsAddr != "" || *obsDump != "" {
		telemetry = obs.New(obs.DefaultSpanCapacity)
		cfg.Obs = telemetry
	}

	// Ctrl-C / SIGTERM cancels the campaign; traces abort at their next
	// epoch boundary and whatever completed is still saved below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *obsAddr != "" {
		go func() {
			if err := telemetry.Serve(ctx, *obsAddr); err != nil {
				log.Printf("obs endpoint: %v", err)
			}
		}()
		log.Printf("observability on http://%s%s", *obsAddr, obs.PathMetrics)
	}

	start := time.Now()
	var partial bool
	if *stream {
		partial = collectStreaming(ctx, cfg, *out, start)
		dumpObs(telemetry, *obsDump)
	} else {
		ds, err := testbed.CollectContext(ctx, cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				partial = true
				log.Printf("interrupted; keeping %d completed traces", len(ds.Traces))
			} else {
				// Trace faults: the campaign carried on without them.
				log.Printf("completed with failed traces: %v", err)
			}
		}
		log.Printf("collected %d traces / %d epochs in %v", len(ds.Traces), ds.Epochs(), time.Since(start).Round(time.Second))
		dumpObs(telemetry, *obsDump)
		if len(ds.Traces) == 0 {
			log.Print("nothing to save")
			os.Exit(1)
		}
		if partial {
			ds.Label += "-partial"
		}
		if err := traceio.Save(*out, ds); err != nil {
			log.Printf("save: %v", err)
			os.Exit(1)
		}
		log.Printf("wrote %s", *out)
	}
	if partial {
		os.Exit(1)
	}
}

// collectStreaming runs the campaign with each completed trace flushed
// straight to a traceio stream writer, so memory stays constant however
// large the campaign is. An interrupted campaign still lands on disk —
// atomically, with the trailer's partial flag set so readers know — and
// the function reports whether that happened. Unsaveable runs exit.
func collectStreaming(ctx context.Context, cfg testbed.RunConfig, out string, start time.Time) (partial bool) {
	w, err := traceio.NewWriter(out, cfg.DatasetLabel())
	if err != nil {
		log.Printf("save: %v", err)
		os.Exit(1)
	}
	var writeErr error
	err = testbed.CollectStream(ctx, cfg, func(tr testbed.Trace) error {
		if err := w.WriteTrace(tr); err != nil {
			writeErr = err
			return err
		}
		return nil
	})
	traces, epochs := w.Counts()
	switch {
	case writeErr != nil:
		w.Abort()
		log.Printf("save: %v", writeErr)
		os.Exit(1)
	case errors.Is(err, context.Canceled):
		partial = true
		log.Printf("interrupted; keeping %d completed traces", traces)
	case err != nil:
		// Trace faults: the campaign carried on without them.
		log.Printf("completed with failed traces: %v", err)
	}
	log.Printf("collected %d traces / %d epochs in %v", traces, epochs, time.Since(start).Round(time.Second))
	if traces == 0 {
		w.Abort()
		log.Print("nothing to save")
		os.Exit(1)
	}
	closeErr := w.Close
	if partial {
		closeErr = w.ClosePartial
	}
	if err := closeErr(); err != nil {
		log.Printf("save: %v", err)
		os.Exit(1)
	}
	log.Printf("wrote %s (streamed)", out)
	return partial
}

// dumpObs writes the observability artifacts when a dump dir was given.
func dumpObs(telemetry *obs.Obs, dir string) {
	if dir == "" {
		return
	}
	if err := telemetry.WriteFiles(dir); err != nil {
		log.Printf("obs dump: %v", err)
	} else {
		log.Printf("wrote observability artifacts to %s/", dir)
	}
}

// observerFor maps the -progress flag to a campaign observer.
func observerFor(mode string) (campaign.Observer, error) {
	switch mode {
	case "bar":
		return campaign.NewProgress(os.Stderr), nil
	case "jsonl":
		return campaign.NewJSONL(os.Stderr), nil
	case "off", "none", "":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown -progress mode %q (want bar, jsonl or off)", mode)
	}
}
