// Command pathprobe exercises the measurement tools individually on a
// configurable simulated path — the simulated analogues of ping, pathload
// and iperf the paper's methodology is built from.
//
// Usage:
//
//	pathprobe -tool ping     [-cap 10] [-rtt 60] [-load 0.4] [-dur 30]
//	pathprobe -tool pathload [-cap 10] [-rtt 60] [-load 0.4]
//	pathprobe -tool iperf    [-cap 10] [-rtt 60] [-load 0.4] [-dur 20] [-window 1048576]
//	pathprobe -tool all      ... runs the full Fig.-1 epoch sequence
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/availbw"
	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

func main() {
	log.SetFlags(0)
	tool := flag.String("tool", "all", "ping | pathload | iperf | all")
	capMbps := flag.Float64("cap", 10, "bottleneck capacity, Mbps")
	rttMs := flag.Float64("rtt", 60, "round-trip propagation delay, ms")
	load := flag.Float64("load", 0.4, "Poisson cross-traffic load (fraction of bottleneck)")
	dur := flag.Float64("dur", 30, "measurement/transfer duration, seconds")
	window := flag.Int("window", 1<<20, "iperf maximum window, bytes")
	seed := flag.Int64("seed", 1, "simulation seed")
	reorder := flag.Float64("reorder", 0, "per-packet reordering probability at the bottleneck")
	stats := flag.Bool("stats", true, "print per-tool engine statistics (events, event rate, speedup)")
	flag.Parse()

	eng := sim.NewEngine()
	rng := sim.NewRNG(*seed)
	capBps := *capMbps * 1e6
	rtt := *rttMs / 1e3
	buf := int(capBps * rtt / 8)
	if buf < 32*1500 {
		buf = 32 * 1500
	}
	path := netem.NewPath(eng, rng.Fork(), netem.PathSpec{
		Name: "pathprobe",
		Forward: []netem.Hop{
			{CapacityBps: capBps * 5, PropDelay: rtt / 8, BufferBytes: 4 << 20},
			{CapacityBps: capBps, PropDelay: rtt / 4, BufferBytes: buf},
			{CapacityBps: capBps * 5, PropDelay: rtt / 8, BufferBytes: 4 << 20},
		},
	})
	path.Bottleneck().ReorderProb = *reorder
	if *load > 0 {
		src := netem.NewPoissonSource(eng, rng.Fork(), 900, *load*capBps, 1000, nil, path.Bottleneck())
		src.Start()
	}
	probe.NewResponder(path.B, 2)
	eng.RunUntil(2) // warm-up

	fmt.Printf("path: %.1f Mbps bottleneck, %.0f ms base RTT, load %.0f%%\n",
		capBps/1e6, path.BaseRTT(1500)*1e3, *load*100)

	// metered runs one tool and reports its segment of the simulation:
	// events processed, wall-clock event rate, and virtual-vs-real
	// speedup, via the engine's per-segment counters.
	metered := func(name string, run func()) {
		mark := eng.Processed()
		v0 := eng.Now()
		t0 := time.Now()
		run()
		if !*stats {
			return
		}
		wall := time.Since(t0).Seconds()
		events := eng.ProcessedSince(mark)
		line := fmt.Sprintf("  [%s: %d events", name, events)
		if wall > 0 {
			line += fmt.Sprintf(", %.3g ev/s", float64(events)/wall)
			if virt := eng.Now() - v0; virt > 0 {
				line += fmt.Sprintf(", %.0fx real time", virt/wall)
			}
		}
		fmt.Println(line + "]")
	}

	runPing := func(d float64) probe.Result {
		var res probe.Result
		metered("ping", func() {
			res = probe.Measure(eng, path.A, 2, probe.Config{}, d)
			fmt.Printf("ping (%gs, 100ms period, 41B): RTT mean %.1f ms [%.1f, %.1f], loss %.4f (%d probes)\n",
				d, res.MeanRTT*1e3, res.MinRTT*1e3, res.MaxRTT*1e3, res.LossRate, res.Sent)
		})
		probe.NewResponder(path.B, 2) // Measure deregisters; re-arm for later tools
		return res
	}
	runPathload := func() availbw.Result {
		var res availbw.Result
		metered("pathload", func() {
			est := availbw.NewEstimator(eng, path, 3, availbw.Config{})
			res = est.Estimate()
			fmt.Printf("pathload: avail-bw %.2f Mbps [%.2f, %.2f] (%d streams, %.1f s)\n",
				res.Estimate/1e6, res.Lo/1e6, res.Hi/1e6, res.Streams, res.Duration)
		})
		return res
	}
	runIperf := func(d float64) iperf.Report {
		var rep iperf.Report
		metered("iperf", func() {
			rep = iperf.Run(eng, path, 7, iperf.Config{
				Duration: d,
				TCP:      tcpsim.Config{MaxWindowBytes: *window, DelayedAck: true},
			})
			fmt.Printf("iperf (%gs, W=%dKB): %.2f Mbps | flow RTT %.1f ms, p=%.4f, p'=%.5f, %d rtx, %d timeouts\n",
				d, *window/1024, rep.ThroughputBps/1e6, rep.FlowRTT*1e3,
				rep.FlowLossRate, rep.FlowEventRate, rep.Retransmits, rep.Timeouts)
		})
		return rep
	}

	switch *tool {
	case "ping":
		runPing(*dur)
	case "pathload":
		runPathload()
	case "iperf":
		runIperf(*dur)
	case "all":
		// The paper's Fig.-1 epoch: pathload → ping → transfer with ping
		// continuing → report before/during comparison.
		runPathload()
		pre := runPing(*dur)
		prober := probe.NewProber(eng, path.A, 2, probe.Config{})
		prober.Start()
		rep := runIperf(*dur)
		during := prober.Window()
		prober.Stop()
		fmt.Printf("during-transfer probing: RTT %.1f ms (pre %.1f), loss %.4f (pre %.4f)\n",
			during.MeanRTT*1e3, pre.MeanRTT*1e3, during.LossRate, pre.LossRate)
		_ = rep
	default:
		log.Fatalf("unknown tool %q", *tool)
	}
}
