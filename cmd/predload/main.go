// Command predload is the load generator for predserverd: it replays
// per-path throughput traces — either testbed-simulated (a dataset JSON
// written by cmd/repro / traceio, or simulated on the fly) or fast
// synthetic series with the paper's level-shift/outlier structure —
// against a running daemon, concurrently but strictly in order per path,
// and reports achieved request rate, the accuracy of the daemon's "best"
// forecasts (paper Eq. 4/5), and a determinism digest over every
// /v1/predict response body.
//
// Two runs with the same flags against fresh daemons must print the same
// digest: that is the service's determinism contract, checkable from the
// command line.
//
// Examples:
//
// With -chaos, predload additionally injects client-side faults from a
// seeded plan — predict requests it aborts mid-flight, slowloris probes
// that stall inside the request headers, and forced-panic probes
// (X-Chaos-Panic) that a -chaos daemon converts into recovered 500s — and
// reports the daemon's resilience counters afterwards. Chaos traffic is
// read-only, so the digest over the fault-free replay must match a
// no-chaos run with the same seed.
//
// Examples:
//
//	predload -addr http://127.0.0.1:8355 -paths 120 -epochs 150
//	predload -dataset results/dataset.json -workers 32
//	predload -testbed -seed 7     # simulate a small campaign, then replay it
//	predload -chaos -chaos-seed 7 # fault-injected run; digest must still match
//	predload -cluster 127.0.0.1:8355,127.0.0.1:8356 -batch
//
// With -cluster, each path's requests go to the node that owns it under
// rendezvous hashing; per-path state lives on exactly one node, so the
// digest matches a single-node run over the same series. -batch folds each
// epoch's observations into one /v1/observe-batch request per node.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/predsvc"
	"repro/internal/testbed"
	"repro/internal/traceio"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8355", "base URL of predserverd")
		paths   = flag.Int("paths", 120, "synthetic paths to generate")
		epochs  = flag.Int("epochs", 150, "epochs per synthetic path")
		seed    = flag.Int64("seed", 1, "seed for synthetic/testbed series")
		workers = flag.Int("workers", 16, "concurrent client goroutines")
		dataset = flag.String("dataset", "", "replay a dataset JSON instead of synthetic series")
		useTb   = flag.Bool("testbed", false, "simulate a small testbed campaign and replay it")

		clusterList = flag.String("cluster", "", "comma-separated base URLs of a multi-node deployment; each path is routed to its rendezvous-hash owner (overrides -addr)")
		batchMode   = flag.Bool("batch", false, "group each epoch's observations into /v1/observe-batch requests per node instead of one /v1/observe per path")

		chaosMode = flag.Bool("chaos", false, "inject client-side faults (aborted predicts, slowloris probes, forced-panic probes); digest covers only the fault-free replay")
		chaosSeed = flag.Int64("chaos-seed", 1, "fault-injection seed for -chaos")

		quantiles = flag.Bool("quantiles", false, "score the daemon's [p10,p90] interval forecasts against the actuals and report empirical coverage (nominal 0.8)")

		startEpoch    = flag.Int("start-epoch", 0, "replay only epoch indices >= this (phase-split runs around a resize)")
		pace          = flag.Duration("pace", 0, "pause per worker between epoch rounds, stretching the replay so restarts land mid-load")
		retryDeadline = flag.Duration("retry-deadline", 0, "how long one request retries through 429/5xx/connection-refused before failing the run (default 30s)")

		bench = flag.Bool("bench", false, "after the replay, report per-endpoint service time (ns/observe etc.) from the daemon's /debug/vars latency histograms")
	)
	flag.Parse()

	// Accept the same bare host:port the daemon's -addr takes.
	base := normalizeURL(*addr)

	// -cluster routes per path across nodes; the reports afterwards are
	// fetched from every node.
	var nodes []string
	if *clusterList != "" {
		for _, n := range strings.Split(*clusterList, ",") {
			if n = strings.TrimSpace(n); n != "" {
				nodes = append(nodes, normalizeURL(n))
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var series []predsvc.PathSeries
	switch {
	case *dataset != "":
		ds, err := traceio.Load(*dataset)
		if err != nil {
			log.Fatalf("predload: load %s: %v", *dataset, err)
		}
		series = predsvc.SeriesFromDataset(ds)
		log.Printf("predload: replaying %d traces from %s", len(series), *dataset)
	case *useTb:
		cfg := testbed.DefaultScaled(*seed)
		log.Printf("predload: simulating a %d-path scaled campaign (this takes a while)...", cfg.Catalog.NumPaths)
		ds, err := testbed.CollectContext(ctx, cfg)
		if err != nil {
			log.Fatalf("predload: campaign: %v", err)
		}
		series = predsvc.SeriesFromDataset(ds)
	default:
		series = predsvc.SyntheticSeries(*paths, *epochs, *seed)
		log.Printf("predload: replaying %d synthetic paths × %d epochs", *paths, *epochs)
	}

	lcfg := predsvc.LoadConfig{
		BaseURL:       base,
		Cluster:       nodes,
		BatchObserve:  *batchMode,
		Workers:       *workers,
		Quantiles:     *quantiles,
		StartEpoch:    *startEpoch,
		EpochPause:    *pace,
		RetryDeadline: *retryDeadline,
	}
	if len(nodes) > 0 {
		log.Printf("predload: routing paths across %d nodes by rendezvous hash", len(nodes))
	}
	if *chaosMode {
		lcfg.Chaos = &predsvc.ChaosConfig{Seed: *chaosSeed}
		log.Printf("predload: CHAOS MODE (seed %d): injecting client aborts, slowloris probes and panic probes", *chaosSeed)
	}
	rep, err := predsvc.Replay(ctx, lcfg, series)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) && rep != nil:
		// Interrupted (Ctrl-C): the partial stats are still worth printing.
		log.Printf("predload: interrupted, reporting partial results")
	default:
		log.Fatalf("predload: %v", err)
	}
	fmt.Println(rep)
	targets := nodes
	if len(targets) == 0 {
		targets = []string{base}
	}
	for _, t := range targets {
		if *chaosMode {
			reportServerResilience(t)
		}
		if *bench {
			reportServiceTimes(t)
		}
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// normalizeURL accepts the same bare host:port the daemon's -addr takes.
func normalizeURL(s string) string {
	if !strings.Contains(s, "://") {
		return "http://" + s
	}
	return s
}

// reportServiceTimes fetches /debug/vars and prints each busy endpoint's
// latency distribution as a benchmark-style line — the observe row is the
// service-side cost of one LSO-wrapped predictor update (ns/observe). The
// mean is estimated from the histogram's bucket midpoints; the quantiles
// are bucket upper bounds.
func reportServiceTimes(base string) {
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		log.Printf("predload: could not fetch /debug/vars for -bench: %v", err)
		return
	}
	defer resp.Body.Close()
	var body struct {
		Predsvc struct {
			Metrics predsvc.MetricsSnapshot `json:"metrics"`
		} `json:"predsvc"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		log.Printf("predload: bad /debug/vars response: %v", err)
		return
	}
	for _, ep := range body.Predsvc.Metrics.Endpoints {
		if ep.Requests == 0 {
			continue
		}
		h := ep.Latency
		fmt.Printf("bench: %-10s %8d reqs  ~%9.0f ns/%s  p50<%dµs p95<%dµs p99<%dµs\n",
			ep.Name, ep.Requests, h.MeanUsec()*1000, ep.Name, h.P50Usec, h.P95Usec, h.P99Usec)
	}
}

// reportServerResilience prints the daemon's resilience counters after a
// chaos run — the acceptance signal that the injected faults were absorbed
// (panics recovered, load shed, snapshot writes retried) without a crash.
func reportServerResilience(base string) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Printf("predload: could not fetch server stats after chaos run: %v", err)
		return
	}
	defer resp.Body.Close()
	var st predsvc.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Printf("predload: bad /v1/stats response: %v", err)
		return
	}
	m := st.Metrics
	fmt.Printf("chaos: server panics_recovered=%d requests_shed=%d snapshot_failures=%d snapshot_retries=%d rejected_inputs=%d stale_predictions=%d\n",
		m.PanicsRecovered, m.RequestsShed, m.SnapshotFailures, m.SnapshotRetries, m.RejectedInputs, m.StalePredictions)
}
