// Command predload is the load generator for predserverd: it replays
// per-path throughput traces — either testbed-simulated (a dataset JSON
// written by cmd/repro / traceio, or simulated on the fly) or fast
// synthetic series with the paper's level-shift/outlier structure —
// against a running daemon, concurrently but strictly in order per path,
// and reports achieved request rate, the accuracy of the daemon's "best"
// forecasts (paper Eq. 4/5), and a determinism digest over every
// /v1/predict response body.
//
// Two runs with the same flags against fresh daemons must print the same
// digest: that is the service's determinism contract, checkable from the
// command line.
//
// Examples:
//
//	predload -addr http://127.0.0.1:8355 -paths 120 -epochs 150
//	predload -dataset results/dataset.json -workers 32
//	predload -testbed -seed 7     # simulate a small campaign, then replay it
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"strings"

	"repro/internal/predsvc"
	"repro/internal/testbed"
	"repro/internal/traceio"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8355", "base URL of predserverd")
		paths   = flag.Int("paths", 120, "synthetic paths to generate")
		epochs  = flag.Int("epochs", 150, "epochs per synthetic path")
		seed    = flag.Int64("seed", 1, "seed for synthetic/testbed series")
		workers = flag.Int("workers", 16, "concurrent client goroutines")
		dataset = flag.String("dataset", "", "replay a dataset JSON instead of synthetic series")
		useTb   = flag.Bool("testbed", false, "simulate a small testbed campaign and replay it")
	)
	flag.Parse()

	// Accept the same bare host:port the daemon's -addr takes.
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var series []predsvc.PathSeries
	switch {
	case *dataset != "":
		ds, err := traceio.Load(*dataset)
		if err != nil {
			log.Fatalf("predload: load %s: %v", *dataset, err)
		}
		series = predsvc.SeriesFromDataset(ds)
		log.Printf("predload: replaying %d traces from %s", len(series), *dataset)
	case *useTb:
		cfg := testbed.DefaultScaled(*seed)
		log.Printf("predload: simulating a %d-path scaled campaign (this takes a while)...", cfg.Catalog.NumPaths)
		ds, err := testbed.CollectContext(ctx, cfg)
		if err != nil {
			log.Fatalf("predload: campaign: %v", err)
		}
		series = predsvc.SeriesFromDataset(ds)
	default:
		series = predsvc.SyntheticSeries(*paths, *epochs, *seed)
		log.Printf("predload: replaying %d synthetic paths × %d epochs", *paths, *epochs)
	}

	rep, err := predsvc.Replay(ctx, predsvc.LoadConfig{
		BaseURL: base,
		Workers: *workers,
	}, series)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) && rep != nil:
		// Interrupted (Ctrl-C): the partial stats are still worth printing.
		log.Printf("predload: interrupted, reporting partial results")
	default:
		log.Fatalf("predload: %v", err)
	}
	fmt.Println(rep)
	if rep.Errors > 0 {
		os.Exit(1)
	}
}
