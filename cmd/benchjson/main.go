// Command benchjson converts `go test -bench` output into the repo's
// tracked benchmark JSON (BENCH_<pr>.json) and gates regressions between
// two such files.
//
//	go test -bench=. -benchmem -run '^$' . | benchjson parse -out BENCH_4.json
//	benchjson compare -old BENCH_3.json -new BENCH_4.json \
//	    -gate 'BenchmarkEngineEvents,BenchmarkTCPTransfer' -max-regress 25 \
//	    -zero-alloc 'BenchmarkWireObserveDecode'
//
// Parse mode keeps the best (lowest ns/op) of repeated runs of the same
// benchmark, so `-count=N` output yields one stable entry per benchmark.
// Compare mode exits non-zero when any gated benchmark's ns/op regressed
// by more than the threshold percentage, or when a -zero-alloc benchmark
// records any allocs/op at all; other benchmarks are reported but never
// fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurement.
type Result struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"b_per_op,omitempty"`
	AllocsOp float64 `json:"allocs_per_op,omitempty"`
	Runs     int     `json:"runs"`
}

// File is the BENCH_<pr>.json schema.
type File struct {
	// Label identifies the measured tree (e.g. "pr4").
	Label   string   `json:"label,omitempty"`
	Results []Result `json:"results"`
	// Baseline optionally records the same benchmarks measured on the
	// previous tree, so a single file carries before/after numbers.
	Baseline []Result `json:"baseline,omitempty"`
}

func main() {
	if len(os.Args) < 2 {
		fatalf("usage: benchjson parse|compare [flags]")
	}
	switch os.Args[1] {
	case "parse":
		runParse(os.Args[2:])
	case "compare":
		runCompare(os.Args[2:])
	default:
		fatalf("unknown mode %q (want parse or compare)", os.Args[1])
	}
}

func runParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("out", "", "output JSON path (default stdout)")
	label := fs.String("label", "", "label recorded in the file")
	baseline := fs.String("baseline", "", "optional prior bench text to embed as the baseline section")
	fs.Parse(args)

	results, err := parseBench(os.Stdin)
	if err != nil {
		fatalf("parse: %v", err)
	}
	if len(results) == 0 {
		fatalf("parse: no benchmark lines on stdin")
	}
	f := File{Label: *label, Results: results}
	if *baseline != "" {
		bf, err := os.Open(*baseline)
		if err != nil {
			fatalf("parse: %v", err)
		}
		f.Baseline, err = parseBench(bf)
		bf.Close()
		if err != nil {
			fatalf("parse baseline: %v", err)
		}
	}
	enc, _ := json.MarshalIndent(f, "", "  ")
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("write: %v", err)
	}
}

// parseBench reads `go test -bench` text, keeping the best ns/op per name.
func parseBench(r interface{ Read([]byte) (int, error) }) ([]Result, error) {
	best := map[string]*Result{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if b, seen := best[res.Name]; seen {
			b.Runs++
			if res.NsPerOp < b.NsPerOp {
				runs := b.Runs
				*b = res
				b.Runs = runs
			}
		} else {
			res.Runs = 1
			best[res.Name] = &res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(best))
	for n := range best {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Result, 0, len(names))
	for _, n := range names {
		out = append(out, *best[n])
	}
	return out, nil
}

// parseLine handles one benchmark result line:
//
//	BenchmarkFoo-8   1234   987.6 ns/op   12 B/op   3 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix so entries compare across machines.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := Result{Name: name}
	found := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			found = true
		case "B/op":
			res.BPerOp = v
		case "allocs/op":
			res.AllocsOp = v
		}
	}
	return res, found
}

func runCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	oldPath := fs.String("old", "", "baseline JSON file")
	newPath := fs.String("new", "", "candidate JSON file")
	gate := fs.String("gate", "", "comma-separated benchmark names that fail the build on regression")
	maxRegress := fs.Float64("max-regress", 25, "max allowed ns/op regression for gated benchmarks, percent")
	zeroAlloc := fs.String("zero-alloc", "", "comma-separated benchmark names that fail the build when -new records allocs/op > 0")
	fs.Parse(args)
	if *oldPath == "" || *newPath == "" {
		fatalf("compare: -old and -new are required")
	}

	oldF, err := loadFile(*oldPath)
	if err != nil {
		fatalf("compare: %v", err)
	}
	newF, err := loadFile(*newPath)
	if err != nil {
		fatalf("compare: %v", err)
	}
	gated := map[string]bool{}
	for _, g := range strings.Split(*gate, ",") {
		if g = strings.TrimSpace(g); g != "" {
			gated[g] = true
		}
	}

	oldBy := map[string]Result{}
	for _, r := range oldF.Results {
		oldBy[r.Name] = r
	}
	failed := 0
	for _, nr := range newF.Results {
		or, ok := oldBy[nr.Name]
		if !ok || or.NsPerOp == 0 {
			fmt.Printf("%-32s %12.1f ns/op  (new)\n", nr.Name, nr.NsPerOp)
			continue
		}
		delta := (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		mark := ""
		if gated[nr.Name] {
			mark = " [gated]"
			if delta > *maxRegress {
				mark = " [gated] REGRESSION"
				failed++
			}
		}
		fmt.Printf("%-32s %12.1f -> %10.1f ns/op  %+6.1f%%%s\n",
			nr.Name, or.NsPerOp, nr.NsPerOp, delta, mark)
	}
	for name := range gated {
		if _, ok := oldBy[name]; !ok {
			continue
		}
		if _, ok := findResult(newF.Results, name); !ok {
			fmt.Printf("%-32s missing from %s\n", name, *newPath)
			failed++
		}
	}
	// The zero-alloc gate is absolute, not relative: these benches are
	// the fastpath's contract, so a single allocation per op fails the
	// build even if ns/op improved. A missing allocs/op figure parses as
	// 0 — run the bench with -benchmem or b.ReportAllocs() so the gate
	// measures rather than assumes.
	for _, name := range splitList(*zeroAlloc) {
		nr, ok := findResult(newF.Results, name)
		if !ok {
			fmt.Printf("%-32s missing from %s (zero-alloc gate)\n", name, *newPath)
			failed++
			continue
		}
		if nr.AllocsOp > 0 {
			fmt.Printf("%-32s %g allocs/op  [zero-alloc] VIOLATION\n", name, nr.AllocsOp)
			failed++
		}
	}
	if failed > 0 {
		fatalf("compare: %d gated benchmark(s) failed (ns/op regression > %.0f%% or allocs/op > 0)", failed, *maxRegress)
	}
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func findResult(rs []Result, name string) (Result, bool) {
	for _, r := range rs {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

func loadFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	err = json.Unmarshal(data, &f)
	return f, err
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
