// Command repro regenerates every figure and table of the paper's
// evaluation. It loads datasets written by cmd/ronsim, collecting them on
// the fly when absent.
//
// Usage:
//
//	repro [-d1 data/d1-seed1.json.gz] [-d2 data/d2-seed1.json.gz]
//	      [-seed 1] [-only fig2,fig19] [-full] [-progress bar|jsonl|off]
//	      [-obs-addr :6060] [-obs-dump dir]
//
// On-the-fly collection runs on the campaign runner with live progress on
// stderr (-progress=jsonl for machine-readable JSON lines); Ctrl-C aborts
// collection cleanly without writing a partial dataset file.
//
// -obs-addr serves the observability endpoints (/metrics, /debug/pprof/,
// /debug/trace) while collections run; -obs-dump writes the telemetry to
// files on a clean exit. Both collections share one registry, so the
// campaign counters accumulate across d1 and d2.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/testbed"
	"repro/internal/traceio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")

	seed := flag.Int64("seed", 1, "campaign seed for on-the-fly collection")
	d1Path := flag.String("d1", "", "primary dataset path (default data/d1-seed<seed>.json.gz)")
	d2Path := flag.String("d2", "", "second dataset path (default data/d2-seed<seed>.json.gz)")
	ccPath := flag.String("cc", "", "scenario-matrix dataset path for ext-cc (default data/cc-seed<seed>.json.gz)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. fig2,fig19)")
	full := flag.Bool("full", false, "collect at the paper's full scale when datasets are absent")
	csvDir := flag.String("csv", "", "also export each experiment's tables/series as CSV into this directory")
	progress := flag.String("progress", "bar", "collection progress: bar | jsonl | off")
	obsAddr := flag.String("obs-addr", "", "serve live /metrics + /debug/pprof/ + /debug/trace on this address while collecting")
	obsDump := flag.String("obs-dump", "", "write trace.json/trace.txt/metrics.prom artifacts to this directory at exit")
	flag.Parse()

	var prog campaign.Observer
	switch *progress {
	case "bar":
		prog = campaign.NewProgress(os.Stderr)
	case "jsonl":
		prog = campaign.NewJSONL(os.Stderr)
	case "off", "none", "":
	default:
		log.Fatalf("unknown -progress mode %q (want bar, jsonl or off)", *progress)
	}

	// One Obs covers both collections: the campaign metric families are
	// registered idempotently, so d1's and d2's counters accumulate into
	// the same series.
	var telemetry *obs.Obs
	if *obsAddr != "" || *obsDump != "" {
		telemetry = obs.New(obs.DefaultSpanCapacity)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *obsAddr != "" {
		go func() {
			if err := telemetry.Serve(ctx, *obsAddr); err != nil {
				log.Printf("obs endpoint: %v", err)
			}
		}()
	}
	if *obsDump != "" {
		defer func() {
			if err := telemetry.WriteFiles(*obsDump); err != nil {
				log.Printf("obs dump: %v", err)
			}
		}()
	}

	if *d1Path == "" {
		*d1Path = fmt.Sprintf("data/d1-seed%d.json.gz", *seed)
	}
	if *d2Path == "" {
		*d2Path = fmt.Sprintf("data/d2-seed%d.json.gz", *seed)
	}
	if *ccPath == "" {
		*ccPath = fmt.Sprintf("data/cc-seed%d.json.gz", *seed)
	}

	cfg1 := testbed.DefaultScaled(*seed)
	cfg2 := testbed.SecondSet(*seed, true)
	if *full {
		cfg1 = testbed.PaperScale(*seed)
		cfg2 = testbed.SecondSet(*seed, false)
	}
	cfg1.Observer = prog
	cfg2.Observer = prog
	cfg1.Obs = telemetry
	cfg2.Obs = telemetry

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	emit := func(res experiments.Result) {
		if !selected(res.ID) {
			return
		}
		res.Format(os.Stdout)
		if *csvDir != "" {
			if err := experiments.WriteCSV(*csvDir, res); err != nil {
				log.Fatalf("csv: %v", err)
			}
		}
	}

	// Every experiment except ext-cc reads the primary dataset; when the
	// selection is ext-cc only, skip d1 entirely so CI's scenario gate
	// never pays for (or accidentally collects) the primary campaign.
	needD1 := len(want) == 0
	for id := range want {
		if id != "ext-cc" {
			needD1 = true
		}
	}
	if needD1 {
		start := time.Now()
		ds1, err := traceio.LoadOrCollectContext(ctx, *d1Path, cfg1)
		if err != nil {
			log.Fatalf("dataset 1: %v", err)
		}
		log.Printf("dataset 1: %d traces / %d epochs (%v)", len(ds1.Traces), ds1.Epochs(), time.Since(start).Round(time.Second))

		// The base transfer interval (for Fig 23's axis labels) follows
		// from the epoch structure; the paper's is ~3 min.
		baseIntervalMin := epochMinutes(cfg1)
		for _, res := range experiments.All(ds1, baseIntervalMin) {
			emit(res)
		}
		for _, res := range experiments.Extensions(ds1) {
			emit(res)
		}
	}

	if selected("ext-cc") {
		start := time.Now()
		cfgCC := testbed.ScenarioScaled(*seed, testbed.ScenarioConfig{})
		cfgCC.Observer = prog
		cfgCC.Obs = telemetry
		dsCC, err := traceio.LoadOrCollectContext(ctx, *ccPath, cfgCC)
		if err != nil {
			log.Fatalf("scenario dataset: %v", err)
		}
		log.Printf("scenario dataset: %d traces / %d epochs (%v)", len(dsCC.Traces), dsCC.Epochs(), time.Since(start).Round(time.Second))
		emit(experiments.ExtCC(dsCC))
	}

	if selected("fig11") {
		start := time.Now()
		ds2, err := traceio.LoadOrCollectContext(ctx, *d2Path, cfg2)
		if err != nil {
			log.Fatalf("dataset 2: %v", err)
		}
		log.Printf("dataset 2: %d traces / %d epochs (%v)", len(ds2.Traces), ds2.Epochs(), time.Since(start).Round(time.Second))
		emit(experiments.Fig11(ds2, cfg2.Checkpoints, cfg2.TransferSec))
	}
}

func epochMinutes(cfg testbed.RunConfig) float64 {
	ping := cfg.PingDuration
	if ping == 0 {
		ping = 60
	}
	transfer := cfg.TransferSec
	if transfer == 0 {
		transfer = 50
	}
	gap := cfg.EpochGap
	if gap == 0 {
		gap = 20
	}
	small := cfg.SmallTransferSec
	if cfg.SmallWindowBytes > 0 && small == 0 {
		small = transfer / 2
	}
	// ~15 s for pathload on average.
	return (15 + ping + transfer + small + gap) / 60
}
