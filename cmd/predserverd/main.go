// Command predserverd is the online throughput-prediction daemon: it
// serves the internal/predsvc HTTP JSON API (observe / measure / predict /
// stats, plus the observe-batch / predict-batch bulk endpoints) over a
// sharded, LRU-bounded path registry, with graceful shutdown on
// SIGINT/SIGTERM and optional periodic JSON snapshots of registry state.
// With -spill-dir the registry becomes a two-tier store: sessions evicted
// from the in-memory hot tier are serialized to an append-only checksummed
// spill log and faulted back on access, so the daemon holds far more paths
// than -capacity at a bounded resident set.
//
// The serving path is hardened for imperfect conditions: header/read/idle
// timeouts guard against slow clients, handler panics are converted into
// 500s instead of crashes, load past -max-inflight is shed with 429 +
// Retry-After, snapshot writes are checksummed and retried with backoff,
// and a corrupt snapshot at boot is quarantined (the daemon starts empty)
// rather than fatal. -chaos enables seeded fault injection against those
// defenses: snapshot writes fail half the time, X-Chaos-Panic requests
// panic inside a handler, and ~10% of requests stall 5ms in-handler so a
// tight -max-inflight genuinely sheds. -chaos-handoff kills the first
// session handoff (export and import) mid-transfer to prove a retried
// rebalance converges.
//
// For cluster operation the daemon serves /healthz (process up) and
// /readyz (wants traffic) outside the load-shedding middleware; SIGTERM
// flips /readyz to 503 (optionally holding it there for -drain-delay),
// lets in-flight requests finish, then writes the final snapshot. The
// /v1/sessions/{export,import,drop} endpoints implement checksummed
// shard handoff; drive them with predctl rebalance.
//
// Observability is on by default (disable with -no-obs): the listener
// also serves /metrics (Prometheus text exposition of every service
// counter, latency histogram and accuracy gauge), /debug/pprof/ (standard
// Go profiles), and /debug/trace (recent request spans in Chrome
// trace_event format; /debug/trace.txt for the plain-text tree). These
// endpoints bypass the load-shedding middleware, so scrapes and profile
// grabs keep working exactly when the API is refusing traffic.
//
// Example:
//
//	predserverd -addr :8355 -capacity 8192 -snapshot /tmp/predsvc.json -snapshot-interval 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/predsvc"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8355", "listen address")
		shards       = flag.Int("shards", 16, "registry shards (rounded up to a power of two)")
		capacity     = flag.Int("capacity", 4096, "maximum paths kept (LRU eviction beyond this)")
		errWindow    = flag.Int("err-window", 50, "rolling errors kept per predictor for RMSRE")
		maOrder      = flag.Int("ma", 10, "moving-average order")
		ewmaAlpha    = flag.Float64("ewma", 0.8, "EWMA weight α")
		hwAlpha      = flag.Float64("hw-alpha", 0.8, "Holt-Winters α")
		hwBeta       = flag.Float64("hw-beta", 0.2, "Holt-Winters β")
		noLSO        = flag.Bool("no-lso", false, "disable the level-shift/outlier wrapper")
		noZoo        = flag.Bool("no-zoo", false, "restrict each path to the paper ensemble (HB trio + FB); disables the switcher/regression/ECM tournament extras")
		snapshotPath = flag.String("snapshot", "", "snapshot file (restored at startup, written periodically and at shutdown)")
		snapshotIvl  = flag.Duration("snapshot-interval", time.Minute, "interval between snapshots")
		spillDir     = flag.String("spill-dir", "", "directory for the two-tier store's spill log; paths evicted from the hot tier spill to disk instead of being dropped")

		staleAfter  = flag.Int("stale-after", 0, "observations since the last measurement before FB forecasts are flagged stale (0 = default 30, negative = never)")
		maxInflight = flag.Int("max-inflight", 0, "concurrent-request cap before shedding with 429 (0 = default 1024, negative = unlimited)")
		readHdrTO   = flag.Duration("read-header-timeout", 0, "slowloris guard on request headers (0 = default 5s, negative = off)")
		requestTO   = flag.Duration("request-timeout", 0, "per-request deadline (0 = default 15s, negative = off)")
		chaosMode   = flag.Bool("chaos", false, "seeded fault injection: snapshot writes fail ~50% of the time, X-Chaos-Panic requests panic in-handler")
		chaosSeed   = flag.Int64("chaos-seed", 1, "fault-injection seed for -chaos")
		chaosHand   = flag.Bool("chaos-handoff", false, "kill the first session handoff mid-transfer: the 6th exported record aborts the stream and the 6th imported record 500s, so only a retried pass can complete")
		drainDelay  = flag.Duration("drain-delay", 0, "extra time /readyz advertises draining before connections close on shutdown (lets cluster clients re-probe)")

		noFastpath = flag.Bool("no-fastpath", false, "serve the hot endpoints through the reflection-based encoding/json handlers instead of the pooled zero-alloc codec (byte-identical responses; escape hatch and digest cross-check)")

		noObs    = flag.Bool("no-obs", false, "disable the observability endpoints (/metrics, /debug/pprof/, /debug/trace)")
		obsSpans = flag.Int("obs-spans", obs.DefaultSpanCapacity, "completed request spans retained for /debug/trace")
	)
	flag.Parse()

	var o *obs.Obs
	if !*noObs {
		o = obs.New(*obsSpans)
	}

	cfg := predsvc.Config{
		Obs:               o,
		Shards:            *shards,
		Capacity:          *capacity,
		ErrorWindow:       *errWindow,
		MAOrder:           *maOrder,
		EWMAAlpha:         *ewmaAlpha,
		HWAlpha:           *hwAlpha,
		HWBeta:            *hwBeta,
		DisableLSO:        *noLSO,
		DisableZoo:        *noZoo,
		StaleAfter:        *staleAfter,
		MaxInFlight:       *maxInflight,
		ReadHeaderTimeout: *readHdrTO,
		RequestTimeout:    *requestTO,
		SpillDir:          *spillDir,
		DisableFastpath:   *noFastpath,
		DrainDelay:        *drainDelay,
	}
	var faultRules []faultinject.Rule
	if *chaosMode {
		faultRules = append(faultRules,
			faultinject.Rule{Site: predsvc.SiteSnapshotWrite, Probability: 0.5},
			faultinject.Rule{Site: predsvc.SiteHandlerPanic, Every: 1},
			// Pure slowdown (no error): ~10% of requests stall in-handler
			// for 5ms while holding their in-flight slot, so a tight
			// -max-inflight actually overflows and sheds under load.
			faultinject.Rule{Site: predsvc.SiteHandlerDelay, Probability: 0.1, Delay: 5 * time.Millisecond},
		)
		log.Printf("predserverd: CHAOS MODE (seed %d): injecting snapshot write failures, handler panics and 5ms handler stalls", *chaosSeed)
	}
	if *chaosHand {
		// Deterministic mid-transfer kill for the resize gate: the first
		// handoff pass dies partway through both directions, and only an
		// idempotent retry (import is last-writer-wins) can finish the move.
		faultRules = append(faultRules,
			faultinject.Rule{Site: predsvc.SiteHandoffExport, Every: 1, After: 5, Times: 1, Err: fmt.Errorf("chaos: export stream killed mid-transfer")},
			faultinject.Rule{Site: predsvc.SiteHandoffImport, Every: 1, After: 5, Times: 1, Err: fmt.Errorf("chaos: import killed mid-batch")},
		)
		log.Printf("predserverd: CHAOS-HANDOFF (seed %d): first export aborts after 5 records, first import 500s after 5 records", *chaosSeed)
	}
	if len(faultRules) > 0 {
		cfg.Faults = faultinject.New(*chaosSeed, faultRules...)
	}
	srv, err := predsvc.Open(cfg)
	if err != nil {
		log.Fatalf("predserverd: open: %v", err)
	}
	if *spillDir != "" {
		log.Printf("predserverd: two-tier store: spilling cold paths to %s", *spillDir)
	}

	if *snapshotPath != "" {
		st, err := srv.RestoreSnapshot(*snapshotPath)
		if err != nil {
			log.Fatalf("predserverd: restore %s: %v", *snapshotPath, err)
		}
		if st.Quarantined != "" {
			log.Printf("predserverd: WARNING: corrupt snapshot quarantined to %s (%v); starting with an empty registry",
				st.Quarantined, st.Reason)
		}
		if st.Paths > 0 {
			log.Printf("predserverd: restored %d paths from %s", st.Paths, *snapshotPath)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("predserverd: listen %s: %v", *addr, err)
	}
	log.Printf("predserverd: serving on http://%s (%d shards, capacity %d)",
		ln.Addr(), srv.Registry().Shards(), srv.Registry().Capacity())
	if o != nil {
		log.Printf("predserverd: observability on http://%s{%s,%s,%s}",
			ln.Addr(), obs.PathMetrics, obs.PathPprof, obs.PathTrace)
	}

	snapDone := make(chan error, 1)
	if *snapshotPath != "" {
		go func() { snapDone <- srv.SnapshotLoop(ctx, *snapshotPath, *snapshotIvl) }()
	} else {
		snapDone <- nil
	}

	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatalf("predserverd: serve: %v", err)
	}
	if err := <-snapDone; err != nil {
		log.Fatalf("predserverd: snapshot: %v", err)
	}
	// Serve has drained all in-flight requests by now, so this final
	// snapshot includes observations accepted during the graceful
	// shutdown. It retries with backoff; an ultimately failed write is a
	// warning, not a crash — losing one snapshot is survivable, dying on
	// the way out is not.
	if *snapshotPath != "" {
		finalCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.WriteSnapshotRetry(finalCtx, *snapshotPath); err != nil {
			log.Printf("predserverd: WARNING: final snapshot failed after retries: %v", err)
		} else {
			log.Printf("predserverd: final snapshot written to %s", *snapshotPath)
		}
	}
	m := srv.Metrics().Snapshot()
	if m.PanicsRecovered > 0 || m.RequestsShed > 0 || m.SnapshotFailures > 0 {
		log.Printf("predserverd: resilience: panics_recovered=%d requests_shed=%d snapshot_failures=%d snapshot_retries=%d rejected_inputs=%d",
			m.PanicsRecovered, m.RequestsShed, m.SnapshotFailures, m.SnapshotRetries, m.RejectedInputs)
	}
	if ts := srv.Registry().TierStats(); ts.Spills > 0 || ts.ColdPaths > 0 {
		log.Printf("predserverd: store tiers: hot=%d cold=%d spills=%d faults=%d errors=%d",
			ts.HotPaths, ts.ColdPaths, ts.Spills, ts.Faults, ts.Errors)
	}
	if err := srv.Close(); err != nil {
		log.Printf("predserverd: WARNING: closing store: %v", err)
	}
	fmt.Println("predserverd: shut down cleanly")
}
