// Command predserverd is the online throughput-prediction daemon: it
// serves the internal/predsvc HTTP JSON API (observe / measure / predict /
// stats) over a sharded, LRU-bounded path registry, with graceful shutdown
// on SIGINT/SIGTERM and optional periodic JSON snapshots of registry state.
//
// Example:
//
//	predserverd -addr :8355 -capacity 8192 -snapshot /tmp/predsvc.json -snapshot-interval 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/predsvc"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8355", "listen address")
		shards       = flag.Int("shards", 16, "registry shards (rounded up to a power of two)")
		capacity     = flag.Int("capacity", 4096, "maximum paths kept (LRU eviction beyond this)")
		errWindow    = flag.Int("err-window", 50, "rolling errors kept per predictor for RMSRE")
		maOrder      = flag.Int("ma", 10, "moving-average order")
		ewmaAlpha    = flag.Float64("ewma", 0.8, "EWMA weight α")
		hwAlpha      = flag.Float64("hw-alpha", 0.8, "Holt-Winters α")
		hwBeta       = flag.Float64("hw-beta", 0.2, "Holt-Winters β")
		noLSO        = flag.Bool("no-lso", false, "disable the level-shift/outlier wrapper")
		snapshotPath = flag.String("snapshot", "", "snapshot file (restored at startup, written periodically and at shutdown)")
		snapshotIvl  = flag.Duration("snapshot-interval", time.Minute, "interval between snapshots")
	)
	flag.Parse()

	cfg := predsvc.Config{
		Shards:      *shards,
		Capacity:    *capacity,
		ErrorWindow: *errWindow,
		MAOrder:     *maOrder,
		EWMAAlpha:   *ewmaAlpha,
		HWAlpha:     *hwAlpha,
		HWBeta:      *hwBeta,
		DisableLSO:  *noLSO,
	}
	srv := predsvc.NewServer(cfg)

	if *snapshotPath != "" {
		n, err := srv.RestoreSnapshot(*snapshotPath)
		if err != nil {
			log.Fatalf("predserverd: restore %s: %v", *snapshotPath, err)
		}
		if n > 0 {
			log.Printf("predserverd: restored %d paths from %s", n, *snapshotPath)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("predserverd: listen %s: %v", *addr, err)
	}
	log.Printf("predserverd: serving on http://%s (%d shards, capacity %d)",
		ln.Addr(), srv.Registry().Shards(), srv.Registry().Capacity())

	snapDone := make(chan error, 1)
	if *snapshotPath != "" {
		go func() { snapDone <- srv.SnapshotLoop(ctx, *snapshotPath, *snapshotIvl) }()
	} else {
		snapDone <- nil
	}

	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatalf("predserverd: serve: %v", err)
	}
	if err := <-snapDone; err != nil {
		log.Fatalf("predserverd: snapshot: %v", err)
	}
	// Serve has drained all in-flight requests by now, so this final
	// snapshot includes observations accepted during the graceful shutdown.
	if *snapshotPath != "" {
		if err := srv.WriteSnapshot(*snapshotPath); err != nil {
			log.Fatalf("predserverd: final snapshot: %v", err)
		}
		log.Printf("predserverd: final snapshot written to %s", *snapshotPath)
	}
	fmt.Println("predserverd: shut down cleanly")
}
