// Command tcppredict demonstrates a single prediction cycle on a simulated
// path: measure (avail-bw + ping), predict with the FB formula, run the
// actual transfer, and compare — then repeat a few times and show how an
// HB predictor homes in.
//
// Usage:
//
//	tcppredict [-cap 10] [-rtt 60] [-load 0.4] [-window 1048576]
//	           [-rounds 8] [-seed 1]
package main

import (
	"flag"
	"fmt"

	tcppred "repro"
	"repro/internal/stats"
)

func main() {
	capMbps := flag.Float64("cap", 10, "bottleneck capacity, Mbps")
	rttMs := flag.Float64("rtt", 60, "round-trip propagation delay, ms")
	load := flag.Float64("load", 0.4, "cross-traffic load (fraction of bottleneck)")
	window := flag.Int("window", 1<<20, "maximum TCP window (socket buffer), bytes")
	rounds := flag.Int("rounds", 8, "measure/predict/transfer rounds")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	capBps := *capMbps * 1e6
	rtt := *rttMs / 1e3
	buf := int(capBps * rtt / 8)
	if buf < 16*1500 {
		buf = 16 * 1500
	}
	spec := tcppred.PathSpec{
		Name: "demo",
		Forward: []tcppred.Hop{
			{CapacityBps: capBps * 5, PropDelay: rtt / 8, BufferBytes: 4 << 20},
			{CapacityBps: capBps, PropDelay: rtt / 4, BufferBytes: buf},
			{CapacityBps: capBps * 5, PropDelay: rtt / 8, BufferBytes: 4 << 20},
		},
	}
	path := tcppred.NewTestbedPath(spec, *load, *seed)
	fmt.Println(path)

	fb := tcppred.NewFBPredictor(tcppred.FBConfig{Model: tcppred.PFTK, MaxWindowBytes: *window})
	hb := tcppred.WithLSO(tcppred.NewHoltWinters(0.8, 0.2))

	fmt.Printf("%-6s %12s %12s %12s %10s %10s\n", "round", "FB pred", "HB pred", "actual", "FB err", "HB err")
	for i := 0; i < *rounds; i++ {
		m := path.Measure(20)
		fbPred := fb.Predict(m.FBInputs())
		hbPred, hbOK := hb.Predict()
		actual := path.Transfer(15, *window)
		hb.Observe(actual)

		hbCol, hbErrCol := "-", "-"
		if hbOK {
			hbCol = mbps(hbPred)
			hbErrCol = fmt.Sprintf("%+.2f", stats.RelativeError(hbPred, actual))
		}
		fmt.Printf("%-6d %12s %12s %12s %+10.2f %10s\n",
			i, mbps(fbPred), hbCol, mbps(actual),
			stats.RelativeError(fbPred, actual), hbErrCol)
		path.Wait(10)
	}
}

func mbps(bps float64) string { return fmt.Sprintf("%.2f Mbps", bps/1e6) }
