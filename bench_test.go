// Benchmarks regenerating every table and figure of the paper, plus the
// ablations from DESIGN.md §5 and micro-benchmarks of the substrates.
//
// Figure benches share one lazily-collected scaled-down dataset (collected
// once per process; collection itself is benchmarked by BenchmarkCollect
// and BenchmarkEpoch). Each figure bench then measures regenerating that
// figure's analysis, reporting the headline statistic via b.Log on demand.
//
//	go test -bench=. -benchmem
package tcppred_test

import (
	"sync"
	"testing"

	"repro/internal/availbw"
	"repro/internal/experiments"
	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/tcpmodel"
	"repro/internal/tcpsim"
	"repro/internal/testbed"
)

var (
	benchOnce sync.Once
	benchDS   *testbed.Dataset
	benchDS2  *testbed.Dataset
)

// benchConfig is a small campaign: enough epochs for the analyses to be
// non-trivial while keeping the one-off collection around ten seconds.
func benchConfig(seed int64) testbed.RunConfig {
	return testbed.RunConfig{
		Seed: seed,
		Catalog: testbed.CatalogConfig{
			Seed:      seed + 7777,
			NumPaths:  6,
			NumDSL:    2,
			NumTrans:  1,
			MinCapBps: 3e6,
			MaxCapBps: 12e6,
		},
		TracesPerPath:    1,
		EpochsPerTrace:   15,
		PingDuration:     15,
		TransferSec:      12,
		EpochGap:         5,
		SmallWindowBytes: 20 * 1024,
		SmallTransferSec: 8,
		Pathload:         availbw.Config{StreamLength: 60, StreamsPerRate: 1, MaxIterations: 8},
	}
}

func dataset(b *testing.B) *testbed.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchDS = testbed.Collect(benchConfig(1))
		cfg2 := benchConfig(2)
		cfg2.TransferSec = 24
		cfg2.Checkpoints = []float64{6, 12}
		benchDS2 = testbed.Collect(cfg2)
	})
	return benchDS
}

func benchFigure(b *testing.B, fn func(ds *testbed.Dataset) experiments.Result) {
	ds := dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := fn(ds)
		if len(res.Tables) == 0 {
			b.Fatal("figure produced no tables")
		}
	}
}

// BenchmarkEpoch measures one full Fig.-1 measurement epoch (pathload +
// ping window + bulk transfer + window-limited transfer) on a fresh path.
func BenchmarkEpoch(b *testing.B) {
	cfg := benchConfig(1)
	cfg.EpochsPerTrace = 1
	cfg.Catalog.NumPaths = 1
	cfg.Catalog.NumDSL = 0
	cfg.Catalog.NumTrans = 0
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		ds := testbed.Collect(cfg)
		if ds.Epochs() != 1 {
			b.Fatal("epoch did not run")
		}
	}
}

// BenchmarkCollect measures a whole small campaign.
func BenchmarkCollect(b *testing.B) {
	cfg := benchConfig(1)
	cfg.Catalog.NumPaths = 2
	cfg.Catalog.NumDSL = 1
	cfg.Catalog.NumTrans = 0
	cfg.EpochsPerTrace = 3
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		testbed.Collect(cfg)
	}
}

// One bench per paper figure (Fig. 1 is the epoch itself, above).

func BenchmarkFig2FBErrorCDF(b *testing.B)   { benchFigure(b, experiments.Fig2) }
func BenchmarkFig3LoadIncrease(b *testing.B) { benchFigure(b, experiments.Fig3) }
func BenchmarkFig4RelRTT(b *testing.B)       { benchFigure(b, experiments.Fig4) }
func BenchmarkFig5RelLoss(b *testing.B)      { benchFigure(b, experiments.Fig5) }
func BenchmarkFig6DuringFlow(b *testing.B)   { benchFigure(b, experiments.Fig6) }
func BenchmarkFig7PerPath(b *testing.B)      { benchFigure(b, experiments.Fig7) }
func BenchmarkFig8ThroughputVsError(b *testing.B) {
	benchFigure(b, experiments.Fig8)
}
func BenchmarkFig9LossVsError(b *testing.B) { benchFigure(b, experiments.Fig9) }
func BenchmarkFig10RTTVsError(b *testing.B) { benchFigure(b, experiments.Fig10) }

func BenchmarkFig11TransferLength(b *testing.B) {
	dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11(benchDS2, []float64{6, 12}, 24)
		if len(res.Tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkFig12WindowLimitedFB(b *testing.B) { benchFigure(b, experiments.Fig12) }
func BenchmarkFig13RevisedPFTK(b *testing.B)     { benchFigure(b, experiments.Fig13) }
func BenchmarkFig14SmoothedInputs(b *testing.B)  { benchFigure(b, experiments.Fig14) }

func BenchmarkFig15Pathologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig15()
		if len(res.Tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkFig16MA(b *testing.B) { benchFigure(b, experiments.Fig16) }
func BenchmarkFig17HW(b *testing.B) { benchFigure(b, experiments.Fig17) }
func BenchmarkFig18LSOSensitivity(b *testing.B) {
	benchFigure(b, experiments.Fig18)
}
func BenchmarkFig19FBvsHB(b *testing.B) { benchFigure(b, experiments.Fig19) }
func BenchmarkFig20CoV(b *testing.B)    { benchFigure(b, experiments.Fig20) }
func BenchmarkFig21PathClasses(b *testing.B) {
	benchFigure(b, experiments.Fig21)
}
func BenchmarkFig22WindowLimitedHB(b *testing.B) { benchFigure(b, experiments.Fig22) }
func BenchmarkFig23Interval(b *testing.B) {
	benchFigure(b, func(ds *testbed.Dataset) experiments.Result {
		return experiments.Fig23(ds, 1)
	})
}

// Ablation benches (DESIGN.md §5).

func BenchmarkAblationPFTKCongestionEvents(b *testing.B) {
	benchFigure(b, experiments.AblationCongestionEvents)
}
func BenchmarkAblationAvailBwBranch(b *testing.B) {
	benchFigure(b, experiments.AblationAvailBw)
}
func BenchmarkAblationLSOComponents(b *testing.B) {
	benchFigure(b, experiments.AblationLSOComponents)
}
func BenchmarkAblationDelayedACK(b *testing.B) {
	benchFigure(b, experiments.AblationDelayedACK)
}
func BenchmarkAblationHistoryLength(b *testing.B) {
	benchFigure(b, experiments.AblationHistoryLength)
}
func BenchmarkSummaryTable(b *testing.B) {
	benchFigure(b, experiments.SummaryTable)
}

// Substrate micro-benchmarks.

// BenchmarkEngineEvents measures raw event throughput of the simulator.
func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			eng.Schedule(0.001, fn)
		}
	}
	eng.Schedule(0.001, fn)
	b.ResetTimer()
	eng.Run()
}

// BenchmarkEngineSchedCancel measures schedule+cancel churn — the TCP RTO
// re-arm pattern, where nearly every scheduled timer is cancelled before
// it fires. It exercises the free list and the heap's dead-entry handling.
func BenchmarkEngineSchedCancel(b *testing.B) {
	eng := sim.NewEngine()
	var rto sim.Timer
	n := 0
	var fn func()
	fn = func() {
		n++
		rto.Cancel()
		rto = eng.Schedule(10, func() {})
		if n < b.N {
			eng.Schedule(0.001, fn)
		}
	}
	eng.Schedule(0.001, fn)
	b.ResetTimer()
	eng.RunUntil(float64(b.N) * 0.001)
	b.StopTimer()
	rto.Cancel()
	eng.Run()
}

// BenchmarkPacketPath measures one sender→queue→demux round trip through a
// pooled path: acquire a packet, push it across a hop, and recycle it at
// the far endpoint's default sink.
func BenchmarkPacketPath(b *testing.B) {
	eng := sim.NewEngine()
	path := netem.NewPath(eng, sim.NewRNG(1), netem.PathSpec{
		Name: "bench",
		Forward: []netem.Hop{
			{CapacityBps: 1e12, PropDelay: 0, BufferBytes: 1 << 30},
		},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := path.A.NewPacket()
		pkt.Flow = 1
		pkt.Kind = netem.KindData
		pkt.Size = 1500
		path.A.Send(pkt)
		eng.Run()
	}
}

// BenchmarkQueueForwarding measures packet forwarding through one queue.
func BenchmarkQueueForwarding(b *testing.B) {
	eng := sim.NewEngine()
	q := netem.NewQueue(eng, sim.NewRNG(1), "q", 1e12, 0, 1<<30, netem.Drop)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Receive(&netem.Packet{Size: 1500})
		eng.Run()
	}
}

// BenchmarkTCPTransfer measures simulating a 1 MB transfer end to end.
func BenchmarkTCPTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		rng := sim.NewRNG(int64(i + 1))
		path := netem.NewPath(eng, rng, netem.PathSpec{
			Name: "bench",
			Forward: []netem.Hop{
				{CapacityBps: 20e6, PropDelay: 0.02, BufferBytes: 96 * 1500},
			},
		})
		rep := iperf.RunBytes(eng, path, 1, 1<<20, 60, tcpsim.Config{})
		if rep.BytesAcked < 1<<20 {
			b.Fatal("transfer incomplete")
		}
	}
}

// benchCCSteadyState measures the per-ACK decision stream of a long
// transfer at the CongestionControl seam: growth on cumulative ACKs,
// periodic RTT samples, and an occasional recovery episode. This is the
// path the sender hits millions of times per simulated transfer, and the
// seam's contract is zero allocations on it (asserted by bench.sh's
// -zero-alloc gate).
func benchCCSteadyState(b *testing.B, cc tcpsim.Congestion) {
	ctl := tcpsim.NewCongestionControl(tcpsim.Config{Congestion: cc}.Defaults())
	b.ReportAllocs()
	b.ResetTimer()
	now := 0.0
	for i := 0; i < b.N; i++ {
		now += 0.0001
		if i%97 == 0 {
			ctl.OnRTT(0.05, now)
		}
		ctl.OnAck(tcpsim.AckInfo{Acked: 1, Pipe: int(ctl.Window()), Now: now})
		if i%5000 == 4999 {
			ctl.OnEnterRecovery(int(ctl.Window()), now)
			ctl.OnExitRecovery(now)
		}
	}
	if ctl.Window() <= 0 {
		b.Fatal("window collapsed")
	}
}

// BenchmarkCUBICTransfer measures CUBIC's steady-state transfer hot path.
func BenchmarkCUBICTransfer(b *testing.B) { benchCCSteadyState(b, tcpsim.CCCubic) }

// BenchmarkBBRTransfer measures BBR's steady-state transfer hot path
// (round accounting, minmax filters, state machine — all per-ACK).
func BenchmarkBBRTransfer(b *testing.B) { benchCCSteadyState(b, tcpsim.CCBBR) }

// BenchmarkPFTK measures one formula evaluation.
func BenchmarkPFTK(b *testing.B) {
	p := tcpmodel.Params{MSS: 1460, RTT: 0.08, Loss: 0.01, B: 2, RTO: 1, Wmax: 718}
	for i := 0; i < b.N; i++ {
		if tcpmodel.PFTK(p) <= 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkHWLSOObserve measures one HB observation including the LSO
// re-scan, the predictor's hot path.
func BenchmarkHWLSOObserve(b *testing.B) {
	p := predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), predict.DefaultLSOConfig())
	rng := sim.NewRNG(1)
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.Normal(5e6, 5e5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(vals[i%len(vals)])
	}
}

// BenchmarkRegressionObserve measures one training step of the online
// least-squares family — the decayed normal-equation update plus the
// history-ring push — with fresh features installed per observation, the
// serving layer's measure→observe hot path. Steady state must not
// allocate: the normal equations and rings are fixed-size arrays.
func BenchmarkRegressionObserve(b *testing.B) {
	r := predict.NewRegression(predict.RegressionConfig{})
	rng := sim.NewRNG(1)
	vals := make([]float64, 4096)
	ins := make([]predict.FBInputs, len(vals))
	for i := range vals {
		vals[i] = rng.Normal(5e6, 5e5)
		ins[i] = predict.FBInputs{
			RTT:      rng.Uniform(0.01, 0.2),
			LossRate: rng.Uniform(0, 0.01),
			AvailBw:  rng.Uniform(1e6, 50e6),
		}
	}
	for i := 0; i < 256; i++ { // warm to steady state
		r.SetFeatures(ins[i])
		r.Observe(vals[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(vals)
		r.SetFeatures(ins[j])
		r.Observe(vals[j])
	}
}

// BenchmarkECMObserve measures one training step of the empirical
// conditional method — bucket lookup plus two bounded ring pushes — with
// fresh conditions installed per observation. Steady state must not
// allocate: every reachable bucket exists after warmup.
func BenchmarkECMObserve(b *testing.B) {
	e := predict.NewECM(predict.ECMConfig{})
	rng := sim.NewRNG(2)
	vals := make([]float64, 4096)
	ins := make([]predict.FBInputs, len(vals))
	for i := range vals {
		vals[i] = rng.Normal(5e6, 5e5)
		ins[i] = predict.FBInputs{
			RTT:      rng.Uniform(0.01, 0.2),
			LossRate: rng.Uniform(0, 0.01),
			AvailBw:  rng.Uniform(1e6, 50e6),
		}
	}
	for i := 0; i < len(vals); i++ { // warm: materialize every bucket
		e.SetConditions(ins[i])
		e.Observe(vals[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(vals)
		e.SetConditions(ins[j])
		e.Observe(vals[j])
	}
}

// BenchmarkAvailBwEstimate measures one pathload-style estimation run.
func BenchmarkAvailBwEstimate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		rng := sim.NewRNG(int64(i + 1))
		path := netem.NewPath(eng, rng, netem.PathSpec{
			Name: "abw",
			Forward: []netem.Hop{
				{CapacityBps: 10e6, PropDelay: 0.02, BufferBytes: 128 * 1500},
			},
		})
		est := availbw.NewEstimator(eng, path, 3, availbw.Config{
			StreamLength: 60, StreamsPerRate: 1, MaxIterations: 8,
		})
		if r := est.Estimate(); r.Estimate <= 0 {
			b.Fatal("no estimate")
		}
	}
}

// Extension benches (paper §7 future work + related-work comparisons).

func BenchmarkExtAR(b *testing.B)     { benchFigure(b, experiments.ExtAR) }
func BenchmarkExtHybrid(b *testing.B) { benchFigure(b, experiments.ExtHybrid) }
func BenchmarkExtNWSProbes(b *testing.B) {
	benchFigure(b, experiments.ExtNWSProbes)
}
func BenchmarkExtStationarity(b *testing.B) {
	benchFigure(b, experiments.ExtStationarity)
}
func BenchmarkExtZoo(b *testing.B) { benchFigure(b, experiments.ExtZoo) }

func BenchmarkExtShortTransfers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.ExtShortTransfers(int64(i + 1))
		if len(res.Tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// BenchmarkARFit measures one AR(3) fit+forecast over a full window.
func BenchmarkARFit(b *testing.B) {
	a := predict.NewAR(3, 64)
	rng := sim.NewRNG(1)
	for i := 0; i < 64; i++ {
		a.Observe(rng.Normal(5e6, 5e5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := a.Predict(); !ok {
			b.Fatal("no prediction")
		}
	}
}
