// Package tcppred is the public facade of the reproduction of
// "On the predictability of large transfer TCP throughput" (He, Dovrolis,
// Ammar; SIGCOMM 2005 / Computer Networks 2007).
//
// It exposes the two predictor families the paper studies and the
// simulated wide-area testbed used to evaluate them:
//
//   - Formula-Based (FB) prediction: NewFBPredictor applies the PFTK (or
//     Mathis / revised-PFTK) TCP throughput model to a-priori path
//     measurements — RTT and loss rate from periodic probing, and an
//     available-bandwidth estimate for lossless paths (paper Eq. 3).
//
//   - History-Based (HB) prediction: NewMovingAverage, NewEWMA and
//     NewHoltWinters forecast from previous transfer throughputs; WithLSO
//     wraps any of them with the paper's level-shift restart and outlier
//     removal heuristics.
//
// The measurement side (Measure, NewTestbedPath) lets applications collect
// the inputs on simulated paths. Full measurement campaigns run on the
// campaign runner (CollectDataset) with context cancellation, fault
// isolation and progress observers; the paper's figure set lives in
// cmd/ronsim and cmd/repro.
package tcppred

import (
	"context"
	"fmt"
	"io"

	"repro/internal/availbw"
	"repro/internal/campaign"
	"repro/internal/faultinject"
	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/predsvc"
	"repro/internal/predsvc/cluster"
	"repro/internal/predsvc/store"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/tcpmodel"
	"repro/internal/tcpsim"
	"repro/internal/testbed"
)

// Model selects a TCP throughput formula for FB prediction.
type Model = predict.Model

// Supported formulas.
const (
	PFTK        = predict.ModelPFTK
	PFTKPaper   = predict.ModelPFTKPaper
	RevisedPFTK = predict.ModelRevisedPFTK
	Mathis      = predict.ModelMathis
)

// FBInputs are the a-priori measurements consumed by an FB prediction:
// RTT (seconds) and loss rate from periodic probing before the flow, and
// an avail-bw estimate (bits/s) for the lossless branch.
type FBInputs = predict.FBInputs

// FBPredictor predicts bulk TCP throughput from path measurements using a
// throughput formula (paper Eq. 3).
type FBPredictor = predict.FB

// FBConfig configures an FB predictor: formula, MSS, maximum window, and
// the delayed-ACK factor b.
type FBConfig = predict.FBConfig

// NewFBPredictor returns a formula-based predictor.
func NewFBPredictor(cfg FBConfig) *FBPredictor { return predict.NewFB(cfg) }

// HBPredictor is a one-step-ahead throughput forecaster fed with the
// observed throughput of successive transfers on one path.
type HBPredictor = predict.HB

// NewMovingAverage returns the n-order Moving Average predictor.
func NewMovingAverage(n int) HBPredictor { return predict.NewMA(n) }

// NewEWMA returns the exponentially weighted moving average predictor with
// weight alpha in (0, 1).
func NewEWMA(alpha float64) HBPredictor { return predict.NewEWMA(alpha) }

// NewHoltWinters returns the non-seasonal Holt-Winters predictor; the
// paper uses alpha = 0.8, beta = 0.2.
func NewHoltWinters(alpha, beta float64) HBPredictor {
	return predict.NewHoltWinters(alpha, beta)
}

// NewAR returns an autoregressive AR(p) predictor fitted online over a
// sliding window (an extension in the direction of the paper's ARIMA
// future work; window 0 picks a default).
func NewAR(order, window int) HBPredictor { return predict.NewAR(order, window) }

// Hybrid combines the FB formula with history: it learns the formula's
// multiplicative bias on a path from observed transfers (paper §7 future
// work). Use Predict with fresh measurements, then Observe the achieved
// throughput.
type Hybrid = predict.Hybrid

// NewHybrid returns a hybrid FB×history predictor; alpha is the EWMA
// weight of the learned bias (0 picks the default 0.5).
func NewHybrid(cfg FBConfig, alpha float64) *Hybrid {
	return predict.NewHybrid(cfg, alpha)
}

// ShortTransferThroughput predicts the average throughput (bits/s) of a
// transfer of n bytes using the slow-start-aware latency model (Cardwell
// et al.; paper §4.2.7), given a-priori RTT and loss rate. Use this
// instead of an FBPredictor when the transfer is too short to neglect
// slow start.
func ShortTransferThroughput(n int64, rtt, lossRate float64, maxWindowBytes int) float64 {
	if maxWindowBytes == 0 {
		maxWindowBytes = 1 << 20
	}
	d := (n + 1459) / 1460
	p := tcpmodel.ShortTransferParams{
		Params: tcpmodel.Params{
			MSS: 1460, RTT: rtt, Loss: lossRate, B: 2,
			RTO:  predict.RTO(rtt),
			Wmax: float64(maxWindowBytes) / 1460,
		},
	}
	return tcpmodel.ShortTransferThroughput(p, d) * 8
}

// LSOConfig holds the level-shift (γ) and outlier (ψ) thresholds; the
// paper's values are γ = 0.3, ψ = 0.4.
type LSOConfig = predict.LSOConfig

// WithLSO wraps an HB predictor with the paper's level-shift restart and
// outlier removal heuristics (paper §5.2) using the default parameters.
func WithLSO(inner HBPredictor) HBPredictor {
	return predict.NewLSO(inner, predict.DefaultLSOConfig())
}

// WithLSOConfig is WithLSO with explicit thresholds.
func WithLSOConfig(inner HBPredictor, cfg LSOConfig) HBPredictor {
	return predict.NewLSO(inner, cfg)
}

// Quantiles is a p10/p50/p90 interval forecast of throughput (bits/s):
// the point forecast plus an uncertainty band derived from the
// predictor's recent Eq.-4 relative errors.
type Quantiles = predict.Quantiles

// QuantilePredictor is implemented by predictors that forecast an
// interval, not just a point — see WithQuantiles and NewECMPredictor.
type QuantilePredictor = predict.QuantilePredictor

// WithQuantiles wraps an HB predictor so its point forecasts carry a
// [p10,p90] interval from the empirical quantiles of its last `window`
// relative errors (0 picks the default 50).
func WithQuantiles(inner HBPredictor, window int) *predict.ResidualQuantile {
	return predict.NewResidualQuantile(inner, window, 0)
}

// RegressionConfig configures the online feature regression predictor.
type RegressionConfig = predict.RegressionConfig

// RegressionPredictor forecasts throughput by online least-squares over
// path features (RTT, loss, avail-bw, recent history) — the
// measurement-conditioned family in the direction of Vazhkudai & Schopf.
// Call SetFeatures with fresh measurements before Predict/Observe.
type RegressionPredictor = predict.Regression

// NewRegressionPredictor returns an online feature-regression predictor.
func NewRegressionPredictor(cfg RegressionConfig) *RegressionPredictor {
	return predict.NewRegression(cfg)
}

// ECMConfig configures the empirical conditional method predictor.
type ECMConfig = predict.ECMConfig

// ECMPredictor forecasts throughput from the empirical conditional
// distribution of past throughputs whose pre-flow measurements fell in
// the same bucket; its quantiles are native, not residual-derived. Call
// SetConditions with fresh measurements before Predict/Observe.
type ECMPredictor = predict.ECM

// NewECMPredictor returns an empirical-conditional-method predictor.
func NewECMPredictor(cfg ECMConfig) *ECMPredictor { return predict.NewECM(cfg) }

// SwitcherConfig configures the stability-aware switcher: the coefficient
// of variation threshold separating stable from volatile regimes, and the
// window it is computed over.
type SwitcherConfig = predict.SwitcherConfig

// NewStabilitySwitcher returns an HB predictor that routes between a
// stable-regime and a volatile-regime inner predictor on the recent
// coefficient of variation of the throughput series (Sun et al. style).
func NewStabilitySwitcher(stable, volatile HBPredictor, cfg SwitcherConfig) HBPredictor {
	return predict.NewStabilitySwitcher(stable, volatile, cfg)
}

// RunConfig configures a measurement campaign on the simulated RON-style
// testbed: path catalog, traces per path, epochs per trace, parallelism,
// retries, and an optional progress Observer.
type RunConfig = testbed.RunConfig

// Dataset is the result of a campaign: one Trace per (path, trace index),
// each a sequence of per-epoch measurement records.
type Dataset = testbed.Dataset

// Observer receives campaign lifecycle events (traces started/finished,
// epochs completed) — see NewProgressObserver and NewJSONLObserver.
type Observer = campaign.Observer

// DefaultCampaign returns the scaled-down default campaign configuration
// (12 paths × 2 traces × 40 epochs) for the given seed.
func DefaultCampaign(seed int64) RunConfig { return testbed.DefaultScaled(seed) }

// PaperCampaign returns the paper's full-scale campaign configuration
// (35 paths × 7 traces × 150 epochs; slow).
func PaperCampaign(seed int64) RunConfig { return testbed.PaperScale(seed) }

// Congestion selects the target transfer's congestion control in a
// scenario campaign: CCReno (the paper's sender, the default), CCCubic
// (RFC 8312), or CCBBR (a model-based BBR-like sender whose throughput is
// decoupled from loss rate).
type Congestion = tcpsim.Congestion

// The supported congestion controls.
const (
	CCReno  = tcpsim.CCReno
	CCCubic = tcpsim.CCCubic
	CCBBR   = tcpsim.CCBBR
)

// ScenarioConfig controls the (sender × link) scenario-matrix campaign:
// which congestion controls, which bottleneck regimes (droptail,
// randomdrop, cellular, rwnd-limited), and how many path instances per
// cell.
type ScenarioConfig = testbed.ScenarioConfig

// ScenarioCampaign returns the scenario-matrix campaign configuration for
// the given seed: every sender in scfg crossed with every link type, each
// cell sharing a byte-identical substrate across senders so cross-sender
// comparisons isolate the congestion control. Score the collected dataset
// with `repro -only ext-cc` (or experiments.ExtCC).
func ScenarioCampaign(seed int64, scfg ScenarioConfig) RunConfig {
	return testbed.ScenarioScaled(seed, scfg)
}

// CollectDataset runs the campaign described by cfg under ctx. Cancelling
// the context aborts cleanly at epoch boundaries: the completed traces are
// still returned as a partial dataset alongside ctx.Err(). A trace that
// faults is isolated and retried with the same seed; persistent failures
// are reported in the returned error while the rest of the campaign
// completes.
func CollectDataset(ctx context.Context, cfg RunConfig) (*Dataset, error) {
	return testbed.CollectContext(ctx, cfg)
}

// NewProgressObserver returns an Observer that renders a live progress
// line (trace counts, epoch rate, ETA) to w; assign it to
// RunConfig.Observer.
func NewProgressObserver(w io.Writer) Observer { return campaign.NewProgress(w) }

// NewJSONLObserver returns an Observer that emits one JSON object per
// campaign event to w, for machine consumption.
func NewJSONLObserver(w io.Writer) Observer { return campaign.NewJSONL(w) }

// Observability is the unified telemetry bundle (span tracer + Prometheus
// metrics registry + HTTP endpoints). Assign one to RunConfig.Obs or
// ServiceConfig.Obs to instrument a campaign or a prediction server; a
// nil Observability is valid everywhere and turns instrumentation off.
type Observability = obs.Obs

// NewObservability returns a telemetry bundle retaining up to
// spanCapacity completed spans (0 picks the default). Serve its Handler
// (or call Serve) to expose /metrics, /debug/pprof/ and /debug/trace;
// WriteFiles dumps the same telemetry as offline artifacts.
func NewObservability(spanCapacity int) *Observability { return obs.New(spanCapacity) }

// ServiceConfig tunes the online prediction service: registry sharding and
// LRU capacity, the per-path HB ensemble, and the rolling accuracy
// windows. The zero value picks the paper-informed defaults.
type ServiceConfig = predsvc.Config

// PathRegistry is the path → predictor-session façade at the heart of the
// serving layer, backed by a SessionStore — in-memory sharded LRU by
// default, or a two-tier disk-spill store when ServiceConfig.SpillDir is
// set.
type PathRegistry = predsvc.Registry

// SessionStore is the storage seam under the registry: any implementation
// of the store.Store contract (get-or-create, lookup, LRU range,
// evict-notify, tier stats). The package ships MemStore (power-of-two
// sharded in-memory LRU) and SpillStore (hot tier + append-only checksummed
// spill log with fault-back on access).
type SessionStore = store.Store

// StoreTierStats is one store's occupancy and traffic counters per tier;
// exposed at /v1/stats and as predsvc_store_* Prometheus gauges.
type StoreTierStats = store.TierStats

// ClusterMap routes paths to nodes by rendezvous (highest-random-weight)
// hashing: every client agrees on each path's owner without coordination,
// and removing a node only remaps the paths it owned. cmd/predload's
// -cluster flag uses it for client-side routing.
type ClusterMap = cluster.Map

// NewClusterMap builds a rendezvous-hash router over the given node names
// (base URLs, host:ports — any stable identifiers).
func NewClusterMap(nodes ...string) *ClusterMap { return cluster.New(nodes...) }

// ClusterClient routes requests over a ClusterMap and retries through the
// failures a live cluster throws at it — 429 load shedding, 5xx responses,
// and connection errors while a node restarts (it parks on /readyz probes
// until the node is back, then replays). predload and predctl are built on
// it; embedders get the same ride-out-the-restart behavior.
type ClusterClient = cluster.Client

// ClusterClientConfig tunes a ClusterClient: node set, backoff bounds,
// retry deadline (the window a node restart must fit into), and the
// /readyz probing cadence.
type ClusterClientConfig = cluster.ClientConfig

// NewClusterClient builds a retrying cluster client over the given nodes.
func NewClusterClient(cfg ClusterClientConfig) *ClusterClient { return cluster.NewClient(cfg) }

// RebalanceConfig drives one cluster membership change (see Rebalance).
type RebalanceConfig = predsvc.RebalanceConfig

// RebalanceReport summarizes a Rebalance run: sessions moved, imported,
// skipped (already present — the signature of a retried pass), dropped,
// and how many failed passes were retried.
type RebalanceReport = predsvc.RebalanceReport

// Rebalance resizes a cluster from one membership to another using the
// session-handoff protocol (DESIGN.md §14): every node of the old
// membership exports the sessions the new rendezvous map assigns
// elsewhere, each session is imported into its new owner last-writer-wins
// on observation count, and sources drop their copies only after every
// import succeeded — so a kill anywhere mid-transfer loses nothing and a
// retried run converges. cmd/predctl's rebalance subcommand wraps it.
func Rebalance(ctx context.Context, cfg RebalanceConfig) (*RebalanceReport, error) {
	return predsvc.Rebalance(ctx, cfg)
}

// PredictorSession is the goroutine-safe per-path predictor state: the HB
// ensemble (MA/EWMA/Holt-Winters, LSO-wrapped by default), the FB
// predictor with its latest measurements, and rolling Eq. 4/RMSRE
// accuracy statistics.
type PredictorSession = predsvc.Session

// Prediction is the service's full per-path answer: every predictor's
// forecast and rolling accuracy plus the best predictor right now.
type Prediction = predsvc.Prediction

// PredictionServer serves the registry over the HTTP JSON API
// (POST /v1/observe, POST /v1/measure, GET /v1/predict, GET /v1/stats,
// GET /debug/vars) with graceful context-driven shutdown; cmd/predserverd
// is its daemon wrapper and cmd/predload its load generator.
//
// The serving path is hardened: handler panics become 500s, load past
// ServiceConfig.MaxInFlight is shed with 429 + Retry-After, snapshots are
// checksummed and retried with backoff, a corrupt snapshot at boot is
// quarantined rather than fatal, and FB forecasts whose measurements have
// aged past ServiceConfig.StaleAfter observations are flagged stale and
// excluded from best-predictor selection.
type PredictionServer = predsvc.Server

// NewPathRegistry returns a sharded LRU path registry.
func NewPathRegistry(cfg ServiceConfig) *PathRegistry { return predsvc.NewRegistry(cfg) }

// NewPredictionServer returns an HTTP prediction server over a fresh
// registry.
func NewPredictionServer(cfg ServiceConfig) *PredictionServer { return predsvc.NewServer(cfg) }

// FaultInjector is a deterministic, seedable fault-injection plan: named
// sites in the serving and snapshot paths consult it and fail, delay, or
// corrupt according to its rules. Assign one to ServiceConfig.Faults for
// chaos testing; a nil injector is inert and costs one predictable branch
// per site.
type FaultInjector = faultinject.Injector

// FaultRule describes when one fault-injection site fires: every Nth call,
// with a probability, after a warm-up, a limited number of times.
type FaultRule = faultinject.Rule

// NewFaultInjector builds a deterministic injector from seed and rules.
// For a fixed seed and rule set the total number of injected faults over N
// calls is independent of goroutine interleaving.
func NewFaultInjector(seed int64, rules ...FaultRule) *FaultInjector {
	return faultinject.New(seed, rules...)
}

// PathSpec describes a simulated bidirectional network path.
type PathSpec = netem.PathSpec

// Hop is one link of a PathSpec.
type Hop = netem.Hop

// Path is a live simulated path bound to a simulation Engine.
type Path struct {
	eng  *sim.Engine
	path *netem.Path
	next netem.FlowID
}

// NewTestbedPath instantiates spec on a fresh simulation engine, with an
// optional Poisson cross-traffic load (fraction of the bottleneck
// capacity) to make measurements non-trivial.
func NewTestbedPath(spec PathSpec, crossLoad float64, seed int64) *Path {
	rng := sim.NewRNG(seed)
	eng := sim.NewEngine()
	p := netem.NewPath(eng, rng.Fork(), spec)
	if crossLoad > 0 {
		bn := p.Bottleneck()
		src := netem.NewPoissonSource(eng, rng.Fork(), 900, crossLoad*bn.CapacityBps, 1000, nil, bn)
		src.Start()
	}
	probe.NewResponder(p.B, 2)
	eng.RunUntil(2) // warm up cross traffic
	return &Path{eng: eng, path: p, next: 10}
}

// Measurement bundles the a-priori quantities of paper Table 1 for a path.
type Measurement struct {
	RTT      float64 // T̂, seconds
	LossRate float64 // p̂
	AvailBw  float64 // Â, bits/s
}

// FBInputs converts the measurement for use with an FBPredictor.
func (m Measurement) FBInputs() FBInputs {
	return FBInputs{RTT: m.RTT, LossRate: m.LossRate, AvailBw: m.AvailBw}
}

// Measure performs the paper's pre-transfer measurement on the path: a
// pathload-style avail-bw estimate followed by pingDuration seconds of
// periodic probing.
func (p *Path) Measure(pingDuration float64) Measurement {
	est := availbw.NewEstimator(p.eng, p.path, 3, availbw.Config{
		StreamLength: 80, StreamsPerRate: 1, MaxIterations: 10,
	})
	abw := est.Estimate()
	res := probe.Measure(p.eng, p.path.A, 2, probe.Config{}, pingDuration)
	return Measurement{RTT: res.MeanRTT, LossRate: res.LossRate, AvailBw: abw.Estimate}
}

// Transfer runs a bulk TCP transfer of the given duration and maximum
// window and returns the achieved throughput in bits per second.
func (p *Path) Transfer(duration float64, maxWindowBytes int) float64 {
	p.next++
	rep := iperf.Run(p.eng, p.path, p.next, iperf.Config{
		Duration: duration,
		TCP:      tcpsim.Config{MaxWindowBytes: maxWindowBytes, DelayedAck: true},
	})
	return rep.ThroughputBps
}

// TransferBytes transfers exactly n bytes and returns the throughput in
// bits per second and the transfer duration in (virtual) seconds.
func (p *Path) TransferBytes(n int64, maxWindowBytes int) (bps, seconds float64) {
	p.next++
	rep := iperf.RunBytes(p.eng, p.path, p.next, n, 3600, tcpsim.Config{
		MaxWindowBytes: maxWindowBytes, DelayedAck: true,
	})
	return rep.ThroughputBps, rep.Duration
}

// Now returns the path's virtual clock (seconds).
func (p *Path) Now() float64 { return p.eng.Now() }

// Wait advances virtual time by d seconds (ambient traffic keeps flowing).
func (p *Path) Wait(d float64) { p.eng.RunUntil(p.eng.Now() + d) }

// String describes the path.
func (p *Path) String() string {
	bn := p.path.Bottleneck()
	return fmt.Sprintf("path %s: bottleneck %.1f Mbps, base RTT %.1f ms",
		p.path.Name, bn.CapacityBps/1e6, p.path.BaseRTT(1500)*1e3)
}
