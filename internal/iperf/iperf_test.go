package iperf_test

import (
	"testing"

	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

func buildPath(eng *sim.Engine) *netem.Path {
	rng := sim.NewRNG(1)
	return netem.NewPath(eng, rng, netem.PathSpec{
		Name: "iperf",
		Forward: []netem.Hop{
			{CapacityBps: 8e6, PropDelay: 0.03, BufferBytes: 64 * 1500},
		},
	})
}

func TestRunReportsThroughput(t *testing.T) {
	eng := sim.NewEngine()
	path := buildPath(eng)
	rep := iperf.Run(eng, path, 1, iperf.Config{Duration: 20})
	if rep.ThroughputBps < 5e6 || rep.ThroughputBps > 8e6 {
		t.Errorf("throughput %.2f Mbps on idle 8 Mbps path", rep.ThroughputBps/1e6)
	}
	if rep.Duration < 19.9 || rep.Duration > 20.1 {
		t.Errorf("duration %.2f, want 20", rep.Duration)
	}
	if rep.BytesAcked == 0 || rep.SegmentsSent == 0 {
		t.Error("empty counters")
	}
	if rep.FlowRTT <= 0 {
		t.Error("no flow RTT")
	}
}

func TestRunDefaultDuration(t *testing.T) {
	eng := sim.NewEngine()
	path := buildPath(eng)
	rep := iperf.Run(eng, path, 1, iperf.Config{})
	if rep.Duration < 49 || rep.Duration > 51 {
		t.Errorf("default duration %.1f, want the paper's 50 s", rep.Duration)
	}
}

func TestRunCheckpoints(t *testing.T) {
	eng := sim.NewEngine()
	path := buildPath(eng)
	rep := iperf.Run(eng, path, 1, iperf.Config{
		Duration:    20,
		Checkpoints: []float64{5, 10},
	})
	if len(rep.Checkpoints) != 2 {
		t.Fatalf("checkpoints = %v", rep.Checkpoints)
	}
	for i, c := range rep.Checkpoints {
		if c <= 0 {
			t.Errorf("checkpoint %d empty", i)
		}
	}
	// Prefix goodput at 5 s includes slow start, so it should not exceed
	// the 10 s figure by much; both near the final.
	if rep.Checkpoints[0] > rep.ThroughputBps*1.5 {
		t.Errorf("5s checkpoint %.2f wildly above final %.2f", rep.Checkpoints[0]/1e6, rep.ThroughputBps/1e6)
	}
}

func TestRunCheckpointBeyondDurationIgnored(t *testing.T) {
	eng := sim.NewEngine()
	path := buildPath(eng)
	rep := iperf.Run(eng, path, 1, iperf.Config{Duration: 10, Checkpoints: []float64{5, 30}})
	if rep.Checkpoints[1] != 0 {
		t.Errorf("checkpoint beyond duration = %v, want 0", rep.Checkpoints[1])
	}
}

func TestRunBytesFinishes(t *testing.T) {
	eng := sim.NewEngine()
	path := buildPath(eng)
	rep := iperf.RunBytes(eng, path, 1, 512*1024, 120, tcpsim.Config{})
	if rep.BytesAcked < 512*1024 {
		t.Errorf("acked %d, want ≥ 512 KiB", rep.BytesAcked)
	}
	if rep.Duration >= 120 {
		t.Error("transfer did not complete before maxWait")
	}
}

func TestRunBytesRespectsMaxWait(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	// Dead path: nothing completes; RunBytes must return at maxWait.
	path := netem.NewPath(eng, rng, netem.PathSpec{
		Name: "dead",
		Forward: []netem.Hop{
			{CapacityBps: 8e6, PropDelay: 0.03, BufferBytes: 64 * 1500, LossProb: 1},
		},
	})
	rep := iperf.RunBytes(eng, path, 1, 1<<20, 5, tcpsim.Config{})
	if rep.Duration < 5 {
		t.Errorf("returned after %.2f s, want to wait the full 5 s", rep.Duration)
	}
	if rep.BytesAcked != 0 {
		t.Error("bytes acked on a fully lossy path")
	}
}

func TestSequentialTransfersIndependent(t *testing.T) {
	eng := sim.NewEngine()
	path := buildPath(eng)
	r1 := iperf.Run(eng, path, 1, iperf.Config{Duration: 10})
	r2 := iperf.Run(eng, path, 2, iperf.Config{Duration: 10})
	if r1.ThroughputBps == 0 || r2.ThroughputBps == 0 {
		t.Fatal("sequential transfers failed")
	}
	ratio := r1.ThroughputBps / r2.ThroughputBps
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("sequential transfers differ by %.2fx on an idle path", ratio)
	}
}
