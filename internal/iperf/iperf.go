// Package iperf drives bulk TCP transfers over simulated paths, in the role
// the IPerf tool plays in the paper: start a transfer with a configurable
// maximum window (socket buffer), run it for a fixed duration, and report
// the achieved throughput plus the path characteristics the flow itself
// experienced (T, p, p′).
package iperf

import (
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// Report summarizes a finished transfer.
type Report struct {
	Duration      float64 // seconds the transfer ran
	BytesAcked    int64
	ThroughputBps float64 // payload goodput, bits per second

	FlowRTT       float64 // mean RTT the flow experienced (T)
	FlowLossRate  float64 // packet loss rate the flow experienced (p)
	FlowEventRate float64 // congestion-event rate (p′)
	Retransmits   int64
	Timeouts      int64
	LossEvents    int64
	SegmentsSent  int64
	// CC-agnostic sender state at the end of the transfer (see
	// tcpsim.SenderStats): defined for every congestion control, unlike
	// cwnd/ssthresh.
	CC               tcpsim.Congestion
	PacingRateBps    float64
	DeliveryRateBps  float64
	RecoveryEpisodes int64
	// Checkpoints holds goodput over the first d seconds for each requested
	// checkpoint duration, aligned with Config.Checkpoints.
	Checkpoints []float64
}

// Config controls a transfer.
type Config struct {
	Duration    float64       // transfer duration, seconds (paper: 50 s / 120 s)
	TCP         tcpsim.Config // window size etc.
	Checkpoints []float64     // optional prefix durations to report (e.g. 30, 60)
}

// Run performs a timed bulk transfer of flow over path, advancing the
// engine. It returns when the transfer duration has elapsed (plus a small
// drain so in-flight ACKs settle into the stats).
func Run(eng *sim.Engine, path *netem.Path, flow netem.FlowID, cfg Config) Report {
	if cfg.Duration <= 0 {
		cfg.Duration = 50
	}
	conn := tcpsim.Dial(eng, path, flow, cfg.TCP)
	start := eng.Now()
	conn.Sender.Start()

	rep := Report{Checkpoints: make([]float64, len(cfg.Checkpoints))}
	marks := append([]float64(nil), cfg.Checkpoints...)
	for i, d := range marks {
		i, d := i, d
		if d <= 0 || d > cfg.Duration {
			continue
		}
		eng.At(start+d, func() {
			rep.Checkpoints[i] = float64(conn.Sender.BytesAcked()) * 8 / d
		})
	}

	eng.RunUntil(start + cfg.Duration)
	conn.Sender.Stop()
	conn.Receiver.Stop()

	st := conn.Sender.Stats()
	elapsed := eng.Now() - start
	rep.Duration = elapsed
	rep.BytesAcked = st.BytesAcked
	if elapsed > 0 {
		rep.ThroughputBps = float64(st.BytesAcked) * 8 / elapsed
	}
	rep.FlowRTT = st.MeanRTT()
	rep.FlowLossRate = st.LossRate()
	rep.FlowEventRate = st.CongestionEventRate()
	rep.Retransmits = st.Retransmits
	rep.Timeouts = st.Timeouts
	rep.LossEvents = st.LossEvents
	rep.SegmentsSent = st.SegmentsSent
	ss := conn.Sender.SenderStats()
	rep.CC = ss.CC
	rep.PacingRateBps = ss.PacingRateBps
	rep.DeliveryRateBps = ss.DeliveryRateBps
	rep.RecoveryEpisodes = ss.RecoveryEpisodes
	return rep
}

// RunBytes performs a size-limited transfer (e.g. 1 MB) and returns when
// the last byte is acknowledged or maxWait elapses.
func RunBytes(eng *sim.Engine, path *netem.Path, flow netem.FlowID, bytes int64, maxWait float64, tcpCfg tcpsim.Config) Report {
	conn := tcpsim.Dial(eng, path, flow, tcpCfg)
	start := eng.Now()
	finished := false
	conn.Sender.SetLimit(bytes, func() { finished = true })
	conn.Sender.Start()
	deadline := start + maxWait
	for !finished && eng.Now() < deadline {
		eng.RunUntil(minf(deadline, eng.Now()+0.1))
	}
	conn.Sender.Stop()
	conn.Receiver.Stop()

	st := conn.Sender.Stats()
	elapsed := eng.Now() - start
	rep := Report{
		Duration:      elapsed,
		BytesAcked:    st.BytesAcked,
		FlowRTT:       st.MeanRTT(),
		FlowLossRate:  st.LossRate(),
		FlowEventRate: st.CongestionEventRate(),
		Retransmits:   st.Retransmits,
		Timeouts:      st.Timeouts,
		LossEvents:    st.LossEvents,
		SegmentsSent:  st.SegmentsSent,
	}
	if elapsed > 0 {
		rep.ThroughputBps = float64(st.BytesAcked) * 8 / elapsed
	}
	return rep
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
