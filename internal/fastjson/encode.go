package fastjson

import (
	"math"
	"strconv"
	"unicode/utf8"
)

const hexDigits = "0123456789abcdef"

// safeSet reports the ASCII bytes that can appear verbatim inside a JSON
// string encoded the way json.Marshal does by default: printable, not a
// quote or backslash, and not one of the HTML-unsafe <, >, & (which
// encoding/json escapes unless SetEscapeHTML(false)).
var safeSet = func() (s [utf8.RuneSelf]bool) {
	for i := 0x20; i < utf8.RuneSelf; i++ {
		s[i] = true
	}
	for _, c := range []byte{'"', '\\', '<', '>', '&'} {
		s[c] = false
	}
	return
}()

// AppendString appends s as a JSON string, byte-identical to
// json.Marshal(s).
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if safeSet[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			dst = appendEscapedByte(dst, b)
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		// U+2028 and U+2029 are valid JSON but break JSONP consumers;
		// encoding/json escapes them unconditionally, so we do too.
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// AppendStringBytes is AppendString over a byte slice, for decoded wire
// fields that were never materialized as strings.
func AppendStringBytes(dst, s []byte) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if safeSet[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			dst = appendEscapedByte(dst, b)
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRune(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

func appendEscapedByte(dst []byte, b byte) []byte {
	switch b {
	case '\\', '"':
		return append(dst, '\\', b)
	case '\b':
		return append(dst, '\\', 'b')
	case '\f':
		return append(dst, '\\', 'f')
	case '\n':
		return append(dst, '\\', 'n')
	case '\r':
		return append(dst, '\\', 'r')
	case '\t':
		return append(dst, '\\', 't')
	default:
		// Remaining control characters and the HTML-unsafe <, >, &.
		return append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
	}
}

// AppendFloat64 appends f formatted exactly as json.Marshal formats a
// float64: shortest 'f' form, switching to 'e' outside [1e-6, 1e21) with
// the two-digit exponent shortened (1e-09 → 1e-9). ok is false — and dst
// is returned unchanged — for NaN and ±Inf, which JSON cannot represent
// (json.Marshal fails the whole document with an UnsupportedValueError;
// callers mirror that by falling back to the oracle path).
func AppendFloat64(dst []byte, f float64) (_ []byte, ok bool) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, false
	}
	// Integral fast path: below 2^53 every float has a unit ulp or finer,
	// so the exact integer digits are the shortest decimal that parses
	// back — the same string the 'f'-format shortest rendering produces —
	// and AppendInt is several times cheaper than shortest-float. -0 must
	// fall through (json renders it "-0").
	if i := int64(f); float64(i) == f && f >= -(1<<53) && f <= 1<<53 &&
		!(f == 0 && math.Signbit(f)) {
		return strconv.AppendInt(dst, i, 10), true
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, true
}

// AppendUint64 appends u in base 10.
func AppendUint64(dst []byte, u uint64) []byte {
	return strconv.AppendUint(dst, u, 10)
}

// AppendInt64 appends i in base 10.
func AppendInt64(dst []byte, i int64) []byte {
	return strconv.AppendInt(dst, i, 10)
}

// AppendBool appends the JSON literal for v.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}
