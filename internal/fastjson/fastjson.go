// Package fastjson is the hand-rolled JSON fastpath behind predsvc's hot
// wire shapes: append-based encoders that are byte-for-byte identical to
// encoding/json for the values the service emits, and an allocation-free
// pull decoder for the fixed request shapes it accepts.
//
// The package deliberately implements a subset of JSON — strings, IEEE
// floats, unsigned/signed integers, bools, objects, arrays, null — with
// encoding/json's exact observable behavior on that subset: the same
// escaping (HTML-unsafe characters, control characters, invalid UTF-8 →
// U+FFFD, U+2028/U+2029), the same float formatting ('f' vs 'e' with the
// exponent cleanup), the same decode semantics (duplicate keys last-wins,
// unknown fields skipped but validated, null is a no-op, NaN/Inf literals
// rejected). encoding/json remains the correctness oracle: the compat
// tests in this package hold the two byte-identical on generated
// payloads, and predsvc's digest gates hold them identical end to end.
//
// Ownership rules: Buf values come from a sync.Pool via GetBuf/PutBuf;
// the caller that gets a Buf puts it back exactly once, after the bytes
// have been written out. Dec never allocates in steady state — strings it
// returns are views into the input or into an internal scratch buffer,
// valid only until the next decoding call.
package fastjson

import "sync"

// A Buf is a pooled byte buffer for wire encoding and request-body
// reads. B always has len(B) == 0 when handed out by GetBuf.
type Buf struct {
	B []byte
}

// maxRetained caps the capacity of buffers returned to the pool, so a
// few oversized request bodies do not pin megabytes for the life of the
// process.
const maxRetained = 1 << 20

var bufPool = sync.Pool{
	New: func() any { return &Buf{B: make([]byte, 0, 4096)} },
}

// GetBuf returns an empty pooled buffer.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.B = b.B[:0]
	return b
}

// PutBuf returns a buffer to the pool. Oversized buffers are dropped.
func PutBuf(b *Buf) {
	if b == nil || cap(b.B) > maxRetained {
		return
	}
	bufPool.Put(b)
}
