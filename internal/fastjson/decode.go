package fastjson

import (
	"errors"
	"fmt"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
)

// Dec is a pull decoder over a complete JSON document held in memory. It
// replicates encoding/json's observable semantics for the fixed request
// shapes predsvc accepts: duplicate keys last-wins, unknown fields are
// skipped but still validated, null is accepted anywhere and leaves the
// target untouched, NaN/Infinity literals are syntax errors, and invalid
// UTF-8 inside string values decodes to U+FFFD exactly as
// json.Unmarshal's unquote does.
//
// Steady-state decoding never allocates: byte slices returned by Str are
// views into the input where the string needs no unescaping, and views
// into an internal scratch buffer otherwise — either way they are valid
// only until the next call that returns string data. Errors allocate,
// which is fine: an erroring request leaves the hot path anyway.
//
// A Dec is reusable via Reset and safe to keep in a sync.Pool.
type Dec struct {
	data    []byte
	pos     int
	scratch []byte
}

// Reset points the decoder at a new document.
func (d *Dec) Reset(data []byte) {
	d.data = data
	d.pos = 0
}

// Pos returns the current byte offset, for two-pass decoders that
// validate first and re-decode a recorded region on the second pass.
func (d *Dec) Pos() int { return d.pos }

// Seek moves the decoder to a byte offset previously obtained from Pos.
func (d *Dec) Seek(pos int) { d.pos = pos }

var errUnexpectedEOF = errors.New("fastjson: unexpected end of JSON input")

func (d *Dec) syntaxErr(what string) error {
	if d.pos >= len(d.data) {
		return errUnexpectedEOF
	}
	return fmt.Errorf("fastjson: %s at offset %d (%q)", what, d.pos, d.data[d.pos])
}

func (d *Dec) skipWS() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

// Null consumes a null literal if one is next and reports whether it did.
// Callers use it for encoding/json's null semantics: the field keeps its
// previous value.
func (d *Dec) Null() bool {
	d.skipWS()
	if d.pos+4 <= len(d.data) && string(d.data[d.pos:d.pos+4]) == "null" {
		d.pos += 4
		return true
	}
	return false
}

// Object decodes a JSON object, invoking field for every key in document
// order. The callback must consume exactly one value (Str, Float64,
// Bool, Null, Skip, a nested Object/Array). The key slice is valid only
// until the callback's first decoding call. A top-level null is accepted
// as an empty object, mirroring json.Unmarshal's null-is-a-no-op into a
// struct.
func (d *Dec) Object(field func(key []byte) error) error {
	if d.Null() {
		return nil
	}
	d.skipWS()
	if d.pos >= len(d.data) {
		return errUnexpectedEOF
	}
	if d.data[d.pos] != '{' {
		return d.syntaxErr("expected object")
	}
	d.pos++
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == '}' {
		d.pos++
		return nil
	}
	for {
		d.skipWS()
		key, err := d.Str()
		if err != nil {
			return err
		}
		d.skipWS()
		if d.pos >= len(d.data) || d.data[d.pos] != ':' {
			return d.syntaxErr("expected ':' after object key")
		}
		d.pos++
		if err := field(key); err != nil {
			return err
		}
		d.skipWS()
		if d.pos >= len(d.data) {
			return errUnexpectedEOF
		}
		switch d.data[d.pos] {
		case ',':
			d.pos++
		case '}':
			d.pos++
			return nil
		default:
			return d.syntaxErr("expected ',' or '}' in object")
		}
	}
}

// Array decodes a JSON array, invoking elem once per element; elem must
// consume exactly one value. A null is accepted as an empty array,
// mirroring json.Unmarshal's null-into-slice no-op.
func (d *Dec) Array(elem func() error) error {
	if d.Null() {
		return nil
	}
	d.skipWS()
	if d.pos >= len(d.data) {
		return errUnexpectedEOF
	}
	if d.data[d.pos] != '[' {
		return d.syntaxErr("expected array")
	}
	d.pos++
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == ']' {
		d.pos++
		return nil
	}
	for {
		if err := elem(); err != nil {
			return err
		}
		d.skipWS()
		if d.pos >= len(d.data) {
			return errUnexpectedEOF
		}
		switch d.data[d.pos] {
		case ',':
			d.pos++
		case ']':
			d.pos++
			return nil
		default:
			return d.syntaxErr("expected ',' or ']' in array")
		}
	}
}

// Str decodes a JSON string. The returned slice is a view into the input
// (no escapes, valid UTF-8) or into the decoder's scratch buffer, and is
// valid only until the next call that returns string data.
func (d *Dec) Str() ([]byte, error) {
	d.skipWS()
	if d.pos >= len(d.data) {
		return nil, errUnexpectedEOF
	}
	if d.data[d.pos] != '"' {
		return nil, d.syntaxErr("expected string")
	}
	start := d.pos + 1
	i := start
	for i < len(d.data) {
		c := d.data[i]
		if c == '"' {
			d.pos = i + 1
			return d.data[start:i], nil
		}
		if c == '\\' || c < 0x20 {
			break
		}
		if c < utf8.RuneSelf {
			i++
			continue
		}
		r, size := utf8.DecodeRune(d.data[i:])
		if r == utf8.RuneError && size == 1 {
			break
		}
		i += size
	}
	return d.strSlow(start, i)
}

// strSlow unescapes a string into the scratch buffer starting from the
// first byte the fast path could not take verbatim. from is the offset
// of the opening quote + 1; i is where the fast scan stopped.
func (d *Dec) strSlow(from, i int) ([]byte, error) {
	s := append(d.scratch[:0], d.data[from:i]...)
	data := d.data
	for {
		if i >= len(data) {
			d.pos = i
			d.scratch = s
			return nil, errUnexpectedEOF
		}
		c := data[i]
		switch {
		case c == '"':
			d.pos = i + 1
			d.scratch = s
			return s, nil
		case c == '\\':
			i++
			if i >= len(data) {
				d.pos = i
				d.scratch = s
				return nil, errUnexpectedEOF
			}
			switch data[i] {
			case '"', '\\', '/':
				s = append(s, data[i])
				i++
			case 'b':
				s = append(s, '\b')
				i++
			case 'f':
				s = append(s, '\f')
				i++
			case 'n':
				s = append(s, '\n')
				i++
			case 'r':
				s = append(s, '\r')
				i++
			case 't':
				s = append(s, '\t')
				i++
			case 'u':
				rr, ok := getu4(data, i-1)
				if !ok {
					d.pos = i - 1
					d.scratch = s
					return nil, d.syntaxErr("invalid \\u escape in string")
				}
				i += 5
				if utf16.IsSurrogate(rr) {
					rr1, ok1 := getu4(data, i)
					if dec := utf16.DecodeRune(rr, rr1); ok1 && dec != utf8.RuneError {
						i += 6
						s = utf8.AppendRune(s, dec)
						break
					}
					// Invalid surrogate sequence: the lone half becomes
					// U+FFFD, exactly as json's unquote does.
					rr = utf8.RuneError
				}
				s = utf8.AppendRune(s, rr)
			default:
				d.pos = i
				d.scratch = s
				return nil, d.syntaxErr("invalid escape in string")
			}
		case c < 0x20:
			d.pos = i
			d.scratch = s
			return nil, d.syntaxErr("control character in string")
		case c < utf8.RuneSelf:
			s = append(s, c)
			i++
		default:
			r, size := utf8.DecodeRune(data[i:])
			if r == utf8.RuneError && size == 1 {
				s = utf8.AppendRune(s, utf8.RuneError)
				i++
			} else {
				s = append(s, data[i:i+size]...)
				i += size
			}
		}
	}
}

// getu4 parses \uXXXX at data[at:]; at must point at the backslash. ok is
// false when the escape is malformed or truncated.
func getu4(data []byte, at int) (rune, bool) {
	if at+6 > len(data) || data[at] != '\\' || data[at+1] != 'u' {
		return -1, false
	}
	var r rune
	for _, c := range data[at+2 : at+6] {
		switch {
		case c >= '0' && c <= '9':
			c -= '0'
		case c >= 'a' && c <= 'f':
			c = c - 'a' + 10
		case c >= 'A' && c <= 'F':
			c = c - 'A' + 10
		default:
			return -1, false
		}
		r = r*16 + rune(c)
	}
	return r, true
}

// Float64 decodes a JSON number. The grammar is validated first — so
// NaN, Infinity, hex, leading zeros and bare '.' are syntax errors just
// as in encoding/json — and the token is then parsed with
// strconv.ParseFloat, whose overflow error is reported the way
// json.Unmarshal reports it (as an error, not ±Inf).
func (d *Dec) Float64() (float64, error) {
	start, err := d.scanNumber()
	if err != nil {
		return 0, err
	}
	// The string conversion stays on the stack: ParseFloat's argument
	// only leaks into its error, which this function does not let escape.
	f, perr := strconv.ParseFloat(string(d.data[start:d.pos]), 64)
	if perr != nil {
		return 0, fmt.Errorf("fastjson: number %s out of float64 range", d.data[start:d.pos])
	}
	return f, nil
}

// scanNumber validates one JSON number token and advances past it,
// returning the token's start offset.
func (d *Dec) scanNumber() (int, error) {
	d.skipWS()
	start := d.pos
	data := d.data
	i := d.pos
	if i < len(data) && data[i] == '-' {
		i++
	}
	switch {
	case i < len(data) && data[i] == '0':
		i++
	case i < len(data) && data[i] >= '1' && data[i] <= '9':
		i++
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			i++
		}
	default:
		d.pos = i
		return start, d.syntaxErr("invalid number")
	}
	if i < len(data) && data[i] == '.' {
		i++
		if i >= len(data) || data[i] < '0' || data[i] > '9' {
			d.pos = i
			return start, d.syntaxErr("invalid number: expected digit after '.'")
		}
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			i++
		}
	}
	if i < len(data) && (data[i] == 'e' || data[i] == 'E') {
		i++
		if i < len(data) && (data[i] == '+' || data[i] == '-') {
			i++
		}
		if i >= len(data) || data[i] < '0' || data[i] > '9' {
			d.pos = i
			return start, d.syntaxErr("invalid number: expected digit in exponent")
		}
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			i++
		}
	}
	d.pos = i
	return start, nil
}

// Bool decodes a JSON boolean.
func (d *Dec) Bool() (bool, error) {
	d.skipWS()
	if d.pos+4 <= len(d.data) && string(d.data[d.pos:d.pos+4]) == "true" {
		d.pos += 4
		return true, nil
	}
	if d.pos+5 <= len(d.data) && string(d.data[d.pos:d.pos+5]) == "false" {
		d.pos += 5
		return false, nil
	}
	return false, d.syntaxErr("expected boolean")
}

// Skip consumes one value of any kind, validating it the way
// encoding/json's scanner validates values it is not binding to a field
// (unknown fields are still required to be well-formed JSON).
func (d *Dec) Skip() error {
	d.skipWS()
	if d.pos >= len(d.data) {
		return errUnexpectedEOF
	}
	switch c := d.data[d.pos]; {
	case c == '{':
		return d.Object(func([]byte) error { return d.Skip() })
	case c == '[':
		return d.Array(func() error { return d.Skip() })
	case c == '"':
		return d.skipString()
	case c == 't' || c == 'f':
		_, err := d.Bool()
		return err
	case c == 'n':
		if d.Null() {
			return nil
		}
		return d.syntaxErr("invalid literal")
	case c == '-' || (c >= '0' && c <= '9'):
		_, err := d.scanNumber()
		return err
	default:
		return d.syntaxErr("unexpected character")
	}
}

// skipString validates a string without unescaping it. Unlike Str it
// does not need the scratch buffer: escape sequences are checked but the
// decoded bytes are discarded. Invalid UTF-8 passes — json's scanner
// never rejects it, only the unquote step replaces it.
func (d *Dec) skipString() error {
	i := d.pos + 1
	data := d.data
	for i < len(data) {
		switch c := data[i]; {
		case c == '"':
			d.pos = i + 1
			return nil
		case c == '\\':
			if i+1 >= len(data) {
				d.pos = i
				return errUnexpectedEOF
			}
			switch data[i+1] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				i += 2
			case 'u':
				if _, ok := getu4(data, i); !ok {
					d.pos = i
					return d.syntaxErr("invalid \\u escape in string")
				}
				i += 6
			default:
				d.pos = i + 1
				return d.syntaxErr("invalid escape in string")
			}
		case c < 0x20:
			d.pos = i
			return d.syntaxErr("control character in string")
		default:
			i++
		}
	}
	d.pos = i
	return errUnexpectedEOF
}
