package fastjson

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestAppendStringOracle holds AppendString byte-identical to
// json.Marshal across the escaping corner cases.
func TestAppendStringOracle(t *testing.T) {
	cases := []string{
		"",
		"plain",
		"with space",
		`quote " and backslash \`,
		"tab\tnewline\ncr\rbackspace\bformfeed\f",
		"control \x00 \x01 \x1f",
		"html <b>&amp;</b>",
		"unicode: héllo → 世界 🚀",
		"invalid utf8: \xff\xfe",
		"truncated rune: \xe2\x82",
		"line sep \u2028 para sep \u2029",
		"mixed \xffé<& \x02",
		strings.Repeat("long ascii ", 100),
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("oracle marshal %q: %v", s, err)
		}
		got := AppendString(nil, s)
		if string(got) != string(want) {
			t.Errorf("AppendString(%q):\n got %s\nwant %s", s, got, want)
		}
		gotB := AppendStringBytes(nil, []byte(s))
		if string(gotB) != string(want) {
			t.Errorf("AppendStringBytes(%q):\n got %s\nwant %s", s, gotB, want)
		}
	}
}

// TestAppendFloat64Oracle holds AppendFloat64 byte-identical to
// json.Marshal across format-switch boundaries.
func TestAppendFloat64Oracle(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 1e-6, 9.999999e-7, 1e-7,
		1e20, 1e21, 9.99e20, -1e21, 1e-300, 1e300, 123456.789,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 3.141592653589793,
		9.640905241348683e+06, 1.0 / 3.0, 2e8, 42,
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("oracle marshal %v: %v", f, err)
		}
		got, ok := AppendFloat64(nil, f)
		if !ok {
			t.Fatalf("AppendFloat64(%v) not ok", f)
		}
		if string(got) != string(want) {
			t.Errorf("AppendFloat64(%v): got %s want %s", f, got, want)
		}
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, ok := AppendFloat64(nil, f); ok {
			t.Errorf("AppendFloat64(%v) should report not-ok", f)
		}
	}
}

// TestAppendFloat64OracleSweep hammers the encoder — the integral fast
// path in particular — with generated values around every boundary the
// implementation cares about: the 2^53 integral-exactness limit, the
// 'f'/'e' format switches, and random mantissas at many magnitudes.
func TestAppendFloat64OracleSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	check := func(f float64) {
		t.Helper()
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("oracle marshal %v: %v", f, err)
		}
		got, ok := AppendFloat64(nil, f)
		if !ok {
			t.Fatalf("AppendFloat64(%v) not ok", f)
		}
		if string(got) != string(want) {
			t.Fatalf("AppendFloat64(%v): got %s want %s", f, got, want)
		}
	}
	for _, base := range []float64{1 << 53, 1 << 52, 1e15, 1e16, 1e21, 1e-6} {
		for d := -3; d <= 3; d++ {
			f := base + float64(d)
			check(f)
			check(-f)
			check(math.Nextafter(f, 0))
			check(math.Nextafter(f, math.Inf(1)))
		}
	}
	for i := 0; i < 20000; i++ {
		mag := math.Pow(10, float64(rng.Intn(44)-22))
		f := rng.Float64() * mag
		check(f)
		check(-f)
		check(math.Trunc(f)) // integral values of every magnitude
		check(float64(rng.Int63n(1 << 60)))
		check(float64(rng.Int63n(1 << 24)))
	}
}

// TestDecStr holds Str value-identical to json.Unmarshal for string
// payloads, including escapes, surrogates, and invalid UTF-8.
func TestDecStr(t *testing.T) {
	inputs := []string{
		`""`,
		`"plain"`,
		`"esc \" \\ \/ \b \f \n \r \t"`,
		`"Aé世"`,
		`"😀"`,                      // valid surrogate pair
		`"\ud800"`,                 // lone high surrogate
		`"\ud800A"`,                // high surrogate + non-surrogate escape
		`"\ud800\ud800"`,           // two high surrogates
		`"\udc00"`,                 // lone low surrogate
		`"�"`,                      // explicit replacement
		"\"raw invalid \xff\xfe\"", // invalid utf8 bytes
		"\"trunc rune \xe2\x82\"",
		`"mixed \n   ok"`,
	}
	for _, in := range inputs {
		var want string
		if err := json.Unmarshal([]byte(in), &want); err != nil {
			t.Fatalf("oracle unmarshal %q: %v", in, err)
		}
		var d Dec
		d.Reset([]byte(in))
		got, err := d.Str()
		if err != nil {
			t.Fatalf("Str(%q): %v", in, err)
		}
		if string(got) != want {
			t.Errorf("Str(%q): got %q want %q", in, got, want)
		}
	}
	bad := []string{`"unterminated`, `"bad esc \x"`, `"bad \u12g4"`, `"trunc \u12"`, "\"ctrl \x01\"", `x`}
	for _, in := range bad {
		var d Dec
		d.Reset([]byte(in))
		if _, err := d.Str(); err == nil {
			t.Errorf("Str(%q): expected error", in)
		}
	}
}

// TestDecFloat64 holds Float64 value- and error-identical to
// json.Unmarshal for number tokens.
func TestDecFloat64(t *testing.T) {
	good := []string{"0", "-0", "1", "-1", "0.5", "123.456", "1e10", "1E-10",
		"1.5e+300", "9.640905241348683e+06", "2e8", "0.0001", "1e-400"}
	for _, in := range good {
		var want float64
		if err := json.Unmarshal([]byte(in), &want); err != nil {
			t.Fatalf("oracle unmarshal %q: %v", in, err)
		}
		var d Dec
		d.Reset([]byte(in))
		got, err := d.Float64()
		if err != nil {
			t.Fatalf("Float64(%q): %v", in, err)
		}
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Errorf("Float64(%q): got %v want %v", in, got, want)
		}
	}
	bad := []string{"01", "1.", ".5", "+1", "-", "1e", "1e+", "NaN", "Infinity",
		"-Infinity", "0x10", "1e999"}
	for _, in := range bad {
		var wantTarget float64
		oracleErr := json.Unmarshal([]byte(in), &wantTarget)
		var d Dec
		d.Reset([]byte(in))
		_, err := d.Float64()
		// For tokens json fully rejects, we must too. (Tokens like "01"
		// fail in json at the trailing character, which an embedding
		// object/array parse surfaces; standalone we accept the prefix.)
		if oracleErr != nil && err == nil {
			if rest := strings.TrimLeft(in[d.pos:], " "); rest == "" {
				t.Errorf("Float64(%q): oracle errored (%v), fastjson accepted whole token", in, oracleErr)
			}
		}
	}
}

// TestDecObject exercises object decoding: duplicate keys last-wins,
// unknown fields skipped-but-validated, null no-ops, and syntax errors.
func TestDecObject(t *testing.T) {
	type shape struct {
		Path string  `json:"path"`
		Tput float64 `json:"throughput_bps"`
	}
	decode := func(in string) (shape, error) {
		var v shape
		var d Dec
		d.Reset([]byte(in))
		err := d.Object(func(key []byte) error {
			switch string(key) {
			case "path":
				if d.Null() {
					return nil
				}
				s, err := d.Str()
				if err != nil {
					return err
				}
				v.Path = string(s)
			case "throughput_bps":
				if d.Null() {
					return nil
				}
				f, err := d.Float64()
				if err != nil {
					return err
				}
				v.Tput = f
			default:
				return d.Skip()
			}
			return nil
		})
		return v, err
	}
	cases := []string{
		`{}`,
		`null`,
		`{"path":"a","throughput_bps":1.5}`,
		` { "path" : "a" , "throughput_bps" : 2e8 } `,
		`{"path":"a","path":"b"}`,
		`{"path":"a","path":null}`,
		`{"unknown":{"nested":[1,"two",true,null]},"path":"x"}`,
		`{"throughput_bps":null,"path":"p"}`,
		`{"extra":"\ud800","path":"ok"}`,
	}
	for _, in := range cases {
		var want shape
		oracleErr := json.Unmarshal([]byte(in), &want)
		got, err := decode(in)
		if (err != nil) != (oracleErr != nil) {
			t.Fatalf("decode(%q): err=%v oracle=%v", in, err, oracleErr)
		}
		if err == nil && got != want {
			t.Errorf("decode(%q): got %+v want %+v", in, got, want)
		}
	}
	bad := []string{
		`{`, `{"path"}`, `{"path":}`, `{"path":"a",}`, `{"path":"a"`,
		`{1:2}`, `[1]`, `"s"`, `{"path":"a" "b":1}`, `{"t":NaN}`,
		`{"t":Infinity}`, `{"u":{"v":tru}}`, ``, `   `,
	}
	for _, in := range bad {
		var want shape
		if oracleErr := json.Unmarshal([]byte(in), &want); oracleErr == nil {
			t.Fatalf("oracle accepted %q; test case is wrong", in)
		}
		if _, err := decode(in); err == nil {
			t.Errorf("decode(%q): expected error", in)
		}
	}
}

// TestDecodeSteadyStateAllocs pins the whole decode path — object scan,
// string views, float parse — at zero allocations per request.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	body := []byte(`{"path":"ab-12.example/path","throughput_bps":9.640905241348683e+06}`)
	escaped := []byte(`{"path":"needs \"escaping\" here","throughput_bps":123456.75}`)
	var d Dec
	var sinkF float64
	var sinkN int
	decodeOne := func(data []byte) {
		d.Reset(data)
		err := d.Object(func(key []byte) error {
			switch string(key) {
			case "path":
				s, err := d.Str()
				if err != nil {
					return err
				}
				sinkN += len(s)
			case "throughput_bps":
				f, err := d.Float64()
				if err != nil {
					return err
				}
				sinkF = f
			default:
				return d.Skip()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	decodeOne(body) // warm the scratch buffer
	decodeOne(escaped)
	allocs := testing.AllocsPerRun(200, func() {
		decodeOne(body)
		decodeOne(escaped)
	})
	if allocs != 0 {
		t.Fatalf("decode allocates %.1f times per run, want 0", allocs)
	}
	_ = sinkF
}
