package availbw_test

import (
	"testing"

	"repro/internal/availbw"
	"repro/internal/netem"
	"repro/internal/sim"
)

func abwPath(eng *sim.Engine, capBps float64) *netem.Path {
	rng := sim.NewRNG(1)
	return netem.NewPath(eng, rng, netem.PathSpec{
		Name: "abw",
		Forward: []netem.Hop{
			{CapacityBps: capBps * 8, PropDelay: 0.005, BufferBytes: 4 << 20},
			{CapacityBps: capBps, PropDelay: 0.02, BufferBytes: 256 * 1500},
		},
		Reverse: []netem.Hop{
			{CapacityBps: capBps * 8, PropDelay: 0.025, BufferBytes: 4 << 20},
		},
	})
}

func estimate(t *testing.T, capBps, crossBps float64) availbw.Result {
	t.Helper()
	eng := sim.NewEngine()
	path := abwPath(eng, capBps)
	if crossBps > 0 {
		src := netem.NewPoissonSource(eng, sim.NewRNG(2), 99, crossBps, 1000, nil, path.Bottleneck())
		src.Start()
		defer src.Stop()
		eng.RunUntil(2)
	}
	est := availbw.NewEstimator(eng, path, 3, availbw.Config{})
	return est.Estimate()
}

func TestEstimateIdlePath(t *testing.T) {
	res := estimate(t, 10e6, 0)
	t.Logf("idle 10 Mbps: estimate %.2f Mbps [%.2f, %.2f], %d streams in %.1f s",
		res.Estimate/1e6, res.Lo/1e6, res.Hi/1e6, res.Streams, res.Duration)
	if res.Estimate < 6e6 || res.Estimate > 14e6 {
		t.Errorf("idle-path estimate %.2f Mbps, want ≈10", res.Estimate/1e6)
	}
}

func TestEstimateLoadedPath(t *testing.T) {
	res := estimate(t, 10e6, 6e6)
	t.Logf("10 Mbps with 6 Mbps cross: estimate %.2f Mbps [%.2f, %.2f]",
		res.Estimate/1e6, res.Lo/1e6, res.Hi/1e6)
	if res.Estimate < 1.5e6 || res.Estimate > 8e6 {
		t.Errorf("loaded-path estimate %.2f Mbps, want ≈4", res.Estimate/1e6)
	}
}

func TestEstimateOrdering(t *testing.T) {
	light := estimate(t, 10e6, 2e6)
	heavy := estimate(t, 10e6, 8e6)
	if light.Estimate <= heavy.Estimate {
		t.Errorf("avail-bw should decrease with load: light %.2f ≤ heavy %.2f Mbps",
			light.Estimate/1e6, heavy.Estimate/1e6)
	}
}

func TestEstimateRangeConsistent(t *testing.T) {
	res := estimate(t, 5e6, 2e6)
	if res.Lo > res.Hi {
		t.Errorf("range inverted: [%v, %v]", res.Lo, res.Hi)
	}
	if res.Estimate < res.Lo || res.Estimate > res.Hi {
		t.Errorf("estimate %v outside [%v, %v]", res.Estimate, res.Lo, res.Hi)
	}
	if res.Streams == 0 || res.Duration <= 0 {
		t.Errorf("bookkeeping empty: %+v", res)
	}
}

func TestClassifyOWDsIncreasing(t *testing.T) {
	owds := make([]float64, 100)
	for i := range owds {
		owds[i] = 0.01 + float64(i)*0.0002
	}
	if got := availbw.ClassifyOWDs(owds); got != availbw.TrendIncreasing {
		t.Errorf("monotone ramp classified %v, want increasing", got)
	}
}

func TestClassifyOWDsFlat(t *testing.T) {
	rng := sim.NewRNG(5)
	owds := make([]float64, 100)
	for i := range owds {
		owds[i] = 0.01 + rng.Normal(0, 0.0001)
	}
	if got := availbw.ClassifyOWDs(owds); got == availbw.TrendIncreasing {
		t.Errorf("flat noisy OWDs classified increasing")
	}
}

func TestClassifyOWDsNoisyRamp(t *testing.T) {
	rng := sim.NewRNG(6)
	owds := make([]float64, 100)
	for i := range owds {
		owds[i] = 0.01 + float64(i)*0.0003 + rng.Normal(0, 0.0005)
	}
	if got := availbw.ClassifyOWDs(owds); got != availbw.TrendIncreasing {
		t.Errorf("noisy ramp classified %v, want increasing", got)
	}
}

func TestClassifyOWDsTooShort(t *testing.T) {
	if got := availbw.ClassifyOWDs([]float64{1, 2, 3}); got != availbw.TrendAmbiguous {
		t.Errorf("short stream classified %v, want ambiguous", got)
	}
}

func TestTrendString(t *testing.T) {
	if availbw.TrendIncreasing.String() != "increasing" ||
		availbw.TrendNone.String() != "none" ||
		availbw.TrendAmbiguous.String() != "ambiguous" {
		t.Error("Trend.String broken")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := availbw.Config{}.Defaults()
	if cfg.StreamLength != 100 || cfg.PacketSize != 800 || cfg.MaxIterations != 14 {
		t.Errorf("defaults = %+v", cfg)
	}
}
