// Package availbw implements a pathload-style end-to-end available
// bandwidth estimator using Self-Loading Periodic Streams (SLoPS), as in
// Jain & Dovrolis: send a periodic packet stream at rate R and test the
// one-way delays for an increasing trend; a trend means R exceeds the
// available bandwidth. An adaptive search brackets the avail-bw between the
// highest non-trending and lowest trending rates.
//
// The estimator produces Â of the paper's Eq. (3) — including pathload's
// real estimation error, since streams are finite and cross traffic is
// bursty.
package availbw

import (
	"math"
	"sort"

	"repro/internal/netem"
	"repro/internal/sim"
)

// Config tunes the estimator. Zero fields are defaulted.
type Config struct {
	StreamLength   int     // packets per stream (default 100)
	PacketSize     int     // bytes (default 800)
	StreamsPerRate int     // streams per probed rate, majority vote (default 2)
	InterStreamGap float64 // idle time between streams, seconds (default 0.3)
	InitialRate    float64 // first probed rate, bps (default 1 Mbps)
	MaxRate        float64 // upper bound on probing, bps (default 1 Gbps)
	Resolution     float64 // stop when (hi-lo)/hi below this (default 0.08)
	MaxIterations  int     // rate-adjustment iterations (default 14)
	Timeout        float64 // per-stream receive timeout, seconds (default 5)
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.StreamLength == 0 {
		c.StreamLength = 100
	}
	if c.PacketSize == 0 {
		c.PacketSize = 800
	}
	if c.StreamsPerRate == 0 {
		c.StreamsPerRate = 2
	}
	if c.InterStreamGap == 0 {
		c.InterStreamGap = 0.3
	}
	if c.InitialRate == 0 {
		c.InitialRate = 1e6
	}
	if c.MaxRate == 0 {
		c.MaxRate = 1e9
	}
	if c.Resolution == 0 {
		c.Resolution = 0.08
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 14
	}
	if c.Timeout == 0 {
		c.Timeout = 5
	}
	return c
}

// Result is an avail-bw estimate.
type Result struct {
	Lo, Hi   float64 // bracketing range, bps
	Estimate float64 // midpoint of [Lo, Hi], bps
	Streams  int     // streams transmitted
	Duration float64 // virtual seconds the measurement took
}

// Trend classifies a stream's one-way-delay behaviour.
type Trend int

// Trend values.
const (
	TrendAmbiguous Trend = iota
	TrendIncreasing
	TrendNone
)

func (t Trend) String() string {
	switch t {
	case TrendIncreasing:
		return "increasing"
	case TrendNone:
		return "none"
	default:
		return "ambiguous"
	}
}

// pathload's published PCT/PDT thresholds.
const (
	pctIncreasing = 0.66
	pctNone       = 0.54
	pdtIncreasing = 0.55
	pdtNone       = 0.45
)

// ClassifyOWDs applies pathload's PCT/PDT tests to a stream's one-way
// delays. Exported for tests and for reuse by other estimators.
func ClassifyOWDs(owds []float64) Trend {
	k := len(owds)
	if k < 10 {
		return TrendAmbiguous
	}
	groups := int(math.Ceil(math.Sqrt(float64(k))))
	per := k / groups
	if per < 1 {
		return TrendAmbiguous
	}
	medians := make([]float64, 0, groups)
	for g := 0; g < groups; g++ {
		start := g * per
		end := start + per
		if g == groups-1 {
			end = k
		}
		if end <= start {
			break
		}
		medians = append(medians, median(owds[start:end]))
	}
	if len(medians) < 3 {
		return TrendAmbiguous
	}
	var up int
	var sumAbs, net float64
	for i := 1; i < len(medians); i++ {
		d := medians[i] - medians[i-1]
		if d > 0 {
			up++
		}
		sumAbs += math.Abs(d)
		net += d
	}
	pct := float64(up) / float64(len(medians)-1)
	pdt := 0.0
	if sumAbs > 0 {
		pdt = net / sumAbs
	}
	incr := 0
	none := 0
	switch {
	case pct > pctIncreasing:
		incr++
	case pct < pctNone:
		none++
	}
	switch {
	case pdt > pdtIncreasing:
		incr++
	case pdt < pdtNone:
		none++
	}
	switch {
	case incr > 0 && none == 0:
		return TrendIncreasing
	case none > 0 && incr == 0:
		return TrendNone
	default:
		return TrendAmbiguous
	}
}

func median(xs []float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Estimator drives SLoPS measurements over a path. It owns a flow ID on the
// path and runs the engine while measuring (measurements happen in situ, so
// cross traffic keeps flowing).
type Estimator struct {
	cfg  Config
	eng  *sim.Engine
	path *netem.Path
	flow netem.FlowID

	arrivals []float64 // OWDs of the stream in flight
	expected int
}

// NewEstimator creates an estimator using flow on the path.
func NewEstimator(eng *sim.Engine, path *netem.Path, flow netem.FlowID, cfg Config) *Estimator {
	return &Estimator{cfg: cfg.Defaults(), eng: eng, path: path, flow: flow}
}

// sendStream transmits one periodic stream at rate bps and returns the
// observed one-way delays (one per received packet, in arrival order).
func (e *Estimator) sendStream(rate float64) []float64 {
	e.arrivals = e.arrivals[:0]
	e.expected = e.cfg.StreamLength
	e.path.B.Register(e.flow, netem.ReceiverFunc(e.onChirp))
	defer e.path.B.Register(e.flow, nil)

	gap := float64(e.cfg.PacketSize) * 8 / rate
	for i := 0; i < e.cfg.StreamLength; i++ {
		i := i
		e.eng.Schedule(float64(i)*gap, func() {
			pkt := e.path.A.NewPacket()
			pkt.Flow = e.flow
			pkt.Kind = netem.KindChirp
			pkt.Size = e.cfg.PacketSize
			pkt.Seq = int64(i)
			e.path.A.Send(pkt)
		})
	}
	streamTime := float64(e.cfg.StreamLength)*gap + e.cfg.Timeout
	deadline := e.eng.Now() + streamTime
	// Run until all packets arrived or the timeout hits.
	for e.eng.Now() < deadline && len(e.arrivals) < e.expected {
		e.eng.RunUntil(math.Min(deadline, e.eng.Now()+0.05))
	}
	return append([]float64(nil), e.arrivals...)
}

func (e *Estimator) onChirp(pkt *netem.Packet) {
	if pkt.Kind != netem.KindChirp {
		e.path.B.ReleasePacket(pkt)
		return
	}
	e.arrivals = append(e.arrivals, e.eng.Now()-pkt.SentAt)
	e.path.B.ReleasePacket(pkt)
}

// probeRate sends StreamsPerRate streams at the rate and majority-votes the
// trend. Heavy in-stream loss (>15%) is itself read as "rate above
// avail-bw", as in pathload.
func (e *Estimator) probeRate(rate float64) Trend {
	incr, none := 0, 0
	for s := 0; s < e.cfg.StreamsPerRate; s++ {
		owds := e.sendStream(rate)
		lossFrac := 1 - float64(len(owds))/float64(e.cfg.StreamLength)
		var t Trend
		if lossFrac > 0.15 {
			t = TrendIncreasing
		} else {
			t = ClassifyOWDs(owds)
		}
		switch t {
		case TrendIncreasing:
			incr++
		case TrendNone:
			none++
		}
		e.eng.RunUntil(e.eng.Now() + e.cfg.InterStreamGap)
	}
	switch {
	case incr > none:
		return TrendIncreasing
	case none > incr:
		return TrendNone
	default:
		return TrendAmbiguous
	}
}

// Estimate runs the adaptive rate search and returns the avail-bw range.
func (e *Estimator) Estimate() Result {
	start := e.eng.Now()
	cfg := e.cfg

	lo, hi := 0.0, 0.0
	rate := cfg.InitialRate
	streams := 0

	// Phase 1: exponential growth until a trend appears (upper bound).
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		t := e.probeRate(rate)
		streams += cfg.StreamsPerRate
		if t == TrendIncreasing {
			hi = rate
			break
		}
		if t == TrendNone {
			lo = rate
		}
		if rate >= cfg.MaxRate {
			hi = cfg.MaxRate
			break
		}
		rate *= 2
		if rate > cfg.MaxRate {
			rate = cfg.MaxRate
		}
	}
	if hi == 0 {
		hi = rate
	}

	// Phase 2: binary search within [lo, hi].
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		if hi-lo <= cfg.Resolution*hi {
			break
		}
		mid := (lo + hi) / 2
		if mid <= 0 {
			break
		}
		t := e.probeRate(mid)
		streams += cfg.StreamsPerRate
		switch t {
		case TrendIncreasing:
			hi = mid
		case TrendNone:
			lo = mid
		default:
			// Ambiguous: shrink the range from both sides, as pathload's
			// "grey region" handling does.
			lo += (mid - lo) / 4
			hi -= (hi - mid) / 4
		}
	}

	return Result{
		Lo:       lo,
		Hi:       hi,
		Estimate: (lo + hi) / 2,
		Streams:  streams,
		Duration: e.eng.Now() - start,
	}
}
