package netem

import (
	"fmt"

	"repro/internal/sim"
)

// QueueStats counts what happened at a queue since creation or the last
// ResetStats.
type QueueStats struct {
	Arrivals   int64 // packets offered
	Departures int64 // packets fully transmitted
	Drops      int64 // packets dropped (buffer overflow or random loss)
	RandomLoss int64 // subset of Drops caused by the random-loss process
	BytesIn    int64
	BytesOut   int64
}

// LossRate returns the fraction of offered packets that were dropped.
func (s QueueStats) LossRate() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.Drops) / float64(s.Arrivals)
}

// Queue is a droptail FIFO in front of a fixed-capacity link with
// propagation delay. It transmits one packet at a time at CapacityBps and
// delivers each packet to Next after the transmission time plus PropDelay.
//
// An optional random-loss probability models non-congestive loss (e.g. a
// noisy DSL line): each arriving packet is independently discarded with
// probability LossProb before it is enqueued.
type Queue struct {
	Name        string
	CapacityBps float64 // link capacity in bits per second
	PropDelay   float64 // one-way propagation delay in seconds
	BufferBytes int     // byte buffer limit; packets beyond this are dropped
	// BufferPackets optionally limits the queue length in packets, the
	// behaviour of packet-count-buffered routers: small packets then drop
	// as readily as MTU-sized ones, which matters for loss rates measured
	// with small probes. Zero disables the packet limit.
	BufferPackets int
	LossProb      float64 // random per-packet loss probability
	// RED enables random-early-detection dropping, approximating the
	// smoother per-flow loss seen on highly multiplexed router links: an
	// EWMA of the queue occupancy drives a drop probability that rises
	// linearly from 0 at MinTh to MaxP at MaxTh (fractions of the buffer)
	// and to 1 above MaxTh. Tail drop still applies at the hard limit.
	RED   bool
	MinTh float64 // default 0.15
	MaxTh float64 // default 0.7
	MaxP  float64 // default 0.04
	// ReorderProb delays a departing packet by ReorderDelay instead of
	// handing it straight to Next, so it arrives behind packets
	// transmitted after it — the classic cause of spurious duplicate ACKs.
	ReorderProb  float64
	ReorderDelay float64 // default: one propagation delay
	// Rate, when non-nil, scales the link capacity over time (a
	// cellular-style variable-rate link): each packet serializes at
	// CapacityBps × Rate.At(t) sampled at its transmission start.
	Rate *RateSchedule
	Next Receiver

	eng     *sim.Engine
	rng     *sim.RNG
	pool    *PacketPool // set when the queue belongs to a Path; nil-safe
	fifo    []*Packet
	head    int
	qBytes  int
	avgQ    float64 // EWMA of occupancy (bytes) for RED
	busy    bool
	stats   QueueStats
	monitor func(evt QueueEvent)
}

// QueueEvent describes a packet-level event at a queue, for tracing and
// utilization accounting. Monitors must read Pkt synchronously and not
// retain it: dropped packets are recycled into the path's pool immediately
// after the EvDrop callback returns.
type QueueEvent struct {
	Time    float64
	Kind    QueueEventKind
	Pkt     *Packet
	Backlog int // queue backlog in bytes after the event
}

// QueueEventKind enumerates queue trace events.
type QueueEventKind uint8

// Queue event kinds.
const (
	EvEnqueue QueueEventKind = iota
	EvDequeue
	EvDrop
)

// NewQueue constructs a queue bound to the engine. rng may be nil when
// LossProb is zero.
func NewQueue(eng *sim.Engine, rng *sim.RNG, name string, capacityBps, propDelay float64, bufferBytes int, next Receiver) *Queue {
	if capacityBps <= 0 {
		panic(fmt.Sprintf("netem: queue %q: capacity must be positive", name))
	}
	if bufferBytes <= 0 {
		panic(fmt.Sprintf("netem: queue %q: buffer must be positive", name))
	}
	return &Queue{
		Name:        name,
		CapacityBps: capacityBps,
		PropDelay:   propDelay,
		BufferBytes: bufferBytes,
		Next:        next,
		eng:         eng,
		rng:         rng,
	}
}

// SetMonitor installs a callback invoked on every enqueue/dequeue/drop.
func (q *Queue) SetMonitor(fn func(QueueEvent)) { q.monitor = fn }

// Stats returns a copy of the queue counters.
func (q *Queue) Stats() QueueStats { return q.stats }

// ResetStats zeroes the counters (the backlog is untouched).
func (q *Queue) ResetStats() { q.stats = QueueStats{} }

// Backlog returns the current queue occupancy in bytes (excluding the
// packet in transmission).
func (q *Queue) Backlog() int { return q.qBytes }

// TransmissionTime returns the time to serialize a packet of size bytes.
func (q *Queue) TransmissionTime(size int) float64 {
	return float64(size) * 8 / q.CapacityBps
}

// Receive implements Receiver: enqueue or drop.
func (q *Queue) Receive(pkt *Packet) {
	q.stats.Arrivals++
	q.stats.BytesIn += int64(pkt.Size)
	// Drop sites release the packet to the pool: a dropped packet's journey
	// ends here, and the monitor (emit) has already seen it synchronously.
	if q.LossProb > 0 && q.rng != nil && q.rng.Bool(q.LossProb) {
		q.stats.Drops++
		q.stats.RandomLoss++
		q.emit(EvDrop, pkt)
		q.pool.Put(pkt)
		return
	}
	if q.qBytes+pkt.Size > q.BufferBytes ||
		(q.BufferPackets > 0 && len(q.fifo)-q.head >= q.BufferPackets) {
		q.stats.Drops++
		q.emit(EvDrop, pkt)
		q.pool.Put(pkt)
		return
	}
	if q.RED && q.redDrop(pkt) {
		q.stats.Drops++
		q.emit(EvDrop, pkt)
		q.pool.Put(pkt)
		return
	}
	q.fifo = append(q.fifo, pkt)
	q.qBytes += pkt.Size
	q.emit(EvEnqueue, pkt)
	if !q.busy {
		q.transmitNext()
	}
}

// redDrop updates the EWMA occupancy and applies the RED drop curve.
func (q *Queue) redDrop(pkt *Packet) bool {
	const wq = 0.02
	q.avgQ = (1-wq)*q.avgQ + wq*float64(q.qBytes)
	minTh, maxTh, maxP := q.MinTh, q.MaxTh, q.MaxP
	if minTh == 0 {
		minTh = 0.15
	}
	if maxTh == 0 {
		maxTh = 0.7
	}
	if maxP == 0 {
		maxP = 0.04
	}
	lo := minTh * float64(q.BufferBytes)
	hi := maxTh * float64(q.BufferBytes)
	switch {
	case q.avgQ <= lo:
		return false
	case q.avgQ >= hi:
		// Gentle RED: probability rises from maxP to 1 between MaxTh and
		// the full buffer.
		full := float64(q.BufferBytes)
		p := maxP + (1-maxP)*(q.avgQ-hi)/(full-hi)
		return q.rng != nil && q.rng.Bool(p)
	default:
		p := maxP * (q.avgQ - lo) / (hi - lo)
		return q.rng != nil && q.rng.Bool(p)
	}
}

func (q *Queue) transmitNext() {
	if q.head == len(q.fifo) {
		q.busy = false
		q.fifo = q.fifo[:0]
		q.head = 0
		return
	}
	q.busy = true
	pkt := q.fifo[q.head]
	q.fifo[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 > len(q.fifo) {
		n := copy(q.fifo, q.fifo[q.head:])
		q.fifo = q.fifo[:n]
		q.head = 0
	}
	q.qBytes -= pkt.Size
	tx := q.TransmissionTime(pkt.Size)
	if q.Rate != nil {
		tx /= q.Rate.At(q.eng.Now())
	}
	q.eng.Schedule(tx, func() {
		q.stats.Departures++
		q.stats.BytesOut += int64(pkt.Size)
		q.emit(EvDequeue, pkt)
		next := q.Next
		delay := q.PropDelay
		if q.ReorderProb > 0 && q.rng != nil && q.rng.Bool(q.ReorderProb) {
			extra := q.ReorderDelay
			if extra == 0 {
				extra = q.PropDelay
			}
			delay += extra
		}
		q.eng.Schedule(delay, func() { next.Receive(pkt) })
		q.transmitNext()
	})
}

func (q *Queue) emit(kind QueueEventKind, pkt *Packet) {
	if q.monitor != nil {
		q.monitor(QueueEvent{Time: q.eng.Now(), Kind: kind, Pkt: pkt, Backlog: q.qBytes})
	}
}
