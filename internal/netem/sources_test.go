package netem

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPoissonSourceRate(t *testing.T) {
	eng := sim.NewEngine()
	var bytes int64
	sink := ReceiverFunc(func(p *Packet) { bytes += int64(p.Size) })
	src := NewPoissonSource(eng, sim.NewRNG(2), 1, 2e6, 1000, nil, sink)
	src.Start()
	eng.RunUntil(200)
	src.Stop()
	rate := float64(bytes) * 8 / 200
	if math.Abs(rate-2e6) > 0.1e6 {
		t.Errorf("Poisson rate %.2f Mbps, want ≈2", rate/1e6)
	}
	if src.BytesSent() != bytes {
		t.Errorf("BytesSent %d != delivered %d", src.BytesSent(), bytes)
	}
}

func TestPoissonSourceLoadModulation(t *testing.T) {
	eng := sim.NewEngine()
	var bytes int64
	sink := ReceiverFunc(func(p *Packet) { bytes += int64(p.Size) })
	src := NewPoissonSource(eng, sim.NewRNG(2), 1, 2e6, 1000, ConstantLoad(0.5), sink)
	src.Start()
	eng.RunUntil(200)
	src.Stop()
	rate := float64(bytes) * 8 / 200
	if math.Abs(rate-1e6) > 0.1e6 {
		t.Errorf("modulated rate %.2f Mbps, want ≈1", rate/1e6)
	}
}

func TestPoissonSourceStops(t *testing.T) {
	eng := sim.NewEngine()
	n := 0
	src := NewPoissonSource(eng, sim.NewRNG(2), 1, 1e6, 1000, nil, ReceiverFunc(func(*Packet) { n++ }))
	src.Start()
	eng.RunUntil(10)
	src.Stop()
	before := n
	eng.RunUntil(20)
	if n != before {
		t.Errorf("source emitted %d packets after Stop", n-before)
	}
}

func TestParetoOnOffAverageRate(t *testing.T) {
	eng := sim.NewEngine()
	var bytes int64
	sink := ReceiverFunc(func(p *Packet) { bytes += int64(p.Size) })
	// Peak 4 Mbps, ON 1/4 of the time → ~1 Mbps average.
	src := NewParetoOnOffSource(eng, sim.NewRNG(3), 1, 4e6, 1000, 0.5, 1.5, 1.5, nil, sink)
	src.Start()
	eng.RunUntil(2000)
	src.Stop()
	rate := float64(bytes) * 8 / 2000
	if rate < 0.6e6 || rate > 1.6e6 {
		t.Errorf("Pareto ON/OFF average %.2f Mbps, want ≈1 (heavy-tailed, wide tolerance)", rate/1e6)
	}
}

func TestParetoOnOffBurstyAtPeak(t *testing.T) {
	eng := sim.NewEngine()
	var times []float64
	src := NewParetoOnOffSource(eng, sim.NewRNG(3), 1, 8e6, 1000, 0.5, 1.5, 1.5, nil,
		ReceiverFunc(func(*Packet) { times = append(times, eng.Now()) }))
	src.Start()
	eng.RunUntil(100)
	src.Stop()
	if len(times) < 10 {
		t.Fatalf("only %d packets in 100 s", len(times))
	}
	// Within an ON period, the gap equals the peak-rate serialization time.
	peakGap := 1000 * 8 / 8e6
	n := 0
	for i := 1; i < len(times); i++ {
		if math.Abs(times[i]-times[i-1]-peakGap) < 1e-9 {
			n++
		}
	}
	if n == 0 {
		t.Error("no back-to-back packets at peak rate")
	}
}

func TestLoadProcessConstant(t *testing.T) {
	lp := ConstantLoad(1.5)
	for _, x := range []float64{0, 1, 100, 1e6} {
		if lp.At(x) != 1.5 {
			t.Errorf("ConstantLoad at %v = %v", x, lp.At(x))
		}
	}
}

func TestGenerateLoadBounds(t *testing.T) {
	cfg := DefaultLoadConfig(6 * 3600)
	lp := GenerateLoad(sim.NewRNG(11), cfg)
	f := func(tRaw uint32) bool {
		tm := float64(tRaw%21600) + float64(tRaw%1000)/1000
		v := lp.At(tm)
		// Bursts may exceed MaxLevel transiently up to MaxLevel (clamped),
		// and trends may drift below MinLevel but never below zero.
		return v >= 0 && v <= cfg.MaxLevel*1.01+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerateLoadHasShifts(t *testing.T) {
	cfg := DefaultLoadConfig(6 * 3600)
	lp := GenerateLoad(sim.NewRNG(12), cfg)
	if lp.Segments() < 2 {
		t.Errorf("expected some level shifts/bursts over 6 h, got %d segments", lp.Segments())
	}
}

func TestGenerateLoadDeterministic(t *testing.T) {
	cfg := DefaultLoadConfig(3600)
	a := GenerateLoad(sim.NewRNG(5), cfg)
	b := GenerateLoad(sim.NewRNG(5), cfg)
	for tm := 0.0; tm < 3600; tm += 97.3 {
		if a.At(tm) != b.At(tm) {
			t.Fatalf("same-seed load processes differ at t=%v", tm)
		}
	}
}

func TestGenerateLoadZeroHorizon(t *testing.T) {
	lp := GenerateLoad(sim.NewRNG(5), LoadConfig{})
	if lp.At(100) != 1 {
		t.Errorf("zero-horizon load = %v, want 1", lp.At(100))
	}
}

func TestLoadAtMonotonicLookup(t *testing.T) {
	// The binary search must pick the segment whose start ≤ t.
	lp := &LoadProcess{segs: []loadSeg{
		{start: 0, level: 1},
		{start: 10, level: 2},
		{start: 20, level: 3},
	}}
	cases := map[float64]float64{0: 1, 5: 1, 10: 2, 15: 2, 20: 3, 1e9: 3}
	for tm, want := range cases {
		if got := lp.At(tm); got != want {
			t.Errorf("At(%v) = %v, want %v", tm, got, want)
		}
	}
}

func TestPacketKindString(t *testing.T) {
	kinds := map[PacketKind]string{
		KindData: "data", KindAck: "ack", KindProbe: "probe",
		KindEcho: "echo", KindCross: "cross", KindChirp: "chirp",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
