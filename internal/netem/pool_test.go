package netem

import (
	"testing"

	"repro/internal/sim"
)

func onePathHop() PathSpec {
	return PathSpec{
		Name:    "p",
		Forward: []Hop{{CapacityBps: 8e6, PropDelay: 0.01, BufferBytes: 1 << 20}},
	}
}

// TestPoolRecyclesThroughPath: a packet sent to an unregistered flow is
// recycled by the endpoint's default Drop fallback and handed back to the
// next sender.
func TestPoolRecyclesThroughPath(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPath(eng, sim.NewRNG(1), onePathHop())

	pkt := p.A.NewPacket()
	pkt.Flow = 42
	pkt.Size = 1000
	p.A.Send(pkt)
	eng.Run()
	if p.Pool.Len() != 1 {
		t.Fatalf("pool holds %d packets after drop at demux, want 1", p.Pool.Len())
	}
	if got := p.A.NewPacket(); got != pkt {
		t.Error("recycled packet not reused by next sender")
	} else if *got != (Packet{}) {
		t.Errorf("recycled packet not zeroed: %+v", *got)
	}
}

// TestPoolReleaseAtQueueDropSites: packets dropped by the random-loss and
// buffer-overflow branches go back to the pool, and the steady-state
// allocation count stays bounded by the in-flight high-water mark.
func TestPoolReleaseAtQueueDropSites(t *testing.T) {
	eng := sim.NewEngine()
	spec := onePathHop()
	spec.Forward[0].BufferBytes = 3000 // forces overflow drops under a burst
	spec.Forward[0].LossProb = 0.2
	p := NewPath(eng, sim.NewRNG(7), spec)

	const sent = 500
	for i := 0; i < sent; i++ {
		at := float64(i) * 0.002
		eng.At(at, func() {
			pkt := p.A.NewPacket()
			pkt.Flow = 9
			pkt.Size = 1000
			p.A.Send(pkt)
		})
	}
	eng.Run()
	st := p.Fwd[0].Stats()
	if st.Drops == 0 {
		t.Fatal("test needs drops to exercise the release sites")
	}
	if p.Pool.Gets != sent {
		t.Fatalf("Gets = %d, want %d", p.Pool.Gets, sent)
	}
	// Every packet either dropped at the queue or reached the unregistered
	// demux; both paths release, so eventually all live packets come home.
	if p.Pool.Puts != sent {
		t.Errorf("Puts = %d, want %d (drop or demux site failed to release)", p.Pool.Puts, sent)
	}
	if p.Pool.News >= sent/4 {
		t.Errorf("allocator hit %d times for %d sends; free list not recycling", p.Pool.News, sent)
	}
}

// TestPoolDoubleReleasePanics: the Size sentinel catches protocol
// violations at the second Put.
func TestPoolDoubleReleasePanics(t *testing.T) {
	pool := &PacketPool{}
	pkt := pool.Get()
	pool.Put(pkt)
	defer func() {
		if recover() == nil {
			t.Error("double Put did not panic")
		}
	}()
	pool.Put(pkt)
}

// TestPoolNilSafe: nil pools degrade to plain allocation so hand-built
// queues and sources outside a Path keep working.
func TestPoolNilSafe(t *testing.T) {
	var pool *PacketPool
	pkt := pool.Get()
	if pkt == nil {
		t.Fatal("nil pool Get returned nil")
	}
	pool.Put(pkt) // no-op
	if pool.Len() != 0 {
		t.Error("nil pool Len non-zero")
	}
}

// TestCustomFallbackOwnsPackets: installing a fallback hands packet
// ownership to it — the endpoint must not recycle behind its back.
func TestCustomFallbackOwnsPackets(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPath(eng, sim.NewRNG(1), onePathHop())
	var got *Packet
	p.B.SetFallback(ReceiverFunc(func(pkt *Packet) { got = pkt }))

	pkt := p.A.NewPacket()
	pkt.Flow = 3
	pkt.Size = 500
	p.A.Send(pkt)
	eng.Run()
	if got != pkt {
		t.Fatal("fallback did not receive the packet")
	}
	if p.Pool.Len() != 0 {
		t.Error("endpoint recycled a packet owned by a custom fallback")
	}
	// Restoring the default sink restores recycling.
	p.B.SetFallback(nil)
	pkt2 := p.A.NewPacket()
	pkt2.Flow = 3
	pkt2.Size = 500
	p.A.Send(pkt2)
	eng.Run()
	if p.Pool.Len() != 1 {
		t.Error("default fallback no longer recycles after SetFallback(nil)")
	}
}

// TestSourcesDrawFromPathPool: a source aimed at a path queue discovers the
// path's pool, so open-loop cross traffic recycles through the far demux.
func TestSourcesDrawFromPathPool(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPath(eng, sim.NewRNG(5), onePathHop())
	src := NewPoissonSource(eng, sim.NewRNG(6), 11, 4e6, 1000, nil, p.Fwd[0])
	src.Start()
	eng.RunUntil(2)
	src.Stop()
	eng.RunUntil(3)
	if src.BytesSent() == 0 {
		t.Fatal("source sent nothing")
	}
	sent := src.BytesSent() / 1000
	pool := p.Pool
	if pool.Puts != sent {
		t.Errorf("Puts = %d, want %d (cross packets not recycled at demux)", pool.Puts, sent)
	}
	// News is bounded by the in-flight high-water mark (queue backlog plus
	// packets in propagation), not the total sent.
	if pool.News > 64 {
		t.Errorf("allocator hit %d times for %d cross packets", pool.News, sent)
	}
}
