package netem

import (
	"repro/internal/sim"
)

// A Source generates cross traffic into a Receiver (normally the bottleneck
// queue of a path). Sources are started once and run until the engine stops
// scheduling them or Stop is called.
type Source interface {
	Start()
	Stop()
	// BytesSent returns the total bytes offered so far.
	BytesSent() int64
}

// PoissonSource emits fixed-size packets with exponential interarrivals at
// a time-varying average rate RateBps × Load(t).
type PoissonSource struct {
	Flow    FlowID
	RateBps float64
	Size    int
	Load    *LoadProcess
	Out     Receiver

	eng     *sim.Engine
	rng     *sim.RNG
	pool    *PacketPool
	stopped bool
	sent    int64
}

// NewPoissonSource builds a Poisson cross-traffic source. load may be nil
// for a constant rate.
func NewPoissonSource(eng *sim.Engine, rng *sim.RNG, flow FlowID, rateBps float64, size int, load *LoadProcess, out Receiver) *PoissonSource {
	if load == nil {
		load = ConstantLoad(1)
	}
	return &PoissonSource{
		Flow: flow, RateBps: rateBps, Size: size, Load: load, Out: out,
		eng: eng, rng: rng,
	}
}

// Start begins packet generation.
func (s *PoissonSource) Start() {
	s.pool = poolOf(s.Out)
	s.scheduleNext()
}

// poolOf discovers the packet pool behind a source's output receiver.
// Cross-traffic sources are normally pointed at a path queue; emitting from
// that path's pool lets the endpoint's default-Drop fallback recycle the
// packets. Any other receiver gets plain allocations (nil pool).
func poolOf(out Receiver) *PacketPool {
	if q, ok := out.(*Queue); ok {
		return q.pool
	}
	return nil
}

// Stop halts generation after any in-flight event.
func (s *PoissonSource) Stop() { s.stopped = true }

// BytesSent implements Source.
func (s *PoissonSource) BytesSent() int64 { return s.sent }

func (s *PoissonSource) scheduleNext() {
	if s.stopped {
		return
	}
	rate := s.RateBps * s.Load.At(s.eng.Now())
	if rate <= 0 {
		// Idle: re-check for rate resumption after a short pause.
		s.eng.Schedule(0.1, s.scheduleNext)
		return
	}
	mean := float64(s.Size) * 8 / rate
	s.eng.Schedule(s.rng.Exp(mean), func() {
		if s.stopped {
			return
		}
		s.sent += int64(s.Size)
		pkt := s.pool.Get()
		pkt.Flow = s.Flow
		pkt.Kind = KindCross
		pkt.Size = s.Size
		pkt.SentAt = s.eng.Now()
		s.Out.Receive(pkt)
		s.scheduleNext()
	})
}

// ParetoOnOffSource emits packets at a constant PeakRateBps during ON
// periods and is silent during OFF periods; period lengths are Pareto
// distributed, which makes the aggregate bursty at many timescales. The
// long-run average rate is PeakRateBps × MeanOn/(MeanOn+MeanOff) × Load(t),
// where Load modulates the OFF duration.
type ParetoOnOffSource struct {
	Flow        FlowID
	PeakRateBps float64
	Size        int
	MeanOn      float64 // mean ON duration, seconds
	MeanOff     float64 // mean OFF duration, seconds
	Alpha       float64 // Pareto shape (>1); typical 1.5
	Load        *LoadProcess
	Out         Receiver

	eng     *sim.Engine
	rng     *sim.RNG
	pool    *PacketPool
	stopped bool
	sent    int64
	on      bool
	onEnds  float64
}

// NewParetoOnOffSource builds a Pareto ON/OFF source.
func NewParetoOnOffSource(eng *sim.Engine, rng *sim.RNG, flow FlowID, peakBps float64, size int, meanOn, meanOff, alpha float64, load *LoadProcess, out Receiver) *ParetoOnOffSource {
	if load == nil {
		load = ConstantLoad(1)
	}
	if alpha <= 1 {
		alpha = 1.5
	}
	return &ParetoOnOffSource{
		Flow: flow, PeakRateBps: peakBps, Size: size,
		MeanOn: meanOn, MeanOff: meanOff, Alpha: alpha,
		Load: load, Out: out, eng: eng, rng: rng,
	}
}

// Start begins the ON/OFF cycle (starting OFF).
func (s *ParetoOnOffSource) Start() {
	s.pool = poolOf(s.Out)
	s.startOff()
}

// Stop halts generation.
func (s *ParetoOnOffSource) Stop() { s.stopped = true }

// BytesSent implements Source.
func (s *ParetoOnOffSource) BytesSent() int64 { return s.sent }

// paretoDuration draws a Pareto sample with the requested mean: for shape a,
// mean = xm*a/(a-1), so xm = mean*(a-1)/a.
func (s *ParetoOnOffSource) paretoDuration(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	xm := mean * (s.Alpha - 1) / s.Alpha
	d := s.rng.Pareto(s.Alpha, xm)
	// Truncate the heavy tail at 50× the mean to keep traces well-behaved.
	if d > 50*mean {
		d = 50 * mean
	}
	return d
}

func (s *ParetoOnOffSource) startOff() {
	if s.stopped {
		return
	}
	s.on = false
	load := s.Load.At(s.eng.Now())
	meanOff := s.MeanOff
	if load > 0 {
		// Higher load shortens silences, raising the average rate.
		meanOff = s.MeanOff / load
	} else {
		meanOff = s.MeanOff * 10
	}
	s.eng.Schedule(s.paretoDuration(meanOff), s.startOn)
}

func (s *ParetoOnOffSource) startOn() {
	if s.stopped {
		return
	}
	s.on = true
	s.onEnds = s.eng.Now() + s.paretoDuration(s.MeanOn)
	s.emit()
}

func (s *ParetoOnOffSource) emit() {
	if s.stopped {
		return
	}
	if s.eng.Now() >= s.onEnds {
		s.startOff()
		return
	}
	s.sent += int64(s.Size)
	pkt := s.pool.Get()
	pkt.Flow = s.Flow
	pkt.Kind = KindCross
	pkt.Size = s.Size
	pkt.SentAt = s.eng.Now()
	s.Out.Receive(pkt)
	gap := float64(s.Size) * 8 / s.PeakRateBps
	s.eng.Schedule(gap, s.emit)
}
