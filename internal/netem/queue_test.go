package netem

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func collector(got *[]*Packet) Receiver {
	return ReceiverFunc(func(p *Packet) { *got = append(*got, p) })
}

func TestQueueTransmissionTime(t *testing.T) {
	eng := sim.NewEngine()
	var got []*Packet
	var at []float64
	q := NewQueue(eng, sim.NewRNG(1), "q", 8e6, 0, 1<<20, ReceiverFunc(func(p *Packet) {
		got = append(got, p)
		at = append(at, eng.Now())
	}))
	q.Receive(&Packet{Size: 1000})
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	// 1000 B at 8 Mbps = 1 ms.
	if math.Abs(at[0]-0.001) > 1e-12 {
		t.Errorf("delivery at %v, want 0.001", at[0])
	}
}

func TestQueuePropDelay(t *testing.T) {
	eng := sim.NewEngine()
	var at float64
	q := NewQueue(eng, nil, "q", 8e6, 0.05, 1<<20, ReceiverFunc(func(*Packet) { at = eng.Now() }))
	q.Receive(&Packet{Size: 1000})
	eng.Run()
	want := 0.001 + 0.05
	if math.Abs(at-want) > 1e-12 {
		t.Errorf("delivery at %v, want %v", at, want)
	}
}

func TestQueueFIFOAndSerialization(t *testing.T) {
	eng := sim.NewEngine()
	var got []*Packet
	var at []float64
	q := NewQueue(eng, nil, "q", 8e6, 0, 1<<20, ReceiverFunc(func(p *Packet) {
		got = append(got, p)
		at = append(at, eng.Now())
	}))
	for i := 0; i < 5; i++ {
		q.Receive(&Packet{Size: 1000, Seq: int64(i)})
	}
	eng.Run()
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	for i, p := range got {
		if p.Seq != int64(i) {
			t.Errorf("packet %d has seq %d (not FIFO)", i, p.Seq)
		}
		want := 0.001 * float64(i+1)
		if math.Abs(at[i]-want) > 1e-9 {
			t.Errorf("packet %d delivered at %v, want %v", i, at[i], want)
		}
	}
}

func TestQueueDropTail(t *testing.T) {
	eng := sim.NewEngine()
	var got []*Packet
	// Buffer of exactly 2 waiting packets (the transmitting one leaves the
	// buffer when transmission starts).
	q := NewQueue(eng, nil, "q", 8e6, 0, 2000, collector(&got))
	for i := 0; i < 5; i++ {
		q.Receive(&Packet{Size: 1000, Seq: int64(i)})
	}
	eng.Run()
	st := q.Stats()
	if st.Arrivals != 5 {
		t.Errorf("arrivals %d, want 5", st.Arrivals)
	}
	if st.Drops == 0 {
		t.Error("expected droptail drops")
	}
	if int(st.Departures) != len(got) {
		t.Errorf("departures %d but delivered %d", st.Departures, len(got))
	}
	if st.Departures+st.Drops != st.Arrivals {
		t.Errorf("accounting broken: %+v", st)
	}
}

func TestQueuePacketCountLimit(t *testing.T) {
	eng := sim.NewEngine()
	var got []*Packet
	q := NewQueue(eng, nil, "q", 8e6, 0, 1<<20, collector(&got))
	q.BufferPackets = 2
	// Small packets: byte buffer would accept all, packet limit drops.
	for i := 0; i < 6; i++ {
		q.Receive(&Packet{Size: 41})
	}
	eng.Run()
	if q.Stats().Drops == 0 {
		t.Error("packet-count limit did not drop")
	}
}

func TestQueueRandomLoss(t *testing.T) {
	eng := sim.NewEngine()
	var got []*Packet
	q := NewQueue(eng, sim.NewRNG(1), "q", 80e6, 0, 1<<24, collector(&got))
	q.LossProb = 0.1
	const n = 20000
	for i := 0; i < n; i++ {
		q.Receive(&Packet{Size: 100})
	}
	eng.Run()
	st := q.Stats()
	rate := float64(st.RandomLoss) / n
	if math.Abs(rate-0.1) > 0.01 {
		t.Errorf("random loss rate %.3f, want ≈0.1", rate)
	}
	if st.LossRate() != float64(st.Drops)/float64(st.Arrivals) {
		t.Error("LossRate inconsistent with counters")
	}
}

func TestQueueREDDropsRiseWithOccupancy(t *testing.T) {
	eng := sim.NewEngine()
	mk := func(arrivalGap float64) float64 {
		e := sim.NewEngine()
		q := NewQueue(e, sim.NewRNG(9), "q", 8e6, 0, 100*1000, Drop)
		q.RED = true
		n := 0
		var send func()
		send = func() {
			if n >= 5000 {
				return
			}
			n++
			q.Receive(&Packet{Size: 1000})
			e.Schedule(arrivalGap, send)
		}
		send()
		e.Run()
		return q.Stats().LossRate()
	}
	_ = eng
	light := mk(0.002)  // 0.5× capacity
	heavy := mk(0.0009) // ~1.1× capacity
	if light > 0.005 {
		t.Errorf("light load RED loss %.4f, want ~0", light)
	}
	if heavy <= light+0.01 {
		t.Errorf("heavy load RED loss %.4f not above light %.4f", heavy, light)
	}
}

func TestQueueBacklogTracksBytes(t *testing.T) {
	eng := sim.NewEngine()
	q := NewQueue(eng, nil, "q", 8e6, 0, 1<<20, Drop)
	q.Receive(&Packet{Size: 1000})
	q.Receive(&Packet{Size: 500})
	// First packet immediately starts transmitting (leaves the backlog).
	if q.Backlog() != 500 {
		t.Errorf("backlog %d, want 500", q.Backlog())
	}
	eng.Run()
	if q.Backlog() != 0 {
		t.Errorf("backlog %d after drain, want 0", q.Backlog())
	}
}

func TestQueueMonitor(t *testing.T) {
	eng := sim.NewEngine()
	q := NewQueue(eng, nil, "q", 8e6, 0, 1500, Drop)
	var events []QueueEventKind
	q.SetMonitor(func(ev QueueEvent) { events = append(events, ev.Kind) })
	q.Receive(&Packet{Size: 1000})
	q.Receive(&Packet{Size: 1000})
	q.Receive(&Packet{Size: 1000}) // drop: 1000 in service + 1000 waiting
	eng.Run()
	var enq, deq, drop int
	for _, k := range events {
		switch k {
		case EvEnqueue:
			enq++
		case EvDequeue:
			deq++
		case EvDrop:
			drop++
		}
	}
	if enq != 2 || deq != 2 || drop != 1 {
		t.Errorf("events enq=%d deq=%d drop=%d, want 2/2/1", enq, deq, drop)
	}
}

func TestQueueInvalidConfigPanics(t *testing.T) {
	eng := sim.NewEngine()
	for _, tc := range []struct {
		cap float64
		buf int
	}{{0, 100}, {1e6, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewQueue(cap=%v,buf=%d) did not panic", tc.cap, tc.buf)
				}
			}()
			NewQueue(eng, nil, "bad", tc.cap, 0, tc.buf, Drop)
		}()
	}
}

func TestQueueConservation(t *testing.T) {
	// Property: arrivals = departures + drops, bytes in = bytes out +
	// dropped bytes, regardless of arrival pattern.
	eng := sim.NewEngine()
	rng := sim.NewRNG(5)
	var got []*Packet
	q := NewQueue(eng, rng.Fork(), "q", 2e6, 0.01, 8000, collector(&got))
	q.LossProb = 0.02
	n := 0
	var send func()
	send = func() {
		if n >= 3000 {
			return
		}
		n++
		q.Receive(&Packet{Size: 200 + rng.Intn(1300)})
		eng.Schedule(rng.Exp(0.002), send)
	}
	send()
	eng.Run()
	st := q.Stats()
	if st.Arrivals != st.Departures+st.Drops {
		t.Errorf("conservation violated: %+v", st)
	}
	if int64(len(got)) != st.Departures {
		t.Errorf("delivered %d != departures %d", len(got), st.Departures)
	}
}

func TestQueueReordering(t *testing.T) {
	eng := sim.NewEngine()
	var seqs []int64
	q := NewQueue(eng, sim.NewRNG(3), "q", 8e6, 0.01, 1<<20, ReceiverFunc(func(p *Packet) {
		seqs = append(seqs, p.Seq)
	}))
	q.ReorderProb = 0.2
	q.ReorderDelay = 0.02
	for i := 0; i < 500; i++ {
		q.Receive(&Packet{Size: 1000, Seq: int64(i)})
	}
	eng.Run()
	if len(seqs) != 500 {
		t.Fatalf("delivered %d packets", len(seqs))
	}
	ooo := 0
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			ooo++
		}
	}
	if ooo == 0 {
		t.Error("no reordering observed at ReorderProb=0.2")
	}
	// Without reordering the same stream must arrive in order.
	eng2 := sim.NewEngine()
	var seqs2 []int64
	q2 := NewQueue(eng2, sim.NewRNG(3), "q", 8e6, 0.01, 1<<20, ReceiverFunc(func(p *Packet) {
		seqs2 = append(seqs2, p.Seq)
	}))
	for i := 0; i < 500; i++ {
		q2.Receive(&Packet{Size: 1000, Seq: int64(i)})
	}
	eng2.Run()
	for i := 1; i < len(seqs2); i++ {
		if seqs2[i] < seqs2[i-1] {
			t.Fatal("reordering without ReorderProb")
		}
	}
}
