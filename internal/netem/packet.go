// Package netem models network paths at packet granularity on top of the
// sim engine: droptail queues with finite buffers, fixed-capacity links with
// propagation delay, bidirectional paths, per-flow demultiplexing, and a set
// of cross-traffic generators (open-loop Poisson and Pareto ON/OFF sources,
// closed-loop persistent TCP herds, and a time-varying load process that
// injects level shifts, outliers, and trends).
package netem

import "fmt"

// FlowID identifies a flow end-to-end. Endpoint demuxers dispatch received
// packets to the handler registered for the packet's flow.
type FlowID int64

// PacketKind classifies what a packet carries. The simulator does not
// serialize payloads; protocol modules attach typed metadata instead.
type PacketKind uint8

// Packet kinds.
const (
	KindData  PacketKind = iota // TCP data segment
	KindAck                     // TCP acknowledgment
	KindProbe                   // ping request
	KindEcho                    // ping reply
	KindCross                   // open-loop cross traffic
	KindChirp                   // avail-bw probing stream packet
)

func (k PacketKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindProbe:
		return "probe"
	case KindEcho:
		return "echo"
	case KindCross:
		return "cross"
	case KindChirp:
		return "chirp"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Packet is the unit of transmission. Packets are allocated by senders and
// flow through queues to an endpoint demux; they are not copied in transit.
type Packet struct {
	Flow FlowID
	Kind PacketKind
	Size int // bytes on the wire, including headers

	// Seq is protocol-defined: TCP byte sequence number for data, probe
	// sequence number for probes, stream/packet index for chirps.
	Seq int64
	// Ack is the cumulative ACK sequence for KindAck packets.
	Ack int64

	// SentAt is the virtual time the packet left the sender, used for RTT
	// measurement by probes and TCP.
	SentAt float64

	// Meta carries protocol-specific data (e.g. chirp stream parameters).
	Meta any
}

// Receiver consumes packets. Queues, pipes, and endpoint demuxers all
// implement Receiver, so network elements compose by chaining.
type Receiver interface {
	Receive(pkt *Packet)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(pkt *Packet)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(pkt *Packet) { f(pkt) }

// Drop is a Receiver that discards everything, for terminating chains in
// tests.
var Drop Receiver = ReceiverFunc(func(*Packet) {})
