package netem

import (
	"fmt"

	"repro/internal/sim"
)

// Hop describes one link of a path.
type Hop struct {
	CapacityBps   float64 // link capacity, bits per second
	PropDelay     float64 // one-way propagation delay, seconds
	BufferBytes   int     // droptail buffer size, bytes
	BufferPackets int     // optional packet-count limit (router-style buffers)
	LossProb      float64 // random (non-congestive) per-packet loss probability
	RED           bool    // enable RED/AQM dropping (see Queue)
	// Rate optionally makes the hop variable-rate (see Queue.Rate). The
	// schedule is shared by reference: a spec whose Reverse mirrors
	// Forward sees the same trajectory in both directions.
	Rate *RateSchedule
}

// PathSpec describes a bidirectional path. Reverse may be empty, in which
// case the reverse direction mirrors Forward.
type PathSpec struct {
	Name    string
	Forward []Hop
	Reverse []Hop
}

// Path is an instantiated bidirectional network path. Endpoint A transmits
// toward B over the forward queues; B transmits toward A over the reverse
// queues. Cross traffic can be injected at any forward queue.
type Path struct {
	Name string
	Fwd  []*Queue
	Rev  []*Queue
	A    *Endpoint
	B    *Endpoint
	// Pool recycles packets that complete their journey on this path. Both
	// endpoints and all queues share it; see PacketPool for the ownership
	// protocol.
	Pool *PacketPool

	eng *sim.Engine
}

// NewPath builds the queues and endpoints for spec.
func NewPath(eng *sim.Engine, rng *sim.RNG, spec PathSpec) *Path {
	if len(spec.Forward) == 0 {
		panic(fmt.Sprintf("netem: path %q has no forward hops", spec.Name))
	}
	rev := spec.Reverse
	if len(rev) == 0 {
		rev = spec.Forward
	}
	p := &Path{Name: spec.Name, Pool: &PacketPool{}, eng: eng}
	p.A = newEndpoint(eng, spec.Name+"/A")
	p.B = newEndpoint(eng, spec.Name+"/B")
	p.A.pool = p.Pool
	p.B.pool = p.Pool
	p.Fwd = buildChain(eng, rng, spec.Name+"/fwd", spec.Forward, p.B)
	p.Rev = buildChain(eng, rng, spec.Name+"/rev", rev, p.A)
	for _, q := range p.Fwd {
		q.pool = p.Pool
	}
	for _, q := range p.Rev {
		q.pool = p.Pool
	}
	p.A.out = p.Fwd[0]
	p.B.out = p.Rev[0]
	return p
}

func buildChain(eng *sim.Engine, rng *sim.RNG, prefix string, hops []Hop, sink Receiver) []*Queue {
	queues := make([]*Queue, len(hops))
	next := sink
	for i := len(hops) - 1; i >= 0; i-- {
		h := hops[i]
		q := NewQueue(eng, rng.Fork(), fmt.Sprintf("%s[%d]", prefix, i), h.CapacityBps, h.PropDelay, h.BufferBytes, next)
		q.LossProb = h.LossProb
		q.BufferPackets = h.BufferPackets
		q.RED = h.RED
		q.Rate = h.Rate
		queues[i] = q
		next = q
	}
	return queues
}

// Bottleneck returns the forward queue with the smallest capacity. Ties go
// to the earliest hop.
func (p *Path) Bottleneck() *Queue {
	best := p.Fwd[0]
	for _, q := range p.Fwd[1:] {
		if q.CapacityBps < best.CapacityBps {
			best = q
		}
	}
	return best
}

// BottleneckIndex returns the index of Bottleneck within Fwd.
func (p *Path) BottleneckIndex() int {
	idx := 0
	for i, q := range p.Fwd {
		if q.CapacityBps < p.Fwd[idx].CapacityBps {
			idx = i
		}
	}
	return idx
}

// BaseRTT returns the two-way propagation plus per-hop transmission delay
// for a packet of the given size, with empty queues.
func (p *Path) BaseRTT(size int) float64 {
	rtt := 0.0
	for _, q := range p.Fwd {
		rtt += q.PropDelay + q.TransmissionTime(size)
	}
	for _, q := range p.Rev {
		rtt += q.PropDelay + q.TransmissionTime(size)
	}
	return rtt
}

// Endpoint is a path terminus: it stamps and injects packets into its
// direction's first queue and demultiplexes arriving packets by flow ID.
type Endpoint struct {
	Name string

	eng      *sim.Engine
	out      Receiver
	pool     *PacketPool
	handlers map[FlowID]Receiver
	fallback Receiver
	// fallbackIsDrop tracks whether fallback is the default discard sink.
	// Receiver values are not comparable (they may be func types), so a
	// flag — not an interface comparison — gates the pool release of
	// packets for unregistered flows.
	fallbackIsDrop bool
}

func newEndpoint(eng *sim.Engine, name string) *Endpoint {
	return &Endpoint{
		Name:           name,
		eng:            eng,
		handlers:       make(map[FlowID]Receiver),
		fallback:       Drop,
		fallbackIsDrop: true,
	}
}

// Send stamps the packet's departure time and injects it toward the peer.
func (ep *Endpoint) Send(pkt *Packet) {
	pkt.SentAt = ep.eng.Now()
	ep.out.Receive(pkt)
}

// SendRaw injects without restamping SentAt (used by echo responders that
// must preserve the original probe timestamp).
func (ep *Endpoint) SendRaw(pkt *Packet) { ep.out.Receive(pkt) }

// NewPacket acquires a zeroed packet from the path's pool (or allocates
// when the endpoint was built without one). The caller owns it until it is
// passed to Send or released with ReleasePacket.
func (ep *Endpoint) NewPacket() *Packet { return ep.pool.Get() }

// ReleasePacket returns an exhausted packet to the path's pool. Terminal
// protocol handlers call this once they have extracted everything they
// need; the packet must not be touched afterwards.
func (ep *Endpoint) ReleasePacket(pkt *Packet) { ep.pool.Put(pkt) }

// Register installs the handler for a flow. Registering nil removes it.
func (ep *Endpoint) Register(flow FlowID, h Receiver) {
	if h == nil {
		delete(ep.handlers, flow)
		return
	}
	ep.handlers[flow] = h
}

// Handler returns the receiver registered for a flow (nil if none), so
// callers can interpose wrappers such as loss or delay injectors.
func (ep *Endpoint) Handler(flow FlowID) Receiver {
	return ep.handlers[flow]
}

// SetFallback installs the handler for packets whose flow is unregistered.
// A custom fallback takes ownership of the packets it receives; passing nil
// restores the default discard sink, which recycles them.
func (ep *Endpoint) SetFallback(h Receiver) {
	ep.fallbackIsDrop = h == nil
	if h == nil {
		h = Drop
	}
	ep.fallback = h
}

// Receive implements Receiver by dispatching on the packet's flow.
func (ep *Endpoint) Receive(pkt *Packet) {
	if h, ok := ep.handlers[pkt.Flow]; ok {
		h.Receive(pkt)
		return
	}
	if ep.fallbackIsDrop {
		// Unregistered flow, default sink: the demux is the terminal
		// consumer, so it recycles the packet instead of leaking it to GC.
		ep.pool.Put(pkt)
		return
	}
	ep.fallback.Receive(pkt)
}

// DelayReceiver forwards packets to Next after a fixed extra delay. It is
// used to give cross-traffic TCP flows a different RTT than the target flow
// without building a separate topology.
type DelayReceiver struct {
	Delay float64
	Next  Receiver
	eng   *sim.Engine
}

// NewDelayReceiver wraps next with a fixed delay stage.
func NewDelayReceiver(eng *sim.Engine, delay float64, next Receiver) *DelayReceiver {
	return &DelayReceiver{Delay: delay, Next: next, eng: eng}
}

// Receive implements Receiver.
func (d *DelayReceiver) Receive(pkt *Packet) {
	if d.Delay <= 0 {
		d.Next.Receive(pkt)
		return
	}
	next := d.Next
	d.eng.Schedule(d.Delay, func() { next.Receive(pkt) })
}
