package netem

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestRateScheduleAt(t *testing.T) {
	var nilSched *RateSchedule
	if got := nilSched.At(5); got != 1 {
		t.Errorf("nil schedule At = %v, want 1", got)
	}
	empty := &RateSchedule{}
	if got := empty.At(5); got != 1 {
		t.Errorf("empty schedule At = %v, want 1", got)
	}
	s := &RateSchedule{Steps: []RateStep{{T: 2, Mult: 0.5}, {T: 5, Mult: 0.25}, {T: 9, Mult: 1.0}}}
	for _, tc := range []struct{ t, want float64 }{
		{0, 1}, {1.999, 1}, // before the first step: nominal
		{2, 0.5}, {4.9, 0.5}, // step boundaries are inclusive
		{5, 0.25}, {8.999, 0.25},
		{9, 1}, {1e6, 1}, // last step holds forever
	} {
		if got := s.At(tc.t); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestRateScheduleFloor(t *testing.T) {
	// A zero or negative multiplier must not stall the queue forever: the
	// effective rate floors at a small positive value.
	s := &RateSchedule{Steps: []RateStep{{T: 1, Mult: 0}}}
	if got := s.At(2); got <= 0 {
		t.Errorf("At over a zero step = %v, want a positive floor", got)
	}
}

func TestRateScheduleMean(t *testing.T) {
	s := &RateSchedule{Steps: []RateStep{{T: 2, Mult: 0.5}}}
	// [0,2) at 1.0, [2,4) at 0.5 -> mean 0.75 over 4 s.
	if got, want := s.Mean(4), 0.75; math.Abs(got-want) > 1e-9 {
		t.Errorf("Mean(4) = %v, want %v", got, want)
	}
	var nilSched *RateSchedule
	if got := nilSched.Mean(10); got != 1 {
		t.Errorf("nil schedule Mean = %v, want 1", got)
	}
}

// TestQueueHonorsRateSchedule checks transmission times stretch by the
// schedule's multiplier — a saturated queue under a 50% fade drains at
// half rate — and that a mid-run step changes the drain rate from the
// step time onward.
func TestQueueHonorsRateSchedule(t *testing.T) {
	drained := func(rate *RateSchedule, until float64) int {
		eng := sim.NewEngine()
		delivered := 0
		q := NewQueue(eng, nil, "q", 8e6, 0, 1<<30, ReceiverFunc(func(p *Packet) { delivered += p.Size }))
		q.Rate = rate
		for i := 0; i < 4000; i++ {
			q.Receive(&Packet{Size: 1000, Seq: int64(i)})
		}
		eng.RunUntil(until)
		return delivered
	}
	full := drained(nil, 2)
	faded := drained(&RateSchedule{Steps: []RateStep{{T: 0, Mult: 0.5}}}, 2)
	if lo, hi := full*4/10, full*6/10; faded < lo || faded > hi {
		t.Errorf("50%% fade drained %d bytes vs nominal %d, want ≈half", faded, full)
	}
	// Fade starting at t=1: first second at full rate, second at half —
	// expect ≈3/4 of the nominal two-second drain.
	stepped := drained(&RateSchedule{Steps: []RateStep{{T: 1, Mult: 0.5}}}, 2)
	if lo, hi := full*65/100, full*85/100; stepped < lo || stepped > hi {
		t.Errorf("mid-run fade drained %d bytes vs nominal %d, want ≈3/4", stepped, full)
	}
}
