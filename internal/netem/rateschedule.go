package netem

import "sort"

// RateStep is one knot of a RateSchedule: from time T onward the link
// runs at Mult × its nominal capacity, until the next step.
type RateStep struct {
	T    float64 // virtual time the step takes effect, seconds
	Mult float64 // capacity multiplier from T onward
}

// RateSchedule drives a variable-rate link — the cellular/wireless regime
// where the serving rate itself moves (fading, scheduler shares, handover)
// rather than the queue in front of a fixed pipe. It is a piecewise-
// constant capacity multiplier sampled at each packet's transmission
// start; contrast LoadProcess, which modulates offered cross-traffic load
// against a fixed capacity. Steps must be sorted by T ascending.
type RateSchedule struct {
	Steps []RateStep
}

// rateFloor keeps a mis-built schedule from stalling the link forever: a
// zero or negative multiplier would make the transmission time infinite
// and wedge the queue.
const rateFloor = 1e-3

// At returns the capacity multiplier in effect at time t: the last step
// with T ≤ t, or 1 before the first step (and for an empty schedule).
func (r *RateSchedule) At(t float64) float64 {
	if r == nil || len(r.Steps) == 0 {
		return 1
	}
	// sort.Search finds the first step with T > t; the one before it rules.
	i := sort.Search(len(r.Steps), func(i int) bool { return r.Steps[i].T > t })
	if i == 0 {
		return 1
	}
	m := r.Steps[i-1].Mult
	if m < rateFloor {
		return rateFloor
	}
	return m
}

// Mean returns the time-average multiplier over [0, horizon] — what a
// long transfer would see, useful for sizing buffers and validating
// generated trajectories.
func (r *RateSchedule) Mean(horizon float64) float64 {
	if r == nil || len(r.Steps) == 0 || horizon <= 0 {
		return 1
	}
	var area, prevT float64
	prevM := 1.0
	for _, s := range r.Steps {
		t := s.T
		if t > horizon {
			t = horizon
		}
		if t > prevT {
			area += prevM * (t - prevT)
			prevT = t
		}
		m := s.Mult
		if m < rateFloor {
			m = rateFloor
		}
		prevM = m
		if s.T >= horizon {
			break
		}
	}
	if prevT < horizon {
		area += prevM * (horizon - prevT)
	}
	return area / horizon
}
