package netem

// PacketPool is a free list of Packets owned by a Path. It exists so the
// packet hot path (sender → queues → endpoint demux) runs without touching
// the allocator in steady state: terminal consumers hand exhausted packets
// back with Put, and senders draw replacements with Get.
//
// The pool is deliberately NOT a sync.Pool. The simulator is
// single-threaded per engine, and sync.Pool's per-P caches and GC-driven
// eviction would make recycling order (and therefore allocation behaviour)
// nondeterministic across runs. A plain LIFO slice is cheaper and its
// behaviour is a pure function of the packet event sequence.
//
// Ownership protocol (see DESIGN.md §10):
//
//   - Whoever holds a *Packet owns it until they pass it on or Put it.
//     After either, the pointer must not be used again — the pool will
//     hand the same node to an unrelated sender.
//   - Exactly one party releases each packet: the terminal consumer (the
//     protocol handler that extracts the packet's information), or the
//     drop site (queue loss/overflow/RED, endpoint default-Drop fallback).
//   - Pass-through elements (queues in transit, DelayReceiver, fault
//     injection wrappers) never Put.
//   - Failing to Put is benign — the packet falls to the garbage
//     collector and the pool simply misses a recycle. Putting twice is a
//     protocol violation and panics immediately via the Size sentinel.
//
// All methods are nil-receiver-safe: code wired without a pool (hand-built
// queues in tests, standalone sources) degrades to plain allocation.
type PacketPool struct {
	free []*Packet

	// Counters for benchmarks and pool tests: News is the number of Gets
	// that fell through to the allocator.
	Gets, Puts, News int64
}

// pooledSentinel marks a packet currently sitting in the free list. No
// live packet has a negative size, so a Put of an already-pooled packet is
// detected in one comparison.
const pooledSentinel = -1

// Get returns a zeroed packet, recycling a released one when available.
func (p *PacketPool) Get() *Packet {
	if p == nil {
		return &Packet{}
	}
	p.Gets++
	n := len(p.free)
	if n == 0 {
		p.News++
		return &Packet{}
	}
	pkt := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	*pkt = Packet{}
	return pkt
}

// Put releases a packet back to the pool. The caller must not touch pkt
// afterwards. Put(nil) is a no-op; releasing the same packet twice panics.
func (p *PacketPool) Put(pkt *Packet) {
	if p == nil || pkt == nil {
		return
	}
	if pkt.Size == pooledSentinel {
		panic("netem: packet released twice")
	}
	pkt.Size = pooledSentinel
	pkt.Meta = nil // drop protocol payloads so the pool retains nothing
	p.Puts++
	p.free = append(p.free, pkt)
}

// Len reports how many released packets are available for reuse.
func (p *PacketPool) Len() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}
