package netem

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func twoHopSpec() PathSpec {
	return PathSpec{
		Name: "test",
		Forward: []Hop{
			{CapacityBps: 10e6, PropDelay: 0.01, BufferBytes: 1 << 20},
			{CapacityBps: 2e6, PropDelay: 0.02, BufferBytes: 64 * 1500},
		},
	}
}

func TestPathRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPath(eng, sim.NewRNG(1), twoHopSpec())
	var atB, atA *Packet
	p.B.Register(7, ReceiverFunc(func(pkt *Packet) {
		atB = pkt
		p.B.Send(&Packet{Flow: 7, Kind: KindAck, Size: 40})
	}))
	p.A.Register(7, ReceiverFunc(func(pkt *Packet) { atA = pkt }))
	p.A.Send(&Packet{Flow: 7, Kind: KindData, Size: 1500})
	eng.Run()
	if atB == nil {
		t.Fatal("packet did not reach B")
	}
	if atA == nil {
		t.Fatal("reply did not reach A")
	}
	if atA.Kind != KindAck {
		t.Errorf("reply kind %v, want ack", atA.Kind)
	}
}

func TestPathBottleneck(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPath(eng, sim.NewRNG(1), twoHopSpec())
	if p.Bottleneck().CapacityBps != 2e6 {
		t.Errorf("bottleneck capacity %v, want 2e6", p.Bottleneck().CapacityBps)
	}
	if p.BottleneckIndex() != 1 {
		t.Errorf("bottleneck index %d, want 1", p.BottleneckIndex())
	}
}

func TestPathBaseRTT(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPath(eng, sim.NewRNG(1), twoHopSpec())
	// Forward: 10+20 ms prop; reverse mirrors forward (30 ms).
	// Plus serialization of 1500 B: fwd 1.2ms + 6ms, rev the same.
	want := 0.06 + 2*(1500*8/10e6+1500*8/2e6)
	got := p.BaseRTT(1500)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("BaseRTT %v, want %v", got, want)
	}
}

func TestPathMeasuredRTTMatchesBaseRTT(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPath(eng, sim.NewRNG(1), twoHopSpec())
	var rtt float64
	p.B.Register(1, ReceiverFunc(func(pkt *Packet) {
		p.B.SendRaw(&Packet{Flow: 1, Kind: KindEcho, Size: pkt.Size, SentAt: pkt.SentAt})
	}))
	p.A.Register(1, ReceiverFunc(func(pkt *Packet) { rtt = eng.Now() - pkt.SentAt }))
	p.A.Send(&Packet{Flow: 1, Kind: KindProbe, Size: 1500})
	eng.Run()
	if math.Abs(rtt-p.BaseRTT(1500)) > 1e-9 {
		t.Errorf("measured RTT %v, BaseRTT %v", rtt, p.BaseRTT(1500))
	}
}

func TestEndpointFallback(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPath(eng, sim.NewRNG(1), twoHopSpec())
	var fallback int
	p.B.SetFallback(ReceiverFunc(func(*Packet) { fallback++ }))
	p.A.Send(&Packet{Flow: 99, Size: 100})
	eng.Run()
	if fallback != 1 {
		t.Errorf("fallback received %d, want 1", fallback)
	}
}

func TestEndpointDeregister(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPath(eng, sim.NewRNG(1), twoHopSpec())
	n := 0
	p.B.Register(5, ReceiverFunc(func(*Packet) { n++ }))
	p.A.Send(&Packet{Flow: 5, Size: 100})
	eng.Run()
	p.B.Register(5, nil)
	p.A.Send(&Packet{Flow: 5, Size: 100})
	eng.Run()
	if n != 1 {
		t.Errorf("handler saw %d packets, want 1 (deregistered)", n)
	}
}

func TestDelayReceiver(t *testing.T) {
	eng := sim.NewEngine()
	var at float64
	d := NewDelayReceiver(eng, 0.25, ReceiverFunc(func(*Packet) { at = eng.Now() }))
	d.Receive(&Packet{Size: 1})
	eng.Run()
	if math.Abs(at-0.25) > 1e-12 {
		t.Errorf("delayed delivery at %v, want 0.25", at)
	}
}

func TestReversePathDefaultsMirrorsForward(t *testing.T) {
	eng := sim.NewEngine()
	spec := twoHopSpec()
	p := NewPath(eng, sim.NewRNG(1), spec)
	if len(p.Rev) != len(spec.Forward) {
		t.Errorf("reverse hops %d, want %d", len(p.Rev), len(spec.Forward))
	}
}

func TestPanicsOnEmptyPath(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty path spec did not panic")
		}
	}()
	NewPath(sim.NewEngine(), sim.NewRNG(1), PathSpec{Name: "empty"})
}
