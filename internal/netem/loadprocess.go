package netem

import (
	"sort"

	"repro/internal/sim"
)

// LoadProcess is a piecewise-linear multiplier applied to a cross-traffic
// source's base rate. It is pre-generated for a whole trace so that a run is
// reproducible and so the analysis code can know the ground-truth load.
//
// The process combines three non-stationarities the paper observes in real
// throughput time series (Section 5.2): level shifts, outlier bursts, and
// slow trends.
type LoadProcess struct {
	segs []loadSeg
}

type loadSeg struct {
	start float64 // segment start time
	level float64 // multiplier at segment start
	slope float64 // multiplier change per second (trend)
}

// LoadConfig tunes the generated load process. Zero values disable the
// corresponding feature.
type LoadConfig struct {
	Horizon float64 // duration to generate for, seconds

	// Level shifts: Poisson arrivals with the given mean interval; at each
	// shift the level is multiplied by a factor drawn uniformly from
	// [ShiftLo, ShiftHi] (and inverted with probability 0.5), clamped to
	// [MinLevel, MaxLevel].
	ShiftMeanInterval  float64
	ShiftLo, ShiftHi   float64
	MinLevel, MaxLevel float64

	// Outlier bursts: Poisson arrivals; each burst multiplies the level by
	// BurstFactor for a duration uniform in [BurstMin, BurstMax] seconds.
	BurstMeanInterval  float64
	BurstFactor        float64
	BurstMin, BurstMax float64

	// Trend: with probability TrendProb each inter-shift segment drifts
	// linearly by up to ±TrendMaxSlope (fraction of level per second).
	TrendProb     float64
	TrendMaxSlope float64
}

// DefaultLoadConfig returns a configuration that produces the mix of
// stationarity and pathologies seen in the paper's traces over a ~6 h trace.
func DefaultLoadConfig(horizon float64) LoadConfig {
	return LoadConfig{
		Horizon:           horizon,
		ShiftMeanInterval: 2400, // a level shift every ~40 min on average
		ShiftLo:           1.3,
		ShiftHi:           2.2,
		MinLevel:          0.25,
		MaxLevel:          1.9,
		BurstMeanInterval: 1800,
		BurstFactor:       2.8,
		BurstMin:          60,
		BurstMax:          180,
		TrendProb:         0.25,
		TrendMaxSlope:     1.0 / 7200, // drift up to 100% over 2 h
	}
}

// ConstantLoad returns a process pinned at the given multiplier.
func ConstantLoad(level float64) *LoadProcess {
	return &LoadProcess{segs: []loadSeg{{start: 0, level: level}}}
}

// GenerateLoad draws a load process from cfg using rng.
func GenerateLoad(rng *sim.RNG, cfg LoadConfig) *LoadProcess {
	if cfg.Horizon <= 0 {
		return ConstantLoad(1)
	}
	type change struct {
		at     float64
		factor float64 // multiplicative level change (0 = no change)
		burst  float64 // burst end time (0 = not a burst)
	}
	var changes []change
	if cfg.ShiftMeanInterval > 0 {
		for t := rng.Exp(cfg.ShiftMeanInterval); t < cfg.Horizon; t += rng.Exp(cfg.ShiftMeanInterval) {
			f := rng.Uniform(cfg.ShiftLo, cfg.ShiftHi)
			if rng.Bool(0.5) {
				f = 1 / f
			}
			changes = append(changes, change{at: t, factor: f})
		}
	}
	if cfg.BurstMeanInterval > 0 {
		for t := rng.Exp(cfg.BurstMeanInterval); t < cfg.Horizon; t += rng.Exp(cfg.BurstMeanInterval) {
			d := rng.Uniform(cfg.BurstMin, cfg.BurstMax)
			changes = append(changes, change{at: t, factor: cfg.BurstFactor, burst: t + d})
		}
	}
	sort.Slice(changes, func(i, j int) bool { return changes[i].at < changes[j].at })

	lp := &LoadProcess{}
	level := 1.0
	push := func(t, lvl float64) {
		slope := 0.0
		if cfg.TrendProb > 0 && rng.Bool(cfg.TrendProb) {
			slope = rng.Uniform(-cfg.TrendMaxSlope, cfg.TrendMaxSlope) * lvl
		}
		lp.segs = append(lp.segs, loadSeg{start: t, level: lvl, slope: slope})
	}
	push(0, level)
	for _, c := range changes {
		if c.burst > 0 {
			// Burst: temporary elevation, then return to the pre-burst level.
			lp.segs = append(lp.segs, loadSeg{start: c.at, level: clamp(level*c.factor, cfg.MinLevel, cfg.MaxLevel)})
			push(c.burst, level)
			continue
		}
		level = clamp(level*c.factor, cfg.MinLevel, cfg.MaxLevel)
		push(c.at, level)
	}
	return lp
}

// At returns the multiplier at time t. Times before the first segment use
// the first segment's level; times after the horizon extrapolate the last
// segment (with its trend clamped at zero).
func (lp *LoadProcess) At(t float64) float64 {
	segs := lp.segs
	if len(segs) == 0 {
		return 1
	}
	// Binary search for the last segment starting at or before t.
	lo, hi := 0, len(segs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if segs[mid].start <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	s := segs[lo]
	v := s.level + s.slope*(t-s.start)
	if v < 0 {
		v = 0
	}
	return v
}

// Segments returns the number of piecewise segments (for tests).
func (lp *LoadProcess) Segments() int { return len(lp.segs) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
