package stats

import "math"

// Stationarity tests the paper's §5.2 points to (Bendat & Piersol): the
// run test and the reverse-arrangement test. The paper argues these are
// the wrong tool for its problem — trends and periodicities are handled by
// the linear predictors, and outliers/shifts exist even in stationary
// series — but they are the standard baseline, so the reproduction
// provides them and an experiment relating their verdicts to prediction
// accuracy.

// RunTest performs the runs-above-and-below-the-median test. It returns
// the z-score of the observed number of runs against the distribution
// expected for an exchangeable (stationary, independent) sequence;
// |z| > 1.96 rejects stationarity at the 5% level. Series shorter than 10
// samples return z = 0.
func RunTest(xs []float64) float64 {
	if len(xs) < 10 {
		return 0
	}
	med := Median(xs)
	// Classify each sample; drop exact ties with the median, as standard.
	var signs []bool
	for _, x := range xs {
		if x == med {
			continue
		}
		signs = append(signs, x > med)
	}
	n := len(signs)
	if n < 10 {
		return 0
	}
	var n1, n2 int
	runs := 1
	for i, s := range signs {
		if s {
			n1++
		} else {
			n2++
		}
		if i > 0 && signs[i] != signs[i-1] {
			runs++
		}
	}
	if n1 == 0 || n2 == 0 {
		return 0
	}
	f1, f2 := float64(n1), float64(n2)
	mean := 2*f1*f2/(f1+f2) + 1
	varr := 2 * f1 * f2 * (2*f1*f2 - f1 - f2) /
		((f1 + f2) * (f1 + f2) * (f1 + f2 - 1))
	if varr <= 0 {
		return 0
	}
	return (float64(runs) - mean) / math.Sqrt(varr)
}

// ReverseArrangements performs the reverse-arrangement test: A counts the
// pairs (i, j), i < j, with x_i > x_j. For a stationary independent
// sequence A is approximately normal with mean n(n-1)/4; the returned
// z-score is the standardized statistic. Large |z| indicates a trend
// (negative z for an increasing trend). Series shorter than 10 samples
// return 0.
func ReverseArrangements(xs []float64) float64 {
	n := len(xs)
	if n < 10 {
		return 0
	}
	var a int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if xs[i] > xs[j] {
				a++
			}
		}
	}
	fn := float64(n)
	mean := fn * (fn - 1) / 4
	varr := fn * (2*fn + 5) * (fn - 1) / 72
	return (float64(a) - mean) / math.Sqrt(varr)
}

// StationaryByRunTest reports whether the run test fails to reject
// stationarity at the 5% level.
func StationaryByRunTest(xs []float64) bool {
	return math.Abs(RunTest(xs)) <= 1.96
}

// TrendByReverseArrangements reports whether the reverse-arrangement test
// rejects "no trend" at the 5% level.
func TrendByReverseArrangements(xs []float64) bool {
	return math.Abs(ReverseArrangements(xs)) > 1.96
}
