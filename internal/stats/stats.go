// Package stats implements the evaluation statistics of the paper: the
// relative prediction error E (Eq. 4), the root mean square relative error
// RMSRE (Eq. 5), empirical CDFs and percentiles, Pearson correlation, the
// coefficient of variation (including the paper's stationary-segment
// weighted variant), and time-series down-sampling.
package stats

import (
	"math"
	"sort"
)

// RelativeError returns E = (pred - actual) / min(pred, actual), the
// paper's Eq. (4). The min denominator makes over- and under-estimation by
// the same factor w yield the same |E| = w-1.
//
// Degenerate inputs: if both are zero the error is 0; if exactly one is
// zero (or negative) the error is +Inf or -Inf by the sign of the
// numerator, matching the "wrong by an unbounded factor" reading.
func RelativeError(pred, actual float64) float64 {
	if pred == actual {
		return 0
	}
	m := math.Min(pred, actual)
	if m <= 0 {
		if pred > actual {
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	return (pred - actual) / m
}

// RMSRE returns sqrt(mean(E_i²)) over the errors (paper Eq. 5). Infinite
// errors are clamped to clampAbs before squaring when clampAbs > 0;
// otherwise an infinite error makes the result +Inf.
func RMSRE(errors []float64, clampAbs float64) float64 {
	if len(errors) == 0 {
		return 0
	}
	var sum float64
	for _, e := range errors {
		if clampAbs > 0 {
			if e > clampAbs {
				e = clampAbs
			} else if e < -clampAbs {
				e = -clampAbs
			}
		}
		sum += e * e
	}
	return math.Sqrt(sum / float64(len(errors)))
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (0 for fewer than 2 samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoV returns the coefficient of variation: stddev/mean (0 if the mean is
// not positive).
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m <= 0 {
		return 0
	}
	return StdDev(xs) / m
}

// SegmentedCoV returns the paper's §6.1.3 variant: the series is split at
// the given boundaries (indices of the first sample of each new stationary
// period, ascending), the CoV of each segment is computed, and the segment
// CoVs are averaged weighted by segment length. Outliers should already be
// removed by the caller.
func SegmentedCoV(xs []float64, boundaries []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	starts := append([]int{0}, boundaries...)
	sort.Ints(starts)
	var weighted float64
	var total int
	for i, s := range starts {
		e := len(xs)
		if i+1 < len(starts) {
			e = starts[i+1]
		}
		if s < 0 {
			s = 0
		}
		if e > len(xs) {
			e = len(xs)
		}
		if e <= s {
			continue
		}
		seg := xs[s:e]
		weighted += CoV(seg) * float64(len(seg))
		total += len(seg)
	}
	if total == 0 {
		return 0
	}
	return weighted / float64(total)
}

// Median returns the median (0 for an empty slice).
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	return sortedPercentile(tmp, p)
}

func sortedPercentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples (0 when undefined).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an ECDF from the samples. Infinite values are kept: +Inf
// sorts last and -Inf first, so fractions remain meaningful.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Upper bound: first index with value > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile for q in [0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return sortedPercentile(c.sorted, q*100)
}

// Points returns up to n evenly spaced (x, P(X≤x)) pairs for printing a
// CDF curve.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(n-1, 1)
		x := c.sorted[idx]
		pts = append(pts, [2]float64{x, float64(idx+1) / float64(len(c.sorted))})
	}
	return pts
}

// Downsample keeps every k-th element of xs starting at offset, modelling
// the paper's §6.1.6 re-sampling of 3-minute traces to 6/24/45-minute
// transfer intervals.
func Downsample(xs []float64, k, offset int) []float64 {
	if k <= 1 {
		return append([]float64(nil), xs...)
	}
	var out []float64
	for i := offset; i < len(xs); i += k {
		out = append(out, xs[i])
	}
	return out
}

// FractionAbove returns the fraction of samples with |x| > thresh.
func FractionAbove(xs []float64, thresh float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var n int
	for _, x := range xs {
		if math.Abs(x) > thresh {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
