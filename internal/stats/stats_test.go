package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRelativeErrorSymmetry(t *testing.T) {
	// Over/underestimation by the same factor w gives |E| = w-1 (Eq. 4).
	f := func(rRaw, wRaw uint16) bool {
		r := 1 + float64(rRaw)
		w := 1 + float64(wRaw%100)/10
		over := RelativeError(w*r, r)
		under := RelativeError(r/w, r)
		return math.Abs(over-(w-1)) < 1e-9 && math.Abs(under+(w-1)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelativeErrorSigns(t *testing.T) {
	if RelativeError(2, 1) <= 0 {
		t.Error("overestimation must be positive")
	}
	if RelativeError(1, 2) >= 0 {
		t.Error("underestimation must be negative")
	}
	if RelativeError(5, 5) != 0 {
		t.Error("exact prediction must be zero")
	}
}

func TestRelativeErrorDegenerate(t *testing.T) {
	if RelativeError(0, 0) != 0 {
		t.Error("0/0 should be 0")
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Error("pred>actual=0 should be +Inf")
	}
	if !math.IsInf(RelativeError(0, 1), -1) {
		t.Error("pred=0<actual should be -Inf")
	}
}

func TestRMSRE(t *testing.T) {
	// sqrt((1+4+9)/3) = sqrt(14/3)
	got := RMSRE([]float64{1, -2, 3}, 0)
	want := math.Sqrt(14.0 / 3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSRE = %v, want %v", got, want)
	}
	if RMSRE(nil, 0) != 0 {
		t.Error("empty RMSRE should be 0")
	}
}

func TestRMSREClamp(t *testing.T) {
	got := RMSRE([]float64{math.Inf(1)}, 10)
	if got != 10 {
		t.Errorf("clamped RMSRE = %v, want 10", got)
	}
	if !math.IsInf(RMSRE([]float64{math.Inf(1)}, 0), 1) {
		t.Error("unclamped RMSRE of Inf should be Inf")
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %v, want 5", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Errorf("Variance = %v, want 4", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Errorf("StdDev = %v, want 2", StdDev(xs))
	}
}

func TestCoV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := CoV(xs); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("CoV = %v, want 0.4", got)
	}
	if CoV([]float64{0, 0}) != 0 {
		t.Error("CoV of zero-mean series should be 0")
	}
	// A constant series has zero CoV.
	if CoV([]float64{3, 3, 3}) != 0 {
		t.Error("CoV of constant series should be 0")
	}
}

func TestSegmentedCoV(t *testing.T) {
	// Two perfectly constant levels: per-segment CoV is 0, even though the
	// pooled CoV is large — the paper's motivation for segmenting.
	series := []float64{1, 1, 1, 1, 10, 10, 10, 10}
	if got := SegmentedCoV(series, []int{4}); got != 0 {
		t.Errorf("segmented CoV = %v, want 0", got)
	}
	if CoV(series) < 0.5 {
		t.Error("pooled CoV should be large for the shifted series")
	}
	// No boundaries = plain CoV.
	if SegmentedCoV(series, nil) != CoV(series) {
		t.Error("SegmentedCoV without boundaries should equal CoV")
	}
}

func TestSegmentedCoVWeighting(t *testing.T) {
	// Segment 1 (noisy, length 2), segment 2 (constant, length 8):
	// weighted result = cov1·0.2.
	series := []float64{1, 3, 5, 5, 5, 5, 5, 5, 5, 5}
	cov1 := CoV([]float64{1, 3})
	want := cov1 * 2 / 10
	if got := SegmentedCoV(series, []int{2}); math.Abs(got-want) > 1e-12 {
		t.Errorf("weighted segmented CoV = %v, want %v", got, want)
	}
}

func TestMedianPercentile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Median(xs) != 2 {
		t.Errorf("Median = %v, want 2", Median(xs))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 3 {
		t.Error("extreme percentiles wrong")
	}
	if got := Percentile([]float64{1, 2, 3, 4}, 50); got != 2.5 {
		t.Errorf("even-length median = %v, want 2.5", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint8, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v, want -1", got)
	}
	if Pearson(xs, []float64{1, 1, 1, 1, 1}) != 0 {
		t.Error("correlation with constant should be 0")
	}
	if Pearson(xs, ys[:3]) != 0 {
		t.Error("mismatched lengths should yield 0")
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(a, b []int8) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n < 2 {
			return true
		}
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(a[i])
			ys[i] = float64(b[i])
		}
		r := Pearson(xs, ys)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := map[float64]float64{0.5: 0, 1: 0.25, 2.5: 0.5, 4: 1, 10: 1}
	for x, want := range cases {
		if got := c.At(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("CDF.At(%v) = %v, want %v", x, got, want)
		}
	}
	if c.N() != 4 {
		t.Errorf("N = %d, want 4", c.N())
	}
	if got := c.Quantile(0.5); got != 2.5 {
		t.Errorf("Quantile(0.5) = %v, want 2.5", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Error("CDF points not monotone")
		}
	}
	if pts[len(pts)-1][1] != 1 {
		t.Errorf("last point y = %v, want 1", pts[len(pts)-1][1])
	}
}

func TestDownsample(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := Downsample(xs, 3, 0)
	want := []float64{0, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("Downsample = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Downsample = %v, want %v", got, want)
		}
	}
	if got := Downsample(xs, 3, 1); got[0] != 1 || len(got) != 3 {
		t.Errorf("offset downsample = %v", got)
	}
	if got := Downsample(xs, 1, 0); len(got) != 10 {
		t.Errorf("k=1 should copy, got %d", len(got))
	}
}

func TestFractionAbove(t *testing.T) {
	xs := []float64{-5, -1, 0, 1, 5}
	if got := FractionAbove(xs, 1); got != 0.4 {
		t.Errorf("FractionAbove(1) = %v, want 0.4 (|−5| and |5|)", got)
	}
	if FractionAbove(nil, 1) != 0 {
		t.Error("empty FractionAbove should be 0")
	}
}
