package stats

import (
	"math"
	"math/rand"
	"testing"
)

func noise(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()
	}
	return xs
}

func TestRunTestStationaryNoise(t *testing.T) {
	rejections := 0
	for seed := int64(0); seed < 40; seed++ {
		if !StationaryByRunTest(noise(100, seed)) {
			rejections++
		}
	}
	// 5%-level test: expect ~2 rejections in 40; allow up to 6.
	if rejections > 6 {
		t.Errorf("run test rejected %d/40 stationary series", rejections)
	}
}

func TestRunTestDetectsLevelShift(t *testing.T) {
	xs := append(noise(50, 1), noise(50, 2)...)
	for i := 50; i < 100; i++ {
		xs[i] += 8 // strong shift
	}
	z := RunTest(xs)
	if math.Abs(z) <= 1.96 {
		t.Errorf("run test z = %v on a shifted series, want |z| > 1.96", z)
	}
	// A shift concentrates same-side runs → far fewer runs → negative z.
	if z >= 0 {
		t.Errorf("z = %v, want negative (too few runs)", z)
	}
}

func TestRunTestShortSeries(t *testing.T) {
	if RunTest([]float64{1, 2, 3}) != 0 {
		t.Error("short series should return 0")
	}
	if RunTest(nil) != 0 {
		t.Error("nil series should return 0")
	}
}

func TestRunTestConstantSeries(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 5
	}
	if RunTest(xs) != 0 {
		t.Error("constant series (all ties) should return 0")
	}
}

func TestReverseArrangementsNoTrend(t *testing.T) {
	rejections := 0
	for seed := int64(0); seed < 40; seed++ {
		if TrendByReverseArrangements(noise(80, seed)) {
			rejections++
		}
	}
	if rejections > 6 {
		t.Errorf("reverse-arrangement flagged %d/40 trendless series", rejections)
	}
}

func TestReverseArrangementsDetectsTrend(t *testing.T) {
	xs := noise(80, 3)
	for i := range xs {
		xs[i] += 0.1 * float64(i)
	}
	z := ReverseArrangements(xs)
	if math.Abs(z) <= 1.96 {
		t.Errorf("z = %v on a trending series", z)
	}
	// Increasing trend → few reverse arrangements → A below mean → z < 0.
	if z >= 0 {
		t.Errorf("z = %v, want negative for increasing trend", z)
	}
	// Decreasing trend flips the sign.
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
	if z2 := ReverseArrangements(xs); z2 <= 0 {
		t.Errorf("z = %v for decreasing trend, want positive", z2)
	}
}

func TestReverseArrangementsShortSeries(t *testing.T) {
	if ReverseArrangements([]float64{3, 2, 1}) != 0 {
		t.Error("short series should return 0")
	}
}

func TestReverseArrangementsIgnoresLevelShiftDirectionless(t *testing.T) {
	// A shift up then back down has no net trend; the statistic should be
	// mild compared to a monotone trend of the same magnitude.
	xs := noise(90, 7)
	for i := 30; i < 60; i++ {
		xs[i] += 6
	}
	shiftZ := math.Abs(ReverseArrangements(xs))
	trend := noise(90, 7)
	for i := range trend {
		trend[i] += 0.15 * float64(i)
	}
	trendZ := math.Abs(ReverseArrangements(trend))
	if shiftZ >= trendZ {
		t.Errorf("bump |z|=%v should be below trend |z|=%v", shiftZ, trendZ)
	}
}
