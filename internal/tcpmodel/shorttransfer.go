package tcpmodel

import "math"

// This file models short-transfer latency in the spirit of Cardwell,
// Savage & Anderson ("Modeling TCP latency", INFOCOM 2000), which the
// paper points to for transfers too short to neglect slow start (§4.2.7,
// and Arlitt et al.'s FB predictor for short flows).
//
// The model composes the expected transfer time of d segments from
//
//  1. an initial slow-start phase delivering E[d_ss] segments (paper's
//     §4.2.7 formula) with the window growing by factor γ = 1 + 1/b per
//     round trip from an initial window w0, capped at Wmax,
//  2. a steady-state phase delivering the remainder at the PFTK rate,
//  3. the connection-establishment round trip.

// ShortTransferParams extends Params with slow-start specifics.
type ShortTransferParams struct {
	Params
	InitialWindow float64 // w0 in segments (default 2)
	// Handshake adds one RTT for connection setup when true.
	Handshake bool
}

// slowStartRounds returns the number of round trips slow start needs to
// deliver dss segments starting from w0 with growth factor gamma, and the
// window reached. Standard geometric-series inversion from Cardwell et al.
func slowStartRounds(dss, w0, gamma, wmax float64) (rounds, wFinal float64) {
	if dss <= 0 {
		return 0, w0
	}
	if gamma <= 1 {
		// Degenerate: linear growth; treat as one segment per round.
		return dss / w0, w0
	}
	// Segments delivered in r rounds: w0·(γ^r − 1)/(γ − 1).
	// Solve for r, capping the window at wmax.
	if wmax > w0 {
		// Rounds until the cap is reached.
		rCap := math.Log(wmax/w0) / math.Log(gamma)
		dAtCap := w0 * (math.Pow(gamma, rCap) - 1) / (gamma - 1)
		if dss <= dAtCap {
			r := math.Log(dss*(gamma-1)/w0+1) / math.Log(gamma)
			return r, w0 * math.Pow(gamma, r)
		}
		// Remaining segments stream at the capped window, one window per
		// round.
		rem := dss - dAtCap
		return rCap + rem/wmax, wmax
	}
	return dss / wmax, wmax
}

// ShortTransferTime returns the expected time (seconds) to transfer d
// segments, including the initial slow start. It degrades to d·M/PFTK
// for large d.
func ShortTransferTime(p ShortTransferParams, d int64) float64 {
	if d <= 0 {
		return 0
	}
	w0 := p.InitialWindow
	if w0 <= 0 {
		w0 = 2
	}
	gamma := 1 + 1/p.b()
	wmax := p.Wmax
	if wmax <= 0 {
		wmax = math.Inf(1)
	}

	t := 0.0
	if p.Handshake {
		t += p.RTT
	}

	dss := SlowStartSegments(p.Loss, d)
	if dss > float64(d) {
		dss = float64(d)
	}
	rounds, _ := slowStartRounds(dss, w0, gamma, wmax)
	t += rounds * p.RTT

	rest := float64(d) - dss
	if rest > 0 {
		rate := PFTK(p.Params) // bytes/s
		if math.IsInf(rate, 1) {
			// Lossless and uncapped: stream at one window per RTT.
			w := wmax
			if math.IsInf(w, 1) {
				w = float64(d) // effectively instantaneous after slow start
			}
			t += rest / w * p.RTT
		} else {
			t += rest * float64(p.MSS) / rate
		}
	}
	return t
}

// ShortTransferThroughput returns the expected average throughput in
// bytes/s of a d-segment transfer.
func ShortTransferThroughput(p ShortTransferParams, d int64) float64 {
	t := ShortTransferTime(p, d)
	if t <= 0 {
		return 0
	}
	return float64(d) * float64(p.MSS) / t
}
