package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func params(p, rtt float64) Params {
	return Params{MSS: 1460, RTT: rtt, Loss: p, B: 2, RTO: 1.0}
}

func TestMathisKnownValue(t *testing.T) {
	// M/(T·sqrt(2bp/3)) with M=1460, T=0.1, b=2, p=0.01:
	// sqrt(2·2·0.01/3)=sqrt(0.013333)=0.11547 → 1460/(0.0115470) ≈ 126440 B/s
	got := Mathis(params(0.01, 0.1))
	want := 1460 / (0.1 * math.Sqrt(2*2*0.01/3))
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("Mathis = %v, want %v", got, want)
	}
}

func TestMathisZeroLossInfinite(t *testing.T) {
	if !math.IsInf(Mathis(params(0, 0.1)), 1) {
		t.Error("Mathis with p=0 should be +Inf")
	}
}

func TestPFTKReducesToWindowTerm(t *testing.T) {
	p := params(0, 0.1)
	p.Wmax = 100
	got := PFTK(p)
	want := 100 * 1460 / 0.1
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("PFTK lossless = %v, want W/T = %v", got, want)
	}
}

func TestPFTKBelowMathis(t *testing.T) {
	// The timeout term only adds to the denominator, so PFTK ≤ Mathis.
	f := func(pRaw, tRaw uint16) bool {
		p := 0.001 + float64(pRaw%1000)/2000 // (0.001, 0.5)
		rtt := 0.01 + float64(tRaw%500)/1000 // (0.01, 0.51)
		return PFTK(params(p, rtt)) <= Mathis(params(p, rtt))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPFTKMonotoneInLoss(t *testing.T) {
	prev := math.Inf(1)
	for _, p := range []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3} {
		v := PFTK(params(p, 0.1))
		if v >= prev {
			t.Errorf("PFTK not decreasing at p=%v: %v >= %v", p, v, prev)
		}
		prev = v
	}
}

func TestPFTKMonotoneInRTT(t *testing.T) {
	prev := math.Inf(1)
	for _, rtt := range []float64{0.01, 0.05, 0.1, 0.2, 0.5} {
		v := PFTK(params(0.01, rtt))
		if v >= prev {
			t.Errorf("PFTK not decreasing at RTT=%v", rtt)
		}
		prev = v
	}
}

func TestPFTKWindowCapApplies(t *testing.T) {
	p := params(0.0001, 0.05)
	p.Wmax = 10 // tiny window
	got := PFTK(p)
	want := 10 * 1460 / 0.05
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("PFTK with tiny window = %v, want %v", got, want)
	}
}

func TestPFTKPaperVariantClose(t *testing.T) {
	// The paper's typesetting differs only in the timeout coefficient;
	// for small p the two variants agree within ~20%.
	for _, p := range []float64{0.001, 0.005, 0.01} {
		a := PFTK(params(p, 0.1))
		b := PFTKPaper(params(p, 0.1))
		if b < a {
			t.Errorf("paper variant (smaller timeout term) should predict more: %v < %v", b, a)
		}
		if b > a*1.6 {
			t.Errorf("variants too far apart at p=%v: %v vs %v", p, a, b)
		}
	}
}

func TestRevisedPFTKFiniteAndComparable(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.05, 0.2} {
		orig := PFTK(params(p, 0.1))
		rev := RevisedPFTK(params(p, 0.1))
		if math.IsNaN(rev) || rev <= 0 {
			t.Fatalf("revised PFTK invalid at p=%v: %v", p, rev)
		}
		ratio := rev / orig
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("revised/original ratio %v at p=%v, want same order of magnitude", ratio, p)
		}
	}
}

func TestRevisedPFTKLossless(t *testing.T) {
	p := params(0, 0.1)
	p.Wmax = 50
	if got, want := RevisedPFTK(p), 50*1460/0.1; math.Abs(got-want) > 1e-6 {
		t.Errorf("revised PFTK lossless = %v, want %v", got, want)
	}
}

func TestModelsDegenerateInputs(t *testing.T) {
	for _, fn := range []func(Params) float64{Mathis, PFTK, PFTKPaper, RevisedPFTK} {
		v := fn(Params{MSS: 1460, RTT: 0, Loss: 0.01, B: 2, RTO: 1})
		if math.IsNaN(v) {
			t.Error("model returned NaN for zero RTT")
		}
	}
}

func TestBDefaulting(t *testing.T) {
	// B=0 must behave as b=2.
	a := PFTK(Params{MSS: 1460, RTT: 0.1, Loss: 0.01, B: 0, RTO: 1})
	b := PFTK(Params{MSS: 1460, RTT: 0.1, Loss: 0.01, B: 2, RTO: 1})
	if a != b {
		t.Errorf("B=0 (%v) should default to b=2 (%v)", a, b)
	}
	c := PFTK(Params{MSS: 1460, RTT: 0.1, Loss: 0.01, B: 1, RTO: 1})
	if c <= b {
		t.Error("b=1 should predict more than b=2")
	}
}

func TestSlowStartSegments(t *testing.T) {
	// p=0: whole transfer in slow start.
	if got := SlowStartSegments(0, 100); got != 100 {
		t.Errorf("SlowStartSegments(0,100) = %v, want 100", got)
	}
	// Large d, p>0: approaches (1-p)/p + 1.
	got := SlowStartSegments(0.01, 1<<30)
	want := (1-0.01)/0.01 + 1
	if math.Abs(got-want) > 0.01 {
		t.Errorf("asymptotic slow-start segments %v, want %v", got, want)
	}
	if SlowStartSegments(0.01, 0) != 0 {
		t.Error("zero-length transfer should have zero slow-start segments")
	}
}

func TestSlowStartNegligible(t *testing.T) {
	// 100-segment transfer at p=0.01: E[dss]≈63 → not negligible.
	if SlowStartNegligible(0.01, 100, 0.05) {
		t.Error("slow start should dominate a 100-segment transfer at p=0.01")
	}
	// 1e6-segment transfer: E[dss]≈100 → below 5%.
	if !SlowStartNegligible(0.01, 1e6, 0.05) {
		t.Error("slow start should be negligible for a 1M-segment transfer")
	}
}

func TestSlowStartMonotoneInLength(t *testing.T) {
	f := func(dRaw uint16) bool {
		d := int64(dRaw) + 1
		return SlowStartSegments(0.01, d) <= SlowStartSegments(0.01, d+1)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
