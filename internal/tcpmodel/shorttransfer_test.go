package tcpmodel

import (
	"math"
	"testing"
)

func shortParams(p, rtt float64) ShortTransferParams {
	return ShortTransferParams{
		Params: Params{MSS: 1460, RTT: rtt, Loss: p, B: 2, RTO: 1, Wmax: 718},
	}
}

func TestShortTransferTimeZero(t *testing.T) {
	if ShortTransferTime(shortParams(0.01, 0.1), 0) != 0 {
		t.Error("zero-segment transfer should take zero time")
	}
}

func TestShortTransferLosslessSmall(t *testing.T) {
	// 14 segments lossless from w0=2 with γ=1.5:
	// cumulative segments per round: 2, 5, 9.5, 16.25 → under 4 rounds.
	p := shortParams(0, 0.1)
	tt := ShortTransferTime(p, 14)
	if tt < 0.3 || tt > 0.5 {
		t.Errorf("14 segments lossless took %v, want ≈4 RTTs (0.4 s)", tt)
	}
}

func TestShortTransferMonotoneInSize(t *testing.T) {
	p := shortParams(0.01, 0.08)
	prev := 0.0
	for _, d := range []int64{1, 10, 100, 1000, 10000} {
		tt := ShortTransferTime(p, d)
		if tt <= prev {
			t.Errorf("transfer time not increasing at d=%d: %v <= %v", d, tt, prev)
		}
		prev = tt
	}
}

func TestShortTransferConvergesToPFTK(t *testing.T) {
	// For very large transfers the average throughput approaches the PFTK
	// steady-state rate.
	p := shortParams(0.01, 0.08)
	big := ShortTransferThroughput(p, 1e6)
	pftk := PFTK(p.Params)
	if math.Abs(big-pftk)/pftk > 0.05 {
		t.Errorf("large-transfer throughput %v, PFTK %v: should converge", big, pftk)
	}
}

func TestShortTransferSlowerThanBulkForSmallD(t *testing.T) {
	// Small transfers never reach the steady-state rate, so their average
	// throughput must be below PFTK.
	p := shortParams(0.005, 0.08)
	small := ShortTransferThroughput(p, 20)
	pftk := PFTK(p.Params)
	if small >= pftk {
		t.Errorf("20-segment throughput %v not below PFTK %v", small, pftk)
	}
}

func TestShortTransferHandshakeAddsRTT(t *testing.T) {
	p := shortParams(0.01, 0.1)
	without := ShortTransferTime(p, 50)
	p.Handshake = true
	with := ShortTransferTime(p, 50)
	if math.Abs(with-without-0.1) > 1e-9 {
		t.Errorf("handshake added %v, want exactly one RTT", with-without)
	}
}

func TestShortTransferWindowCapSlowsSlowStart(t *testing.T) {
	uncapped := shortParams(0, 0.1)
	uncapped.Wmax = 1e9
	capped := shortParams(0, 0.1)
	capped.Wmax = 8
	d := int64(200)
	tu := ShortTransferTime(uncapped, d)
	tc := ShortTransferTime(capped, d)
	if tc <= tu {
		t.Errorf("capped window (%v) should be slower than uncapped (%v)", tc, tu)
	}
}

func TestSlowStartRounds(t *testing.T) {
	// From w0=2 with γ=2 (b=1): rounds deliver 2, 6, 14, 30...
	r, w := slowStartRounds(14, 2, 2, 1e9)
	if r < 2.8 || r > 3.2 {
		t.Errorf("rounds for 14 segments = %v, want ≈3", r)
	}
	if w < 14 || w > 18 {
		t.Errorf("final window %v, want ≈16", w)
	}
	// Cap: window stops growing at wmax.
	rCapped, wCapped := slowStartRounds(1000, 2, 2, 8)
	if wCapped != 8 {
		t.Errorf("capped final window %v, want 8", wCapped)
	}
	if rCapped <= r {
		t.Error("capped slow start should need more rounds")
	}
}

func TestShortTransferThroughputPositive(t *testing.T) {
	for _, loss := range []float64{0, 0.001, 0.01, 0.1} {
		for _, d := range []int64{1, 10, 1000} {
			v := ShortTransferThroughput(shortParams(loss, 0.05), d)
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("throughput(p=%v, d=%d) = %v", loss, d, v)
			}
		}
	}
}
