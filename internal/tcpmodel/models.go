// Package tcpmodel implements the analytic TCP throughput models the paper
// builds its Formula-Based predictors on:
//
//   - the Mathis/Semke/Mahdavi "square-root" formula (paper Eq. 1),
//   - the PFTK model of Padhye/Firoiu/Towsley/Kurose (paper Eq. 2),
//   - the revised PFTK model of Chen/Bu/Ammar/Towsley (paper §4.2.9),
//   - Cardwell et al.'s expected slow-start transfer size (paper §4.2.7).
//
// All models return expected throughput in bytes per second given loss
// rate, RTT in seconds, and segment size in bytes. Callers converting to
// bits multiply by 8.
package tcpmodel

import "math"

// Params collects the inputs common to the formulas.
type Params struct {
	MSS  int     // segment size M, bytes
	RTT  float64 // round-trip time T, seconds
	Loss float64 // loss (event) rate p, in [0, 1]
	B    int     // segments acknowledged per ACK (2 with delayed ACKs)
	RTO  float64 // retransmission timeout T0, seconds (PFTK only)
	Wmax float64 // maximum window, segments (0 = unlimited)
}

func (p Params) b() float64 {
	if p.B <= 0 {
		return 2
	}
	return float64(p.B)
}

// Mathis returns the square-root model's expected throughput in bytes/s
// (paper Eq. 1):
//
//	E[R] = M / (T * sqrt(2bp/3))
//
// It is undefined for p = 0; Mathis returns +Inf in that case so callers
// can apply their own window cap.
func Mathis(p Params) float64 {
	if p.RTT <= 0 {
		return math.Inf(1)
	}
	if p.Loss <= 0 {
		return math.Inf(1)
	}
	return float64(p.MSS) / (p.RTT * math.Sqrt(2*p.b()*p.Loss/3))
}

// PFTK returns the full PFTK model's expected throughput in bytes/s (paper
// Eq. 2):
//
//	E[R] = min( M / (T*sqrt(2bp/3) + T0*min(1, 3*sqrt(3bp/8))*p*(1+32p²)),  W/T )
//
// For p = 0 the congestion term vanishes and the window term W/T applies
// (or +Inf when no window cap is given).
func PFTK(p Params) float64 {
	windowTerm := math.Inf(1)
	if p.Wmax > 0 && p.RTT > 0 {
		windowTerm = p.Wmax * float64(p.MSS) / p.RTT
	}
	if p.Loss <= 0 || p.RTT <= 0 {
		return windowTerm
	}
	b := p.b()
	denom := p.RTT*math.Sqrt(2*b*p.Loss/3) +
		p.RTO*math.Min(1, 3*math.Sqrt(3*b*p.Loss/8))*p.Loss*(1+32*p.Loss*p.Loss)
	if denom <= 0 {
		return windowTerm
	}
	return math.Min(float64(p.MSS)/denom, windowTerm)
}

// PFTKPaper is PFTK exactly as printed in the paper's Eq. (2), where the
// timeout term uses min(1, sqrt(3bp/8)) without the factor of 3 that the
// original PFTK paper carries. The difference is small for small p; both
// variants are provided so the reproduction can quantify it.
func PFTKPaper(p Params) float64 {
	windowTerm := math.Inf(1)
	if p.Wmax > 0 && p.RTT > 0 {
		windowTerm = p.Wmax * float64(p.MSS) / p.RTT
	}
	if p.Loss <= 0 || p.RTT <= 0 {
		return windowTerm
	}
	b := p.b()
	denom := p.RTT*math.Sqrt(2*b*p.Loss/3) +
		p.RTO*math.Min(1, math.Sqrt(3*b*p.Loss/8))*p.Loss*(1+32*p.Loss*p.Loss)
	if denom <= 0 {
		return windowTerm
	}
	return math.Min(float64(p.MSS)/denom, windowTerm)
}

// RevisedPFTK implements the corrected PFTK model of Chen, Bu, Ammar &
// Towsley ("Comments on modeling TCP Reno performance", ToN 2005). The
// correction replaces the congestion-avoidance window evolution with
//
//	E[W] = 2+b/(3b) + sqrt( 8(1-p)/(3bp) + ((2+b)/(3b))² )
//
// and rederives the send rate accordingly:
//
//	E[R] = M * ( (1-p)/p + E[W]/2 + Q(E[W]) ) /
//	       ( T*(b/2*E[W] + 1) + Q(E[W])*T0*f(p)/(1-p) )
//
// where Q(w) = min(1, 3/w) is the probability a loss window ends in
// timeout and f(p) = 1+p+2p²+4p³+8p⁴+16p⁵+32p⁶.
func RevisedPFTK(p Params) float64 {
	windowTerm := math.Inf(1)
	if p.Wmax > 0 && p.RTT > 0 {
		windowTerm = p.Wmax * float64(p.MSS) / p.RTT
	}
	if p.Loss <= 0 || p.RTT <= 0 {
		return windowTerm
	}
	b := p.b()
	pl := p.Loss
	c := (2 + b) / (3 * b)
	ew := c + math.Sqrt(8*(1-pl)/(3*b*pl)+c*c)
	q := math.Min(1, 3/ew)
	fp := 1 + pl + 2*pl*pl + 4*math.Pow(pl, 3) + 8*math.Pow(pl, 4) + 16*math.Pow(pl, 5) + 32*math.Pow(pl, 6)
	num := (1-pl)/pl + ew/2 + q
	den := p.RTT*(b/2*ew+1) + q*p.RTO*fp/(1-pl)
	if den <= 0 {
		return windowTerm
	}
	rate := float64(p.MSS) * num / den
	return math.Min(rate, windowTerm)
}

// SlowStartSegments returns Cardwell et al.'s expected number of segments
// transferred during the initial slow start, for loss rate p and a total
// transfer of d segments (paper §4.2.7):
//
//	E[d_ss] = (1-(1-p)^d)(1-p)/p + 1
//
// For p = 0 it returns d (the whole transfer can ride slow start).
func SlowStartSegments(p float64, d int64) float64 {
	if d <= 0 {
		return 0
	}
	if p <= 0 {
		return float64(d)
	}
	return (1-math.Pow(1-p, float64(d)))*(1-p)/p + 1
}

// SlowStartNegligible reports whether a transfer of d segments is long
// enough that the initial slow start contributes less than frac of the
// segments (e.g. frac = 0.05 for "under 5%").
func SlowStartNegligible(p float64, d int64, frac float64) bool {
	if d <= 0 {
		return false
	}
	return SlowStartSegments(p, d)/float64(d) < frac
}
