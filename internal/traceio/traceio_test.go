package traceio_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/testbed"
	"repro/internal/traceio"
)

func sampleDataset() *testbed.Dataset {
	return &testbed.Dataset{
		Label: "test",
		Traces: []testbed.Trace{
			{
				Path: "p0", Class: "us", Index: 0,
				Records: []testbed.EpochRecord{
					{
						Path: "p0", Class: "us", Epoch: 0,
						AvailBw: 5e6, PreRTT: 0.05, PreLoss: 0.01,
						Throughput: 3e6, FlowRTT: 0.06, FlowLoss: 0.02,
						SmallThroughput: 1e6, SmallWindowBytes: 20480,
						Checkpoints: []float64{1e6, 2e6},
					},
					{Path: "p0", Class: "us", Epoch: 1, Throughput: 4e6},
				},
			},
			{Path: "p1", Class: "dsl", Index: 0, Records: []testbed.EpochRecord{
				{Path: "p1", Class: "dsl", Throughput: 1e6},
			}},
		},
	}
}

func TestSaveLoadRoundTripJSON(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "ds.json")
	ds := sampleDataset()
	if err := traceio.Save(file, ds); err != nil {
		t.Fatal(err)
	}
	got, err := traceio.Load(file)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, got) {
		t.Error("round trip mismatch")
	}
}

func TestSaveLoadRoundTripGzip(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "ds.json.gz")
	ds := sampleDataset()
	if err := traceio.Save(file, ds); err != nil {
		t.Fatal(err)
	}
	got, err := traceio.Load(file)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, got) {
		t.Error("gzip round trip mismatch")
	}
}

func TestSaveCreatesParentDirs(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "a", "b", "ds.json")
	if err := traceio.Save(file, sampleDataset()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(file); err != nil {
		t.Error(err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := traceio.Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	file := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(file, []byte("{not json"), 0o644)
	if _, err := traceio.Load(file); err == nil {
		t.Error("loading corrupt JSON should fail")
	}
	gz := filepath.Join(t.TempDir(), "bad.json.gz")
	os.WriteFile(gz, []byte("not gzip"), 0o644)
	if _, err := traceio.Load(gz); err == nil {
		t.Error("loading corrupt gzip should fail")
	}
}

func TestLoadOrCollectUsesExisting(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "ds.json")
	ds := sampleDataset()
	if err := traceio.Save(file, ds); err != nil {
		t.Fatal(err)
	}
	// Config would produce something different; existing file must win.
	got, err := traceio.LoadOrCollect(file, testbed.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, got) {
		t.Error("LoadOrCollect did not load the existing dataset")
	}
}

// TestLoadOrCollectContextCancelledDoesNotSave checks that a cancelled
// collection never persists its partial dataset: the next run must
// re-collect, not load a truncated file.
func TestLoadOrCollectContextCancelledDoesNotSave(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "ds.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: collection aborts immediately

	cfg := testbed.RunConfig{
		Seed:           1,
		Catalog:        testbed.CatalogConfig{NumPaths: 2, MinCapBps: 3e6, MaxCapBps: 10e6},
		TracesPerPath:  1,
		EpochsPerTrace: 2,
		PingDuration:   5,
		TransferSec:    5,
		EpochGap:       2,
	}
	ds, err := traceio.LoadOrCollectContext(ctx, file, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ds == nil {
		t.Fatal("no (possibly empty) partial dataset returned")
	}
	if _, statErr := os.Stat(file); !os.IsNotExist(statErr) {
		t.Error("cancelled collection saved a partial dataset")
	}
}

func TestDatasetAccessors(t *testing.T) {
	ds := sampleDataset()
	names := ds.PathNames()
	if len(names) != 2 || names[0] != "p0" || names[1] != "p1" {
		t.Errorf("PathNames = %v", names)
	}
	if got := len(ds.TracesForPath("p0")); got != 1 {
		t.Errorf("TracesForPath(p0) = %d traces", got)
	}
	if ds.Epochs() != 3 {
		t.Errorf("Epochs = %d, want 3", ds.Epochs())
	}
	if got := len(ds.AllRecords()); got != 3 {
		t.Errorf("AllRecords = %d", got)
	}
	tr := ds.Traces[0]
	if th := tr.Throughputs(); len(th) != 2 || th[0] != 3e6 {
		t.Errorf("Throughputs = %v", th)
	}
	if th := tr.SmallThroughputs(); th[0] != 1e6 {
		t.Errorf("SmallThroughputs = %v", th)
	}
	if !tr.Records[0].Lossy() || tr.Records[1].Lossy() {
		t.Error("Lossy() classification wrong")
	}
}
