package traceio_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/testbed"
	"repro/internal/traceio"
)

// TestStreamRoundTrip proves Writer → Load and Writer → Reader reproduce
// the dataset exactly, compressed and not, and that Load cannot tell the
// streaming form from the legacy one.
func TestStreamRoundTrip(t *testing.T) {
	for _, name := range []string{"ds.json", "ds.json.gz"} {
		t.Run(name, func(t *testing.T) {
			file := filepath.Join(t.TempDir(), name)
			ds := sampleDataset()
			w, err := traceio.NewWriter(file, ds.Label)
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range ds.Traces {
				if err := w.WriteTrace(tr); err != nil {
					t.Fatal(err)
				}
			}
			if traces, epochs := w.Counts(); traces != 2 || epochs != 3 {
				t.Fatalf("counts = %d traces/%d epochs, want 2/3", traces, epochs)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			got, err := traceio.Load(file)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ds, got) {
				t.Error("Load round trip mismatch")
			}

			r, err := traceio.NewReader(file)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if r.Label() != ds.Label {
				t.Errorf("label %q, want %q", r.Label(), ds.Label)
			}
			var traces []testbed.Trace
			for {
				tr, err := r.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				traces = append(traces, tr)
			}
			if !reflect.DeepEqual(ds.Traces, traces) {
				t.Error("Reader round trip mismatch")
			}
			if trl, ok := r.Trailer(); !ok || trl.Traces != 2 || trl.Epochs != 3 || trl.Partial {
				t.Errorf("trailer = %+v ok=%v, want 2 traces/3 epochs complete", trl, ok)
			}
		})
	}
}

// TestSaveStreamEquivalent proves SaveStream and Save produce
// Load-identical datasets.
func TestSaveStreamEquivalent(t *testing.T) {
	dir := t.TempDir()
	ds := sampleDataset()
	legacy := filepath.Join(dir, "legacy.json")
	stream := filepath.Join(dir, "stream.json")
	if err := traceio.Save(legacy, ds); err != nil {
		t.Fatal(err)
	}
	if err := traceio.SaveStream(stream, ds); err != nil {
		t.Fatal(err)
	}
	a, err := traceio.Load(legacy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := traceio.Load(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("legacy and stream forms load differently")
	}
}

// TestStreamPartial: ClosePartial yields a readable file that Load and
// Reader both flag with ErrPartial — and LoadOrCollect must re-collect
// rather than reuse it.
func TestStreamPartial(t *testing.T) {
	file := filepath.Join(t.TempDir(), "partial.json")
	ds := sampleDataset()
	w, err := traceio.NewWriter(file, ds.Label)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTrace(ds.Traces[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.ClosePartial(); err != nil {
		t.Fatal(err)
	}

	got, err := traceio.Load(file)
	if !errors.Is(err, traceio.ErrPartial) {
		t.Fatalf("Load err = %v, want ErrPartial", err)
	}
	if len(got.Traces) != 1 || !reflect.DeepEqual(got.Traces[0], ds.Traces[0]) {
		t.Error("partial load should still return the decoded prefix")
	}

	r, err := traceio.NewReader(file)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, traceio.ErrPartial) {
		t.Fatalf("Next err = %v, want ErrPartial", err)
	}
	if trl, ok := r.Trailer(); !ok || !trl.Partial {
		t.Errorf("trailer = %+v ok=%v, want partial", trl, ok)
	}

	// A partial file must not satisfy LoadOrCollect's reuse check.
	cfg := testbed.RunConfig{
		Seed:           7,
		Catalog:        testbed.CatalogConfig{NumPaths: 1, MinCapBps: 3e6, MaxCapBps: 10e6},
		TracesPerPath:  1,
		EpochsPerTrace: 1,
		PingDuration:   5,
		TransferSec:    5,
		EpochGap:       2,
	}
	re, err := traceio.LoadOrCollect(file, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.Label != "seed7" {
		t.Errorf("label %q: partial file was reused instead of re-collected", re.Label)
	}
	if got, err := traceio.Load(file); err != nil || got.Label != "seed7" {
		t.Errorf("re-collected dataset not saved over the partial one (label %v, err %v)", got, err)
	}
}

// TestStreamTruncated: a stream cut before its trailer is reported as
// ErrTruncated, and one whose trailer counts disagree is rejected too.
func TestStreamTruncated(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "full.json")
	if err := traceio.SaveStream(file, sampleDataset()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")

	torn := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(torn, []byte(strings.Join(lines[:len(lines)-2], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := traceio.Load(torn); !errors.Is(err, traceio.ErrTruncated) {
		t.Errorf("torn Load err = %v, want ErrTruncated", err)
	}

	// Drop one epoch line but keep the trailer: counts disagree.
	short := filepath.Join(dir, "short.json")
	var kept []string
	dropped := false
	for _, ln := range lines {
		if !dropped && strings.HasPrefix(ln, `{"epoch":`) {
			dropped = true
			continue
		}
		kept = append(kept, ln)
	}
	if !dropped {
		t.Fatal("no epoch line found to drop")
	}
	if err := os.WriteFile(short, []byte(strings.Join(kept, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = traceio.Load(short)
	if err == nil || !strings.Contains(err.Error(), "count mismatch") {
		t.Errorf("short Load err = %v, want count mismatch", err)
	}
}

// TestSaveAtomicUnderFault is the regression test for the old Save,
// which closed and truncated in place: with a fault injected at the
// write seam, both Save and Writer.Close must fail without disturbing
// the previously saved dataset, and must leave no temp litter behind.
func TestSaveAtomicUnderFault(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "ds.json")
	ds := sampleDataset()
	if err := traceio.Save(file, ds); err != nil {
		t.Fatal(err)
	}

	traceio.SetFaults(faultinject.New(1, faultinject.Rule{Site: traceio.SiteWrite, Every: 1}))
	defer traceio.SetFaults(nil)

	mutated := sampleDataset()
	mutated.Label = "must-not-land"
	if err := traceio.Save(file, mutated); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Save under fault err = %v, want ErrInjected", err)
	}

	w, err := traceio.NewWriter(file, mutated.Label)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTrace(mutated.Traces[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Writer.Close under fault err = %v, want ErrInjected", err)
	}

	got, err := traceio.Load(file)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, got) {
		t.Error("failed write clobbered the previous dataset")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "ds.json" {
			t.Errorf("leftover file %q after failed writes", e.Name())
		}
	}
}

// TestWriterAbort discards the temp file and leaves the target alone.
func TestWriterAbort(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "ds.json")
	if err := traceio.Save(file, sampleDataset()); err != nil {
		t.Fatal(err)
	}
	w, err := traceio.NewWriter(file, "abandoned")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTrace(sampleDataset().Traces[0]); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if err := w.Close(); err == nil {
		t.Error("Close after Abort should error")
	}
	got, err := traceio.Load(file)
	if err != nil || got.Label != "test" {
		t.Errorf("Abort disturbed the target (label %q, err %v)", got.Label, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("Abort left temp litter: %v", entries)
	}
}

// TestReaderRejectsLegacy: NewReader is stream-only; pointing it at a
// legacy file is a clear error, not a silent empty read.
func TestReaderRejectsLegacy(t *testing.T) {
	file := filepath.Join(t.TempDir(), "legacy.json")
	if err := traceio.Save(file, sampleDataset()); err != nil {
		t.Fatal(err)
	}
	if _, err := traceio.NewReader(file); err == nil {
		t.Error("NewReader accepted a legacy whole-JSON file")
	}
}
