package traceio_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/campaign"
	"repro/internal/testbed"
	"repro/internal/traceio"
)

// heapCap is the pinned ceiling for the streaming campaign: the whole
// 10k-trace dataset is several times larger than this, so staying under
// it proves the pipeline holds only in-flight traces.
const heapCap = 64 << 20

func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// fabricateTrace builds a synthetic trace with the full per-epoch record
// shape — cheap enough to make 10k of them, big enough that retaining
// them all would blow the heap cap.
func fabricateTrace(job campaign.Job, epochs int) testbed.Trace {
	tr := testbed.Trace{Path: job.Path, Class: "synthetic", Index: job.Trace}
	tr.Records = make([]testbed.EpochRecord, epochs)
	for e := range tr.Records {
		f := float64(job.Index*epochs + e)
		tr.Records[e] = testbed.EpochRecord{
			Path: job.Path, Class: "synthetic", Epoch: e,
			AvailBw: 5e6 + f, PreRTT: 0.05, PreLoss: 0.001,
			Throughput: 3e6 + f, FlowRTT: 0.06, FlowLoss: 0.002,
			SmallThroughput: 1e6 + f, SmallWindowBytes: 20480,
			Checkpoints: []float64{1e6 + f, 2e6 + f},
		}
	}
	return tr
}

// TestStreamingCampaignBoundedRSS is the tentpole's memory pin: a
// 10k-path campaign streamed through the campaign sink into a
// traceio.Writer, with the live heap checked against a 64 MiB cap the
// materialized dataset would far exceed — then the file is read back
// trace-at-a-time under the same cap and spot-checked for order and
// completeness (the form cmd/repro loads).
func TestStreamingCampaignBoundedRSS(t *testing.T) {
	paths, epochs := 10000, 40
	if testing.Short() {
		paths, epochs = 2000, 40
	}

	file := filepath.Join(t.TempDir(), "campaign.json")
	w, err := traceio.NewWriter(file, "bounded")
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]campaign.Job, paths)
	for i := range jobs {
		jobs[i] = campaign.Job{Index: i, Path: fmt.Sprintf("path-%05d", i), Epochs: epochs}
	}
	var peak uint64
	var sinkErr error
	r := &campaign.Runner[testbed.Trace]{
		Parallelism: 8,
		Sink: func(res campaign.Result[testbed.Trace]) {
			if sinkErr != nil {
				return
			}
			if res.Err != nil {
				sinkErr = res.Err
				return
			}
			if err := w.WriteTrace(res.Value); err != nil {
				sinkErr = err
				return
			}
			if res.Job.Index%1000 == 999 {
				if h := liveHeap(); h > peak {
					peak = h
				}
			}
		},
	}
	if _, err := r.Run(context.Background(), jobs, func(ctx context.Context, job campaign.Job, rep *campaign.Reporter) (testbed.Trace, error) {
		return fabricateTrace(job, epochs), nil
	}); err != nil {
		t.Fatal(err)
	}
	if sinkErr != nil {
		t.Fatal(sinkErr)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if peak > heapCap {
		t.Fatalf("write-side live heap peaked at %d MiB, cap %d MiB", peak>>20, heapCap>>20)
	}
	t.Logf("write-side peak live heap: %.1f MiB for %d traces", float64(peak)/(1<<20), paths)

	rd, err := traceio.NewReader(file)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	n, totalEpochs := 0, 0
	for {
		tr, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("path-%05d", n); tr.Path != want {
			t.Fatalf("trace %d is %q, want %q: stream out of order", n, tr.Path, want)
		}
		if len(tr.Records) != epochs {
			t.Fatalf("trace %d has %d epochs, want %d", n, len(tr.Records), epochs)
		}
		totalEpochs += len(tr.Records)
		n++
		if n%2500 == 0 {
			if h := liveHeap(); h > heapCap {
				t.Fatalf("read-side live heap %d MiB at trace %d, cap %d MiB", h>>20, n, heapCap>>20)
			}
		}
	}
	if n != paths || totalEpochs != paths*epochs {
		t.Fatalf("read back %d traces/%d epochs, want %d/%d", n, totalEpochs, paths, paths*epochs)
	}
	if trl, ok := rd.Trailer(); !ok || trl.Traces != paths || trl.Epochs != paths*epochs {
		t.Fatalf("trailer %+v ok=%v, want %d traces/%d epochs", trl, ok, paths, paths*epochs)
	}
}
