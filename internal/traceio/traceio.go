// Package traceio persists measurement datasets (cmd/ronsim writes,
// cmd/repro reads) in two on-disk forms, both gzip-compressed when the
// file name ends in .gz:
//
//   - the legacy whole-dataset JSON document (Save), kept readable
//     forever, and
//   - a streaming record-per-epoch form (Writer/Reader): a header line,
//     one line per trace start, one line per epoch record, and a
//     counting trailer line. A 10k-path campaign flushes each trace as
//     it completes instead of materializing the whole dataset, so
//     collection runs in bounded RSS; the trailer makes truncation and
//     deliberate partial writes (an interrupted campaign) detectable.
//
// Load auto-detects the form, so readers never care which wrote the
// file. All writes are crash-safe: temp file, fsync, atomic rename —
// a failed or interrupted write never clobbers an existing dataset.
package traceio

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
	"repro/internal/testbed"
)

// StreamFormat identifies the streaming container; bump the suffix on
// incompatible changes. It is the value of the header line's "stream"
// field, and — because the header is the first record — also the byte
// prefix Load's format sniffing keys on.
const StreamFormat = "tcppred-epochs/1"

// SiteWrite is the fault-injection site checked before any dataset
// write reaches disk (see SetFaults); a rule here makes Save and
// Writer.Close fail after the temp file exists, proving the previous
// file survives.
const SiteWrite = "traceio.write"

// faults is the package fault-injection seam, nil outside tests.
var faults *faultinject.Injector

// SetFaults installs (or, with nil, removes) the package's fault
// injector. Test-only: not synchronized with in-flight writes.
func SetFaults(in *faultinject.Injector) { faults = in }

func checkFault(site string) error {
	if faults == nil {
		return nil
	}
	return faults.Check(site)
}

// ErrPartial marks a stream whose trailer declares it deliberately
// incomplete — an interrupted campaign that flushed what it had. Load
// and Reader surface it alongside the decoded prefix, so callers choose:
// analysis tools may proceed on the partial data, reuse logic must not
// mistake it for the full campaign.
var ErrPartial = errors.New("traceio: partial dataset (interrupted campaign)")

// ErrTruncated marks a stream that ends without its trailer — a crashed
// writer or a torn copy, as opposed to a declared-partial one.
var ErrTruncated = errors.New("traceio: truncated stream (missing trailer)")

// Save writes the dataset to path (creating parent directories) as one
// JSON document, gzipped when the file name ends in .gz. The write is
// atomic: the data lands in a temp file which is fsynced and renamed
// over path, so a crash or failure mid-write leaves any previous
// dataset untouched.
func Save(path string, ds *testbed.Dataset) error {
	return writeAtomic(path, func(w io.Writer) error {
		if filepath.Ext(path) == ".gz" {
			return json.NewEncoder(w).Encode(ds)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(ds)
	})
}

// SaveStream writes the dataset to path in the streaming form, with the
// same atomicity as Save. Equivalent to a Writer fed every trace.
func SaveStream(path string, ds *testbed.Dataset) error {
	w, err := NewWriter(path, ds.Label)
	if err != nil {
		return err
	}
	for _, tr := range ds.Traces {
		if err := w.WriteTrace(tr); err != nil {
			w.Abort()
			return err
		}
	}
	return w.Close()
}

// writeAtomic runs write against a buffered (and, for .gz paths,
// gzipped) temp file in path's directory, then fsyncs and renames it
// over path.
func writeAtomic(path string, write func(io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".traceio-*")
	if err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after a successful rename
	fail := func(err error) error {
		f.Close()
		return fmt.Errorf("traceio: write %s: %w", path, err)
	}
	if err := checkFault(SiteWrite); err != nil {
		return fail(err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var w io.Writer = bw
	var zw *gzip.Writer
	if filepath.Ext(path) == ".gz" {
		zw = gzip.NewWriter(bw)
		w = zw
	}
	if err := write(w); err != nil {
		return fail(err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return fail(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("traceio: write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
// Filesystems that refuse to sync directories are tolerated: the rename
// itself was still atomic.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Stream record shapes. Every line is one small JSON object with exactly
// one of the keys below set; a reader dispatches on which.
type streamHeader struct {
	Stream string `json:"stream"` // StreamFormat; first line, also the sniff prefix
	Label  string `json:"label"`
}

// traceStart is a Trace minus its records, which follow as epoch lines.
type traceStart struct {
	Path  string `json:"path"`
	Class string `json:"class"`
	Index int    `json:"index"`
}

// Trailer is the stream's final record: record counts for truncation
// detection, and the partial flag for deliberately incomplete writes.
type Trailer struct {
	Traces  int  `json:"traces"`
	Epochs  int  `json:"epochs"`
	Partial bool `json:"partial,omitempty"`
}

type streamLine struct {
	Stream  string               `json:"stream,omitempty"`
	Label   string               `json:"label,omitempty"`
	Trace   *traceStart          `json:"trace,omitempty"`
	Epoch   *testbed.EpochRecord `json:"epoch,omitempty"`
	Trailer *Trailer             `json:"trailer,omitempty"`
}

// Writer streams traces to a dataset file: header first, then per trace
// one trace line and its epoch lines, then a counting trailer on Close.
// Only the trace currently being written is in memory. The output goes
// to a temp file that is fsynced and atomically renamed over the target
// on Close (or ClosePartial); Abort discards it. Not goroutine-safe.
type Writer struct {
	path string
	tmp  string
	f    *os.File
	bw   *bufio.Writer
	zw   *gzip.Writer
	enc  *json.Encoder
	n    Trailer
	err  error
	done bool
}

// NewWriter creates the temp file (and parent directories) for path and
// writes the stream header. The target keeps its previous content until
// Close succeeds.
func NewWriter(path, label string) (*Writer, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".traceio-*")
	if err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	w := &Writer{path: path, tmp: f.Name(), f: f, bw: bufio.NewWriterSize(f, 1<<16)}
	var out io.Writer = w.bw
	if filepath.Ext(path) == ".gz" {
		w.zw = gzip.NewWriter(w.bw)
		out = w.zw
	}
	w.enc = json.NewEncoder(out)
	if err := w.enc.Encode(streamHeader{Stream: StreamFormat, Label: label}); err != nil {
		w.Abort()
		return nil, fmt.Errorf("traceio: write %s: %w", path, err)
	}
	return w, nil
}

// WriteTrace appends one trace — a trace line followed by one line per
// epoch record. The first error sticks and is also returned from Close.
func (w *Writer) WriteTrace(tr testbed.Trace) error {
	if w.err != nil {
		return w.err
	}
	if w.done {
		return errors.New("traceio: write after Close")
	}
	start := traceStart{Path: tr.Path, Class: tr.Class, Index: tr.Index}
	if err := w.enc.Encode(streamLine{Trace: &start}); err != nil {
		w.err = fmt.Errorf("traceio: write %s: %w", w.path, err)
		return w.err
	}
	for i := range tr.Records {
		if err := w.enc.Encode(streamLine{Epoch: &tr.Records[i]}); err != nil {
			w.err = fmt.Errorf("traceio: write %s: %w", w.path, err)
			return w.err
		}
		w.n.Epochs++
	}
	w.n.Traces++
	return nil
}

// Counts reports how many traces and epochs have been written so far.
func (w *Writer) Counts() (traces, epochs int) { return w.n.Traces, w.n.Epochs }

// Close writes the trailer, syncs, and atomically renames the temp file
// over the target. On any error the temp file is removed and the target
// keeps its previous content.
func (w *Writer) Close() error { return w.finalize(false) }

// ClosePartial is Close with the trailer's partial flag set: the file
// is valid and readable, but declared incomplete — Load reports
// ErrPartial alongside the data, and reuse logic re-collects.
func (w *Writer) ClosePartial() error { return w.finalize(true) }

func (w *Writer) finalize(partial bool) error {
	if w.done {
		return w.err
	}
	if w.err != nil {
		w.Abort()
		return w.err
	}
	w.done = true
	fail := func(err error) error {
		w.err = fmt.Errorf("traceio: write %s: %w", w.path, err)
		w.f.Close()
		os.Remove(w.tmp)
		return w.err
	}
	if err := checkFault(SiteWrite); err != nil {
		return fail(err)
	}
	t := w.n
	t.Partial = partial
	if err := w.enc.Encode(streamLine{Trailer: &t}); err != nil {
		return fail(err)
	}
	if w.zw != nil {
		if err := w.zw.Close(); err != nil {
			return fail(err)
		}
	}
	if err := w.bw.Flush(); err != nil {
		return fail(err)
	}
	if err := w.f.Sync(); err != nil {
		return fail(err)
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		w.err = fmt.Errorf("traceio: write %s: %w", w.path, err)
		return w.err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		w.err = fmt.Errorf("traceio: %w", err)
		return w.err
	}
	syncDir(filepath.Dir(w.path))
	return nil
}

// Abort discards the temp file without touching the target. Safe after
// errors and after Close (where it is a no-op).
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	if w.err == nil {
		w.err = errors.New("traceio: writer aborted")
	}
	w.f.Close()
	os.Remove(w.tmp)
}

// Reader streams traces back from a file in the streaming form. Next
// returns one assembled trace at a time, so a reader holds one trace in
// memory regardless of file size.
type Reader struct {
	f       *os.File
	zr      *gzip.Reader
	dec     *json.Decoder
	label   string
	cur     *testbed.Trace
	trailer *Trailer
	seen    Trailer // counts observed, checked against the trailer
	err     error
}

// NewReader opens a streaming dataset file and reads its header.
func NewReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	r := &Reader{f: f}
	var in io.Reader = f
	if filepath.Ext(path) == ".gz" {
		zr, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("traceio: %s: %w", path, err)
		}
		r.zr = zr
		in = zr
	}
	r.dec = json.NewDecoder(bufio.NewReaderSize(in, 1<<16))
	var h streamHeader
	if err := r.dec.Decode(&h); err != nil || h.Stream != StreamFormat {
		r.Close()
		if err == nil {
			err = fmt.Errorf("not a %q stream (header %q)", StreamFormat, h.Stream)
		}
		return nil, fmt.Errorf("traceio: decode %s: %w", path, err)
	}
	r.label = h.Label
	return r, nil
}

// Label returns the dataset label from the stream header.
func (r *Reader) Label() string { return r.label }

// Trailer returns the stream trailer once the reader has consumed it
// (after Next has returned io.EOF or ErrPartial).
func (r *Reader) Trailer() (Trailer, bool) {
	if r.trailer == nil {
		return Trailer{}, false
	}
	return *r.trailer, true
}

// Next returns the next trace. At end of stream it returns io.EOF for a
// complete file, ErrPartial for a declared-partial one, and ErrTruncated
// (or a count-mismatch error) for a torn one.
func (r *Reader) Next() (testbed.Trace, error) {
	if r.err != nil {
		return testbed.Trace{}, r.err
	}
	for {
		var line streamLine
		if err := r.dec.Decode(&line); err != nil {
			if errors.Is(err, io.EOF) {
				return r.finish()
			}
			r.err = fmt.Errorf("traceio: decode stream: %w", err)
			return testbed.Trace{}, r.err
		}
		switch {
		case line.Trace != nil:
			prev := r.cur
			r.cur = &testbed.Trace{Path: line.Trace.Path, Class: line.Trace.Class, Index: line.Trace.Index}
			r.seen.Traces++
			if prev != nil {
				return *prev, nil
			}
		case line.Epoch != nil:
			if r.cur == nil {
				r.err = errors.New("traceio: epoch record before any trace record")
				return testbed.Trace{}, r.err
			}
			r.cur.Records = append(r.cur.Records, *line.Epoch)
			r.seen.Epochs++
		case line.Trailer != nil:
			r.trailer = line.Trailer
		default:
			r.err = errors.New("traceio: unrecognized stream record")
			return testbed.Trace{}, r.err
		}
	}
}

// finish validates the trailer at end of stream and flushes the last
// pending trace before reporting the terminal error.
func (r *Reader) finish() (testbed.Trace, error) {
	if r.trailer == nil {
		r.err = ErrTruncated
		return testbed.Trace{}, r.err
	}
	if r.trailer.Traces != r.seen.Traces || r.trailer.Epochs != r.seen.Epochs {
		r.err = fmt.Errorf("traceio: stream count mismatch: trailer %d traces/%d epochs, read %d/%d",
			r.trailer.Traces, r.trailer.Epochs, r.seen.Traces, r.seen.Epochs)
		return testbed.Trace{}, r.err
	}
	r.err = io.EOF
	if r.trailer.Partial {
		r.err = ErrPartial
	}
	if r.cur != nil {
		last := *r.cur
		r.cur = nil
		return last, nil
	}
	return testbed.Trace{}, r.err
}

// ReadAll drains the reader into a Dataset. For a declared-partial
// stream it returns the decoded prefix alongside ErrPartial.
func (r *Reader) ReadAll() (*testbed.Dataset, error) {
	ds := &testbed.Dataset{Label: r.label}
	for {
		tr, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return ds, nil
			}
			if errors.Is(err, ErrPartial) {
				return ds, err
			}
			return nil, err
		}
		ds.Traces = append(ds.Traces, tr)
	}
}

// Close releases the underlying file.
func (r *Reader) Close() error {
	if r.zr != nil {
		r.zr.Close()
	}
	return r.f.Close()
}

// streamSniff is the byte prefix every streaming file starts with (the
// header is always the first line and json.Encoder writes fields in
// declaration order).
var streamSniff = []byte(`{"stream":"` + StreamFormat + `"`)

// Load reads a dataset written by Save, SaveStream, or a Writer,
// auto-detecting the form. For a declared-partial stream it returns the
// decoded prefix alongside ErrPartial (see ErrPartial for the contract).
func Load(path string) (*testbed.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	defer f.Close()

	var in io.Reader = f
	if filepath.Ext(path) == ".gz" {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("traceio: %s: %w", path, err)
		}
		defer zr.Close()
		in = zr
	}
	br := bufio.NewReaderSize(in, 1<<16)
	head, _ := br.Peek(len(streamSniff))
	if bytes.Equal(head, streamSniff) {
		r := &Reader{f: f, dec: json.NewDecoder(br)}
		var h streamHeader
		if err := r.dec.Decode(&h); err != nil {
			return nil, fmt.Errorf("traceio: decode %s: %w", path, err)
		}
		r.label = h.Label
		// The deferred closes above own the file; neuter the Reader's.
		r.f = nil
		r.zr = nil
		ds, err := r.readAllNoClose()
		if err != nil {
			if errors.Is(err, ErrPartial) {
				return ds, fmt.Errorf("%w: %s", ErrPartial, path)
			}
			return nil, fmt.Errorf("traceio: decode %s: %w", path, err)
		}
		return ds, nil
	}
	var ds testbed.Dataset
	if err := json.NewDecoder(br).Decode(&ds); err != nil {
		return nil, fmt.Errorf("traceio: decode %s: %w", path, err)
	}
	return &ds, nil
}

// readAllNoClose is ReadAll for a Reader whose file is owned elsewhere.
func (r *Reader) readAllNoClose() (*testbed.Dataset, error) { return r.ReadAll() }

// LoadOrCollect loads the dataset at path if it exists; otherwise it
// collects one with the given config and saves it to path (when path is
// non-empty). It is a compatibility wrapper over LoadOrCollectContext.
func LoadOrCollect(path string, cfg testbed.RunConfig) (*testbed.Dataset, error) {
	return LoadOrCollectContext(context.Background(), path, cfg)
}

// LoadOrCollectContext is LoadOrCollect with cancellation: a collection
// in progress aborts at the next epoch boundaries and the partial dataset
// is returned (but not saved) alongside ctx.Err(). Campaign progress
// flows to cfg.Observer. An existing but declared-partial stream at path
// is not reused: it is re-collected like a missing file.
func LoadOrCollectContext(ctx context.Context, path string, cfg testbed.RunConfig) (*testbed.Dataset, error) {
	if path != "" {
		if _, err := os.Stat(path); err == nil {
			ds, err := Load(path)
			if !errors.Is(err, ErrPartial) {
				return ds, err
			}
			// Partial dataset on disk: fall through and re-collect.
		}
	}
	ds, err := testbed.CollectContext(ctx, cfg)
	if err != nil {
		// Partial or faulted campaigns are returned for inspection but
		// never persisted: a later run must not mistake them for the
		// complete dataset.
		return ds, err
	}
	if path != "" {
		if err := Save(path, ds); err != nil {
			return nil, err
		}
	}
	return ds, nil
}
