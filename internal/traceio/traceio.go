// Package traceio persists measurement datasets as gzip-compressed JSON,
// so an expensive collection campaign can be reused across analysis runs
// (cmd/ronsim writes, cmd/repro reads).
package traceio

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/testbed"
)

// Save writes the dataset to path (creating parent directories), gzipped
// when the file name ends in .gz.
func Save(path string, ds *testbed.Dataset) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	defer f.Close()

	if filepath.Ext(path) == ".gz" {
		zw := gzip.NewWriter(f)
		if err := json.NewEncoder(zw).Encode(ds); err != nil {
			zw.Close()
			return fmt.Errorf("traceio: encode %s: %w", path, err)
		}
		if err := zw.Close(); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
	} else {
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(ds); err != nil {
			return fmt.Errorf("traceio: encode %s: %w", path, err)
		}
	}
	return f.Close()
}

// Load reads a dataset written by Save.
func Load(path string) (*testbed.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	defer f.Close()

	var ds testbed.Dataset
	if filepath.Ext(path) == ".gz" {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("traceio: %s: %w", path, err)
		}
		defer zr.Close()
		if err := json.NewDecoder(zr).Decode(&ds); err != nil {
			return nil, fmt.Errorf("traceio: decode %s: %w", path, err)
		}
	} else if err := json.NewDecoder(f).Decode(&ds); err != nil {
		return nil, fmt.Errorf("traceio: decode %s: %w", path, err)
	}
	return &ds, nil
}

// LoadOrCollect loads the dataset at path if it exists; otherwise it
// collects one with the given config and saves it to path (when path is
// non-empty). It is a compatibility wrapper over LoadOrCollectContext.
func LoadOrCollect(path string, cfg testbed.RunConfig) (*testbed.Dataset, error) {
	return LoadOrCollectContext(context.Background(), path, cfg)
}

// LoadOrCollectContext is LoadOrCollect with cancellation: a collection
// in progress aborts at the next epoch boundaries and the partial dataset
// is returned (but not saved) alongside ctx.Err(). Campaign progress
// flows to cfg.Observer.
func LoadOrCollectContext(ctx context.Context, path string, cfg testbed.RunConfig) (*testbed.Dataset, error) {
	if path != "" {
		if _, err := os.Stat(path); err == nil {
			return Load(path)
		}
	}
	ds, err := testbed.CollectContext(ctx, cfg)
	if err != nil {
		// Partial or faulted campaigns are returned for inspection but
		// never persisted: a later run must not mistake them for the
		// complete dataset.
		return ds, err
	}
	if path != "" {
		if err := Save(path, ds); err != nil {
			return nil, err
		}
	}
	return ds, nil
}
