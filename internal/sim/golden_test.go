package sim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden event traces")

// goldenScript drives an engine through a deterministic, API-only
// interleaving of Schedule/At/Cancel/Step/RunUntil — including same-instant
// bursts, cancel-heavy churn (the RTO re-arm pattern that triggers
// maybeCompact), and events that schedule and cancel other events from
// inside their callbacks. Every fired event appends one trace line, so the
// full processed-event sequence (identity, order, and firing time) is
// observable. The script touches only the public engine API and draws all
// randomness from its own seeded RNG, so the trace it produces is a pure
// function of the engine's event-ordering semantics: any reimplementation
// of the engine must reproduce it byte for byte.
func goldenScript(seed int64, eng *Engine) []string {
	rng := NewRNG(seed)
	var trace []string
	record := func(id int) {
		trace = append(trace, fmt.Sprintf("%d %.17g", id, eng.Now()))
	}

	type handle struct {
		id int
		tm Timer
	}
	var live []handle
	nextID := 0
	schedule := func(delay float64) {
		id := nextID
		nextID++
		tm := eng.Schedule(delay, func() {
			record(id)
			// A slice of events re-schedules follow-ups and assassinates a
			// pseudo-random victim, exercising in-callback mutation.
			if id%7 == 0 {
				cid := nextID
				nextID++
				eng.Schedule(0.25, func() { record(cid) })
			}
			if id%11 == 0 && len(live) > 0 {
				live[id%len(live)].tm.Cancel()
			}
		})
		live = append(live, handle{id, tm})
	}

	for round := 0; round < 3000; round++ {
		switch op := rng.Intn(20); {
		case op < 8:
			schedule(rng.Uniform(0, 3))
		case op < 10:
			// Same-instant burst: FIFO order among equals must hold.
			for i := 0; i < 3; i++ {
				schedule(1.0)
			}
		case op < 14:
			// RTO re-arm churn: schedule far in the future, cancel at once.
			schedule(50 + rng.Uniform(0, 10))
			live[len(live)-1].tm.Cancel()
			live = live[:len(live)-1]
		case op < 16:
			if len(live) > 0 {
				k := rng.Intn(len(live))
				live[k].tm.Cancel()
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		case op < 18:
			eng.Step()
		default:
			eng.RunUntil(eng.Now() + rng.Uniform(0, 0.4))
		}
	}
	eng.Run()
	return trace
}

// TestGoldenEventTrace replays the deterministic script and compares the
// processed-event sequence with the trace recorded from the pre-rewrite
// container/heap engine (testdata/golden_trace_seed*.txt). It proves the
// 4-ary heap + free-list engine preserves event ordering bit for bit.
// Regenerate with `go test ./internal/sim -run Golden -update` — but only
// when intentionally changing ordering semantics, which breaks every
// recorded campaign.
func TestGoldenEventTrace(t *testing.T) {
	for _, seed := range []int64{1, 42, 9001} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			got := strings.Join(goldenScript(seed, NewEngine()), "\n") + "\n"
			path := filepath.Join("testdata", fmt.Sprintf("golden_trace_seed%d.txt", seed))
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d events)", path, strings.Count(got, "\n"))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden trace (run with -update): %v", err)
			}
			if got != string(want) {
				gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
				n := len(gl)
				if len(wl) < n {
					n = len(wl)
				}
				for i := 0; i < n; i++ {
					if gl[i] != wl[i] {
						t.Fatalf("event trace diverges at line %d: got %q, want %q (got %d lines, want %d)",
							i+1, gl[i], wl[i], len(gl), len(wl))
					}
				}
				t.Fatalf("event trace length differs: got %d lines, want %d", len(gl), len(wl))
			}
		})
	}
}
