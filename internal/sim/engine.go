// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of scheduled
// events. Events scheduled for the same instant fire in scheduling order,
// which makes simulation runs bit-for-bit reproducible for a given seed.
// All times are float64 seconds of virtual time.
//
// The event queue is an inlined, monomorphic 4-ary min-heap over small
// value entries (no interface boxing, no container/heap indirection), and
// timer state lives in an arena recycled through a free list, so the
// steady-state event loop — schedule, fire, schedule again — performs no
// heap allocation at all. See DESIGN.md §10 for the layout and the
// free-list invariants.
package sim

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Timer is a handle to a scheduled event, returned by value: it is three
// words and allocation-free to create, copy, and discard. The zero Timer
// is valid and inert — Cancel and Pending on it report false — so struct
// fields of type Timer need no "is there a timer?" sentinel.
//
// Handles are generation-checked: once the underlying timer fires or its
// cancelled entry leaves the heap, the engine recycles the timer's arena
// slot for future events, and every operation through a stale handle
// becomes a no-op (Cancel reports false, Pending reports false) rather
// than touching whichever new timer now occupies the slot.
type Timer struct {
	eng  *Engine
	at   float64
	node int32 // arena index + 1; 0 marks the zero (inert) handle
	gen  uint32
}

// Time returns the virtual time at which the timer was scheduled to fire.
// It remains readable after the timer fires or is cancelled.
func (t Timer) Time() float64 { return t.at }

// Cancel prevents the timer from firing. It reports whether the timer was
// still pending (and is now cancelled). Cancelling an already-fired,
// already-cancelled, or zero timer is a no-op that reports false.
// Cancelled timers stay in the event heap until popped or compacted; the
// engine tracks them so that Pending stays exact and the heap cannot fill
// up with dead entries.
func (t Timer) Cancel() bool {
	e := t.eng
	if e == nil || t.node == 0 {
		return false
	}
	nd := &e.nodes[t.node-1]
	if nd.gen != t.gen || nd.canceled || nd.heapIdx < 0 {
		return false
	}
	nd.canceled = true
	e.canceled++
	e.maybeCompact()
	return true
}

// Pending reports whether the timer is still scheduled and not cancelled.
func (t Timer) Pending() bool {
	e := t.eng
	if e == nil || t.node == 0 {
		return false
	}
	nd := &e.nodes[t.node-1]
	return nd.gen == t.gen && !nd.canceled && nd.heapIdx >= 0
}

// timerNode is the arena-resident state of one scheduled event. Nodes are
// recycled through the engine's free list: when an event fires or a
// cancelled entry leaves the heap, the node's generation is bumped
// (invalidating all outstanding handles), its callback reference is
// dropped, and the slot becomes available for the next Schedule/At call.
// Nobody — not the firing callback, not a retained Timer handle — may
// reach a released node's state: handles are fenced by the generation
// check, and the engine reads everything it needs (callback, firing time)
// before releasing.
type timerNode struct {
	fn       func()
	heapIdx  int32 // index into Engine.heap; -1 when not in the heap
	gen      uint32
	canceled bool
}

// heapEntry is one event-queue slot: the (at, seq) ordering key inline —
// so heap comparisons touch no other memory — plus the arena index of the
// timer's node.
type heapEntry struct {
	at   float64
	seq  uint64
	node int32
}

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now       float64
	seq       uint64
	heap      []heapEntry
	nodes     []timerNode
	free      []int32
	processed uint64
	canceled  int // cancelled timers still sitting in the heap
	stopped   bool
	span      *obs.Span
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// ProcessedSince returns the number of events executed since mark, where
// mark is a value previously returned by Processed. It lets callers meter
// individual run segments (one epoch, one transfer) without the engine
// having to know about segment boundaries.
func (e *Engine) ProcessedSince(mark uint64) uint64 { return e.processed - mark }

// Pending returns the number of live events currently scheduled.
// Cancelled timers awaiting removal from the heap are not counted.
func (e *Engine) Pending() int { return len(e.heap) - e.canceled }

// Schedule runs fn after delay seconds of virtual time. A negative delay is
// treated as zero. It returns a Timer that may be cancelled.
func (e *Engine) Schedule(delay float64, fn func()) Timer {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past panics,
// since it indicates a logic error in the caller.
//
// Each scheduled event consumes one value of the engine's sequence
// counter, which increases monotonically for the lifetime of the engine —
// it is never reset when timer nodes are recycled, so the (at, seq) total
// order spans every event the engine will ever schedule. The counter is a
// uint64; at the simulator's measured event rates (~10^7 events/s of wall
// time) exhausting it would take tens of thousands of years of continuous
// scheduling, so overflow is not a practical concern and is not checked on
// the hot path.
func (e *Engine) At(t float64, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.nodes = append(e.nodes, timerNode{})
		idx = int32(len(e.nodes) - 1)
	}
	nd := &e.nodes[idx]
	nd.fn = fn
	nd.canceled = false
	e.heapPush(heapEntry{at: t, seq: e.seq, node: idx})
	return Timer{eng: e, at: t, node: idx + 1, gen: nd.gen}
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		en := e.popRoot()
		nd := &e.nodes[en.node]
		if nd.canceled {
			e.canceled--
			e.freeNode(en.node)
			continue
		}
		// Release the node before running the callback: the callback's own
		// handle goes stale here (Cancel-after-fire is a no-op by
		// construction), and anything the callback schedules can reuse the
		// slot immediately.
		fn := nd.fn
		e.freeNode(en.node)
		e.now = en.at
		e.processed++
		fn()
		return true
	}
	return false
}

// SetSpan attaches a parent observability span to the engine: every
// Run/RunUntil segment records a "sim.run" child span carrying the
// number of events it processed, so a trace shows where a campaign's
// virtual time was spent. Callers move the parent as they enter new
// phases (warmup, pathload, transfer …) and detach with SetSpan(nil).
// A nil span (the default) reduces the instrumentation to one
// predictable branch per run call — never per event — which is why it
// can stay compiled into the hot loop without moving the benchmarks.
func (e *Engine) SetSpan(parent *obs.Span) { e.span = parent }

// runSpan opens the per-segment span when a parent is attached.
func (e *Engine) runSpan() (*obs.Span, uint64) {
	if e.span == nil {
		return nil, 0
	}
	return e.span.Child("sim.run"), e.processed
}

func (e *Engine) endRunSpan(sp *obs.Span, mark uint64) {
	if sp == nil {
		return
	}
	sp.AddCount(int64(e.processed - mark))
	sp.End()
}

// RunUntil executes events in order until the clock would pass t or no
// events remain. After RunUntil the clock is exactly t if any event horizon
// reached it, otherwise the time of the last executed event.
func (e *Engine) RunUntil(t float64) {
	sp, mark := e.runSpan()
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		next, ok := e.peek()
		if !ok {
			e.endRunSpan(sp, mark)
			return
		}
		if next.at > t {
			e.now = t
			e.endRunSpan(sp, mark)
			return
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
	e.endRunSpan(sp, mark)
}

// Run executes all pending events until none remain or Stop is called.
func (e *Engine) Run() {
	sp, mark := e.runSpan()
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	e.endRunSpan(sp, mark)
}

// Stop halts Run/RunUntil after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// peek returns the next live (non-cancelled) entry without executing it,
// discarding dead entries from the top of the heap along the way.
func (e *Engine) peek() (heapEntry, bool) {
	for len(e.heap) > 0 {
		en := e.heap[0]
		if !e.nodes[en.node].canceled {
			return en, true
		}
		e.popRoot()
		e.canceled--
		e.freeNode(en.node)
	}
	return heapEntry{}, false
}

// freeNode returns a node to the free list: the generation bump fences off
// every outstanding handle, and dropping fn releases the callback (and
// whatever its closure captured) without waiting for the whole arena to
// become garbage.
func (e *Engine) freeNode(idx int32) {
	nd := &e.nodes[idx]
	nd.fn = nil
	nd.heapIdx = -1
	nd.canceled = false
	nd.gen++
	e.free = append(e.free, idx)
}

// heapPush appends an entry and restores the heap order. The heap is
// 4-ary: parent(i) = (i-1)/4, children(i) = 4i+1..4i+4. Compared with the
// binary heap it halves the tree depth (fewer cache lines touched per
// operation) at the cost of up to three extra comparisons per level on the
// way down — a win for the pop-heavy event loop. Because (at, seq) is a
// strict total order (seq is unique), any heap arity pops events in the
// identical sequence, so determinism is arity-independent.
func (e *Engine) heapPush(en heapEntry) {
	e.heap = append(e.heap, en)
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) siftUp(i int) {
	en := e.heap[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(en, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.nodes[e.heap[i].node].heapIdx = int32(i)
		i = p
	}
	e.heap[i] = en
	e.nodes[en.node].heapIdx = int32(i)
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	en := e.heap[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(e.heap[j], e.heap[m]) {
				m = j
			}
		}
		if !entryLess(e.heap[m], en) {
			break
		}
		e.heap[i] = e.heap[m]
		e.nodes[e.heap[i].node].heapIdx = int32(i)
		i = m
	}
	e.heap[i] = en
	e.nodes[en.node].heapIdx = int32(i)
}

// popRoot removes and returns the minimum entry.
func (e *Engine) popRoot() heapEntry {
	root := e.heap[0]
	last := len(e.heap) - 1
	if last > 0 {
		e.heap[0] = e.heap[last]
		e.heap = e.heap[:last]
		e.siftDown(0)
	} else {
		e.heap = e.heap[:0]
	}
	return root
}

// maybeCompact rebuilds the event heap without cancelled timers once they
// dominate it, keeping heap operations O(log live) even for workloads
// that cancel timers far faster than they fire them (e.g. a TCP sender
// re-arming its RTO on every ACK). The dead entries' nodes go back to the
// free list here — cancellation, not just firing, feeds the recycler.
func (e *Engine) maybeCompact() {
	if e.canceled < 64 || e.canceled*2 < len(e.heap) {
		return
	}
	live := e.heap[:0]
	for _, en := range e.heap {
		if e.nodes[en.node].canceled {
			e.freeNode(en.node)
			continue
		}
		live = append(live, en)
	}
	e.heap = live
	for i, en := range e.heap {
		e.nodes[en.node].heapIdx = int32(i)
	}
	for i := (len(e.heap) - 2) >> 2; i >= 0; i-- {
		e.siftDown(i)
	}
	e.canceled = 0
}
