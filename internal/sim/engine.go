// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of scheduled
// events. Events scheduled for the same instant fire in scheduling order,
// which makes simulation runs bit-for-bit reproducible for a given seed.
// All times are float64 seconds of virtual time.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Timer is a handle to a scheduled event. It can be cancelled before it
// fires; cancelling an already-fired or already-cancelled timer is a no-op.
type Timer struct {
	eng      *Engine
	at       float64
	seq      uint64
	fn       func()
	index    int // heap index; -1 when not in the heap
	canceled bool
}

// Time returns the virtual time at which the timer is scheduled to fire.
func (t *Timer) Time() float64 { return t.at }

// Cancel prevents the timer from firing. It reports whether the timer was
// still pending (and is now cancelled). Cancelled timers stay in the
// event heap until popped or compacted; the engine tracks them so that
// Pending stays exact and the heap cannot fill up with dead entries.
func (t *Timer) Cancel() bool {
	if t.canceled || t.index < 0 {
		return false
	}
	t.canceled = true
	t.eng.canceled++
	t.eng.maybeCompact()
	return true
}

// Pending reports whether the timer is still scheduled and not cancelled.
func (t *Timer) Pending() bool { return !t.canceled && t.index >= 0 }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now       float64
	seq       uint64
	events    eventHeap
	processed uint64
	canceled  int // cancelled timers still sitting in the heap
	stopped   bool
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// ProcessedSince returns the number of events executed since mark, where
// mark is a value previously returned by Processed. It lets callers meter
// individual run segments (one epoch, one transfer) without the engine
// having to know about segment boundaries.
func (e *Engine) ProcessedSince(mark uint64) uint64 { return e.processed - mark }

// Pending returns the number of live events currently scheduled.
// Cancelled timers awaiting removal from the heap are not counted.
func (e *Engine) Pending() int { return len(e.events) - e.canceled }

// Schedule runs fn after delay seconds of virtual time. A negative delay is
// treated as zero. It returns a Timer that may be cancelled.
func (e *Engine) Schedule(delay float64, fn func()) *Timer {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past panics,
// since it indicates a logic error in the caller.
func (e *Engine) At(t float64, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	tm := &Timer{eng: e, at: t, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.events, tm)
	return tm
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		tm := heap.Pop(&e.events).(*Timer)
		if tm.canceled {
			e.canceled--
			continue
		}
		e.now = tm.at
		e.processed++
		tm.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the clock would pass t or no
// events remain. After RunUntil the clock is exactly t if any event horizon
// reached it, otherwise the time of the last executed event.
func (e *Engine) RunUntil(t float64) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.peek()
		if next == nil {
			return
		}
		if next.at > t {
			e.now = t
			return
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Run executes all pending events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Stop halts Run/RunUntil after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() *Timer {
	for len(e.events) > 0 {
		if !e.events[0].canceled {
			return e.events[0]
		}
		heap.Pop(&e.events)
		e.canceled--
	}
	return nil
}

// maybeCompact rebuilds the event heap without cancelled timers once they
// dominate it, keeping heap operations O(log live) even for workloads
// that cancel timers far faster than they fire them (e.g. a TCP sender
// re-arming its RTO on every ACK).
func (e *Engine) maybeCompact() {
	if e.canceled < 64 || e.canceled*2 < len(e.events) {
		return
	}
	live := e.events[:0]
	for _, tm := range e.events {
		if tm.canceled {
			tm.index = -1
			continue
		}
		live = append(live, tm)
	}
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	for i, tm := range e.events {
		tm.index = i
	}
	heap.Init(&e.events)
	e.canceled = 0
}
