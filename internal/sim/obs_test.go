package sim

import (
	"testing"

	"repro/internal/obs"
)

// TestEngineRunSpans checks the run-loop instrumentation: each
// Run/RunUntil segment records one sim.run span, parented under the
// attached phase span, whose count is the number of events that segment
// processed; a detached engine stays span-free.
func TestEngineRunSpans(t *testing.T) {
	tr := obs.NewTracer(64)
	phase := tr.Start("phase")
	e := NewEngine()
	e.SetSpan(phase)

	fired := 0
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i), func() { fired++ })
	}
	e.RunUntil(2.5) // fires events at 0, 1, 2
	e.Run()         // fires the remaining 2
	e.SetSpan(nil)
	phase.End()

	if fired != 5 {
		t.Fatalf("fired %d events, want 5", fired)
	}
	spans, _ := tr.Snapshot()
	var runs []obs.SpanRecord
	var phaseID uint64
	for _, sp := range spans {
		switch sp.Name {
		case "sim.run":
			runs = append(runs, sp)
		case "phase":
			phaseID = sp.ID
		}
	}
	if len(runs) != 2 {
		t.Fatalf("got %d sim.run spans, want 2 (one per run segment): %+v", len(runs), spans)
	}
	if runs[0].Count != 3 || runs[1].Count != 2 {
		t.Errorf("segment counts = %d, %d; want 3, 2", runs[0].Count, runs[1].Count)
	}
	for _, sp := range runs {
		if sp.Parent != phaseID {
			t.Errorf("sim.run parented to %d, want phase %d", sp.Parent, phaseID)
		}
	}
}

// TestEngineNilSpan pins the off state: no parent span, no spans, and
// the run loop behaves identically.
func TestEngineNilSpan(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(1, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
}
