package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var fired []float64
	for _, d := range []float64{0.5, 0.1, 0.3, 0.2, 0.4} {
		d := d
		eng.Schedule(d, func() { fired = append(fired, d) })
	}
	eng.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Errorf("events fired out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Errorf("fired %d events, want 5", len(fired))
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	eng := NewEngine()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(1.0, func() { fired = append(fired, i) })
	}
	eng.Run()
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", fired)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	eng := NewEngine()
	var at float64
	eng.Schedule(2.5, func() { at = eng.Now() })
	eng.Run()
	if at != 2.5 {
		t.Errorf("event saw clock %v, want 2.5", at)
	}
	if eng.Now() != 2.5 {
		t.Errorf("final clock %v, want 2.5", eng.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	fired := 0
	eng.Schedule(1, func() { fired++ })
	eng.Schedule(2, func() { fired++ })
	eng.Schedule(3, func() { fired++ })
	eng.RunUntil(2.5)
	if fired != 2 {
		t.Errorf("fired %d events by t=2.5, want 2", fired)
	}
	if eng.Now() != 2.5 {
		t.Errorf("clock %v after RunUntil(2.5)", eng.Now())
	}
	eng.RunUntil(10)
	if fired != 3 {
		t.Errorf("fired %d events total, want 3", fired)
	}
}

func TestEngineRunUntilIdleAdvancesClock(t *testing.T) {
	eng := NewEngine()
	eng.RunUntil(7)
	if eng.Now() != 7 {
		t.Errorf("clock %v, want 7 even with no events", eng.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	tm := eng.Schedule(1, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should report true")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should report false")
	}
	eng.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
}

func TestCancelFromEvent(t *testing.T) {
	eng := NewEngine()
	fired := false
	victim := eng.Schedule(2, func() { fired = true })
	eng.Schedule(1, func() { victim.Cancel() })
	eng.Run()
	if fired {
		t.Error("timer cancelled by earlier event still fired")
	}
}

func TestScheduleInsideEvent(t *testing.T) {
	eng := NewEngine()
	var times []float64
	eng.Schedule(1, func() {
		eng.Schedule(1, func() { times = append(times, eng.Now()) })
	})
	eng.Run()
	if len(times) != 1 || times[0] != 2 {
		t.Errorf("nested event times = %v, want [2]", times)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	eng := NewEngine()
	eng.RunUntil(5)
	fired := false
	eng.Schedule(-1, func() { fired = true })
	eng.Run()
	if !fired {
		t.Error("negative-delay event did not fire")
	}
}

func TestAtPastPanics(t *testing.T) {
	eng := NewEngine()
	eng.RunUntil(5)
	defer func() {
		if recover() == nil {
			t.Error("At in the past did not panic")
		}
	}()
	eng.At(1, func() {})
}

func TestStop(t *testing.T) {
	eng := NewEngine()
	fired := 0
	eng.Schedule(1, func() { fired++; eng.Stop() })
	eng.Schedule(2, func() { fired++ })
	eng.Run()
	if fired != 1 {
		t.Errorf("fired %d events after Stop, want 1", fired)
	}
}

func TestProcessedCount(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 7; i++ {
		eng.Schedule(float64(i), func() {})
	}
	eng.Run()
	if eng.Processed() != 7 {
		t.Errorf("processed %d, want 7", eng.Processed())
	}
}

// TestEventOrderProperty: for any set of non-negative delays, execution
// order is non-decreasing in time.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		eng := NewEngine()
		var fired []float64
		for _, r := range raw {
			d := float64(r) / 100
			eng.Schedule(d, func() { fired = append(fired, d) })
		}
		eng.Run()
		return len(fired) == len(raw) && sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	f1 := parent.Fork()
	f2 := parent.Fork()
	same := true
	for i := 0; i < 20; i++ {
		if f1.Float64() != f2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("sibling forks produced identical streams")
	}
}

func TestExpMean(t *testing.T) {
	rng := NewRNG(1)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += rng.Exp(2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("Exp mean %.3f, want ≈2.5", mean)
	}
}

func TestParetoProperties(t *testing.T) {
	rng := NewRNG(1)
	const alpha, xm = 1.5, 2.0
	var sum float64
	const n = 500000
	for i := 0; i < n; i++ {
		v := rng.Pareto(alpha, xm)
		if v < xm {
			t.Fatalf("Pareto sample %v below scale %v", v, xm)
		}
		sum += v
	}
	// E[X] = xm·α/(α-1) = 6. The heavy tail converges slowly; allow 10%.
	mean := sum / n
	want := xm * alpha / (alpha - 1)
	if math.Abs(mean-want) > want*0.1 {
		t.Errorf("Pareto mean %.3f, want ≈%.1f", mean, want)
	}
}

func TestUniformRange(t *testing.T) {
	rng := NewRNG(3)
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		v := rng.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
