package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var fired []float64
	for _, d := range []float64{0.5, 0.1, 0.3, 0.2, 0.4} {
		d := d
		eng.Schedule(d, func() { fired = append(fired, d) })
	}
	eng.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Errorf("events fired out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Errorf("fired %d events, want 5", len(fired))
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	eng := NewEngine()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(1.0, func() { fired = append(fired, i) })
	}
	eng.Run()
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", fired)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	eng := NewEngine()
	var at float64
	eng.Schedule(2.5, func() { at = eng.Now() })
	eng.Run()
	if at != 2.5 {
		t.Errorf("event saw clock %v, want 2.5", at)
	}
	if eng.Now() != 2.5 {
		t.Errorf("final clock %v, want 2.5", eng.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	fired := 0
	eng.Schedule(1, func() { fired++ })
	eng.Schedule(2, func() { fired++ })
	eng.Schedule(3, func() { fired++ })
	eng.RunUntil(2.5)
	if fired != 2 {
		t.Errorf("fired %d events by t=2.5, want 2", fired)
	}
	if eng.Now() != 2.5 {
		t.Errorf("clock %v after RunUntil(2.5)", eng.Now())
	}
	eng.RunUntil(10)
	if fired != 3 {
		t.Errorf("fired %d events total, want 3", fired)
	}
}

func TestEngineRunUntilIdleAdvancesClock(t *testing.T) {
	eng := NewEngine()
	eng.RunUntil(7)
	if eng.Now() != 7 {
		t.Errorf("clock %v, want 7 even with no events", eng.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	tm := eng.Schedule(1, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should report true")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should report false")
	}
	eng.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
}

func TestCancelFromEvent(t *testing.T) {
	eng := NewEngine()
	fired := false
	victim := eng.Schedule(2, func() { fired = true })
	eng.Schedule(1, func() { victim.Cancel() })
	eng.Run()
	if fired {
		t.Error("timer cancelled by earlier event still fired")
	}
}

func TestScheduleInsideEvent(t *testing.T) {
	eng := NewEngine()
	var times []float64
	eng.Schedule(1, func() {
		eng.Schedule(1, func() { times = append(times, eng.Now()) })
	})
	eng.Run()
	if len(times) != 1 || times[0] != 2 {
		t.Errorf("nested event times = %v, want [2]", times)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	eng := NewEngine()
	eng.RunUntil(5)
	fired := false
	eng.Schedule(-1, func() { fired = true })
	eng.Run()
	if !fired {
		t.Error("negative-delay event did not fire")
	}
}

func TestAtPastPanics(t *testing.T) {
	eng := NewEngine()
	eng.RunUntil(5)
	defer func() {
		if recover() == nil {
			t.Error("At in the past did not panic")
		}
	}()
	eng.At(1, func() {})
}

func TestStop(t *testing.T) {
	eng := NewEngine()
	fired := 0
	eng.Schedule(1, func() { fired++; eng.Stop() })
	eng.Schedule(2, func() { fired++ })
	eng.Run()
	if fired != 1 {
		t.Errorf("fired %d events after Stop, want 1", fired)
	}
}

func TestPendingSkipsCancelled(t *testing.T) {
	eng := NewEngine()
	var timers []Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, eng.Schedule(float64(i+1), func() {}))
	}
	if eng.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", eng.Pending())
	}
	for _, tm := range timers[:4] {
		tm.Cancel()
	}
	if eng.Pending() != 6 {
		t.Errorf("Pending = %d after 4 cancels, want 6", eng.Pending())
	}
	eng.RunUntil(5) // fires timers 5 (others cancelled), pops some cancelled ones
	if eng.Pending() != 5 {
		t.Errorf("Pending = %d after RunUntil(5), want 5", eng.Pending())
	}
	eng.Run()
	if eng.Pending() != 0 {
		t.Errorf("Pending = %d after Run, want 0", eng.Pending())
	}
}

// TestHeapCompaction cancels far more timers than it fires — the RTO
// re-arm pattern — and checks the heap sheds the dead entries while the
// surviving timers still fire in order.
func TestHeapCompaction(t *testing.T) {
	eng := NewEngine()
	var fired []float64
	var cancelled []Timer
	const n = 1000
	for i := 0; i < n; i++ {
		at := float64(i + 1)
		if i%10 == 0 {
			eng.At(at, func() { fired = append(fired, at) })
			continue
		}
		cancelled = append(cancelled, eng.At(at, func() { t.Errorf("cancelled timer at %v fired", at) }))
	}
	for _, tm := range cancelled {
		tm.Cancel()
	}
	// Compaction must have dropped the dead entries from the heap.
	if got := len(eng.heap); got > n/5 {
		t.Errorf("heap holds %d entries after mass cancel, want ≤ %d", got, n/5)
	}
	if eng.Pending() != n/10 {
		t.Errorf("Pending = %d, want %d", eng.Pending(), n/10)
	}
	eng.Run()
	if len(fired) != n/10 {
		t.Fatalf("fired %d events, want %d", len(fired), n/10)
	}
	if !sort.Float64sAreSorted(fired) {
		t.Errorf("post-compaction events fired out of order")
	}
}

// TestCompactionPreservesFIFO checks that compaction keeps the
// same-instant FIFO guarantee the engine's determinism rests on.
func TestCompactionPreservesFIFO(t *testing.T) {
	eng := NewEngine()
	var fired []int
	var cancelled []Timer
	for i := 0; i < 200; i++ {
		i := i
		eng.At(5, func() { fired = append(fired, i) })
		cancelled = append(cancelled, eng.At(1, func() {}))
	}
	for _, tm := range cancelled {
		tm.Cancel()
	}
	eng.Run()
	if len(fired) != 200 {
		t.Fatalf("fired %d, want 200", len(fired))
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time events not FIFO after compaction: fired[%d] = %d", i, v)
		}
	}
}

func TestCancelledTimerNotPendingAfterPop(t *testing.T) {
	eng := NewEngine()
	tm := eng.Schedule(1, func() {})
	eng.Schedule(2, func() {})
	tm.Cancel()
	eng.Run()
	if tm.Pending() {
		t.Error("cancelled timer still reports pending after run")
	}
	if tm.Cancel() {
		t.Error("re-cancel of dead timer reported true")
	}
}

func TestProcessedSince(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 5; i++ {
		eng.Schedule(float64(i), func() {})
	}
	eng.RunUntil(2)
	mark := eng.Processed()
	if n := eng.ProcessedSince(mark); n != 0 {
		t.Errorf("ProcessedSince(now) = %d, want 0", n)
	}
	eng.Run()
	if n := eng.ProcessedSince(mark); n != 2 {
		t.Errorf("ProcessedSince = %d, want 2", n)
	}
}

func TestProcessedCount(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 7; i++ {
		eng.Schedule(float64(i), func() {})
	}
	eng.Run()
	if eng.Processed() != 7 {
		t.Errorf("processed %d, want 7", eng.Processed())
	}
}

// TestEventOrderProperty: for any set of non-negative delays, execution
// order is non-decreasing in time.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		eng := NewEngine()
		var fired []float64
		for _, r := range raw {
			d := float64(r) / 100
			eng.Schedule(d, func() { fired = append(fired, d) })
		}
		eng.Run()
		return len(fired) == len(raw) && sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	f1 := parent.Fork()
	f2 := parent.Fork()
	same := true
	for i := 0; i < 20; i++ {
		if f1.Float64() != f2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("sibling forks produced identical streams")
	}
}

func TestExpMean(t *testing.T) {
	rng := NewRNG(1)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += rng.Exp(2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("Exp mean %.3f, want ≈2.5", mean)
	}
}

func TestParetoProperties(t *testing.T) {
	rng := NewRNG(1)
	const alpha, xm = 1.5, 2.0
	var sum float64
	const n = 500000
	for i := 0; i < n; i++ {
		v := rng.Pareto(alpha, xm)
		if v < xm {
			t.Fatalf("Pareto sample %v below scale %v", v, xm)
		}
		sum += v
	}
	// E[X] = xm·α/(α-1) = 6. The heavy tail converges slowly; allow 10%.
	mean := sum / n
	want := xm * alpha / (alpha - 1)
	if math.Abs(mean-want) > want*0.1 {
		t.Errorf("Pareto mean %.3f, want ≈%.1f", mean, want)
	}
}

func TestUniformRange(t *testing.T) {
	rng := NewRNG(3)
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		v := rng.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeriveSeedDistinctStreams(t *testing.T) {
	// Seed 0 must be as valid as any other: no stream may collapse to a
	// constant or collide with another stream's seed.
	for _, base := range []int64{0, 1, 7, -3, 1 << 40} {
		seen := map[int64]uint64{}
		for stream := uint64(0); stream < 2000; stream++ {
			s := DeriveSeed(base, stream)
			if prev, dup := seen[s]; dup {
				t.Fatalf("base %d: streams %d and %d derive the same seed %d", base, prev, stream, s)
			}
			seen[s] = stream
		}
	}
	if DeriveSeed(0, 0) == 0 {
		t.Error("DeriveSeed(0, 0) is 0; zero seed not scrambled")
	}
	if DeriveSeed(0, 1) == DeriveSeed(1, 1) {
		t.Error("different base seeds derive identical stream seeds")
	}
}
