package sim

import (
	"math"
	"math/rand"
)

// RNG wraps a seeded pseudo-random source with the distributions the
// simulator needs. Each traffic source and path owns its own RNG stream so
// component behaviour is independent of evaluation order.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// DeriveSeed mixes a base seed with a stream identifier through the
// splitmix64 finalizer, yielding decorrelated per-stream seeds. Unlike
// additive schemes (seed + constant), every base seed — including 0 —
// produces a distinct, well-scrambled seed per stream, and no two
// (seed, stream) pairs collide by simple arithmetic coincidence.
func DeriveSeed(seed int64, stream uint64) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) ^ stream))
}

// splitmix64 is the finalizer of the SplitMix64 generator (Steele et al.),
// a strong 64-bit avalanche mix.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Fork derives an independent child stream. Successive calls yield distinct
// streams; forking does not perturb the parent beyond one draw.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponential sample with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Normal returns a normal sample with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return g.r.NormFloat64()*stddev + mean
}

// Pareto returns a Pareto sample with shape alpha and scale xm (minimum
// value). For alpha <= 1 the distribution has infinite mean; callers that
// need a finite mean should pass alpha > 1.
func (g *RNG) Pareto(alpha, xm float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }
