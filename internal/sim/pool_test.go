package sim

import (
	"sort"
	"testing"
)

// TestStaleHandleAfterFire: once a timer fires, its arena node is recycled
// for later events. The fired timer's handle must become inert — Cancel
// and Pending report false — and must NOT reach through to whichever new
// timer now occupies the slot.
func TestStaleHandleAfterFire(t *testing.T) {
	eng := NewEngine()
	fired := 0
	t1 := eng.Schedule(1, func() { fired++ })
	eng.Run()
	if fired != 1 {
		t.Fatalf("timer did not fire")
	}
	if t1.Pending() {
		t.Error("fired timer reports pending")
	}
	if t1.Cancel() {
		t.Error("Cancel on fired timer reported true")
	}

	// The next schedule reuses t1's node (single-timer workload).
	t2 := eng.Schedule(1, func() { fired++ })
	if !t2.Pending() {
		t.Fatal("fresh timer not pending")
	}
	// The stale handle must not cancel (or otherwise perturb) the new
	// occupant of the recycled slot.
	if t1.Cancel() {
		t.Error("stale handle cancelled a recycled timer")
	}
	if t1.Pending() {
		t.Error("stale handle sees the recycled timer as its own")
	}
	eng.Run()
	if fired != 2 {
		t.Errorf("recycled-slot timer killed by stale handle: fired=%d, want 2", fired)
	}
}

// TestStaleHandleAfterCancelAndDrain: a cancelled timer's node is recycled
// once its dead heap entry is popped (or compacted away). The old handle
// must stay inert across the reuse, and re-Cancel must keep reporting
// false rather than double-decrementing the engine's cancel bookkeeping.
func TestStaleHandleAfterCancelAndDrain(t *testing.T) {
	eng := NewEngine()
	t1 := eng.Schedule(1, func() { t.Error("cancelled timer fired") })
	eng.Schedule(2, func() {})
	if !t1.Cancel() {
		t.Fatal("first cancel failed")
	}
	eng.Run() // pops the dead entry, node goes to the free list

	fired := false
	t2 := eng.Schedule(1, func() { fired = true })
	if t1.Cancel() {
		t.Error("stale cancelled handle re-cancelled after node reuse")
	}
	if t1.Pending() {
		t.Error("stale cancelled handle pending after node reuse")
	}
	if !t2.Pending() {
		t.Error("recycled timer not pending")
	}
	eng.Run()
	if !fired {
		t.Error("recycled timer did not fire")
	}
}

// TestZeroTimerInert: the zero Timer is a valid inert handle.
func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Cancel() {
		t.Error("zero Timer Cancel reported true")
	}
	if tm.Pending() {
		t.Error("zero Timer reports pending")
	}
	if tm.Time() != 0 {
		t.Error("zero Timer Time non-zero")
	}
}

// TestFreeListRecyclesNodes: a schedule→fire→schedule loop must not grow
// the arena beyond the live set — the free list, not the allocator, feeds
// steady-state scheduling.
func TestFreeListRecyclesNodes(t *testing.T) {
	eng := NewEngine()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < 10000 {
			eng.Schedule(0.001, fn)
		}
	}
	eng.Schedule(0.001, fn)
	eng.Run()
	if n != 10000 {
		t.Fatalf("ran %d events", n)
	}
	if got := len(eng.nodes); got > 4 {
		t.Errorf("arena grew to %d nodes for a 1-live-timer workload", got)
	}
}

// TestCompactionFreesCancelledNodes: maybeCompact must return the dead
// entries' nodes to the free list (cancellation feeds the recycler, not
// just firing), and the compacted heap must still fire survivors in order.
func TestCompactionFreesCancelledNodes(t *testing.T) {
	eng := NewEngine()
	var fired []float64
	var doomed []Timer
	const n = 2000
	for i := 0; i < n; i++ {
		at := float64(i + 1)
		if i%10 == 0 {
			eng.At(at, func() { fired = append(fired, at) })
			continue
		}
		doomed = append(doomed, eng.At(at, func() { t.Errorf("cancelled timer at %v fired", at) }))
	}
	for _, tm := range doomed {
		tm.Cancel()
	}
	if got := len(eng.heap); got > n/5 {
		t.Errorf("heap holds %d entries after mass cancel, want ≤ %d", got, n/5)
	}
	if got := len(eng.free); got < n/2 {
		t.Errorf("free list has %d nodes after compaction, want ≥ %d (cancelled nodes not recycled)", got, n/2)
	}
	// Handles into compacted-away nodes must be inert even after the slots
	// are re-issued to new timers.
	reused := 0
	for i := 0; i < n/2; i++ {
		eng.At(5000+float64(i), func() {}) // repopulates from the free list
		reused++
	}
	for _, tm := range doomed {
		if tm.Cancel() || tm.Pending() {
			t.Fatal("handle of compacted timer resurrected after slot reuse")
		}
	}
	eng.RunUntil(4999)
	if len(fired) != n/10 {
		t.Fatalf("fired %d events, want %d", len(fired), n/10)
	}
	if !sort.Float64sAreSorted(fired) {
		t.Error("post-compaction events fired out of order")
	}
	if eng.Pending() != reused {
		t.Errorf("Pending = %d, want %d", eng.Pending(), reused)
	}
}

// TestCancelHeavyChurn is the RTO re-arm pattern at scale: every event
// schedules a far-future timer and cancels the previous one. The heap and
// arena must stay bounded and the live timers must keep firing in order.
func TestCancelHeavyChurn(t *testing.T) {
	eng := NewEngine()
	var last Timer
	n := 0
	var tick func()
	tick = func() {
		n++
		last.Cancel()
		last = eng.Schedule(1000, func() { t.Error("RTO fired") })
		if n < 50000 {
			eng.Schedule(0.01, tick)
		}
	}
	eng.Schedule(0.01, tick)
	eng.RunUntil(999)
	if n != 50000 {
		t.Fatalf("ran %d ticks", n)
	}
	last.Cancel()
	if got := len(eng.heap); got > 256 {
		t.Errorf("heap grew to %d entries under cancel churn", got)
	}
	if got := len(eng.nodes); got > 512 {
		t.Errorf("arena grew to %d nodes under cancel churn", got)
	}
	eng.Run()
}
