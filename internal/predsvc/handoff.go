package predsvc

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"repro/internal/predsvc/cluster"
)

// Shard handoff moves per-path predictor sessions between nodes when the
// cluster's membership changes, over two streaming endpoints plus a
// cleanup step:
//
//	POST /v1/sessions/export  {"nodes":[...], "self":"..."}  → NDJSON stream of HandoffRecords + trailer
//	POST /v1/sessions/import  NDJSON stream of HandoffRecords + trailer
//	POST /v1/sessions/drop    {"nodes":[...], "self":"..."}  → delete paths the new map assigns elsewhere
//
// Export answers "give me every path I no longer own under this cluster
// map": the caller supplies the NEW membership and the exporting node's
// own URL, and every session whose rendezvous owner is not self streams
// out as a checksummed record. A node absent from the new membership owns
// nothing and exports everything — how a node leaves the cluster.
//
// Import is last-writer-wins on observation count and never merges: a
// record lands only when it has strictly more observations than the
// resident session, which makes a retried import (after a mid-transfer
// kill, a partial apply, or a crashed orchestrator) idempotent — already
// applied records skip, missing ones land, nothing double-counts.
//
// Drop is the only destructive step and is issued by the orchestrator
// (cmd/predctl rebalance) strictly after every import for the exported
// paths succeeded, so a kill anywhere between export and drop loses
// nothing: the paths still live on the source and the next attempt
// re-exports them.

// HandoffRecord is one line of the session-handoff NDJSON stream: either
// a session record (Path/Observations/State/Sum) or the final trailer
// (Trailer/Count/Sum). State is the session's PathSnapshot JSON — the
// same snapshot-v2 codec the registry snapshot and the spill log use —
// and Sum its sha256. The trailer's Sum chains the record checksums in
// stream order, so a truncated or reordered stream is detected before
// the importer trusts it.
type HandoffRecord struct {
	Path         string          `json:"path,omitempty"`
	Observations uint64          `json:"observations,omitempty"`
	State        json.RawMessage `json:"state,omitempty"`
	Sum          string          `json:"sum,omitempty"`

	Trailer bool `json:"trailer,omitempty"`
	Count   int  `json:"count,omitempty"`
}

// ClusterViewRequest carries a cluster membership view: the node URLs
// the rendezvous map is built from, plus the receiving node's own URL
// (as the caller addresses it — ownership is computed on these exact
// strings). Self need not appear in Nodes: a node missing from the new
// membership owns no paths under it.
type ClusterViewRequest struct {
	Nodes []string `json:"nodes"`
	Self  string   `json:"self"`
}

// SessionsImportResponse reports how an import stream fared.
type SessionsImportResponse struct {
	// Imported counts records applied (installed or replaced).
	Imported int `json:"imported"`
	// Skipped counts records dropped by last-writer-wins: the resident
	// session already had at least as many observations.
	Skipped int `json:"skipped"`
}

// SessionsDropResponse reports what /v1/sessions/drop removed.
type SessionsDropResponse struct {
	Dropped   int `json:"dropped"`
	Remaining int `json:"remaining"`
}

// maxHandoffBytes bounds an import stream; whole-registry transfers run
// far past the 1 MiB request cap of the point endpoints.
const maxHandoffBytes = 1 << 30

// handoffFlushEvery is how many export records are written between
// explicit flushes, bounding how much of the stream a mid-transfer kill
// can hold back in buffers.
const handoffFlushEvery = 64

func decodeClusterView(w http.ResponseWriter, req *http.Request) (*cluster.Map, string, bool) {
	var body ClusterViewRequest
	if err := decodeBody(w, req, &body); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, "", false
	}
	if len(body.Nodes) == 0 {
		writeError(w, http.StatusBadRequest, "missing nodes")
		return nil, "", false
	}
	if body.Self == "" {
		writeError(w, http.StatusBadRequest, "missing self")
		return nil, "", false
	}
	return cluster.New(body.Nodes...), body.Self, true
}

// handleSessionsExport streams every session the supplied cluster map
// assigns away from self, as checksummed NDJSON records closed by a
// chained-checksum trailer. The stream is produced in sorted path order,
// so two exports against the same registry state are byte-identical. An
// injected fault at SiteHandoffExport aborts the stream mid-way without
// a trailer — the importer must treat such a stream as void.
func (r *Server) handleSessionsExport(w http.ResponseWriter, req *http.Request) int {
	m, self, ok := decodeClusterView(w, req)
	if !ok {
		return http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(w)
	chain := sha256.New()
	count := 0
	for _, path := range r.reg.Paths() {
		if m.Node(path) == self {
			continue // still ours under the new map
		}
		if err := r.cfg.Faults.Check(SiteHandoffExport); err != nil {
			// Mid-transfer kill: stop without a trailer. The client sees a
			// truncated stream and retries; nothing was deleted here.
			bw.Flush()
			return http.StatusOK
		}
		sess, ok := r.reg.Peek(path)
		if !ok {
			continue // concurrently deleted
		}
		state, err := json.Marshal(sess.snapshot())
		if err != nil {
			continue
		}
		sum := sha256.Sum256(state)
		chain.Write(sum[:])
		rec, err := json.Marshal(HandoffRecord{
			Path:         path,
			Observations: sess.Observations(),
			State:        state,
			Sum:          hex.EncodeToString(sum[:]),
		})
		if err != nil {
			continue
		}
		bw.Write(rec)
		bw.WriteByte('\n')
		count++
		r.metrics.handoffExported.Add(1)
		if count%handoffFlushEvery == 0 {
			bw.Flush()
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
	}
	trailer, _ := json.Marshal(HandoffRecord{
		Trailer: true,
		Count:   count,
		Sum:     hex.EncodeToString(chain.Sum(nil)),
	})
	bw.Write(trailer)
	bw.WriteByte('\n')
	bw.Flush()
	return http.StatusOK
}

// handleSessionsImport applies a handoff stream. Records are verified
// (per-record sha256, then the trailer's chained sum and count) and
// applied last-writer-wins: a record installs only when it carries
// strictly more observations than the resident session. Failures may
// leave a prefix of the stream applied — by LWW that is safe, and the
// orchestrator simply replays the stream. An injected fault at
// SiteHandoffImport fails the request mid-batch to exercise exactly that
// path.
func (r *Server) handleSessionsImport(w http.ResponseWriter, req *http.Request) int {
	br := bufio.NewReader(http.MaxBytesReader(w, req.Body, maxHandoffBytes))
	var resp SessionsImportResponse
	chain := sha256.New()
	seen := 0
	for {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 && err != nil {
			if errors.Is(err, io.EOF) {
				return writeError(w, http.StatusBadRequest, "truncated handoff stream: no trailer after %d records", seen)
			}
			return writeError(w, http.StatusBadRequest, "reading handoff stream: %v", err)
		}
		var rec HandoffRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return writeError(w, http.StatusBadRequest, "bad handoff record %d: %v", seen, err)
		}
		if rec.Trailer {
			if rec.Count != seen {
				return writeError(w, http.StatusBadRequest, "handoff trailer count %d, stream carried %d records", rec.Count, seen)
			}
			if got := hex.EncodeToString(chain.Sum(nil)); got != rec.Sum {
				return writeError(w, http.StatusBadRequest, "handoff stream checksum mismatch")
			}
			return writeJSON(w, http.StatusOK, resp)
		}
		if err := r.cfg.Faults.Check(SiteHandoffImport); err != nil {
			// Mid-batch failure with a prefix applied: safe, the retry's
			// already-applied records skip via last-writer-wins.
			return writeError(w, http.StatusInternalServerError, "injected fault: %v", err)
		}
		sum := sha256.Sum256(rec.State)
		if hex.EncodeToString(sum[:]) != rec.Sum {
			return writeError(w, http.StatusBadRequest, "handoff record %d (%s): state checksum mismatch", seen, rec.Path)
		}
		chain.Write(sum[:])
		seen++
		var ps PathSnapshot
		if err := json.Unmarshal(rec.State, &ps); err != nil {
			return writeError(w, http.StatusBadRequest, "handoff record %d (%s): bad state: %v", seen, rec.Path, err)
		}
		if ps.Path != rec.Path {
			return writeError(w, http.StatusBadRequest, "handoff record %d: path %q carries state for %q", seen, rec.Path, ps.Path)
		}
		if existing, ok := r.reg.Peek(rec.Path); ok && existing.Observations() >= rec.Observations {
			resp.Skipped++
			r.metrics.handoffSkipped.Add(1)
			continue
		}
		r.reg.Install(ps)
		resp.Imported++
		r.metrics.handoffImported.Add(1)
	}
}

// handleSessionsDrop deletes every session the supplied cluster map
// assigns away from self — the final step of a handoff, issued by the
// orchestrator only after the new owners confirmed their imports.
// Idempotent: a repeat finds nothing left to drop.
func (r *Server) handleSessionsDrop(w http.ResponseWriter, req *http.Request) int {
	m, self, ok := decodeClusterView(w, req)
	if !ok {
		return http.StatusBadRequest
	}
	var resp SessionsDropResponse
	for _, path := range r.reg.Paths() {
		if m.Node(path) == self {
			continue
		}
		if r.reg.Delete(path) {
			resp.Dropped++
			r.metrics.handoffDropped.Add(1)
		}
	}
	resp.Remaining = r.reg.Len()
	return writeJSON(w, http.StatusOK, resp)
}
