package predsvc

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/predsvc/cluster"
)

// handoffPair spins up two in-process servers and seeds the first with
// paths carrying a few observations each.
func handoffPair(t *testing.T, srcCfg, dstCfg Config) (src, dst *Server, srcURL, dstURL string) {
	t.Helper()
	src = NewServer(srcCfg)
	dst = NewServer(dstCfg)
	tsSrc := httptest.NewServer(src.Handler())
	tsDst := httptest.NewServer(dst.Handler())
	t.Cleanup(tsSrc.Close)
	t.Cleanup(tsDst.Close)
	return src, dst, tsSrc.URL, tsDst.URL
}

func seedPaths(t *testing.T, url string, n, obs int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for j := 0; j < obs; j++ {
			resp, data := postJSON(t, url+"/v1/observe",
				fmt.Sprintf(`{"path":"h%03d","throughput_bps":%g}`, i, 1e7+float64(i*obs+j)*1e4))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed observe: %d %s", resp.StatusCode, data)
			}
		}
	}
}

// predictBodies captures the raw /v1/predict response per path — the
// byte-identical currency the handoff must preserve.
func predictBodies(t *testing.T, url string, paths []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(paths))
	for _, p := range paths {
		resp, data := getJSON(t, url+"/v1/predict?path="+p)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %s: %d %s", p, resp.StatusCode, data)
		}
		out[p] = string(data)
	}
	return out
}

// TestRebalanceMovesEverySession: a node leaving the cluster (absent from
// To) hands every session to the survivor, with predictor state preserved
// to the byte and the source left empty.
func TestRebalanceMovesEverySession(t *testing.T) {
	src, dst, srcURL, dstURL := handoffPair(t, Config{}, Config{})
	const paths = 40
	seedPaths(t, srcURL, paths, 4)
	want := predictBodies(t, srcURL, src.Registry().Paths())

	rep, err := Rebalance(context.Background(), RebalanceConfig{
		From: []string{srcURL},
		To:   []string{dstURL},
	})
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if rep.Moved != paths || rep.Imported != paths || rep.Skipped != 0 || rep.Dropped != paths || rep.Retries != 0 {
		t.Fatalf("report %+v, want %d moved+imported+dropped, no skips/retries", rep, paths)
	}
	if n := src.Registry().Len(); n != 0 {
		t.Fatalf("source still holds %d sessions after drop", n)
	}
	if n := dst.Registry().Len(); n != paths {
		t.Fatalf("destination holds %d sessions, want %d", n, paths)
	}
	for p, body := range predictBodies(t, dstURL, dst.Registry().Paths()) {
		if body != want[p] {
			t.Fatalf("prediction for %s changed across handoff:\n  src %s\n  dst %s", p, want[p], body)
		}
	}
	m := dst.Metrics().Snapshot()
	if m.HandoffImported != paths {
		t.Fatalf("destination handoff_imported = %d, want %d", m.HandoffImported, paths)
	}
}

// TestRebalanceRetriesExportKill: a mid-transfer kill of the export
// stream (no trailer) voids the attempt; the orchestrator's retry
// completes the move with nothing lost or doubled.
func TestRebalanceRetriesExportKill(t *testing.T) {
	srcCfg := Config{Faults: faultinject.New(1, faultinject.Rule{
		Site: SiteHandoffExport, Every: 1, After: 5, Times: 1,
	})}
	src, dst, srcURL, dstURL := handoffPair(t, srcCfg, Config{})
	const paths = 24
	seedPaths(t, srcURL, paths, 3)
	want := predictBodies(t, srcURL, src.Registry().Paths())

	rep, err := Rebalance(context.Background(), RebalanceConfig{
		From: []string{srcURL},
		To:   []string{dstURL},
	})
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if rep.Retries == 0 {
		t.Fatal("export kill did not force a retry — the fault never fired")
	}
	if rep.Moved != paths || src.Registry().Len() != 0 || dst.Registry().Len() != paths {
		t.Fatalf("after retry: report %+v, src=%d dst=%d; want all %d moved",
			rep, src.Registry().Len(), dst.Registry().Len(), paths)
	}
	for p, body := range predictBodies(t, dstURL, dst.Registry().Paths()) {
		if body != want[p] {
			t.Fatalf("prediction for %s corrupted by the killed-and-retried export", p)
		}
	}
}

// TestRebalanceRetriesImportFault: the first import 500s mid-batch with a
// prefix applied; the retried pass skips that prefix via last-writer-wins
// and lands the rest — idempotence under partial application.
func TestRebalanceRetriesImportFault(t *testing.T) {
	dstCfg := Config{Faults: faultinject.New(1, faultinject.Rule{
		Site: SiteHandoffImport, Every: 1, After: 5, Times: 1,
	})}
	src, dst, srcURL, dstURL := handoffPair(t, Config{}, dstCfg)
	const paths = 24
	seedPaths(t, srcURL, paths, 3)

	rep, err := Rebalance(context.Background(), RebalanceConfig{
		From: []string{srcURL},
		To:   []string{dstURL},
	})
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if rep.Retries == 0 {
		t.Fatal("import fault did not force a retry")
	}
	if rep.Skipped != 5 || rep.Imported != paths-5 {
		t.Fatalf("report %+v: want the 5 pre-fault records skipped on retry and %d imported", rep, paths-5)
	}
	if src.Registry().Len() != 0 || dst.Registry().Len() != paths {
		t.Fatalf("src=%d dst=%d after retried import, want 0/%d",
			src.Registry().Len(), dst.Registry().Len(), paths)
	}
	for _, p := range dst.Registry().Paths() {
		sess, _ := dst.Registry().Peek(p)
		if sess.Observations() != 3 {
			t.Fatalf("path %s has %d observations after retry, want 3 (no double-count, no loss)",
				p, sess.Observations())
		}
	}
}

// TestImportLastWriterWins: a record lands only with strictly more
// observations than the resident session — stale and equal-age records
// skip, newer ones replace.
func TestImportLastWriterWins(t *testing.T) {
	_, dst, _, dstURL := handoffPair(t, Config{}, Config{})

	// Resident session: 5 observations.
	for i := 0; i < 5; i++ {
		postJSON(t, dstURL+"/v1/observe", `{"path":"p","throughput_bps":1e7}`)
	}
	mkRecord := func(obs int) []HandoffRecord {
		donor := NewServer(Config{})
		sess := donor.Registry().GetOrCreate("p")
		for i := 0; i < obs; i++ {
			sess.Observe(2e7)
		}
		state, err := json.Marshal(sess.snapshot())
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(state)
		return []HandoffRecord{{
			Path:         "p",
			Observations: sess.Observations(),
			State:        state,
			Sum:          hex.EncodeToString(sum[:]),
		}}
	}
	hc := &http.Client{}
	for _, tc := range []struct {
		obs                   int
		wantImported, wantObs int
	}{
		{obs: 3, wantImported: 0, wantObs: 5}, // stale: skip
		{obs: 5, wantImported: 0, wantObs: 5}, // tie: skip (>= keeps resident)
		{obs: 8, wantImported: 1, wantObs: 8}, // newer: replace wholesale
	} {
		imp, skp, err := importSessions(context.Background(), hc, dstURL, mkRecord(tc.obs))
		if err != nil {
			t.Fatalf("import (%d obs): %v", tc.obs, err)
		}
		if imp != tc.wantImported || imp+skp != 1 {
			t.Fatalf("import (%d obs): imported=%d skipped=%d, want imported=%d", tc.obs, imp, skp, tc.wantImported)
		}
		sess, _ := dst.Registry().Peek("p")
		if got := int(sess.Observations()); got != tc.wantObs {
			t.Fatalf("import (%d obs): resident has %d observations, want %d — LWW must replace, never merge",
				tc.obs, got, tc.wantObs)
		}
	}
}

// TestImportRejectsCorruptStreams: missing trailers, count mismatches and
// checksum damage are all 400s — an importer never trusts a stream it
// cannot verify.
func TestImportRejectsCorruptStreams(t *testing.T) {
	_, _, _, dstURL := handoffPair(t, Config{}, Config{})

	donor := NewServer(Config{})
	sess := donor.Registry().GetOrCreate("q")
	sess.Observe(1e7)
	state, _ := json.Marshal(sess.snapshot())
	sum := sha256.Sum256(state)
	rec, _ := json.Marshal(HandoffRecord{
		Path: "q", Observations: 1, State: state, Sum: hex.EncodeToString(sum[:]),
	})
	goodTrailer, _ := json.Marshal(HandoffRecord{
		Trailer: true, Count: 1, Sum: func() string {
			h := sha256.New()
			h.Write(sum[:])
			return hex.EncodeToString(h.Sum(nil))
		}(),
	})
	cases := []struct {
		name string
		body []byte
	}{
		{"no trailer", append(append([]byte{}, rec...), '\n')},
		{"trailer count mismatch", []byte(string(rec) + "\n" + `{"trailer":true,"count":7,"sum":"00"}` + "\n")},
		{"trailer chain mismatch", []byte(string(rec) + "\n" + `{"trailer":true,"count":1,"sum":"deadbeef"}` + "\n")},
		{"record checksum mismatch", []byte(string(bytes.Replace(rec, []byte(`"sum":"`), []byte(`"sum":"00`), 1)) + "\n" + string(goodTrailer) + "\n")},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, dstURL+"/v1/sessions/import", string(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, data)
		}
	}
	// The intact stream still lands, proving the fixture itself is valid.
	resp, data := postJSON(t, dstURL+"/v1/sessions/import", string(rec)+"\n"+string(goodTrailer)+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid stream rejected: %d %s", resp.StatusCode, data)
	}
}

// TestSessionsDropOnlyDisowned: drop removes exactly the paths the
// supplied map assigns elsewhere, and a repeat finds nothing.
func TestSessionsDropOnlyDisowned(t *testing.T) {
	src, _, srcURL, _ := handoffPair(t, Config{}, Config{})
	const paths = 60
	seedPaths(t, srcURL, paths, 1)

	view, _ := json.Marshal(ClusterViewRequest{Nodes: []string{srcURL, "http://elsewhere:1"}, Self: srcURL})
	resp, data := postJSON(t, srcURL+"/v1/sessions/drop", string(view))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drop: %d %s", resp.StatusCode, data)
	}
	var dr SessionsDropResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Dropped == 0 || dr.Dropped == paths {
		t.Fatalf("dropped %d of %d — a two-node map must disown a strict subset", dr.Dropped, paths)
	}
	if dr.Remaining != paths-dr.Dropped || src.Registry().Len() != dr.Remaining {
		t.Fatalf("drop accounting: %+v vs registry %d", dr, src.Registry().Len())
	}
	// Every survivor is one the map says we own.
	m := cluster.New(srcURL, "http://elsewhere:1")
	for _, p := range src.Registry().Paths() {
		if m.Node(p) != srcURL {
			t.Fatalf("surviving path %s is owned by %s, should have been dropped", p, m.Node(p))
		}
	}
	// Idempotent: nothing left to drop.
	_, data = postJSON(t, srcURL+"/v1/sessions/drop", string(view))
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Dropped != 0 {
		t.Fatalf("second drop removed %d paths", dr.Dropped)
	}
}

// TestResizeMidLoadDigestEquality is the tentpole invariant in-process: a
// 2→3 resize halfway through a replayed load must leave the predict
// stream byte-identical to a single node replaying the same phases, with
// zero paths lost and every path on exactly one node.
func TestResizeMidLoadDigestEquality(t *testing.T) {
	const (
		nPaths   = 24
		epochs   = 12
		boundary = 6
		seed     = 5
	)
	// SyntheticSeries is prefix-stable: the first `boundary` epochs of the
	// full series equal a shorter generation, so the two phases replay the
	// exact requests of one continuous run.
	phase1 := SyntheticSeries(nPaths, boundary, seed)
	full := SyntheticSeries(nPaths, epochs, seed)

	replay := func(t *testing.T, cfg LoadConfig, series []PathSeries) string {
		t.Helper()
		rep, err := Replay(context.Background(), cfg, series)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if rep.Errors > 0 {
			t.Fatalf("replay: %d errors", rep.Errors)
		}
		return rep.Digest
	}

	// Reference: one node, the same two phases back to back.
	ref := NewServer(Config{Shards: 4, Capacity: 1024})
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()
	refD1 := replay(t, LoadConfig{BaseURL: refTS.URL, Workers: 4}, phase1)
	refD2 := replay(t, LoadConfig{BaseURL: refTS.URL, Workers: 4, StartEpoch: boundary}, full)

	// Cluster: phase 1 on two nodes, rebalance to three, phase 2 on three.
	srvs := make([]*Server, 3)
	urls := make([]string, 3)
	for i := range srvs {
		srvs[i] = NewServer(Config{Shards: 4, Capacity: 1024})
		ts := httptest.NewServer(srvs[i].Handler())
		defer ts.Close()
		urls[i] = ts.URL
	}
	d1 := replay(t, LoadConfig{Cluster: urls[:2], Workers: 4}, phase1)
	if d1 != refD1 {
		t.Fatalf("phase-1 digest diverged:\n  1-node %s\n  2-node %s", refD1, d1)
	}
	rep, err := Rebalance(context.Background(), RebalanceConfig{From: urls[:2], To: urls})
	if err != nil {
		t.Fatalf("rebalance 2→3: %v", err)
	}
	if rep.Moved == 0 {
		t.Fatal("resize moved nothing — the new node owns no paths")
	}
	d2 := replay(t, LoadConfig{Cluster: urls, Workers: 4, StartEpoch: boundary}, full)
	if d2 != refD2 {
		t.Fatalf("phase-2 digest diverged after the resize:\n  1-node %s\n  3-node %s", refD2, d2)
	}

	// Zero lost paths, disjoint ownership, and the joiner actually serves.
	seen := map[string]int{}
	total := 0
	for _, s := range srvs {
		total += s.Registry().Len()
		for _, p := range s.Registry().Paths() {
			seen[p]++
		}
	}
	if total != nPaths || len(seen) != nPaths {
		t.Fatalf("cluster holds %d sessions over %d paths, want %d — paths lost or duplicated", total, len(seen), nPaths)
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("path %s lives on %d nodes after resize", p, n)
		}
	}
	if srvs[2].Registry().Len() == 0 {
		t.Fatal("the joining node received no paths")
	}
}
