package predsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// The wire fastpath's correctness story: every request a client can send
// is served byte-identically by the fastpath and by the encoding/json
// oracle (Config.DisableFastpath). The one sanctioned divergence is the
// message text inside "bad request body: ..." 400s, where the oracle
// leaks encoding/json's internal wording — status codes still must
// match, and every 2xx body, every semantic error (missing path, invalid
// inputs, batch cap) and every 5xx is compared byte for byte.

// compatPair drives the same request through both servers and compares.
type compatPair struct {
	t      *testing.T
	fast   *Server
	oracle *Server
}

func newCompatPair(t *testing.T, cfg Config) *compatPair {
	t.Helper()
	fastCfg := cfg
	fastCfg.DisableFastpath = false
	oracleCfg := cfg
	oracleCfg.DisableFastpath = true
	fast, err := Open(fastCfg)
	if err != nil {
		t.Fatalf("open fast server: %v", err)
	}
	oracle, err := Open(oracleCfg)
	if err != nil {
		t.Fatalf("open oracle server: %v", err)
	}
	t.Cleanup(func() { fast.Close(); oracle.Close() })
	return &compatPair{t: t, fast: fast, oracle: oracle}
}

func serveOne(s *Server, method, target string, body []byte) *httptest.ResponseRecorder {
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, target, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// parseErrDivergenceOK reports whether differing bodies are the
// sanctioned parse-error case.
func parseErrDivergenceOK(status int, fastBody, oracleBody []byte) bool {
	const pfx = `{"error":"bad request body:`
	return status == http.StatusBadRequest &&
		bytes.HasPrefix(fastBody, []byte(pfx)) &&
		bytes.HasPrefix(oracleBody, []byte(pfx))
}

func (cp *compatPair) do(method, target string, body []byte) {
	cp.t.Helper()
	fw := serveOne(cp.fast, method, target, body)
	ow := serveOne(cp.oracle, method, target, body)
	if fw.Code != ow.Code {
		cp.t.Fatalf("%s %s body=%q: fastpath status %d, oracle %d\nfast: %s\noracle: %s",
			method, target, truncate(body), fw.Code, ow.Code, fw.Body.Bytes(), ow.Body.Bytes())
	}
	fb, ob := fw.Body.Bytes(), ow.Body.Bytes()
	if !bytes.Equal(fb, ob) && !parseErrDivergenceOK(fw.Code, fb, ob) {
		cp.t.Fatalf("%s %s body=%q: response bodies diverge (status %d)\nfast:   %q\noracle: %q",
			method, target, truncate(body), fw.Code, fb, ob)
	}
	if fct, oct := fw.Header().Get("Content-Type"), ow.Header().Get("Content-Type"); fct != oct {
		cp.t.Fatalf("%s %s: Content-Type diverges: fast %q, oracle %q", method, target, fct, oct)
	}
}

func truncate(b []byte) string {
	if len(b) > 200 {
		return string(b[:200]) + "..."
	}
	return string(b)
}

// trickyPaths stresses every string-encoding edge the codec has: HTML
// escapes, control characters, multi-byte runes, JSON metacharacters,
// U+2028/U+2029, and characters needing query escaping.
var trickyPaths = []string{
	"lon-nyc",
	"a b+c",                      // spaces and plus, interesting in queries
	`quote"back\slash`,           // JSON escapes
	"html<&>path",                // HTML-escaped by encoding/json
	"tab\tnl\ncr\rbell\x07",      // control characters
	"päth-ünïcode-日本",            // multi-byte runes
	"emoji-\U0001F680",           // 4-byte rune
	"seps- - ",                   // line/paragraph separators
	"pct-%2F-enc?ode&d=x;y",      // query metacharacters
	strings.Repeat("long/", 100), // forces buffer growth
}

func observeBody(path string, tput float64) []byte {
	b, err := json.Marshal(ObserveRequest{Path: path, ThroughputBps: tput})
	if err != nil {
		panic(err)
	}
	return b
}

func measureBody(path string, rtt, loss, bw float64) []byte {
	b, err := json.Marshal(MeasureRequest{Path: path, RTTSeconds: rtt, LossRate: loss, AvailBwBps: bw})
	if err != nil {
		panic(err)
	}
	return b
}

func predictTarget(path string) string {
	return "/v1/predict?" + url.Values{"path": {path}}.Encode()
}

// TestWireCompatSequences replays a deterministic pseudo-random mix of
// observe / measure / predict / batch traffic through both servers,
// comparing every response byte for byte. This is the live-traffic half
// of the oracle equivalence proof: real predictions with full HB/FB/
// family state, quantiles, staleness flags, and every tricky path name.
func TestWireCompatSequences(t *testing.T) {
	cp := newCompatPair(t, Config{StaleAfter: 5})
	rng := rand.New(rand.NewSource(9))
	tputs := []float64{1, 0.5, 1e-7, 123456.789, 9.5e8, 1e20, 5e20, 1e21, 3.25e21, 8.125e6}
	for i := 0; i < 600; i++ {
		path := trickyPaths[rng.Intn(len(trickyPaths))]
		switch rng.Intn(6) {
		case 0, 1:
			cp.do("POST", "/v1/observe", observeBody(path, tputs[rng.Intn(len(tputs))]))
		case 2:
			cp.do("POST", "/v1/measure", measureBody(path, 0.01+rng.Float64(), rng.Float64()*0.05, 1e6+rng.Float64()*1e9))
		case 3, 4:
			cp.do("GET", predictTarget(path), nil)
		case 5:
			var batch ObserveBatchRequest
			for n := rng.Intn(5); n >= 0; n-- {
				batch.Observations = append(batch.Observations, ObserveRequest{
					Path:          trickyPaths[rng.Intn(len(trickyPaths))],
					ThroughputBps: tputs[rng.Intn(len(tputs))],
				})
			}
			body, _ := json.Marshal(batch)
			cp.do("POST", "/v1/observe-batch", body)
		}
		if i%50 == 0 {
			body, _ := json.Marshal(PredictBatchRequest{Paths: append([]string{"never-seen"}, trickyPaths...)})
			cp.do("POST", "/v1/predict-batch", body)
		}
	}
}

// TestWireCompatEdgeBodies drives hand-written request bodies — valid,
// odd, and malformed — through both servers. Where the oracle 400s on a
// parse error, the fastpath must too (message text may differ); every
// other response must match exactly.
func TestWireCompatEdgeBodies(t *testing.T) {
	cp := newCompatPair(t, Config{})

	// Seed a couple of sessions so predict endpoints have hits.
	cp.do("POST", "/v1/observe", observeBody("seeded", 1e6))
	cp.do("POST", "/v1/observe", observeBody("seeded", 2e6))

	observeCases := []string{
		// Valid with twists.
		`{"path":"seeded","throughput_bps":1e6}`,
		`{"throughput_bps":5e5,"path":"seeded"}`,                       // reordered fields
		`{"path":"dup","throughput_bps":1,"throughput_bps":2e6}`,       // duplicate key: last wins
		`{"path":"first","path":"second","throughput_bps":3e6}`,        // duplicate path
		`{"path":"esc\"quote\\back\/slash\n","throughput_bps":1e6}`,    // escape sequences in value
		`{"pa\u0074h":"esckey","throughput_bps":1e6}`,                  // escaped field name
		`{"path":"unknowns","throughput_bps":1e6,"extra":{"a":[1,2]}}`, // unknown field skipped
		`{"path":"unknowns","extra":"x y","throughput_bps":2e6}`,       // unknown before known
		`{"path":"nullt","throughput_bps":null}`,                       // null field no-ops → invalid tput
		`{"path":null,"throughput_bps":1e6}`,                           // null path → missing path
		`null`,                                                         // top-level null → zero body
		`{}`,                                                           // empty object
		`{"path":"surr\ud83d\ude00-😀","throughput_bps":1e6}`,           // escaped surrogate pair
		`{"path":"lone\ud800trail","throughput_bps":1e6}`,              // lone surrogate → U+FFFD
		`{"path":"inv` + "\xff\xfe" + `alid","throughput_bps":1e6}`,    // raw invalid UTF-8
		`{"path":"big","throughput_bps":1e309}`,                        // float overflow
		`{"path":"tiny","throughput_bps":1e-400}`,                      // float underflow → 0 → invalid
		`{"path":"neg","throughput_bps":-5}`,                           // invalid: negative
		`{"path":"zero","throughput_bps":0}`,                           // invalid: zero
		`{"path":"","throughput_bps":1e6}`,                             // empty path
		// Malformed.
		``,                          // empty body
		`   `,                       // whitespace only
		`{`, `{"path"`, `{"path":}`, // truncations
		`{"path":"a","throughput_bps":}`,
		`{"path":"a" "throughput_bps":1}`, // missing comma
		`{"path":"a",}`,                   // trailing comma
		`[{"path":"a"}]`,                  // wrong top-level type
		`"just a string"`,
		`{"path":123,"throughput_bps":1e6}`,   // wrong type for path
		`{"path":"a","throughput_bps":"1e6"}`, // wrong type for tput
		`{"path":"a","throughput_bps":NaN}`,
		`{"path":"a","throughput_bps":Infinity}`,
		`{"path":"a","throughput_bps":01}`, // bad number grammar
		`{"path":"a","throughput_bps":1.}`,
		`{"path":"a","throughput_bps":.5}`,
		`{"path":"a","throughput_bps":+1}`,
		`{"path":"bad\escape","throughput_bps":1}`,        // invalid escape
		`{"path":"ctl` + "\x01" + `","throughput_bps":1}`, // raw control char in string
		`{"path":"a","throughput_bps":1e6}garbage`,        // trailing garbage: Decoder ignores
		`{"path":"a","throughput_bps":1e6} {"second":1}`,  // second JSON value: ignored
	}
	for _, body := range observeCases {
		cp.do("POST", "/v1/observe", []byte(body))
	}

	measureCases := []string{
		`{"path":"seeded","rtt_s":0.05,"loss_rate":0.01,"avail_bw_bps":5e8}`,
		`{"path":"m2","rtt_s":0.05,"loss_rate":0,"avail_bw_bps":0}`, // zero-loss formula path
		`{"path":"m2","loss_rate":0.01,"rtt_s":0.01,"avail_bw_bps":1e9,"x":[true,null]}`,
		`{"path":"m3","rtt_s":-1,"loss_rate":0.01,"avail_bw_bps":1}`, // invalid rtt
		`{"path":"m3","rtt_s":0.1,"loss_rate":1.5,"avail_bw_bps":1}`, // invalid loss
		`{"path":"","rtt_s":0.1,"loss_rate":0.01,"avail_bw_bps":1}`,  // missing path
		`{"rtt_s":0.1}`, // missing path entirely
		`{"path":"m4","rtt_s":null,"loss_rate":null,"avail_bw_bps":null}`,
		`{"path":"m4","rtt_s":true}`, // wrong type
		`{"path":"m4",`,              // truncated
	}
	for _, body := range measureCases {
		cp.do("POST", "/v1/measure", []byte(body))
	}

	predictTargets := []string{
		"/v1/predict?path=seeded",
		"/v1/predict?path=never-seen",             // 404
		"/v1/predict",                             // missing param
		"/v1/predict?path=",                       // empty value
		"/v1/predict?other=x&path=seeded",         // later pair
		"/v1/predict?path=seeded&path=never-seen", // first wins
		"/v1/predict?path=se%65ded",               // percent-escaped value
		"/v1/predict?pa%74h=seeded",               // percent-escaped key
		"/v1/predict?path=bad%zzesc",              // invalid escape: pair skipped
		"/v1/predict?path=bad%zzesc&path=seeded",  // invalid then valid
		"/v1/predict?path=a;b",                    // semicolon: pair skipped
		"/v1/predict?path=a;b&path=seeded",        // semicolon then valid
		"/v1/predict?path=se%2Beded",              // %2B is a literal plus
		"/v1/predict?path=a+b%2Bc",                // plus decodes to space
		"/v1/predict?&&path=seeded&",              // empty segments
		"/v1/predict?path",                        // key without '='
		"/v1/predict?path=seeded%",                // truncated escape
	}
	for _, target := range predictTargets {
		cp.do("GET", target, nil)
	}
}

// TestWireCompatBatches exercises the streaming batch decoders against
// the oracle's unmarshal-then-loop, including the atomicity contract: a
// batch that fails validation or the item cap must leave the registry
// untouched (proven by comparing subsequent predictions byte for byte
// between the two servers — had the fastpath applied a prefix, its
// session state would diverge).
func TestWireCompatBatches(t *testing.T) {
	cp := newCompatPair(t, Config{})

	observeBatchCases := []string{
		`{}`,
		`{"observations":null}`,
		`{"observations":[]}`,
		`{"observations":[{"path":"b1","throughput_bps":1e6}]}`,
		`{"observations":[{"path":"b1","throughput_bps":2e6},{"path":"b2","throughput_bps":3e6}]}`,
		`{"observations":[{"path":"","throughput_bps":1e6},{"path":"b1","throughput_bps":-1},{"path":"b3","throughput_bps":4e6}]}`, // mixed rejects
		`{"observations":[{"throughput_bps":1e6,"path":"b4","path":"b5"}]}`,                                                        // dup key in item
		`{"observations":[{"path":"b6","throughput_bps":1}],"observations":[{"path":"b7","throughput_bps":2e6}]}`,                  // dup batch key: only second applies
		`{"extra":1,"observations":[{"path":"b8","throughput_bps":5e6}],"trailing":[{}]}`,                                          // unknown siblings
		`{"observations":[{"path":"b9","throughput_bps":1e6},{"path":123}]}`,                                                       // type error aborts whole batch
		`{"observations":{"path":"b10"}}`,                                                                                          // wrong container type
		`{"observations":[{"path":"b11","throughput_bps":1e6},`,                                                                    // truncated
		`{"observations":[null,{"path":"b12","throughput_bps":1e6}]}`,                                                              // null item no-ops → rejected empty
	}
	for _, body := range observeBatchCases {
		cp.do("POST", "/v1/observe-batch", []byte(body))
	}

	// Over-cap batch: 4097 items, every one valid — must reject the whole
	// request and apply nothing on either server.
	var big bytes.Buffer
	big.WriteString(`{"observations":[`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			big.WriteByte(',')
		}
		fmt.Fprintf(&big, `{"path":"cap-%d","throughput_bps":1e6}`, i)
	}
	big.WriteString(`]}`)
	cp.do("POST", "/v1/observe-batch", big.Bytes())
	// cap-0 must not exist on either server (atomicity), and b1's state
	// must agree after the mixed traffic above.
	cp.do("GET", "/v1/predict?path=cap-0", nil)
	cp.do("GET", predictTarget("b1"), nil)
	cp.do("GET", predictTarget("b7"), nil)
	cp.do("GET", predictTarget("b12"), nil)

	predictBatchCases := []string{
		`{}`,
		`{"paths":null}`,
		`{"paths":[]}`,
		`{"paths":["b1"]}`,
		`{"paths":["b1","missing-1","b2","missing-2","b1"]}`,
		`{"paths":[null,"b1",""]}`,            // null and empty elements → missing
		`{"paths":["x"],"paths":["b1","b2"]}`, // dup key: last wins
		`{"paths":["html<&>miss","esc "]}`,    // missing paths needing escaping
		`{"paths":["b1",42]}`,                 // type error
		`{"paths":"b1"}`,                      // wrong container
		`{"paths":["b1"`,                      // truncated
	}
	for _, body := range predictBatchCases {
		cp.do("POST", "/v1/predict-batch", []byte(body))
	}

	var bigp bytes.Buffer
	bigp.WriteString(`{"paths":[`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			bigp.WriteByte(',')
		}
		fmt.Fprintf(&bigp, `"p-%d"`, i)
	}
	bigp.WriteString(`]}`)
	cp.do("POST", "/v1/predict-batch", bigp.Bytes())
}

// TestWireCompatOversizedBody pins the 1 MiB body cap on both paths.
func TestWireCompatOversizedBody(t *testing.T) {
	cp := newCompatPair(t, Config{})
	huge := []byte(`{"path":"` + strings.Repeat("x", maxBodyBytes+10) + `","throughput_bps":1}`)
	fw := serveOne(cp.fast, "POST", "/v1/observe", huge)
	ow := serveOne(cp.oracle, "POST", "/v1/observe", huge)
	if fw.Code != http.StatusBadRequest || ow.Code != http.StatusBadRequest {
		t.Fatalf("oversized body: fast %d, oracle %d, want both 400", fw.Code, ow.Code)
	}
	if !bytes.Equal(fw.Body.Bytes(), ow.Body.Bytes()) {
		t.Fatalf("oversized-body errors diverge:\nfast:   %q\noracle: %q", fw.Body.Bytes(), ow.Body.Bytes())
	}
}

// TestWriteErrorPreformatted pins the preformatted hot-path error bodies
// to what writeError produces for the same messages — the load-shedding
// and validation rejections must not drift from the oracle's wording.
func TestWriteErrorPreformatted(t *testing.T) {
	cases := []struct {
		pre []byte
		msg string
	}{
		{errBodyOverloaded, "overloaded: in-flight request cap reached, retry"},
		{errBodyMissingPath, "missing path"},
		{errBodyMissingPathQ, "missing path query parameter"},
		{errBodyBadThroughput, "throughput_bps must be finite and positive"},
		{errBodyBadMeasurement, "measurements must be finite and in range"},
	}
	for _, c := range cases {
		w := httptest.NewRecorder()
		writeError(w, http.StatusBadRequest, "%s", c.msg)
		if !bytes.Equal(c.pre, w.Body.Bytes()) {
			t.Errorf("preformatted body %q != writeError output %q", c.pre, w.Body.Bytes())
		}
	}
}
