package predsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/predsvc/store"
)

// Fault-injection sites understood by the server (see Config.Faults and
// internal/faultinject). A rule at SiteSnapshotWrite fails WriteSnapshot
// calls; SiteSnapshotCorrupt flips a byte in the encoded snapshot before
// it reaches disk; SiteHandlerPanic makes requests carrying
// ChaosPanicHeader panic inside the handler chain (exercising the
// recovery middleware); SiteHandlerDelay delays or fails requests at the
// front of the handler chain.
const (
	SiteSnapshotWrite   = "snapshot.write"
	SiteSnapshotCorrupt = "snapshot.corrupt"
	SiteHandlerPanic    = "handler.panic"
	SiteHandlerDelay    = "handler.delay"
	SiteHandoffExport   = "handoff.export"
	SiteHandoffImport   = "handoff.import"
)

// ChaosPanicHeader marks a request as a chaos panic probe. It is honored
// only when a fault rule is installed at SiteHandlerPanic — a production
// server without an injector serves such requests normally.
const ChaosPanicHeader = "X-Chaos-Panic"

// Server wires a Registry and Metrics behind the HTTP JSON API:
//
//	POST /v1/observe        {"path", "throughput_bps"}            → feed a transfer's achieved throughput
//	POST /v1/measure        {"path", "rtt_s", "loss_rate", "avail_bw_bps"} → install a-priori measurements
//	GET  /v1/predict?path=P                                       → forecasts + accuracy + best predictor
//	POST /v1/observe-batch  {"observations":[...]}                → feed many observations in one request
//	POST /v1/predict-batch  {"paths":[...]}                       → predictions for many paths in one request
//	GET  /v1/stats[?path=P][&limit=N]                             → service (or per-path) statistics
//	GET  /debug/vars                                              → expvar-style metrics dump
//
// Handlers are goroutine-safe; /v1/predict responses are byte-identical
// for a fixed per-path request sequence (see the package comment). The
// batch endpoints amortize connection and HTTP overhead for bulk ingest
// (cluster clients batch per node — see cmd/predload -cluster).
type Server struct {
	cfg     Config
	reg     *Registry
	metrics *Metrics
	mux     *http.ServeMux
	root    http.Handler
	sem     chan struct{} // in-flight request semaphore; nil = no shedding
	tracer  *obs.Tracer   // nil unless Config.Obs is set
	start   time.Time

	// Lifecycle state behind /healthz and /readyz. notReady is set while a
	// boot snapshot restores; draining is set by BeginDrain (SIGTERM) and
	// never cleared — a draining server only ever exits.
	notReady atomic.Bool
	draining atomic.Bool
}

// NewServer builds a server with a fresh registry. It panics when
// cfg.SpillDir is set but unusable; daemons that want that error
// surfaced cleanly use Open.
func NewServer(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds a server with a fresh registry honoring cfg.SpillDir. The
// only error source is an unusable spill directory.
func Open(cfg Config) (*Server, error) {
	reg, err := OpenRegistry(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     reg.Config(),
		reg:     reg,
		metrics: &Metrics{},
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	s.tracer = s.cfg.Obs.T()
	// Every session runs the same zoo, so a probe session supplies the
	// family names the selection counters are keyed by.
	probe := newSession("", s.cfg)
	names := make([]string, len(probe.families))
	for i, f := range probe.families {
		names[i] = f.name
	}
	s.metrics.setFamilyNames(names)
	// The hot endpoints dispatch to the zero-alloc wire fastpath
	// (wire.go) unless Config.DisableFastpath pins them to this file's
	// reflection-based oracle handlers. Both produce byte-identical
	// responses; the cold endpoints below always use the oracle.
	hObserve, hMeasure, hPredict := s.handleObserve, s.handleMeasure, s.handlePredict
	hObserveBatch, hPredictBatch := s.handleObserveBatch, s.handlePredictBatch
	if !s.cfg.DisableFastpath {
		hObserve, hMeasure, hPredict = s.handleObserveFast, s.handleMeasureFast, s.handlePredictFast
		hObserveBatch, hPredictBatch = s.handleObserveBatchFast, s.handlePredictBatchFast
	}
	s.mux.Handle("POST /v1/observe", s.instrument(epObserve, hObserve))
	s.mux.Handle("POST /v1/measure", s.instrument(epMeasure, hMeasure))
	s.mux.Handle("GET /v1/predict", s.instrument(epPredict, hPredict))
	s.mux.Handle("GET /v1/stats", s.instrument(epStats, s.handleStats))
	s.mux.Handle("GET /debug/vars", s.instrument(epVars, s.handleVars))
	s.mux.Handle("POST /v1/observe-batch", s.instrument(epObserveBatch, hObserveBatch))
	s.mux.Handle("POST /v1/predict-batch", s.instrument(epPredictBatch, hPredictBatch))
	s.mux.Handle("POST /v1/sessions/export", s.instrument(epSessionsExport, s.handleSessionsExport))
	s.mux.Handle("POST /v1/sessions/import", s.instrument(epSessionsImport, s.handleSessionsImport))
	s.mux.Handle("POST /v1/sessions/drop", s.instrument(epSessionsDrop, s.handleSessionsDrop))
	if s.cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, s.cfg.MaxInFlight)
	}
	s.root = s.harden(s.mux)
	// The health probes bypass the hardening middleware like the obs
	// endpoints: a load-shedding or draining server must still answer
	// "are you alive" (yes) and "should I route to you" (no) instantly.
	api := s.root
	s.root = http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Path {
		case "/healthz":
			writeJSON(w, http.StatusOK, healthResponse{Status: "ok"})
			return
		case "/readyz":
			s.handleReadyz(w)
			return
		}
		api.ServeHTTP(w, req)
	})
	if s.cfg.Obs != nil {
		s.RegisterObsMetrics(s.cfg.Obs.M())
		// The obs endpoints bypass the hardening middleware on purpose:
		// a scrape or a pprof grab must succeed precisely when the
		// service is overloaded enough to shed its own API traffic.
		api, obsHandler := s.root, s.cfg.Obs.Handler()
		s.root = http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			if obs.IsObsPath(req.URL.Path) {
				obsHandler.ServeHTTP(w, req)
				return
			}
			api.ServeHTTP(w, req)
		})
	}
	return s, nil
}

// harden wraps the mux with the resilience middleware, outermost first:
// semaphore-based load shedding (429 + Retry-After past MaxInFlight
// in-flight requests), panic recovery (a panicking handler produces a 500
// and a panics_recovered tick, not a dead daemon), fault-injection seams,
// and the per-request context deadline.
func (r *Server) harden(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r.sem != nil {
			select {
			case r.sem <- struct{}{}:
				defer func() { <-r.sem }()
			default:
				r.metrics.requestsShed.Add(1)
				w.Header().Set("Retry-After", "1")
				writePre(w, http.StatusTooManyRequests, errBodyOverloaded)
				return
			}
		}
		sw := &shieldWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				r.metrics.panicsRecovered.Add(1)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal panic recovered: %v", p)
				}
			}
		}()
		if req.Header.Get(ChaosPanicHeader) != "" {
			if err := r.cfg.Faults.Check(SiteHandlerPanic); err != nil {
				panic(fmt.Sprintf("chaos probe: %v", err))
			}
		}
		if err := r.cfg.Faults.Check(SiteHandlerDelay); err != nil {
			writeError(sw, http.StatusServiceUnavailable, "injected fault: %v", err)
			return
		}
		if d := r.cfg.RequestTimeout; d > 0 {
			ctx, cancel := context.WithTimeout(req.Context(), d)
			defer cancel()
			req = req.WithContext(ctx)
		}
		next.ServeHTTP(sw, req)
	})
}

// shieldWriter tracks whether a handler wrote anything, so the panic
// recovery path only emits its 500 on a virgin response.
type shieldWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *shieldWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *shieldWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers (the
// session-export stream) can push records through the middleware stack.
func (w *shieldWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// healthResponse is the /healthz body.
type healthResponse struct {
	Status string `json:"status"`
}

// readyResponse is the /readyz body.
type readyResponse struct {
	Ready     bool `json:"ready"`
	Draining  bool `json:"draining,omitempty"`
	Restoring bool `json:"restoring,omitempty"`
}

func (r *Server) handleReadyz(w http.ResponseWriter) {
	resp := readyResponse{
		Draining:  r.draining.Load(),
		Restoring: r.notReady.Load(),
	}
	resp.Ready = !resp.Draining && !resp.Restoring
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// BeginDrain flips the server to draining: /readyz answers 503 so
// cluster clients stop routing here, while every other endpoint keeps
// serving until Serve's shutdown closes the listener. Draining is
// one-way — a draining server only ever exits. Safe to call more than
// once.
func (r *Server) BeginDrain() { r.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (r *Server) Draining() bool { return r.draining.Load() }

// Ready reports whether the server is accepting routed traffic: not
// draining and not restoring a boot snapshot.
func (r *Server) Ready() bool { return !r.draining.Load() && !r.notReady.Load() }

// Registry exposes the underlying path registry.
func (r *Server) Registry() *Registry { return r.reg }

// Close releases the registry's disk resources (a no-op on the in-memory
// store). Call after Serve has returned and the final snapshot is
// written; the server must not be used after.
func (r *Server) Close() error { return r.reg.Close() }

// Metrics exposes the server's counters.
func (r *Server) Metrics() *Metrics { return r.metrics }

// Handler returns the HTTP handler serving the API, wrapped in the
// hardening middleware (load shedding, panic recovery, request deadlines).
func (r *Server) Handler() http.Handler { return r.root }

// Serve accepts connections on ln until ctx is cancelled, then shuts the
// HTTP server down gracefully (in-flight requests get up to 5 s), mirroring
// the context discipline of internal/campaign: cancellation is the normal
// way to stop, and a clean shutdown returns nil. The http.Server carries
// the configured read-header (slowloris guard), read, and idle timeouts.
func (r *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           r.root,
		ReadHeaderTimeout: posDur(r.cfg.ReadHeaderTimeout),
		ReadTimeout:       posDur(r.cfg.ReadTimeout),
		IdleTimeout:       posDur(r.cfg.IdleTimeout),
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		// Drain first: /readyz flips to 503 while the listener still
		// accepts, so a cluster client probing readiness reroutes or backs
		// off before connections start closing. DrainDelay gives it a probe
		// cycle to notice.
		r.BeginDrain()
		if d := posDur(r.cfg.DrainDelay); d > 0 {
			time.Sleep(d)
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(shutdownCtx)
		<-errc // always http.ErrServerClosed after Shutdown
		return err
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// SnapshotLoop writes a registry snapshot to path every interval until ctx
// is cancelled, then returns nil without a final write. Serve keeps
// draining in-flight requests after ctx is cancelled, so callers that want
// a shutdown snapshot covering that traffic must call WriteSnapshot once
// Serve has returned (cmd/predserverd does). A failed write is retried
// with capped exponential backoff (WriteSnapshotRetry); a cycle that
// exhausts its retries gives up until the next tick — one bad write, or
// even a stretch of them, never permanently disables periodic snapshots.
func (r *Server) SnapshotLoop(ctx context.Context, path string, interval time.Duration) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
			r.WriteSnapshotRetry(ctx, path)
		}
	}
}

// WriteSnapshotRetry writes a snapshot, retrying failures up to
// Config.SnapshotRetries times with exponential backoff between
// SnapshotRetryMin and SnapshotRetryMax plus up to 50% jitter (so many
// daemons recovering from a shared-disk hiccup do not retry in lockstep).
// Each failed attempt ticks snapshot_failures, each backoff sleep ticks
// snapshot_retries. The last error is returned if every attempt failed;
// ctx cancellation aborts the backoff.
func (r *Server) WriteSnapshotRetry(ctx context.Context, path string) error {
	backoff := r.cfg.SnapshotRetryMin
	var err error
	for attempt := 0; attempt <= r.cfg.SnapshotRetries; attempt++ {
		if attempt > 0 {
			r.metrics.snapshotRetries.Add(1)
			sleep := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(sleep):
			}
			if backoff *= 2; backoff > r.cfg.SnapshotRetryMax {
				backoff = r.cfg.SnapshotRetryMax
			}
		}
		if err = r.WriteSnapshot(path); err == nil {
			return nil
		}
		r.metrics.snapshotFailures.Add(1)
	}
	return err
}

// WriteSnapshot atomically persists the registry to path, checksummed.
func (r *Server) WriteSnapshot(path string) error {
	if err := r.cfg.Faults.Check(SiteSnapshotWrite); err != nil {
		return fmt.Errorf("predsvc: snapshot write: %w", err)
	}
	data, err := EncodeSnapshot(r.reg.Snapshot())
	if err != nil {
		return err
	}
	data = r.cfg.Faults.Mutate(SiteSnapshotCorrupt, data)
	if err := writeFileAtomic(path, data); err != nil {
		return err
	}
	r.metrics.snapshotsWritten.Add(1)
	return nil
}

// RestoreStats reports what RestoreSnapshot did at boot.
type RestoreStats struct {
	// Paths restored into the registry.
	Paths int
	// Quarantined is the "<path>.corrupt-<n>" name a corrupt snapshot was
	// moved to, or empty when the snapshot was missing or healthy.
	Quarantined string
	// Reason is the corruption that triggered the quarantine.
	Reason error
}

// RestoreSnapshot loads a snapshot file into the registry. A missing file
// is not an error. A corrupt file (bad checksum, unparseable, wrong
// version) is quarantined to "<path>.corrupt-<n>" and reported in the
// returned stats — the daemon boots with an empty registry instead of
// dying on state it can regrow from live traffic. Only real I/O failures
// (unreadable file, failed quarantine rename) return an error.
func (r *Server) RestoreSnapshot(path string) (RestoreStats, error) {
	r.notReady.Store(true)
	defer r.notReady.Store(false)
	var st RestoreStats
	snap, err := ReadSnapshotFile(path)
	switch {
	case err == nil:
	case errors.Is(err, fs.ErrNotExist):
		return st, nil
	case errors.Is(err, ErrCorruptSnapshot):
		q, qerr := Quarantine(path)
		if qerr != nil {
			return st, errors.Join(err, qerr)
		}
		st.Quarantined, st.Reason = q, err
		return st, nil
	default:
		return st, err
	}
	st.Paths, err = r.reg.Restore(snap)
	return st, err
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

// handlerFunc processes one request and returns the HTTP status written.
type handlerFunc func(w http.ResponseWriter, req *http.Request) int

// spanNames precomputes the per-endpoint span names so the request path
// never concatenates strings for tracing.
var spanNames = func() (n [epCount]string) {
	for ep, name := range endpointNames {
		n[ep] = "predsvc." + name
	}
	return
}()

// instrument wraps a handler with request/error/latency accounting and,
// when an observability layer is attached, a per-request span whose
// count carries the HTTP status.
func (r *Server) instrument(ep endpoint, h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var sp *obs.Span
		if r.tracer != nil {
			sp = r.tracer.Start(spanNames[ep])
		}
		start := time.Now()
		status := h(w, req)
		r.metrics.record(ep, status, time.Since(start))
		sp.AddCount(int64(status))
		sp.End()
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	data, err := json.Marshal(v)
	if err != nil {
		return writeEncodingFailure(w)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
	w.Write([]byte("\n"))
	return status
}

// writeEncodingFailure is the shared 500 for values json cannot encode
// (NaN/Inf forecasts); the fastpath and writeJSON both land here so the
// two produce identical failure responses.
func writeEncodingFailure(w http.ResponseWriter) int {
	http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
	return http.StatusInternalServerError
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) int {
	if len(args) == 0 {
		// Most error messages are constants; skip the Sprintf pass (which
		// allocates even with no verbs to expand).
		return writeJSON(w, status, apiError{Error: format})
	}
	return writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// Preformatted bodies (marshaled apiError plus the trailing newline, so
// the wire bytes match writeError exactly) for the rejections hot enough
// that load shedding and input validation must not allocate.
var (
	errBodyOverloaded     = preformatError("overloaded: in-flight request cap reached, retry")
	errBodyMissingPath    = preformatError("missing path")
	errBodyMissingPathQ   = preformatError("missing path query parameter")
	errBodyBadThroughput  = preformatError("throughput_bps must be finite and positive")
	errBodyBadMeasurement = preformatError("measurements must be finite and in range")
)

func preformatError(msg string) []byte {
	data, err := json.Marshal(apiError{Error: msg})
	if err != nil {
		panic(err)
	}
	return append(data, '\n')
}

// writePre writes a preformatted JSON body (which already carries its
// trailing newline) without any per-request allocation.
func writePre(w http.ResponseWriter, status int, body []byte) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	return status
}

// maxBodyBytes bounds request bodies; observations are tiny.
const maxBodyBytes = 1 << 20

func decodeBody(w http.ResponseWriter, req *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	return dec.Decode(v)
}

// ObserveRequest feeds one transfer's achieved throughput on a path.
type ObserveRequest struct {
	Path          string  `json:"path"`
	ThroughputBps float64 `json:"throughput_bps"`
}

// ObserveResponse acknowledges an observation.
type ObserveResponse struct {
	Path         string `json:"path"`
	Observations uint64 `json:"observations"`
}

func (r *Server) handleObserve(w http.ResponseWriter, req *http.Request) int {
	var body ObserveRequest
	if err := decodeBody(w, req, &body); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if body.Path == "" {
		return writeError(w, http.StatusBadRequest, "missing path")
	}
	if !ValidObservation(body.ThroughputBps) {
		r.metrics.rejectedInputs.Add(1)
		return writeError(w, http.StatusBadRequest, "throughput_bps must be finite and positive")
	}
	n := r.reg.GetOrCreate(body.Path).Observe(body.ThroughputBps)
	r.metrics.observations.Add(1)
	return writeJSON(w, http.StatusOK, ObserveResponse{Path: body.Path, Observations: n})
}

// MeasureRequest installs fresh a-priori measurements for a path.
type MeasureRequest struct {
	Path       string  `json:"path"`
	RTTSeconds float64 `json:"rtt_s"`
	LossRate   float64 `json:"loss_rate"`
	AvailBwBps float64 `json:"avail_bw_bps"`
}

// MeasureResponse returns the FB forecast for the installed measurements.
type MeasureResponse struct {
	Path        string  `json:"path"`
	ForecastBps float64 `json:"forecast_bps"`
}

func (r *Server) handleMeasure(w http.ResponseWriter, req *http.Request) int {
	var body MeasureRequest
	if err := decodeBody(w, req, &body); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if body.Path == "" {
		return writeError(w, http.StatusBadRequest, "missing path")
	}
	in := predict.FBInputs{
		RTT:      body.RTTSeconds,
		LossRate: body.LossRate,
		AvailBw:  body.AvailBwBps,
	}
	if !ValidMeasurement(in) {
		r.metrics.rejectedInputs.Add(1)
		return writeError(w, http.StatusBadRequest, "measurements must be finite and in range")
	}
	f := r.reg.GetOrCreate(body.Path).SetMeasurement(in)
	return writeJSON(w, http.StatusOK, MeasureResponse{Path: body.Path, ForecastBps: f})
}

func (r *Server) handlePredict(w http.ResponseWriter, req *http.Request) int {
	path := req.URL.Query().Get("path")
	if path == "" {
		return writeError(w, http.StatusBadRequest, "missing path query parameter")
	}
	sess, ok := r.reg.Lookup(path)
	if !ok {
		return writeError(w, http.StatusNotFound, "unknown path %q", path)
	}
	r.metrics.predictions.Add(1)
	p := sess.Predict()
	if p.FB != nil && p.FB.Stale {
		r.metrics.stalePredictions.Add(1)
	}
	if p.Family != "" {
		r.metrics.recordSelection(p.Family)
	}
	return writeJSON(w, http.StatusOK, p)
}

// DefaultStatsLimit is how many recent paths /v1/stats lists when the
// request carries no ?limit=N — a bound, not a sample: with a large
// registry an unbounded listing would marshal every path.
const DefaultStatsLimit = 100

// PathActivity is one hot path's row in the stats listing.
type PathActivity struct {
	Path         string `json:"path"`
	Observations uint64 `json:"observations"`
}

// StatsResponse is the service-wide statistics payload. RecentPaths
// lists at most the requested limit of hot-tier paths, most recently
// used first; Truncated reports that more paths exist than were listed
// (beyond the limit, or resident only in the cold tier).
type StatsResponse struct {
	UptimeSeconds float64         `json:"uptime_s"`
	Ready         bool            `json:"ready"`
	Draining      bool            `json:"draining"`
	Paths         int             `json:"paths"`
	Capacity      int             `json:"capacity"`
	Shards        int             `json:"shards"`
	Evictions     uint64          `json:"evictions"`
	Goroutines    int             `json:"goroutines"`
	Store         store.TierStats `json:"store"`
	RecentPaths   []PathActivity  `json:"recent_paths"`
	Truncated     bool            `json:"truncated"`
	Metrics       MetricsSnapshot `json:"metrics"`
}

func (r *Server) handleStats(w http.ResponseWriter, req *http.Request) int {
	q := req.URL.Query()
	if path := q.Get("path"); path != "" {
		sess, ok := r.reg.Peek(path)
		if !ok {
			return writeError(w, http.StatusNotFound, "unknown path %q", path)
		}
		return writeJSON(w, http.StatusOK, sess.Predict())
	}
	limit := DefaultStatsLimit
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
		}
		limit = n
	}
	recent := r.reg.Recent(limit)
	listed := make([]PathActivity, len(recent))
	for i, sess := range recent {
		listed[i] = PathActivity{Path: sess.Path(), Observations: sess.Observations()}
	}
	total := r.reg.Len()
	return writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Ready:         r.Ready(),
		Draining:      r.Draining(),
		Paths:         total,
		Capacity:      r.reg.Capacity(),
		Shards:        r.reg.Shards(),
		Evictions:     r.reg.Evictions(),
		Goroutines:    runtime.NumGoroutine(),
		Store:         r.reg.TierStats(),
		RecentPaths:   listed,
		Truncated:     len(listed) < total,
		Metrics:       r.metrics.Snapshot(),
	})
}

// maxBatchItems bounds one batch request's item count; past it the whole
// request is rejected rather than partially applied.
const maxBatchItems = 4096

// ObserveBatchRequest feeds many observations in one request. Items are
// applied in order; invalid items are counted and skipped, never aborting
// the rest of the batch.
type ObserveBatchRequest struct {
	Observations []ObserveRequest `json:"observations"`
}

// ObserveBatchResponse reports how the batch fared.
type ObserveBatchResponse struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
}

func (r *Server) handleObserveBatch(w http.ResponseWriter, req *http.Request) int {
	var body ObserveBatchRequest
	if err := decodeBody(w, req, &body); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if len(body.Observations) > maxBatchItems {
		return writeError(w, http.StatusBadRequest, "batch of %d observations exceeds the %d-item cap", len(body.Observations), maxBatchItems)
	}
	var resp ObserveBatchResponse
	for _, ob := range body.Observations {
		if ob.Path == "" || !ValidObservation(ob.ThroughputBps) {
			r.metrics.rejectedInputs.Add(1)
			resp.Rejected++
			continue
		}
		r.reg.GetOrCreate(ob.Path).Observe(ob.ThroughputBps)
		r.metrics.observations.Add(1)
		resp.Accepted++
	}
	return writeJSON(w, http.StatusOK, resp)
}

// PredictBatchRequest asks for predictions on many paths in one request.
type PredictBatchRequest struct {
	Paths []string `json:"paths"`
}

// PredictBatchResponse carries one Prediction per known path, in request
// order, with unknown paths listed separately (a batch is not failed by
// a 404-worthy member).
type PredictBatchResponse struct {
	Predictions []Prediction `json:"predictions"`
	Missing     []string     `json:"missing,omitempty"`
}

func (r *Server) handlePredictBatch(w http.ResponseWriter, req *http.Request) int {
	var body PredictBatchRequest
	if err := decodeBody(w, req, &body); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if len(body.Paths) > maxBatchItems {
		return writeError(w, http.StatusBadRequest, "batch of %d paths exceeds the %d-item cap", len(body.Paths), maxBatchItems)
	}
	var resp PredictBatchResponse
	for _, path := range body.Paths {
		sess, ok := r.reg.Lookup(path)
		if !ok {
			resp.Missing = append(resp.Missing, path)
			continue
		}
		r.metrics.predictions.Add(1)
		p := sess.Predict()
		if p.FB != nil && p.FB.Stale {
			r.metrics.stalePredictions.Add(1)
		}
		if p.Family != "" {
			r.metrics.recordSelection(p.Family)
		}
		resp.Predictions = append(resp.Predictions, p)
	}
	return writeJSON(w, http.StatusOK, resp)
}

// handleVars serves an expvar-style JSON dump of the service counters and
// a few runtime memory statistics, without registering anything in the
// global expvar namespace (so many servers can coexist in one process).
func (r *Server) handleVars(w http.ResponseWriter, req *http.Request) int {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return writeJSON(w, http.StatusOK, map[string]any{
		"predsvc": map[string]any{
			"paths":     r.reg.Len(),
			"evictions": r.reg.Evictions(),
			"metrics":   r.metrics.Snapshot(),
		},
		"memstats": map[string]any{
			"heap_alloc":   ms.HeapAlloc,
			"heap_objects": ms.HeapObjects,
			"num_gc":       ms.NumGC,
		},
	})
}
