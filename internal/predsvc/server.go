package predsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"net"
	"net/http"
	"runtime"
	"time"

	"repro/internal/predict"
)

// Server wires a Registry and Metrics behind the HTTP JSON API:
//
//	POST /v1/observe   {"path", "throughput_bps"}            → feed a transfer's achieved throughput
//	POST /v1/measure   {"path", "rtt_s", "loss_rate", "avail_bw_bps"} → install a-priori measurements
//	GET  /v1/predict?path=P                                  → forecasts + accuracy + best predictor
//	GET  /v1/stats[?path=P]                                  → service (or per-path) statistics
//	GET  /debug/vars                                         → expvar-style metrics dump
//
// Handlers are goroutine-safe; /v1/predict responses are byte-identical
// for a fixed per-path request sequence (see the package comment).
type Server struct {
	cfg     Config
	reg     *Registry
	metrics *Metrics
	mux     *http.ServeMux
	start   time.Time
}

// NewServer builds a server with a fresh registry.
func NewServer(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		reg:     NewRegistry(cfg),
		metrics: &Metrics{},
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	s.mux.Handle("POST /v1/observe", s.instrument(epObserve, s.handleObserve))
	s.mux.Handle("POST /v1/measure", s.instrument(epMeasure, s.handleMeasure))
	s.mux.Handle("GET /v1/predict", s.instrument(epPredict, s.handlePredict))
	s.mux.Handle("GET /v1/stats", s.instrument(epStats, s.handleStats))
	s.mux.Handle("GET /debug/vars", s.instrument(epVars, s.handleVars))
	return s
}

// Registry exposes the underlying path registry.
func (r *Server) Registry() *Registry { return r.reg }

// Metrics exposes the server's counters.
func (r *Server) Metrics() *Metrics { return r.metrics }

// Handler returns the HTTP handler serving the API.
func (r *Server) Handler() http.Handler { return r.mux }

// Serve accepts connections on ln until ctx is cancelled, then shuts the
// HTTP server down gracefully (in-flight requests get up to 5 s), mirroring
// the context discipline of internal/campaign: cancellation is the normal
// way to stop, and a clean shutdown returns nil.
func (r *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: r.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(shutdownCtx)
		<-errc // always http.ErrServerClosed after Shutdown
		return err
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// SnapshotLoop writes a registry snapshot to path every interval until ctx
// is cancelled, then returns nil without a final write. Serve keeps
// draining in-flight requests after ctx is cancelled, so callers that want
// a shutdown snapshot covering that traffic must call WriteSnapshot once
// Serve has returned (cmd/predserverd does). Write failures are returned
// immediately.
func (r *Server) SnapshotLoop(ctx context.Context, path string, interval time.Duration) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
			if err := r.WriteSnapshot(path); err != nil {
				return err
			}
		}
	}
}

// WriteSnapshot atomically persists the registry to path.
func (r *Server) WriteSnapshot(path string) error {
	if err := WriteSnapshotFile(path, r.reg.Snapshot()); err != nil {
		return err
	}
	r.metrics.snapshotsWritten.Add(1)
	return nil
}

// RestoreSnapshot loads a snapshot file into the registry, returning the
// number of paths restored. A missing file is not an error (0, nil).
func (r *Server) RestoreSnapshot(path string) (int, error) {
	snap, err := ReadSnapshotFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	return r.reg.Restore(snap)
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

// handlerFunc processes one request and returns the HTTP status written.
type handlerFunc func(w http.ResponseWriter, req *http.Request) int

// instrument wraps a handler with request/error/latency accounting.
func (r *Server) instrument(ep endpoint, h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		status := h(w, req)
		r.metrics.record(ep, status, time.Since(start))
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
	w.Write([]byte("\n"))
	return status
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) int {
	return writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds request bodies; observations are tiny.
const maxBodyBytes = 1 << 20

func decodeBody(w http.ResponseWriter, req *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	return dec.Decode(v)
}

// ObserveRequest feeds one transfer's achieved throughput on a path.
type ObserveRequest struct {
	Path          string  `json:"path"`
	ThroughputBps float64 `json:"throughput_bps"`
}

// ObserveResponse acknowledges an observation.
type ObserveResponse struct {
	Path         string `json:"path"`
	Observations uint64 `json:"observations"`
}

func (r *Server) handleObserve(w http.ResponseWriter, req *http.Request) int {
	var body ObserveRequest
	if err := decodeBody(w, req, &body); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if body.Path == "" {
		return writeError(w, http.StatusBadRequest, "missing path")
	}
	if body.ThroughputBps <= 0 || math.IsInf(body.ThroughputBps, 0) || math.IsNaN(body.ThroughputBps) {
		return writeError(w, http.StatusBadRequest, "throughput_bps must be finite and positive")
	}
	n := r.reg.GetOrCreate(body.Path).Observe(body.ThroughputBps)
	r.metrics.observations.Add(1)
	return writeJSON(w, http.StatusOK, ObserveResponse{Path: body.Path, Observations: n})
}

// MeasureRequest installs fresh a-priori measurements for a path.
type MeasureRequest struct {
	Path       string  `json:"path"`
	RTTSeconds float64 `json:"rtt_s"`
	LossRate   float64 `json:"loss_rate"`
	AvailBwBps float64 `json:"avail_bw_bps"`
}

// MeasureResponse returns the FB forecast for the installed measurements.
type MeasureResponse struct {
	Path        string  `json:"path"`
	ForecastBps float64 `json:"forecast_bps"`
}

func (r *Server) handleMeasure(w http.ResponseWriter, req *http.Request) int {
	var body MeasureRequest
	if err := decodeBody(w, req, &body); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if body.Path == "" {
		return writeError(w, http.StatusBadRequest, "missing path")
	}
	if body.RTTSeconds < 0 || body.LossRate < 0 || body.LossRate > 1 || body.AvailBwBps < 0 {
		return writeError(w, http.StatusBadRequest, "measurements out of range")
	}
	f := r.reg.GetOrCreate(body.Path).SetMeasurement(predict.FBInputs{
		RTT:      body.RTTSeconds,
		LossRate: body.LossRate,
		AvailBw:  body.AvailBwBps,
	})
	return writeJSON(w, http.StatusOK, MeasureResponse{Path: body.Path, ForecastBps: f})
}

func (r *Server) handlePredict(w http.ResponseWriter, req *http.Request) int {
	path := req.URL.Query().Get("path")
	if path == "" {
		return writeError(w, http.StatusBadRequest, "missing path query parameter")
	}
	sess, ok := r.reg.Lookup(path)
	if !ok {
		return writeError(w, http.StatusNotFound, "unknown path %q", path)
	}
	r.metrics.predictions.Add(1)
	return writeJSON(w, http.StatusOK, sess.Predict())
}

// StatsResponse is the service-wide statistics payload.
type StatsResponse struct {
	UptimeSeconds float64         `json:"uptime_s"`
	Paths         int             `json:"paths"`
	Capacity      int             `json:"capacity"`
	Shards        int             `json:"shards"`
	Evictions     uint64          `json:"evictions"`
	Goroutines    int             `json:"goroutines"`
	Metrics       MetricsSnapshot `json:"metrics"`
}

func (r *Server) handleStats(w http.ResponseWriter, req *http.Request) int {
	if path := req.URL.Query().Get("path"); path != "" {
		sess, ok := r.reg.Peek(path)
		if !ok {
			return writeError(w, http.StatusNotFound, "unknown path %q", path)
		}
		return writeJSON(w, http.StatusOK, sess.Predict())
	}
	return writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Paths:         r.reg.Len(),
		Capacity:      r.reg.Capacity(),
		Shards:        r.reg.Shards(),
		Evictions:     r.reg.Evictions(),
		Goroutines:    runtime.NumGoroutine(),
		Metrics:       r.metrics.Snapshot(),
	})
}

// handleVars serves an expvar-style JSON dump of the service counters and
// a few runtime memory statistics, without registering anything in the
// global expvar namespace (so many servers can coexist in one process).
func (r *Server) handleVars(w http.ResponseWriter, req *http.Request) int {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return writeJSON(w, http.StatusOK, map[string]any{
		"predsvc": map[string]any{
			"paths":     r.reg.Len(),
			"evictions": r.reg.Evictions(),
			"metrics":   r.metrics.Snapshot(),
		},
		"memstats": map[string]any{
			"heap_alloc":   ms.HeapAlloc,
			"heap_objects": ms.HeapObjects,
			"num_gc":       ms.NumGC,
		},
	})
}
