package predsvc

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/predict"
	"repro/internal/stats"
)

func testConfig() Config {
	return Config{Shards: 1, Capacity: 16}.withDefaults()
}

func TestSessionAccuracyBookkeeping(t *testing.T) {
	s := newSession("p", testConfig())
	series := []float64{10e6, 12e6, 11e6, 13e6, 12e6, 12.5e6}
	for _, x := range series {
		s.Observe(x)
	}
	p := s.Predict()
	if p.Observations != uint64(len(series)) {
		t.Fatalf("Observations = %d, want %d", p.Observations, len(series))
	}
	if len(p.HB) != 3 {
		t.Fatalf("ensemble size = %d, want 3 (MA, EWMA, HW)", len(p.HB))
	}
	for _, st := range p.HB {
		if !st.Ready {
			t.Errorf("%s not ready after %d observations", st.Name, len(series))
		}
		// First observation yields no standing forecast, so n-1 errors.
		if st.ErrorCount != len(series)-1 {
			t.Errorf("%s ErrorCount = %d, want %d", st.Name, st.ErrorCount, len(series)-1)
		}
		if st.RMSRE <= 0 {
			t.Errorf("%s RMSRE = %v, want > 0 on a noisy series", st.Name, st.RMSRE)
		}
	}
	if p.Best == "" || p.BestForecastBps <= 0 {
		t.Fatalf("no best predictor selected: %+v", p)
	}
	// Best must be the minimum-RMSRE qualified candidate.
	bestRMSRE := math.Inf(1)
	for _, st := range p.HB {
		if st.ErrorCount >= s.cfg.MinErrors && st.RMSRE < bestRMSRE {
			bestRMSRE = st.RMSRE
		}
	}
	for _, st := range p.HB {
		if st.Name == p.Best && st.RMSRE != bestRMSRE {
			t.Errorf("best %s has RMSRE %v, but minimum is %v", p.Best, st.RMSRE, bestRMSRE)
		}
	}
}

func TestSessionFBSide(t *testing.T) {
	s := newSession("p", testConfig())
	in := predict.FBInputs{RTT: 0.05, LossRate: 0.01, AvailBw: 20e6}
	f := s.SetMeasurement(in)
	if f <= 0 {
		t.Fatalf("FB forecast = %v, want > 0 for lossy inputs", f)
	}
	want := predict.NewFB(predict.FBConfig{}).Predict(in)
	if f != want {
		t.Errorf("FB forecast = %v, want %v (same as raw predictor)", f, want)
	}
	// The FB forecast standing when an observation arrives is scored.
	s.Observe(f * 2)
	p := s.Predict()
	if p.FB == nil {
		t.Fatal("Prediction.FB missing after SetMeasurement")
	}
	if p.FB.ErrorCount != 1 {
		t.Errorf("FB ErrorCount = %d, want 1", p.FB.ErrorCount)
	}
	// Over-estimation by 2× ⇒ |E| = 1 (Eq. 4).
	if got := p.FB.RMSRE; math.Abs(got-1) > 1e-9 {
		t.Errorf("FB RMSRE = %v, want 1", got)
	}
}

func TestSessionErrorMatchesEq4(t *testing.T) {
	cfg := testConfig()
	cfg.DisableLSO = true
	cfg = cfg.withDefaults()
	s := newSession("p", cfg)
	s.Observe(10e6)
	s.Observe(20e6)
	p := s.Predict()
	// EWMA forecast before the 2nd observation was 10e6; the MA(10)
	// forecast was also 10e6. E = (10e6-20e6)/10e6 = -1 ⇒ RMSRE 1.
	for _, st := range p.HB[:2] {
		if math.Abs(st.RMSRE-1) > 1e-9 {
			t.Errorf("%s RMSRE = %v, want 1 (single Eq.4 error of -1)", st.Name, st.RMSRE)
		}
	}
	if e := stats.RelativeError(10e6, 20e6); e != -1 {
		t.Fatalf("sanity: RelativeError = %v, want -1", e)
	}
}

func TestSessionDeterminism(t *testing.T) {
	series := SyntheticSeries(1, 60, 99)[0]
	run := func() ([]byte, Prediction) {
		s := newSession("p", testConfig())
		for i, x := range series.Throughputs {
			s.SetMeasurement(series.Inputs[i])
			s.Observe(x)
		}
		p := s.Predict()
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		return data, p
	}
	b1, p1 := run()
	b2, p2 := run()
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("predictions differ across identical replays:\n%+v\n%+v", p1, p2)
	}
	if string(b1) != string(b2) {
		t.Errorf("JSON bodies differ across identical replays:\n%s\n%s", b1, b2)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cfg := Config{Shards: 2, Capacity: 32}
	reg := NewRegistry(cfg)
	series := SyntheticSeries(5, 40, 7) // well under HistoryLimit
	for _, ps := range series {
		s := reg.GetOrCreate(ps.Path)
		for i, x := range ps.Throughputs {
			s.SetMeasurement(ps.Inputs[i])
			s.Observe(x)
		}
	}
	snap := reg.Snapshot()
	if len(snap.Paths) != len(series) {
		t.Fatalf("snapshot has %d paths, want %d", len(snap.Paths), len(series))
	}

	reg2 := NewRegistry(cfg)
	n, err := reg2.Restore(snap)
	if err != nil || n != len(series) {
		t.Fatalf("Restore = (%d, %v), want (%d, nil)", n, err, len(series))
	}
	for _, ps := range series {
		s1, _ := reg.Peek(ps.Path)
		s2, ok := reg2.Peek(ps.Path)
		if !ok {
			t.Fatalf("path %s missing after restore", ps.Path)
		}
		b1, _ := json.Marshal(s1.Predict())
		b2, _ := json.Marshal(s2.Predict())
		if string(b1) != string(b2) {
			t.Errorf("%s: restored prediction differs\n%s\n%s", ps.Path, b1, b2)
		}
	}

	// Version mismatch is rejected.
	bad := &Snapshot{Version: 99}
	if _, err := NewRegistry(cfg).Restore(bad); err == nil {
		t.Error("Restore accepted a bad snapshot version")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	reg := NewRegistry(Config{Shards: 1, Capacity: 8})
	reg.GetOrCreate("x").Observe(5e6)
	file := t.TempDir() + "/snap.json"
	if err := WriteSnapshotFile(file, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshotFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Paths) != 1 || snap.Paths[0].Path != "x" {
		t.Fatalf("unexpected snapshot content: %+v", snap)
	}
}

// TestSnapshotFiniteAfterNonPositiveForecast: Holt-Winters forecasts a
// negative value after a steep throughput drop, which makes the raw
// relative error ±Inf. The session must clamp errors before they enter
// the rolling windows, or the JSON snapshot fails to marshal (json has no
// representation for infinities) and the daemon's snapshot loop dies.
func TestSnapshotFiniteAfterNonPositiveForecast(t *testing.T) {
	reg := NewRegistry(Config{Shards: 1, Capacity: 8})
	s := reg.GetOrCreate("falling")
	for _, x := range []float64{1e8, 1e6, 1e4, 1e4, 1e4} {
		s.Observe(x)
	}
	snap := reg.Snapshot()
	for _, ps := range snap.Paths {
		for i, errs := range ps.HBErrors {
			for _, e := range errs {
				if math.IsInf(e, 0) || math.IsNaN(e) {
					t.Fatalf("HBErrors[%d] holds non-finite error %v", i, e)
				}
			}
		}
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot with extreme errors does not marshal: %v", err)
	}
	if err := WriteSnapshotFile(t.TempDir()+"/snap.json", snap); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
}
