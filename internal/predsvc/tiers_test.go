package predsvc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// TestStatsRecentLimit: /v1/stats lists at most ?limit=N hot paths (default
// 100), most recently used first, with Truncated reporting whether the
// listing is complete.
func TestStatsRecentLimit(t *testing.T) {
	srv := NewServer(Config{Shards: 4, Capacity: 1024})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const paths = 150
	for i := 0; i < paths; i++ {
		postJSON(t, ts.URL+"/v1/observe",
			fmt.Sprintf(`{"path":"p%03d","throughput_bps":1e7}`, i))
	}

	var st StatsResponse
	if resp, data := getJSON(t, ts.URL+"/v1/stats"); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	} else if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.RecentPaths) != DefaultStatsLimit {
		t.Fatalf("default listing has %d paths, want %d", len(st.RecentPaths), DefaultStatsLimit)
	}
	if !st.Truncated {
		t.Fatal("150 paths behind a 100-row listing must report truncated")
	}
	// Most recently used first: the last path observed leads the listing.
	if st.RecentPaths[0].Path != "p149" {
		t.Fatalf("most recent path listed is %s, want p149", st.RecentPaths[0].Path)
	}
	if st.RecentPaths[0].Observations != 1 {
		t.Fatalf("p149 observations = %d, want 1", st.RecentPaths[0].Observations)
	}

	// Touch an old path; it must jump to the front.
	postJSON(t, ts.URL+"/v1/observe", `{"path":"p000","throughput_bps":1e7}`)
	if _, data := getJSON(t, ts.URL+"/v1/stats?limit=5"); true {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
	}
	if len(st.RecentPaths) != 5 || st.RecentPaths[0].Path != "p000" {
		t.Fatalf("limit=5 after touching p000: %+v", st.RecentPaths)
	}
	if st.RecentPaths[0].Observations != 2 {
		t.Fatalf("p000 observations = %d, want 2", st.RecentPaths[0].Observations)
	}
	if !st.Truncated {
		t.Fatal("limit=5 of 150 paths must report truncated")
	}

	// A limit above the population lists everything, untruncated.
	if _, data := getJSON(t, ts.URL+"/v1/stats?limit=500"); true {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
	}
	if len(st.RecentPaths) != paths || st.Truncated {
		t.Fatalf("limit=500 listed %d paths truncated=%v, want %d untruncated",
			len(st.RecentPaths), st.Truncated, paths)
	}

	// Invalid limits: 400.
	for _, q := range []string{"limit=x", "limit=-1", "limit=1.5"} {
		if resp, _ := getJSON(t, ts.URL+"/v1/stats?"+q); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("stats?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestObserveBatchEndpoint: a batch applies items in order, skips (and
// counts) invalid ones, and rejects oversized batches outright.
func TestObserveBatchEndpoint(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"observations":[
		{"path":"a","throughput_bps":1e7},
		{"path":"a","throughput_bps":1.2e7},
		{"path":"b","throughput_bps":9e6},
		{"path":"","throughput_bps":1e7},
		{"path":"c","throughput_bps":-5}
	]}`
	resp, data := postJSON(t, ts.URL+"/v1/observe-batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe-batch: status %d, body %s", resp.StatusCode, data)
	}
	var br ObserveBatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if br.Accepted != 3 || br.Rejected != 2 {
		t.Fatalf("batch result %+v, want 3 accepted / 2 rejected", br)
	}
	if sess, ok := srv.Registry().Lookup("a"); !ok || sess.Observations() != 2 {
		t.Fatalf("path a after batch: ok=%v", ok)
	}
	if _, ok := srv.Registry().Lookup("c"); ok {
		t.Fatal("invalid item created a session")
	}

	// Oversized batch: rejected whole, nothing applied.
	var sb strings.Builder
	sb.WriteString(`{"observations":[`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"path":"big%d","throughput_bps":1e7}`, i)
	}
	sb.WriteString(`]}`)
	if resp, _ := postJSON(t, ts.URL+"/v1/observe-batch", sb.String()); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}
	if _, ok := srv.Registry().Lookup("big0"); ok {
		t.Fatal("oversized batch was partially applied")
	}
}

// TestPredictBatchEndpoint: the batch answer for each known path must
// equal the single-path endpoint's answer; unknown paths are listed as
// missing, not errors.
func TestPredictBatchEndpoint(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, p := range []string{"x", "y"} {
		for _, v := range []float64{1e7, 1.1e7, 1.05e7} {
			postJSON(t, ts.URL+"/v1/observe",
				fmt.Sprintf(`{"path":%q,"throughput_bps":%g}`, p, v))
		}
	}
	resp, data := postJSON(t, ts.URL+"/v1/predict-batch", `{"paths":["x","ghost","y"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict-batch: status %d, body %s", resp.StatusCode, data)
	}
	var br PredictBatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Predictions) != 2 {
		t.Fatalf("predictions for %d paths, want 2", len(br.Predictions))
	}
	if len(br.Missing) != 1 || br.Missing[0] != "ghost" {
		t.Fatalf("missing = %v, want [ghost]", br.Missing)
	}
	for _, p := range br.Predictions {
		var single Prediction
		_, sdata := getJSON(t, ts.URL+"/v1/predict?path="+p.Path)
		if err := json.Unmarshal(sdata, &single); err != nil {
			t.Fatal(err)
		}
		if p.Best != single.Best || p.BestForecastBps != single.BestForecastBps {
			t.Fatalf("batch prediction for %s (%s %g) differs from single (%s %g)",
				p.Path, p.Best, p.BestForecastBps, single.Best, single.BestForecastBps)
		}
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/predict-batch", `{"paths":[]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("empty batch: status %d, want 200", resp.StatusCode)
	}
}

// TestSnapshotWriteAtomic: a failed write must leave the previous snapshot
// byte-for-byte intact and no temp files behind — the regression guard on
// writeFileAtomic's temp+fsync+rename discipline.
func TestSnapshotWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	// Second write fails (Every:1 after a 1-call warm-up, once).
	srv := NewServer(Config{
		Faults: faultinject.New(1, faultinject.Rule{
			Site: SiteSnapshotWrite, Every: 1, After: 1, Times: 1,
		}),
	})
	srv.Registry().GetOrCreate("p1").Observe(5e6)
	if err := srv.WriteSnapshot(path); err != nil {
		t.Fatalf("first write: %v", err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	srv.Registry().GetOrCreate("p2").Observe(7e6)
	if err := srv.WriteSnapshot(path); err == nil {
		t.Fatal("second write did not fail under injection")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed write mutated the previous snapshot")
	}
	if snap, err := ReadSnapshotFile(path); err != nil || len(snap.Paths) != 1 {
		t.Fatalf("previous snapshot unreadable after failed write: %v", err)
	}

	// Third write succeeds and replaces the file; the directory must hold
	// exactly the snapshot — no stray temp files from any attempt.
	if err := srv.WriteSnapshot(path); err != nil {
		t.Fatalf("third write: %v", err)
	}
	if snap, err := ReadSnapshotFile(path); err != nil || len(snap.Paths) != 2 {
		t.Fatalf("final snapshot: %v, %d paths", err, len(snap.Paths))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "snap.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("snapshot dir holds %v, want only snap.json", names)
	}
}

// TestSpillBackedServer: with Config.SpillDir the server retains every
// path past the hot capacity — predicts against long-cold paths fault
// their sessions back in with history intact.
func TestSpillBackedServer(t *testing.T) {
	srv, err := Open(Config{Shards: 2, Capacity: 8, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const paths = 64
	for i := 0; i < paths; i++ {
		for _, v := range []float64{1e7, 1.2e7} {
			resp, data := postJSON(t, ts.URL+"/v1/observe",
				fmt.Sprintf(`{"path":"sp%03d","throughput_bps":%g}`, i, v))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("observe: %d %s", resp.StatusCode, data)
			}
		}
	}
	reg := srv.Registry()
	if reg.Len() != paths {
		t.Fatalf("registry Len = %d, want %d (nothing lost)", reg.Len(), paths)
	}
	st := reg.TierStats()
	if st.HotPaths > 8 || st.ColdPaths < paths-8 || st.Spills == 0 {
		t.Fatalf("tier stats %+v, want ≤8 hot and the rest cold", st)
	}

	// The first path went cold long ago; predict must fault it back.
	resp, data := getJSON(t, ts.URL+"/v1/predict?path=sp000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict cold path: %d %s", resp.StatusCode, data)
	}
	var p Prediction
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatal(err)
	}
	if p.Best == "" || p.BestForecastBps <= 0 {
		t.Fatalf("cold path predicted %+v, want a real forecast from its history", p)
	}
	if reg.TierStats().Faults == 0 {
		t.Fatal("no faults counted for the cold predict")
	}

	// The snapshot walks both tiers: all 64 paths, cold included.
	if snap := reg.Snapshot(); len(snap.Paths) != paths {
		t.Fatalf("snapshot captured %d paths, want %d", len(snap.Paths), paths)
	}
}

// TestClusterReplayDigest: the accuracy digest is invariant to deployment
// shape — single node, single node with batched ingest, and a 2-node
// cluster must all produce byte-identical predict streams, and the
// cluster's nodes must hold disjoint path sets covering the series.
func TestClusterReplayDigest(t *testing.T) {
	series := SyntheticSeries(24, 12, 5)
	run := func(t *testing.T, nodes int, batch bool) (string, []*Server) {
		t.Helper()
		srvs := make([]*Server, nodes)
		urls := make([]string, nodes)
		for i := range srvs {
			srvs[i] = NewServer(Config{Shards: 4, Capacity: 1024})
			ts := httptest.NewServer(srvs[i].Handler())
			t.Cleanup(ts.Close)
			urls[i] = ts.URL
		}
		cfg := LoadConfig{Workers: 4, BatchObserve: batch}
		if nodes == 1 {
			cfg.BaseURL = urls[0]
		} else {
			cfg.Cluster = urls
		}
		rep, err := Replay(context.Background(), cfg, series)
		if err != nil {
			t.Fatalf("replay (%d nodes, batch=%v): %v", nodes, batch, err)
		}
		if rep.Errors > 0 {
			t.Fatalf("replay (%d nodes, batch=%v): %d errors", nodes, batch, rep.Errors)
		}
		return rep.Digest, srvs
	}

	base, _ := run(t, 1, false)
	batched, _ := run(t, 1, true)
	if batched != base {
		t.Fatalf("batched ingest changed the digest:\n  plain %s\n  batch %s", base, batched)
	}
	clustered, srvs := run(t, 2, true)
	if clustered != base {
		t.Fatalf("2-node cluster changed the digest:\n  1-node %s\n  2-node %s", base, clustered)
	}

	// Disjoint ownership: every path lives on exactly one node.
	seen := map[string]int{}
	for _, s := range srvs {
		for _, p := range s.Registry().Paths() {
			seen[p]++
		}
	}
	if len(seen) != len(series) {
		t.Fatalf("cluster holds %d paths, series has %d", len(seen), len(series))
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("path %s lives on %d nodes", p, n)
		}
	}
	for _, s := range srvs {
		if s.Registry().Len() == 0 {
			t.Fatal("one cluster node received no paths — routing is degenerate")
		}
	}
}
