package predsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func TestServerEndpoints(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Unknown path: 404 before any traffic.
	if resp, _ := getJSON(t, ts.URL+"/v1/predict?path=nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("predict unknown path: status %d, want 404", resp.StatusCode)
	}
	// Missing path parameter: 400.
	if resp, _ := getJSON(t, ts.URL+"/v1/predict"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("predict without path: status %d, want 400", resp.StatusCode)
	}
	// Bad bodies: 400.
	if resp, _ := postJSON(t, ts.URL+"/v1/observe", `{"path":"p"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("observe without throughput: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/observe", `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("observe with junk body: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/measure", `{"path":"p","loss_rate":2}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("measure with loss_rate 2: status %d, want 400", resp.StatusCode)
	}
	// Wrong method: 405 from the Go 1.22 mux.
	if resp, _ := getJSON(t, ts.URL+"/v1/observe"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET observe: status %d, want 405", resp.StatusCode)
	}

	// Happy path: measure → observe ×3 → predict.
	resp, data := postJSON(t, ts.URL+"/v1/measure",
		`{"path":"p1","rtt_s":0.05,"loss_rate":0.005,"avail_bw_bps":2e7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure: status %d, body %s", resp.StatusCode, data)
	}
	var mr MeasureResponse
	if err := json.Unmarshal(data, &mr); err != nil || mr.ForecastBps <= 0 {
		t.Fatalf("measure response %s (err %v), want positive forecast", data, err)
	}
	for i, x := range []float64{10e6, 12e6, 11e6, 12.5e6} {
		resp, data := postJSON(t, ts.URL+"/v1/observe",
			fmt.Sprintf(`{"path":"p1","throughput_bps":%g}`, x))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe %d: status %d, body %s", i, resp.StatusCode, data)
		}
	}
	resp, data = getJSON(t, ts.URL+"/v1/predict?path=p1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d", resp.StatusCode)
	}
	var pred Prediction
	if err := json.Unmarshal(data, &pred); err != nil {
		t.Fatalf("predict body %s: %v", data, err)
	}
	if pred.Observations != 4 || pred.Best == "" || pred.FB == nil {
		t.Errorf("unexpected prediction: %+v", pred)
	}

	// Stats: global and per-path.
	resp, data = getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Paths != 1 || st.Metrics.Observations != 4 {
		t.Errorf("stats: paths %d obs %d, want 1/4", st.Paths, st.Metrics.Observations)
	}
	var epObs EndpointSnapshot
	for _, e := range st.Metrics.Endpoints {
		if e.Name == "observe" {
			epObs = e
		}
	}
	if epObs.Requests != 6 { // 4 good + 2 bad-body (405 is counted by the mux, not the handler)
		t.Errorf("observe endpoint requests = %d, want 6", epObs.Requests)
	}
	if epObs.Errors != 2 {
		t.Errorf("observe endpoint errors = %d, want 2", epObs.Errors)
	}
	if epObs.Latency.Total != 6 {
		t.Errorf("observe latency total = %d, want 6", epObs.Latency.Total)
	}
	if resp, _ = getJSON(t, ts.URL+"/v1/stats?path=p1"); resp.StatusCode != http.StatusOK {
		t.Errorf("per-path stats: status %d", resp.StatusCode)
	}
	if resp, _ = getJSON(t, ts.URL+"/v1/stats?path=zzz"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("per-path stats unknown: status %d, want 404", resp.StatusCode)
	}

	// Debug vars is valid JSON with the service section.
	resp, data = getJSON(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars: status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(data, &vars); err != nil {
		t.Fatalf("debug/vars body %s: %v", data, err)
	}
	if _, ok := vars["predsvc"]; !ok {
		t.Errorf("debug/vars missing predsvc section: %s", data)
	}
}

// TestPredictResponsesByteIdentical replays a fixed trace against two
// fresh servers and requires every /v1/predict body to match byte for
// byte — the acceptance criterion that determinism survives the service
// layer.
func TestPredictResponsesByteIdentical(t *testing.T) {
	series := SyntheticSeries(3, 50, 4242)
	run := func() [][]byte {
		srv := NewServer(Config{Shards: 8, Capacity: 64})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		var bodies [][]byte
		for _, ps := range series {
			for i, x := range ps.Throughputs {
				in := ps.Inputs[i]
				postJSON(t, ts.URL+"/v1/measure", fmt.Sprintf(
					`{"path":%q,"rtt_s":%g,"loss_rate":%g,"avail_bw_bps":%g}`,
					ps.Path, in.RTT, in.LossRate, in.AvailBw))
				_, body := getJSON(t, ts.URL+"/v1/predict?path="+ps.Path)
				bodies = append(bodies, body)
				postJSON(t, ts.URL+"/v1/observe", fmt.Sprintf(
					`{"path":%q,"throughput_bps":%g}`, ps.Path, x))
			}
		}
		return bodies
	}
	b1 := run()
	b2 := run()
	if len(b1) != len(b2) {
		t.Fatalf("body counts differ: %d vs %d", len(b1), len(b2))
	}
	for i := range b1 {
		if !bytes.Equal(b1[i], b2[i]) {
			t.Fatalf("predict body %d differs across runs:\n%s\n%s", i, b1[i], b2[i])
		}
	}
}

// TestPredictShardCountInvariance: the same request sequence must produce
// the same predict bodies whatever the shard count — sharding is a
// concurrency artifact, not part of the service's visible behaviour.
func TestPredictShardCountInvariance(t *testing.T) {
	series := SyntheticSeries(4, 30, 17)
	run := func(shards int) []byte {
		srv := NewServer(Config{Shards: shards, Capacity: 64})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		var all bytes.Buffer
		for _, ps := range series {
			for i, x := range ps.Throughputs {
				in := ps.Inputs[i]
				postJSON(t, ts.URL+"/v1/measure", fmt.Sprintf(
					`{"path":%q,"rtt_s":%g,"loss_rate":%g,"avail_bw_bps":%g}`,
					ps.Path, in.RTT, in.LossRate, in.AvailBw))
				_, body := getJSON(t, ts.URL+"/v1/predict?path="+ps.Path)
				all.Write(body)
				postJSON(t, ts.URL+"/v1/observe", fmt.Sprintf(
					`{"path":%q,"throughput_bps":%g}`, ps.Path, x))
			}
		}
		return all.Bytes()
	}
	if !bytes.Equal(run(1), run(32)) {
		t.Error("predict bodies differ between 1-shard and 32-shard registries")
	}
}
