package predsvc

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/predict"
)

// RegisterObsMetrics re-exports the server's counters through an obs
// registry in Prometheus form. Everything is bridged with scrape-time
// callbacks over the existing atomic Metrics struct — the request path
// keeps its single accounting site and nothing is double-counted.
//
// The catalogue:
//
//	predsvc_requests_total{endpoint=E}            requests served, per endpoint
//	predsvc_errors_total{endpoint=E}              4xx/5xx responses, per endpoint
//	predsvc_request_duration_seconds{endpoint=E}  latency histogram (2^i µs buckets)
//	predsvc_observations_total …                  the business + resilience counters
//	predsvc_paths, predsvc_path_capacity          registry occupancy
//	predsvc_evictions_total                       hot-tier LRU evictions
//	predsvc_store_hot_paths, …_cold_paths         storage-tier occupancy
//	predsvc_store_spills_total, …_faults_total    disk-tier traffic (see store.TierStats)
//	predsvc_uptime_seconds                        since NewServer
//	predsvc_rmsre{predictor=F}                    mean rolling RMSRE (Eq. 5) across paths, per family
//	predsvc_regret{family=F}                      mean rolling regret vs best-in-hindsight, per family
//	predsvc_family_selected_total{family=F}       predict responses each family won
//	predsvc_interval_coverage                     fraction of observations inside [p10,p90]
//	predsvc_lso_shifts, predsvc_lso_outliers      LSO detections summed over live sessions
//	predsvc_ready, predsvc_draining               lifecycle gauges behind /readyz
//	predsvc_handoff_*_total                       shard-handoff traffic (export/import/skip/drop)
//
// NewServer calls this automatically when Config.Obs is set; it is
// exported for callers that mount a server behind their own Obs.
func (r *Server) RegisterObsMetrics(m *obs.Registry) {
	for ep := endpoint(0); ep < epCount; ep++ {
		ep := ep
		label := fmt.Sprintf("{endpoint=%q}", endpointNames[ep])
		m.CounterFunc("predsvc_requests_total"+label, "requests served",
			func() uint64 { return r.metrics.requests[ep].Load() })
		m.CounterFunc("predsvc_errors_total"+label, "requests answered with a 4xx/5xx status",
			func() uint64 { return r.metrics.errors[ep].Load() })
		m.HistogramFunc("predsvc_request_duration_seconds"+label, "request latency",
			func() obs.HistogramState { return latencyState(&r.metrics.latency[ep]) })
	}

	counters := []struct {
		name, help string
		v          interface{ Load() uint64 }
	}{
		{"predsvc_observations_total", "throughput observations absorbed", &r.metrics.observations},
		{"predsvc_predictions_total", "predict responses served", &r.metrics.predictions},
		{"predsvc_snapshots_written_total", "registry snapshots persisted", &r.metrics.snapshotsWritten},
		{"predsvc_panics_recovered_total", "handler panics converted to 500s", &r.metrics.panicsRecovered},
		{"predsvc_requests_shed_total", "requests shed with 429 past the in-flight cap", &r.metrics.requestsShed},
		{"predsvc_rejected_inputs_total", "observations/measurements rejected as invalid", &r.metrics.rejectedInputs},
		{"predsvc_snapshot_retries_total", "snapshot write backoff retries", &r.metrics.snapshotRetries},
		{"predsvc_snapshot_failures_total", "failed snapshot write attempts", &r.metrics.snapshotFailures},
		{"predsvc_stale_predictions_total", "predict responses whose FB forecast was stale", &r.metrics.stalePredictions},
		{"predsvc_handoff_exported_total", "sessions streamed out by /v1/sessions/export", &r.metrics.handoffExported},
		{"predsvc_handoff_imported_total", "sessions applied by /v1/sessions/import", &r.metrics.handoffImported},
		{"predsvc_handoff_skipped_total", "import records skipped by last-writer-wins", &r.metrics.handoffSkipped},
		{"predsvc_handoff_dropped_total", "sessions deleted by /v1/sessions/drop after handoff", &r.metrics.handoffDropped},
	}
	for _, c := range counters {
		m.CounterFunc(c.name, c.help, c.v.Load)
	}

	// Lifecycle: what /readyz answers, as scrapeable gauges — a rolling
	// restart shows up as predsvc_ready dropping to 0 with
	// predsvc_draining at 1 while in-flight requests finish.
	m.GaugeFunc("predsvc_ready", "1 when the server answers /readyz with 200 (not draining, not restoring)",
		func() float64 {
			if r.Ready() {
				return 1
			}
			return 0
		})
	m.GaugeFunc("predsvc_draining", "1 once BeginDrain flipped the server to draining (one-way)",
		func() float64 {
			if r.Draining() {
				return 1
			}
			return 0
		})

	m.GaugeFunc("predsvc_paths", "paths currently registered",
		func() float64 { return float64(r.reg.Len()) })
	m.GaugeFunc("predsvc_path_capacity", "registry hot-tier path capacity",
		func() float64 { return float64(r.reg.Capacity()) })
	m.CounterFunc("predsvc_evictions_total", "hot-tier LRU path evictions",
		r.reg.Evictions)

	// Storage tiers (see internal/predsvc/store): on the in-memory store
	// cold/spills/faults stay zero; on a spill store they track the disk
	// tier — occupancy gauges, and counters for sessions serialized out
	// (spills) and read back (faults).
	m.GaugeFunc("predsvc_store_hot_paths", "sessions resident in the in-memory hot tier",
		func() float64 { return float64(r.reg.TierStats().HotPaths) })
	m.GaugeFunc("predsvc_store_cold_paths", "sessions resident only in the spill log",
		func() float64 { return float64(r.reg.TierStats().ColdPaths) })
	m.CounterFunc("predsvc_store_spills_total", "sessions spilled to the cold tier on eviction",
		func() uint64 { return r.reg.TierStats().Spills })
	m.CounterFunc("predsvc_store_faults_total", "spill-log reads that rebuilt a session",
		func() uint64 { return r.reg.TierStats().Faults })
	m.CounterFunc("predsvc_store_errors_total", "spill records dropped on checksum or codec failure",
		func() uint64 { return r.reg.TierStats().Errors })
	m.GaugeFunc("predsvc_uptime_seconds", "seconds since the server was built",
		func() float64 { return time.Since(r.start).Seconds() })
	m.GaugeFunc("predsvc_goroutines", "goroutines in the process",
		func() float64 { return float64(runtime.NumGoroutine()) })

	// Per-family tournament metrics. The zoo is identical on every path,
	// so a probe session supplies the family names; the gauges average
	// each family's rolling RMSRE (paper Eq. 5) and regret over the
	// paths where its error window has content, and the counters track
	// how often each family won the online selection.
	probe := newSession("", r.cfg)
	for i, f := range probe.families {
		i, name := i, f.name
		m.GaugeFunc(fmt.Sprintf("predsvc_rmsre{predictor=%q}", name),
			"mean rolling RMSRE (Eq. 5) across paths",
			func() float64 { return r.meanRMSRE(i) })
		m.GaugeFunc(fmt.Sprintf("predsvc_regret{family=%q}", name),
			"mean rolling regret vs the best-in-hindsight family, across paths",
			func() float64 { return r.meanRegret(i) })
		m.CounterFunc(fmt.Sprintf("predsvc_family_selected_total{family=%q}", name),
			"predict responses this family won",
			func() uint64 { return r.metrics.familySelections[i].Load() })
	}
	m.GaugeFunc("predsvc_interval_coverage",
		"fraction of observations inside the standing [p10,p90] interval, across paths",
		func() float64 { return r.intervalCoverage() })

	m.GaugeFunc("predsvc_lso_shifts", "level shifts detected, summed over live sessions",
		func() float64 { s, _ := r.lsoTotals(); return float64(s) })
	m.GaugeFunc("predsvc_lso_outliers", "samples currently labelled outliers, summed over live sessions",
		func() float64 { _, o := r.lsoTotals(); return float64(o) })
}

// latencyState converts one endpoint's exponential latency histogram
// (bucket i = latency < 2^i µs) into Prometheus histogram state. The sum
// is estimated from bucket midpoints, exactly like HistogramSnapshot's
// mean.
func latencyState(h *histogram) obs.HistogramState {
	snap := h.snapshot()
	bounds := make([]float64, histBuckets-1)
	for i := range bounds {
		bounds[i] = float64(uint64(1)<<uint(i)) * 1e-6
	}
	return obs.HistogramState{
		UpperBounds: bounds,
		Counts:      snap.Counts,
		Sum:         snap.MeanUsec() * float64(snap.Total) * 1e-6,
	}
}

// meanRMSRE averages family i's rolling RMSRE over every live session
// that has scored at least one forecast for it. Sessions self-lock; the
// scrape never blocks the registry shards on predictor state.
func (r *Server) meanRMSRE(i int) float64 {
	var sum float64
	var n int
	r.reg.forEachLRU(func(s *Session) {
		if v, ok := s.familyRMSRE(i); ok {
			sum += v
			n++
		}
	})
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// meanRegret averages family i's rolling regret (mean |E| gap to the
// session's best family) over every live session where it has scored.
func (r *Server) meanRegret(i int) float64 {
	var sum float64
	var n int
	r.reg.forEachLRU(func(s *Session) {
		if v, ok := s.familyRegret(i); ok {
			sum += v
			n++
		}
	})
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// intervalCoverage sums the coverage counters over live sessions: the
// fraction of observations that landed inside the standing [P10,P90]
// interval of the then-selected family (0 until anything was scored;
// nominal is 0.8).
func (r *Server) intervalCoverage() float64 {
	var in, total uint64
	r.reg.forEachLRU(func(s *Session) {
		i, t := s.coverage()
		in += i
		total += t
	})
	if total == 0 {
		return 0
	}
	return float64(in) / float64(total)
}

// lsoTotals sums LSO detections over every live session.
func (r *Server) lsoTotals() (shifts, outliers int) {
	r.reg.forEachLRU(func(s *Session) {
		sh, out := s.lsoStats()
		shifts += sh
		outliers += out
	})
	return
}

// familyRMSRE returns family i's rolling RMSRE and whether its window
// has scored anything.
func (s *Session) familyRMSRE(i int) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i >= len(s.families) {
		return 0, false
	}
	w := s.families[i].err
	if w.count() == 0 {
		return 0, false
	}
	return w.rmsre(s.cfg.ErrClamp)
}

// familyRegret returns family i's rolling regret — its mean |E| minus
// the lowest mean |E| among the session's families — and whether its
// window has scored anything.
func (s *Session) familyRegret(i int) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i >= len(s.families) || s.families[i].err.count() == 0 {
		return 0, false
	}
	minMean := math.Inf(1)
	for _, f := range s.families {
		if f.err.count() == 0 {
			continue
		}
		if m := f.err.meanAbs(); m < minMean {
			minMean = m
		}
	}
	return s.families[i].err.meanAbs() - minMean, true
}

// lsoStats sums level-shift and outlier detections over the session's
// LSO-wrapped ensemble members (zero when LSO is disabled).
func (s *Session) lsoStats() (shifts, outliers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.hbFamilies() {
		if l, ok := f.hb.(*predict.LSO); ok {
			shifts += l.Shifts
			outliers += l.Outliers
		}
	}
	return
}
