package predsvc

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/predsvc/cluster"
)

// RebalanceConfig drives one cluster resize (see Rebalance).
type RebalanceConfig struct {
	// From is the current membership (node base URLs) — every node that
	// may hold sessions now. Required.
	From []string
	// To is the new membership the cluster is resizing to. Required.
	To []string
	// HTTP overrides the HTTP client (default: a fresh one).
	HTTP *http.Client
	// Attempts caps how many times one source node's handoff pass
	// (export → import → drop) is retried before Rebalance fails
	// (default 5). Retries are idempotent: import is last-writer-wins,
	// drop runs only after every import succeeded.
	Attempts int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// RebalanceReport summarizes a Rebalance run.
type RebalanceReport struct {
	// Sources is how many nodes were asked to hand sessions off.
	Sources int
	// Moved is how many sessions the final successful passes exported.
	Moved int
	// Imported / Skipped split Moved by what the destinations did:
	// installed fresh, or skipped as already present with at least as
	// many observations (the signature of a retried pass).
	Imported int
	Skipped  int
	// Dropped is how many sessions the sources deleted after handoff.
	Dropped int
	// Retries counts failed passes that were retried — non-zero when a
	// mid-transfer kill (injected or real) was ridden out.
	Retries int
}

func (r RebalanceReport) String() string {
	return fmt.Sprintf("rebalance: %d sources, %d sessions moved (%d imported, %d skipped), %d dropped, %d retries",
		r.Sources, r.Moved, r.Imported, r.Skipped, r.Dropped, r.Retries)
}

// Rebalance drives an N→M membership change: for every node of the old
// membership it exports the sessions the new rendezvous map assigns
// elsewhere, imports each one into its new owner, and only then tells
// the source to drop them. One source's pass is atomic-by-retry rather
// than transactional: a kill anywhere in the middle leaves the sessions
// still owned by the source, and the retried pass re-exports them —
// destinations skip the already-applied records via last-writer-wins,
// so a retry never double-counts and always converges. Nodes absent
// from To export everything they hold (leaving the cluster); nodes
// absent From import only (joining).
func Rebalance(ctx context.Context, cfg RebalanceConfig) (*RebalanceReport, error) {
	if len(cfg.From) == 0 || len(cfg.To) == 0 {
		return nil, errors.New("predsvc: rebalance needs both the old (From) and new (To) membership")
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{}
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 5
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	newMap := cluster.New(cfg.To...)
	rep := &RebalanceReport{Sources: len(cfg.From)}
	for _, src := range cfg.From {
		var lastErr error
		ok := false
		for attempt := 1; attempt <= cfg.Attempts; attempt++ {
			if attempt > 1 {
				rep.Retries++
				logf("source %s: attempt %d/%d after: %v", src, attempt, cfg.Attempts, lastErr)
				select {
				case <-ctx.Done():
					return rep, ctx.Err()
				case <-time.After(time.Duration(attempt) * 100 * time.Millisecond):
				}
			}
			moved, imported, skipped, dropped, err := rebalanceOne(ctx, cfg.HTTP, src, cfg.To, newMap, logf)
			if err != nil {
				lastErr = err
				continue
			}
			rep.Moved += moved
			rep.Imported += imported
			rep.Skipped += skipped
			rep.Dropped += dropped
			ok = true
			break
		}
		if !ok {
			return rep, fmt.Errorf("predsvc: rebalance of %s failed after %d attempts: %w", src, cfg.Attempts, lastErr)
		}
	}
	return rep, nil
}

// rebalanceOne runs one source's full handoff pass: export, verify the
// stream, import per destination, drop. Any failure aborts the pass
// with nothing destroyed — the caller retries the whole pass.
func rebalanceOne(ctx context.Context, hc *http.Client, src string, to []string, newMap *cluster.Map, logf func(string, ...any)) (moved, imported, skipped, dropped int, err error) {
	view, _ := json.Marshal(ClusterViewRequest{Nodes: to, Self: src})
	records, err := exportSessions(ctx, hc, src, view)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("export from %s: %w", src, err)
	}
	logf("source %s: exported %d sessions", src, len(records))
	// Partition by new owner and import, destinations in sorted order so
	// a retried pass replays identically.
	byDst := make(map[string][]HandoffRecord)
	for _, rec := range records {
		byDst[newMap.Node(rec.Path)] = append(byDst[newMap.Node(rec.Path)], rec)
	}
	dsts := make([]string, 0, len(byDst))
	for d := range byDst {
		dsts = append(dsts, d)
	}
	sort.Strings(dsts)
	for _, dst := range dsts {
		imp, skp, ierr := importSessions(ctx, hc, dst, byDst[dst])
		if ierr != nil {
			return 0, 0, 0, 0, fmt.Errorf("import into %s: %w", dst, ierr)
		}
		logf("source %s: imported %d (+%d already present) into %s", src, imp, skp, dst)
		imported += imp
		skipped += skp
	}
	// Every destination confirmed: only now is deleting on the source
	// safe. Drop is idempotent, so a retry after a failed drop is fine.
	var dres SessionsDropResponse
	if err := handoffPost(ctx, hc, src+"/v1/sessions/drop", view, &dres); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("drop on %s: %w", src, err)
	}
	logf("source %s: dropped %d sessions, %d remain", src, dres.Dropped, dres.Remaining)
	return len(records), imported, skipped, dres.Dropped, nil
}

// exportSessions POSTs /v1/sessions/export and parses the NDJSON stream,
// verifying every record checksum and the chained trailer. A stream cut
// short of its trailer — a mid-transfer kill — is an error; nothing from
// it is trusted.
func exportSessions(ctx context.Context, hc *http.Client, src string, view []byte) ([]HandoffRecord, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, src+"/v1/sessions/export", bytes.NewReader(view))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	br := bufio.NewReader(resp.Body)
	var records []HandoffRecord
	chain := sha256.New()
	for {
		line, rerr := br.ReadBytes('\n')
		if len(line) == 0 && rerr != nil {
			return nil, fmt.Errorf("truncated export stream after %d records (no trailer)", len(records))
		}
		var rec HandoffRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("bad export record %d: %w", len(records), err)
		}
		if rec.Trailer {
			if rec.Count != len(records) {
				return nil, fmt.Errorf("export trailer count %d, stream carried %d records", rec.Count, len(records))
			}
			if got := hex.EncodeToString(chain.Sum(nil)); got != rec.Sum {
				return nil, errors.New("export stream checksum mismatch")
			}
			return records, nil
		}
		sum := sha256.Sum256(rec.State)
		if hex.EncodeToString(sum[:]) != rec.Sum {
			return nil, fmt.Errorf("export record %d (%s): state checksum mismatch", len(records), rec.Path)
		}
		chain.Write(sum[:])
		records = append(records, rec)
	}
}

// importSessions streams records (with a fresh chained trailer) into
// dst's /v1/sessions/import.
func importSessions(ctx context.Context, hc *http.Client, dst string, records []HandoffRecord) (imported, skipped int, err error) {
	var buf bytes.Buffer
	chain := sha256.New()
	for _, rec := range records {
		sum := sha256.Sum256(rec.State)
		chain.Write(sum[:])
		line, err := json.Marshal(rec)
		if err != nil {
			return 0, 0, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	trailer, _ := json.Marshal(HandoffRecord{Trailer: true, Count: len(records), Sum: hex.EncodeToString(chain.Sum(nil))})
	buf.Write(trailer)
	buf.WriteByte('\n')
	var resp SessionsImportResponse
	if err := handoffPost(ctx, hc, dst+"/v1/sessions/import", buf.Bytes(), &resp); err != nil {
		return 0, 0, err
	}
	return resp.Imported, resp.Skipped, nil
}

// handoffPost POSTs body and decodes a 200 response into out.
func handoffPost(ctx context.Context, hc *http.Client, url string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr apiError
		dec := json.NewDecoder(resp.Body)
		if dec.Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("status %s: %s", resp.Status, apiErr.Error)
		}
		return fmt.Errorf("status %s", resp.Status)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
