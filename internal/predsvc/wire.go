package predsvc

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/fastjson"
	"repro/internal/predict"
)

// This file is the zero-alloc-in-steady-state wire fastpath for the hot
// endpoints (/v1/observe, /v1/measure, /v1/predict and both batch
// endpoints): hand-rolled encoders and decoders from internal/fastjson
// threaded through a pooled per-request context, with the reflection
// path in server.go kept as the fallback for cold endpoints and as the
// correctness oracle (Config.DisableFastpath serves every request
// through it; the compat tests and predload's digest e2e hold the two
// byte-identical).
//
// Pooling ownership: a handler gets one wireCtx at entry and puts it
// back at exit; everything request-scoped — the body buffer, the
// decoder, the decoded path, the response buffer, the Prediction being
// encoded — lives inside it and is never referenced after the handler
// returns. Session state is never pooled: PredictInto copies what the
// response needs under the session lock.

// wireCtx is the pooled per-request workspace of the fastpath handlers.
type wireCtx struct {
	body []byte       // request body, read once up front
	dec  fastjson.Dec // decoder over body
	out  []byte       // response bytes (without the trailing newline)
	path []byte       // decoded path field, copied out of decoder scratch
	miss []byte       // predict-batch: pre-encoded "missing" members
	pred Prediction   // recycled via Session.PredictInto
	fb   FBState      // backing store for pred.FB
}

var wirePool = sync.Pool{New: func() any { return &wireCtx{} }}

func getWire() *wireCtx { return wirePool.Get().(*wireCtx) }

// maxWireRetained caps the response/miss buffers a pooled wireCtx may
// keep: a worst-case batch response (4096 predictions) is allowed to
// stay warm, anything larger is dropped.
const maxWireRetained = 8 << 20

func putWire(wc *wireCtx) {
	if cap(wc.body) > maxBodyBytes+1024 {
		wc.body = nil
	}
	if cap(wc.out) > maxWireRetained {
		wc.out = nil
	}
	if cap(wc.miss) > maxWireRetained {
		wc.miss = nil
	}
	wc.dec.Reset(nil)
	wirePool.Put(wc)
}

// errBodyTooLarge carries the exact text http.MaxBytesReader reports, so
// the fastpath's 400 body matches the oracle's byte for byte.
var errBodyTooLarge = errors.New("http: request body too large")

// readBody reads the whole request body into the pooled buffer, bounded
// by maxBodyBytes like the oracle's MaxBytesReader (same error text; the
// oracle additionally arranges a connection close, which a client
// pushing megabyte bodies at a service expecting hundred-byte ones can
// live without on this path).
func (wc *wireCtx) readBody(req *http.Request) error {
	b := wc.body[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := req.Body.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if len(b) > maxBodyBytes {
			wc.body = b
			return errBodyTooLarge
		}
		if err != nil {
			wc.body = b
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// setPath copies a decoded string into the wireCtx-owned path buffer.
// Decoder-returned slices may alias its scratch buffer, which the next
// escaped key or string value overwrites; the copy keeps the path valid
// for the rest of the request.
func (wc *wireCtx) setPath(s []byte) {
	wc.path = append(wc.path[:0], s...)
}

// jenc is the response encoder: an append buffer plus a sticky flag for
// floats JSON cannot represent. When bad is set the caller abandons the
// buffer and reports the same encoding failure json.Marshal would.
type jenc struct {
	b   []byte
	bad bool
}

func (e *jenc) raw(s string)  { e.b = append(e.b, s...) }
func (e *jenc) str(s string)  { e.b = fastjson.AppendString(e.b, s) }
func (e *jenc) strb(s []byte) { e.b = fastjson.AppendStringBytes(e.b, s) }
func (e *jenc) u64(u uint64)  { e.b = fastjson.AppendUint64(e.b, u) }
func (e *jenc) i64(i int64)   { e.b = fastjson.AppendInt64(e.b, i) }
func (e *jenc) bln(v bool)    { e.b = fastjson.AppendBool(e.b, v) }

func (e *jenc) f64(f float64) {
	var ok bool
	if e.b, ok = fastjson.AppendFloat64(e.b, f); !ok {
		e.bad = true
		e.b = append(e.b, '0')
	}
}

// appendPrediction encodes p exactly as json.Marshal does: fields in
// declaration order, omitempty honored, hb null when nil.
func appendPrediction(e *jenc, p *Prediction) {
	e.raw(`{"path":`)
	e.str(p.Path)
	e.raw(`,"observations":`)
	e.u64(p.Observations)
	if p.Best != "" {
		e.raw(`,"best":`)
		e.str(p.Best)
	}
	if p.BestForecastBps != 0 {
		e.raw(`,"best_forecast_bps":`)
		e.f64(p.BestForecastBps)
	}
	e.raw(`,"hb":`)
	if p.HB == nil {
		e.raw("null")
	} else {
		e.raw("[")
		for i := range p.HB {
			if i > 0 {
				e.raw(",")
			}
			st := &p.HB[i]
			e.raw(`{"name":`)
			e.str(st.Name)
			e.raw(`,"ready":`)
			e.bln(st.Ready)
			e.raw(`,"forecast_bps":`)
			e.f64(st.ForecastBps)
			e.raw(`,"rmsre":`)
			e.f64(st.RMSRE)
			e.raw(`,"error_count":`)
			e.i64(int64(st.ErrorCount))
			e.raw("}")
		}
		e.raw("]")
	}
	if p.FB != nil {
		e.raw(`,"fb":{"rtt_s":`)
		e.f64(p.FB.RTTSeconds)
		e.raw(`,"loss_rate":`)
		e.f64(p.FB.LossRate)
		e.raw(`,"avail_bw_bps":`)
		e.f64(p.FB.AvailBwBps)
		e.raw(`,"forecast_bps":`)
		e.f64(p.FB.ForecastBps)
		e.raw(`,"rmsre":`)
		e.f64(p.FB.RMSRE)
		e.raw(`,"error_count":`)
		e.i64(int64(p.FB.ErrorCount))
		e.raw(`,"measurement_age":`)
		e.u64(p.FB.MeasurementAge)
		if p.FB.Stale {
			e.raw(`,"stale":true`)
		}
		e.raw("}")
	}
	if p.Family != "" {
		e.raw(`,"family":`)
		e.str(p.Family)
	}
	if p.FamilyForecastBps != 0 {
		e.raw(`,"family_forecast_bps":`)
		e.f64(p.FamilyForecastBps)
	}
	if p.P10Bps != 0 {
		e.raw(`,"p10_bps":`)
		e.f64(p.P10Bps)
	}
	if p.P50Bps != 0 {
		e.raw(`,"p50_bps":`)
		e.f64(p.P50Bps)
	}
	if p.P90Bps != 0 {
		e.raw(`,"p90_bps":`)
		e.f64(p.P90Bps)
	}
	if len(p.Families) > 0 {
		e.raw(`,"families":[`)
		for i := range p.Families {
			if i > 0 {
				e.raw(",")
			}
			f := &p.Families[i]
			e.raw(`{"name":`)
			e.str(f.Name)
			e.raw(`,"ready":`)
			e.bln(f.Ready)
			e.raw(`,"forecast_bps":`)
			e.f64(f.ForecastBps)
			if f.P10Bps != 0 {
				e.raw(`,"p10_bps":`)
				e.f64(f.P10Bps)
			}
			if f.P50Bps != 0 {
				e.raw(`,"p50_bps":`)
				e.f64(f.P50Bps)
			}
			if f.P90Bps != 0 {
				e.raw(`,"p90_bps":`)
				e.f64(f.P90Bps)
			}
			e.raw(`,"rmsre":`)
			e.f64(f.RMSRE)
			e.raw(`,"error_count":`)
			e.i64(int64(f.ErrorCount))
			e.raw(`,"regret":`)
			e.f64(f.Regret)
			if f.Stale {
				e.raw(`,"stale":true`)
			}
			e.raw("}")
		}
		e.raw("]")
	}
	e.raw("}")
}

// decodeObserveFields decodes one ObserveRequest-shaped object from d
// into wc.path / the returned throughput, with encoding/json's field
// semantics (null no-ops, duplicate keys last-wins, unknown fields
// skipped but validated). Resets wc.path first, so batch items never
// inherit the previous item's path.
func decodeObserveFields(d *fastjson.Dec, wc *wireCtx) (tput float64, err error) {
	wc.path = wc.path[:0]
	err = d.Object(func(key []byte) error {
		switch string(key) {
		case "path":
			if d.Null() {
				return nil
			}
			s, err := d.Str()
			if err != nil {
				return err
			}
			wc.setPath(s)
		case "throughput_bps":
			if d.Null() {
				return nil
			}
			f, err := d.Float64()
			if err != nil {
				return err
			}
			tput = f
		default:
			return d.Skip()
		}
		return nil
	})
	return tput, err
}

// writeWire writes a fastpath-encoded JSON body, with the same trailing
// newline writeJSON emits.
func writeWire(w http.ResponseWriter, status int, body []byte) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write(wireNL)
	return status
}

var wireNL = []byte("\n")

func (r *Server) handleObserveFast(w http.ResponseWriter, req *http.Request) int {
	wc := getWire()
	defer putWire(wc)
	if err := wc.readBody(req); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	wc.dec.Reset(wc.body)
	tput, err := decodeObserveFields(&wc.dec, wc)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if len(wc.path) == 0 {
		return writePre(w, http.StatusBadRequest, errBodyMissingPath)
	}
	if !ValidObservation(tput) {
		r.metrics.rejectedInputs.Add(1)
		return writePre(w, http.StatusBadRequest, errBodyBadThroughput)
	}
	n := r.reg.GetOrCreateBytes(wc.path).Observe(tput)
	r.metrics.observations.Add(1)
	e := jenc{b: wc.out[:0]}
	e.raw(`{"path":`)
	e.strb(wc.path)
	e.raw(`,"observations":`)
	e.u64(n)
	e.raw("}")
	wc.out = e.b
	return writeWire(w, http.StatusOK, wc.out)
}

func (r *Server) handleMeasureFast(w http.ResponseWriter, req *http.Request) int {
	wc := getWire()
	defer putWire(wc)
	if err := wc.readBody(req); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	wc.dec.Reset(wc.body)
	wc.path = wc.path[:0]
	var rtt, loss, availBw float64
	d := &wc.dec
	err := d.Object(func(key []byte) error {
		var dst *float64
		switch string(key) {
		case "path":
			if d.Null() {
				return nil
			}
			s, err := d.Str()
			if err != nil {
				return err
			}
			wc.setPath(s)
			return nil
		case "rtt_s":
			dst = &rtt
		case "loss_rate":
			dst = &loss
		case "avail_bw_bps":
			dst = &availBw
		default:
			return d.Skip()
		}
		if d.Null() {
			return nil
		}
		f, err := d.Float64()
		if err != nil {
			return err
		}
		*dst = f
		return nil
	})
	if err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if len(wc.path) == 0 {
		return writePre(w, http.StatusBadRequest, errBodyMissingPath)
	}
	in := predict.FBInputs{RTT: rtt, LossRate: loss, AvailBw: availBw}
	if !ValidMeasurement(in) {
		r.metrics.rejectedInputs.Add(1)
		return writePre(w, http.StatusBadRequest, errBodyBadMeasurement)
	}
	f := r.reg.GetOrCreateBytes(wc.path).SetMeasurement(in)
	e := jenc{b: wc.out[:0]}
	e.raw(`{"path":`)
	e.strb(wc.path)
	e.raw(`,"forecast_bps":`)
	e.f64(f)
	e.raw("}")
	wc.out = e.b
	if e.bad {
		return writeEncodingFailure(w)
	}
	return writeWire(w, http.StatusOK, wc.out)
}

func (r *Server) handlePredictFast(w http.ResponseWriter, req *http.Request) int {
	wc := getWire()
	defer putWire(wc)
	if !queryPath(req.URL.RawQuery, wc) || len(wc.path) == 0 {
		return writePre(w, http.StatusBadRequest, errBodyMissingPathQ)
	}
	sess, ok := r.reg.LookupBytes(wc.path)
	if !ok {
		return writeError(w, http.StatusNotFound, "unknown path %q", wc.path)
	}
	r.metrics.predictions.Add(1)
	sess.PredictInto(&wc.pred, &wc.fb)
	p := &wc.pred
	if p.FB != nil && p.FB.Stale {
		r.metrics.stalePredictions.Add(1)
	}
	if p.Family != "" {
		r.metrics.recordSelection(p.Family)
	}
	e := jenc{b: wc.out[:0]}
	appendPrediction(&e, p)
	wc.out = e.b
	if e.bad {
		return writeEncodingFailure(w)
	}
	return writeWire(w, http.StatusOK, wc.out)
}

func (r *Server) handleObserveBatchFast(w http.ResponseWriter, req *http.Request) int {
	wc := getWire()
	defer putWire(wc)
	if err := wc.readBody(req); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	d := &wc.dec
	d.Reset(wc.body)
	// Pass 1: validate the whole document and count items, recording
	// where the (last, as json's duplicate-key rule has it) observations
	// array starts — nothing is applied until the batch as a whole is
	// known to be well-formed and under the item cap, exactly like the
	// oracle's decode-then-apply.
	count, arrStart := 0, -1
	err := d.Object(func(key []byte) error {
		if string(key) != "observations" {
			return d.Skip()
		}
		start := d.Pos()
		n := 0
		if err := d.Array(func() error {
			n++
			_, err := decodeObserveFields(d, wc)
			return err
		}); err != nil {
			return err
		}
		count, arrStart = n, start
		return nil
	})
	if err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if count > maxBatchItems {
		return writeError(w, http.StatusBadRequest, "batch of %d observations exceeds the %d-item cap", count, maxBatchItems)
	}
	// Pass 2: stream the items straight into the registry — no
	// 4096-element slice is ever materialized.
	accepted, rejected := 0, 0
	if arrStart >= 0 {
		d.Seek(arrStart)
		if err := d.Array(func() error {
			tput, err := decodeObserveFields(d, wc)
			if err != nil {
				return err
			}
			if len(wc.path) == 0 || !ValidObservation(tput) {
				r.metrics.rejectedInputs.Add(1)
				rejected++
				return nil
			}
			r.reg.GetOrCreateBytes(wc.path).Observe(tput)
			r.metrics.observations.Add(1)
			accepted++
			return nil
		}); err != nil {
			// Unreachable: pass 1 validated this region.
			return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		}
	}
	e := jenc{b: wc.out[:0]}
	e.raw(`{"accepted":`)
	e.i64(int64(accepted))
	e.raw(`,"rejected":`)
	e.i64(int64(rejected))
	e.raw("}")
	wc.out = e.b
	return writeWire(w, http.StatusOK, wc.out)
}

func (r *Server) handlePredictBatchFast(w http.ResponseWriter, req *http.Request) int {
	wc := getWire()
	defer putWire(wc)
	if err := wc.readBody(req); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	d := &wc.dec
	d.Reset(wc.body)
	// Pass 1: validate and count (see handleObserveBatchFast).
	count, arrStart := 0, -1
	err := d.Object(func(key []byte) error {
		if string(key) != "paths" {
			return d.Skip()
		}
		start := d.Pos()
		n := 0
		if err := d.Array(func() error {
			n++
			if d.Null() {
				return nil
			}
			_, err := d.Str()
			return err
		}); err != nil {
			return err
		}
		count, arrStart = n, start
		return nil
	})
	if err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if count > maxBatchItems {
		return writeError(w, http.StatusBadRequest, "batch of %d paths exceeds the %d-item cap", count, maxBatchItems)
	}
	// Pass 2: stream one prediction per known path directly into the
	// response buffer; unknown paths accumulate pre-encoded in wc.miss.
	e := jenc{b: wc.out[:0]}
	e.raw(`{"predictions":`)
	npred, nmiss := 0, 0
	wc.miss = wc.miss[:0]
	if arrStart >= 0 {
		d.Seek(arrStart)
		if err := d.Array(func() error {
			wc.path = wc.path[:0]
			if !d.Null() {
				s, err := d.Str()
				if err != nil {
					return err
				}
				wc.setPath(s)
			}
			sess, ok := r.reg.LookupBytes(wc.path)
			if !ok {
				if nmiss > 0 {
					wc.miss = append(wc.miss, ',')
				}
				wc.miss = fastjson.AppendStringBytes(wc.miss, wc.path)
				nmiss++
				return nil
			}
			r.metrics.predictions.Add(1)
			sess.PredictInto(&wc.pred, &wc.fb)
			p := &wc.pred
			if p.FB != nil && p.FB.Stale {
				r.metrics.stalePredictions.Add(1)
			}
			if p.Family != "" {
				r.metrics.recordSelection(p.Family)
			}
			if npred == 0 {
				e.raw("[")
			} else {
				e.raw(",")
			}
			appendPrediction(&e, p)
			npred++
			return nil
		}); err != nil {
			return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		}
	}
	if npred == 0 {
		// json.Marshal renders the never-appended nil slice as null.
		e.raw("null")
	} else {
		e.raw("]")
	}
	if nmiss > 0 {
		e.raw(`,"missing":[`)
		e.b = append(e.b, wc.miss...)
		e.raw("]")
	}
	e.raw("}")
	wc.out = e.b
	if e.bad {
		return writeEncodingFailure(w)
	}
	return writeWire(w, http.StatusOK, wc.out)
}

// queryPath extracts the "path" query parameter into wc.path with
// url.ParseQuery's exact semantics — first valid pair wins, segments
// with semicolons or bad percent-escapes are skipped, '+' decodes to
// space — without building the url.Values map. Reports whether a valid
// "path" key was found.
func queryPath(raw string, wc *wireCtx) bool {
	for len(raw) > 0 {
		var seg string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			seg, raw = raw[:i], raw[i+1:]
		} else {
			seg, raw = raw, ""
		}
		if seg == "" || strings.IndexByte(seg, ';') >= 0 {
			continue
		}
		key, value := seg, ""
		if i := strings.IndexByte(seg, '='); i >= 0 {
			key, value = seg[:i], seg[i+1:]
		}
		if strings.IndexByte(key, '%') >= 0 || strings.IndexByte(key, '+') >= 0 {
			kb, ok := unescapeQuery(wc.path[:0], key)
			wc.path = kb[:0:cap(kb)]
			if !ok || string(kb) != "path" {
				continue
			}
		} else if key != "path" {
			continue
		}
		vb, ok := unescapeQuery(wc.path[:0], value)
		if !ok {
			continue
		}
		wc.path = vb
		return true
	}
	wc.path = wc.path[:0]
	return false
}

// unescapeQuery appends the query-unescaped form of s to dst, decoding
// %XX and '+'. ok is false on a malformed escape (the pair is skipped,
// as url.ParseQuery does).
func unescapeQuery(dst []byte, s string) ([]byte, bool) {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '%':
			if i+2 >= len(s) {
				return dst, false
			}
			hi, ok1 := unhex(s[i+1])
			lo, ok2 := unhex(s[i+2])
			if !ok1 || !ok2 {
				return dst, false
			}
			dst = append(dst, hi<<4|lo)
			i += 2
		case '+':
			dst = append(dst, ' ')
		default:
			dst = append(dst, c)
		}
	}
	return dst, true
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
