package predsvc

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func getReady(t *testing.T, url string) (int, readyResponse) {
	t.Helper()
	resp, data := getJSON(t, url+"/readyz")
	var rr readyResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatalf("bad /readyz body %s: %v", data, err)
	}
	return resp.StatusCode, rr
}

// TestHealthAndReadyEndpoints: /healthz says "the process is up" no
// matter what; /readyz flips to 503 one-way when the server drains, and
// /v1/stats mirrors both bits for operators.
func TestHealthAndReadyEndpoints(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, data := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d %s", resp.StatusCode, data)
	}
	if status, rr := getReady(t, ts.URL); status != http.StatusOK || !rr.Ready {
		t.Fatalf("/readyz before drain: %d %+v, want 200 ready", status, rr)
	}

	srv.BeginDrain()
	if status, rr := getReady(t, ts.URL); status != http.StatusServiceUnavailable || rr.Ready || !rr.Draining {
		t.Fatalf("/readyz while draining: %d %+v, want 503 draining", status, rr)
	}
	// Draining is not dead: health and the API keep answering.
	if resp, _ := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatal("/healthz went down during drain")
	}
	if resp, data := postJSON(t, ts.URL+"/v1/observe", `{"path":"d","throughput_bps":1e7}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("API refused traffic during drain: %d %s", resp.StatusCode, data)
	}
	var st StatsResponse
	_, data := getJSON(t, ts.URL+"/v1/stats")
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Ready || !st.Draining {
		t.Fatalf("stats ready=%v draining=%v during drain", st.Ready, st.Draining)
	}
}

// TestReadyzWhileRestoring: a server mid-restore is alive but must not
// receive routed traffic yet.
func TestReadyzWhileRestoring(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.notReady.Store(true)
	if status, rr := getReady(t, ts.URL); status != http.StatusServiceUnavailable || !rr.Restoring || rr.Draining {
		t.Fatalf("/readyz while restoring: %d %+v, want 503 restoring", status, rr)
	}
	srv.notReady.Store(false)
	if status, _ := getReady(t, ts.URL); status != http.StatusOK {
		t.Fatalf("/readyz after restore: %d, want 200", status)
	}
	if !srv.Ready() {
		t.Fatal("Server.Ready() disagrees with /readyz")
	}
}

// TestHealthBypassesLoadShedding: with the in-flight cap saturated the
// API sheds 429s, but the health endpoints must keep answering — a
// probe that gets shed reads as a dead node and amplifies the overload.
func TestHealthBypassesLoadShedding(t *testing.T) {
	srv := NewServer(Config{MaxInFlight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.sem <- struct{}{} // saturate the in-flight semaphore
	defer func() { <-srv.sem }()

	// The API sheds...
	if resp, _ := postJSON(t, ts.URL+"/v1/observe", `{"path":"s2","throughput_bps":1e7}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated API answered %d, want 429", resp.StatusCode)
	}
	// ...while health stays reachable.
	if resp, _ := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz shed under load: %d", resp.StatusCode)
	}
	if status, _ := getReady(t, ts.URL); status != http.StatusOK {
		t.Fatalf("/readyz shed under load: %d", status)
	}
}

// TestServeDrainWindow: cancelling Serve's context starts the drain —
// /readyz turns 503 while, for DrainDelay, the API still serves. This is
// the window a rolling restart leans on: cluster clients see "not ready"
// and stop routing here before connections start failing.
func TestServeDrainWindow(t *testing.T) {
	srv := NewServer(Config{DrainDelay: 400 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	// Wait for the listener to serve, then trigger the drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp, err := http.Get(url + "/readyz"); err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()

	// Inside the drain window: not ready, still serving.
	sawDraining := false
	for i := 0; i < 50; i++ {
		resp, err := http.Get(url + "/readyz")
		if err != nil {
			break // listener closed — window over
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			sawDraining = true
			r2, err := http.Post(url+"/v1/observe", "application/json",
				strings.NewReader(`{"path":"w","throughput_bps":1e7}`))
			if err == nil {
				if r2.StatusCode != http.StatusOK {
					t.Errorf("API answered %d during the drain window, want 200", r2.StatusCode)
				}
				r2.Body.Close()
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawDraining {
		t.Fatal("never observed /readyz=503 inside the drain window")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after the drain")
	}
	if !srv.Draining() {
		t.Fatal("server not marked draining after shutdown")
	}
}
