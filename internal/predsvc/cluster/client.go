package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"
)

// ClientConfig tunes a Client.
type ClientConfig struct {
	// Nodes are the cluster's base URLs; paths route over them with the
	// same rendezvous Map every other client computes. Required.
	Nodes []string
	// HTTP overrides the underlying http.Client (default: a fresh client
	// with a modestly sized keep-alive pool).
	HTTP *http.Client
	// BackoffMin/Max bound the capped exponential backoff between
	// retries, with up to 50% jitter added so many clients recovering
	// from the same node restart do not retry in lockstep (defaults
	// 5ms / 500ms).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// RetryDeadline bounds how long one request keeps retrying through
	// 429s, 5xxs and connection errors before giving up — the window a
	// node restart must fit into (default 30s; negative disables
	// retrying entirely).
	RetryDeadline time.Duration
	// ProbeInterval is the /readyz polling cadence while a node is down
	// (default 25ms).
	ProbeInterval time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.HTTP == nil {
		c.HTTP = &http.Client{
			Transport: &http.Transport{MaxIdleConns: 16, MaxIdleConnsPerHost: 16},
		}
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 5 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.RetryDeadline == 0 {
		c.RetryDeadline = 30 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 25 * time.Millisecond
	}
	return c
}

// ClientStats snapshots a Client's retry accounting.
type ClientStats struct {
	// Requests counts every attempt sent per node (including retried
	// attempts), keyed by node base URL.
	Requests map[string]uint64
	// Completed counts requests that ultimately returned a response,
	// keyed by node base URL — the per-node share of served traffic.
	Completed map[string]uint64
	// ShedRetries counts 429 responses absorbed by backing off.
	ShedRetries uint64
	// Retries counts all backoff sleeps (429, 5xx, transport).
	Retries uint64
	// Failovers counts requests that hit at least one transport error
	// (connection refused/reset — a node down or restarting) and still
	// completed after riding it out.
	Failovers uint64
}

// Client routes requests to rendezvous-owned nodes and retries through
// the failures a live cluster throws at it: 429 load shedding, 5xx
// responses, and connection errors while a node restarts. On a
// connection error it probes the node's /readyz until the node is back
// (a draining node answers 503 and is treated as still down), then
// replays the request — so a rolling restart stalls the caller briefly
// instead of failing it. Requests are buffered only as their byte
// slices (the caller's body), so the memory held while a node is down
// is bounded by the caller's own pipelining.
//
// All methods are goroutine-safe.
type Client struct {
	cfg ClientConfig
	m   *Map

	idx       map[string]int // node URL → counter index
	requests  []atomic.Uint64
	completed []atomic.Uint64
	shed      atomic.Uint64
	retries   atomic.Uint64
	failovers atomic.Uint64
}

// NewClient builds a Client over the given nodes. Panics when cfg.Nodes
// is empty.
func NewClient(cfg ClientConfig) *Client {
	if len(cfg.Nodes) == 0 {
		panic("cluster: ClientConfig.Nodes is required")
	}
	cfg = cfg.withDefaults()
	c := &Client{
		cfg:       cfg,
		m:         New(cfg.Nodes...),
		idx:       make(map[string]int, len(cfg.Nodes)),
		requests:  make([]atomic.Uint64, len(cfg.Nodes)),
		completed: make([]atomic.Uint64, len(cfg.Nodes)),
	}
	for i, n := range cfg.Nodes {
		c.idx[n] = i
	}
	return c
}

// Map returns the rendezvous map the client routes with.
func (c *Client) Map() *Map { return c.m }

// Node returns the base URL of the node owning path.
func (c *Client) Node(path string) string { return c.m.Node(path) }

// Nodes returns the node list.
func (c *Client) Nodes() []string { return c.m.Nodes() }

// HTTPClient returns the underlying http.Client (for traffic that must
// bypass the retry discipline, like chaos probes).
func (c *Client) HTTPClient() *http.Client { return c.cfg.HTTP }

// Stats snapshots the retry accounting.
func (c *Client) Stats() ClientStats {
	s := ClientStats{
		Requests:    make(map[string]uint64, len(c.cfg.Nodes)),
		Completed:   make(map[string]uint64, len(c.cfg.Nodes)),
		ShedRetries: c.shed.Load(),
		Retries:     c.retries.Load(),
		Failovers:   c.failovers.Load(),
	}
	for i, n := range c.cfg.Nodes {
		s.Requests[n] = c.requests[i].Load()
		s.Completed[n] = c.completed[i].Load()
	}
	return s
}

// Probe asks one node's health endpoints: healthy is /healthz == 200
// (the process is up), ready is /readyz == 200 (it wants traffic).
func (c *Client) Probe(ctx context.Context, node string) (healthy, ready bool) {
	healthy = c.probeOne(ctx, node+"/healthz")
	ready = healthy && c.probeOne(ctx, node+"/readyz")
	return
}

func (c *Client) probeOne(ctx context.Context, url string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// WaitReady polls node's /readyz until it answers 200, ctx is done, or
// the deadline elapses (non-positive: wait on ctx alone).
func (c *Client) WaitReady(ctx context.Context, node string, deadline time.Duration) error {
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	for {
		if c.probeOne(ctx, node+"/readyz") {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: node %s not ready: %w", node, ctx.Err())
		case <-time.After(c.cfg.ProbeInterval):
		}
	}
}

// retryable says whether a status code is worth replaying: shed load,
// or a server-side failure a restart/retry can clear. 4xx responses
// other than 429 pass through — they are the caller's bug or a genuine
// "not found", and retrying cannot change them.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// Do sends one request to node (a base URL from Nodes, or any reachable
// base URL), retrying 429/5xx responses and transport errors with
// capped jittered backoff until RetryDeadline. It returns the final
// status and body; err is non-nil only when the deadline or ctx expired
// with the request still failing. body may be nil for GETs.
func (c *Client) Do(ctx context.Context, method, node, path string, body []byte) (int, []byte, error) {
	var cancel context.CancelFunc
	retryCtx := ctx
	if c.cfg.RetryDeadline > 0 {
		retryCtx, cancel = context.WithTimeout(ctx, c.cfg.RetryDeadline)
		defer cancel()
	}
	backoff := c.cfg.BackoffMin
	sawTransportErr := false
	for {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, node+path, rd)
		if err != nil {
			return 0, nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if i, ok := c.idx[node]; ok {
			c.requests[i].Add(1)
		}
		resp, err := c.cfg.HTTP.Do(req)
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				err = rerr
			} else if !retryable(resp.StatusCode) || c.cfg.RetryDeadline < 0 {
				if sawTransportErr {
					c.failovers.Add(1)
				}
				if i, ok := c.idx[node]; ok {
					c.completed[i].Add(1)
				}
				return resp.StatusCode, data, nil
			} else if resp.StatusCode == http.StatusTooManyRequests {
				c.shed.Add(1)
			}
		}
		if c.cfg.RetryDeadline < 0 {
			return 0, nil, err
		}
		if err != nil {
			// Connection refused/reset: the node is down or restarting.
			// Probe its /readyz so the retry lands once it is actually
			// back, instead of burning the backoff budget on a dead port.
			if !sawTransportErr {
				sawTransportErr = true
			}
			if werr := c.WaitReady(retryCtx, node, 0); werr != nil {
				return 0, nil, fmt.Errorf("cluster: %s %s%s: %v (while down: %w)", method, node, path, err, werr)
			}
		}
		c.retries.Add(1)
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		select {
		case <-retryCtx.Done():
			if err == nil {
				err = fmt.Errorf("cluster: %s %s%s: retry deadline exceeded", method, node, path)
			}
			return 0, nil, err
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > c.cfg.BackoffMax {
			backoff = c.cfg.BackoffMax
		}
	}
}
