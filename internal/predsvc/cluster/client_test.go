package cluster

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func testClient(t *testing.T, nodes ...string) *Client {
	t.Helper()
	return NewClient(ClientConfig{
		Nodes:         nodes,
		BackoffMin:    time.Millisecond,
		BackoffMax:    5 * time.Millisecond,
		RetryDeadline: 5 * time.Second,
		ProbeInterval: 2 * time.Millisecond,
	})
}

// TestDoRetries429And5xx: shed load and server-side failures are retried
// until the node answers, and both flavors land in the stats.
func TestDoRetries429And5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.WriteHeader(http.StatusInternalServerError)
		default:
			w.Write([]byte(`{"ok":true}`))
		}
	}))
	defer ts.Close()

	c := testClient(t, ts.URL)
	status, body, err := c.Do(context.Background(), http.MethodGet, ts.URL, "/x", nil)
	if err != nil || status != http.StatusOK {
		t.Fatalf("Do = %d, %v; want 200", status, err)
	}
	if string(body) != `{"ok":true}` {
		t.Fatalf("body %q", body)
	}
	st := c.Stats()
	if st.Retries != 2 || st.ShedRetries != 1 {
		t.Fatalf("stats %+v, want 2 retries of which 1 shed", st)
	}
	if st.Failovers != 0 {
		t.Fatalf("HTTP-level retries counted as failovers: %+v", st)
	}
	if st.Requests[ts.URL] != 3 || st.Completed[ts.URL] != 1 {
		t.Fatalf("per-node accounting %+v, want 3 attempts / 1 completed", st)
	}
}

// TestDoPassesThroughClientErrors: 4xx other than 429 is the caller's
// problem; it must come back immediately, not retry.
func TestDoPassesThroughClientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such path"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	c := testClient(t, ts.URL)
	status, _, err := c.Do(context.Background(), http.MethodGet, ts.URL, "/x", nil)
	if err != nil || status != http.StatusNotFound {
		t.Fatalf("Do = %d, %v; want 404 passed through", status, err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("404 was attempted %d times, want 1", n)
	}
}

// TestDoRetryDeadline: a node that never recovers fails the request once
// the retry window closes, with an error rather than a fabricated status.
func TestDoRetryDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := NewClient(ClientConfig{
		Nodes:         []string{ts.URL},
		BackoffMin:    time.Millisecond,
		BackoffMax:    2 * time.Millisecond,
		RetryDeadline: 50 * time.Millisecond,
	})
	start := time.Now()
	_, _, err := c.Do(context.Background(), http.MethodGet, ts.URL, "/x", nil)
	if err == nil {
		t.Fatal("Do succeeded against a permanently failing node")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("deadline took %v to fire", d)
	}
}

// TestDoNoRetryWhenDisabled: RetryDeadline < 0 turns the client into a
// plain transport — the first response, whatever it is, is the answer.
func TestDoNoRetryWhenDisabled(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := NewClient(ClientConfig{Nodes: []string{ts.URL}, RetryDeadline: -1})
	status, _, err := c.Do(context.Background(), http.MethodGet, ts.URL, "/x", nil)
	if err != nil || status != http.StatusServiceUnavailable {
		t.Fatalf("Do = %d, %v; want the 503 handed back", status, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("retry-disabled client attempted %d times", calls.Load())
	}
}

// TestDoRidesOutNodeRestart is the failover path end to end: the node is
// down (connection refused) when the request starts, the client parks on
// /readyz probes, and the request completes — counted as a failover —
// once the node comes back on the same address.
func TestDoRidesOutNodeRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // node is now down; the port stays ours to reclaim

	c := testClient(t, "http://"+addr)
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		status, _, err := c.Do(context.Background(), http.MethodGet, "http://"+addr, "/v1/stats", nil)
		done <- result{status, err}
	}()

	// Let the client hit connection-refused and start probing, then bring
	// the node back up on the same address.
	time.Sleep(50 * time.Millisecond)
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ready":true}`))
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"paths":0}`))
	})
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("reclaim %s: %v", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln2)
	defer srv.Close()

	select {
	case r := <-done:
		if r.err != nil || r.status != http.StatusOK {
			t.Fatalf("Do after restart = %d, %v; want 200", r.status, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request never completed after the node came back")
	}
	st := c.Stats()
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1 (one request rode out the restart)", st.Failovers)
	}
}

// TestWaitReady: a 503 node (draining, or still restoring) is not ready;
// WaitReady keeps polling until the flip and honors its deadline.
func TestWaitReady(t *testing.T) {
	var ready atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ready":true}`))
	}))
	defer ts.Close()

	c := testClient(t, ts.URL)
	if err := c.WaitReady(context.Background(), ts.URL, 20*time.Millisecond); err == nil {
		t.Fatal("WaitReady returned before the node was ready")
	}
	if healthy, rdy := c.Probe(context.Background(), ts.URL); healthy || rdy {
		// /healthz is a 404 on this stub, so the node reads as unhealthy.
		t.Fatalf("Probe = healthy=%v ready=%v on a 503/404 stub", healthy, rdy)
	}
	go func() {
		time.Sleep(15 * time.Millisecond)
		ready.Store(true)
	}()
	if err := c.WaitReady(context.Background(), ts.URL, 5*time.Second); err != nil {
		t.Fatalf("WaitReady after flip: %v", err)
	}
}
