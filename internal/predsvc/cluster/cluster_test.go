package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestOwnerDeterministic: two independently built maps over the same nodes
// must agree on every path — the property that lets every client route
// without coordination.
func TestOwnerDeterministic(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	m1 := New(nodes...)
	m2 := New(nodes...)
	for i := 0; i < 1000; i++ {
		p := fmt.Sprintf("path-%d", i)
		if m1.Owner(p) != m2.Owner(p) {
			t.Fatalf("maps disagree on %s: %d vs %d", p, m1.Owner(p), m2.Owner(p))
		}
	}
	if got := m1.Node("path-0"); got != nodes[m1.Owner("path-0")] {
		t.Fatalf("Node/Owner inconsistent: %q", got)
	}
}

// TestBalance: rendezvous hashing must spread paths roughly evenly — each
// of 4 nodes owns within [15%, 35%] of 20k paths (fair share 25%).
func TestBalance(t *testing.T) {
	m := New("n0", "n1", "n2", "n3")
	counts := make([]int, 4)
	const paths = 20_000
	for i := 0; i < paths; i++ {
		counts[m.Owner(fmt.Sprintf("path-%d", i))]++
	}
	for n, c := range counts {
		frac := float64(c) / paths
		if frac < 0.15 || frac > 0.35 {
			t.Fatalf("node %d owns %.1f%% of paths (counts %v)", n, 100*frac, counts)
		}
	}
}

// TestMinimalDisruption: removing a node must only remap the paths it
// owned; every other path keeps its owner. This is the property that makes
// rendezvous hashing cluster-resize friendly.
func TestMinimalDisruption(t *testing.T) {
	full := New("n0", "n1", "n2")
	reduced := New("n0", "n1")
	moved := 0
	const paths = 5000
	for i := 0; i < paths; i++ {
		p := fmt.Sprintf("path-%d", i)
		before := full.Node(p)
		after := reduced.Node(p)
		if before == "n2" {
			moved++
			continue // had to move somewhere
		}
		if before != after {
			t.Fatalf("%s moved %s → %s though its owner survived", p, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no paths were owned by the removed node — balance test should have caught this")
	}
}

// TestChurnOnlyReassignedPathsMove is the property test behind cluster
// resizes: across a random sequence of joins and leaves, a path changes
// owner only when the change forces it — its owner left, or it is
// claimed by the node that just joined. Any other movement would mean a
// resize shuffles state that never needed to move, and the handoff
// protocol would ship (and clients would re-route) far more than the
// minimal set.
func TestChurnOnlyReassignedPathsMove(t *testing.T) {
	const (
		paths  = 2000
		steps  = 60
		trials = 3
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		// Start from a mid-sized membership so both joins and leaves are
		// immediately possible.
		live := map[string]bool{"n0": true, "n1": true, "n2": true}
		next := 3
		nodesOf := func() []string {
			out := make([]string, 0, len(live))
			for n := range live {
				out = append(out, n)
			}
			return out
		}
		owner := make(map[string]string, paths)
		m := New(nodesOf()...)
		for i := 0; i < paths; i++ {
			p := fmt.Sprintf("path-%d", i)
			owner[p] = m.Node(p)
		}
		for step := 0; step < steps; step++ {
			join := len(live) == 1 || (len(live) < 8 && rng.Intn(2) == 0)
			var changed string
			if join {
				changed = fmt.Sprintf("n%d", next)
				next++
				live[changed] = true
			} else {
				names := nodesOf()
				changed = names[rng.Intn(len(names))]
				delete(live, changed)
			}
			m = New(nodesOf()...)
			moved := 0
			for i := 0; i < paths; i++ {
				p := fmt.Sprintf("path-%d", i)
				was, now := owner[p], m.Node(p)
				if was != now {
					moved++
					switch {
					case join && now != changed:
						t.Fatalf("trial %d step %d (join %s): %s moved %s → %s, but only the joining node may claim paths",
							trial, step, changed, p, was, now)
					case !join && was != changed:
						t.Fatalf("trial %d step %d (leave %s): %s moved %s → %s though its owner survived",
							trial, step, changed, p, was, now)
					}
					owner[p] = now
				} else if !join && was == changed {
					t.Fatalf("trial %d step %d: %s still owned by departed node %s", trial, step, p, changed)
				}
			}
			// A membership change with zero movement means the new/old node
			// owned nothing — statistically impossible at 2000 paths unless
			// the hash is degenerate.
			if moved == 0 {
				t.Fatalf("trial %d step %d (%s, join=%v): no paths moved across a membership change",
					trial, step, changed, join)
			}
			// And movement must stay near the fair share: a join to N nodes
			// should claim ~paths/N, never the majority of all paths.
			if moved > paths/2 && len(live) > 2 {
				t.Fatalf("trial %d step %d: %d/%d paths moved — far beyond the reassigned set",
					trial, step, moved, paths)
			}
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	empty := New()
	if got := empty.Owner("x"); got != -1 {
		t.Fatalf("empty map Owner = %d, want -1", got)
	}
	if got := empty.Node("x"); got != "" {
		t.Fatalf("empty map Node = %q, want empty", got)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty map Len = %d", empty.Len())
	}
	one := New("solo")
	for _, p := range []string{"a", "b", "c"} {
		if got := one.Node(p); got != "solo" {
			t.Fatalf("single-node map routed %s to %q", p, got)
		}
	}
	if got := one.Nodes(); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("Nodes = %v", got)
	}
}
