// Package cluster partitions prediction-service paths across replicas
// with rendezvous (highest-random-weight) hashing. Every client that
// knows the same node list routes a path to the same owner — no
// coordination, no shared state — and removing a node only reassigns the
// paths that node owned, never shuffling the rest (the property that
// keeps per-path predictor history, and thus prediction digests, stable
// as a cluster is resized).
//
// cmd/predload uses a Map for client-side routing (-cluster); any
// deployment gateway can do the same with a few lines.
package cluster

import "hash/fnv"

// Map assigns path names to a fixed list of node addresses.
type Map struct {
	nodes  []string
	hashes []uint64
}

// New builds a map over the given nodes. Order matters only for ties
// (which are astronomically unlikely); duplicates are kept as given.
// A Map over zero nodes is valid but cannot route.
func New(nodes ...string) *Map {
	m := &Map{nodes: append([]string(nil), nodes...)}
	m.hashes = make([]uint64, len(m.nodes))
	for i, n := range m.nodes {
		h := fnv.New64a()
		h.Write([]byte(n))
		m.hashes[i] = h.Sum64()
	}
	return m
}

// Nodes returns the node list the map routes over.
func (m *Map) Nodes() []string { return append([]string(nil), m.nodes...) }

// Len returns the number of nodes.
func (m *Map) Len() int { return len(m.nodes) }

// Owner returns the index of the node owning path, or -1 for an empty
// map: the node whose (node, path) hash scores highest.
func (m *Map) Owner(path string) int {
	h := fnv.New64a()
	h.Write([]byte(path))
	ph := h.Sum64()
	best, bestScore := -1, uint64(0)
	for i, nh := range m.hashes {
		score := mix(nh ^ ph)
		if best == -1 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Node returns the address of the node owning path ("" for an empty map).
func (m *Map) Node(path string) string {
	i := m.Owner(path)
	if i < 0 {
		return ""
	}
	return m.nodes[i]
}

// mix is the splitmix64 finalizer: a full-avalanche bijection that turns
// the xor of two FNV hashes into a uniformly distributed score, so the
// max over nodes behaves like independent draws per (node, path) pair.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
