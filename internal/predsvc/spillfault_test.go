package predsvc

import (
	"encoding/json"
	"testing"
)

// TestSpillFaultMidstreamByteIdentity guards the two-tier store's core
// invariant at the session level: a snapshot/restore cycle in the middle
// of a path's life (exactly what a spill + fault-back does) must leave
// every subsequent predict response byte-identical to the uninterrupted
// session's — including after the error windows and the zoo's history
// rings have wrapped, where ring-storage order diverges from
// chronological order and naive accumulation order would drift by ulps.
func TestSpillFaultMidstreamByteIdentity(t *testing.T) {
	series := SyntheticSeries(1, 120, 7)[0]
	cfg := Config{Shards: 1, Capacity: 8}.withDefaults()
	live := newSession(series.Path, cfg)
	for k := 0; k < 60; k++ {
		live.SetMeasurement(series.Inputs[k])
		live.Observe(series.Throughputs[k])
	}
	data, err := json.Marshal(live.snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var ps PathSnapshot
	if err := json.Unmarshal(data, &ps); err != nil {
		t.Fatal(err)
	}
	faulted := newSession(series.Path, cfg)
	faulted.restore(ps)
	b1, _ := json.Marshal(live.Predict())
	b2, _ := json.Marshal(faulted.Predict())
	if string(b1) != string(b2) {
		t.Fatalf("diverged immediately after restore:\nlive    %s\nfaulted %s", b1, b2)
	}
	for k := 60; k < 120; k++ {
		live.SetMeasurement(series.Inputs[k])
		live.Observe(series.Throughputs[k])
		faulted.SetMeasurement(series.Inputs[k])
		faulted.Observe(series.Throughputs[k])
		b1, _ := json.Marshal(live.Predict())
		b2, _ := json.Marshal(faulted.Predict())
		if string(b1) != string(b2) {
			t.Fatalf("diverged at epoch %d:\nlive    %s\nfaulted %s", k, b1, b2)
		}
	}
}
