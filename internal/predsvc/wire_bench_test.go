package predsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/predict"
)

// Wire codec benchmarks: each fastpath bench has a stdlib counterpart so
// the speedup claim is measured, not asserted. The BenchmarkWire*
// encode/decode benches are gated by scripts/bench.sh on both ns/op
// regression and allocs/op == 0 — the fastpath's whole reason to exist.

var benchObserveBody = []byte(`{"path":"ams-3.example.net/sfo-1.example.net","throughput_bps":52428800.5}`)

func BenchmarkWireObserveDecode(b *testing.B) {
	wc := getWire()
	defer putWire(wc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wc.dec.Reset(benchObserveBody)
		tput, err := decodeObserveFields(&wc.dec, wc)
		if err != nil || tput == 0 || len(wc.path) == 0 {
			b.Fatal("bad decode")
		}
	}
}

func BenchmarkJSONObserveDecode(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var req ObserveRequest
		if err := json.Unmarshal(benchObserveBody, &req); err != nil || req.ThroughputBps == 0 {
			b.Fatal("bad decode")
		}
	}
}

func BenchmarkWireObserveEncode(b *testing.B) {
	path := []byte("ams-3.example.net/sfo-1.example.net")
	wc := getWire()
	defer putWire(wc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := jenc{b: wc.out[:0]}
		e.raw(`{"path":`)
		e.strb(path)
		e.raw(`,"observations":`)
		e.u64(123456)
		e.raw("}")
		wc.out = e.b
		if len(wc.out) == 0 || e.bad {
			b.Fatal("bad encode")
		}
	}
}

func BenchmarkJSONObserveEncode(b *testing.B) {
	resp := ObserveResponse{Path: "ams-3.example.net/sfo-1.example.net", Observations: 123456}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(resp)
		if err != nil || len(data) == 0 {
			b.Fatal("bad encode")
		}
	}
}

// benchPrediction is a steady-state prediction with every section
// populated — HB trio, FB, family tournament with quantiles — captured
// from a live session so the encode benches exercise the real shape.
func benchPrediction(b *testing.B) *Prediction {
	b.Helper()
	s := newSession("ams-3.example.net/sfo-1.example.net", Config{}.withDefaults())
	for i := 0; i < 64; i++ {
		s.SetMeasurement(benchFBInputs(i))
		s.Observe(5e7 * (1 + 0.01*float64(i%7)))
	}
	p := new(Prediction)
	s.PredictInto(p, new(FBState))
	if p.Best == "" || p.FB == nil || len(p.Families) == 0 {
		b.Fatal("bench prediction not fully populated")
	}
	return p
}

func benchFBInputs(i int) predict.FBInputs {
	return predict.FBInputs{
		RTT:      0.04 + 0.001*float64(i%5),
		LossRate: 0.001 * float64(i%3),
		AvailBw:  6e7,
	}
}

func BenchmarkWirePredictEncode(b *testing.B) {
	p := benchPrediction(b)
	wc := getWire()
	defer putWire(wc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := jenc{b: wc.out[:0]}
		appendPrediction(&e, p)
		wc.out = e.b
		if len(wc.out) == 0 || e.bad {
			b.Fatal("bad encode")
		}
	}
}

func BenchmarkJSONPredictEncode(b *testing.B) {
	p := benchPrediction(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(p)
		if err != nil || len(data) == 0 {
			b.Fatal("bad encode")
		}
	}
}

// BenchmarkWirePredictRoundTrip is the full hot predict cycle minus
// net/http: decode the query, look the session up by bytes, fill the
// pooled Prediction under the lock, and encode the response.
func BenchmarkWirePredictRoundTrip(b *testing.B) {
	reg := NewRegistry(Config{})
	sess := reg.GetOrCreate("bench-path")
	for i := 0; i < 64; i++ {
		sess.Observe(5e7 * (1 + 0.01*float64(i%7)))
	}
	wc := getWire()
	defer putWire(wc)
	const rawQuery = "path=bench-path"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !queryPath(rawQuery, wc) {
			b.Fatal("no path")
		}
		s, ok := reg.LookupBytes(wc.path)
		if !ok {
			b.Fatal("missing session")
		}
		s.PredictInto(&wc.pred, &wc.fb)
		e := jenc{b: wc.out[:0]}
		appendPrediction(&e, &wc.pred)
		wc.out = e.b
		if len(wc.out) == 0 || e.bad {
			b.Fatal("bad encode")
		}
	}
}

// reusableBody is an io.ReadCloser over a fixed payload that can be
// rewound between handler invocations without reallocating.
type reusableBody struct{ r bytes.Reader }

func (rb *reusableBody) Read(p []byte) (int, error) { return rb.r.Read(p) }
func (rb *reusableBody) Close() error               { return nil }

// nullResponseWriter discards the response; the handler benches measure
// the server's work, not httptest's bookkeeping.
type nullResponseWriter struct{ h http.Header }

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}

func benchObserveHandler(b *testing.B, disableFastpath bool) {
	s, err := Open(Config{DisableFastpath: disableFastpath})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.handleObserve
	if !disableFastpath {
		h = s.handleObserveFast
	}
	body := &reusableBody{}
	body.r.Reset(benchObserveBody)
	req := httptest.NewRequest("POST", "/v1/observe", nil)
	req.Body = body
	w := &nullResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.r.Reset(benchObserveBody)
		if status := h(w, req); status != http.StatusOK {
			b.Fatalf("status %d", status)
		}
	}
}

// BenchmarkWireObserveHandler / BenchmarkOracleObserveHandler measure
// one observe through the whole handler (body read, decode, registry,
// encode, write) on each path.
func BenchmarkWireObserveHandler(b *testing.B)   { benchObserveHandler(b, false) }
func BenchmarkOracleObserveHandler(b *testing.B) { benchObserveHandler(b, true) }

// BenchmarkPredloadServiceTime runs a small end-to-end replay (real HTTP
// over loopback, fastpath on) and reports the client-observed latency
// quantiles predload now tracks, as custom metrics next to ns/op.
func BenchmarkPredloadServiceTime(b *testing.B) {
	srv, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	series := SyntheticSeries(16, 30, 1)
	var rep *LoadReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = Replay(context.Background(), LoadConfig{BaseURL: ts.URL, Workers: 4}, series)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rep != nil {
		b.ReportMetric(float64(rep.LatencyP50Usec), "p50-us")
		b.ReportMetric(float64(rep.LatencyP99Usec), "p99-us")
	}
}
