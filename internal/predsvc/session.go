package predsvc

import (
	"math"
	"sync"

	"repro/internal/predict"
	"repro/internal/stats"
)

// Session is the goroutine-safe per-path predictor state: the full
// predictor zoo — the paper's HB ensemble, the FB predictor with its
// latest a-priori measurements, and (unless Config.DisableZoo) the
// stability switcher, feature regression and ECM families — each with a
// rolling error window. All methods may be called concurrently; a
// single mutex serializes access to the whole zoo, which is required
// because the predict.HB implementations themselves are not
// goroutine-safe.
//
// The accuracy bookkeeping follows the paper's protocol exactly: when a
// new throughput observation X arrives, each family's standing forecast
// X̂ (made before seeing X) is scored with the relative error
// E = (X̂-X)/min(X̂,X) (Eq. 4), and only then is X fed to the
// predictors. The same error windows double as the calibration data for
// the served P10/P50/P90 intervals (see predict.QuantilesForErrors) and
// as the regret bookkeeping of the online family tournament.
type Session struct {
	mu   sync.Mutex
	path string
	cfg  Config

	// families is the zoo in serving order: the three HB ensemble
	// members first (they also populate Prediction.HB), then the
	// switcher, FB, regression and ECM families.
	families []*family

	fb    *predict.FB
	fbIn  predict.FBInputs
	hasFB bool
	// fbSetAtObs is the observation count when the measurements were
	// installed; the gap to the current count is the measurement age that
	// drives staleness flagging (deterministic, unlike wall time).
	fbSetAtObs uint64

	reg *predict.Regression
	ecm *predict.ECM

	// Interval-coverage bookkeeping: covTotal counts observations that
	// arrived while a calibrated [P10,P90] interval was standing for the
	// selected family; covIn counts those that landed inside it.
	covIn, covTotal uint64

	observations uint64
	history      []float64 // recent raw observations, for snapshot/restore

	qscratch []float64 // sort scratch for quantile derivation
}

// familyKind distinguishes how a family forecasts and serializes.
type familyKind int

const (
	famHB familyKind = iota // paper HB ensemble member (also in Prediction.HB)
	famSwitcher
	famFB // formula-based; forecast depends on standing measurements
	famRegression
	famECM
)

// family is one tournament entrant: a named predictor plus its rolling
// Eq.-4 error window. hb is nil only for the FB family, whose forecast
// is a function of the standing measurements rather than of history.
type family struct {
	name string
	kind familyKind
	hb   predict.HB
	err  *errWindow
}

func newSession(path string, cfg Config) *Session {
	wrap := func(p predict.HB) predict.HB {
		if cfg.DisableLSO {
			return p
		}
		return predict.NewLSO(p, cfg.LSO)
	}
	s := &Session{
		path: path,
		cfg:  cfg,
		fb:   predict.NewFB(cfg.FB),
		reg:  predict.NewRegression(cfg.Regression),
		ecm:  predict.NewECM(cfg.ECM),
	}
	add := func(kind familyKind, hb predict.HB, name string) {
		if name == "" {
			name = hb.Name()
		}
		s.families = append(s.families, &family{
			name: name,
			kind: kind,
			hb:   hb,
			err:  newErrWindow(cfg.ErrorWindow),
		})
	}
	add(famHB, wrap(predict.NewMA(cfg.MAOrder)), "")
	add(famHB, wrap(predict.NewEWMA(cfg.EWMAAlpha)), "")
	add(famHB, wrap(predict.NewHoltWinters(cfg.HWAlpha, cfg.HWBeta)), "")
	if !cfg.DisableZoo {
		// Sun et al.'s pairing: a reactive tracker for stable regimes, a
		// robust smoother once the rolling CoV flags volatility.
		sw := predict.NewStabilitySwitcher(
			predict.NewEWMA(cfg.EWMAAlpha), predict.NewMA(cfg.MAOrder), cfg.Switcher)
		add(famSwitcher, sw, "")
	}
	add(famFB, nil, "FB")
	if !cfg.DisableZoo {
		add(famRegression, s.reg, "")
		add(famECM, s.ecm, "")
	}
	return s
}

// hbFamilies returns the three paper-ensemble families (always the
// first three, in MA/EWMA/HW order).
func (s *Session) hbFamilies() []*family { return s.families[:3] }

// fbFamily returns the FB tournament entry.
func (s *Session) fbFamily() *family {
	for _, f := range s.families {
		if f.kind == famFB {
			return f
		}
	}
	return nil
}

// Path returns the path name the session serves.
func (s *Session) Path() string { return s.path }

// Observations returns the lifetime observation count.
func (s *Session) Observations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.observations
}

// coverage returns the interval-coverage counters.
func (s *Session) coverage() (in, total uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.covIn, s.covTotal
}

// ValidObservation reports whether x is a usable throughput sample: finite
// and strictly positive. NaN, ±Inf and non-positive values would poison
// predictor state, error windows and snapshots if absorbed.
func ValidObservation(x float64) bool {
	return x > 0 && !math.IsNaN(x) && !math.IsInf(x, 0)
}

// ValidMeasurement reports whether in is a usable a-priori measurement
// set: finite non-negative RTT and available bandwidth, loss rate in
// [0, 1]. (NaN fails every comparison, so it is rejected by these bounds.)
func ValidMeasurement(in predict.FBInputs) bool {
	finiteNonNeg := func(x float64) bool { return x >= 0 && !math.IsInf(x, 1) }
	return finiteNonNeg(in.RTT) && finiteNonNeg(in.AvailBw) &&
		in.LossRate >= 0 && in.LossRate <= 1
}

// Observe feeds the throughput (bits/s) achieved by the latest transfer on
// the path: every family's standing forecast is scored against it, then
// the predictors absorb it. It returns the new observation count.
// Invalid samples (see ValidObservation) are dropped: the count is
// returned unchanged. The HTTP layer rejects them with a 400 before this
// point; the check here protects direct API users.
func (s *Session) Observe(throughputBps float64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ValidObservation(throughputBps) {
		return s.observations
	}
	s.observeLocked(throughputBps)
	return s.observations
}

func (s *Session) observeLocked(x float64) {
	// Interval calibration: score the standing [P10,P90] of the currently
	// selected family before anything mutates.
	if sel, fc := s.selectLocked(); sel != nil {
		if q, ok := s.quantilesLocked(sel, fc); ok {
			s.covTotal++
			if x >= q.P10 && x <= q.P90 {
				s.covIn++
			}
		}
	}
	for _, f := range s.families {
		if fc, ok := s.forecastLocked(f); ok && fc > 0 {
			f.err.push(s.clampErr(stats.RelativeError(fc, x)))
		}
	}
	for _, f := range s.families {
		if f.hb != nil {
			f.hb.Observe(x)
		}
	}
	s.observations++
	s.history = append(s.history, x)
	if len(s.history) >= 2*s.cfg.HistoryLimit {
		keep := s.history[len(s.history)-s.cfg.HistoryLimit:]
		s.history = append(s.history[:0], keep...)
	}
}

// forecastLocked returns a family's standing forecast.
func (s *Session) forecastLocked(f *family) (float64, bool) {
	if f.kind == famFB {
		if !s.hasFB {
			return 0, false
		}
		fc := s.fb.Predict(s.fbIn)
		return fc, fc > 0
	}
	return f.hb.Predict()
}

// fbStaleLocked reports whether the standing FB measurements are past
// the staleness horizon.
func (s *Session) fbStaleLocked() bool {
	return s.cfg.StaleAfter > 0 && s.observations-s.fbSetAtObs > uint64(s.cfg.StaleAfter)
}

// clampErr bounds a relative error before it enters a rolling window.
// RelativeError is ±Inf when a forecast is non-positive (Holt-Winters can
// forecast ≤ 0 on a falling series), and the windows are serialized
// verbatim into JSON snapshots, which cannot represent infinities. With
// ErrClamp > 0 (the default) this is exactly the clamp RMSRE would apply
// anyway; with clamping disabled, infinities become ±MaxFloat64, which
// still square to +Inf in the RMSRE as documented.
func (s *Session) clampErr(e float64) float64 {
	clamp := s.cfg.ErrClamp
	if clamp <= 0 {
		clamp = math.MaxFloat64
	}
	return math.Max(-clamp, math.Min(clamp, e))
}

// SetMeasurement installs fresh a-priori path measurements (T̂, p̂, Â) for
// the FB predictor — and as conditioning features for the regression and
// ECM families — and returns the FB forecast for them (0 when the inputs
// give no basis for prediction). Installing resets the measurement age
// that drives staleness flagging. Invalid inputs (see ValidMeasurement)
// are dropped and 0 is returned, leaving prior measurements in place.
func (s *Session) SetMeasurement(in predict.FBInputs) float64 {
	if !ValidMeasurement(in) {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setMeasurementLocked(in)
	s.fbSetAtObs = s.observations
	return s.fb.Predict(in)
}

func (s *Session) setMeasurementLocked(in predict.FBInputs) {
	s.fbIn = in
	s.hasFB = true
	s.reg.SetFeatures(in)
	s.ecm.SetConditions(in)
}

// PredictorState reports one ensemble member's standing forecast and
// rolling accuracy.
type PredictorState struct {
	Name        string  `json:"name"`
	Ready       bool    `json:"ready"`
	ForecastBps float64 `json:"forecast_bps"`
	RMSRE       float64 `json:"rmsre"`
	ErrorCount  int     `json:"error_count"`
}

// FBState reports the formula-based side: the latest installed
// measurements, the forecast they produce, its rolling accuracy, and how
// stale the measurements are. MeasurementAge counts observations absorbed
// since the measurements were installed; past Config.StaleAfter the
// forecast is flagged Stale and excluded from best-predictor selection —
// the service degrades to HB-only rather than serving forecasts computed
// from a bygone path state.
type FBState struct {
	RTTSeconds     float64 `json:"rtt_s"`
	LossRate       float64 `json:"loss_rate"`
	AvailBwBps     float64 `json:"avail_bw_bps"`
	ForecastBps    float64 `json:"forecast_bps"`
	RMSRE          float64 `json:"rmsre"`
	ErrorCount     int     `json:"error_count"`
	MeasurementAge uint64  `json:"measurement_age"`
	Stale          bool    `json:"stale,omitempty"`
}

// FamilyState reports one tournament entrant: its standing forecast,
// calibrated quantiles (when enough errors are scored), rolling
// accuracy, and regret — the gap between this family's mean |E| and the
// best family's over the same rolling window (0 for the current
// best-in-hindsight family).
type FamilyState struct {
	Name        string  `json:"name"`
	Ready       bool    `json:"ready"`
	ForecastBps float64 `json:"forecast_bps"`
	P10Bps      float64 `json:"p10_bps,omitempty"`
	P50Bps      float64 `json:"p50_bps,omitempty"`
	P90Bps      float64 `json:"p90_bps,omitempty"`
	RMSRE       float64 `json:"rmsre"`
	ErrorCount  int     `json:"error_count"`
	Regret      float64 `json:"regret"`
	Stale       bool    `json:"stale,omitempty"`
}

// Prediction is the full answer for one path: the paper ensemble's
// forecasts and accuracy (HB/FB/Best, unchanged from the point-forecast
// API), plus the zoo tournament — every family's state with calibrated
// quantiles and regret, the online-selected family, and its P10/P50/P90
// interval at the top level.
type Prediction struct {
	Path            string           `json:"path"`
	Observations    uint64           `json:"observations"`
	Best            string           `json:"best,omitempty"`
	BestForecastBps float64          `json:"best_forecast_bps,omitempty"`
	HB              []PredictorState `json:"hb"`
	FB              *FBState         `json:"fb,omitempty"`

	// Family is the tournament winner: lowest rolling RMSRE among
	// qualified families (≥ MinErrors scored forecasts, ready, positive
	// forecast, FB never while stale); ties break toward zoo order.
	Family            string  `json:"family,omitempty"`
	FamilyForecastBps float64 `json:"family_forecast_bps,omitempty"`
	// P10/P50/P90 are the selected family's calibrated quantiles
	// (omitted until its error window holds enough scored forecasts).
	P10Bps   float64       `json:"p10_bps,omitempty"`
	P50Bps   float64       `json:"p50_bps,omitempty"`
	P90Bps   float64       `json:"p90_bps,omitempty"`
	Families []FamilyState `json:"families,omitempty"`
}

// Predict returns the current forecasts and accuracy for the path. It is
// deterministic: the response depends only on the sequence of Observe and
// SetMeasurement calls the session has absorbed.
func (s *Session) Predict() Prediction {
	var p Prediction
	s.PredictInto(&p, &FBState{})
	return p
}

// PredictInto is Predict for callers that recycle response memory (the
// wire fastpath keeps a pooled Prediction + FBState per request): the
// HB/Families slices are truncated and refilled in place, and fb — which
// must be non-nil — is overwritten and installed as p.FB when the
// session has standing measurements. Every field of *p is reassigned, so
// a recycled value never leaks state between paths.
func (s *Session) PredictInto(p *Prediction, fb *FBState) {
	s.mu.Lock()
	defer s.mu.Unlock()

	*p = Prediction{
		Path:         s.path,
		Observations: s.observations,
		HB:           p.HB[:0],
		Families:     p.Families[:0],
	}
	for _, f := range s.hbFamilies() {
		fc, ok := f.hb.Predict()
		st := PredictorState{Name: f.name, Ready: ok, ForecastBps: fc}
		st.RMSRE, _ = f.err.rmsre(s.cfg.ErrClamp)
		st.ErrorCount = f.err.count()
		p.HB = append(p.HB, st)
	}
	if s.hasFB {
		f := s.fb.Predict(s.fbIn)
		age := s.observations - s.fbSetAtObs
		*fb = FBState{
			RTTSeconds:     s.fbIn.RTT,
			LossRate:       s.fbIn.LossRate,
			AvailBwBps:     s.fbIn.AvailBw,
			ForecastBps:    f,
			ErrorCount:     s.fbFamily().err.count(),
			MeasurementAge: age,
			Stale:          s.fbStaleLocked(),
		}
		fb.RMSRE, _ = s.fbFamily().err.rmsre(s.cfg.ErrClamp)
		p.FB = fb
	}
	p.Best, p.BestForecastBps = s.bestLocked(p)

	// Tournament view: per-family states with quantiles and regret, then
	// the selected family's interval at the top level.
	minMean := math.Inf(1)
	for _, f := range s.families {
		if f.err.count() == 0 {
			continue
		}
		if m := f.err.meanAbs(); m < minMean {
			minMean = m
		}
	}
	for _, f := range s.families {
		fc, ok := s.forecastLocked(f)
		st := FamilyState{Name: f.name, Ready: ok, ForecastBps: fc}
		st.RMSRE, _ = f.err.rmsre(s.cfg.ErrClamp)
		st.ErrorCount = f.err.count()
		if st.ErrorCount > 0 {
			st.Regret = f.err.meanAbs() - minMean
		}
		if f.kind == famFB {
			st.Stale = s.fbStaleLocked()
		}
		if q, qok := s.quantilesLocked(f, fc); qok {
			st.P10Bps, st.P50Bps, st.P90Bps = q.P10, q.P50, q.P90
		}
		p.Families = append(p.Families, st)
	}
	if sel, fc := s.selectLocked(); sel != nil {
		p.Family, p.FamilyForecastBps = sel.name, fc
		if q, ok := s.quantilesLocked(sel, fc); ok {
			p.P10Bps, p.P50Bps, p.P90Bps = q.P10, q.P50, q.P90
		}
	}
}

// selectLocked runs the tournament: the qualified family (ready,
// positive forecast, ≥ MinErrors scored errors, FB never while stale)
// with the lowest rolling RMSRE, falling back to the first family with
// any positive forecast during warm-up.
func (s *Session) selectLocked() (*family, float64) {
	var best *family
	bestFc := 0.0
	bestR := math.Inf(1)
	for _, f := range s.families {
		if f.kind == famFB && s.fbStaleLocked() {
			continue
		}
		fc, ok := s.forecastLocked(f)
		if !ok || fc <= 0 || f.err.count() < s.cfg.MinErrors {
			continue
		}
		if r, rok := f.err.rmsre(s.cfg.ErrClamp); rok && r < bestR {
			best, bestFc, bestR = f, fc, r
		}
	}
	if best != nil {
		return best, bestFc
	}
	for _, f := range s.families {
		if f.kind == famFB && s.fbStaleLocked() {
			continue
		}
		if fc, ok := s.forecastLocked(f); ok && fc > 0 {
			return f, fc
		}
	}
	return nil, 0
}

// quantilesLocked derives a family's calibrated P10/P50/P90 for its
// standing forecast: ECM natively from its conditional histograms, every
// other family by inverting the empirical quantiles of its rolling Eq.-4
// errors. ok is false until MinErrors errors are scored.
func (s *Session) quantilesLocked(f *family, forecast float64) (predict.Quantiles, bool) {
	if f.kind == famECM {
		return s.ecm.PredictQuantiles()
	}
	if f.err.count() < s.cfg.MinErrors {
		return predict.Quantiles{}, false
	}
	var q predict.Quantiles
	var ok bool
	q, ok, s.qscratch = predict.QuantilesForErrors(forecast, f.err.buf, s.qscratch)
	return q, ok
}

// bestLocked picks the best predictor from an assembled Prediction:
// lowest rolling RMSRE among qualified candidates, falling back to the
// first ready HB member and then to the FB forecast. It predates the
// zoo tournament and covers only the paper ensemble (HB trio + FB), so
// the original point-forecast API keeps its exact semantics.
func (s *Session) bestLocked(p *Prediction) (string, float64) {
	bestName, bestForecast := "", 0.0
	bestRMSRE := math.Inf(1)
	consider := func(name string, forecast, rmsre float64, n int, ready bool) {
		if !ready || n < s.cfg.MinErrors || forecast <= 0 {
			return
		}
		if rmsre < bestRMSRE {
			bestName, bestForecast, bestRMSRE = name, forecast, rmsre
		}
	}
	for _, st := range p.HB {
		consider(st.Name, st.ForecastBps, st.RMSRE, st.ErrorCount, st.Ready)
	}
	// A stale FB forecast never competes: its measurements describe a
	// path state the service no longer believes in.
	if p.FB != nil && !p.FB.Stale {
		consider("FB", p.FB.ForecastBps, p.FB.RMSRE, p.FB.ErrorCount, p.FB.ForecastBps > 0)
	}
	if bestName != "" {
		return bestName, bestForecast
	}
	// Warm-up fallbacks: any ready HB forecast, then the FB forecast.
	for _, st := range p.HB {
		if st.Ready && st.ForecastBps > 0 {
			return st.Name, st.ForecastBps
		}
	}
	if p.FB != nil && !p.FB.Stale && p.FB.ForecastBps > 0 {
		return "FB", p.FB.ForecastBps
	}
	return "", 0
}

// snapshot captures the replayable state of the session.
func (s *Session) snapshot() PathSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	hist := s.history
	if len(hist) > s.cfg.HistoryLimit {
		hist = hist[len(hist)-s.cfg.HistoryLimit:]
	}
	ps := PathSnapshot{
		Path:         s.path,
		Observations: s.observations,
		History:      append([]float64(nil), hist...),
		CovIn:        s.covIn,
		CovTotal:     s.covTotal,
	}
	// Legacy (v1) mirror of the paper ensemble's windows, so pre-zoo
	// consumers and diagnostics keep working unchanged.
	for _, f := range s.hbFamilies() {
		ps.HBErrors = append(ps.HBErrors, f.err.chronological())
	}
	ps.FBErrors = s.fbFamily().err.chronological()
	// v2: the full tournament state, per family by name.
	for _, f := range s.families {
		fs := FamilySnapshot{Name: f.name, Errors: f.err.chronological()}
		switch f.kind {
		case famRegression:
			st := s.reg.State()
			fs.Regression = &st
		case famECM:
			st := s.ecm.State()
			fs.ECM = &st
		}
		ps.Families = append(ps.Families, fs)
	}
	if s.hasFB {
		ps.FBInputs = &FBInputsSnapshot{
			RTTSeconds: s.fbIn.RTT,
			LossRate:   s.fbIn.LossRate,
			AvailBwBps: s.fbIn.AvailBw,
		}
		ps.FBAge = s.observations - s.fbSetAtObs
	}
	return ps
}

// restore replays a snapshot into the session. Predictors with bounded
// memory (MA, windowed LSO, the switcher) restore exactly when the
// snapshot history covers their window; EWMA/HW restore approximately
// (their infinite tail beyond HistoryLimit observations is dropped),
// which the snapshot format documents as acceptable for a cache-like
// registry. Regression and ECM state is replaced verbatim from the
// snapshot when present (v2); restoring a legacy v1 snapshot leaves
// them with replay-trained state — the documented approximation for
// pre-zoo snapshots, whose error windows then fill from live traffic.
func (s *Session) restore(ps PathSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Replay trains every history-driven predictor; conditioning features
	// are not retained per epoch, so regression/ECM see none during
	// replay (their v2 state overwrite below makes that moot).
	for _, x := range ps.History {
		s.observeLocked(x)
	}
	if len(ps.Families) > 0 {
		// v2: reinstall each family's error window and model state.
		byName := make(map[string]FamilySnapshot, len(ps.Families))
		for _, fs := range ps.Families {
			byName[fs.Name] = fs
		}
		for _, f := range s.families {
			fs, ok := byName[f.name]
			if !ok {
				continue
			}
			f.err = windowFromErrors(fs.Errors, s.cfg.ErrorWindow)
			switch {
			case f.kind == famRegression && fs.Regression != nil:
				s.reg.SetState(*fs.Regression)
			case f.kind == famECM && fs.ECM != nil:
				s.ecm.SetState(*fs.ECM)
			}
		}
	} else if len(ps.HBErrors) == len(s.hbFamilies()) {
		// Legacy v1: the paper ensemble's windows carry accuracy the
		// replay cannot reconstruct (observations older than the history,
		// FB scores against bygone measurements).
		for i, errs := range ps.HBErrors {
			s.hbFamilies()[i].err = windowFromErrors(errs, s.cfg.ErrorWindow)
		}
		s.fbFamily().err = windowFromErrors(ps.FBErrors, s.cfg.ErrorWindow)
	}
	// Replace the replay-accumulated coverage counters with the real ones
	// (zero for v1 snapshots: coverage starts fresh rather than counting
	// the replay's synthetic intervals).
	s.covIn, s.covTotal = ps.CovIn, ps.CovTotal
	if ps.Observations > s.observations {
		s.observations = ps.Observations
	}
	if ps.FBInputs != nil {
		s.setMeasurementLocked(predict.FBInputs{
			RTT:      ps.FBInputs.RTTSeconds,
			LossRate: ps.FBInputs.LossRate,
			AvailBw:  ps.FBInputs.AvailBwBps,
		})
		// Carry the measurement age across the restart so a forecast that
		// was stale before the crash stays stale after it.
		age := ps.FBAge
		if age > s.observations {
			age = s.observations
		}
		s.fbSetAtObs = s.observations - age
	}
}

// errWindow is a fixed-size ring of the most recent relative errors.
type errWindow struct {
	buf  []float64
	next int
	full bool
}

func newErrWindow(n int) *errWindow {
	return &errWindow{buf: make([]float64, 0, n)}
}

// windowFromErrors rebuilds a window from serialized errors, keeping the
// most recent cap entries.
func windowFromErrors(errs []float64, capacity int) *errWindow {
	w := newErrWindow(capacity)
	if len(errs) > capacity {
		errs = errs[len(errs)-capacity:]
	}
	for _, e := range errs {
		w.push(e)
	}
	return w
}

func (w *errWindow) push(e float64) {
	if !w.full && len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, e)
		if len(w.buf) == cap(w.buf) {
			w.full = true
		}
		return
	}
	w.buf[w.next] = e
	w.next = (w.next + 1) % len(w.buf)
}

func (w *errWindow) count() int { return len(w.buf) }

// chronological returns the retained errors oldest first (the ring is
// unrolled), so a restored window keeps evicting in the original order.
func (w *errWindow) chronological() []float64 {
	out := make([]float64, 0, len(w.buf))
	if w.full {
		out = append(out, w.buf[w.next:]...)
		return append(out, w.buf[:w.next]...)
	}
	return append(out, w.buf...)
}

// forEachChrono visits the retained errors oldest first. Aggregations
// must accumulate in this order, not ring-storage order: float addition
// is not associative, and a snapshot-restored window is compacted while
// a live one is rotated — identical contents must yield bit-identical
// statistics either way, or a spill/fault cycle would change predict
// responses.
func (w *errWindow) forEachChrono(fn func(float64)) {
	if w.full {
		for _, e := range w.buf[w.next:] {
			fn(e)
		}
		for _, e := range w.buf[:w.next] {
			fn(e)
		}
		return
	}
	for _, e := range w.buf {
		fn(e)
	}
}

// rmsre returns the rolling RMSRE (paper Eq. 5) with |E| clamped at clamp;
// ok is false when no errors have been recorded yet.
func (w *errWindow) rmsre(clamp float64) (float64, bool) {
	if len(w.buf) == 0 {
		return 0, false
	}
	var sum float64
	w.forEachChrono(func(e float64) {
		if clamp > 0 {
			if e > clamp {
				e = clamp
			} else if e < -clamp {
				e = -clamp
			}
		}
		sum += e * e
	})
	return math.Sqrt(sum / float64(len(w.buf))), true
}

// meanAbs returns the mean |E| over the window (0 when empty) — the
// regret bookkeeping's per-family loss.
func (w *errWindow) meanAbs() float64 {
	if len(w.buf) == 0 {
		return 0
	}
	var sum float64
	w.forEachChrono(func(e float64) { sum += math.Abs(e) })
	return sum / float64(len(w.buf))
}
