package predsvc

import (
	"math"
	"sync"

	"repro/internal/predict"
	"repro/internal/stats"
)

// Session is the goroutine-safe per-path predictor state: the HB ensemble,
// the FB predictor with its latest a-priori measurements, and a rolling
// error window per predictor. All methods may be called concurrently; a
// single mutex serializes access to the whole ensemble, which is required
// because the predict.HB implementations themselves are not goroutine-safe.
//
// The accuracy bookkeeping follows the paper's protocol exactly: when a
// new throughput observation X arrives, each predictor's standing forecast
// X̂ (made before seeing X) is scored with the relative error
// E = (X̂-X)/min(X̂,X) (Eq. 4), and only then is X fed to the predictors.
type Session struct {
	mu   sync.Mutex
	path string
	cfg  Config

	hbs   []predict.HB
	hbErr []*errWindow

	fb    *predict.FB
	fbIn  predict.FBInputs
	hasFB bool
	fbErr *errWindow
	// fbSetAtObs is the observation count when the measurements were
	// installed; the gap to the current count is the measurement age that
	// drives staleness flagging (deterministic, unlike wall time).
	fbSetAtObs uint64

	observations uint64
	history      []float64 // recent raw observations, for snapshot/restore
}

func newSession(path string, cfg Config) *Session {
	wrap := func(p predict.HB) predict.HB {
		if cfg.DisableLSO {
			return p
		}
		return predict.NewLSO(p, cfg.LSO)
	}
	s := &Session{
		path: path,
		cfg:  cfg,
		hbs: []predict.HB{
			wrap(predict.NewMA(cfg.MAOrder)),
			wrap(predict.NewEWMA(cfg.EWMAAlpha)),
			wrap(predict.NewHoltWinters(cfg.HWAlpha, cfg.HWBeta)),
		},
		fb:    predict.NewFB(cfg.FB),
		fbErr: newErrWindow(cfg.ErrorWindow),
	}
	s.hbErr = make([]*errWindow, len(s.hbs))
	for i := range s.hbErr {
		s.hbErr[i] = newErrWindow(cfg.ErrorWindow)
	}
	return s
}

// Path returns the path name the session serves.
func (s *Session) Path() string { return s.path }

// Observations returns the lifetime observation count.
func (s *Session) Observations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.observations
}

// ValidObservation reports whether x is a usable throughput sample: finite
// and strictly positive. NaN, ±Inf and non-positive values would poison
// predictor state, error windows and snapshots if absorbed.
func ValidObservation(x float64) bool {
	return x > 0 && !math.IsNaN(x) && !math.IsInf(x, 0)
}

// ValidMeasurement reports whether in is a usable a-priori measurement
// set: finite non-negative RTT and available bandwidth, loss rate in
// [0, 1]. (NaN fails every comparison, so it is rejected by these bounds.)
func ValidMeasurement(in predict.FBInputs) bool {
	finiteNonNeg := func(x float64) bool { return x >= 0 && !math.IsInf(x, 1) }
	return finiteNonNeg(in.RTT) && finiteNonNeg(in.AvailBw) &&
		in.LossRate >= 0 && in.LossRate <= 1
}

// Observe feeds the throughput (bits/s) achieved by the latest transfer on
// the path: every predictor's standing forecast is scored against it, then
// the HB ensemble absorbs it. It returns the new observation count.
// Invalid samples (see ValidObservation) are dropped: the count is
// returned unchanged. The HTTP layer rejects them with a 400 before this
// point; the check here protects direct API users.
func (s *Session) Observe(throughputBps float64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ValidObservation(throughputBps) {
		return s.observations
	}
	s.observeLocked(throughputBps)
	return s.observations
}

func (s *Session) observeLocked(x float64) {
	for i, hb := range s.hbs {
		if f, ok := hb.Predict(); ok {
			s.hbErr[i].push(s.clampErr(stats.RelativeError(f, x)))
		}
	}
	if s.hasFB {
		if f := s.fb.Predict(s.fbIn); f > 0 {
			s.fbErr.push(s.clampErr(stats.RelativeError(f, x)))
		}
	}
	for _, hb := range s.hbs {
		hb.Observe(x)
	}
	s.observations++
	s.history = append(s.history, x)
	if len(s.history) >= 2*s.cfg.HistoryLimit {
		keep := s.history[len(s.history)-s.cfg.HistoryLimit:]
		s.history = append(s.history[:0], keep...)
	}
}

// clampErr bounds a relative error before it enters a rolling window.
// RelativeError is ±Inf when a forecast is non-positive (Holt-Winters can
// forecast ≤ 0 on a falling series), and the windows are serialized
// verbatim into JSON snapshots, which cannot represent infinities. With
// ErrClamp > 0 (the default) this is exactly the clamp RMSRE would apply
// anyway; with clamping disabled, infinities become ±MaxFloat64, which
// still square to +Inf in the RMSRE as documented.
func (s *Session) clampErr(e float64) float64 {
	clamp := s.cfg.ErrClamp
	if clamp <= 0 {
		clamp = math.MaxFloat64
	}
	return math.Max(-clamp, math.Min(clamp, e))
}

// SetMeasurement installs fresh a-priori path measurements (T̂, p̂, Â) for
// the FB predictor and returns its forecast for them (0 when the inputs
// give no basis for prediction). Installing resets the measurement age
// that drives staleness flagging. Invalid inputs (see ValidMeasurement)
// are dropped and 0 is returned, leaving prior measurements in place.
func (s *Session) SetMeasurement(in predict.FBInputs) float64 {
	if !ValidMeasurement(in) {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fbIn = in
	s.hasFB = true
	s.fbSetAtObs = s.observations
	return s.fb.Predict(in)
}

// PredictorState reports one ensemble member's standing forecast and
// rolling accuracy.
type PredictorState struct {
	Name        string  `json:"name"`
	Ready       bool    `json:"ready"`
	ForecastBps float64 `json:"forecast_bps"`
	RMSRE       float64 `json:"rmsre"`
	ErrorCount  int     `json:"error_count"`
}

// FBState reports the formula-based side: the latest installed
// measurements, the forecast they produce, its rolling accuracy, and how
// stale the measurements are. MeasurementAge counts observations absorbed
// since the measurements were installed; past Config.StaleAfter the
// forecast is flagged Stale and excluded from best-predictor selection —
// the service degrades to HB-only rather than serving forecasts computed
// from a bygone path state.
type FBState struct {
	RTTSeconds     float64 `json:"rtt_s"`
	LossRate       float64 `json:"loss_rate"`
	AvailBwBps     float64 `json:"avail_bw_bps"`
	ForecastBps    float64 `json:"forecast_bps"`
	RMSRE          float64 `json:"rmsre"`
	ErrorCount     int     `json:"error_count"`
	MeasurementAge uint64  `json:"measurement_age"`
	Stale          bool    `json:"stale,omitempty"`
}

// Prediction is the full answer for one path: every predictor's forecast
// and accuracy, plus the best predictor right now (lowest rolling RMSRE
// among predictors with at least MinErrors scored forecasts; ties break
// toward the ensemble order MA, EWMA, HW, FB).
type Prediction struct {
	Path            string           `json:"path"`
	Observations    uint64           `json:"observations"`
	Best            string           `json:"best,omitempty"`
	BestForecastBps float64          `json:"best_forecast_bps,omitempty"`
	HB              []PredictorState `json:"hb"`
	FB              *FBState         `json:"fb,omitempty"`
}

// Predict returns the current forecasts and accuracy for the path. It is
// deterministic: the response depends only on the sequence of Observe and
// SetMeasurement calls the session has absorbed.
func (s *Session) Predict() Prediction {
	s.mu.Lock()
	defer s.mu.Unlock()

	p := Prediction{Path: s.path, Observations: s.observations}
	for i, hb := range s.hbs {
		f, ok := hb.Predict()
		st := PredictorState{Name: hb.Name(), Ready: ok, ForecastBps: f}
		st.RMSRE, _ = s.hbErr[i].rmsre(s.cfg.ErrClamp)
		st.ErrorCount = s.hbErr[i].count()
		p.HB = append(p.HB, st)
	}
	if s.hasFB {
		f := s.fb.Predict(s.fbIn)
		age := s.observations - s.fbSetAtObs
		fbState := &FBState{
			RTTSeconds:     s.fbIn.RTT,
			LossRate:       s.fbIn.LossRate,
			AvailBwBps:     s.fbIn.AvailBw,
			ForecastBps:    f,
			ErrorCount:     s.fbErr.count(),
			MeasurementAge: age,
			Stale:          s.cfg.StaleAfter > 0 && age > uint64(s.cfg.StaleAfter),
		}
		fbState.RMSRE, _ = s.fbErr.rmsre(s.cfg.ErrClamp)
		p.FB = fbState
	}
	p.Best, p.BestForecastBps = s.bestLocked(p)
	return p
}

// bestLocked picks the best predictor from an assembled Prediction:
// lowest rolling RMSRE among qualified candidates, falling back to the
// first ready HB member and then to the FB forecast.
func (s *Session) bestLocked(p Prediction) (string, float64) {
	bestName, bestForecast := "", 0.0
	bestRMSRE := math.Inf(1)
	consider := func(name string, forecast, rmsre float64, n int, ready bool) {
		if !ready || n < s.cfg.MinErrors || forecast <= 0 {
			return
		}
		if rmsre < bestRMSRE {
			bestName, bestForecast, bestRMSRE = name, forecast, rmsre
		}
	}
	for _, st := range p.HB {
		consider(st.Name, st.ForecastBps, st.RMSRE, st.ErrorCount, st.Ready)
	}
	// A stale FB forecast never competes: its measurements describe a
	// path state the service no longer believes in.
	if p.FB != nil && !p.FB.Stale {
		consider("FB", p.FB.ForecastBps, p.FB.RMSRE, p.FB.ErrorCount, p.FB.ForecastBps > 0)
	}
	if bestName != "" {
		return bestName, bestForecast
	}
	// Warm-up fallbacks: any ready HB forecast, then the FB forecast.
	for _, st := range p.HB {
		if st.Ready && st.ForecastBps > 0 {
			return st.Name, st.ForecastBps
		}
	}
	if p.FB != nil && !p.FB.Stale && p.FB.ForecastBps > 0 {
		return "FB", p.FB.ForecastBps
	}
	return "", 0
}

// snapshot captures the replayable state of the session.
func (s *Session) snapshot() PathSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	hist := s.history
	if len(hist) > s.cfg.HistoryLimit {
		hist = hist[len(hist)-s.cfg.HistoryLimit:]
	}
	ps := PathSnapshot{
		Path:         s.path,
		Observations: s.observations,
		History:      append([]float64(nil), hist...),
		FBErrors:     s.fbErr.chronological(),
	}
	for _, w := range s.hbErr {
		ps.HBErrors = append(ps.HBErrors, w.chronological())
	}
	if s.hasFB {
		ps.FBInputs = &FBInputsSnapshot{
			RTTSeconds: s.fbIn.RTT,
			LossRate:   s.fbIn.LossRate,
			AvailBwBps: s.fbIn.AvailBw,
		}
		ps.FBAge = s.observations - s.fbSetAtObs
	}
	return ps
}

// restore replays a snapshot into the session. Predictors with bounded
// memory (MA, windowed LSO) restore exactly when the snapshot history
// covers their window; EWMA/HW restore approximately (their infinite tail
// beyond HistoryLimit observations is dropped), which the snapshot format
// documents as acceptable for a cache-like registry.
func (s *Session) restore(ps PathSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, x := range ps.History {
		s.observeLocked(x)
	}
	// The error windows carry accuracy the replay cannot reconstruct
	// (observations older than the history, FB scores against bygone
	// measurements): reinstall them verbatim when the ensemble matches.
	if len(ps.HBErrors) == len(s.hbErr) {
		for i, errs := range ps.HBErrors {
			s.hbErr[i] = windowFromErrors(errs, s.cfg.ErrorWindow)
		}
		s.fbErr = windowFromErrors(ps.FBErrors, s.cfg.ErrorWindow)
	}
	if ps.Observations > s.observations {
		s.observations = ps.Observations
	}
	if ps.FBInputs != nil {
		s.fbIn = predict.FBInputs{
			RTT:      ps.FBInputs.RTTSeconds,
			LossRate: ps.FBInputs.LossRate,
			AvailBw:  ps.FBInputs.AvailBwBps,
		}
		s.hasFB = true
		// Carry the measurement age across the restart so a forecast that
		// was stale before the crash stays stale after it.
		age := ps.FBAge
		if age > s.observations {
			age = s.observations
		}
		s.fbSetAtObs = s.observations - age
	}
}

// errWindow is a fixed-size ring of the most recent relative errors.
type errWindow struct {
	buf  []float64
	next int
	full bool
}

func newErrWindow(n int) *errWindow {
	return &errWindow{buf: make([]float64, 0, n)}
}

// windowFromErrors rebuilds a window from serialized errors, keeping the
// most recent cap entries.
func windowFromErrors(errs []float64, capacity int) *errWindow {
	w := newErrWindow(capacity)
	if len(errs) > capacity {
		errs = errs[len(errs)-capacity:]
	}
	for _, e := range errs {
		w.push(e)
	}
	return w
}

func (w *errWindow) push(e float64) {
	if !w.full && len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, e)
		if len(w.buf) == cap(w.buf) {
			w.full = true
		}
		return
	}
	w.buf[w.next] = e
	w.next = (w.next + 1) % len(w.buf)
}

func (w *errWindow) count() int { return len(w.buf) }

// chronological returns the retained errors oldest first (the ring is
// unrolled), so a restored window keeps evicting in the original order.
func (w *errWindow) chronological() []float64 {
	out := make([]float64, 0, len(w.buf))
	if w.full {
		out = append(out, w.buf[w.next:]...)
		return append(out, w.buf[:w.next]...)
	}
	return append(out, w.buf...)
}

// rmsre returns the rolling RMSRE (paper Eq. 5) with |E| clamped at clamp;
// ok is false when no errors have been recorded yet.
func (w *errWindow) rmsre(clamp float64) (float64, bool) {
	if len(w.buf) == 0 {
		return 0, false
	}
	return stats.RMSRE(w.buf, clamp), true
}
