package predsvc

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// PathSeries is one path's replayable trace: the per-epoch achieved
// throughputs, and optionally the per-epoch a-priori measurements for the
// FB side (nil Inputs replays a pure HB workload).
type PathSeries struct {
	Path        string
	Throughputs []float64
	Inputs      []predict.FBInputs // len == len(Throughputs) when non-nil
}

// SeriesFromDataset converts a testbed-simulated dataset into replayable
// per-path series: each (path, trace) pair becomes one service path named
// "<path>#<trace>", with the pre-flow measurements of every epoch feeding
// the FB side, exactly as an online deployment would see them.
func SeriesFromDataset(ds *testbed.Dataset) []PathSeries {
	var out []PathSeries
	for _, tr := range ds.Traces {
		s := PathSeries{Path: fmt.Sprintf("%s#%d", tr.Path, tr.Index)}
		for _, rec := range tr.Records {
			s.Throughputs = append(s.Throughputs, rec.Throughput)
			s.Inputs = append(s.Inputs, predict.FBInputs{
				RTT:      rec.PreRTT,
				LossRate: rec.PreLoss,
				AvailBw:  rec.AvailBw,
			})
		}
		out = append(out, s)
	}
	return out
}

// SyntheticSeries generates deterministic throughput series with the
// structure the paper reports for real paths — a stationary level with
// multiplicative noise, occasional level shifts, and occasional one-off
// outlier dips — plus matching plausible pre-flow measurements. Identical
// (paths, epochs, seed) always produce identical series.
func SyntheticSeries(paths, epochs int, seed int64) []PathSeries {
	out := make([]PathSeries, 0, paths)
	for p := 0; p < paths; p++ {
		rng := sim.NewRNG(sim.DeriveSeed(seed, uint64(p)+1))
		base := rng.Uniform(2e6, 60e6) // long-run level, bps
		rtt := rng.Uniform(0.01, 0.2)  // base RTT, seconds
		lossy := rng.Bool(0.4)         // paper: ~40% of traces saw pre-flow loss
		level := base * rng.Uniform(0.7, 1.3)
		s := PathSeries{Path: fmt.Sprintf("synth-%03d", p)}
		for e := 0; e < epochs; e++ {
			if rng.Bool(0.02) { // level shift
				level = base * rng.Uniform(0.4, 1.6)
			}
			x := level * (1 + 0.08*rng.Normal(0, 1))
			if rng.Bool(0.03) { // outlier dip
				x = level * rng.Uniform(0.2, 0.5)
			}
			if x < 1e4 {
				x = 1e4
			}
			loss := 0.0
			if lossy {
				loss = rng.Uniform(0.0005, 0.02)
			}
			s.Throughputs = append(s.Throughputs, x)
			s.Inputs = append(s.Inputs, predict.FBInputs{
				RTT:      rtt * rng.Uniform(0.9, 1.2),
				LossRate: loss,
				AvailBw:  level * rng.Uniform(0.7, 1.2),
			})
		}
		out = append(out, s)
	}
	return out
}

// LoadConfig tunes a Replay run.
type LoadConfig struct {
	// BaseURL of the daemon, e.g. "http://127.0.0.1:8355".
	BaseURL string
	// Workers is the number of concurrent client goroutines; each path is
	// owned by exactly one worker, so per-path request order (measure →
	// predict → observe per epoch) is preserved — the determinism
	// contract of the service (default 8).
	Workers int
	// ErrClamp bounds |E| in the client-side accuracy aggregation
	// (default 10, as in the offline experiments).
	ErrClamp float64
	// Client overrides the HTTP client (default: keep-alive tuned for
	// Workers connections).
	Client *http.Client
}

// LoadReport summarizes a Replay run.
type LoadReport struct {
	Paths    int
	Epochs   int // total epochs replayed across paths
	Requests uint64
	Errors   uint64
	Duration time.Duration
	QPS      float64

	// Accuracy of the service's "best" forecast against the next actual
	// throughput, scored client-side with the paper's Eq. 4/5.
	Predictions  int
	RMSRE        float64
	MedianAbsErr float64

	// Digest is a SHA-256 over every 200-OK /v1/predict response body,
	// chained per path and combined in sorted path order — identical
	// digests across two runs prove byte-identical predict responses.
	Digest string
}

func (r LoadReport) String() string {
	return fmt.Sprintf(
		"%d paths, %d epochs: %d requests (%d errors) in %v → %.0f req/s; "+
			"%d predictions scored, RMSRE %.3f, median |E| %.3f\ndigest sha256:%s",
		r.Paths, r.Epochs, r.Requests, r.Errors, r.Duration.Round(time.Millisecond),
		r.QPS, r.Predictions, r.RMSRE, r.MedianAbsErr, r.Digest)
}

// Replay drives the daemon at cfg.BaseURL with the given series: per path
// and epoch it installs the pre-flow measurements (when present), asks for
// a prediction, scores the returned best forecast against the epoch's
// actual throughput, and feeds that throughput back as an observation.
// Paths are distributed over cfg.Workers goroutines; epochs within a path
// are strictly sequential. Cancelling ctx stops the replay at the next
// request boundary.
func Replay(ctx context.Context, cfg LoadConfig, series []PathSeries) (*LoadReport, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.ErrClamp == 0 {
		cfg.ErrClamp = 10
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Workers * 2,
				MaxIdleConnsPerHost: cfg.Workers * 2,
			},
		}
	}

	type workerOut struct {
		requests uint64
		errors   uint64
		errs     []float64
		digests  map[string]string
		err      error
	}
	outs := make([]workerOut, cfg.Workers)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lw := loadWorker{cfg: cfg, client: client, digests: make(map[string]string)}
			// Epoch-major over this worker's paths so load interleaves
			// across paths instead of finishing them one by one.
			maxEpochs := 0
			var mine []PathSeries
			for i := w; i < len(series); i += cfg.Workers {
				mine = append(mine, series[i])
				if n := len(series[i].Throughputs); n > maxEpochs {
					maxEpochs = n
				}
			}
			for e := 0; e < maxEpochs && lw.err == nil; e++ {
				for _, ps := range mine {
					if e >= len(ps.Throughputs) {
						continue
					}
					if ctx.Err() != nil {
						lw.err = ctx.Err()
						break
					}
					lw.epoch(ctx, ps, e)
				}
			}
			outs[w] = workerOut{
				requests: lw.requests, errors: lw.errors,
				errs: lw.scored, digests: lw.digests, err: lw.err,
			}
		}(w)
	}
	wg.Wait()

	rep := &LoadReport{Paths: len(series)}
	var allErrs []float64
	perPath := make(map[string]string)
	for _, o := range outs {
		if o.err != nil && ctx.Err() == nil {
			return nil, o.err
		}
		rep.Requests += o.requests
		rep.Errors += o.errors
		allErrs = append(allErrs, o.errs...)
		for p, d := range o.digests {
			perPath[p] = d
		}
	}
	for _, ps := range series {
		rep.Epochs += len(ps.Throughputs)
	}
	rep.Duration = time.Since(start)
	if rep.Duration > 0 {
		rep.QPS = float64(rep.Requests) / rep.Duration.Seconds()
	}
	rep.Predictions = len(allErrs)
	rep.RMSRE = stats.RMSRE(allErrs, cfg.ErrClamp)
	abs := make([]float64, len(allErrs))
	for i, e := range allErrs {
		abs[i] = math.Min(math.Abs(e), cfg.ErrClamp)
	}
	rep.MedianAbsErr = stats.Median(abs)

	// Combine per-path digest chains in sorted order: worker assignment
	// and completion order cannot affect the result.
	names := make([]string, 0, len(perPath))
	for p := range perPath {
		names = append(names, p)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, p := range names {
		fmt.Fprintf(h, "%s=%s\n", p, perPath[p])
	}
	rep.Digest = hex.EncodeToString(h.Sum(nil))
	return rep, ctx.Err()
}

// loadWorker is one replay goroutine's state.
type loadWorker struct {
	cfg      LoadConfig
	client   *http.Client
	requests uint64
	errors   uint64
	scored   []float64
	digests  map[string]string // path → running hex digest chain
	err      error
}

// epoch replays one (path, epoch) cell: measure → predict (scored) → observe.
func (lw *loadWorker) epoch(ctx context.Context, ps PathSeries, e int) {
	actual := ps.Throughputs[e]
	hasInputs := ps.Inputs != nil
	if hasInputs {
		in := ps.Inputs[e]
		lw.post(ctx, "/v1/measure", MeasureRequest{
			Path: ps.Path, RTTSeconds: in.RTT, LossRate: in.LossRate, AvailBwBps: in.AvailBw,
		}, nil)
	}
	// Before the first measure/observe the path does not exist yet; skip
	// the predict so a pure-HB replay never asks about an unknown path.
	if hasInputs || e > 0 {
		var pred Prediction
		body := lw.get(ctx, "/v1/predict?path="+url.QueryEscape(ps.Path), &pred)
		if body != nil {
			prev := lw.digests[ps.Path]
			sum := sha256.Sum256(append([]byte(prev), body...))
			lw.digests[ps.Path] = hex.EncodeToString(sum[:])
			if pred.Best != "" && pred.BestForecastBps > 0 {
				lw.scored = append(lw.scored, stats.RelativeError(pred.BestForecastBps, actual))
			}
		}
	}
	lw.post(ctx, "/v1/observe", ObserveRequest{Path: ps.Path, ThroughputBps: actual}, nil)
}

func (lw *loadWorker) post(ctx context.Context, path string, body, out any) {
	if lw.err != nil {
		return
	}
	data, err := json.Marshal(body)
	if err != nil {
		lw.err = err
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, lw.cfg.BaseURL+path, bytes.NewReader(data))
	if err != nil {
		lw.err = err
		return
	}
	req.Header.Set("Content-Type", "application/json")
	lw.do(req, out)
}

// get performs a GET and returns the raw body on HTTP 200 (nil otherwise),
// decoding into out when non-nil.
func (lw *loadWorker) get(ctx context.Context, path string, out any) []byte {
	if lw.err != nil {
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, lw.cfg.BaseURL+path, nil)
	if err != nil {
		lw.err = err
		return nil
	}
	return lw.do(req, out)
}

func (lw *loadWorker) do(req *http.Request, out any) []byte {
	resp, err := lw.client.Do(req)
	if err != nil {
		lw.err = err
		return nil
	}
	defer resp.Body.Close()
	lw.requests++
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		lw.err = err
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		lw.errors++
		return nil
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			lw.err = fmt.Errorf("predsvc: bad %s response: %w", req.URL.Path, err)
			return nil
		}
	}
	return body
}
