package predsvc

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/predict"
	"repro/internal/predsvc/cluster"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// PathSeries is one path's replayable trace: the per-epoch achieved
// throughputs, and optionally the per-epoch a-priori measurements for the
// FB side (nil Inputs replays a pure HB workload).
type PathSeries struct {
	Path        string
	Throughputs []float64
	Inputs      []predict.FBInputs // len == len(Throughputs) when non-nil
}

// SeriesFromDataset converts a testbed-simulated dataset into replayable
// per-path series: each (path, trace) pair becomes one service path named
// "<path>#<trace>", with the pre-flow measurements of every epoch feeding
// the FB side, exactly as an online deployment would see them.
func SeriesFromDataset(ds *testbed.Dataset) []PathSeries {
	var out []PathSeries
	for _, tr := range ds.Traces {
		s := PathSeries{Path: fmt.Sprintf("%s#%d", tr.Path, tr.Index)}
		for _, rec := range tr.Records {
			s.Throughputs = append(s.Throughputs, rec.Throughput)
			s.Inputs = append(s.Inputs, predict.FBInputs{
				RTT:      rec.PreRTT,
				LossRate: rec.PreLoss,
				AvailBw:  rec.AvailBw,
			})
		}
		out = append(out, s)
	}
	return out
}

// SyntheticSeries generates deterministic throughput series with the
// structure the paper reports for real paths — a stationary level with
// multiplicative noise, occasional level shifts, and occasional one-off
// outlier dips — plus matching plausible pre-flow measurements. Identical
// (paths, epochs, seed) always produce identical series.
func SyntheticSeries(paths, epochs int, seed int64) []PathSeries {
	out := make([]PathSeries, 0, paths)
	for p := 0; p < paths; p++ {
		rng := sim.NewRNG(sim.DeriveSeed(seed, uint64(p)+1))
		base := rng.Uniform(2e6, 60e6) // long-run level, bps
		rtt := rng.Uniform(0.01, 0.2)  // base RTT, seconds
		lossy := rng.Bool(0.4)         // paper: ~40% of traces saw pre-flow loss
		level := base * rng.Uniform(0.7, 1.3)
		s := PathSeries{Path: fmt.Sprintf("synth-%03d", p)}
		for e := 0; e < epochs; e++ {
			if rng.Bool(0.02) { // level shift
				level = base * rng.Uniform(0.4, 1.6)
			}
			x := level * (1 + 0.08*rng.Normal(0, 1))
			if rng.Bool(0.03) { // outlier dip
				x = level * rng.Uniform(0.2, 0.5)
			}
			if x < 1e4 {
				x = 1e4
			}
			loss := 0.0
			if lossy {
				loss = rng.Uniform(0.0005, 0.02)
			}
			s.Throughputs = append(s.Throughputs, x)
			s.Inputs = append(s.Inputs, predict.FBInputs{
				RTT:      rtt * rng.Uniform(0.9, 1.2),
				LossRate: loss,
				AvailBw:  level * rng.Uniform(0.7, 1.2),
			})
		}
		out = append(out, s)
	}
	return out
}

// LoadConfig tunes a Replay run.
type LoadConfig struct {
	// BaseURL of the daemon, e.g. "http://127.0.0.1:8355".
	BaseURL string
	// Cluster lists the base URLs of a multi-node deployment. When
	// non-empty every path's requests are routed to the node owning it
	// under rendezvous hashing (cluster.Map), and BaseURL is unused.
	// Per-path state lives entirely on one node, so the predict digest of
	// a clustered replay equals the single-node digest for the same
	// series — the property scripts/cluster.sh gates on.
	Cluster []string
	// BatchObserve groups each worker's per-epoch observations into one
	// POST /v1/observe-batch per node instead of one /v1/observe per
	// path, amortizing ingest over far fewer requests. Per-path request
	// order (measure → predict → observe per epoch) is preserved, so the
	// digest is unchanged.
	BatchObserve bool
	// Workers is the number of concurrent client goroutines; each path is
	// owned by exactly one worker, so per-path request order (measure →
	// predict → observe per epoch) is preserved — the determinism
	// contract of the service (default 8).
	Workers int
	// StartEpoch replays only epoch indices ≥ StartEpoch (default 0).
	// With the same series, a [0,k) run followed by a [k,n) run sends the
	// exact per-path request sequence of one [0,n) run — how a resize is
	// driven mid-load: phase 1, rebalance, phase 2 against the new
	// membership. Digest chains restart at the boundary, so each phase is
	// compared against a same-phase single-node reference.
	StartEpoch int
	// EpochPause sleeps each worker between epoch rounds, stretching a
	// replay's wall-clock so external events (rolling restarts) genuinely
	// overlap the load (default 0: flat out).
	EpochPause time.Duration
	// RetryDeadline bounds how long one request retries through 429s,
	// 5xxs and connection-refused before the replay fails (default 30s —
	// long enough to ride out a node restart; negative disables retries).
	RetryDeadline time.Duration
	// ErrClamp bounds |E| in the client-side accuracy aggregation
	// (default 10, as in the offline experiments).
	ErrClamp float64
	// Quantiles scores the service's [p10,p90] interval forecasts against
	// the actual throughputs: every predict response carrying an interval
	// counts toward LoadReport.IntervalCoverage. The quantile fields ride
	// in the predict response body either way (and hence in the digest);
	// this only enables the client-side calibration bookkeeping.
	Quantiles bool
	// Client overrides the HTTP client (default: keep-alive tuned for
	// Workers connections).
	Client *http.Client
	// Chaos enables deterministic client-side fault injection: aborted
	// predict requests, slowloris probes, and forced-panic probes. All
	// chaos traffic is read-only or rejected by the server, so the predict
	// digest over the fault-free subset is unchanged by chaos. Nil
	// disables chaos.
	Chaos *ChaosConfig
}

// Fault-injection sites used by the chaos-mode load generator.
const (
	siteClientAbort = "client.abort"
	siteClientSlow  = "client.slowloris"
)

// ChaosConfig tunes the load generator's chaos mode. All decisions draw
// from a seeded injector, so a fixed replay sees a fixed number of each
// fault kind.
type ChaosConfig struct {
	// Seed for the fault-injection draws.
	Seed int64
	// AbortProb is the per-epoch probability of an extra predict request
	// that the client abandons mid-flight — a client disconnect (default
	// 0.05; negative disables).
	AbortProb float64
	// SlowProb is the per-epoch probability of a slowloris probe: a raw
	// connection that sends a partial request line and stalls until the
	// server's ReadHeaderTimeout closes it (default 0.02; negative
	// disables).
	SlowProb float64
	// SlowHold caps how long a slowloris probe waits for the server to
	// hang up before giving up (default 2s).
	SlowHold time.Duration
	// Panics is the number of ChaosPanicHeader predict probes sent after
	// the replay (default 1; negative disables). A daemon running with
	// fault injection at SiteHandlerPanic panics on each and must convert
	// it into a 500 via its recovery middleware.
	Panics int
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.AbortProb == 0 {
		c.AbortProb = 0.05
	}
	if c.SlowProb == 0 {
		c.SlowProb = 0.02
	}
	if c.SlowHold <= 0 {
		c.SlowHold = 2 * time.Second
	}
	if c.Panics == 0 {
		c.Panics = 1
	}
	return c
}

// LoadReport summarizes a Replay run.
type LoadReport struct {
	Paths    int
	Epochs   int // total epochs replayed across paths
	Requests uint64
	Errors   uint64
	Duration time.Duration
	QPS      float64

	// Client-side request latency over every completed request (retries
	// included — this is the latency a caller experiences, not the
	// server's service time): bucket upper bounds from the same
	// exponential histogram the server uses, in microseconds.
	LatencyP50Usec uint64
	LatencyP99Usec uint64
	// LatencyMeanUsec is the bucket-midpoint mean, in microseconds.
	LatencyMeanUsec float64

	// Accuracy of the service's "best" forecast against the next actual
	// throughput, scored client-side with the paper's Eq. 4/5.
	Predictions  int
	RMSRE        float64
	MedianAbsErr float64

	// Interval calibration, populated when LoadConfig.Quantiles is set:
	// of the IntervalsScored predict responses that carried a [p10,p90]
	// interval, IntervalCoverage is the fraction whose epoch's actual
	// throughput landed inside it (nominal 0.8 for a calibrated service).
	IntervalsScored  int
	IntervalCoverage float64

	// Digest is a SHA-256 over every 200-OK /v1/predict response body of
	// the normal (fault-free) replay, chained per path and combined in
	// sorted path order — identical digests across two runs prove
	// byte-identical predict responses. Chaos traffic never enters it.
	Digest string

	// ShedRetries counts 429 responses the client absorbed by backing off
	// and retrying — load the daemon shed and the replay re-offered.
	ShedRetries uint64
	// Retries counts every backoff sleep the cluster client took (shed
	// 429s, 5xx responses, and connection errors alike).
	Retries uint64
	// Failovers counts requests that hit at least one connection error —
	// a node down or restarting — and still completed after the client
	// probed the node back to readiness. A rolling restart that genuinely
	// overlapped the load shows up here as a non-zero count.
	Failovers uint64
	// PerNode maps each node's base URL to the requests it completed —
	// the per-node load share behind the linear-scaling claim. Single-node
	// runs carry one entry.
	PerNode map[string]uint64
	// ChaosRequests / ChaosFaults count the extra fault-injected requests
	// sent in chaos mode and how many of them ended in the intended
	// abnormal way (aborted, hung up on, or answered 500).
	ChaosRequests uint64
	ChaosFaults   uint64
}

func (r LoadReport) String() string {
	s := fmt.Sprintf(
		"%d paths, %d epochs: %d requests (%d errors) in %v → %.0f req/s "+
			"(client latency p50 <%dµs, p99 <%dµs); "+
			"%d predictions scored, RMSRE %.3f, median |E| %.3f",
		r.Paths, r.Epochs, r.Requests, r.Errors, r.Duration.Round(time.Millisecond),
		r.QPS, r.LatencyP50Usec, r.LatencyP99Usec,
		r.Predictions, r.RMSRE, r.MedianAbsErr)
	if r.IntervalsScored > 0 {
		s += fmt.Sprintf("; [p10,p90] coverage %.3f over %d intervals",
			r.IntervalCoverage, r.IntervalsScored)
	}
	s += fmt.Sprintf("\ndigest sha256:%s", r.Digest)
	if r.ShedRetries > 0 || r.ChaosRequests > 0 {
		s += fmt.Sprintf("\nchaos: %d injected client faults (%d landed), %d shed retries",
			r.ChaosRequests, r.ChaosFaults, r.ShedRetries)
	}
	if r.Retries > 0 || r.Failovers > 0 {
		s += fmt.Sprintf("\nresilience: %d retries, %d failovers ridden out", r.Retries, r.Failovers)
	}
	if len(r.PerNode) > 1 {
		nodes := make([]string, 0, len(r.PerNode))
		for n := range r.PerNode {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		for _, n := range nodes {
			qps := 0.0
			if r.Duration > 0 {
				qps = float64(r.PerNode[n]) / r.Duration.Seconds()
			}
			s += fmt.Sprintf("\nnode %s: %d requests → %.0f req/s", n, r.PerNode[n], qps)
		}
	}
	return s
}

// Replay drives the daemon at cfg.BaseURL with the given series: per path
// and epoch it installs the pre-flow measurements (when present), asks for
// a prediction, scores the returned best forecast against the epoch's
// actual throughput, and feeds that throughput back as an observation.
// Paths are distributed over cfg.Workers goroutines; epochs within a path
// are strictly sequential. Cancelling ctx stops the replay at the next
// request boundary.
func Replay(ctx context.Context, cfg LoadConfig, series []PathSeries) (*LoadReport, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.ErrClamp == 0 {
		cfg.ErrClamp = 10
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Workers * 2,
				MaxIdleConnsPerHost: cfg.Workers * 2,
			},
		}
	}
	// Close pooled connections when the replay is done. Under CPU
	// contention the transport dials speculative spare connections that
	// never carry a request; on the server side those sit in StateNew,
	// which http.Server.Shutdown does not close — a graceful shutdown
	// right after a replay would stall its full timeout waiting on them.
	defer client.CloseIdleConnections()

	// All normal traffic goes through one shared retrying cluster client:
	// rendezvous routing over cfg.Cluster (or the single BaseURL), capped
	// jittered backoff on 429/5xx, and /readyz probing on connection
	// errors — a node restarting mid-replay stalls its paths' workers
	// briefly instead of failing the run.
	nodes := cfg.Cluster
	if len(nodes) == 0 {
		nodes = []string{cfg.BaseURL}
	}
	cc := cluster.NewClient(cluster.ClientConfig{
		Nodes:         nodes,
		HTTP:          client,
		RetryDeadline: cfg.RetryDeadline,
	})
	router := cc.Map()
	baseFor := func(path string) string {
		if len(cfg.Cluster) > 0 {
			return router.Node(path)
		}
		return cfg.BaseURL
	}

	// Chaos mode: one shared seeded injector across workers. Each
	// per-epoch evaluation consumes one draw under the injector's lock, so
	// the total number of injected faults is fixed by (series, seed) even
	// though their assignment to epochs depends on worker interleaving.
	var chaos *faultinject.Injector
	var chaosCfg ChaosConfig
	var host string
	if cfg.Chaos != nil {
		chaosCfg = cfg.Chaos.withDefaults()
		chaos = faultinject.New(chaosCfg.Seed,
			faultinject.Rule{Site: siteClientAbort, Probability: chaosCfg.AbortProb},
			faultinject.Rule{Site: siteClientSlow, Probability: chaosCfg.SlowProb},
		)
		slowTarget := cfg.BaseURL
		if router != nil && router.Len() > 0 {
			slowTarget = router.Nodes()[0]
		}
		if u, err := url.Parse(slowTarget); err == nil {
			host = u.Host
		}
	}

	type workerOut struct {
		requests    uint64
		errors      uint64
		chaosReqs   uint64
		chaosFaults uint64
		errs        []float64
		covIn       int
		covTotal    int
		digests     map[string]string
		err         error
	}
	outs := make([]workerOut, cfg.Workers)
	// One lock-free latency histogram shared by every worker; the same
	// bucket layout the server's service-time histograms use, but timed
	// around the retrying client, so it measures what callers experience.
	lat := &histogram{}
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lw := loadWorker{
				cfg: cfg, client: client, cc: cc, digests: make(map[string]string),
				baseFor: baseFor, chaos: chaos, chaosCfg: chaosCfg, host: host,
				lat: lat,
			}
			// Epoch-major over this worker's paths so load interleaves
			// across paths instead of finishing them one by one.
			maxEpochs := 0
			var mine []PathSeries
			for i := w; i < len(series); i += cfg.Workers {
				mine = append(mine, series[i])
				if n := len(series[i].Throughputs); n > maxEpochs {
					maxEpochs = n
				}
			}
			for e := cfg.StartEpoch; e < maxEpochs && lw.err == nil; e++ {
				for _, ps := range mine {
					if e >= len(ps.Throughputs) {
						continue
					}
					if ctx.Err() != nil {
						lw.err = ctx.Err()
						break
					}
					lw.epoch(ctx, ps, e)
				}
				// In batch mode the epoch's observations are pending: one
				// observe-batch per node closes the epoch, keeping each
				// path's observe before its next measure/predict.
				lw.flushObserves(ctx)
				if cfg.EpochPause > 0 && e < maxEpochs-1 && lw.err == nil {
					select {
					case <-ctx.Done():
						lw.err = ctx.Err()
					case <-time.After(cfg.EpochPause):
					}
				}
			}
			outs[w] = workerOut{
				requests: lw.requests, errors: lw.errors,
				chaosReqs: lw.chaosRequests, chaosFaults: lw.chaosFaults,
				errs: lw.scored, covIn: lw.covIn, covTotal: lw.covTotal,
				digests: lw.digests, err: lw.err,
			}
		}(w)
	}
	wg.Wait()

	rep := &LoadReport{Paths: len(series)}
	var allErrs []float64
	var covIn int
	perPath := make(map[string]string)
	for _, o := range outs {
		if o.err != nil && ctx.Err() == nil {
			return nil, o.err
		}
		rep.Requests += o.requests
		rep.Errors += o.errors
		rep.ChaosRequests += o.chaosReqs
		rep.ChaosFaults += o.chaosFaults
		rep.IntervalsScored += o.covTotal
		covIn += o.covIn
		allErrs = append(allErrs, o.errs...)
		for p, d := range o.digests {
			perPath[p] = d
		}
	}

	// Forced-panic probes: sent after the replay so a recovering daemon's
	// 500s cannot interleave with scored traffic. The probe asks for an
	// existing path with ChaosPanicHeader set; a daemon with chaos
	// injection panics in-handler and must answer 500 (recovery
	// middleware), a production daemon just serves the prediction. Either
	// way the response stays out of the digest.
	if cfg.Chaos != nil && len(series) > 0 && ctx.Err() == nil {
		probe := baseFor(series[0].Path) + "/v1/predict?path=" + url.QueryEscape(series[0].Path)
		for i := 0; i < chaosCfg.Panics; i++ {
			rep.ChaosRequests++
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, probe, nil)
			if err != nil {
				break
			}
			req.Header.Set(ChaosPanicHeader, "1")
			resp, err := client.Do(req)
			if err != nil {
				rep.ChaosFaults++
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusInternalServerError {
				rep.ChaosFaults++
			}
		}
	}
	for _, ps := range series {
		rep.Epochs += len(ps.Throughputs)
	}
	rep.Duration = time.Since(start)
	if rep.Duration > 0 {
		rep.QPS = float64(rep.Requests) / rep.Duration.Seconds()
	}
	ls := lat.snapshot()
	rep.LatencyP50Usec = ls.P50Usec
	rep.LatencyP99Usec = ls.P99Usec
	rep.LatencyMeanUsec = ls.MeanUsec()
	cs := cc.Stats()
	rep.ShedRetries = cs.ShedRetries
	rep.Retries = cs.Retries
	rep.Failovers = cs.Failovers
	rep.PerNode = cs.Completed
	rep.Predictions = len(allErrs)
	if rep.IntervalsScored > 0 {
		rep.IntervalCoverage = float64(covIn) / float64(rep.IntervalsScored)
	}
	rep.RMSRE = stats.RMSRE(allErrs, cfg.ErrClamp)
	abs := make([]float64, len(allErrs))
	for i, e := range allErrs {
		abs[i] = math.Min(math.Abs(e), cfg.ErrClamp)
	}
	rep.MedianAbsErr = stats.Median(abs)

	// Combine per-path digest chains in sorted order: worker assignment
	// and completion order cannot affect the result.
	names := make([]string, 0, len(perPath))
	for p := range perPath {
		names = append(names, p)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, p := range names {
		fmt.Fprintf(h, "%s=%s\n", p, perPath[p])
	}
	rep.Digest = hex.EncodeToString(h.Sum(nil))
	return rep, ctx.Err()
}

// loadWorker is one replay goroutine's state.
type loadWorker struct {
	cfg      LoadConfig
	client   *http.Client             // raw client, for chaos traffic only
	cc       *cluster.Client          // retrying client carrying all normal traffic
	baseFor  func(path string) string // path → owning node's base URL
	requests uint64
	errors   uint64
	scored   []float64
	covIn    int               // actuals inside the served [p10,p90] interval
	covTotal int               // predict responses that carried an interval
	digests  map[string]string // path → running hex digest chain
	lat      *histogram        // shared client-side latency histogram
	err      error

	// pending buffers this epoch round's observations per node when
	// BatchObserve is on; flushObserves drains it between epoch indices.
	pending map[string][]ObserveRequest

	// chaos state (nil injector = chaos off)
	chaos         *faultinject.Injector
	chaosCfg      ChaosConfig
	host          string
	chaosRequests uint64
	chaosFaults   uint64
}

// epoch replays one (path, epoch) cell: measure → predict (scored) → observe.
func (lw *loadWorker) epoch(ctx context.Context, ps PathSeries, e int) {
	if lw.chaos != nil {
		if lw.chaos.Check(siteClientAbort) != nil {
			lw.chaosAbort(ctx, ps.Path)
		}
		if lw.chaos.Check(siteClientSlow) != nil {
			lw.chaosSlowloris()
		}
	}
	actual := ps.Throughputs[e]
	base := lw.cfg.BaseURL
	if lw.baseFor != nil {
		base = lw.baseFor(ps.Path)
	}
	hasInputs := ps.Inputs != nil
	if hasInputs {
		in := ps.Inputs[e]
		lw.post(ctx, base, "/v1/measure", MeasureRequest{
			Path: ps.Path, RTTSeconds: in.RTT, LossRate: in.LossRate, AvailBwBps: in.AvailBw,
		}, nil)
	}
	// Before the first measure/observe the path does not exist yet; skip
	// the predict so a pure-HB replay never asks about an unknown path.
	if hasInputs || e > 0 {
		var pred Prediction
		body := lw.get(ctx, base, "/v1/predict?path="+url.QueryEscape(ps.Path), &pred)
		if body != nil {
			prev := lw.digests[ps.Path]
			sum := sha256.Sum256(append([]byte(prev), body...))
			lw.digests[ps.Path] = hex.EncodeToString(sum[:])
			if pred.Best != "" && pred.BestForecastBps > 0 {
				lw.scored = append(lw.scored, stats.RelativeError(pred.BestForecastBps, actual))
			}
			if lw.cfg.Quantiles && pred.P10Bps > 0 && pred.P90Bps >= pred.P10Bps {
				lw.covTotal++
				if actual >= pred.P10Bps && actual <= pred.P90Bps {
					lw.covIn++
				}
			}
		}
	}
	ob := ObserveRequest{Path: ps.Path, ThroughputBps: actual}
	if lw.cfg.BatchObserve {
		if lw.pending == nil {
			lw.pending = make(map[string][]ObserveRequest)
		}
		lw.pending[base] = append(lw.pending[base], ob)
		return
	}
	lw.post(ctx, base, "/v1/observe", ob, nil)
}

// flushObserves drains the batch-observe buffer: one POST
// /v1/observe-batch per node (chunked at the server's item cap), in
// enqueue order. Called between epoch indices, it lands every path's
// epoch-e observation before that path's epoch-e+1 measure/predict, so
// the service sees the exact per-path sequence of unbatched mode.
func (lw *loadWorker) flushObserves(ctx context.Context) {
	if len(lw.pending) == 0 {
		return
	}
	nodes := make([]string, 0, len(lw.pending))
	for n := range lw.pending {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		obs := lw.pending[node]
		for len(obs) > 0 && lw.err == nil {
			n := len(obs)
			if n > maxBatchItems {
				n = maxBatchItems
			}
			var out ObserveBatchResponse
			lw.post(ctx, node, "/v1/observe-batch", ObserveBatchRequest{Observations: obs[:n]}, &out)
			lw.errors += uint64(out.Rejected)
			obs = obs[n:]
		}
	}
	lw.pending = make(map[string][]ObserveRequest)
}

// chaosAbort fires an extra predict request and abandons it almost
// immediately — a client disconnect mid-request. Predict is read-only, so
// whether the server finished processing or not, session state and the
// fault-free digest are untouched.
func (lw *loadWorker) chaosAbort(ctx context.Context, path string) {
	lw.chaosRequests++
	base := lw.cfg.BaseURL
	if lw.baseFor != nil {
		base = lw.baseFor(path)
	}
	actx, cancel := context.WithTimeout(ctx, 500*time.Microsecond)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet,
		base+"/v1/predict?path="+url.QueryEscape(path), nil)
	if err != nil {
		return
	}
	resp, err := lw.client.Do(req)
	if err != nil {
		lw.chaosFaults++ // aborted as intended
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// chaosSlowloris opens a raw connection, sends a partial request and
// stalls, waiting for the server's ReadHeaderTimeout to hang up. The
// request never completes its headers, so no handler runs.
func (lw *loadWorker) chaosSlowloris() {
	if lw.host == "" {
		return
	}
	lw.chaosRequests++
	c, err := net.DialTimeout("tcp", lw.host, time.Second)
	if err != nil {
		return
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /v1/predict?path=chaos HTTP/1.1\r\nHost: %s\r\n", lw.host)
	c.SetReadDeadline(time.Now().Add(lw.chaosCfg.SlowHold))
	buf := make([]byte, 256)
	_, err = c.Read(buf)
	var nerr net.Error
	if err != nil && !(errors.As(err, &nerr) && nerr.Timeout()) {
		lw.chaosFaults++ // server hung up on us — the defense worked
	}
}

func (lw *loadWorker) post(ctx context.Context, base, path string, body, out any) {
	if lw.err != nil {
		return
	}
	data, err := json.Marshal(body)
	if err != nil {
		lw.err = err
		return
	}
	lw.do(ctx, http.MethodPost, base, path, data, out)
}

// get performs a GET and returns the raw body on HTTP 200 (nil otherwise),
// decoding into out when non-nil.
func (lw *loadWorker) get(ctx context.Context, base, path string, out any) []byte {
	if lw.err != nil {
		return nil
	}
	return lw.do(ctx, http.MethodGet, base, path, nil, out)
}

// do issues one request through the retrying cluster client, which rides
// out shed 429s, 5xx blips and node restarts with backoff and /readyz
// probing. The worker blocks until the request lands (or the retry
// deadline expires — the only per-node failure that still fails the
// run), so per-path request order — the determinism contract — is
// preserved even across a node restart.
func (lw *loadWorker) do(ctx context.Context, method, base, path string, body []byte, out any) []byte {
	reqStart := time.Now()
	status, data, err := lw.cc.Do(ctx, method, base, path, body)
	if err != nil {
		lw.err = err
		return nil
	}
	lw.lat.record(time.Since(reqStart))
	lw.requests++
	if status != http.StatusOK {
		lw.errors++
		return nil
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			lw.err = fmt.Errorf("predsvc: bad %s response: %w", path, err)
			return nil
		}
	}
	return data
}
