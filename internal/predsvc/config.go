// Package predsvc is the online serving layer of the reproduction: a
// concurrent, sharded in-memory path registry that owns one goroutine-safe
// predictor session per network path, exposed over an HTTP JSON API by
// cmd/predserverd and exercised by the cmd/predload load generator.
//
// The paper evaluates its predictors offline, over recorded traces; this
// package is the deployment shape the paper motivates (§1, §7): overlay
// routing, replica selection and streaming systems ask "what throughput
// will a bulk transfer on path P achieve right now?" before starting the
// transfer. Each session keeps the paper's History-Based ensemble
// (MA/EWMA/Holt-Winters, optionally LSO-wrapped, §5), a Formula-Based
// predictor fed with the latest pre-flow measurements (Eq. 3), and rolling
// accuracy statistics — the relative error of Eq. 4 and the RMSRE of
// Eq. 5 over a sliding window — so the service can also answer "which
// predictor is best on this path right now".
//
// Determinism contract: for a fixed per-path sequence of observe/measure
// requests, every /v1/predict response body is byte-identical across runs
// and across registry shard counts; accuracy state is per-path and updated
// only by that path's requests.
package predsvc

import (
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/predict"
)

// Config tunes the registry, the per-path predictor ensemble, and the
// rolling accuracy statistics. The zero value picks sensible defaults.
type Config struct {
	// Shards is the number of registry shards, rounded up to a power of
	// two (default 16). More shards reduce lock contention.
	Shards int
	// Capacity is the maximum number of paths kept hot in memory; the
	// least-recently-used path of a full shard is evicted to admit a new
	// one. Enforced per shard as Capacity/Shards (default 4096, min 1 per
	// shard). Without SpillDir an eviction loses the session; with it the
	// session spills to disk instead.
	Capacity int

	// SpillDir, when non-empty, backs the registry with the two-tier
	// store.SpillStore: the LRU keeps Capacity sessions hot in memory and
	// evicts cold ones to an append-only checksummed log under SpillDir,
	// faulting them back in on access — one node holds millions of cold
	// paths in bounded RSS. The log is a cache extension, truncated on
	// boot; snapshots remain the restart durability story. Honored by
	// OpenRegistry and Open (NewServer/NewRegistry panic if the directory
	// cannot be opened).
	SpillDir string

	// ErrorWindow is the number of most recent relative errors (paper
	// Eq. 4) retained per predictor for the rolling RMSRE (default 50).
	ErrorWindow int
	// ErrClamp bounds |E| when aggregating RMSRE, as in the offline
	// experiments (default 10).
	ErrClamp float64
	// MinErrors is how many errors a predictor needs before it competes
	// for "best predictor" (default 3).
	MinErrors int
	// HistoryLimit is the number of raw observations retained per path
	// for snapshot/restore (default 128).
	HistoryLimit int

	// MAOrder is the moving-average order (default 10, the paper's
	// sweet spot for stationary paths).
	MAOrder int
	// EWMAAlpha is the EWMA weight (default 0.8).
	EWMAAlpha float64
	// HWAlpha, HWBeta are the Holt-Winters weights (default 0.8 / 0.2,
	// the paper's choice).
	HWAlpha, HWBeta float64
	// DisableLSO turns off the level-shift/outlier wrapper; by default
	// every ensemble member is LSO-wrapped (the paper's best configs).
	DisableLSO bool
	// LSO overrides the LSO thresholds (zero value: paper defaults).
	LSO predict.LSOConfig

	// FB configures the formula-based predictor (zero value: PFTK,
	// 1460 B MSS, 1 MB window, delayed ACKs — the paper's target flow).
	FB predict.FBConfig

	// DisableZoo restricts each session to the paper ensemble (HB trio +
	// FB), turning off the tournament extras — stability switcher,
	// feature regression and ECM. By default the full zoo runs per path.
	DisableZoo bool
	// Regression tunes the online least-squares family (zero value:
	// predict.RegressionConfig defaults).
	Regression predict.RegressionConfig
	// ECM tunes the Empirical Conditional Method family (zero value:
	// predict.ECMConfig defaults).
	ECM predict.ECMConfig
	// Switcher tunes the stability-aware hybrid family (zero value:
	// predict.SwitcherConfig defaults).
	Switcher predict.SwitcherConfig

	// StaleAfter is how many observations a path may absorb after a
	// measurement before FB forecasts are flagged stale and excluded from
	// best-predictor selection (default 30; negative disables staleness
	// tracking). Staleness is counted in observations, not wall time, so
	// predict responses stay deterministic for a fixed request sequence.
	StaleAfter int

	// ReadHeaderTimeout bounds how long Serve's http.Server waits for a
	// client to finish sending request headers — the slowloris guard
	// (default 5s; negative disables).
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading one full request (default 1m; negative
	// disables).
	ReadTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit idle
	// (default 2m; negative disables).
	IdleTimeout time.Duration
	// RequestTimeout is the per-request context deadline installed by the
	// hardening middleware (default 15s; negative disables).
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently served requests; past it the server
	// sheds load with 429 + Retry-After instead of queueing without bound
	// (default 1024; negative disables shedding).
	MaxInFlight int

	// DisableFastpath pins the hot endpoints (/v1/observe, /v1/measure,
	// /v1/predict and the batch endpoints) to the reflection-based
	// encoding/json handlers instead of the zero-alloc wire fastpath
	// (wire.go). Responses are byte-identical either way; the switch
	// exists for digest cross-checks and as an escape hatch.
	DisableFastpath bool

	// DrainDelay is how long Serve keeps the listener accepting after
	// /readyz flips to 503 on shutdown, giving cluster clients a probe
	// cycle to stop routing here before connections start closing
	// (default 0: drain immediately; rolling restarts in scripts use a
	// short delay).
	DrainDelay time.Duration

	// SnapshotRetryMin/Max bound the exponential backoff between retries
	// of a failed snapshot write (defaults 250ms / 15s).
	SnapshotRetryMin time.Duration
	SnapshotRetryMax time.Duration
	// SnapshotRetries is how many backoff retries one snapshot cycle
	// attempts before giving up until the next tick (default 8).
	SnapshotRetries int

	// Faults is an optional deterministic fault injector; sites are the
	// Site* constants in this package. Nil injects nothing.
	Faults *faultinject.Injector

	// Obs, when non-nil, plugs the server into the observability layer:
	// the service counters are re-exported through /metrics (see
	// RegisterObsMetrics for the catalogue), each request records a span,
	// and the obs endpoints (/metrics, /debug/pprof/, /debug/trace) are
	// served from the same listener — routed around the hardening
	// middleware so load shedding can never shed a scrape.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	c.Shards = nextPow2(c.Shards)
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.ErrorWindow <= 0 {
		c.ErrorWindow = 50
	}
	if c.ErrClamp == 0 {
		c.ErrClamp = 10
	}
	if c.MinErrors <= 0 {
		c.MinErrors = 3
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = 128
	}
	if c.MAOrder <= 0 {
		c.MAOrder = 10
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.8
	}
	if c.HWAlpha == 0 {
		c.HWAlpha = 0.8
	}
	if c.HWBeta == 0 {
		c.HWBeta = 0.2
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = 30
	}
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = time.Minute
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 1024
	}
	if c.SnapshotRetryMin <= 0 {
		c.SnapshotRetryMin = 250 * time.Millisecond
	}
	if c.SnapshotRetryMax <= 0 {
		c.SnapshotRetryMax = 15 * time.Second
	}
	if c.SnapshotRetries == 0 {
		c.SnapshotRetries = 8
	}
	return c
}

// posDur maps the "negative disables" config convention onto http.Server's
// "zero disables" one.
func posDur(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// nextPow2 returns the smallest power of two ≥ n (n ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
