package predsvc

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/predict"
)

// startResilientDaemon boots a real daemon (TCP listener, Serve with the
// configured timeouts) plus a snapshot loop when snapPath is non-empty,
// and returns the base URL and a shutdown func asserting clean exits.
func startResilientDaemon(t *testing.T, cfg Config, srv *Server, snapPath string, interval time.Duration) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	snapDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()
	if snapPath != "" {
		go func() { snapDone <- srv.SnapshotLoop(ctx, snapPath, interval) }()
	} else {
		snapDone <- nil
	}
	return "http://" + ln.Addr().String(), func() {
		cancel()
		for _, c := range []chan error{serveDone, snapDone} {
			select {
			case err := <-c:
				if err != nil {
					t.Errorf("daemon goroutine exited with %v, want nil", err)
				}
			case <-time.After(10 * time.Second):
				t.Error("daemon goroutine did not exit within 10s")
			}
		}
	}
}

// TestEndToEndChaos is the chaos acceptance gate: a daemon with injected
// snapshot write failures, an aggressive in-flight cap, and a short
// slowloris timeout is driven by a chaos-mode replay (client aborts,
// slowloris probes, forced panic probes). The daemon must survive with
// zero fault-free request errors, recover every panic, keep snapshotting
// through the injected failures, and produce a predict digest identical
// to a fault-free run of the same series against a default daemon.
func TestEndToEndChaos(t *testing.T) {
	series := SyntheticSeries(6, 30, 9)

	// Baseline: no chaos, no shedding pressure.
	baseSrv := NewServer(Config{Shards: 4, Capacity: 64})
	base, stopBase := startResilientDaemon(t, Config{}, baseSrv, "", 0)
	baseRep, err := Replay(context.Background(), LoadConfig{BaseURL: base, Workers: 4}, series)
	stopBase()
	if err != nil {
		t.Fatal(err)
	}
	if baseRep.Errors != 0 {
		t.Fatalf("baseline run had %d errors", baseRep.Errors)
	}

	// Chaos daemon: snapshot writes fail on a fixed cadence, panic probes
	// fire, only 2 requests may be in flight, headers must arrive fast.
	inj := faultinject.New(7,
		faultinject.Rule{Site: SiteSnapshotWrite, Every: 2},
		faultinject.Rule{Site: SiteHandlerPanic, Every: 1},
	)
	cfg := Config{
		Shards: 4, Capacity: 64,
		MaxInFlight:       2,
		ReadHeaderTimeout: 100 * time.Millisecond,
		SnapshotRetryMin:  time.Millisecond,
		SnapshotRetryMax:  4 * time.Millisecond,
		Faults:            inj,
	}
	snapPath := t.TempDir() + "/chaos-snap.json"
	srv := NewServer(cfg)
	chaosBase, stop := startResilientDaemon(t, cfg, srv, snapPath, 20*time.Millisecond)

	rep, err := Replay(context.Background(), LoadConfig{
		BaseURL: chaosBase,
		Workers: 8,
		Chaos: &ChaosConfig{
			Seed:      7,
			AbortProb: 0.15,
			SlowProb:  0.05,
			SlowHold:  time.Second,
			Panics:    2,
		},
	}, series)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("chaos run had %d fault-free request errors (of %d)", rep.Errors, rep.Requests)
	}
	if rep.ChaosRequests == 0 {
		t.Error("chaos mode injected no faults — seeded plan produced nothing")
	}
	if rep.Digest != baseRep.Digest {
		t.Errorf("chaos broke determinism: fault-free digest differs\nbaseline %s\nchaos    %s",
			baseRep.Digest, rep.Digest)
	}

	// Two explicit snapshot cycles guarantee hitting the every-2nd-write
	// fault regardless of how many ticks the loop managed during replay.
	for i := 0; i < 2; i++ {
		if err := srv.WriteSnapshotRetry(context.Background(), snapPath); err != nil {
			t.Fatalf("WriteSnapshotRetry %d: %v", i, err)
		}
	}
	m := srv.Metrics().Snapshot()
	if m.PanicsRecovered < 1 {
		t.Errorf("panics_recovered = %d, want >= 1 (probes must panic in-handler and be recovered)", m.PanicsRecovered)
	}
	if m.SnapshotFailures < 1 || m.SnapshotRetries < 1 {
		t.Errorf("snapshot failures/retries = %d/%d, want both >= 1", m.SnapshotFailures, m.SnapshotRetries)
	}
	if m.SnapshotsWritten < 2 {
		t.Errorf("snapshots_written = %d, want >= 2 despite injected failures", m.SnapshotsWritten)
	}

	// The daemon is still fully alive after all that.
	resp, err := http.Get(chaosBase + "/v1/stats")
	if err != nil {
		t.Fatalf("daemon dead after chaos: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stats after chaos: %d", resp.StatusCode)
	}
	stop()

	// And the surviving snapshot is intact and restorable.
	fresh := NewServer(Config{Shards: 4, Capacity: 64})
	st, err := fresh.RestoreSnapshot(snapPath)
	if err != nil || st.Quarantined != "" {
		t.Fatalf("restore of chaos-era snapshot: %+v, %v", st, err)
	}
	if st.Paths != len(series) {
		t.Errorf("restored %d paths, want %d", st.Paths, len(series))
	}
}

// TestCorruptSnapshotQuarantine: a corrupt snapshot at boot is moved to
// "<path>.corrupt-<n>" and the daemon starts empty; successive corruptions
// get successive quarantine names; a healthy legacy (pre-checksum) file
// still restores.
func TestCorruptSnapshotQuarantine(t *testing.T) {
	dir := t.TempDir()
	snapPath := dir + "/snap.json"

	seed := NewServer(Config{})
	seed.Registry().GetOrCreate("p1").Observe(5e6)
	seed.Registry().GetOrCreate("p2").Observe(7e6)
	if err := seed.WriteSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}

	// Bit-flip inside the JSON body → checksum mismatch.
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0xFF
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Config{})
	st, err := srv.RestoreSnapshot(snapPath)
	if err != nil {
		t.Fatalf("RestoreSnapshot on corrupt file must not error (boot empty): %v", err)
	}
	if st.Paths != 0 || st.Quarantined != snapPath+".corrupt-1" || st.Reason == nil {
		t.Fatalf("RestoreStats = %+v, want 0 paths, quarantine to .corrupt-1, a reason", st)
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Error("corrupt snapshot still in place after quarantine")
	}
	if _, err := os.Stat(st.Quarantined); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}

	// Second corruption picks the next free name.
	if err := os.WriteFile(snapPath, []byte("{ this is not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := NewServer(Config{}).RestoreSnapshot(snapPath)
	if err != nil || st2.Quarantined != snapPath+".corrupt-2" {
		t.Fatalf("second quarantine = %+v, %v; want .corrupt-2", st2, err)
	}

	// Legacy format: bare JSON without a checksum trailer restores fine.
	raw, err := json.Marshal(seed.Registry().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := NewServer(Config{}).RestoreSnapshot(snapPath)
	if err != nil || st3.Quarantined != "" || st3.Paths != 2 {
		t.Fatalf("legacy restore = %+v, %v; want 2 paths, no quarantine", st3, err)
	}

	// Missing file stays a non-event.
	st4, err := NewServer(Config{}).RestoreSnapshot(dir + "/absent.json")
	if err != nil || st4.Paths != 0 || st4.Quarantined != "" {
		t.Errorf("missing-file restore = %+v, %v", st4, err)
	}
}

// TestSnapshotChecksumRoundTrip pins the encode/decode contract: intact
// data round-trips, any tampering surfaces as ErrCorruptSnapshot.
func TestSnapshotChecksumRoundTrip(t *testing.T) {
	reg := NewRegistry(Config{})
	reg.GetOrCreate("a#1").Observe(1e6)
	reg.GetOrCreate("b#2").Observe(2e6)
	data, err := EncodeSnapshot(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\nsha256:") {
		t.Fatalf("encoded snapshot missing checksum trailer: %q", data[:min(len(data), 80)])
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Paths) != 2 {
		t.Errorf("round trip lost paths: %d", len(snap.Paths))
	}
	for _, corrupt := range [][]byte{
		append([]byte{}, data[:len(data)/2]...), // truncated
		append([]byte("x"), data...),            // prefixed garbage
	} {
		if _, err := DecodeSnapshot(corrupt); err == nil {
			t.Error("DecodeSnapshot accepted corrupt data")
		}
	}
	flipped := append([]byte(nil), data...)
	flipped[10] ^= 0x01
	if _, err := DecodeSnapshot(flipped); err == nil {
		t.Error("DecodeSnapshot accepted a bit flip")
	}
}

// TestSnapshotLoopRetriesTransientFailures: two injected consecutive write
// failures must not kill the loop — it backs off, retries, succeeds, and
// keeps ticking.
func TestSnapshotLoopRetriesTransientFailures(t *testing.T) {
	inj := faultinject.New(3, faultinject.Rule{Site: SiteSnapshotWrite, Every: 1, Times: 2})
	srv := NewServer(Config{
		SnapshotRetryMin: time.Millisecond,
		SnapshotRetryMax: 2 * time.Millisecond,
		Faults:           inj,
	})
	srv.Registry().GetOrCreate("p").Observe(1e6)
	path := t.TempDir() + "/snap.json"

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.SnapshotLoop(ctx, path, 2*time.Millisecond) }()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().Snapshot().SnapshotsWritten == 0 {
		if time.Now().After(deadline) {
			t.Fatal("snapshot loop never recovered from injected write failures")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("SnapshotLoop returned %v, want nil", err)
	}
	m := srv.Metrics().Snapshot()
	if m.SnapshotFailures != 2 || m.SnapshotRetries < 2 {
		t.Errorf("failures/retries = %d/%d, want 2 failures and >= 2 retries", m.SnapshotFailures, m.SnapshotRetries)
	}
	if _, err := ReadSnapshotFile(path); err != nil {
		t.Errorf("snapshot on disk unreadable after recovery: %v", err)
	}
}

// TestLoadSheddingReturns429: with the in-flight cap saturated, requests
// are shed with 429 + Retry-After and counted; freeing the cap restores
// service.
func TestLoadSheddingReturns429(t *testing.T) {
	srv := NewServer(Config{MaxInFlight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.sem <- struct{}{} // saturate the in-flight semaphore
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server returned %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	if got := srv.Metrics().Snapshot().RequestsShed; got != 1 {
		t.Errorf("requests_shed = %d, want 1", got)
	}
	<-srv.sem
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after draining, status %d, want 200", resp.StatusCode)
	}
}

// TestPanicRecoveryMiddleware: an injected handler panic becomes a 500 and
// a panics_recovered tick; the server keeps serving. Without an injector
// the panic header is inert.
func TestPanicRecoveryMiddleware(t *testing.T) {
	inj := faultinject.New(1, faultinject.Rule{Site: SiteHandlerPanic, Every: 1})
	srv := NewServer(Config{Faults: inj})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	req.Header.Set(ChaosPanicHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("panicking request killed the connection: %v", err)
	}
	var apiErr apiError
	json.NewDecoder(resp.Body).Decode(&apiErr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panic probe returned %d, want 500", resp.StatusCode)
	}
	if apiErr.Error == "" {
		t.Error("panic 500 carried no JSON error body")
	}
	if got := srv.Metrics().Snapshot().PanicsRecovered; got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}

	// Daemon is still alive.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-panic stats: %d, want 200", resp.StatusCode)
	}

	// No injector → the header is ignored and served normally.
	plain := NewServer(Config{})
	ts2 := httptest.NewServer(plain.Handler())
	defer ts2.Close()
	req2, _ := http.NewRequest(http.MethodGet, ts2.URL+"/v1/stats", nil)
	req2.Header.Set(ChaosPanicHeader, "1")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || plain.Metrics().Snapshot().PanicsRecovered != 0 {
		t.Errorf("production server honored the chaos header: status %d", resp2.StatusCode)
	}
}

// TestReadHeaderTimeoutClosesSlowloris: a connection that stalls inside
// its request headers is closed at ReadHeaderTimeout, and the daemon keeps
// serving everyone else.
func TestReadHeaderTimeoutClosesSlowloris(t *testing.T) {
	srv := NewServer(Config{ReadHeaderTimeout: 50 * time.Millisecond})
	base, stop := startResilientDaemon(t, Config{}, srv, "", 0)
	defer stop()

	addr := strings.TrimPrefix(base, "http://")
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /v1/stats HTTP/1.1\r\nHost: %s\r\n", addr) // headers never finished
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	_, err = c.Read(make([]byte, 1))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("server answered a request whose headers never completed")
	}
	var nerr net.Error
	if ok := errAs(err, &nerr); ok && nerr.Timeout() {
		t.Fatalf("server did not hang up within 5s (slowloris survived)")
	}
	if elapsed > 3*time.Second {
		t.Errorf("hang-up took %v, want ~ReadHeaderTimeout (50ms)", elapsed)
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stats after slowloris: %d", resp.StatusCode)
	}
}

// TestStaleMeasurementDegradation: FB forecasts age out after StaleAfter
// observations, are flagged, drop out of best-predictor selection, and a
// fresh measurement rejuvenates them. Staleness survives snapshot/restore.
func TestStaleMeasurementDegradation(t *testing.T) {
	cfg := Config{StaleAfter: 5}
	reg := NewRegistry(cfg)
	s := reg.GetOrCreate("p")
	in := predict.FBInputs{RTT: 0.05, LossRate: 0.005, AvailBw: 2e7}
	if f := s.SetMeasurement(in); f <= 0 {
		t.Fatalf("FB forecast %v for valid measurements, want > 0", f)
	}
	for i := 0; i < 6; i++ {
		s.Observe(10e6 * (1 + 0.01*float64(i)))
	}
	p := s.Predict()
	if p.FB == nil {
		t.Fatal("FB state missing")
	}
	if p.FB.MeasurementAge != 6 || !p.FB.Stale {
		t.Errorf("age %d stale %v, want 6/true", p.FB.MeasurementAge, p.FB.Stale)
	}
	if p.Best == "FB" {
		t.Error("stale FB still selected as best predictor")
	}

	// Staleness survives a snapshot/restore cycle.
	snap := reg.Snapshot()
	reg2 := NewRegistry(cfg)
	if _, err := reg2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	p2, ok := reg2.Peek("p")
	if !ok {
		t.Fatal("restored registry lost the path")
	}
	if got := p2.Predict(); got.FB == nil || !got.FB.Stale || got.FB.MeasurementAge != 6 {
		t.Errorf("restored staleness lost: %+v", got.FB)
	}

	// A fresh measurement rejuvenates the forecast.
	s.SetMeasurement(in)
	p3 := s.Predict()
	if p3.FB.Stale || p3.FB.MeasurementAge != 0 {
		t.Errorf("fresh measurement still stale: age %d stale %v", p3.FB.MeasurementAge, p3.FB.Stale)
	}

	// StaleAfter < 0 disables flagging entirely.
	s2 := NewRegistry(Config{StaleAfter: -1}).GetOrCreate("q")
	s2.SetMeasurement(in)
	for i := 0; i < 100; i++ {
		s2.Observe(10e6)
	}
	if got := s2.Predict(); got.FB.Stale {
		t.Error("StaleAfter=-1 still flagged stale")
	}
}

// TestRejectInvalidInputs: NaN/Inf/negative observations and measurements
// are rejected at both the HTTP boundary (400 + rejected_inputs metric)
// and the session API (dropped without mutating state).
func TestRejectInvalidInputs(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bad := []struct{ path, body string }{
		{"/v1/observe", `{"path":"p","throughput_bps":-5}`},
		{"/v1/observe", `{"path":"p","throughput_bps":0}`},
		{"/v1/measure", `{"path":"p","rtt_s":-1,"loss_rate":0.1,"avail_bw_bps":1e6}`},
		{"/v1/measure", `{"path":"p","rtt_s":0.1,"loss_rate":2,"avail_bw_bps":1e6}`},
	}
	for _, b := range bad {
		resp, data := postJSON(t, ts.URL+b.path, b.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400", b.path, b.body, resp.StatusCode)
		}
		_ = data
	}
	if got := srv.Metrics().Snapshot().RejectedInputs; got != uint64(len(bad)) {
		t.Errorf("rejected_inputs = %d, want %d", got, len(bad))
	}
	// Malformed JSON is a 400 but not an input rejection.
	postJSON(t, ts.URL+"/v1/observe", `garbage`)
	if got := srv.Metrics().Snapshot().RejectedInputs; got != uint64(len(bad)) {
		t.Errorf("rejected_inputs counted a JSON parse failure: %d", got)
	}
	// Nothing poisoned the registry.
	if srv.Registry().Len() != 0 {
		t.Errorf("invalid inputs created %d sessions", srv.Registry().Len())
	}

	// Session-level guard for direct API users: NaN/Inf cannot be
	// expressed in JSON, so they can only arrive through Go calls.
	s := NewRegistry(Config{}).GetOrCreate("direct")
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, 0} {
		if n := s.Observe(x); n != 0 {
			t.Errorf("Observe(%v) absorbed the sample: count %d", x, n)
		}
	}
	if f := s.SetMeasurement(predict.FBInputs{RTT: math.NaN(), LossRate: 0.1, AvailBw: 1e6}); f != 0 {
		t.Errorf("SetMeasurement with NaN RTT returned %v, want 0", f)
	}
	if f := s.SetMeasurement(predict.FBInputs{RTT: 0.1, LossRate: 0.1, AvailBw: math.Inf(1)}); f != 0 {
		t.Errorf("SetMeasurement with Inf bandwidth returned %v, want 0", f)
	}
	if p := s.Predict(); p.FB != nil || p.Observations != 0 {
		t.Errorf("invalid inputs mutated the session: %+v", p)
	}
	if n := s.Observe(5e6); n != 1 {
		t.Errorf("valid observation after rejections: count %d, want 1", n)
	}
}

// errAs adapts errors.As for the net.Error interface without importing
// errors under a clash-prone name in this test file.
func errAs(err error, target *net.Error) bool {
	for err != nil {
		if ne, ok := err.(net.Error); ok {
			*target = ne
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
