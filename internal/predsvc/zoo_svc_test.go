package predsvc

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/predict"
)

// TestPredictServesQuantilesAndFamily: after enough traffic every predict
// response must carry a tournament winner plus an ordered [p10,p50,p90]
// interval, and the per-family breakdown must cover the full zoo.
func TestPredictServesQuantilesAndFamily(t *testing.T) {
	s := newSession("p", testConfig())
	series := SyntheticSeries(1, 60, 42)[0]
	for i, x := range series.Throughputs {
		s.SetMeasurement(series.Inputs[i])
		s.Observe(x)
	}
	p := s.Predict()
	if p.Family == "" || p.FamilyForecastBps <= 0 {
		t.Fatalf("no tournament winner after 60 epochs: %+v", p)
	}
	if !(p.P10Bps > 0 && p.P10Bps <= p.P50Bps && p.P50Bps <= p.P90Bps) {
		t.Fatalf("quantiles not ordered/positive: p10=%v p50=%v p90=%v",
			p.P10Bps, p.P50Bps, p.P90Bps)
	}
	if len(p.Families) != 7 {
		t.Fatalf("family breakdown has %d entries, want 7 (MA, EWMA, HW, switcher, FB, regression, ECM)", len(p.Families))
	}
	var won *FamilyState
	for i := range p.Families {
		f := &p.Families[i]
		if f.ErrorCount == 0 {
			t.Errorf("family %s scored no errors over 60 epochs", f.Name)
		}
		if f.Regret < 0 {
			t.Errorf("family %s regret %v < 0; regret is a gap to the best", f.Name, f.Regret)
		}
		if f.Name == p.Family {
			won = f
		}
	}
	if won == nil {
		t.Fatalf("winner %q not in the family breakdown", p.Family)
	}
	if won.Regret != 0 {
		t.Errorf("winner %s has regret %v, want 0 (it is the best-in-hindsight)", won.Name, won.Regret)
	}
	// The paper ensemble's fields are unchanged by the zoo.
	if len(p.HB) != 3 || p.Best == "" {
		t.Errorf("paper ensemble view degraded: %d HB entries, best %q", len(p.HB), p.Best)
	}
}

// TestDisableZoo restricts a session to the paper ensemble: no extra
// families, no tournament winner beyond the HB trio + FB.
func TestDisableZoo(t *testing.T) {
	cfg := testConfig()
	cfg.DisableZoo = true
	s := newSession("p", cfg)
	for _, x := range []float64{10e6, 11e6, 12e6, 11e6, 10e6, 12e6} {
		s.Observe(x)
	}
	p := s.Predict()
	if len(p.Families) != 4 {
		t.Fatalf("DisableZoo session runs %d families, want 4 (MA, EWMA, HW, FB)", len(p.Families))
	}
	for _, f := range p.Families {
		switch f.Name {
		case "regression", "ECM", "switcher":
			t.Errorf("DisableZoo session still runs %s", f.Name)
		}
	}
}

// TestCalibrationEndToEnd is the acceptance criterion for the quantile
// surface: replay a deterministic synthetic workload against a real
// daemon with interval scoring on, and require the empirical coverage of
// the served [p10,p90] intervals to land within ±10 points of the nominal
// 80%.
func TestCalibrationEndToEnd(t *testing.T) {
	base, stop := startDaemon(t, Config{Shards: 8, Capacity: 256})
	defer stop()

	series := SyntheticSeries(12, 80, 17)
	rep, err := Replay(context.Background(), LoadConfig{BaseURL: base, Workers: 4, Quantiles: true}, series)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("calibration run had %d request errors", rep.Errors)
	}
	if rep.IntervalsScored == 0 {
		t.Fatal("no intervals scored: predict responses are not serving quantiles")
	}
	if rep.IntervalCoverage < 0.70 || rep.IntervalCoverage > 0.90 {
		t.Errorf("empirical [p10,p90] coverage = %.3f over %d intervals, want within [0.70, 0.90]",
			rep.IntervalCoverage, rep.IntervalsScored)
	}
	t.Logf("calibration: coverage %.3f over %d intervals", rep.IntervalCoverage, rep.IntervalsScored)
}

// TestLegacyV1SnapshotRestore: a version-1 snapshot (PR-6 era: HBErrors /
// FBErrors, no Families) must restore cleanly into the zoo registry — the
// paper ensemble comes back with its windows, the new families warm up
// empty — and keep serving.
func TestLegacyV1SnapshotRestore(t *testing.T) {
	legacy := &Snapshot{
		Version: 1,
		Paths: []PathSnapshot{{
			Path:         "v1-path",
			Observations: 6,
			History:      []float64{10e6, 12e6, 11e6, 13e6, 12e6, 12.5e6},
			FBInputs:     &FBInputsSnapshot{RTTSeconds: 0.05, LossRate: 0.001, AvailBwBps: 20e6},
			FBAge:        2,
			HBErrors: [][]float64{
				{0.2, -0.1, 0.05, 0.1, -0.04},
				{0.15, -0.12, 0.06, 0.09, -0.03},
				{0.3, -0.2, 0.1, 0.15, -0.08},
			},
			FBErrors: []float64{0.5, 0.4},
		}},
	}

	// Round-trip through the codec: version 1 must still decode.
	data, err := EncodeSnapshot(legacy)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot rejected a version-1 file: %v", err)
	}

	reg := NewRegistry(Config{Shards: 1, Capacity: 8})
	if n, err := reg.Restore(decoded); err != nil || n != 1 {
		t.Fatalf("Restore(v1) = (%d, %v), want (1, nil)", n, err)
	}
	s, ok := reg.Peek("v1-path")
	if !ok {
		t.Fatal("v1 path missing after restore")
	}
	p := s.Predict()
	if p.Observations != 6 {
		t.Errorf("Observations = %d, want 6", p.Observations)
	}
	// The paper ensemble's windows came back verbatim.
	for i, st := range p.HB {
		if st.ErrorCount != len(legacy.Paths[0].HBErrors[i]) {
			t.Errorf("%s ErrorCount = %d, want %d (legacy window)", st.Name, st.ErrorCount, len(legacy.Paths[0].HBErrors[i]))
		}
	}
	if p.FB == nil || p.FB.ErrorCount != 2 {
		t.Fatalf("FB state not restored from legacy FBErrors: %+v", p.FB)
	}
	// The zoo is live: new families exist and keep learning from traffic.
	if len(p.Families) != 7 {
		t.Fatalf("restored session runs %d families, want the full zoo of 7", len(p.Families))
	}
	s.Observe(12e6)
	s.Observe(12.2e6)
	p2 := s.Predict()
	if p2.Family == "" {
		t.Error("no tournament winner after post-restore traffic")
	}

	// A never-written version must still be rejected.
	if _, err := NewRegistry(Config{Shards: 1, Capacity: 8}).Restore(&Snapshot{Version: 99}); err == nil {
		t.Error("Restore accepted snapshot version 99")
	}
}

// TestSnapshotZooFamiliesFinite mirrors the PR-2 Holt-Winters clamp fix
// at the zoo level: after a collapsing series (HW goes negative, raw
// relative errors blow up toward ±Inf) every family's serialized error
// window — and the regression/ECM model state — must still be finite JSON.
func TestSnapshotZooFamiliesFinite(t *testing.T) {
	reg := NewRegistry(Config{Shards: 1, Capacity: 8})
	s := reg.GetOrCreate("falling")
	in := predict.FBInputs{RTT: 0.0001, LossRate: 0, AvailBw: math.MaxFloat64 / 2}
	for _, x := range []float64{1e12, 1e8, 1e6, 1e4, 1e4, 1e4} {
		s.SetMeasurement(in)
		s.Observe(x)
	}
	snap := reg.Snapshot()
	for _, ps := range snap.Paths {
		for _, fs := range ps.Families {
			for _, e := range fs.Errors {
				if math.IsInf(e, 0) || math.IsNaN(e) {
					t.Fatalf("family %s window holds non-finite error %v", fs.Name, e)
				}
			}
		}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("zoo snapshot with extreme inputs does not marshal: %v", err)
	}
	// And it restores: the serialized regression/ECM state is valid.
	decoded := &Snapshot{}
	if err := json.Unmarshal(data, decoded); err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegistry(Config{Shards: 1, Capacity: 8})
	if _, err := reg2.Restore(decoded); err != nil {
		t.Fatalf("restore of extreme-input snapshot failed: %v", err)
	}
	s2, _ := reg2.Peek("falling")
	p := s2.Predict()
	for _, f := range p.Families {
		for _, v := range []float64{f.ForecastBps, f.P10Bps, f.P50Bps, f.P90Bps, f.RMSRE} {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("family %s serves non-finite value %v after restore", f.Name, v)
			}
		}
	}
}

// TestSelectionCountsSurface: the daemon's /v1/stats must expose how often
// each family won the tournament, and the totals must add up to the
// predict responses that had a winner.
func TestSelectionCountsSurface(t *testing.T) {
	srv := NewServer(Config{Shards: 2, Capacity: 32})
	series := SyntheticSeries(2, 30, 3)
	for _, ps := range series {
		sess := srv.Registry().GetOrCreate(ps.Path)
		for i, x := range ps.Throughputs {
			sess.SetMeasurement(ps.Inputs[i])
			sess.Observe(x)
			p := sess.Predict()
			if p.Family != "" {
				srv.Metrics().recordSelection(p.Family)
			}
		}
	}
	counts := srv.Metrics().SelectionCounts()
	if len(counts) != 7 {
		t.Fatalf("SelectionCounts has %d families, want 7: %v", len(counts), counts)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no selections recorded over 60 predicts")
	}
}
