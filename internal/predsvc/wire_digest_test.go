package predsvc

import (
	"context"
	"net/http/httptest"
	"testing"
)

// TestReplayDigestFastpathIdentical is the end-to-end equivalence gate
// for the wire fastpath: the same replay driven over real HTTP against a
// fastpath server and a -no-fastpath (reflection-handler) server must
// produce the same predict-response digest — the SHA-256 chain over
// every 200-OK predict body — plus identical request accounting. Any
// byte the codec got wrong anywhere in the response surface shows up
// here as a digest split.
func TestReplayDigestFastpathIdentical(t *testing.T) {
	series := SyntheticSeries(12, 40, 3)
	run := func(disable bool) *LoadReport {
		t.Helper()
		srv, err := Open(Config{DisableFastpath: disable})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		rep, err := Replay(context.Background(), LoadConfig{BaseURL: ts.URL, Workers: 4}, series)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	fast := run(false)
	oracle := run(true)
	if fast.Digest != oracle.Digest {
		t.Errorf("digest split: fastpath %s, oracle %s", fast.Digest, oracle.Digest)
	}
	if fast.Predictions != oracle.Predictions || fast.Requests != oracle.Requests ||
		fast.Errors != oracle.Errors {
		t.Errorf("accounting split: fastpath %+v, oracle %+v", fast, oracle)
	}
	if fast.Predictions == 0 {
		t.Error("replay scored no predictions; the digest proves nothing")
	}
}
