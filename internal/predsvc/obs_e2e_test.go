package predsvc

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// scrape fetches url and returns the body.
func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// sampleValue extracts the value of an exposition line whose name (with
// labels) equals name exactly.
func sampleValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("unparseable sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("exposition has no sample %q\n---\n%s", name, exposition)
	return 0
}

// TestMetricsEndpointE2E is the observability acceptance test: a real
// daemon (own TCP listener) under the predload generator, with chaos
// faults ticking the resilience counters, must serve a /metrics
// exposition that (a) is valid Prometheus text format, (b) agrees with
// /debug/vars on every bridged counter, and (c) keeps being served while
// the API itself is shedding load.
func TestMetricsEndpointE2E(t *testing.T) {
	o := obs.New(1024)
	inj := faultinject.New(3, faultinject.Rule{Site: SiteHandlerPanic, Every: 1})
	srv := NewServer(Config{
		Shards: 4, Capacity: 64,
		MaxInFlight: 64,
		Faults:      inj,
		Obs:         o,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	defer func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not shut down within 10s")
		}
	}()

	// Drive real load, then tick the resilience counters: one chaos
	// probe panics inside the handler chain, and one request is shed
	// while the in-flight semaphore is saturated by hand.
	series := SyntheticSeries(4, 20, 5)
	if _, err := Replay(context.Background(), LoadConfig{BaseURL: base, Workers: 4}, series); err != nil {
		t.Fatal(err)
	}
	// One round through each batch endpoint so their per-endpoint families
	// appear in the exposition.
	if resp, err := http.Post(base+"/v1/observe-batch", "application/json",
		strings.NewReader(`{"observations":[{"path":"batched","throughput_bps":1e7}]}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe-batch status = %d", resp.StatusCode)
		}
	}
	if resp, err := http.Post(base+"/v1/predict-batch", "application/json",
		strings.NewReader(`{"paths":["batched"]}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict-batch status = %d", resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/stats", nil)
	req.Header.Set(ChaosPanicHeader, "1")
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("chaos probe status = %d, want 500", resp.StatusCode)
		}
	}
	for i := 0; i < cap(srv.sem); i++ {
		srv.sem <- struct{}{}
	}
	if code, _ := scrape(t, base+"/v1/stats"); code != http.StatusTooManyRequests {
		t.Fatalf("saturated API status = %d, want 429", code)
	}
	// The obs endpoints bypass the shedding middleware: the scrape must
	// succeed while the API proper is refusing traffic.
	code, exposition := scrape(t, base+obs.PathMetrics)
	if code != http.StatusOK {
		t.Fatalf("/metrics status under load shedding = %d, want 200", code)
	}
	for i := 0; i < cap(srv.sem); i++ {
		<-srv.sem
	}

	if err := obs.ValidateExposition([]byte(exposition)); err != nil {
		t.Fatalf("/metrics exposition invalid: %v\n---\n%s", err, exposition)
	}

	// Every bridged counter agrees with /debug/vars.
	codeVars, varsBody := scrape(t, base+"/debug/vars")
	if codeVars != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", codeVars)
	}
	var vars struct {
		Predsvc struct {
			Paths     int             `json:"paths"`
			Evictions uint64          `json:"evictions"`
			Metrics   MetricsSnapshot `json:"metrics"`
		} `json:"predsvc"`
	}
	if err := json.Unmarshal([]byte(varsBody), &vars); err != nil {
		t.Fatal(err)
	}
	ms := vars.Predsvc.Metrics
	for _, tc := range []struct {
		sample string
		want   float64
	}{
		{"predsvc_requests_shed_total", float64(ms.RequestsShed)},
		{"predsvc_panics_recovered_total", float64(ms.PanicsRecovered)},
		{"predsvc_observations_total", float64(ms.Observations)},
		{"predsvc_predictions_total", float64(ms.Predictions)},
		{"predsvc_paths", float64(vars.Predsvc.Paths)},
		// The in-memory store keeps everything hot; the tier gauges must
		// say exactly that.
		{"predsvc_store_hot_paths", float64(vars.Predsvc.Paths)},
		{"predsvc_store_cold_paths", 0},
	} {
		if got := sampleValue(t, exposition, tc.sample); got != tc.want {
			t.Errorf("%s = %v, /debug/vars says %v", tc.sample, got, tc.want)
		}
	}
	if shed := sampleValue(t, exposition, "predsvc_requests_shed_total"); shed < 1 {
		t.Errorf("requests_shed_total = %v, want ≥ 1 (one request was shed)", shed)
	}
	if panics := sampleValue(t, exposition, "predsvc_panics_recovered_total"); panics != 1 {
		t.Errorf("panics_recovered_total = %v, want 1", panics)
	}

	// Per-endpoint families, the accuracy gauges and the latency
	// histograms made it out too.
	for _, want := range []string{
		`predsvc_requests_total{endpoint="observe"}`,
		`predsvc_requests_total{endpoint="observe_batch"}`,
		`predsvc_requests_total{endpoint="predict_batch"}`,
		`predsvc_request_duration_seconds_bucket{endpoint="predict",le="+Inf"}`,
		`predsvc_request_duration_seconds_bucket{endpoint="observe_batch",le="+Inf"}`,
		`predsvc_request_duration_seconds_bucket{endpoint="predict_batch",le="+Inf"}`,
		`predsvc_rmsre{predictor="FB"}`,
		"predsvc_lso_shifts",
		"predsvc_store_spills_total",
		"predsvc_store_faults_total",
		"predsvc_uptime_seconds",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, ep := range []string{"observe_batch", "predict_batch"} {
		name := `predsvc_requests_total{endpoint="` + ep + `"}`
		if got := sampleValue(t, exposition, name); got != 1 {
			t.Errorf("%s = %v, want 1 (one batch request was sent)", name, got)
		}
	}

	// The handlers recorded spans, and the trace endpoints serve them.
	spans, _ := o.T().Snapshot()
	var observeSpans int
	for _, sp := range spans {
		if sp.Name == "predsvc.observe" {
			observeSpans++
		}
	}
	if observeSpans == 0 {
		t.Error("no predsvc.observe spans recorded under load")
	}
	if code, body := scrape(t, base+obs.PathTrace); code != http.StatusOK || !strings.Contains(body, "predsvc.predict") {
		t.Errorf("/debug/trace: status %d, predsvc.predict present: %v", code, strings.Contains(body, "predsvc.predict"))
	}
	if code, body := scrape(t, base+obs.PathPprof); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: status %d", code)
	}
}

// TestServerWithoutObs pins the off state: no Config.Obs, no /metrics —
// the daemon's HTTP surface is unchanged.
func TestServerWithoutObs(t *testing.T) {
	srv := NewServer(Config{})
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("/metrics without obs = %d, want 404", rec.Code)
	}
}
