package predsvc

import (
	"container/list"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is the sharded in-memory path → Session map. Paths hash onto a
// power-of-two number of shards; each shard is guarded by its own RWMutex
// and evicts its least-recently-used session when it reaches its share of
// the configured capacity. Sessions serialize their own predictor state,
// so registry locks are held only for map/recency bookkeeping, never
// across prediction work.
type Registry struct {
	cfg       Config
	shards    []*shard
	mask      uint64
	evictions atomic.Uint64
}

type shard struct {
	mu       sync.RWMutex
	capacity int
	elems    map[string]*list.Element // path → element in lru
	lru      *list.List               // front = most recently used
}

// NewRegistry builds a registry from cfg (zero value: defaults).
func NewRegistry(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	perShard := cfg.Capacity / cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	r := &Registry{cfg: cfg, mask: uint64(cfg.Shards - 1)}
	r.shards = make([]*shard, cfg.Shards)
	for i := range r.shards {
		r.shards[i] = &shard{
			capacity: perShard,
			elems:    make(map[string]*list.Element),
			lru:      list.New(),
		}
	}
	return r
}

// Config returns the effective (defaulted) configuration.
func (r *Registry) Config() Config { return r.cfg }

// Shards returns the shard count (a power of two).
func (r *Registry) Shards() int { return len(r.shards) }

// Capacity returns the registry-wide session capacity actually enforced
// (per-shard capacity × shard count).
func (r *Registry) Capacity() int { return r.shards[0].capacity * len(r.shards) }

func (r *Registry) shardFor(path string) *shard {
	h := fnv.New64a()
	h.Write([]byte(path))
	return r.shards[h.Sum64()&r.mask]
}

// GetOrCreate returns the session for path, creating it (and possibly
// evicting the shard's least-recently-used session) if absent. The
// returned session is marked most recently used.
func (r *Registry) GetOrCreate(path string) *Session {
	sh := r.shardFor(path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.elems[path]; ok {
		sh.lru.MoveToFront(e)
		return e.Value.(*Session)
	}
	for sh.lru.Len() >= sh.capacity {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.elems, oldest.Value.(*Session).path)
		r.evictions.Add(1)
	}
	s := newSession(path, r.cfg)
	sh.elems[path] = sh.lru.PushFront(s)
	return s
}

// Lookup returns the session for path if present, marking it most
// recently used.
func (r *Registry) Lookup(path string) (*Session, bool) {
	sh := r.shardFor(path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.elems[path]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(e)
	return e.Value.(*Session), true
}

// Peek returns the session for path without touching recency (shared
// lock only) — for stats and snapshots.
func (r *Registry) Peek(path string) (*Session, bool) {
	sh := r.shardFor(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.elems[path]
	if !ok {
		return nil, false
	}
	return e.Value.(*Session), true
}

// Len returns the number of registered paths.
func (r *Registry) Len() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		n += len(sh.elems)
		sh.mu.RUnlock()
	}
	return n
}

// Evictions returns the number of LRU evictions since construction.
func (r *Registry) Evictions() uint64 { return r.evictions.Load() }

// Paths returns all registered path names, sorted.
func (r *Registry) Paths() []string {
	var out []string
	for _, sh := range r.shards {
		sh.mu.RLock()
		for p := range sh.elems {
			out = append(out, p)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// forEachLRU visits every session shard by shard, least recently used
// first within each shard, without touching recency. fn runs outside the
// shard lock's critical path for session state (sessions self-lock).
func (r *Registry) forEachLRU(fn func(*Session)) {
	for _, sh := range r.shards {
		sh.mu.RLock()
		sessions := make([]*Session, 0, sh.lru.Len())
		for e := sh.lru.Back(); e != nil; e = e.Prev() {
			sessions = append(sessions, e.Value.(*Session))
		}
		sh.mu.RUnlock()
		for _, s := range sessions {
			fn(s)
		}
	}
}
