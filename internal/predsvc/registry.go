package predsvc

import (
	"encoding/json"
	"sort"

	"repro/internal/predsvc/store"
)

// Registry is the path → Session map of the service, a thin façade over
// the store.Store interface: all concrete map/LRU/spill machinery lives
// in internal/predsvc/store, and everything above this point — Server,
// snapshots, obs metrics — talks to the interface only.
//
// Two backings ship today: the sharded in-memory MemStore (the default;
// an evicted path loses its session) and the two-tier SpillStore
// (Config.SpillDir; evicted sessions spill to a checksummed disk log and
// fault back in on access, so cold paths survive far beyond Capacity).
type Registry struct {
	cfg Config
	st  store.Store
}

// NewRegistry builds an in-memory registry from cfg (zero value:
// defaults). cfg.SpillDir is ignored here — use OpenRegistry for a
// registry that may need disk resources.
func NewRegistry(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	return &Registry{cfg: cfg, st: store.NewMem(memConfig(cfg))}
}

// OpenRegistry builds a registry honoring cfg.SpillDir: empty gives the
// in-memory store, non-empty the disk-spilling two-tier store (whose log
// directory must be creatable — the only error source).
func OpenRegistry(cfg Config) (*Registry, error) {
	cfg = cfg.withDefaults()
	if cfg.SpillDir == "" {
		return &Registry{cfg: cfg, st: store.NewMem(memConfig(cfg))}, nil
	}
	st, err := store.OpenSpill(store.SpillConfig{
		Mem:   memConfig(cfg),
		Dir:   cfg.SpillDir,
		Codec: sessionCodec(cfg),
	})
	if err != nil {
		return nil, err
	}
	return &Registry{cfg: cfg, st: st}, nil
}

// NewRegistryOn wraps an arbitrary store.Store implementation — the seam
// for routed, remote, or test stores. The store's entries must be
// *Session values created by a session factory from the same Config.
func NewRegistryOn(cfg Config, st store.Store) *Registry {
	return &Registry{cfg: cfg.withDefaults(), st: st}
}

// memConfig maps the service Config onto the hot tier's store config,
// with the session constructor as the entry factory.
func memConfig(cfg Config) store.MemConfig {
	return store.MemConfig{
		Shards:   cfg.Shards,
		Capacity: cfg.Capacity,
		New:      func(path string) store.Entry { return newSession(path, cfg) },
	}
}

// sessionCodec serializes sessions across the hot/cold boundary as their
// JSON PathSnapshot — the same replayable state the registry snapshot
// persists, with the same documented approximation (EWMA/Holt-Winters
// influence beyond HistoryLimit observations is dropped on fault-in).
func sessionCodec(cfg Config) store.Codec {
	return store.Codec{
		Encode: func(e store.Entry) ([]byte, error) {
			return json.Marshal(e.(*Session).snapshot())
		},
		Decode: func(path string, data []byte) (store.Entry, error) {
			var ps PathSnapshot
			if err := json.Unmarshal(data, &ps); err != nil {
				return nil, err
			}
			s := newSession(path, cfg)
			s.restore(ps)
			return s, nil
		},
	}
}

// Config returns the effective (defaulted) configuration.
func (r *Registry) Config() Config { return r.cfg }

// Store exposes the underlying storage tier.
func (r *Registry) Store() store.Store { return r.st }

// Shards returns the hot tier's shard count (a power of two).
func (r *Registry) Shards() int { return r.st.Shards() }

// Capacity returns the enforced hot-tier session capacity.
func (r *Registry) Capacity() int { return r.st.Capacity() }

// GetOrCreate returns the session for path, creating it (possibly
// evicting — or, on a spill store, demoting — another) if absent. The
// returned session is marked most recently used.
func (r *Registry) GetOrCreate(path string) *Session {
	return r.st.GetOrCreate(path).(*Session)
}

// Lookup returns the session for path if present, marking it most
// recently used (a spill store promotes a cold session back into
// memory).
func (r *Registry) Lookup(path string) (*Session, bool) {
	e, ok := r.st.Lookup(path)
	if !ok {
		return nil, false
	}
	return e.(*Session), true
}

// GetOrCreateBytes is GetOrCreate keyed by a byte-slice view of the
// path — the wire fastpath's entry point. When the store implements
// store.BytesKeyed (both shipped stores do) a hit costs no allocation;
// otherwise the key is cloned and the string method used.
func (r *Registry) GetOrCreateBytes(path []byte) *Session {
	if bk, ok := r.st.(store.BytesKeyed); ok {
		return bk.GetOrCreateBytes(path).(*Session)
	}
	return r.st.GetOrCreate(string(path)).(*Session)
}

// LookupBytes is Lookup keyed by a byte-slice view of the path; see
// GetOrCreateBytes.
func (r *Registry) LookupBytes(path []byte) (*Session, bool) {
	var (
		e  store.Entry
		ok bool
	)
	if bk, bok := r.st.(store.BytesKeyed); bok {
		e, ok = bk.LookupBytes(path)
	} else {
		e, ok = r.st.Lookup(string(path))
	}
	if !ok {
		return nil, false
	}
	return e.(*Session), true
}

// Peek returns the session for path without touching recency — for stats
// and snapshots. On a spill store a cold session is served as a
// transient decoded copy: reads are accurate, mutations are lost.
func (r *Registry) Peek(path string) (*Session, bool) {
	e, ok := r.st.Peek(path)
	if !ok {
		return nil, false
	}
	return e.(*Session), true
}

// Delete removes path's session from every tier, reporting whether it
// was present. Deletion is how shard handoff relinquishes a path that
// now belongs to another node: no evict hook runs, the state is simply
// forgotten here (the importing node owns the authoritative copy).
func (r *Registry) Delete(path string) bool { return r.st.Delete(path) }

// Install replaces path's session with one rebuilt from ps — the import
// side of shard handoff. The previous session (if any) is deleted first;
// restore never merges, so a retried import lands in the same state.
func (r *Registry) Install(ps PathSnapshot) {
	r.st.Delete(ps.Path)
	s := r.st.GetOrCreate(ps.Path).(*Session)
	s.restore(ps)
}

// Len returns the number of registered paths across all tiers.
func (r *Registry) Len() int { return r.st.Len() }

// Evictions returns the number of hot-tier evictions since construction
// (on a spill store each one is a spill, not a loss).
func (r *Registry) Evictions() uint64 { return r.st.Evictions() }

// TierStats reports hot/cold occupancy and spill/fault activity.
func (r *Registry) TierStats() store.TierStats { return r.st.Stats() }

// Recent returns up to n hot-tier sessions, most recently used first.
func (r *Registry) Recent(n int) []*Session {
	entries := r.st.Recent(n)
	out := make([]*Session, len(entries))
	for i, e := range entries {
		out[i] = e.(*Session)
	}
	return out
}

// Paths returns all registered path names, sorted.
func (r *Registry) Paths() []string {
	out := r.st.Paths()
	sort.Strings(out)
	return out
}

// Close releases the store's disk resources (a no-op for the in-memory
// store). The registry must not be used after.
func (r *Registry) Close() error { return r.st.Close() }

// forEachLRU visits every session coldest first (cold tier, then each
// hot shard least recently used first) without touching recency.
// Sessions self-lock; on the in-memory store fn runs outside the shard
// locks.
func (r *Registry) forEachLRU(fn func(*Session)) {
	r.st.Range(func(e store.Entry) bool {
		fn(e.(*Session))
		return true
	})
}
