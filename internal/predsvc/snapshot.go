package predsvc

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/predict"
)

// FBInputsSnapshot is the serialized form of the latest a-priori
// measurements installed on a path.
type FBInputsSnapshot struct {
	RTTSeconds float64 `json:"rtt_s"`
	LossRate   float64 `json:"loss_rate"`
	AvailBwBps float64 `json:"avail_bw_bps"`
}

// FamilySnapshot is one tournament family's serialized state: its
// rolling Eq.-4 error window (which doubles as quantile calibration
// data), plus model state for the families whose memory is not a
// bounded function of the retained history — the regression's decayed
// normal equations and the ECM's conditional histograms.
type FamilySnapshot struct {
	Name       string                   `json:"name"`
	Errors     []float64                `json:"errors,omitempty"`
	Regression *predict.RegressionState `json:"regression,omitempty"`
	ECM        *predict.ECMState        `json:"ecm,omitempty"`
}

// PathSnapshot is one path's replayable state: the retained raw
// observation history (bounded by Config.HistoryLimit), the lifetime
// observation count, the latest FB measurements, and the rolling error
// windows of every predictor (which cannot be rebuilt from history alone —
// FB errors depend on measurements that are not retained per epoch).
//
// Version 2 added Families (the predictor-zoo tournament state) and the
// interval-coverage counters; HBErrors/FBErrors remain the v1-shaped
// mirror of the paper ensemble's windows. A v1 snapshot (no Families)
// restores through the legacy fields; the zoo families then warm up
// from live traffic.
type PathSnapshot struct {
	Path         string            `json:"path"`
	Observations uint64            `json:"observations"`
	History      []float64         `json:"history"`
	FBInputs     *FBInputsSnapshot `json:"fb_inputs,omitempty"`
	// FBAge is how many observations the path had absorbed since the
	// FBInputs measurements were installed — preserved so staleness
	// flagging survives a restart.
	FBAge    uint64      `json:"fb_age,omitempty"`
	HBErrors [][]float64 `json:"hb_errors,omitempty"`
	FBErrors []float64   `json:"fb_errors,omitempty"`

	Families []FamilySnapshot `json:"families,omitempty"`
	// CovIn/CovTotal carry the interval-coverage calibration counters.
	CovIn    uint64 `json:"cov_in,omitempty"`
	CovTotal uint64 `json:"cov_total,omitempty"`
}

// Snapshot is the serialized registry: every session's replayable state,
// shard by shard, least recently used first — so restoring in file order
// into an equally-sharded registry reproduces each shard's recency order.
//
// Restore replays each path's history through a fresh session. Predictors
// whose memory fits in HistoryLimit observations (MA, LSO windows) come
// back exactly; EWMA and Holt-Winters come back with their influence from
// observations older than the retained history dropped, which is the
// documented approximation for this cache-like registry.
type Snapshot struct {
	Version int            `json:"version"`
	Paths   []PathSnapshot `json:"paths"`
}

// snapshotVersion guards the on-disk format. Version 2 (the predictor
// zoo) added per-family tournament state; version-1 files remain
// readable — see PathSnapshot.
const (
	snapshotVersion       = 2
	snapshotVersionLegacy = 1
)

// Snapshot captures the replayable state of every session.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{Version: snapshotVersion}
	r.forEachLRU(func(s *Session) {
		snap.Paths = append(snap.Paths, s.snapshot())
	})
	return snap
}

// Restore replays snap into the registry (intended for a freshly built
// one) and returns the number of paths restored. Paths beyond capacity
// evict exactly as live traffic would.
func (r *Registry) Restore(snap *Snapshot) (int, error) {
	if snap.Version != snapshotVersion && snap.Version != snapshotVersionLegacy {
		return 0, fmt.Errorf("predsvc: snapshot version %d, want %d or %d", snap.Version, snapshotVersionLegacy, snapshotVersion)
	}
	for _, ps := range snap.Paths {
		r.GetOrCreate(ps.Path).restore(ps)
	}
	return len(snap.Paths), nil
}

// ErrCorruptSnapshot tags snapshot data that fails its checksum, does not
// parse, or carries an unknown version — anything a crash mid-write, a
// torn disk, or a foreign file could produce. Callers match it with
// errors.Is to distinguish "quarantine and boot empty" from real I/O
// failures.
var ErrCorruptSnapshot = errors.New("predsvc: corrupt snapshot")

// checksumPrefix separates the JSON body from the integrity trailer.
// json.Marshal output never contains a raw newline, so the last occurrence
// always delimits the trailer.
const checksumPrefix = "\nsha256:"

// EncodeSnapshot serializes snap as JSON followed by a sha256 trailer
// line, so a partially flushed or bit-flipped file is detected at boot
// instead of silently restoring garbage.
func EncodeSnapshot(snap *Snapshot) ([]byte, error) {
	data, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("predsvc: marshal snapshot: %w", err)
	}
	sum := sha256.Sum256(data)
	data = append(data, checksumPrefix...)
	data = append(data, hex.EncodeToString(sum[:])...)
	data = append(data, '\n')
	return data, nil
}

// DecodeSnapshot parses EncodeSnapshot output, verifying the checksum
// trailer when present. Data without a trailer (the pre-checksum format)
// is accepted if it parses as JSON. Corruption of any kind returns an
// error wrapping ErrCorruptSnapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	body := data
	if i := bytes.LastIndex(data, []byte(checksumPrefix)); i >= 0 {
		body = data[:i]
		want := strings.TrimSpace(string(data[i+len(checksumPrefix):]))
		sum := sha256.Sum256(body)
		if want != hex.EncodeToString(sum[:]) {
			return nil, fmt.Errorf("%w: sha256 mismatch", ErrCorruptSnapshot)
		}
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	if snap.Version != snapshotVersion && snap.Version != snapshotVersionLegacy {
		return nil, fmt.Errorf("%w: version %d, want %d or %d", ErrCorruptSnapshot, snap.Version, snapshotVersionLegacy, snapshotVersion)
	}
	return &snap, nil
}

// WriteSnapshotFile atomically writes snap to path, checksummed.
func WriteSnapshotFile(path string, snap *Snapshot) error {
	data, err := EncodeSnapshot(snap)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// writeFileAtomic writes data via a temp file in the destination
// directory, fsyncs it, and atomically renames it over path, then syncs
// the directory — so readers never observe a half-written snapshot and a
// crash right after the rename cannot leave the directory entry pointing
// at unflushed data. A failure at any step leaves the previous snapshot
// untouched (the checksum trailer is the last line of defense, not the
// first).
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".predsvc-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
// Filesystems that refuse to sync directories (some network mounts) are
// tolerated: the rename itself was still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// ReadSnapshotFile loads and verifies a snapshot written by
// WriteSnapshotFile. A missing file surfaces as fs.ErrNotExist; corrupt
// contents wrap ErrCorruptSnapshot.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// Quarantine moves a corrupt snapshot aside to the first free
// "<path>.corrupt-<n>" name, preserving the evidence for post-mortems
// while letting the daemon boot with an empty registry.
func Quarantine(path string) (string, error) {
	for n := 1; ; n++ {
		q := fmt.Sprintf("%s.corrupt-%d", path, n)
		if _, err := os.Lstat(q); err == nil {
			continue
		} else if !errors.Is(err, fs.ErrNotExist) {
			return "", err
		}
		if err := os.Rename(path, q); err != nil {
			return "", err
		}
		return q, nil
	}
}
