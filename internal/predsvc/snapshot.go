package predsvc

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// FBInputsSnapshot is the serialized form of the latest a-priori
// measurements installed on a path.
type FBInputsSnapshot struct {
	RTTSeconds float64 `json:"rtt_s"`
	LossRate   float64 `json:"loss_rate"`
	AvailBwBps float64 `json:"avail_bw_bps"`
}

// PathSnapshot is one path's replayable state: the retained raw
// observation history (bounded by Config.HistoryLimit), the lifetime
// observation count, the latest FB measurements, and the rolling error
// windows of every predictor (which cannot be rebuilt from history alone —
// FB errors depend on measurements that are not retained per epoch).
type PathSnapshot struct {
	Path         string            `json:"path"`
	Observations uint64            `json:"observations"`
	History      []float64         `json:"history"`
	FBInputs     *FBInputsSnapshot `json:"fb_inputs,omitempty"`
	HBErrors     [][]float64       `json:"hb_errors,omitempty"`
	FBErrors     []float64         `json:"fb_errors,omitempty"`
}

// Snapshot is the serialized registry: every session's replayable state,
// shard by shard, least recently used first — so restoring in file order
// into an equally-sharded registry reproduces each shard's recency order.
//
// Restore replays each path's history through a fresh session. Predictors
// whose memory fits in HistoryLimit observations (MA, LSO windows) come
// back exactly; EWMA and Holt-Winters come back with their influence from
// observations older than the retained history dropped, which is the
// documented approximation for this cache-like registry.
type Snapshot struct {
	Version int            `json:"version"`
	Paths   []PathSnapshot `json:"paths"`
}

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// Snapshot captures the replayable state of every session.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{Version: snapshotVersion}
	r.forEachLRU(func(s *Session) {
		snap.Paths = append(snap.Paths, s.snapshot())
	})
	return snap
}

// Restore replays snap into the registry (intended for a freshly built
// one) and returns the number of paths restored. Paths beyond capacity
// evict exactly as live traffic would.
func (r *Registry) Restore(snap *Snapshot) (int, error) {
	if snap.Version != snapshotVersion {
		return 0, fmt.Errorf("predsvc: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	for _, ps := range snap.Paths {
		r.GetOrCreate(ps.Path).restore(ps)
	}
	return len(snap.Paths), nil
}

// WriteSnapshotFile atomically writes snap to path (temp file + rename in
// the destination directory).
func WriteSnapshotFile(path string, snap *Snapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("predsvc: marshal snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".predsvc-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadSnapshotFile loads a snapshot written by WriteSnapshotFile.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("predsvc: parse snapshot %s: %w", path, err)
	}
	return &snap, nil
}
