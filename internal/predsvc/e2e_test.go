package predsvc

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"
)

// startDaemon runs a real Server (own listener, real TCP) and returns its
// base URL plus a shutdown function that asserts a clean exit.
func startDaemon(t *testing.T, cfg Config) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return "http://" + ln.Addr().String(), func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not shut down within 10s")
		}
	}
}

// TestEndToEndDaemonLoad is the short-mode CI gate: boot the daemon on an
// ephemeral port, drive it with the load generator for a couple of
// seconds' worth of requests, and assert the accuracy statistics are
// non-zero end to end.
func TestEndToEndDaemonLoad(t *testing.T) {
	base, stop := startDaemon(t, Config{Shards: 8, Capacity: 256})
	defer stop()

	series := SyntheticSeries(8, 40, 11)
	rep, err := Replay(context.Background(), LoadConfig{BaseURL: base, Workers: 4}, series)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run had %d request errors (of %d)", rep.Errors, rep.Requests)
	}
	if want := uint64(8 * 40 * 3); rep.Requests != want {
		t.Errorf("Requests = %d, want %d (measure+predict+observe per epoch)", rep.Requests, want)
	}
	if rep.Predictions == 0 || rep.RMSRE <= 0 {
		t.Errorf("accuracy stats empty: predictions %d, RMSRE %v", rep.Predictions, rep.RMSRE)
	}
	if rep.Digest == "" {
		t.Error("empty determinism digest")
	}

	// The daemon agrees it served the traffic.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Paths != 8 || st.Metrics.Observations != 8*40 || st.Metrics.Predictions == 0 {
		t.Errorf("daemon stats: paths %d, observations %d, predictions %d",
			st.Paths, st.Metrics.Observations, st.Metrics.Predictions)
	}
}

// TestReplayReservedCharacterPaths replays series whose path names carry
// URL-reserved characters — most importantly '#', which SeriesFromDataset
// puts in every name ("<path>#<trace>") and which http.NewRequest would
// treat as a fragment delimiter without query escaping. Every predict must
// hit the session created by the matching observe/measure: zero request
// errors and every eligible epoch scored.
func TestReplayReservedCharacterPaths(t *testing.T) {
	base, stop := startDaemon(t, Config{Shards: 4, Capacity: 64})
	defer stop()

	names := []string{
		"ma-bdp#1",
		"host-a host-b#0",
		"a&b=c?d#2",
		"100%loss#3",
		"src+dst/π#4",
	}
	gen := SyntheticSeries(len(names), 20, 5)
	series := make([]PathSeries, len(names))
	for i, name := range names {
		series[i] = gen[i]
		series[i].Path = name
	}

	rep, err := Replay(context.Background(), LoadConfig{BaseURL: base, Workers: 3}, series)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("replay with reserved-char paths had %d request errors (of %d): predict must reach the full path name", rep.Errors, rep.Requests)
	}
	// Every epoch has FB inputs, so every epoch's predict should be scored.
	if want := len(names) * 20; rep.Predictions != want {
		t.Errorf("Predictions = %d, want %d", rep.Predictions, want)
	}

	// The daemon must know the paths under their exact names.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Paths != len(names) {
		t.Errorf("daemon registered %d paths, want %d (truncated names would collide or multiply)", st.Paths, len(names))
	}
}

// TestEndToEndDeterministicDigest replays the same trace against two
// fresh daemons with different worker counts; the digests must match —
// byte-identical /v1/predict responses across runs, the ISSUE's
// determinism acceptance criterion, at small scale for the short suite.
func TestEndToEndDeterministicDigest(t *testing.T) {
	series := SyntheticSeries(6, 30, 23)
	digest := func(workers int) string {
		base, stop := startDaemon(t, Config{Shards: 4, Capacity: 64})
		defer stop()
		rep, err := Replay(context.Background(), LoadConfig{BaseURL: base, Workers: workers}, series)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors != 0 {
			t.Fatalf("load run had %d errors", rep.Errors)
		}
		return rep.Digest
	}
	d1 := digest(2)
	d2 := digest(8)
	if d1 != d2 {
		t.Errorf("digests differ across runs/worker counts:\n%s\n%s", d1, d2)
	}
}

// TestSustainedLoad50k is the full-scale acceptance run (skipped in
// -short): ≥50k observe+predict+measure requests against a local daemon
// with zero errors, twice, with byte-identical predict traffic.
func TestSustainedLoad50k(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained 50k-request load run skipped in -short mode")
	}
	series := SyntheticSeries(120, 150, 1) // 120×150×3 = 54k requests/run
	run := func() *LoadReport {
		base, stop := startDaemon(t, Config{})
		defer stop()
		rep, err := Replay(context.Background(), LoadConfig{BaseURL: base, Workers: 16}, series)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1 := run()
	if r1.Errors != 0 {
		t.Fatalf("sustained run had %d errors of %d requests", r1.Errors, r1.Requests)
	}
	if r1.Requests < 50000 {
		t.Fatalf("sustained run made %d requests, want ≥ 50000", r1.Requests)
	}
	if r1.Predictions == 0 || r1.RMSRE <= 0 {
		t.Errorf("accuracy stats empty at scale: %+v", r1)
	}
	t.Logf("sustained: %s", r1)

	r2 := run()
	if r2.Digest != r1.Digest {
		t.Errorf("determinism broken at scale: digests differ\n%s\n%s", r1.Digest, r2.Digest)
	}
}

// TestServeGracefulShutdownMidTraffic cancels the daemon context while a
// replay is in flight; Serve must return cleanly and the replay must
// surface the cancellation, not hang.
func TestServeGracefulShutdownMidTraffic(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	loadCtx, loadCancel := context.WithCancel(context.Background())
	series := SyntheticSeries(4, 5000, 3)
	repc := make(chan error, 1)
	go func() {
		_, err := Replay(loadCtx, LoadConfig{BaseURL: "http://" + ln.Addr().String(), Workers: 4}, series)
		repc <- err
	}()
	time.Sleep(100 * time.Millisecond)
	loadCancel()
	if err := <-repc; err != context.Canceled {
		t.Errorf("replay error = %v, want context.Canceled", err)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v on graceful shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
}
