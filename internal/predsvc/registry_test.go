package predsvc

import (
	"fmt"
	"sync"
	"testing"
)

func TestConfigShardRounding(t *testing.T) {
	cases := []struct{ in, want int }{{0, 16}, {1, 1}, {2, 2}, {3, 4}, {9, 16}, {16, 16}, {17, 32}}
	for _, c := range cases {
		r := NewRegistry(Config{Shards: c.in})
		if got := r.Shards(); got != c.want {
			t.Errorf("Shards %d → %d, want %d", c.in, got, c.want)
		}
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// One shard, capacity 3: recency order is fully observable.
	r := NewRegistry(Config{Shards: 1, Capacity: 3})
	for _, p := range []string{"a", "b", "c"} {
		r.GetOrCreate(p).Observe(1e6)
	}
	// Touch "a" so "b" becomes the least recently used.
	if _, ok := r.Lookup("a"); !ok {
		t.Fatal("a should be present")
	}
	r.GetOrCreate("d") // evicts b
	if _, ok := r.Peek("b"); ok {
		t.Error("b should have been evicted (LRU), but is present")
	}
	for _, p := range []string{"a", "c", "d"} {
		if _, ok := r.Peek(p); !ok {
			t.Errorf("%s should have survived eviction", p)
		}
	}
	if got := r.Evictions(); got != 1 {
		t.Errorf("Evictions = %d, want 1", got)
	}
	// Evicted paths come back as fresh sessions.
	if n := r.GetOrCreate("b").Observe(1e6); n != 1 {
		t.Errorf("recreated session has %d observations, want 1", n)
	}
	if got := r.Evictions(); got != 2 {
		t.Errorf("Evictions = %d, want 2 after re-admitting b", got)
	}
	if got := r.Len(); got != 3 {
		t.Errorf("Len = %d, want 3 (capacity)", got)
	}
}

func TestRegistryCapacityBound(t *testing.T) {
	r := NewRegistry(Config{Shards: 4, Capacity: 8})
	for i := 0; i < 100; i++ {
		r.GetOrCreate(fmt.Sprintf("path-%03d", i))
	}
	if got, bound := r.Len(), r.Capacity(); got > bound {
		t.Errorf("Len = %d exceeds enforced capacity %d", got, bound)
	}
	if r.Evictions() == 0 {
		t.Error("expected evictions after inserting far beyond capacity")
	}
}

// TestRegistryConcurrentHammer drives observe/predict/evict from 16
// goroutines over overlapping paths with a capacity small enough that
// eviction churns constantly. Run under -race (the short suite does), this
// is the data-race acceptance test for the sharded registry.
func TestRegistryConcurrentHammer(t *testing.T) {
	const (
		goroutines = 16
		opsPerG    = 400
		pathSpace  = 32
	)
	r := NewRegistry(Config{Shards: 4, Capacity: 16, ErrorWindow: 8})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				// Overlapping paths: all goroutines share the same space.
				p := fmt.Sprintf("path-%02d", (g*7+i)%pathSpace)
				switch i % 4 {
				case 0, 1:
					r.GetOrCreate(p).Observe(1e6 * float64(1+i%10))
				case 2:
					if s, ok := r.Lookup(p); ok {
						s.Predict()
					}
				default:
					if s, ok := r.Peek(p); ok {
						s.Predict()
					}
					r.Len()
					r.Evictions()
				}
			}
		}(g)
	}
	wg.Wait()
	if got, bound := r.Len(), r.Capacity(); got > bound {
		t.Errorf("Len = %d exceeds capacity %d after hammer", got, bound)
	}
	// The snapshot path must also be safe against concurrent mutation.
	var wg2 sync.WaitGroup
	wg2.Add(2)
	go func() { defer wg2.Done(); r.Snapshot() }()
	go func() {
		defer wg2.Done()
		for i := 0; i < 100; i++ {
			r.GetOrCreate(fmt.Sprintf("path-%02d", i%pathSpace)).Observe(2e6)
		}
	}()
	wg2.Wait()
}
