package predsvc

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// endpoint indexes the served HTTP endpoints for metrics.
type endpoint int

const (
	epObserve endpoint = iota
	epMeasure
	epPredict
	epStats
	epVars
	epObserveBatch
	epPredictBatch
	epSessionsExport
	epSessionsImport
	epSessionsDrop
	epCount
)

var endpointNames = [epCount]string{"observe", "measure", "predict", "stats", "debug_vars", "observe_batch", "predict_batch", "sessions_export", "sessions_import", "sessions_drop"}

// histBuckets is the number of exponential latency buckets: bucket i
// counts requests with latency < 2^i microseconds; the last bucket is a
// catch-all (~8.4 s and beyond).
const histBuckets = 24

// histogram is a lock-free exponential latency histogram.
type histogram struct {
	counts [histBuckets]atomic.Uint64
}

func (h *histogram) record(d time.Duration) {
	us := uint64(d.Microseconds())
	b := bits.Len64(us) // 0 for <1µs, else floor(log2)+1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.counts[b].Add(1)
}

// HistogramSnapshot is the JSON form of a latency histogram: per-bucket
// counts (bucket i = latency < 2^i µs) plus quantile upper bounds.
type HistogramSnapshot struct {
	Counts  []uint64 `json:"counts"`
	Total   uint64   `json:"total"`
	P50Usec uint64   `json:"p50_us"`
	P95Usec uint64   `json:"p95_us"`
	P99Usec uint64   `json:"p99_us"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Counts: make([]uint64, histBuckets)}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Total += s.Counts[i]
	}
	s.P50Usec = s.quantile(0.50)
	s.P95Usec = s.quantile(0.95)
	s.P99Usec = s.quantile(0.99)
	return s
}

// quantile returns the upper bound (in µs) of the bucket containing the
// q-th quantile.
func (s HistogramSnapshot) quantile(q float64) uint64 {
	if s.Total == 0 {
		return 0
	}
	target := uint64(q * float64(s.Total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			return uint64(1) << uint(i)
		}
	}
	return uint64(1) << (histBuckets - 1)
}

// MeanUsec estimates the mean latency in microseconds from the bucket
// midpoints (bucket 0 covers [0,1) µs; bucket i covers [2^(i-1), 2^i) µs).
// It is what `predload -bench` reports as ns/observe.
func (s HistogramSnapshot) MeanUsec() float64 {
	if s.Total == 0 {
		return 0
	}
	var sum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		mid := 0.5
		if i > 0 {
			mid = (float64(uint64(1)<<uint(i-1)) + float64(uint64(1)<<uint(i))) / 2
		}
		sum += mid * float64(c)
	}
	return sum / float64(s.Total)
}

// Metrics holds the service's atomic counters. All fields are safe for
// concurrent update; Snapshot produces a consistent-enough JSON view
// (counters are read individually, not under a global lock).
type Metrics struct {
	requests [epCount]atomic.Uint64
	errors   [epCount]atomic.Uint64
	latency  [epCount]histogram

	observations     atomic.Uint64
	predictions      atomic.Uint64
	snapshotsWritten atomic.Uint64

	// Resilience counters: handler panics converted to 500s, requests
	// shed with 429, invalid (NaN/Inf/negative) inputs rejected with 400,
	// snapshot write failures and backoff retries, and predict responses
	// whose FB forecast was flagged stale.
	panicsRecovered  atomic.Uint64
	requestsShed     atomic.Uint64
	rejectedInputs   atomic.Uint64
	snapshotRetries  atomic.Uint64
	snapshotFailures atomic.Uint64
	stalePredictions atomic.Uint64

	// Handoff counters: sessions streamed out by /v1/sessions/export,
	// applied by /v1/sessions/import, skipped by import's last-writer-wins
	// check (the resident session had at least as many observations — the
	// idempotent-retry path), and deleted by /v1/sessions/drop.
	handoffExported atomic.Uint64
	handoffImported atomic.Uint64
	handoffSkipped  atomic.Uint64
	handoffDropped  atomic.Uint64

	// Tournament selection counters: how many predict responses each
	// family won. familyNames is installed once at server construction
	// (every session runs the same zoo); a bare Metrics without names
	// simply records nothing.
	familyNames      []string
	familySelections [maxFamilies]atomic.Uint64
}

// maxFamilies bounds the tracked tournament entrants (the full zoo is 7:
// MA, EWMA, HW, switcher, FB, regression, ECM).
const maxFamilies = 8

// setFamilyNames installs the zoo's family names. Must be called before
// the server starts handling requests; not safe concurrently with
// recordSelection.
func (m *Metrics) setFamilyNames(names []string) {
	if len(names) > maxFamilies {
		names = names[:maxFamilies]
	}
	m.familyNames = names
}

// recordSelection ticks the winning family's selection counter.
func (m *Metrics) recordSelection(name string) {
	for i, n := range m.familyNames {
		if n == name {
			m.familySelections[i].Add(1)
			return
		}
	}
}

// SelectionCounts returns the per-family selection counters (nil when no
// family names were installed).
func (m *Metrics) SelectionCounts() map[string]uint64 {
	if len(m.familyNames) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(m.familyNames))
	for i, n := range m.familyNames {
		out[n] = m.familySelections[i].Load()
	}
	return out
}

func (m *Metrics) record(ep endpoint, status int, d time.Duration) {
	m.requests[ep].Add(1)
	if status >= 400 {
		m.errors[ep].Add(1)
	}
	m.latency[ep].record(d)
}

// EndpointSnapshot is one endpoint's counters.
type EndpointSnapshot struct {
	Name     string            `json:"name"`
	Requests uint64            `json:"requests"`
	Errors   uint64            `json:"errors"`
	Latency  HistogramSnapshot `json:"latency"`
}

// MetricsSnapshot is the JSON view served by /v1/stats and /debug/vars.
type MetricsSnapshot struct {
	Observations     uint64             `json:"observations"`
	Predictions      uint64             `json:"predictions"`
	SnapshotsWritten uint64             `json:"snapshots_written"`
	PanicsRecovered  uint64             `json:"panics_recovered"`
	RequestsShed     uint64             `json:"requests_shed"`
	RejectedInputs   uint64             `json:"rejected_inputs"`
	SnapshotRetries  uint64             `json:"snapshot_retries"`
	SnapshotFailures uint64             `json:"snapshot_failures"`
	StalePredictions uint64             `json:"stale_predictions"`
	HandoffExported  uint64             `json:"handoff_exported"`
	HandoffImported  uint64             `json:"handoff_imported"`
	HandoffSkipped   uint64             `json:"handoff_skipped"`
	HandoffDropped   uint64             `json:"handoff_dropped"`
	FamilySelections map[string]uint64  `json:"family_selections,omitempty"`
	Endpoints        []EndpointSnapshot `json:"endpoints"`
}

// Snapshot captures the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Observations:     m.observations.Load(),
		Predictions:      m.predictions.Load(),
		SnapshotsWritten: m.snapshotsWritten.Load(),
		PanicsRecovered:  m.panicsRecovered.Load(),
		RequestsShed:     m.requestsShed.Load(),
		RejectedInputs:   m.rejectedInputs.Load(),
		SnapshotRetries:  m.snapshotRetries.Load(),
		SnapshotFailures: m.snapshotFailures.Load(),
		StalePredictions: m.stalePredictions.Load(),
		HandoffExported:  m.handoffExported.Load(),
		HandoffImported:  m.handoffImported.Load(),
		HandoffSkipped:   m.handoffSkipped.Load(),
		HandoffDropped:   m.handoffDropped.Load(),
		FamilySelections: m.SelectionCounts(),
	}
	for ep := endpoint(0); ep < epCount; ep++ {
		s.Endpoints = append(s.Endpoints, EndpointSnapshot{
			Name:     endpointNames[ep],
			Requests: m.requests[ep].Load(),
			Errors:   m.errors[ep].Load(),
			Latency:  m.latency[ep].snapshot(),
		})
	}
	return s
}
