package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// SpillConfig tunes a SpillStore.
type SpillConfig struct {
	// Mem configures the hot tier. Mem.New is required. Mem.OnEvict, when
	// set, is called after the victim has been spilled to disk.
	Mem MemConfig
	// Dir is the directory holding the spill log. Created if absent. The
	// log is truncated on open: it is a cache extension, not a durability
	// mechanism — snapshots remain the restart story.
	Dir string
	// Codec serializes entries across the hot/cold boundary. Required.
	Codec Codec
	// CompactMinBytes is the dead-byte threshold below which the log is
	// never compacted (default 1 MiB). Compaction triggers when dead bytes
	// exceed both this and the live bytes.
	CompactMinBytes int64
}

// SpillStore is the two-tier implementation: a MemStore holds the hot
// set, and evicted entries spill to an append-only log of checksummed
// records, faulting back into the hot tier on access. The cold tier is
// bounded only by disk: one node holds millions of cold paths while RSS
// tracks the hot capacity plus a small per-cold-path index entry.
//
// A single mutex serializes every operation — the spill store trades the
// MemStore's shard concurrency for capacity. The log is rewritten in
// place (compacted) once dead records outweigh live ones.
type SpillStore struct {
	mu    sync.Mutex
	hot   *MemStore
	codec Codec
	dir   string

	f          *os.File
	off        int64
	cold       map[string]recordRef
	liveBytes  int64
	deadBytes  int64
	compactMin int64

	spills, faults, errs uint64
}

// recordRef locates one record in the spill log.
type recordRef struct {
	off     int64
	pathLen int32
	dataLen int32
}

func (r recordRef) size() int64 {
	return recordHeaderLen + int64(r.pathLen) + int64(r.dataLen) + sha256.Size
}

// Record layout: 4-byte big-endian path length, 4-byte big-endian data
// length, path bytes, data bytes, sha256 over path+data. The checksum
// reuses the snapshot-trailer discipline: a torn or bit-flipped record is
// detected on fault-in, never silently restored.
const recordHeaderLen = 8

// spillLogName is the log's file name inside SpillConfig.Dir.
const spillLogName = "spill.log"

// OpenSpill opens a SpillStore in cfg.Dir, truncating any previous log.
func OpenSpill(cfg SpillConfig) (*SpillStore, error) {
	if cfg.Mem.New == nil {
		panic("store: SpillConfig.Mem.New is required")
	}
	if cfg.Codec.Encode == nil || cfg.Codec.Decode == nil {
		panic("store: SpillConfig.Codec is required")
	}
	if cfg.CompactMinBytes <= 0 {
		cfg.CompactMinBytes = 1 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: spill dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(cfg.Dir, spillLogName), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: spill log: %w", err)
	}
	s := &SpillStore{
		codec:      cfg.Codec,
		dir:        cfg.Dir,
		f:          f,
		cold:       make(map[string]recordRef),
		compactMin: cfg.CompactMinBytes,
	}
	mem := cfg.Mem
	userEvict := mem.OnEvict
	mem.OnEvict = func(e Entry) {
		s.spill(e)
		if userEvict != nil {
			userEvict(e)
		}
	}
	s.hot = NewMem(mem)
	return s, nil
}

// spill serializes a hot-tier victim into the log. Called with s.mu held
// (every hot-tier mutation happens under it). An entry that fails to
// encode is dropped and counted — eviction cannot be refused.
func (s *SpillStore) spill(e Entry) {
	path := e.Path()
	data, err := s.codec.Encode(e)
	if err != nil {
		s.errs++
		s.dropCold(path)
		return
	}
	ref := recordRef{off: s.off, pathLen: int32(len(path)), dataLen: int32(len(data))}
	buf := make([]byte, 0, ref.size())
	var hdr [recordHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(ref.pathLen))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(ref.dataLen))
	buf = append(buf, hdr[:]...)
	buf = append(buf, path...)
	buf = append(buf, data...)
	sum := sha256.Sum256(buf[recordHeaderLen:])
	buf = append(buf, sum[:]...)
	if _, err := s.f.WriteAt(buf, s.off); err != nil {
		s.errs++
		s.dropCold(path)
		return
	}
	s.off += ref.size()
	s.dropCold(path) // a stale record for the same path becomes garbage
	s.cold[path] = ref
	s.liveBytes += ref.size()
	s.spills++
	s.maybeCompact()
}

// Interface conformance, checked at compile time.
var (
	_ Store = (*MemStore)(nil)
	_ Store = (*SpillStore)(nil)
)

// dropCold forgets path's cold record, accounting its bytes as dead.
func (s *SpillStore) dropCold(path string) {
	if old, ok := s.cold[path]; ok {
		delete(s.cold, path)
		s.liveBytes -= old.size()
		s.deadBytes += old.size()
	}
}

// readRecord reads and verifies one record, returning the payload.
func (s *SpillStore) readRecord(path string, ref recordRef) ([]byte, error) {
	buf := make([]byte, ref.size()-recordHeaderLen)
	if _, err := s.f.ReadAt(buf, ref.off+recordHeaderLen); err != nil {
		return nil, err
	}
	body := buf[:int(ref.pathLen)+int(ref.dataLen)]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], buf[len(body):]) {
		return nil, fmt.Errorf("store: spill record for %q: sha256 mismatch", path)
	}
	if string(body[:ref.pathLen]) != path {
		return nil, fmt.Errorf("store: spill record for %q: path mismatch", path)
	}
	return body[ref.pathLen:], nil
}

// faultIn decodes path's cold record. promote removes it from the cold
// index (the caller inserts it into the hot tier); a transient read keeps
// the record. Any read/verify/decode failure drops the record and counts
// an error — the entry's state is lost, not silently corrupted.
func (s *SpillStore) faultIn(path string, ref recordRef, promote bool) (Entry, bool) {
	data, err := s.readRecord(path, ref)
	if err == nil {
		var e Entry
		if e, err = s.codec.Decode(path, data); err == nil {
			s.faults++
			if promote {
				s.dropCold(path)
				s.maybeCompact()
			}
			return e, true
		}
	}
	s.errs++
	s.dropCold(path)
	s.maybeCompact()
	return nil, false
}

// GetOrCreate returns the entry for path: hot hit, cold fault-in
// (promoting it back to the hot tier, possibly spilling another entry),
// or a fresh entry.
func (s *SpillStore) GetOrCreate(path string) Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.hot.Lookup(path); ok {
		return e
	}
	if ref, ok := s.cold[path]; ok {
		if e, ok := s.faultIn(path, ref, true); ok {
			s.hot.put(path, e)
			return e
		}
	}
	return s.hot.GetOrCreate(path)
}

// Lookup returns the entry for path if present in either tier, promoting
// a cold entry back to the hot tier.
func (s *SpillStore) Lookup(path string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.hot.Lookup(path); ok {
		return e, true
	}
	if ref, ok := s.cold[path]; ok {
		if e, ok := s.faultIn(path, ref, true); ok {
			s.hot.put(path, e)
			return e, true
		}
	}
	return nil, false
}

// GetOrCreateBytes is the BytesKeyed fastpath: a hot-tier hit costs no
// allocation; the cold and miss paths clone the key (they do I/O or
// construct a session anyway).
func (s *SpillStore) GetOrCreateBytes(path []byte) Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.hot.LookupBytes(path); ok {
		return e
	}
	p := string(path)
	if ref, ok := s.cold[p]; ok {
		if e, ok := s.faultIn(p, ref, true); ok {
			s.hot.put(p, e)
			return e
		}
	}
	return s.hot.GetOrCreate(p)
}

// LookupBytes is the BytesKeyed fastpath: a hot-tier hit costs no
// allocation; a cold promotion clones the key on its way to disk.
func (s *SpillStore) LookupBytes(path []byte) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.hot.LookupBytes(path); ok {
		return e, true
	}
	if ref, ok := s.cold[string(path)]; ok {
		p := string(path)
		if e, ok := s.faultIn(p, ref, true); ok {
			s.hot.put(p, e)
			return e, true
		}
	}
	return nil, false
}

// Peek returns the entry for path without touching recency. A cold entry
// comes back as a transient decoded copy: reads are accurate, mutations
// are lost — for stats and snapshots only.
func (s *SpillStore) Peek(path string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.hot.Peek(path); ok {
		return e, true
	}
	if ref, ok := s.cold[path]; ok {
		return s.faultIn(path, ref, false)
	}
	return nil, false
}

// Delete removes path's entry from whichever tier holds it, reporting
// whether it was present. A hot delete bypasses the spill-on-evict hook
// (the entry is relinquished, not demoted); a cold delete marks the log
// record dead, to be reclaimed by the next compaction.
func (s *SpillStore) Delete(path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hot.Delete(path) {
		// Any stale cold record for the same path is garbage too.
		s.dropCold(path)
		s.maybeCompact()
		return true
	}
	if _, ok := s.cold[path]; ok {
		s.dropCold(path)
		s.maybeCompact()
		return true
	}
	return false
}

// Len returns the number of entries across both tiers.
func (s *SpillStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hot.Len() + len(s.cold)
}

// Capacity returns the hot-tier bound; the cold tier is bounded only by
// disk.
func (s *SpillStore) Capacity() int { return s.hot.Capacity() }

// Shards returns the hot tier's shard count.
func (s *SpillStore) Shards() int { return s.hot.Shards() }

// Evictions returns how many entries the hot tier has evicted — each one
// a spill, not a loss.
func (s *SpillStore) Evictions() uint64 { return s.hot.Evictions() }

// Range visits the cold tier first (sorted by path, decoded transiently)
// and then the hot tier, least recently used first per shard — so a
// snapshot restored in Range order rebuilds the hot set as the most
// recent entries. fn must not call back into the store.
func (s *SpillStore) Range(fn func(Entry) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	coldPaths := make([]string, 0, len(s.cold))
	for p := range s.cold {
		coldPaths = append(coldPaths, p)
	}
	sort.Strings(coldPaths)
	for _, p := range coldPaths {
		data, err := s.readRecord(p, s.cold[p])
		if err != nil {
			s.errs++
			continue
		}
		e, err := s.codec.Decode(p, data)
		if err != nil {
			s.errs++
			continue
		}
		if !fn(e) {
			return
		}
	}
	cont := true
	s.hot.Range(func(e Entry) bool {
		cont = fn(e)
		return cont
	})
}

// Recent returns up to n hot-tier entries, most recently used first.
func (s *SpillStore) Recent(n int) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hot.Recent(n)
}

// Paths returns every stored path name across both tiers.
func (s *SpillStore) Paths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.hot.Paths()
	for p := range s.cold {
		out = append(out, p)
	}
	return out
}

// Stats reports both tiers' occupancy and the log activity counters.
func (s *SpillStore) Stats() TierStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return TierStats{
		HotPaths:  s.hot.Len(),
		ColdPaths: len(s.cold),
		Spills:    s.spills,
		Faults:    s.faults,
		Errors:    s.errs,
	}
}

// maybeCompact rewrites the log without its dead records once they
// outweigh the live ones (and exceed the configured floor) — re-spilled
// and promoted paths leave garbage behind that would otherwise grow the
// append-only log forever.
func (s *SpillStore) maybeCompact() {
	if s.deadBytes < s.compactMin || s.deadBytes <= s.liveBytes {
		return
	}
	tmpName := filepath.Join(s.dir, spillLogName+".compact")
	nf, err := os.OpenFile(tmpName, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return // keep serving from the bloated log
	}
	newCold := make(map[string]recordRef, len(s.cold))
	var off, live int64
	ok := true
	for path, ref := range s.cold {
		rec := make([]byte, ref.size())
		if _, err := s.f.ReadAt(rec, ref.off); err != nil {
			s.errs++
			continue
		}
		sum := sha256.Sum256(rec[recordHeaderLen : recordHeaderLen+int(ref.pathLen)+int(ref.dataLen)])
		if !bytes.Equal(sum[:], rec[len(rec)-sha256.Size:]) {
			s.errs++
			continue
		}
		if _, err := nf.WriteAt(rec, off); err != nil {
			ok = false
			break
		}
		newCold[path] = recordRef{off: off, pathLen: ref.pathLen, dataLen: ref.dataLen}
		off += ref.size()
		live += ref.size()
	}
	if !ok {
		nf.Close()
		os.Remove(tmpName)
		return
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, spillLogName)); err != nil {
		nf.Close()
		os.Remove(tmpName)
		return
	}
	s.f.Close()
	s.f = nf
	s.off = off
	s.cold = newCold
	s.liveBytes = live
	s.deadBytes = 0
}

// Close closes the spill log. The store must not be used after.
func (s *SpillStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
