package store

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// toyEntry is the payload-independent entry the conformance suite runs
// with: a path name plus a self-locked value history, mirroring the shape
// (but none of the weight) of a predictor session.
type toyEntry struct {
	mu   sync.Mutex
	path string
	vals []float64
}

func newToy(path string) Entry { return &toyEntry{path: path} }

func (t *toyEntry) Path() string { return t.path }

func (t *toyEntry) add(v float64) {
	t.mu.Lock()
	t.vals = append(t.vals, v)
	t.mu.Unlock()
}

func (t *toyEntry) sum() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s float64
	for _, v := range t.vals {
		s += v
	}
	return s
}

func toyCodec() Codec {
	return Codec{
		Encode: func(e Entry) ([]byte, error) {
			t := e.(*toyEntry)
			t.mu.Lock()
			defer t.mu.Unlock()
			return json.Marshal(t.vals)
		},
		Decode: func(path string, data []byte) (Entry, error) {
			t := &toyEntry{path: path}
			if err := json.Unmarshal(data, &t.vals); err != nil {
				return nil, err
			}
			return t, nil
		},
	}
}

// factory builds one Store implementation for the shared suite.
// retainsEvicted says whether hot-tier eviction loses the entry (MemStore)
// or demotes it to a cold tier it can come back from (SpillStore).
type factory struct {
	name           string
	retainsEvicted bool
	open           func(t *testing.T, mem MemConfig) Store
}

func factories() []factory {
	return []factory{
		{
			name:           "mem",
			retainsEvicted: false,
			open: func(t *testing.T, mem MemConfig) Store {
				return NewMem(mem)
			},
		},
		{
			name:           "spill",
			retainsEvicted: true,
			open: func(t *testing.T, mem MemConfig) Store {
				s, err := OpenSpill(SpillConfig{Mem: mem, Dir: t.TempDir(), Codec: toyCodec()})
				if err != nil {
					t.Fatalf("OpenSpill: %v", err)
				}
				return s
			},
		},
	}
}

// TestStoreConformance runs the full contract against every Store
// implementation through one shared harness: a behavior added here is a
// behavior every present and future store must honor.
func TestStoreConformance(t *testing.T) {
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Run("CreateLookupPeek", func(t *testing.T) { testCreateLookupPeek(t, f) })
			t.Run("Eviction", func(t *testing.T) { testEviction(t, f) })
			t.Run("RecencyProtects", func(t *testing.T) { testRecencyProtects(t, f) })
			t.Run("Range", func(t *testing.T) { testRange(t, f) })
			t.Run("Recent", func(t *testing.T) { testRecent(t, f) })
			t.Run("Delete", func(t *testing.T) { testDelete(t, f) })
			t.Run("SnapshotRoundTrip", func(t *testing.T) { testSnapshotRoundTrip(t, f) })
			t.Run("LargePayload", func(t *testing.T) { testLargePayload(t, f) })
			t.Run("Hammer", func(t *testing.T) { testHammer(t, f) })
		})
	}
}

func testCreateLookupPeek(t *testing.T, f factory) {
	st := f.open(t, MemConfig{Shards: 4, Capacity: 64, New: newToy})
	defer st.Close()

	if _, ok := st.Lookup("a"); ok {
		t.Fatal("Lookup on empty store reported a hit")
	}
	if _, ok := st.Peek("a"); ok {
		t.Fatal("Peek on empty store reported a hit")
	}
	e := st.GetOrCreate("a")
	if e.Path() != "a" {
		t.Fatalf("created entry path %q, want a", e.Path())
	}
	if again := st.GetOrCreate("a"); again != e {
		t.Fatal("second GetOrCreate returned a different entry")
	}
	got, ok := st.Lookup("a")
	if !ok || got != e {
		t.Fatalf("Lookup(a) = %v, %v; want the created entry", got, ok)
	}
	if got, ok := st.Peek("a"); !ok || got.Path() != "a" {
		t.Fatalf("Peek(a) = %v, %v", got, ok)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	if st.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", st.Shards())
	}
	if st.Capacity() != 64 {
		t.Fatalf("Capacity = %d, want 64", st.Capacity())
	}
}

func testEviction(t *testing.T, f factory) {
	st := f.open(t, MemConfig{Shards: 1, Capacity: 3, New: newToy})
	defer st.Close()

	for _, p := range []string{"a", "b", "c", "d"} {
		st.GetOrCreate(p)
	}
	if got := st.Evictions(); got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	stats := st.Stats()
	if stats.HotPaths != 3 {
		t.Fatalf("HotPaths = %d, want 3", stats.HotPaths)
	}
	_, ok := st.Lookup("a")
	if f.retainsEvicted {
		if !ok {
			t.Fatal("evicted entry lost by a retaining store")
		}
		if st.Len() != 4 {
			t.Fatalf("Len = %d, want 4 across tiers", st.Len())
		}
	} else {
		if ok {
			t.Fatal("evicted entry still reachable in a non-retaining store")
		}
		if st.Len() != 3 {
			t.Fatalf("Len = %d, want 3", st.Len())
		}
	}
}

func testRecencyProtects(t *testing.T, f factory) {
	st := f.open(t, MemConfig{Shards: 1, Capacity: 3, New: newToy})
	defer st.Close()

	st.GetOrCreate("a")
	st.GetOrCreate("b")
	st.GetOrCreate("c")
	// Touch a: b becomes the LRU victim of the next insert.
	if _, ok := st.Lookup("a"); !ok {
		t.Fatal("Lookup(a) missed")
	}
	st.GetOrCreate("d")
	hot := make(map[string]bool)
	for _, e := range st.Recent(10) {
		hot[e.Path()] = true
	}
	if !hot["a"] || hot["b"] {
		t.Fatalf("hot set after touch-then-insert = %v, want a protected and b evicted", hot)
	}
	// Peek must NOT protect: peeking c then inserting evicts c anyway… only
	// when c is the LRU. Rebuild the scenario to pin it down.
	st2 := f.open(t, MemConfig{Shards: 1, Capacity: 2, New: newToy})
	defer st2.Close()
	st2.GetOrCreate("x")
	st2.GetOrCreate("y")
	st2.Peek("x") // no recency touch
	st2.GetOrCreate("z")
	hot2 := make(map[string]bool)
	for _, e := range st2.Recent(10) {
		hot2[e.Path()] = true
	}
	if hot2["x"] {
		t.Fatal("Peek protected x from eviction; it must not touch recency")
	}
}

func testRange(t *testing.T, f factory) {
	st := f.open(t, MemConfig{Shards: 2, Capacity: 4, New: newToy})
	defer st.Close()

	want := map[string]bool{}
	for i := 0; i < 8; i++ { // half spill (or vanish) past capacity 4
		p := fmt.Sprintf("p%02d", i)
		st.GetOrCreate(p)
		want[p] = true
	}
	seen := map[string]int{}
	st.Range(func(e Entry) bool {
		seen[e.Path()]++
		return true
	})
	expect := st.Len()
	if len(seen) != expect {
		t.Fatalf("Range visited %d distinct paths, store holds %d", len(seen), expect)
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("Range visited %s %d times", p, n)
		}
		if !want[p] {
			t.Fatalf("Range visited unknown path %s", p)
		}
	}
	// Early stop.
	calls := 0
	st.Range(func(Entry) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("Range after fn()=false made %d calls, want 1", calls)
	}
	// Paths agrees with Range.
	paths := st.Paths()
	if len(paths) != expect {
		t.Fatalf("Paths returned %d names, want %d", len(paths), expect)
	}
	for _, p := range paths {
		if seen[p] != 1 {
			t.Fatalf("Paths returned %s which Range did not visit", p)
		}
	}
}

func testRecent(t *testing.T, f factory) {
	st := f.open(t, MemConfig{Shards: 4, Capacity: 64, New: newToy})
	defer st.Close()

	for i := 0; i < 10; i++ {
		st.GetOrCreate(fmt.Sprintf("p%d", i))
	}
	// Touch three in a known order; they must lead Recent, newest first.
	st.Lookup("p2")
	st.Lookup("p7")
	st.Lookup("p4")
	recent := st.Recent(3)
	if len(recent) != 3 {
		t.Fatalf("Recent(3) returned %d entries", len(recent))
	}
	got := []string{recent[0].Path(), recent[1].Path(), recent[2].Path()}
	want := []string{"p4", "p7", "p2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Recent order = %v, want %v", got, want)
		}
	}
	if n := len(st.Recent(100)); n != 10 {
		t.Fatalf("Recent(100) returned %d entries, want all 10", n)
	}
	if st.Recent(0) != nil {
		t.Fatal("Recent(0) must return nil")
	}
}

// testDelete pins the handoff contract: Delete removes the entry from
// every tier without running the evict hook, is idempotent (a second
// delete reports absent), and a deleted path comes back fresh.
func testDelete(t *testing.T, f factory) {
	st := f.open(t, MemConfig{Shards: 1, Capacity: 2, New: newToy})
	defer st.Close()

	if st.Delete("nope") {
		t.Fatal("Delete on empty store reported a hit")
	}
	// a, b fill the hot tier; c evicts a (to the cold tier on a retaining
	// store, to oblivion otherwise).
	st.GetOrCreate("a").(*toyEntry).add(1)
	st.GetOrCreate("b").(*toyEntry).add(2)
	st.GetOrCreate("c").(*toyEntry).add(3)

	// Hot delete.
	if !st.Delete("b") {
		t.Fatal("Delete(b) missed a hot entry")
	}
	if _, ok := st.Peek("b"); ok {
		t.Fatal("deleted hot entry still reachable")
	}
	if st.Delete("b") {
		t.Fatal("second Delete(b) reported a hit; must be idempotent")
	}
	// Cold delete (retaining store only; a lossy store already lost a).
	if f.retainsEvicted {
		if !st.Delete("a") {
			t.Fatal("Delete(a) missed a cold entry")
		}
		if _, ok := st.Lookup("a"); ok {
			t.Fatal("deleted cold entry still reachable")
		}
		if st.Delete("a") {
			t.Fatal("second Delete(a) reported a hit; must be idempotent")
		}
	}
	want := 1 // only c remains
	if got := st.Len(); got != want {
		t.Fatalf("Len after deletes = %d, want %d", got, want)
	}
	// Deleted paths come back fresh, not with their old state.
	if e := st.GetOrCreate("b").(*toyEntry); e.sum() != 0 {
		t.Fatalf("recreated b carries old state (sum %v)", e.sum())
	}
	// A delete is not an eviction: the counter must not move.
	if got := st.Evictions(); got != 1 {
		t.Fatalf("Evictions after deletes = %d, want 1 (only the capacity eviction)", got)
	}
}

// testSnapshotRoundTrip proves the snapshot contract end to end through
// the store interface alone: Range + Codec.Encode captures every entry,
// and replaying into a fresh store rebuilds identical values — exactly how
// predsvc snapshots a registry over any Store.
func testSnapshotRoundTrip(t *testing.T, f factory) {
	codec := toyCodec()
	st := f.open(t, MemConfig{Shards: 2, Capacity: 4, New: newToy})
	defer st.Close()

	wantSum := map[string]float64{}
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("p%02d", i)
		e := st.GetOrCreate(p).(*toyEntry)
		for j := 0; j <= i; j++ {
			e.add(float64(j + 1))
		}
		if f.retainsEvicted {
			wantSum[p] = e.sum()
		}
	}
	if !f.retainsEvicted {
		// Only surviving entries round-trip for a lossy store.
		st.Range(func(e Entry) bool {
			wantSum[e.Path()] = e.(*toyEntry).sum()
			return true
		})
	}

	type rec struct {
		path string
		data []byte
	}
	var dump []rec
	st.Range(func(e Entry) bool {
		data, err := codec.Encode(e)
		if err != nil {
			t.Fatalf("Encode(%s): %v", e.Path(), err)
		}
		dump = append(dump, rec{e.Path(), data})
		return true
	})
	if len(dump) != len(wantSum) {
		t.Fatalf("snapshot captured %d entries, want %d", len(dump), len(wantSum))
	}

	fresh := f.open(t, MemConfig{Shards: 2, Capacity: 16, New: newToy})
	defer fresh.Close()
	for _, r := range dump {
		e, err := codec.Decode(r.path, r.data)
		if err != nil {
			t.Fatalf("Decode(%s): %v", r.path, err)
		}
		dst := fresh.GetOrCreate(r.path).(*toyEntry)
		for _, v := range e.(*toyEntry).vals {
			dst.add(v)
		}
	}
	for p, want := range wantSum {
		e, ok := fresh.Peek(p)
		if !ok {
			t.Fatalf("restored store missing %s", p)
		}
		if got := e.(*toyEntry).sum(); got != want {
			t.Fatalf("restored %s sum = %v, want %v", p, got, want)
		}
	}
}

// testLargePayload pushes entries whose encoded form runs to hundreds of
// kilobytes through eviction and fault-back. The predictor-zoo sessions
// serialize far more state than the original ensemble (per-family error
// windows, regression normal equations, ECM histograms), so the spill
// log's record framing must survive payloads well past any small-buffer
// assumption, byte for byte.
func testLargePayload(t *testing.T, f factory) {
	st := f.open(t, MemConfig{Shards: 1, Capacity: 2, New: newToy})
	defer st.Close()

	const vals = 40000 // ≳ 300 KiB of JSON per entry
	want := map[string]float64{}
	for _, p := range []string{"big-a", "big-b", "big-c", "big-d"} {
		e := st.GetOrCreate(p).(*toyEntry)
		for j := 0; j < vals; j++ {
			e.add(float64(j%977) + 0.5)
		}
		want[p] = e.sum()
	}
	// Capacity 2 on one shard: two entries were evicted with their full
	// payloads. A retaining store must fault them back intact.
	for p, sum := range want {
		e, ok := st.Lookup(p)
		if !f.retainsEvicted {
			continue
		}
		if !ok {
			t.Fatalf("large entry %s lost across eviction", p)
		}
		te := e.(*toyEntry)
		if len(te.vals) != vals {
			t.Fatalf("%s came back with %d values, want %d", p, len(te.vals), vals)
		}
		if got := te.sum(); got != sum {
			t.Fatalf("%s sum = %v after fault-back, want %v", p, got, sum)
		}
	}
}

// testHammer runs 16 goroutines of mixed traffic under -race: the store
// must stay consistent (no lost paths among those under capacity, Len
// agreeing with Paths) with zero data races.
func testHammer(t *testing.T, f factory) {
	st := f.open(t, MemConfig{Shards: 4, Capacity: 32, New: newToy})
	defer st.Close()

	const goroutines = 16
	const opsPer = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				p := fmt.Sprintf("path-%d", (g*7+i)%64)
				switch i % 5 {
				case 0, 1:
					st.GetOrCreate(p).(*toyEntry).add(1)
				case 2:
					if e, ok := st.Lookup(p); ok {
						e.(*toyEntry).add(1)
					}
				case 3:
					if e, ok := st.Peek(p); ok {
						_ = e.(*toyEntry).sum()
					}
				case 4:
					switch i % 3 {
					case 0:
						st.Range(func(e Entry) bool { return e.Path() != p })
					case 1:
						st.Recent(8)
					default:
						st.Stats()
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if got, want := st.Len(), len(st.Paths()); got != want {
		t.Fatalf("Len = %d but Paths lists %d", got, want)
	}
	if f.retainsEvicted {
		if st.Len() != 64 {
			t.Fatalf("retaining store Len = %d, want all 64 paths", st.Len())
		}
	} else if st.Len() > 32 {
		t.Fatalf("Len = %d exceeds capacity 32", st.Len())
	}
	if hot := st.Stats().HotPaths; hot > 32 {
		t.Fatalf("HotPaths = %d exceeds capacity 32", hot)
	}
}
