package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openSpillT(t *testing.T, mem MemConfig, compactMin int64) (*SpillStore, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := OpenSpill(SpillConfig{Mem: mem, Dir: dir, Codec: toyCodec(), CompactMinBytes: compactMin})
	if err != nil {
		t.Fatalf("OpenSpill: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, dir
}

// TestSpillHoldsManyPathsBoundedHot is the capacity claim behind the
// two-tier design: 100k paths through a 256-entry hot tier, every one of
// them still reachable, with the resident hot set never exceeding its
// bound — memory tracks the hot capacity, not the path count.
func TestSpillHoldsManyPathsBoundedHot(t *testing.T) {
	const paths = 100_000
	const hotCap = 256
	s, _ := openSpillT(t, MemConfig{Shards: 4, Capacity: hotCap, New: newToy}, 0)

	for i := 0; i < paths; i++ {
		e := s.GetOrCreate(fmt.Sprintf("path-%06d", i)).(*toyEntry)
		e.add(float64(i))
	}
	if got := s.Len(); got != paths {
		t.Fatalf("Len = %d, want %d", got, paths)
	}
	st := s.Stats()
	if st.HotPaths > hotCap {
		t.Fatalf("HotPaths = %d exceeds hot capacity %d", st.HotPaths, hotCap)
	}
	if st.ColdPaths < paths-hotCap {
		t.Fatalf("ColdPaths = %d, want ≥ %d", st.ColdPaths, paths-hotCap)
	}
	if st.Errors != 0 {
		t.Fatalf("Errors = %d, want 0", st.Errors)
	}
	// Old cold paths fault back with their state intact.
	for _, i := range []int{0, 1, 137, 5_000, 50_000, paths - 1} {
		p := fmt.Sprintf("path-%06d", i)
		e, ok := s.Lookup(p)
		if !ok {
			t.Fatalf("Lookup(%s) missed", p)
		}
		if got := e.(*toyEntry).sum(); got != float64(i) {
			t.Fatalf("%s faulted back with sum %v, want %v", p, got, float64(i))
		}
	}
	if s.Stats().Faults == 0 {
		t.Fatal("no faults counted despite cold lookups")
	}
}

// TestSpillFaultPreservesState: evict → fault-in must round-trip the
// entry's state through the codec.
func TestSpillFaultPreservesState(t *testing.T) {
	s, _ := openSpillT(t, MemConfig{Shards: 1, Capacity: 1, New: newToy}, 0)

	a := s.GetOrCreate("a").(*toyEntry)
	a.add(3)
	a.add(4)
	s.GetOrCreate("b") // evicts + spills a
	if st := s.Stats(); st.Spills != 1 || st.ColdPaths != 1 {
		t.Fatalf("after eviction: %+v, want 1 spill / 1 cold", st)
	}
	back, ok := s.Lookup("a")
	if !ok {
		t.Fatal("cold entry not found")
	}
	if got := back.(*toyEntry).sum(); got != 7 {
		t.Fatalf("faulted-in sum = %v, want 7", got)
	}
	if st := s.Stats(); st.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", st.Faults)
	}
	// The promotion evicted b; a is hot again and must not re-fault.
	if _, ok := s.Lookup("a"); !ok {
		t.Fatal("promoted entry lost")
	}
	if st := s.Stats(); st.Faults != 1 {
		t.Fatalf("hot lookup faulted: Faults = %d, want still 1", st.Faults)
	}
}

// TestSpillCorruptRecordDropped: a bit-flipped record must fail its
// sha256, be dropped with an error counted, and never be served as data.
func TestSpillCorruptRecordDropped(t *testing.T) {
	s, dir := openSpillT(t, MemConfig{Shards: 1, Capacity: 1, New: newToy}, 0)

	a := s.GetOrCreate("aa").(*toyEntry)
	a.add(42)
	s.GetOrCreate("bb") // spills aa at offset 0

	// Flip a byte inside the record payload (past the 8-byte header).
	log := filepath.Join(dir, spillLogName)
	data, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	data[recordHeaderLen+1] ^= 0xff
	if err := os.WriteFile(log, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Lookup("aa"); ok {
		t.Fatal("corrupt record served as a live entry")
	}
	if st := s.Stats(); st.Errors != 1 || st.ColdPaths != 0 {
		t.Fatalf("after corrupt fault-in: %+v, want 1 error / 0 cold", st)
	}
	// The path starts over fresh rather than carrying garbage.
	if got := s.GetOrCreate("aa").(*toyEntry).sum(); got != 0 {
		t.Fatalf("recreated entry sum = %v, want 0 (fresh)", got)
	}
}

// TestSpillCompaction: promotions leave dead records behind; once they
// outweigh live ones the log must be rewritten, shrinking the file while
// preserving every cold entry.
func TestSpillCompaction(t *testing.T) {
	s, _ := openSpillT(t, MemConfig{Shards: 1, Capacity: 1, New: newToy}, 1)

	// A large record for a (spilled, then promoted → dead), a small one
	// for b: dead > live and past the 1-byte floor triggers compaction.
	a := s.GetOrCreate("a").(*toyEntry)
	for i := 0; i < 64; i++ {
		a.add(float64(i))
	}
	s.GetOrCreate("b") // spills big a
	if s.deadBytes != 0 {
		t.Fatalf("deadBytes = %d before any promotion", s.deadBytes)
	}
	if _, ok := s.Lookup("a"); !ok { // promotes a (dead bytes), spills b
		t.Fatal("Lookup(a) missed")
	}
	s.mu.Lock()
	dead, live, off := s.deadBytes, s.liveBytes, s.off
	s.mu.Unlock()
	if dead != 0 {
		t.Fatalf("compaction did not run: deadBytes = %d", dead)
	}
	if off != live {
		t.Fatalf("compacted log offset %d != live bytes %d", off, live)
	}
	// b survived compaction with its record intact.
	if _, ok := s.Lookup("b"); !ok {
		t.Fatal("b lost in compaction")
	}
	if st := s.Stats(); st.Errors != 0 {
		t.Fatalf("Errors = %d after compaction", st.Errors)
	}
}

// TestOpenSpillTruncates: the spill log is a cache extension, not a
// durability mechanism — whatever a previous process left behind is
// discarded on open.
func TestOpenSpillTruncates(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, spillLogName)
	if err := os.WriteFile(log, []byte("stale garbage from a previous run"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSpill(SpillConfig{Mem: MemConfig{New: newToy}, Dir: dir, Codec: toyCodec()})
	if err != nil {
		t.Fatalf("OpenSpill over a stale log: %v", err)
	}
	defer s.Close()
	fi, err := os.Stat(log)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("stale log not truncated: %d bytes", fi.Size())
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d on a fresh store", s.Len())
	}
}
