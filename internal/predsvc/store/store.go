// Package store is the session-storage seam of the prediction service:
// a Store interface over "path → entry" maps with LRU recency semantics,
// plus the two implementations the service ships with — the sharded
// in-memory MemStore (the original registry core) and the two-tier
// SpillStore that evicts cold entries to an append-only checksummed disk
// log and faults them back in on access.
//
// The package is deliberately ignorant of predictor sessions: entries are
// anything with a path name, and the disk tier serializes them through a
// caller-supplied Codec. internal/predsvc wires its *Session in; the
// conformance suite (conformance_test.go) runs against a toy entry type,
// proving the contract is implementation- and payload-independent.
package store

// Entry is one path's stored value. Implementations must be safe for
// concurrent use by their own locking — the store serializes only its own
// map/recency bookkeeping, never entry state.
type Entry interface {
	// Path returns the path name the entry is stored under.
	Path() string
}

// Codec serializes entries for the disk tier. Encode must capture enough
// state for Decode to rebuild a usable entry; the round trip may be
// approximate (predsvc sessions document exactly how), but must be
// deterministic.
type Codec struct {
	Encode func(Entry) ([]byte, error)
	Decode func(path string, data []byte) (Entry, error)
}

// TierStats reports a store's tier occupancy and disk-tier activity.
// MemStore reports everything hot; SpillStore splits hot/cold and counts
// spills (evictions serialized to the log) and faults (log reads that
// rebuilt an entry).
type TierStats struct {
	// HotPaths is the number of entries resident in memory.
	HotPaths int `json:"hot_paths"`
	// ColdPaths is the number of entries resident only in the spill log.
	ColdPaths int `json:"cold_paths"`
	// Spills counts entries written to the spill log on eviction.
	Spills uint64 `json:"spills"`
	// Faults counts spill-log reads that rebuilt an entry (promotions and
	// transient peeks).
	Faults uint64 `json:"faults"`
	// Errors counts spill records that failed their checksum or codec on
	// either side — the entry's state was dropped and recreated fresh.
	Errors uint64 `json:"errors,omitempty"`
}

// Store is the session-storage contract the prediction service builds on.
// All methods are goroutine-safe. Recency: GetOrCreate and Lookup mark
// the entry most recently used; Peek and Range never touch recency.
type Store interface {
	// GetOrCreate returns the entry for path, creating it (possibly
	// evicting another) when absent anywhere in the store.
	GetOrCreate(path string) Entry
	// Lookup returns the entry for path if present, marking it most
	// recently used. A SpillStore promotes a cold entry back to the hot
	// tier here.
	Lookup(path string) (Entry, bool)
	// Peek returns the entry for path without touching recency — for
	// stats and snapshots. A SpillStore serves cold entries as transient
	// decoded copies: reads are accurate, mutations are lost.
	Peek(path string) (Entry, bool)
	// Delete removes path's entry from every tier, reporting whether it
	// was present. A delete is not an eviction: no evict hook runs and no
	// spill happens — the entry is simply forgotten. It is how shard
	// handoff relinquishes ownership of a path that now lives on another
	// node.
	Delete(path string) bool
	// Len returns the number of stored entries across all tiers.
	Len() int
	// Capacity returns the enforced hot-tier entry bound.
	Capacity() int
	// Shards returns the hot tier's shard count (a power of two).
	Shards() int
	// Evictions returns how many entries the hot tier has evicted. For a
	// MemStore an eviction loses the entry; for a SpillStore it spills it.
	Evictions() uint64
	// Range visits every entry, coldest first (cold tier in sorted path
	// order, then each hot shard least recently used first), stopping
	// early when fn returns false. fn must not call back into the store.
	Range(fn func(Entry) bool)
	// Recent returns up to n hot-tier entries, most recently used first.
	// Cold entries are by construction older than every hot entry and are
	// not listed.
	Recent(n int) []Entry
	// Paths returns every stored path name, in no particular order.
	Paths() []string
	// Stats reports tier occupancy and disk activity.
	Stats() TierStats
	// Close releases disk resources. The store must not be used after.
	Close() error
}

// BytesKeyed is the optional fastpath interface for stores that can be
// queried with a byte-slice view of the path, sparing the wire decoder a
// string allocation per request. Semantics match GetOrCreate/Lookup
// exactly (including recency); the key slice is only read during the
// call and is never retained — implementations clone it if they must
// insert. Callers type-assert and fall back to the string methods.
type BytesKeyed interface {
	GetOrCreateBytes(path []byte) Entry
	LookupBytes(path []byte) (Entry, bool)
}

// nextPow2 returns the smallest power of two ≥ n (n ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
