package store

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"
)

// MemConfig tunes a MemStore.
type MemConfig struct {
	// Shards is the number of shards, rounded up to a power of two
	// (default 16). More shards reduce lock contention.
	Shards int
	// Capacity is the maximum number of entries kept store-wide; the
	// least-recently-used entry of a full shard is evicted to admit a new
	// one. Enforced per shard as Capacity/Shards (default 4096, min 1 per
	// shard).
	Capacity int
	// New builds a fresh entry for a path on first access. Required.
	New func(path string) Entry
	// OnEvict, when non-nil, is called with every evicted entry — the
	// evict-notify hook SpillStore builds its disk tier on. It runs with
	// the victim's shard lock held and must not call back into the store.
	OnEvict func(Entry)
}

func (c MemConfig) withDefaults() MemConfig {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	c.Shards = nextPow2(c.Shards)
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	return c
}

// MemStore is the sharded in-memory path → entry map: paths hash onto a
// power-of-two number of shards, each guarded by its own RWMutex and
// evicting its least-recently-used entry at capacity. Store locks are
// held only for map/recency bookkeeping, never across entry state.
type MemStore struct {
	cfg       MemConfig
	shards    []*shard
	mask      uint64
	touch     atomic.Uint64 // global recency clock, for Recent
	evictions atomic.Uint64
}

type shard struct {
	mu       sync.RWMutex
	capacity int
	elems    map[string]*list.Element // path → element in lru
	lru      *list.List               // front = most recently used
}

// memNode is the LRU payload: the entry plus its last-touch stamp on the
// store-wide recency clock.
type memNode struct {
	e     Entry
	touch uint64
}

// NewMem builds a MemStore from cfg. cfg.New must be set.
func NewMem(cfg MemConfig) *MemStore {
	cfg = cfg.withDefaults()
	if cfg.New == nil {
		panic("store: MemConfig.New is required")
	}
	perShard := cfg.Capacity / cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	m := &MemStore{cfg: cfg, mask: uint64(cfg.Shards - 1)}
	m.shards = make([]*shard, cfg.Shards)
	for i := range m.shards {
		m.shards[i] = &shard{
			capacity: perShard,
			elems:    make(map[string]*list.Element),
			lru:      list.New(),
		}
	}
	return m
}

// Shards returns the shard count (a power of two).
func (m *MemStore) Shards() int { return len(m.shards) }

// Capacity returns the store-wide entry capacity actually enforced
// (per-shard capacity × shard count).
func (m *MemStore) Capacity() int { return m.shards[0].capacity * len(m.shards) }

// FNV-1a, inlined: hash/fnv's New64a costs a heap allocation per call
// through the hash.Hash64 interface, which the request hot path cannot
// afford. The constants are the standard ones, so shard assignment is
// unchanged from the hash/fnv implementation this replaces.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64aString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnv64aBytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

func (m *MemStore) shardFor(path string) *shard {
	return m.shards[fnv64aString(path)&m.mask]
}

func (m *MemStore) shardForBytes(path []byte) *shard {
	return m.shards[fnv64aBytes(path)&m.mask]
}

// GetOrCreate returns the entry for path, creating it (and possibly
// evicting the shard's least-recently-used entry) if absent. The returned
// entry is marked most recently used.
func (m *MemStore) GetOrCreate(path string) Entry {
	sh := m.shardFor(path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.elems[path]; ok {
		sh.lru.MoveToFront(e)
		n := e.Value.(*memNode)
		n.touch = m.touch.Add(1)
		return n.e
	}
	entry := m.cfg.New(path)
	m.putLocked(sh, path, entry)
	return entry
}

// GetOrCreateBytes is GetOrCreate keyed by a byte-slice view of the
// path, for wire decoders that never materialize a string: a hit costs
// no allocation (the map lookup through string(path) is recognized by
// the compiler), and only the miss path clones the key for insertion.
func (m *MemStore) GetOrCreateBytes(path []byte) Entry {
	sh := m.shardForBytes(path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.elems[string(path)]; ok {
		sh.lru.MoveToFront(e)
		n := e.Value.(*memNode)
		n.touch = m.touch.Add(1)
		return n.e
	}
	key := string(path)
	entry := m.cfg.New(key)
	m.putLocked(sh, key, entry)
	return entry
}

// LookupBytes is Lookup keyed by a byte-slice view of the path; a hit
// costs no allocation.
func (m *MemStore) LookupBytes(path []byte) (Entry, bool) {
	sh := m.shardForBytes(path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.elems[string(path)]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(e)
	n := e.Value.(*memNode)
	n.touch = m.touch.Add(1)
	return n.e, true
}

// put inserts (or replaces) path's entry as most recently used, evicting
// as needed — how SpillStore promotes a faulted-in entry back to the hot
// tier.
func (m *MemStore) put(path string, e Entry) {
	sh := m.shardFor(path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.elems[path]; ok {
		n := old.Value.(*memNode)
		n.e = e
		n.touch = m.touch.Add(1)
		sh.lru.MoveToFront(old)
		return
	}
	m.putLocked(sh, path, e)
}

func (m *MemStore) putLocked(sh *shard, path string, e Entry) {
	for sh.lru.Len() >= sh.capacity {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		victim := oldest.Value.(*memNode).e
		delete(sh.elems, victim.Path())
		m.evictions.Add(1)
		if m.cfg.OnEvict != nil {
			m.cfg.OnEvict(victim)
		}
	}
	sh.elems[path] = sh.lru.PushFront(&memNode{e: e, touch: m.touch.Add(1)})
}

// Lookup returns the entry for path if present, marking it most recently
// used.
func (m *MemStore) Lookup(path string) (Entry, bool) {
	sh := m.shardFor(path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.elems[path]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(e)
	n := e.Value.(*memNode)
	n.touch = m.touch.Add(1)
	return n.e, true
}

// Peek returns the entry for path without touching recency (shared lock
// only) — for stats and snapshots.
func (m *MemStore) Peek(path string) (Entry, bool) {
	sh := m.shardFor(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.elems[path]
	if !ok {
		return nil, false
	}
	return e.Value.(*memNode).e, true
}

// Delete removes path's entry, reporting whether it was present. The
// evict hook does not run: a delete relinquishes the entry (shard
// handoff), it does not demote it.
func (m *MemStore) Delete(path string) bool {
	sh := m.shardFor(path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.elems[path]
	if !ok {
		return false
	}
	sh.lru.Remove(e)
	delete(sh.elems, path)
	return true
}

// Len returns the number of stored entries.
func (m *MemStore) Len() int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.RLock()
		n += len(sh.elems)
		sh.mu.RUnlock()
	}
	return n
}

// Evictions returns the number of LRU evictions since construction.
func (m *MemStore) Evictions() uint64 { return m.evictions.Load() }

// Paths returns all stored path names, in no particular order.
func (m *MemStore) Paths() []string {
	var out []string
	for _, sh := range m.shards {
		sh.mu.RLock()
		for p := range sh.elems {
			out = append(out, p)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Range visits every entry shard by shard, least recently used first
// within each shard, without touching recency, stopping early when fn
// returns false. fn runs outside the shard locks (entries self-lock), so
// a slow visitor never blocks the serving path.
func (m *MemStore) Range(fn func(Entry) bool) {
	for _, sh := range m.shards {
		sh.mu.RLock()
		entries := make([]Entry, 0, sh.lru.Len())
		for e := sh.lru.Back(); e != nil; e = e.Prev() {
			entries = append(entries, e.Value.(*memNode).e)
		}
		sh.mu.RUnlock()
		for _, e := range entries {
			if !fn(e) {
				return
			}
		}
	}
}

// Recent returns up to n entries, most recently used first across all
// shards (merged on the store-wide recency clock).
func (m *MemStore) Recent(n int) []Entry {
	if n <= 0 {
		return nil
	}
	type stamped struct {
		e     Entry
		touch uint64
	}
	var all []stamped
	for _, sh := range m.shards {
		sh.mu.RLock()
		for e := sh.lru.Front(); e != nil; e = e.Next() {
			nd := e.Value.(*memNode)
			all = append(all, stamped{nd.e, nd.touch})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].touch > all[j].touch })
	if len(all) > n {
		all = all[:n]
	}
	out := make([]Entry, len(all))
	for i, s := range all {
		out[i] = s.e
	}
	return out
}

// Stats reports everything hot: a MemStore has no cold tier.
func (m *MemStore) Stats() TierStats {
	return TierStats{HotPaths: m.Len()}
}

// Close is a no-op: a MemStore holds no disk resources.
func (m *MemStore) Close() error { return nil }
