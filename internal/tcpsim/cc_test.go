package tcpsim_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden CC traces")

// TestCCSaturatesIdlePath checks every congestion control fills an idle
// 10 Mbps pipe: the variants differ in *how* they grow, not whether they
// can use available capacity.
func TestCCSaturatesIdlePath(t *testing.T) {
	for _, cc := range []tcpsim.Congestion{tcpsim.CCReno, tcpsim.CCCubic, tcpsim.CCBBR} {
		t.Run(string(cc), func(t *testing.T) {
			eng := sim.NewEngine()
			path := simplePath(eng, 10e6, 0.04, 64*1500)
			rep := iperf.Run(eng, path, 1, iperf.Config{
				Duration: 30,
				TCP:      tcpsim.Config{Congestion: cc},
			})
			t.Logf("%s: %.2f Mbps, %d timeouts", cc, rep.ThroughputBps/1e6, rep.Timeouts)
			if rep.ThroughputBps < 7e6 {
				t.Errorf("%s throughput %.2f Mbps, want > 7 on idle 10 Mbps path", cc, rep.ThroughputBps/1e6)
			}
			if rep.ThroughputBps > 10e6 {
				t.Errorf("%s throughput %.2f Mbps exceeds capacity", cc, rep.ThroughputBps/1e6)
			}
			if rep.CC != cc {
				t.Errorf("report CC = %q, want %q", rep.CC, cc)
			}
		})
	}
}

// TestRwndClampAcrossCCs checks the receiver-limited invariant that makes
// the rwnd link type meaningful: whatever the congestion control, goodput
// cannot exceed rwnd/RTT — the advertised window caps all of them alike.
func TestRwndClampAcrossCCs(t *testing.T) {
	const (
		w   = 16 * 1024
		rtt = 0.08
	)
	ceiling := w * 8 / rtt // ~1.6 Mbps
	for _, cc := range []tcpsim.Congestion{tcpsim.CCReno, tcpsim.CCCubic, tcpsim.CCBBR} {
		t.Run(string(cc), func(t *testing.T) {
			eng := sim.NewEngine()
			path := simplePath(eng, 50e6, rtt, 1<<20)
			rep := iperf.Run(eng, path, 1, iperf.Config{
				Duration: 30,
				TCP:      tcpsim.Config{Congestion: cc, MaxWindowBytes: w},
			})
			t.Logf("%s: %.2f Mbps (ceiling %.2f)", cc, rep.ThroughputBps/1e6, ceiling/1e6)
			if rep.ThroughputBps > ceiling*1.25 {
				t.Errorf("%s goodput %.2f Mbps exceeds rwnd/RTT ceiling %.2f", cc, rep.ThroughputBps/1e6, ceiling/1e6)
			}
			if rep.ThroughputBps < ceiling*0.4 {
				t.Errorf("%s goodput %.2f Mbps far below the rwnd ceiling on a clean path", cc, rep.ThroughputBps/1e6)
			}
		})
	}
}

// TestBBRInflightNearBDP checks the model property on a deep-buffered
// path: BBR keeps inflight near the BDP while Reno fills the buffer —
// the distinction that decouples BBR throughput from loss rate.
func TestBBRInflightNearBDP(t *testing.T) {
	const (
		capBps = 10e6
		rtt    = 0.08
	)
	bdpSegs := capBps * rtt / 8 / 1460 // ≈ 68 segments
	meanPipe := func(cc tcpsim.Congestion) float64 {
		eng := sim.NewEngine()
		// Deep buffer: 4 BDPs at the bottleneck.
		path := simplePath(eng, capBps, rtt, int(4*capBps*rtt/8))
		conn := tcpsim.Dial(eng, path, 1, tcpsim.Config{Congestion: cc, MaxWindowBytes: 4 << 20})
		conn.Sender.Start()
		eng.RunUntil(10) // past startup
		var sum float64
		const n = 200
		for i := 0; i < n; i++ {
			eng.RunUntil(eng.Now() + 0.1)
			sum += float64(conn.Sender.Pipe())
		}
		conn.Stop()
		return sum / n
	}
	bbr := meanPipe(tcpsim.CCBBR)
	reno := meanPipe(tcpsim.CCReno)
	t.Logf("mean pipe: bbr=%.1f reno=%.1f segments (BDP=%.0f)", bbr, reno, bdpSegs)
	if bbr < 0.5*bdpSegs || bbr > 2*bdpSegs {
		t.Errorf("BBR mean inflight %.1f segments, want ≈ BDP %.0f", bbr, bdpSegs)
	}
	if reno < 2*bdpSegs {
		t.Errorf("Reno mean inflight %.1f should overfill the deep buffer (BDP %.0f)", reno, bdpSegs)
	}
}

// TestSenderStats checks the CC-agnostic stats snapshot every congestion
// control must serve: identity, a sane pacing rate, and delivery-rate
// sampling that tracks actual goodput.
func TestSenderStats(t *testing.T) {
	for _, cc := range []tcpsim.Congestion{tcpsim.CCReno, tcpsim.CCCubic, tcpsim.CCBBR} {
		t.Run(string(cc), func(t *testing.T) {
			eng := sim.NewEngine()
			path := lossyPath(eng, 0.005, 3)
			conn := tcpsim.Dial(eng, path, 1, tcpsim.Config{Congestion: cc})
			conn.Sender.Start()
			eng.RunUntil(30)
			ss := conn.Sender.SenderStats()
			goodput := float64(conn.Sender.BytesAcked()) * 8 / 30
			conn.Stop()
			if ss.CC != cc {
				t.Errorf("stats CC = %q, want %q", ss.CC, cc)
			}
			if ss.WindowSegments <= 0 || ss.PacingRateBps <= 0 {
				t.Errorf("window %.1f / pacing %.0f not positive", ss.WindowSegments, ss.PacingRateBps)
			}
			if ss.DeliveryRateBps < goodput*0.1 || ss.DeliveryRateBps > goodput*10 {
				t.Errorf("delivery rate %.0f bps implausible vs goodput %.0f", ss.DeliveryRateBps, goodput)
			}
			if cc != tcpsim.CCBBR && ss.RecoveryEpisodes == 0 {
				t.Errorf("%s saw no recovery episodes on a lossy path", cc)
			}
		})
	}
}

// goldenCCScenarios are the deterministic transfer scenarios pinned by
// golden traces: each new congestion control on the paper's droptail
// regime, plus each new link type. The sampled series — virtual time,
// cumulative acked bytes and segments sent, the window — pins down the
// full closed-loop dynamics: any change to CC arithmetic, loss recovery,
// the rate-schedule transform or queue behavior shifts it.
var goldenCCScenarios = []struct {
	name string
	cfg  tcpsim.Config
	path func(eng *sim.Engine) *netem.Path
}{
	{"reno-droptail", tcpsim.Config{Congestion: tcpsim.CCReno}, goldenDroptail},
	{"cubic-droptail", tcpsim.Config{Congestion: tcpsim.CCCubic}, goldenDroptail},
	{"bbr-droptail", tcpsim.Config{Congestion: tcpsim.CCBBR}, goldenDroptail},
	{"reno-randomdrop", tcpsim.Config{Congestion: tcpsim.CCReno}, func(eng *sim.Engine) *netem.Path {
		return lossyPath(eng, 0.01, 17)
	}},
	{"cubic-cellular", tcpsim.Config{Congestion: tcpsim.CCCubic}, goldenCellular},
	{"bbr-rwnd", tcpsim.Config{Congestion: tcpsim.CCBBR, MaxWindowBytes: 8 * 1024}, func(eng *sim.Engine) *netem.Path {
		return lossyPath(eng, 0.015, 23)
	}},
}

// goldenDroptail is a shallow-buffered bottleneck: loss is congestive,
// produced by the transfer's own queue overflow.
func goldenDroptail(eng *sim.Engine) *netem.Path {
	rng := sim.NewRNG(13)
	return netem.NewPath(eng, rng, netem.PathSpec{
		Name: "droptail",
		Forward: []netem.Hop{
			{CapacityBps: 8e6, PropDelay: 0.02, BufferBytes: 24 * 1500},
		},
		Reverse: []netem.Hop{
			{CapacityBps: 40e6, PropDelay: 0.02, BufferBytes: 1 << 20},
		},
	})
}

// goldenCellular drives the bottleneck through a fixed rate trajectory:
// nominal, a 50% fade, a deep 25% fade, recovery, another dip.
func goldenCellular(eng *sim.Engine) *netem.Path {
	rng := sim.NewRNG(19)
	return netem.NewPath(eng, rng, netem.PathSpec{
		Name: "cellular",
		Forward: []netem.Hop{
			{CapacityBps: 8e6, PropDelay: 0.02, BufferBytes: 60 * 1500,
				Rate: &netem.RateSchedule{Steps: []netem.RateStep{
					{T: 3, Mult: 0.5}, {T: 6, Mult: 0.25}, {T: 9, Mult: 1.0},
					{T: 12, Mult: 0.3}, {T: 15, Mult: 0.75},
				}}},
		},
		Reverse: []netem.Hop{
			{CapacityBps: 40e6, PropDelay: 0.02, BufferBytes: 1 << 20},
		},
	})
}

// goldenCCTrace runs one scenario for 20 virtual seconds and samples the
// transfer state every 250 ms.
func goldenCCTrace(sc struct {
	name string
	cfg  tcpsim.Config
	path func(eng *sim.Engine) *netem.Path
}) string {
	eng := sim.NewEngine()
	conn := tcpsim.Dial(eng, sc.path(eng), 1, sc.cfg)
	conn.Sender.Start()
	var b strings.Builder
	for i := 1; i <= 80; i++ {
		eng.RunUntil(float64(i) * 0.25)
		st := conn.Sender.Stats()
		fmt.Fprintf(&b, "%.2f %d %d %.17g\n",
			eng.Now(), st.BytesAcked, st.SegmentsSent, conn.Sender.Cwnd())
	}
	st := conn.Sender.Stats()
	fmt.Fprintf(&b, "end rtx=%d timeouts=%d events=%d\n", st.Retransmits, st.Timeouts, st.LossEvents)
	conn.Stop()
	return b.String()
}

// TestGoldenCCTraces pins the closed-loop dynamics of each congestion
// control and each new link type to recorded fixtures. Regenerate with
// `go test ./internal/tcpsim -run GoldenCC -update` — only when
// intentionally changing transfer dynamics, which invalidates recorded
// campaign datasets too.
func TestGoldenCCTraces(t *testing.T) {
	for _, sc := range goldenCCScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			got := goldenCCTrace(sc)
			path := filepath.Join("testdata", "golden_cc_"+sc.name+".txt")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden trace (run with -update): %v", err)
			}
			if got != string(want) {
				gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
				n := len(gl)
				if len(wl) < n {
					n = len(wl)
				}
				for i := 0; i < n; i++ {
					if gl[i] != wl[i] {
						t.Fatalf("trace diverges at line %d: got %q, want %q", i+1, gl[i], wl[i])
					}
				}
				t.Fatalf("trace length differs: got %d lines, want %d", len(gl), len(wl))
			}
		})
	}
}
