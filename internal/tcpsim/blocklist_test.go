package tcpsim

import (
	"sort"
	"testing"
	"testing/quick"
)

func blocksEqual(a, b []Block) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBlockListAddMerge(t *testing.T) {
	var l blockList
	l.Add(5, 10)
	l.Add(20, 25)
	l.Add(10, 20) // bridges the gap
	want := []Block{{5, 25}}
	if !blocksEqual(l.Snapshot(), want) {
		t.Errorf("blocks = %v, want %v", l.Snapshot(), want)
	}
}

func TestBlockListAddOverlap(t *testing.T) {
	var l blockList
	l.Add(1, 4)
	l.Add(3, 8)
	l.Add(0, 2)
	want := []Block{{0, 8}}
	if !blocksEqual(l.Snapshot(), want) {
		t.Errorf("blocks = %v, want %v", l.Snapshot(), want)
	}
}

func TestBlockListDisjoint(t *testing.T) {
	var l blockList
	l.Add(10, 12)
	l.Add(1, 3)
	l.Add(5, 7)
	want := []Block{{1, 3}, {5, 7}, {10, 12}}
	if !blocksEqual(l.Snapshot(), want) {
		t.Errorf("blocks = %v, want %v", l.Snapshot(), want)
	}
	if l.Count() != 3 || l.Covered() != 6 {
		t.Errorf("count=%d covered=%d", l.Count(), l.Covered())
	}
}

func TestBlockListContains(t *testing.T) {
	var l blockList
	l.Add(5, 8)
	for seq, want := range map[int64]bool{4: false, 5: true, 7: true, 8: false} {
		if l.Contains(seq) != want {
			t.Errorf("Contains(%d) = %v, want %v", seq, !want, want)
		}
	}
}

func TestBlockListTrimBelow(t *testing.T) {
	var l blockList
	l.Add(1, 5)
	l.Add(8, 12)
	l.TrimBelow(3)
	want := []Block{{3, 5}, {8, 12}}
	if !blocksEqual(l.Snapshot(), want) {
		t.Errorf("after TrimBelow(3): %v, want %v", l.Snapshot(), want)
	}
	l.TrimBelow(20)
	if l.Count() != 0 {
		t.Errorf("TrimBelow(20) left %v", l.Snapshot())
	}
}

func TestBlockListMaxAndFirst(t *testing.T) {
	var l blockList
	if l.Max() != 0 {
		t.Error("empty Max should be 0")
	}
	if _, ok := l.First(); ok {
		t.Error("empty First should report false")
	}
	l.Add(3, 6)
	l.Add(10, 11)
	if l.Max() != 11 {
		t.Errorf("Max = %d, want 11", l.Max())
	}
	if b, _ := l.First(); b != (Block{3, 6}) {
		t.Errorf("First = %v", b)
	}
}

func TestBlockListPopFirstIfStartsAt(t *testing.T) {
	var l blockList
	l.Add(3, 6)
	if _, ok := l.PopFirstIfStartsAt(4); ok {
		t.Error("pop at wrong start should fail")
	}
	b, ok := l.PopFirstIfStartsAt(3)
	if !ok || b != (Block{3, 6}) {
		t.Errorf("pop = %v, %v", b, ok)
	}
	if l.Count() != 0 {
		t.Error("block not removed")
	}
}

func TestBlockListSubtract(t *testing.T) {
	var l blockList
	l.Add(3, 5)
	l.Add(8, 10)
	got := l.Subtract(0, 12)
	want := []Block{{0, 3}, {5, 8}, {10, 12}}
	if !blocksEqual(got, want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
	if got := l.Subtract(3, 5); got != nil {
		t.Errorf("fully covered Subtract = %v, want nil", got)
	}
	if got := l.Subtract(5, 8); !blocksEqual(got, []Block{{5, 8}}) {
		t.Errorf("hole Subtract = %v", got)
	}
}

// TestBlockListMatchesSet cross-checks against a naive set model.
func TestBlockListMatchesSet(t *testing.T) {
	f := func(ops []struct {
		Start uint8
		Len   uint8
	}) bool {
		var l blockList
		set := map[int64]bool{}
		for _, op := range ops {
			s := int64(op.Start)
			e := s + int64(op.Len%16)
			l.Add(s, e)
			for q := s; q < e; q++ {
				set[q] = true
			}
		}
		// Coverage must agree everywhere.
		for q := int64(0); q < 300; q++ {
			if l.Contains(q) != set[q] {
				return false
			}
		}
		// Blocks must be sorted, disjoint, non-adjacent.
		bs := l.Snapshot()
		if !sort.SliceIsSorted(bs, func(i, j int) bool { return bs[i].Start < bs[j].Start }) {
			return false
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].Start <= bs[i-1].End {
				return false
			}
		}
		var covered int64
		for _, b := range bs {
			if b.End <= b.Start {
				return false
			}
			covered += b.Len()
		}
		return covered == int64(len(set))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBlockListSubtractProperty: Subtract returns exactly the uncovered
// portion of the query range.
func TestBlockListSubtractProperty(t *testing.T) {
	f := func(ops []uint8, qs, ql uint8) bool {
		var l blockList
		set := map[int64]bool{}
		for i := 0; i+1 < len(ops); i += 2 {
			s := int64(ops[i])
			e := s + int64(ops[i+1]%10)
			l.Add(s, e)
			for q := s; q < e; q++ {
				set[q] = true
			}
		}
		start := int64(qs)
		end := start + int64(ql)
		out := l.Subtract(start, end)
		uncovered := map[int64]bool{}
		for _, b := range out {
			for q := b.Start; q < b.End; q++ {
				uncovered[q] = true
			}
		}
		for q := start; q < end; q++ {
			if set[q] == uncovered[q] {
				return false // must be exactly complementary within range
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
