package tcpsim

import "math"

// BBR model parameters (after the BBR v1 paper and the Linux
// implementation, simplified to a window-clocked sender: the simulator
// has no pacer, so the pacing-gain cycle is applied to the inflight cap
// directly — inflight ≈ gain × BDP is the invariant either way).
const (
	bbrHighGain         = 2.885 // 2/ln2: doubles delivery per round in startup
	bbrDrainGain        = 1 / bbrHighGain
	bbrMinWindow        = 4.0  // segments; floor in every state
	bbrBtlBwWindowRound = 10   // BtlBw max-filter length, in rounds
	bbrRTpropWindowSec  = 10.0 // RTprop min-filter length, in seconds
	bbrProbeRTTSec      = 0.2  // time spent at the window floor in probeRTT
	bbrFullBwThresh     = 1.25 // startup exits after 3 rounds below this growth
	bbrFullBwRounds     = 3
)

// bbrGainCycle is the probeBW pacing-gain sequence: probe above the
// estimated BDP for one RTprop, drain the queue it built, then cruise.
// Entry always starts at the first cruise phase (index 2) so runs are
// deterministic (Linux randomizes the entry phase instead).
var bbrGainCycle = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

const bbrCycleStart = 2

// bbr states.
const (
	bbrStartup = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

// bbrSample is one timestamped entry of the windowed BtlBw max-filter.
type bbrSample struct {
	v     float64 // delivery rate, segments/sec
	round int64
}

// bbrCC is a model-based BBR-like congestion control: it estimates the
// path's bottleneck bandwidth (windowed max of per-round delivery rate)
// and round-trip propagation delay (windowed min of RTT samples), and
// caps inflight at gain × BtlBw × RTprop. Loss plays no role in the
// window — recovery retransmits, but the model does not collapse — which
// is precisely the property that breaks loss-based formula predictors:
// p no longer determines throughput.
type bbrCC struct {
	state   int
	window  float64
	initial float64 // fallback window before the model has estimates

	// BtlBw: 3-slot windowed max over the last bbrBtlBwWindowRound rounds.
	btlBw [3]bbrSample

	// RTprop: windowed min over bbrRTpropWindowSec.
	rtProp      float64
	rtPropStamp float64

	// Round accounting. A round ends when everything that was in flight
	// at the previous round's end has been delivered.
	delivered     int64   // segments delivered (cum-acked or SACKed)
	roundCount    int64   // completed rounds
	nextRoundAt   int64   // delivered count that closes the current round
	roundDeliv    int64   // delivered at the start of the current round
	roundStamp    float64 // time the current round started
	started       bool
	haveDeliveryS bool // at least one delivery-rate sample taken

	// Startup full-pipe detection.
	fullBw      float64
	fullBwCount int
	filledPipe  bool

	// probeBW gain cycling.
	cycleIdx   int
	cycleStamp float64

	// probeRTT bookkeeping.
	probeRTTDone float64 // time the floor-hold ends
	prevState    int     // state to restore after probeRTT

	// After an RTO the window holds at the floor until cumulative
	// progress resumes (the model's estimates survive; the burst must
	// not).
	timeoutHold bool
}

func newBBR(cfg Config) *bbrCC {
	init := cfg.InitialCwnd
	if init < bbrMinWindow {
		init = bbrMinWindow
	}
	return &bbrCC{
		state:   bbrStartup,
		window:  init,
		initial: init,
		rtProp:  math.Inf(1),
	}
}

func (b *bbrCC) Name() Congestion { return CCBBR }

func (b *bbrCC) Window() float64 {
	if b.timeoutHold {
		return bbrMinWindow
	}
	return b.window
}

// Ssthresh is undefined for a model-based control; +Inf keeps "cwnd <
// ssthresh" style consumers (and the paper's slow-start heuristics) inert.
func (b *bbrCC) Ssthresh() float64 { return math.Inf(1) }

// btlBwEst returns the filtered bottleneck bandwidth in segments/sec.
func (b *bbrCC) btlBwEst() float64 { return b.btlBw[0].v }

// bdp returns the estimated bandwidth-delay product in segments, or 0
// while either estimate is missing.
func (b *bbrCC) bdp() float64 {
	bw := b.btlBwEst()
	if bw == 0 || math.IsInf(b.rtProp, 1) {
		return 0
	}
	return bw * b.rtProp
}

// updateBtlBw inserts a delivery-rate sample into the windowed max-filter
// (the 3-slot running-max of Linux's lib/minmax.c: best, second, third,
// each guarding a subwindow so the max can age out).
func (b *bbrCC) updateBtlBw(v float64, round int64) {
	win := int64(bbrBtlBwWindowRound)
	s := &b.btlBw
	if v >= s[0].v || round-s[2].round > win {
		s[0] = bbrSample{v, round}
		s[1] = s[0]
		s[2] = s[0]
		return
	}
	if v >= s[1].v {
		s[1] = bbrSample{v, round}
		s[2] = s[1]
	} else if v >= s[2].v {
		s[2] = bbrSample{v, round}
	}
	// Age subwindows: when the best is older than the window, promote.
	if round-s[0].round > win {
		s[0] = s[1]
		s[1] = s[2]
		s[2] = bbrSample{v, round}
	} else if s[1].round == s[0].round && round-s[1].round > win/4 {
		s[1] = bbrSample{v, round}
		s[2] = s[1]
	} else if s[2].round == s[1].round && round-s[2].round > win/2 {
		s[2] = bbrSample{v, round}
	}
}

func (b *bbrCC) OnAck(info AckInfo) {
	if info.Acked > 0 {
		b.timeoutHold = false
	}
	newly := info.Acked + info.Sacked
	if newly <= 0 {
		b.advanceState(info)
		return
	}
	b.delivered += newly
	if !b.started {
		b.started = true
		b.roundStamp = info.Now
		b.roundDeliv = b.delivered
		b.nextRoundAt = b.delivered + int64(info.Pipe)
	} else if b.delivered >= b.nextRoundAt {
		// Round closed: sample the delivery rate over the round and feed
		// the max-filter.
		elapsed := info.Now - b.roundStamp
		if elapsed > 0 {
			rate := float64(b.delivered-b.roundDeliv) / elapsed
			b.roundCount++
			b.updateBtlBw(rate, b.roundCount)
			b.haveDeliveryS = true
			b.checkFullPipe()
		}
		b.roundStamp = info.Now
		b.roundDeliv = b.delivered
		b.nextRoundAt = b.delivered + int64(info.Pipe)
	}
	b.advanceState(info)
}

// checkFullPipe runs once per round in startup: three rounds without 25%
// bandwidth growth means the pipe is full.
func (b *bbrCC) checkFullPipe() {
	if b.filledPipe || b.state != bbrStartup {
		return
	}
	if bw := b.btlBwEst(); bw >= b.fullBw*bbrFullBwThresh {
		b.fullBw = bw
		b.fullBwCount = 0
		return
	}
	b.fullBwCount++
	if b.fullBwCount >= bbrFullBwRounds {
		b.filledPipe = true
	}
}

// advanceState runs the probe state machine and recomputes the window.
func (b *bbrCC) advanceState(info AckInfo) {
	now := info.Now
	// RTprop expiry forces a probeRTT dip so queue-inflated samples
	// cannot pin the estimate high forever.
	if b.state != bbrProbeRTT && b.haveDeliveryS &&
		!math.IsInf(b.rtProp, 1) && now-b.rtPropStamp > bbrRTpropWindowSec {
		b.prevState = b.state
		b.state = bbrProbeRTT
		b.probeRTTDone = now + bbrProbeRTTSec
	}

	switch b.state {
	case bbrStartup:
		if b.filledPipe {
			b.state = bbrDrain
		}
	case bbrDrain:
		if float64(info.Pipe) <= b.bdp() {
			b.state = bbrProbeBW
			b.cycleIdx = bbrCycleStart
			b.cycleStamp = now
		}
	case bbrProbeBW:
		// Advance the gain cycle once per RTprop. The 0.75 phase may end
		// early once the probe queue has drained.
		dwell := b.rtProp
		if math.IsInf(dwell, 1) {
			dwell = 0.1
		}
		if now-b.cycleStamp > dwell ||
			(bbrGainCycle[b.cycleIdx] < 1 && float64(info.Pipe) <= b.bdp()) {
			b.cycleIdx = (b.cycleIdx + 1) % len(bbrGainCycle)
			b.cycleStamp = now
		}
	case bbrProbeRTT:
		if now >= b.probeRTTDone {
			b.rtPropStamp = now // fresh lease on the estimate
			if b.filledPipe {
				b.state = bbrProbeBW
				b.cycleIdx = bbrCycleStart
				b.cycleStamp = now
			} else {
				b.state = b.prevState
			}
		}
	}

	b.window = b.computeWindow()
}

func (b *bbrCC) computeWindow() float64 {
	if b.state == bbrProbeRTT {
		return bbrMinWindow
	}
	bdp := b.bdp()
	if bdp == 0 {
		return b.initial
	}
	var gain float64
	switch b.state {
	case bbrStartup:
		gain = bbrHighGain
	case bbrDrain:
		gain = bbrDrainGain
	default:
		gain = bbrGainCycle[b.cycleIdx]
	}
	w := gain * bdp
	if w < bbrMinWindow {
		w = bbrMinWindow
	}
	return w
}

func (b *bbrCC) OnRTT(rtt, now float64) {
	// <= (not <) so a stable path keeps refreshing the lease and never
	// needs a probeRTT dip, exactly as in BBR v1.
	if rtt <= b.rtProp || now-b.rtPropStamp > bbrRTpropWindowSec {
		b.rtProp = rtt
		b.rtPropStamp = now
	}
}

// Loss does not change the model: recovery retransmits under the same
// inflight cap.
func (b *bbrCC) OnEnterRecovery(pipe int, now float64) {}
func (b *bbrCC) OnExitRecovery(now float64)            {}

func (b *bbrCC) OnTimeout(now float64) { b.timeoutHold = true }
