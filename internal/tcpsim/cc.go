package tcpsim

import "math"

// Congestion names a congestion-control algorithm for Config.Congestion.
type Congestion string

// Supported congestion controls.
const (
	// CCReno is the paper-era NewReno/SACK loss response: per-ACK slow
	// start and congestion avoidance, multiplicative decrease by half.
	// The zero value of Config selects it.
	CCReno Congestion = "reno"
	// CCCubic is the RFC 8312 window-growth function: a cubic curve
	// anchored at the window where the last loss happened, with the
	// TCP-friendly region and fast convergence. The default in Linux
	// since 2.6.19 — what most large transfers on today's WANs run.
	CCCubic Congestion = "cubic"
	// CCBBR is a model-based BBR-like sender: it estimates the
	// bottleneck bandwidth (windowed-max delivery rate) and the round
	// trip propagation delay (windowed-min RTT), and caps inflight at a
	// gain-cycled multiple of the estimated BDP instead of reacting to
	// loss. Loss recovery still retransmits — the SACK machinery is the
	// sender's, not the CC's — but the window does not collapse.
	CCBBR Congestion = "bbr"
)

// AckInfo is what the sender tells its congestion control about one
// arriving ACK, after loss detection and pipe accounting ran.
type AckInfo struct {
	Acked      int64   // segments newly cumulatively acknowledged (0 on a pure dup ACK)
	Sacked     int64   // segments newly SACKed by this ACK
	Pipe       int     // conservation-of-packets inflight estimate, after this ACK
	Now        float64 // virtual time
	InRecovery bool    // a loss-recovery episode is in progress
}

// CongestionControl is the seam between the sender's reliability machinery
// (sequencing, SACK scoreboard, RTO, retransmission) and the algorithm
// that decides how much may be outstanding. Implementations must be
// deterministic and allocation-free on every per-ACK method: the sender
// calls them millions of times per simulated transfer.
type CongestionControl interface {
	// Name returns the algorithm identifier.
	Name() Congestion
	// Window returns the current congestion window in segments. The
	// sender sends while its pipe estimate is below it.
	Window() float64
	// Ssthresh returns the slow-start threshold in segments (+Inf for
	// algorithms without one, e.g. BBR).
	Ssthresh() float64
	// OnAck runs once per arriving ACK, after the sender updated its
	// pipe and scoreboard. Growth decisions live here.
	OnAck(info AckInfo)
	// OnRTT delivers a clean (Karn-filtered) RTT sample.
	OnRTT(rtt, now float64)
	// OnEnterRecovery runs when a loss-recovery episode begins (one
	// congestion event).
	OnEnterRecovery(pipe int, now float64)
	// OnExitRecovery runs when the recovery point is cumulatively acked.
	OnExitRecovery(now float64)
	// OnTimeout runs on an RTO expiration, before the go-back-N
	// retransmission restarts.
	OnTimeout(now float64)
}

// NewCongestionControl builds the controller selected by cfg.Congestion
// ("" and CCReno both select Reno). cfg should already be completed by
// Defaults. It panics on an unknown name, which would otherwise
// silently change a campaign's meaning.
func NewCongestionControl(cfg Config) CongestionControl {
	switch cfg.Congestion {
	case "", CCReno:
		return newReno(cfg)
	case CCCubic:
		return newCubic(cfg)
	case CCBBR:
		return newBBR(cfg)
	default:
		panic("tcpsim: unknown congestion control " + string(cfg.Congestion))
	}
}

// renoCC is the classic RFC 2581/5681 response, extracted verbatim from
// the pre-seam Sender so default-config campaigns stay bit-identical:
// cwnd++ per ACK below ssthresh, +1/cwnd above it, halving (floor 2) on a
// congestion event, cwnd=1 on timeout.
type renoCC struct {
	cwnd     float64
	ssthresh float64
}

func newReno(cfg Config) *renoCC {
	return &renoCC{cwnd: cfg.InitialCwnd, ssthresh: cfg.InitialSsthresh}
}

func (r *renoCC) Name() Congestion  { return CCReno }
func (r *renoCC) Window() float64   { return r.cwnd }
func (r *renoCC) Ssthresh() float64 { return r.ssthresh }

func (r *renoCC) OnAck(info AckInfo) {
	if info.Acked == 0 || info.InRecovery {
		return
	}
	// Per-ACK window growth (RFC 2581, no byte counting): with delayed
	// ACKs this is what the throughput formulas' b = 2 models — slow
	// start doubles every two RTTs, congestion avoidance adds half a
	// segment per RTT.
	if r.cwnd < r.ssthresh {
		r.cwnd++
		if r.cwnd > r.ssthresh && !math.IsInf(r.ssthresh, 1) {
			r.cwnd = r.ssthresh
		}
	} else {
		r.cwnd += 1 / r.cwnd
	}
}

func (r *renoCC) OnRTT(rtt, now float64) {}

func (r *renoCC) OnEnterRecovery(pipe int, now float64) {
	half := r.cwnd / 2
	if half < 2 {
		half = 2
	}
	r.ssthresh = half
	r.cwnd = r.ssthresh
}

func (r *renoCC) OnExitRecovery(now float64) { r.cwnd = r.ssthresh }

func (r *renoCC) OnTimeout(now float64) {
	half := r.cwnd / 2
	if half < 2 {
		half = 2
	}
	r.ssthresh = half
	r.cwnd = 1
}
