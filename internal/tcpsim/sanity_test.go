package tcpsim_test

import (
	"testing"

	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

func simplePath(eng *sim.Engine, capBps float64, rttSec float64, bufBytes int) *netem.Path {
	rng := sim.NewRNG(1)
	return netem.NewPath(eng, rng, netem.PathSpec{
		Name: "t",
		Forward: []netem.Hop{
			{CapacityBps: capBps, PropDelay: rttSec / 4, BufferBytes: bufBytes},
			{CapacityBps: capBps * 10, PropDelay: rttSec / 4, BufferBytes: bufBytes * 10},
		},
		Reverse: []netem.Hop{
			{CapacityBps: capBps * 10, PropDelay: rttSec / 4, BufferBytes: bufBytes * 10},
			{CapacityBps: capBps * 10, PropDelay: rttSec / 4, BufferBytes: bufBytes * 10},
		},
	})
}

// TestSaturatesIdlePath checks a congestion-limited transfer on an idle
// path approaches link capacity.
func TestSaturatesIdlePath(t *testing.T) {
	eng := sim.NewEngine()
	path := simplePath(eng, 10e6, 0.04, 64*1500)
	rep := iperf.Run(eng, path, 1, iperf.Config{Duration: 30})
	t.Logf("throughput=%.2f Mbps rtt=%.1f ms loss=%.4f events=%d timeouts=%d rtx=%d segs=%d",
		rep.ThroughputBps/1e6, rep.FlowRTT*1e3, rep.FlowLossRate, rep.LossEvents, rep.Timeouts, rep.SegmentsSent, rep.SegmentsSent)
	if rep.ThroughputBps < 7e6 {
		t.Errorf("throughput %.2f Mbps, want > 7 Mbps on idle 10 Mbps path", rep.ThroughputBps/1e6)
	}
	if rep.ThroughputBps > 10e6 {
		t.Errorf("throughput %.2f Mbps exceeds capacity", rep.ThroughputBps/1e6)
	}
}

// TestWindowLimited checks a small advertised window caps throughput near W/RTT.
func TestWindowLimited(t *testing.T) {
	eng := sim.NewEngine()
	path := simplePath(eng, 10e6, 0.08, 64*1500)
	rep := iperf.Run(eng, path, 1, iperf.Config{
		Duration: 30,
		TCP:      tcpsim.Config{MaxWindowBytes: 20 * 1024},
	})
	expect := 20 * 1024 * 8 / 0.08 // ~2 Mbps
	t.Logf("throughput=%.2f Mbps expect≈%.2f Mbps rtt=%.1f ms loss=%.5f",
		rep.ThroughputBps/1e6, expect/1e6, rep.FlowRTT*1e3, rep.FlowLossRate)
	if rep.ThroughputBps > expect*1.25 || rep.ThroughputBps < expect*0.5 {
		t.Errorf("window-limited throughput %.2f Mbps, want near %.2f", rep.ThroughputBps/1e6, expect/1e6)
	}
	if rep.FlowLossRate > 0.001 {
		t.Errorf("window-limited flow should be nearly lossless, got p=%.4f", rep.FlowLossRate)
	}
}
