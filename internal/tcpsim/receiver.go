package tcpsim

import (
	"repro/internal/netem"
	"repro/internal/sim"
)

// Receiver is the TCP sink: it reassembles the segment stream, generates
// cumulative ACKs (optionally delayed) carrying SACK blocks, and emits
// immediate duplicate ACKs on out-of-order arrivals so the sender's loss
// recovery works.
type Receiver struct {
	cfg  Config
	eng  *sim.Engine
	out  *netem.Endpoint
	flow netem.FlowID

	cumAck     int64 // next expected segment
	ooo        blockList
	unacked    int // in-order segments since last ACK (delayed-ACK counter)
	delayTimer sim.Timer

	// SegmentsReceived counts data segments that arrived (including
	// duplicates of already-delivered segments).
	SegmentsReceived int64
}

// NewReceiver creates a receiver for flow on endpoint ep (the data sink
// side); ACKs are sent back through ep.
func NewReceiver(eng *sim.Engine, ep *netem.Endpoint, flow netem.FlowID, cfg Config) *Receiver {
	cfg = cfg.Defaults()
	r := &Receiver{
		cfg:  cfg,
		eng:  eng,
		out:  ep,
		flow: flow,
	}
	ep.Register(flow, netem.ReceiverFunc(r.onData))
	return r
}

// Stop deregisters the receiver and cancels its delayed-ACK timer.
func (r *Receiver) Stop() {
	r.out.Register(r.flow, nil)
	r.delayTimer.Cancel()
}

// NextExpected returns the next expected segment number.
func (r *Receiver) NextExpected() int64 { return r.cumAck }

// BytesDelivered returns the in-order payload bytes delivered so far.
func (r *Receiver) BytesDelivered() int64 { return r.cumAck * int64(r.cfg.MSS) }

func (r *Receiver) onData(pkt *netem.Packet) {
	if pkt.Kind != netem.KindData {
		r.out.ReleasePacket(pkt)
		return
	}
	r.SegmentsReceived++
	seq := pkt.Seq
	// Terminal consumer: everything needed is in seq; recycle the segment
	// so the ACK (and the sender's next data packet) can reuse it.
	r.out.ReleasePacket(pkt)
	switch {
	case seq == r.cumAck:
		r.cumAck++
		if blk, ok := r.ooo.PopFirstIfStartsAt(r.cumAck); ok {
			r.cumAck = blk.End
		}
		if r.ooo.Count() > 0 {
			// Filling a hole while later holes remain: ACK immediately so
			// recovery keeps its self-clock.
			r.sendAck()
			return
		}
		r.unacked++
		if !r.cfg.DelayedAck || r.unacked >= 2 {
			r.sendAck()
		} else if !r.delayTimer.Pending() {
			r.delayTimer = r.eng.Schedule(r.cfg.DelAckTimeout, r.onDelayTimeout)
		}
	case seq > r.cumAck:
		// Out of order: buffer and send an immediate duplicate ACK with
		// updated SACK information.
		r.ooo.Add(seq, seq+1)
		r.sendAck()
	default:
		// Duplicate of already-delivered data: ACK immediately.
		r.sendAck()
	}
}

func (r *Receiver) onDelayTimeout() {
	if r.unacked > 0 {
		r.sendAck()
	}
}

func (r *Receiver) sendAck() {
	r.unacked = 0
	r.delayTimer.Cancel()
	pkt := r.out.NewPacket()
	pkt.Flow = r.flow
	pkt.Kind = netem.KindAck
	pkt.Size = r.cfg.HeaderBytes
	pkt.Ack = r.cumAck
	if !r.cfg.NoSACK && r.ooo.Count() > 0 {
		pkt.Meta = r.ooo.Snapshot()
	}
	r.out.Send(pkt)
}

// Connection bundles a sender and receiver wired across a path, the common
// case in the testbed and examples.
type Connection struct {
	Sender   *Sender
	Receiver *Receiver
}

// Dial wires a TCP connection over path: data flows A→B, ACKs B→A.
func Dial(eng *sim.Engine, path *netem.Path, flow netem.FlowID, cfg Config) *Connection {
	cfg = cfg.Defaults()
	return &Connection{
		Sender:   NewSender(eng, path.A, flow, cfg),
		Receiver: NewReceiver(eng, path.B, flow, cfg),
	}
}

// DialWithExtraDelay wires a TCP connection over path whose packets incur
// an extra fixed delay in each direction, giving the flow a larger base RTT
// than the path itself. Used for cross-traffic flows with heterogeneous
// RTTs.
func DialWithExtraDelay(eng *sim.Engine, path *netem.Path, flow netem.FlowID, extra float64, cfg Config) *Connection {
	cfg = cfg.Defaults()
	conn := &Connection{
		Sender:   NewSender(eng, path.A, flow, cfg),
		Receiver: NewReceiver(eng, path.B, flow, cfg),
	}
	if extra > 0 {
		// Interpose half the extra delay on each direction's delivery.
		half := extra / 2
		sendH := netem.ReceiverFunc(conn.Sender.onAck)
		recvH := netem.ReceiverFunc(conn.Receiver.onData)
		path.A.Register(flow, netem.NewDelayReceiver(eng, half, sendH))
		path.B.Register(flow, netem.NewDelayReceiver(eng, half, recvH))
	}
	return conn
}

// Stop halts both halves.
func (c *Connection) Stop() {
	c.Sender.Stop()
	c.Receiver.Stop()
}
