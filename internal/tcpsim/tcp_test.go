package tcpsim_test

import (
	"math"
	"testing"

	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// lossyPath builds a path whose bottleneck drops packets at random with
// probability p, for controlled loss-recovery tests.
func lossyPath(eng *sim.Engine, p float64, seed int64) *netem.Path {
	rng := sim.NewRNG(seed)
	return netem.NewPath(eng, rng, netem.PathSpec{
		Name: "lossy",
		Forward: []netem.Hop{
			{CapacityBps: 10e6, PropDelay: 0.02, BufferBytes: 1 << 20, LossProb: p},
		},
		Reverse: []netem.Hop{
			{CapacityBps: 10e6, PropDelay: 0.02, BufferBytes: 1 << 20},
		},
	})
}

func TestTransferCompletesByteLimit(t *testing.T) {
	eng := sim.NewEngine()
	path := simplePath(eng, 10e6, 0.04, 64*1500)
	rep := iperf.RunBytes(eng, path, 1, 1<<20, 300, tcpsim.Config{})
	// The limit rounds up to whole segments.
	if rep.BytesAcked < 1<<20 || rep.BytesAcked >= 1<<20+1460 {
		t.Errorf("acked %d bytes, want 1MB rounded up to a segment", rep.BytesAcked)
	}
	if rep.Duration <= 0 || rep.Duration > 60 {
		t.Errorf("1MB on idle 10Mbps path took %v s", rep.Duration)
	}
}

func TestRecoveryUnderRandomLoss(t *testing.T) {
	eng := sim.NewEngine()
	path := lossyPath(eng, 0.01, 3)
	rep := iperf.Run(eng, path, 1, iperf.Config{Duration: 60})
	t.Logf("p=1%%: throughput=%.2f Mbps rtx=%d timeouts=%d events=%d",
		rep.ThroughputBps/1e6, rep.Retransmits, rep.Timeouts, rep.LossEvents)
	if rep.ThroughputBps < 1e6 {
		t.Errorf("throughput %.2f Mbps too low for 1%% loss, 40ms RTT", rep.ThroughputBps/1e6)
	}
	// SACK recovery should keep timeouts rare relative to loss events.
	if rep.Timeouts > rep.LossEvents/2 {
		t.Errorf("timeouts %d vs loss events %d: recovery not working", rep.Timeouts, rep.LossEvents)
	}
	// Measured loss ratio should be near the configured 1%.
	if rep.FlowLossRate < 0.004 || rep.FlowLossRate > 0.025 {
		t.Errorf("flow loss rate %.4f, want ≈0.01", rep.FlowLossRate)
	}
}

func TestThroughputScalesWithLoss(t *testing.T) {
	// 1/sqrt(p) scaling: quadrupling p should roughly halve throughput.
	run := func(p float64) float64 {
		eng := sim.NewEngine()
		path := lossyPath(eng, p, 7)
		return iperf.Run(eng, path, 1, iperf.Config{Duration: 120}).ThroughputBps
	}
	r1 := run(0.002)
	r2 := run(0.008)
	ratio := r1 / r2
	t.Logf("R(0.2%%)=%.2f Mbps, R(0.8%%)=%.2f Mbps, ratio=%.2f (ideal 2.0)", r1/1e6, r2/1e6, ratio)
	if ratio < 1.4 || ratio > 3.0 {
		t.Errorf("throughput ratio %.2f across 4x loss, want ≈2", ratio)
	}
}

func TestNoSACKStillWorks(t *testing.T) {
	eng := sim.NewEngine()
	path := lossyPath(eng, 0.005, 11)
	rep := iperf.Run(eng, path, 1, iperf.Config{
		Duration: 60,
		TCP:      tcpsim.Config{NoSACK: true},
	})
	t.Logf("NewReno: throughput=%.2f Mbps timeouts=%d", rep.ThroughputBps/1e6, rep.Timeouts)
	if rep.ThroughputBps < 0.5e6 {
		t.Errorf("NewReno throughput %.2f Mbps too low", rep.ThroughputBps/1e6)
	}
}

func TestDelayedAckHalvesAckCount(t *testing.T) {
	run := func(delayed bool) (acks, segs int64) {
		eng := sim.NewEngine()
		path := simplePath(eng, 10e6, 0.04, 64*1500)
		conn := tcpsim.Dial(eng, path, 1, tcpsim.Config{DelayedAck: delayed, MaxWindowBytes: 64 * 1024})
		conn.Sender.Start()
		eng.RunUntil(20)
		st := conn.Sender.Stats()
		conn.Stop()
		return st.AcksReceived, st.SegmentsSent
	}
	acksD, segsD := run(true)
	acksN, segsN := run(false)
	ratioD := float64(acksD) / float64(segsD)
	ratioN := float64(acksN) / float64(segsN)
	t.Logf("delayed: %.2f acks/seg; immediate: %.2f acks/seg", ratioD, ratioN)
	if ratioD > 0.65 {
		t.Errorf("delayed-ACK ratio %.2f, want ≈0.5", ratioD)
	}
	if ratioN < 0.9 {
		t.Errorf("immediate-ACK ratio %.2f, want ≈1", ratioN)
	}
}

func TestRTTSamplesSane(t *testing.T) {
	eng := sim.NewEngine()
	path := simplePath(eng, 10e6, 0.08, 64*1500)
	conn := tcpsim.Dial(eng, path, 1, tcpsim.Config{MaxWindowBytes: 32 * 1024})
	conn.Sender.Start()
	eng.RunUntil(30)
	st := conn.Sender.Stats()
	conn.Stop()
	base := path.BaseRTT(1500)
	if st.RTTSamples == 0 {
		t.Fatal("no RTT samples")
	}
	if st.MinRTT() < base*0.95 {
		t.Errorf("min RTT %.4f below propagation floor %.4f", st.MinRTT(), base)
	}
	// Window-limited flow leaves queues empty: mean should be near base
	// (delack interplay can add a little).
	if st.MeanRTT() > base+0.25 {
		t.Errorf("mean RTT %.4f far above base %.4f for window-limited flow", st.MeanRTT(), base)
	}
}

func TestCwndHalvesOnLossEvent(t *testing.T) {
	eng := sim.NewEngine()
	path := simplePath(eng, 10e6, 0.04, 32*1500)
	conn := tcpsim.Dial(eng, path, 1, tcpsim.Config{})
	conn.Sender.Start()
	// Run until the first loss event has been handled.
	for i := 0; i < 2000 && conn.Sender.Stats().LossEvents == 0; i++ {
		eng.RunUntil(eng.Now() + 0.05)
	}
	st := conn.Sender.Stats()
	if st.LossEvents == 0 {
		t.Fatal("no loss event occurred on a saturating flow with a small buffer")
	}
	if math.IsInf(conn.Sender.Ssthresh(), 1) {
		t.Error("ssthresh not set by the loss event")
	}
	conn.Stop()
}

func TestRTOFiresWhenAllAcksLost(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	// Reverse path drops everything: no ACK ever returns.
	path := netem.NewPath(eng, rng, netem.PathSpec{
		Name: "blackhole",
		Forward: []netem.Hop{
			{CapacityBps: 10e6, PropDelay: 0.02, BufferBytes: 1 << 20},
		},
		Reverse: []netem.Hop{
			{CapacityBps: 10e6, PropDelay: 0.02, BufferBytes: 1 << 20, LossProb: 1.0},
		},
	})
	conn := tcpsim.Dial(eng, path, 1, tcpsim.Config{})
	conn.Sender.Start()
	eng.RunUntil(30)
	st := conn.Sender.Stats()
	if st.Timeouts == 0 {
		t.Error("no RTO despite a dead reverse path")
	}
	if st.BytesAcked != 0 {
		t.Error("bytes acked on a dead path")
	}
	// Exponential backoff: ≤ ~6 timeouts in 30 s (3+... with backoff).
	if st.Timeouts > 8 {
		t.Errorf("%d timeouts in 30 s suggests no backoff", st.Timeouts)
	}
	conn.Stop()
}

func TestStopHaltsTransmission(t *testing.T) {
	eng := sim.NewEngine()
	path := simplePath(eng, 10e6, 0.04, 64*1500)
	conn := tcpsim.Dial(eng, path, 1, tcpsim.Config{})
	conn.Sender.Start()
	eng.RunUntil(5)
	conn.Stop()
	sent := conn.Sender.Stats().SegmentsSent
	eng.RunUntil(10)
	if conn.Sender.Stats().SegmentsSent != sent {
		t.Error("sender transmitted after Stop")
	}
}

func TestWindowLimitedFlowRespectsAdvertisedWindow(t *testing.T) {
	eng := sim.NewEngine()
	path := simplePath(eng, 100e6, 0.1, 1<<20)
	const w = 20 * 1024
	conn := tcpsim.Dial(eng, path, 1, tcpsim.Config{MaxWindowBytes: w})
	maxPipe := 0
	conn.Sender.Start()
	for i := 0; i < 100; i++ {
		eng.RunUntil(eng.Now() + 0.1)
		if p := conn.Sender.Pipe(); p > maxPipe {
			maxPipe = p
		}
	}
	conn.Stop()
	limit := w/1460 + 2 // limited transmit may add 2
	if maxPipe > limit {
		t.Errorf("pipe reached %d segments, advertised window allows %d", maxPipe, limit)
	}
}

func TestExtraDelayConnectionHasLargerRTT(t *testing.T) {
	eng := sim.NewEngine()
	path := simplePath(eng, 10e6, 0.04, 64*1500)
	conn := tcpsim.DialWithExtraDelay(eng, path, 5, 0.1, tcpsim.Config{MaxWindowBytes: 32 * 1024})
	conn.Sender.Start()
	eng.RunUntil(20)
	st := conn.Sender.Stats()
	conn.Stop()
	base := path.BaseRTT(1500)
	if st.MeanRTT() < base+0.08 {
		t.Errorf("mean RTT %.4f, want ≥ base %.4f + 0.1 extra", st.MeanRTT(), base)
	}
}

func TestGoodputMatchesReceiverDelivery(t *testing.T) {
	eng := sim.NewEngine()
	path := lossyPath(eng, 0.01, 5)
	conn := tcpsim.Dial(eng, path, 1, tcpsim.Config{})
	conn.Sender.Start()
	eng.RunUntil(30)
	sndAcked := conn.Sender.BytesAcked()
	rcvDelivered := conn.Receiver.BytesDelivered()
	conn.Stop()
	// The receiver may be slightly ahead (ACKs in flight), never behind.
	if rcvDelivered < sndAcked {
		t.Errorf("receiver delivered %d < sender acked %d", rcvDelivered, sndAcked)
	}
	if float64(rcvDelivered-sndAcked) > float64(rcvDelivered)*0.05 {
		t.Errorf("acked %d lags delivered %d by >5%%", sndAcked, rcvDelivered)
	}
}

func TestStatsRates(t *testing.T) {
	eng := sim.NewEngine()
	path := lossyPath(eng, 0.02, 9)
	rep := iperf.Run(eng, path, 1, iperf.Config{Duration: 40})
	if rep.FlowLossRate <= 0 {
		t.Error("no loss measured on 2%-loss path")
	}
	if rep.FlowEventRate <= 0 || rep.FlowEventRate > rep.FlowLossRate+1e-9 {
		t.Errorf("event rate %.5f should be in (0, loss rate %.5f]", rep.FlowEventRate, rep.FlowLossRate)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := tcpsim.Config{}.Defaults()
	if cfg.MSS != 1460 || cfg.HeaderBytes != 40 || cfg.MaxWindowBytes != 1<<20 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.MinRTO != 1.0 || cfg.MaxRTO != 60.0 || cfg.DelAckTimeout != 0.2 {
		t.Errorf("timer defaults wrong: %+v", cfg)
	}
	if cfg.BPerACK() != 1 {
		t.Error("b should be 1 without delayed ACKs")
	}
	cfg.DelayedAck = true
	if cfg.BPerACK() != 2 {
		t.Error("b should be 2 with delayed ACKs")
	}
}
