package tcpsim

import (
	"math"
	"testing"
)

// ackClock drives a congestion control with one synthetic round of ACKs:
// int(cwnd) ACKs of one segment each at time now, as an ACK-clocked
// sender would deliver them.
func ackClock(cc CongestionControl, now float64) {
	n := int(cc.Window())
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		cc.OnAck(AckInfo{Acked: 1, Pipe: n, Now: now})
	}
}

// TestCubicConcaveConvexAroundWMax checks the defining shape of the CUBIC
// window curve after a loss: fast growth right after the epoch starts
// (concave region), a plateau around the old maximum W_max, then
// accelerating growth past it (convex probing). The TCP-friendly floor
// makes the plateau grow at the AIMD rate rather than stalling entirely,
// so the test compares per-RTT growth across regions instead of demanding
// strict second-derivative signs.
func TestCubicConcaveConvexAroundWMax(t *testing.T) {
	const (
		rtt  = 0.2
		wMax = 100.0
	)
	c := newCubic(Config{}.Defaults())
	c.cwnd = wMax
	c.ssthresh = wMax / 2 // congestion avoidance
	c.OnRTT(rtt, 0)
	c.OnEnterRecovery(int(wMax), 0)
	c.OnExitRecovery(0)
	if got, want := c.cwnd, wMax*cubicBeta; math.Abs(got-want) > 1e-9 {
		t.Fatalf("post-loss cwnd = %.3f, want W_max·β = %.3f", got, want)
	}

	k := math.Cbrt(wMax * (1 - cubicBeta) / cubicC) // ≈ 4.22 s
	growth := func(fromRTT, toRTT int) float64 {
		// Mean cwnd growth per RTT over rounds [fromRTT, toRTT).
		start := c.cwnd
		for r := fromRTT; r < toRTT; r++ {
			now := float64(r) * rtt
			c.OnRTT(rtt, now)
			ackClock(c, now)
		}
		return (c.cwnd - start) / float64(toRTT-fromRTT)
	}

	plateauStart := int(k/rtt) - 2
	convexStart := int(1.7*k/rtt) + 2
	early := growth(1, 9)
	growth(9, plateauStart)
	plateau := growth(plateauStart, plateauStart+5)
	atWMax := c.cwnd
	growth(plateauStart+5, convexStart)
	late := growth(convexStart, convexStart+8)

	t.Logf("growth/RTT: early=%.3f plateau=%.3f late=%.3f; cwnd at plateau=%.1f (W_max=%.0f)", early, plateau, late, atWMax, wMax)
	if early < 2*plateau {
		t.Errorf("concave region growth %.3f/RTT not ≫ plateau %.3f/RTT", early, plateau)
	}
	if late < 2*plateau {
		t.Errorf("convex region growth %.3f/RTT not ≫ plateau %.3f/RTT", late, plateau)
	}
	if atWMax < wMax*0.9 || atWMax > wMax*1.15 {
		t.Errorf("window at t≈K is %.1f, want near W_max=%.0f", atWMax, wMax)
	}
}

// TestCubicFastConvergence checks that a loss below the previous W_max
// remembers a *reduced* maximum — releasing bandwidth when the achievable
// rate is drifting down — while a loss at or above W_max records it as is.
func TestCubicFastConvergence(t *testing.T) {
	c := newCubic(Config{}.Defaults())
	c.cwnd, c.ssthresh = 100, 50
	c.OnEnterRecovery(100, 1)
	if c.wMax != 100 {
		t.Errorf("loss at new high: wMax = %.1f, want 100", c.wMax)
	}
	if c.cwnd != 70 {
		t.Errorf("cwnd after β-decrease = %.1f, want 70", c.cwnd)
	}
	// Second loss before regaining the old maximum.
	c.cwnd = 80
	c.OnEnterRecovery(80, 2)
	want := 80 * (2 - cubicBeta) / 2 // 52
	if math.Abs(c.wMax-want) > 1e-9 {
		t.Errorf("fast convergence: wMax = %.1f, want %.1f", c.wMax, want)
	}
}

// TestCubicSlowStartMatchesReno checks CUBIC defers to standard slow
// start below ssthresh (RFC 8312 §4.8), including the finite-ssthresh
// clamp, so loss-free short transfers are CC-invariant.
func TestCubicSlowStartMatchesReno(t *testing.T) {
	cfg := Config{}.Defaults()
	cu, re := newCubic(cfg), newReno(cfg)
	cu.ssthresh, re.ssthresh = 64, 64
	for i := 0; i < 80; i++ {
		now := float64(i) * 0.01
		cu.OnAck(AckInfo{Acked: 1, Now: now})
		re.OnAck(AckInfo{Acked: 1, Now: now})
		if i < 62 && cu.Window() != re.Window() {
			t.Fatalf("ack %d: cubic window %.2f != reno %.2f in slow start", i, cu.Window(), re.Window())
		}
	}
	// Past ssthresh both continue in congestion avoidance; CUBIC fresh off
	// the clamp starts a plateau epoch, so growth stays small.
	if cu.Window() < 64 || cu.Window() > 66 {
		t.Errorf("cubic window %.2f after slow-start exit, want just above the 64-segment clamp", cu.Window())
	}
}

// TestBBRWindowTracksBDPGain feeds the BBR model a synthetic constant
// delivery rate and RTT and checks the steady-state invariant: the
// inflight cap cycles within the probeBW gain envelope of the true BDP,
// independent of any loss signal.
func TestBBRWindowTracksBDPGain(t *testing.T) {
	const (
		rate = 100.0 // segments/sec
		rtt  = 0.1
		bdp  = rate * rtt // 10 segments
	)
	b := newBBR(Config{}.Defaults())
	var minW, maxW = math.Inf(1), 0.0
	for i := 0; i < 3000; i++ {
		now := float64(i) / rate
		b.OnRTT(rtt, now)
		b.OnAck(AckInfo{Acked: 1, Pipe: int(b.Window()), Now: now})
		if now > 10 { // well past startup/drain
			if w := b.Window(); w < minW {
				minW = w
			} else if w > maxW {
				maxW = w
			}
		}
	}
	if b.state != bbrProbeBW {
		t.Fatalf("state = %d after 30 s of steady delivery, want probeBW", b.state)
	}
	if est := b.btlBwEst(); est < rate*0.8 || est > rate*1.2 {
		t.Errorf("BtlBw estimate %.1f seg/s, want ≈%.0f", est, rate)
	}
	t.Logf("window ∈ [%.1f, %.1f], BDP = %.0f", minW, maxW, bdp)
	// Cruise/probe/drain gains are 1 / 1.25 / 0.75: the whole envelope
	// must stay within those bounds (with sampling slack), and the probe
	// phase must actually lift the window above the BDP.
	if minW < 0.75*bdp*0.9 || maxW > 1.25*bdp*1.1 {
		t.Errorf("window envelope [%.1f, %.1f] outside gain cycle bounds [%.1f, %.1f]",
			minW, maxW, 0.75*bdp, 1.25*bdp)
	}
	if maxW < 1.1*bdp {
		t.Errorf("max window %.1f never probed above BDP %.0f", maxW, bdp)
	}
}

// TestBBRLossAgnostic checks the defining BBR property the ext-cc
// experiment leans on: recovery entry/exit leaves the window untouched,
// and Ssthresh is +Inf so loss-based heuristics see nothing.
func TestBBRLossAgnostic(t *testing.T) {
	b := newBBR(Config{}.Defaults())
	for i := 0; i < 500; i++ {
		now := float64(i) * 0.01
		b.OnRTT(0.1, now)
		b.OnAck(AckInfo{Acked: 1, Pipe: int(b.Window()), Now: now})
	}
	before := b.Window()
	b.OnEnterRecovery(int(before), 5.0)
	if b.Window() != before {
		t.Errorf("window changed on recovery entry: %.1f -> %.1f", before, b.Window())
	}
	b.OnExitRecovery(5.1)
	if b.Window() != before {
		t.Errorf("window changed on recovery exit: %.1f -> %.1f", before, b.Window())
	}
	if !math.IsInf(b.Ssthresh(), 1) {
		t.Errorf("Ssthresh = %.1f, want +Inf", b.Ssthresh())
	}
}

// TestBBRTimeoutHold checks an RTO pins the window at the floor until
// cumulative progress resumes, without discarding the model estimates.
func TestBBRTimeoutHold(t *testing.T) {
	b := newBBR(Config{}.Defaults())
	for i := 0; i < 500; i++ {
		now := float64(i) * 0.01
		b.OnRTT(0.1, now)
		b.OnAck(AckInfo{Acked: 1, Pipe: int(b.Window()), Now: now})
	}
	est := b.btlBwEst()
	b.OnTimeout(5.0)
	if b.Window() != bbrMinWindow {
		t.Errorf("window after RTO = %.1f, want floor %v", b.Window(), bbrMinWindow)
	}
	if b.btlBwEst() != est {
		t.Errorf("RTO discarded the BtlBw estimate")
	}
	// Dup-ACK (no cumulative progress) must not lift the hold...
	b.OnAck(AckInfo{Sacked: 1, Pipe: 4, Now: 5.5})
	if b.Window() != bbrMinWindow {
		t.Error("SACK-only progress lifted the timeout hold")
	}
	// ...but a cumulative ACK does.
	b.OnAck(AckInfo{Acked: 1, Pipe: 4, Now: 6.0})
	if b.Window() == bbrMinWindow && b.bdp() > bbrMinWindow {
		t.Error("cumulative ACK did not lift the timeout hold")
	}
}

// TestNewCongestionControlSelection checks the Config seam maps names to
// implementations and rejects unknown ones loudly.
func TestNewCongestionControlSelection(t *testing.T) {
	for _, tc := range []struct {
		in   Congestion
		want Congestion
	}{
		{"", CCReno},
		{CCReno, CCReno},
		{CCCubic, CCCubic},
		{CCBBR, CCBBR},
	} {
		cfg := Config{Congestion: tc.in}.Defaults()
		if got := NewCongestionControl(cfg).Name(); got != tc.want {
			t.Errorf("Congestion=%q -> %q, want %q", tc.in, got, tc.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown congestion control did not panic")
		}
	}()
	NewCongestionControl(Config{Congestion: "vegas", MSS: 1460, InitialCwnd: 2})
}
