package tcpsim

// Block is a half-open segment range [Start, End).
type Block struct {
	Start, End int64
}

// Len returns the number of segments the block covers.
func (b Block) Len() int64 { return b.End - b.Start }

// blockList is a sorted list of disjoint, non-adjacent half-open ranges.
// It backs both the receiver's out-of-order buffer and the sender's SACK
// scoreboard.
type blockList struct {
	blocks []Block
}

// Add merges [start, end) into the list. It mutates the backing array in
// place — during SACK-heavy recovery Add runs on every ACK against a
// scoreboard of O(cwnd) blocks, and reallocating the slice per call was
// the simulator's single largest allocation site.
func (l *blockList) Add(start, end int64) {
	if end <= start {
		return
	}
	bs := l.blocks
	// Find insertion window: all blocks overlapping or adjacent to
	// [start, end) get coalesced. Binary search for the first candidate.
	lo, hi := 0, len(bs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bs[mid].End < start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	j := i
	for j < len(bs) && bs[j].Start <= end {
		if bs[j].Start < start {
			start = bs[j].Start
		}
		if bs[j].End > end {
			end = bs[j].End
		}
		j++
	}
	if i == j {
		// Nothing to coalesce: open a slot at i.
		bs = append(bs, Block{})
		copy(bs[i+1:], bs[i:])
		bs[i] = Block{start, end}
		l.blocks = bs
		return
	}
	// Collapse blocks[i:j] into the merged range.
	bs[i] = Block{start, end}
	if j > i+1 {
		n := copy(bs[i+1:], bs[j:])
		bs = bs[:i+1+n]
	}
	l.blocks = bs
}

// Contains reports whether seq is covered.
func (l *blockList) Contains(seq int64) bool {
	for _, b := range l.blocks {
		if seq < b.Start {
			return false
		}
		if seq < b.End {
			return true
		}
	}
	return false
}

// TrimBelow removes coverage of all segments below seq.
func (l *blockList) TrimBelow(seq int64) {
	bs := l.blocks
	i := 0
	for i < len(bs) && bs[i].End <= seq {
		i++
	}
	bs = bs[i:]
	if len(bs) > 0 && bs[0].Start < seq {
		bs[0].Start = seq
	}
	l.blocks = bs
}

// Max returns the highest covered segment + 1, or 0 when empty.
func (l *blockList) Max() int64 {
	if len(l.blocks) == 0 {
		return 0
	}
	return l.blocks[len(l.blocks)-1].End
}

// First returns the lowest block and whether one exists.
func (l *blockList) First() (Block, bool) {
	if len(l.blocks) == 0 {
		return Block{}, false
	}
	return l.blocks[0], true
}

// PopFirstIfStartsAt removes and returns the first block when it starts
// exactly at seq (used by the receiver to advance the cumulative ACK).
func (l *blockList) PopFirstIfStartsAt(seq int64) (Block, bool) {
	if len(l.blocks) == 0 || l.blocks[0].Start != seq {
		return Block{}, false
	}
	b := l.blocks[0]
	l.blocks = l.blocks[1:]
	return b, true
}

// Snapshot returns a copy of the block slice.
func (l *blockList) Snapshot() []Block {
	return append([]Block(nil), l.blocks...)
}

// Subtract returns the portions of [start, end) not covered by the list.
func (l *blockList) Subtract(start, end int64) []Block {
	var out []Block
	cur := start
	for _, b := range l.blocks {
		if b.End <= cur {
			continue
		}
		if b.Start >= end {
			break
		}
		if b.Start > cur {
			e := b.Start
			if e > end {
				e = end
			}
			out = append(out, Block{cur, e})
		}
		if b.End > cur {
			cur = b.End
		}
		if cur >= end {
			return out
		}
	}
	if cur < end {
		out = append(out, Block{cur, end})
	}
	return out
}

// Count returns the number of blocks.
func (l *blockList) Count() int { return len(l.blocks) }

// Covered returns the total number of covered segments.
func (l *blockList) Covered() int64 {
	var n int64
	for _, b := range l.blocks {
		n += b.Len()
	}
	return n
}
