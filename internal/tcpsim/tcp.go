// Package tcpsim implements a packet-level TCP sender and receiver over
// netem paths, modelled on the Linux TCP of the paper's era: slow start,
// congestion avoidance, SACK-based loss recovery with a pipe (conservation
// of packets) algorithm, NewReno-style recovery when SACK is disabled,
// RFC 6298 retransmission timeouts with exponential backoff and a 1 s
// minimum, go-back-N style retransmission of the outstanding window after a
// timeout, Karn-correct timed-segment RTT sampling, delayed ACKs, and an
// advertised-window cap (the "socket buffer" knob the paper controls
// through IPerf's -w).
//
// Besides moving bytes, connections export the quantities the paper's
// analysis needs: the average RTT the flow experienced (T), the packet loss
// rate it saw (p), and the congestion-event rate (p′).
package tcpsim

import (
	"math"

	"repro/internal/netem"
	"repro/internal/sim"
)

// Config sets connection parameters. The zero value is completed by
// Defaults.
type Config struct {
	MSS             int     // segment payload bytes (default 1460)
	HeaderBytes     int     // TCP/IP header overhead per packet (default 40)
	MaxWindowBytes  int     // advertised window W / socket buffer (default 1 MB)
	InitialCwnd     float64 // initial congestion window, segments (default 2)
	InitialSsthresh float64 // initial slow-start threshold, segments (default +inf)
	DelayedAck      bool    // ACK every other in-order segment
	DelAckTimeout   float64 // delayed-ACK timer (default 0.2 s)
	MinRTO          float64 // minimum RTO (default 1 s, per RFC 6298)
	MaxRTO          float64 // maximum RTO (default 60 s)
	NoSACK          bool    // disable SACK; fall back to NewReno recovery
}

// Defaults fills unset fields with standard values and returns the result.
func (c Config) Defaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 40
	}
	if c.MaxWindowBytes == 0 {
		c.MaxWindowBytes = 1 << 20
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 2
	}
	if c.InitialSsthresh == 0 {
		c.InitialSsthresh = math.Inf(1)
	}
	if c.DelAckTimeout == 0 {
		c.DelAckTimeout = 0.2
	}
	if c.MinRTO == 0 {
		c.MinRTO = 1.0
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60.0
	}
	return c
}

// BPerACK returns the b parameter of the throughput formulas implied by the
// ACK policy: 2 with delayed ACKs, 1 without.
func (c Config) BPerACK() int {
	if c.DelayedAck {
		return 2
	}
	return 1
}

// Stats aggregates what a connection did and observed.
type Stats struct {
	Start           float64 // virtual time the connection started
	SegmentsSent    int64   // data segments transmitted, including retransmits
	Retransmits     int64   // retransmitted segments
	FastRetransmits int64   // loss-recovery (non-timeout) retransmits
	Timeouts        int64   // RTO expirations
	LossEvents      int64   // congestion events (recovery episodes + timeouts)
	BytesAcked      int64   // payload bytes cumulatively acknowledged
	AcksReceived    int64
	DupAcks         int64

	RTTSamples int64
	rttSum     float64
	rttMin     float64
	rttMax     float64
}

// MeanRTT returns the average of the connection's RTT samples, in seconds
// (0 if no sample was taken).
func (s *Stats) MeanRTT() float64 {
	if s.RTTSamples == 0 {
		return 0
	}
	return s.rttSum / float64(s.RTTSamples)
}

// MinRTT returns the smallest RTT sample (0 if none).
func (s *Stats) MinRTT() float64 {
	if s.RTTSamples == 0 {
		return 0
	}
	return s.rttMin
}

// MaxRTT returns the largest RTT sample (0 if none).
func (s *Stats) MaxRTT() float64 { return s.rttMax }

// LossRate returns p: the fraction of transmitted data segments that were
// lost, estimated from retransmissions.
func (s *Stats) LossRate() float64 {
	if s.SegmentsSent == 0 {
		return 0
	}
	return float64(s.Retransmits) / float64(s.SegmentsSent)
}

// CongestionEventRate returns p′: congestion events per transmitted
// segment, the quantity the PFTK derivation actually calls for (see Goyal
// et al. and Section 3.3 of the paper).
func (s *Stats) CongestionEventRate() float64 {
	if s.SegmentsSent == 0 {
		return 0
	}
	return float64(s.LossEvents) / float64(s.SegmentsSent)
}

// segState tracks one outstanding segment.
type segState struct {
	inFlight int8 // copies believed to be in the network
	sacked   bool
	lost     bool
	rtx      bool // retransmitted at least once (Karn)
}

// dupThresh is the classic three-duplicate-ACK loss threshold.
const dupThresh = 3

// Sender is the TCP source. Create with NewSender, then Start. The sender
// keeps transmitting until Stop (bulk mode) or until the optional byte
// limit is exhausted.
type Sender struct {
	cfg  Config
	eng  *sim.Engine
	out  *netem.Endpoint
	flow netem.FlowID

	// Sequence space is counted in segments.
	nextSeq    int64
	highestAck int64 // first unacknowledged segment
	segs       map[int64]*segState
	pipe       int // conservation-of-packets estimate of segments in flight

	cwnd       float64 // segments
	ssthresh   float64 // segments
	dupAcks    int
	inRecovery bool
	recover    int64 // nextSeq at loss detection

	// SACK scoreboard.
	scoreboard blockList
	highSacked int64 // highest sacked segment + 1
	lossScan   int64 // next seq to evaluate for loss declaration
	rtxCursor  int64 // next candidate lost segment to retransmit
	// vackCursor attributes NewReno duplicate ACKs to concrete segments:
	// each dup ACK proves some post-hole segment arrived, so that
	// segment's in-flight copy is retired from the pipe here rather than
	// double-retired later by the cumulative ACK.
	vackCursor int64

	// RTO state (RFC 6298).
	srtt, rttvar float64
	rto          float64
	backoff      int
	rtoTimer     sim.Timer

	// Timed-segment RTT sampling (Karn's algorithm).
	timing   bool
	timedSeq int64
	timedAt  float64

	limitSegments int64 // 0 = unlimited
	stopped       bool
	done          func()

	stats Stats
}

// NewSender creates a sender for flow on endpoint ep. ACK packets for the
// flow must be routed back to ep (the caller wires the receiver on the peer
// endpoint). cfg is completed with Defaults.
func NewSender(eng *sim.Engine, ep *netem.Endpoint, flow netem.FlowID, cfg Config) *Sender {
	cfg = cfg.Defaults()
	s := &Sender{
		cfg:      cfg,
		eng:      eng,
		out:      ep,
		flow:     flow,
		segs:     make(map[int64]*segState),
		cwnd:     cfg.InitialCwnd,
		ssthresh: cfg.InitialSsthresh,
		rto:      3.0, // RFC 6298 initial RTO
	}
	ep.Register(flow, netem.ReceiverFunc(s.onAck))
	return s
}

// SetLimit caps the transfer at n payload bytes (rounded up to whole
// segments). Zero means unlimited. The done callback, if non-nil, fires
// when the last byte is acknowledged.
func (s *Sender) SetLimit(n int64, done func()) {
	if n <= 0 {
		s.limitSegments = 0
	} else {
		s.limitSegments = (n + int64(s.cfg.MSS) - 1) / int64(s.cfg.MSS)
	}
	s.done = done
}

// Start begins transmitting.
func (s *Sender) Start() {
	s.stats.Start = s.eng.Now()
	s.trySend()
}

// Stop halts the sender: cancels timers and stops transmission. Stats
// remain readable.
func (s *Sender) Stop() {
	s.stopped = true
	s.rtoTimer.Cancel()
	s.rtoTimer = sim.Timer{}
	s.out.Register(s.flow, nil)
}

// Stats returns a pointer to the sender's counters (live; callers must not
// mutate).
func (s *Sender) Stats() *Stats { return &s.stats }

// BytesAcked returns payload bytes cumulatively acknowledged so far.
func (s *Sender) BytesAcked() int64 { return s.stats.BytesAcked }

// Cwnd returns the current congestion window in segments.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Ssthresh returns the current slow-start threshold in segments.
func (s *Sender) Ssthresh() float64 { return s.ssthresh }

// InRecovery reports whether the sender is in loss recovery.
func (s *Sender) InRecovery() bool { return s.inRecovery }

// RTO returns the current retransmission timeout in seconds.
func (s *Sender) RTO() float64 { return s.rto }

// SRTT returns the smoothed RTT estimate in seconds (0 before any sample).
func (s *Sender) SRTT() float64 { return s.srtt }

// Pipe returns the current in-flight estimate in segments.
func (s *Sender) Pipe() int { return s.pipe }

func (s *Sender) maxWindowSegs() int64 {
	w := int64(s.cfg.MaxWindowBytes) / int64(s.cfg.MSS)
	if w < 1 {
		w = 1
	}
	return w
}

func (s *Sender) seg(seq int64) *segState {
	st, ok := s.segs[seq]
	if !ok {
		st = &segState{}
		s.segs[seq] = st
	}
	return st
}

// trySend transmits as much as the congestion and advertised windows
// allow: lost segments first (loss recovery), then new data.
func (s *Sender) trySend() {
	if s.stopped {
		return
	}
	capSegs := s.cwnd
	if !s.inRecovery && s.dupAcks > 0 {
		// Limited Transmit (RFC 3042): the first two duplicate ACKs may
		// clock out new segments, avoiding an RTO when the window is too
		// small for three duplicate ACKs to arrive.
		lt := float64(s.dupAcks)
		if lt > 2 {
			lt = 2
		}
		capSegs += lt
	}
	if w := float64(s.maxWindowSegs()); w < capSegs {
		capSegs = w
	}
	for float64(s.pipe) < capSegs {
		if seq, ok := s.nextLost(); ok {
			s.transmit(seq, true)
			continue
		}
		// New data, bounded by the advertised window and byte limit.
		if s.nextSeq-s.highestAck >= s.maxWindowSegs() {
			return
		}
		if s.limitSegments > 0 && s.nextSeq >= s.limitSegments {
			return
		}
		s.transmit(s.nextSeq, false)
		s.nextSeq++
	}
}

// nextLost scans for the next declared-lost segment that is not in flight
// and not already sacked or acked.
func (s *Sender) nextLost() (int64, bool) {
	if s.rtxCursor < s.highestAck {
		s.rtxCursor = s.highestAck
	}
	for ; s.rtxCursor < s.nextSeq; s.rtxCursor++ {
		st, ok := s.segs[s.rtxCursor]
		if !ok || st.sacked || !st.lost || st.inFlight > 0 {
			continue
		}
		return s.rtxCursor, true
	}
	return 0, false
}

func (s *Sender) transmit(seq int64, isRetransmit bool) {
	st := s.seg(seq)
	st.inFlight++
	s.pipe++
	s.stats.SegmentsSent++
	if isRetransmit {
		st.rtx = true
		st.lost = false // given another chance; RTO re-declares if needed
		s.stats.Retransmits++
		if s.timing && seq == s.timedSeq {
			s.timing = false // Karn: never time a retransmitted segment
		}
	} else if !s.timing {
		s.timing = true
		s.timedSeq = seq
		s.timedAt = s.eng.Now()
	}
	pkt := s.out.NewPacket()
	pkt.Flow = s.flow
	pkt.Kind = netem.KindData
	pkt.Size = s.cfg.MSS + s.cfg.HeaderBytes
	pkt.Seq = seq
	s.out.Send(pkt)
	if !s.rtoTimer.Pending() {
		s.armRTO()
	}
}

func (s *Sender) armRTO() {
	s.rtoTimer.Cancel()
	d := s.rto * float64(int64(1)<<uint(s.backoff))
	if d > s.cfg.MaxRTO {
		d = s.cfg.MaxRTO
	}
	s.rtoTimer = s.eng.Schedule(d, s.onTimeout)
}

func (s *Sender) onTimeout() {
	if s.stopped || s.nextSeq == s.highestAck {
		return
	}
	s.stats.Timeouts++
	s.stats.LossEvents++
	half := s.cwnd / 2
	if half < 2 {
		half = 2
	}
	s.ssthresh = half
	s.cwnd = 1
	s.dupAcks = 0
	s.inRecovery = false
	s.backoff++
	if s.backoff > 6 {
		s.backoff = 6
	}
	s.timing = false
	// Everything unsacked and outstanding is presumed lost; retransmission
	// restarts from the left edge (go-back-N over the holes).
	for seq := s.highestAck; seq < s.nextSeq; seq++ {
		st, ok := s.segs[seq]
		if !ok || st.sacked {
			continue
		}
		if !st.lost || st.inFlight > 0 {
			s.pipe -= int(st.inFlight)
			st.inFlight = 0
			st.lost = true
		}
	}
	if s.pipe < 0 {
		s.pipe = 0
	}
	s.rtxCursor = s.highestAck
	s.lossScan = s.highestAck
	s.transmit(s.highestAck, true)
	s.armRTO()
}

func (s *Sender) recordRTT(rtt float64) {
	s.stats.RTTSamples++
	s.stats.rttSum += rtt
	if s.stats.rttMin == 0 || rtt < s.stats.rttMin {
		s.stats.rttMin = rtt
	}
	if rtt > s.stats.rttMax {
		s.stats.rttMax = rtt
	}
	if s.stats.RTTSamples == 1 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		const alpha, beta = 1.0 / 8, 1.0 / 4
		s.rttvar = (1-beta)*s.rttvar + beta*math.Abs(s.srtt-rtt)
		s.srtt = (1-alpha)*s.srtt + alpha*rtt
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
}

func (s *Sender) onAck(pkt *netem.Packet) {
	if s.stopped || pkt.Kind != netem.KindAck {
		s.out.ReleasePacket(pkt)
		return
	}
	s.stats.AcksReceived++
	if !s.cfg.NoSACK {
		if blocks, ok := pkt.Meta.([]Block); ok {
			s.processSACK(blocks)
		}
	}
	ack := pkt.Ack
	// The ACK is fully consumed; recycle it before the send burst it may
	// trigger, so trySend can reuse the very packet that clocked it out.
	s.out.ReleasePacket(pkt)
	switch {
	case ack > s.highestAck:
		s.onNewAck(ack)
	case ack == s.highestAck:
		s.onDupAck()
	}
	s.declareLosses()
	s.maybeEnterRecovery()
	s.trySend()
}

// processSACK merges the receiver-reported blocks into the scoreboard and
// adjusts the pipe for newly sacked segments.
func (s *Sender) processSACK(blocks []Block) {
	for _, b := range blocks {
		start, end := b.Start, b.End
		if start < s.highestAck {
			start = s.highestAck
		}
		if end > s.nextSeq {
			end = s.nextSeq
		}
		if end <= start {
			continue
		}
		for _, nb := range s.scoreboard.Subtract(start, end) {
			for seq := nb.Start; seq < nb.End; seq++ {
				st, ok := s.segs[seq]
				if !ok || st.sacked {
					continue
				}
				st.sacked = true
				s.pipe -= int(st.inFlight)
				st.inFlight = 0
			}
		}
		s.scoreboard.Add(start, end)
	}
	if m := s.scoreboard.Max(); m > s.highSacked {
		s.highSacked = m
	}
	if s.pipe < 0 {
		s.pipe = 0
	}
}

// declareLosses applies the FACK-style rule: an unsacked segment with the
// highest sacked sequence more than dupThresh ahead is declared lost.
func (s *Sender) declareLosses() {
	if s.cfg.NoSACK || s.highSacked == 0 {
		return
	}
	if s.lossScan < s.highestAck {
		s.lossScan = s.highestAck
	}
	limit := s.highSacked - dupThresh
	for ; s.lossScan < limit; s.lossScan++ {
		st, ok := s.segs[s.lossScan]
		if !ok || st.sacked || st.lost {
			continue
		}
		if st.rtx && st.inFlight > 0 {
			// An outstanding retransmission: leave it to the RTO.
			continue
		}
		st.lost = true
		s.pipe -= int(st.inFlight)
		st.inFlight = 0
		if s.pipe < 0 {
			s.pipe = 0
		}
		if s.rtxCursor > s.lossScan {
			s.rtxCursor = s.lossScan
		}
	}
}

// maybeEnterRecovery starts a loss-recovery episode (one congestion event)
// when loss has been detected and none is in progress.
func (s *Sender) maybeEnterRecovery() {
	if s.inRecovery || s.stopped {
		return
	}
	lossDetected := s.dupAcks >= dupThresh
	if !s.cfg.NoSACK && s.highSacked-s.highestAck > dupThresh {
		lossDetected = true
	}
	if !lossDetected {
		return
	}
	s.stats.LossEvents++
	s.stats.FastRetransmits++
	s.inRecovery = true
	s.recover = s.nextSeq
	half := s.cwnd / 2
	if half < 2 {
		half = 2
	}
	s.ssthresh = half
	s.cwnd = s.ssthresh
	// The left edge is lost by definition of the trigger.
	st := s.seg(s.highestAck)
	if !st.sacked && !st.lost {
		st.lost = true
		s.pipe -= int(st.inFlight)
		st.inFlight = 0
		if s.pipe < 0 {
			s.pipe = 0
		}
	}
	if s.rtxCursor > s.highestAck {
		s.rtxCursor = s.highestAck
	}
	if s.cfg.NoSACK {
		// The dupThresh duplicate ACKs that triggered recovery each
		// signalled a delivered post-hole segment.
		s.vackCursor = s.highestAck + 1
		for i := 0; i < dupThresh; i++ {
			s.virtualDeliver()
		}
	}
}

// virtualDeliver retires the in-flight copy of the next outstanding
// segment above the hole (NewReno mode, where no SACK information says
// which segment a duplicate ACK stands for).
func (s *Sender) virtualDeliver() {
	if s.vackCursor <= s.highestAck {
		s.vackCursor = s.highestAck + 1
	}
	for ; s.vackCursor < s.nextSeq; s.vackCursor++ {
		st, ok := s.segs[s.vackCursor]
		if !ok || st.inFlight == 0 {
			continue
		}
		st.inFlight--
		if s.pipe > 0 {
			s.pipe--
		}
		s.vackCursor++
		return
	}
}

func (s *Sender) onNewAck(ack int64) {
	s.backoff = 0
	// Retire acked segments from the pipe and take the RTT sample.
	for seq := s.highestAck; seq < ack; seq++ {
		st, ok := s.segs[seq]
		if !ok {
			continue
		}
		if s.timing && seq == s.timedSeq {
			if !st.rtx {
				s.recordRTT(s.eng.Now() - s.timedAt)
			}
			s.timing = false
		}
		s.pipe -= int(st.inFlight)
		delete(s.segs, seq)
	}
	if s.pipe < 0 {
		s.pipe = 0
	}
	s.highestAck = ack
	s.scoreboard.TrimBelow(ack)
	if s.lossScan < ack {
		s.lossScan = ack
	}

	if s.inRecovery {
		if ack >= s.recover {
			s.inRecovery = false
			s.cwnd = s.ssthresh
			s.dupAcks = 0
		} else if s.cfg.NoSACK {
			// NewReno partial ACK: the next hole is the segment at the new
			// left edge; mark it lost so trySend retransmits it.
			st := s.seg(ack)
			if !st.lost && st.inFlight > 0 {
				st.lost = true
				s.pipe -= int(st.inFlight)
				st.inFlight = 0
				if s.pipe < 0 {
					s.pipe = 0
				}
			}
			if s.rtxCursor > ack {
				s.rtxCursor = ack
			}
		}
	} else {
		s.dupAcks = 0
		// Per-ACK window growth (RFC 2581, no byte counting): with
		// delayed ACKs this is what the throughput formulas' b = 2
		// models — slow start doubles every two RTTs, congestion
		// avoidance adds half a segment per RTT.
		if s.cwnd < s.ssthresh {
			s.cwnd++
			if s.cwnd > s.ssthresh && !math.IsInf(s.ssthresh, 1) {
				s.cwnd = s.ssthresh
			}
		} else {
			s.cwnd += 1 / s.cwnd
		}
	}

	if s.nextSeq > s.highestAck {
		s.armRTO()
	} else {
		s.rtoTimer.Cancel()
	}
	s.finishAck()
}

func (s *Sender) finishAck() {
	s.stats.BytesAcked = s.highestAck * int64(s.cfg.MSS)
	if s.limitSegments > 0 && s.highestAck >= s.limitSegments {
		s.stats.BytesAcked = s.limitSegments * int64(s.cfg.MSS)
		s.rtoTimer.Cancel()
		if s.done != nil {
			done := s.done
			s.done = nil
			done()
		}
	}
}

func (s *Sender) onDupAck() {
	if s.nextSeq == s.highestAck {
		return
	}
	s.stats.DupAcks++
	s.dupAcks++
	if s.cfg.NoSACK && s.inRecovery {
		// A dup ACK proves one more post-hole segment was delivered;
		// retire its in-flight copy via the virtual-ACK cursor so the
		// later cumulative ACK does not retire it a second time.
		s.virtualDeliver()
	}
	if s.cfg.NoSACK && !s.inRecovery && s.dupAcks >= dupThresh {
		// Loss of the left edge; maybeEnterRecovery (called by onAck)
		// performs the actual state change.
		st := s.seg(s.highestAck)
		if st.inFlight > 0 {
			st.lost = true
			s.pipe -= int(st.inFlight)
			st.inFlight = 0
			if s.pipe < 0 {
				s.pipe = 0
			}
		}
	}
}
