// Package tcpsim implements a packet-level TCP sender and receiver over
// netem paths, modelled on the Linux TCP of the paper's era: slow start,
// congestion avoidance, SACK-based loss recovery with a pipe (conservation
// of packets) algorithm, NewReno-style recovery when SACK is disabled,
// RFC 6298 retransmission timeouts with exponential backoff and a 1 s
// minimum, go-back-N style retransmission of the outstanding window after a
// timeout, Karn-correct timed-segment RTT sampling, delayed ACKs, and an
// advertised-window cap (the "socket buffer" knob the paper controls
// through IPerf's -w).
//
// Besides moving bytes, connections export the quantities the paper's
// analysis needs: the average RTT the flow experienced (T), the packet loss
// rate it saw (p), and the congestion-event rate (p′).
package tcpsim

import (
	"math"

	"repro/internal/netem"
	"repro/internal/sim"
)

// Config sets connection parameters. The zero value is completed by
// Defaults.
type Config struct {
	MSS             int     // segment payload bytes (default 1460)
	HeaderBytes     int     // TCP/IP header overhead per packet (default 40)
	MaxWindowBytes  int     // advertised window W / socket buffer (default 1 MB)
	InitialCwnd     float64 // initial congestion window, segments (default 2)
	InitialSsthresh float64 // initial slow-start threshold, segments (default +inf)
	DelayedAck      bool    // ACK every other in-order segment
	DelAckTimeout   float64 // delayed-ACK timer (default 0.2 s)
	MinRTO          float64 // minimum RTO (default 1 s, per RFC 6298)
	MaxRTO          float64 // maximum RTO (default 60 s)
	NoSACK          bool    // disable SACK; fall back to NewReno recovery

	// Congestion selects the congestion-control algorithm (CCReno,
	// CCCubic, CCBBR). Empty means CCReno, the paper-era default.
	Congestion Congestion
}

// Defaults fills unset fields with standard values and returns the result.
func (c Config) Defaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 40
	}
	if c.MaxWindowBytes == 0 {
		c.MaxWindowBytes = 1 << 20
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 2
	}
	if c.InitialSsthresh == 0 {
		c.InitialSsthresh = math.Inf(1)
	}
	if c.DelAckTimeout == 0 {
		c.DelAckTimeout = 0.2
	}
	if c.MinRTO == 0 {
		c.MinRTO = 1.0
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60.0
	}
	if c.Congestion == "" {
		c.Congestion = CCReno
	}
	return c
}

// BPerACK returns the b parameter of the throughput formulas implied by the
// ACK policy: 2 with delayed ACKs, 1 without.
func (c Config) BPerACK() int {
	if c.DelayedAck {
		return 2
	}
	return 1
}

// Stats aggregates what a connection did and observed.
type Stats struct {
	Start           float64 // virtual time the connection started
	SegmentsSent    int64   // data segments transmitted, including retransmits
	Retransmits     int64   // retransmitted segments
	FastRetransmits int64   // loss-recovery (non-timeout) retransmits
	Timeouts        int64   // RTO expirations
	LossEvents      int64   // congestion events (recovery episodes + timeouts)
	BytesAcked      int64   // payload bytes cumulatively acknowledged
	AcksReceived    int64
	DupAcks         int64

	RTTSamples int64
	rttSum     float64
	rttMin     float64
	rttMax     float64
}

// MeanRTT returns the average of the connection's RTT samples, in seconds
// (0 if no sample was taken).
func (s *Stats) MeanRTT() float64 {
	if s.RTTSamples == 0 {
		return 0
	}
	return s.rttSum / float64(s.RTTSamples)
}

// MinRTT returns the smallest RTT sample (0 if none).
func (s *Stats) MinRTT() float64 {
	if s.RTTSamples == 0 {
		return 0
	}
	return s.rttMin
}

// MaxRTT returns the largest RTT sample (0 if none).
func (s *Stats) MaxRTT() float64 { return s.rttMax }

// LossRate returns p: the fraction of transmitted data segments that were
// lost, estimated from retransmissions.
func (s *Stats) LossRate() float64 {
	if s.SegmentsSent == 0 {
		return 0
	}
	return float64(s.Retransmits) / float64(s.SegmentsSent)
}

// CongestionEventRate returns p′: congestion events per transmitted
// segment, the quantity the PFTK derivation actually calls for (see Goyal
// et al. and Section 3.3 of the paper).
func (s *Stats) CongestionEventRate() float64 {
	if s.SegmentsSent == 0 {
		return 0
	}
	return float64(s.LossEvents) / float64(s.SegmentsSent)
}

// segState tracks one outstanding segment.
type segState struct {
	inFlight int8 // copies believed to be in the network
	sacked   bool
	lost     bool
	rtx      bool // retransmitted at least once (Karn)
}

// dupThresh is the classic three-duplicate-ACK loss threshold.
const dupThresh = 3

// Sender is the TCP source. Create with NewSender, then Start. The sender
// keeps transmitting until Stop (bulk mode) or until the optional byte
// limit is exhausted.
type Sender struct {
	cfg  Config
	eng  *sim.Engine
	out  *netem.Endpoint
	flow netem.FlowID

	// Sequence space is counted in segments.
	nextSeq    int64
	highestAck int64 // first unacknowledged segment
	// segs is a power-of-two ring over the advertised window: every live
	// sequence (highestAck ≤ seq < nextSeq, a span trySend bounds by
	// maxWindowSegs) owns a distinct slot, retired slots are re-zeroed by
	// the cumulative ACK, so steady state allocates nothing.
	segs    []segState
	segMask int64
	pipe    int // conservation-of-packets estimate of segments in flight

	cc         CongestionControl
	dupAcks    int
	inRecovery bool
	recover    int64 // nextSeq at loss detection
	sackedNow  int64 // segments newly SACKed by the ACK being processed

	// SACK scoreboard.
	scoreboard blockList
	highSacked int64 // highest sacked segment + 1
	lossScan   int64 // next seq to evaluate for loss declaration
	rtxCursor  int64 // next candidate lost segment to retransmit
	// vackCursor attributes NewReno duplicate ACKs to concrete segments:
	// each dup ACK proves some post-hole segment arrived, so that
	// segment's in-flight copy is retired from the pipe here rather than
	// double-retired later by the cumulative ACK.
	vackCursor int64

	// RTO state (RFC 6298).
	srtt, rttvar float64
	rto          float64
	backoff      int
	rtoTimer     sim.Timer
	rtoFn        func() // cached s.onTimeout closure (no per-arm allocation)

	// Delivery-rate sampling for SenderStats: segments delivered
	// (cumulatively acked or SACKed) over wall-clock windows of ~1 SRTT.
	delivered    int64
	drMarkDeliv  int64
	drMarkStamp  float64
	deliveryRate float64 // bytes/sec, most recent completed sample

	// Timed-segment RTT sampling (Karn's algorithm).
	timing   bool
	timedSeq int64
	timedAt  float64

	limitSegments int64 // 0 = unlimited
	stopped       bool
	done          func()

	stats Stats
}

// NewSender creates a sender for flow on endpoint ep. ACK packets for the
// flow must be routed back to ep (the caller wires the receiver on the peer
// endpoint). cfg is completed with Defaults.
func NewSender(eng *sim.Engine, ep *netem.Endpoint, flow netem.FlowID, cfg Config) *Sender {
	cfg = cfg.Defaults()
	s := &Sender{
		cfg:  cfg,
		eng:  eng,
		out:  ep,
		flow: flow,
		cc:   NewCongestionControl(cfg),
		rto:  3.0, // RFC 6298 initial RTO
	}
	// Ring capacity: the smallest power of two that holds every sequence
	// in one advertised window (span ≤ maxWindowSegs, so maxWindowSegs+1
	// distinct slots suffice).
	ringSize := int64(1)
	for ringSize < s.maxWindowSegs()+1 {
		ringSize <<= 1
	}
	s.segs = make([]segState, ringSize)
	s.segMask = ringSize - 1
	s.rtoFn = s.onTimeout
	ep.Register(flow, netem.ReceiverFunc(s.onAck))
	return s
}

// SetLimit caps the transfer at n payload bytes (rounded up to whole
// segments). Zero means unlimited. The done callback, if non-nil, fires
// when the last byte is acknowledged.
func (s *Sender) SetLimit(n int64, done func()) {
	if n <= 0 {
		s.limitSegments = 0
	} else {
		s.limitSegments = (n + int64(s.cfg.MSS) - 1) / int64(s.cfg.MSS)
	}
	s.done = done
}

// Start begins transmitting.
func (s *Sender) Start() {
	s.stats.Start = s.eng.Now()
	s.drMarkStamp = s.eng.Now()
	s.trySend()
}

// Stop halts the sender: cancels timers and stops transmission. Stats
// remain readable.
func (s *Sender) Stop() {
	s.stopped = true
	s.rtoTimer.Cancel()
	s.rtoTimer = sim.Timer{}
	s.out.Register(s.flow, nil)
}

// Stats returns a pointer to the sender's counters (live; callers must not
// mutate).
func (s *Sender) Stats() *Stats { return &s.stats }

// BytesAcked returns payload bytes cumulatively acknowledged so far.
func (s *Sender) BytesAcked() int64 { return s.stats.BytesAcked }

// Cwnd returns the current congestion window in segments.
func (s *Sender) Cwnd() float64 { return s.cc.Window() }

// Ssthresh returns the current slow-start threshold in segments (+Inf for
// controls without one).
func (s *Sender) Ssthresh() float64 { return s.cc.Ssthresh() }

// InRecovery reports whether the sender is in loss recovery.
func (s *Sender) InRecovery() bool { return s.inRecovery }

// RTO returns the current retransmission timeout in seconds.
func (s *Sender) RTO() float64 { return s.rto }

// SRTT returns the smoothed RTT estimate in seconds (0 before any sample).
func (s *Sender) SRTT() float64 { return s.srtt }

// Pipe returns the current in-flight estimate in segments.
func (s *Sender) Pipe() int { return s.pipe }

// SenderStats is a congestion-control-agnostic snapshot of a sender's
// rate state. Unlike Cwnd/Ssthresh — whose meaning is Reno-specific and
// degenerate under other controls (BBR has no ssthresh) — these fields
// are defined for every algorithm, so testbed epochs and obs metrics can
// record them without knowing which variant ran.
type SenderStats struct {
	CC               Congestion // algorithm that produced these numbers
	WindowSegments   float64    // current send window, segments
	PacingRateBps    float64    // window/SRTT in payload bits/sec (0 before an RTT sample)
	DeliveryRateBps  float64    // most recent measured delivery rate, payload bits/sec
	RecoveryEpisodes int64      // fast-recovery episodes entered
	Timeouts         int64      // RTO expirations
	SRTT             float64    // smoothed RTT, seconds
	MinRTT           float64    // lowest RTT sample, seconds
}

// SenderStats snapshots the sender's CC-agnostic rate state.
func (s *Sender) SenderStats() SenderStats {
	st := SenderStats{
		CC:               s.cc.Name(),
		WindowSegments:   s.cc.Window(),
		DeliveryRateBps:  s.deliveryRate,
		RecoveryEpisodes: s.stats.FastRetransmits,
		Timeouts:         s.stats.Timeouts,
		SRTT:             s.srtt,
		MinRTT:           s.stats.MinRTT(),
	}
	if s.srtt > 0 {
		st.PacingRateBps = st.WindowSegments * float64(s.cfg.MSS) * 8 / s.srtt
	}
	return st
}

func (s *Sender) maxWindowSegs() int64 {
	w := int64(s.cfg.MaxWindowBytes) / int64(s.cfg.MSS)
	if w < 1 {
		w = 1
	}
	return w
}

// seg returns the ring slot for seq. Valid only for live sequences
// (highestAck ≤ seq < nextSeq, plus nextSeq itself at transmit time);
// slots are zeroed when the cumulative ACK retires them, so a fresh
// sequence always starts from the zero value — exactly what the old
// map-of-pointers handed out on first touch.
func (s *Sender) seg(seq int64) *segState {
	return &s.segs[seq&s.segMask]
}

// trySend transmits as much as the congestion and advertised windows
// allow: lost segments first (loss recovery), then new data.
func (s *Sender) trySend() {
	if s.stopped {
		return
	}
	capSegs := s.cc.Window()
	if !s.inRecovery && s.dupAcks > 0 {
		// Limited Transmit (RFC 3042): the first two duplicate ACKs may
		// clock out new segments, avoiding an RTO when the window is too
		// small for three duplicate ACKs to arrive.
		lt := float64(s.dupAcks)
		if lt > 2 {
			lt = 2
		}
		capSegs += lt
	}
	if w := float64(s.maxWindowSegs()); w < capSegs {
		capSegs = w
	}
	for float64(s.pipe) < capSegs {
		if seq, ok := s.nextLost(); ok {
			s.transmit(seq, true)
			continue
		}
		// New data, bounded by the advertised window and byte limit.
		if s.nextSeq-s.highestAck >= s.maxWindowSegs() {
			return
		}
		if s.limitSegments > 0 && s.nextSeq >= s.limitSegments {
			return
		}
		s.transmit(s.nextSeq, false)
		s.nextSeq++
	}
}

// nextLost scans for the next declared-lost segment that is not in flight
// and not already sacked or acked.
func (s *Sender) nextLost() (int64, bool) {
	if s.rtxCursor < s.highestAck {
		s.rtxCursor = s.highestAck
	}
	for ; s.rtxCursor < s.nextSeq; s.rtxCursor++ {
		st := s.seg(s.rtxCursor)
		if st.sacked || !st.lost || st.inFlight > 0 {
			continue
		}
		return s.rtxCursor, true
	}
	return 0, false
}

func (s *Sender) transmit(seq int64, isRetransmit bool) {
	st := s.seg(seq)
	st.inFlight++
	s.pipe++
	s.stats.SegmentsSent++
	if isRetransmit {
		st.rtx = true
		st.lost = false // given another chance; RTO re-declares if needed
		s.stats.Retransmits++
		if s.timing && seq == s.timedSeq {
			s.timing = false // Karn: never time a retransmitted segment
		}
	} else if !s.timing {
		s.timing = true
		s.timedSeq = seq
		s.timedAt = s.eng.Now()
	}
	pkt := s.out.NewPacket()
	pkt.Flow = s.flow
	pkt.Kind = netem.KindData
	pkt.Size = s.cfg.MSS + s.cfg.HeaderBytes
	pkt.Seq = seq
	s.out.Send(pkt)
	if !s.rtoTimer.Pending() {
		s.armRTO()
	}
}

func (s *Sender) armRTO() {
	s.rtoTimer.Cancel()
	d := s.rto * float64(int64(1)<<uint(s.backoff))
	if d > s.cfg.MaxRTO {
		d = s.cfg.MaxRTO
	}
	s.rtoTimer = s.eng.Schedule(d, s.rtoFn)
}

func (s *Sender) onTimeout() {
	if s.stopped || s.nextSeq == s.highestAck {
		return
	}
	s.stats.Timeouts++
	s.stats.LossEvents++
	s.cc.OnTimeout(s.eng.Now())
	s.dupAcks = 0
	s.inRecovery = false
	s.backoff++
	if s.backoff > 6 {
		s.backoff = 6
	}
	s.timing = false
	// Everything unsacked and outstanding is presumed lost; retransmission
	// restarts from the left edge (go-back-N over the holes).
	for seq := s.highestAck; seq < s.nextSeq; seq++ {
		st := s.seg(seq)
		if st.sacked {
			continue
		}
		if !st.lost || st.inFlight > 0 {
			s.pipe -= int(st.inFlight)
			st.inFlight = 0
			st.lost = true
		}
	}
	if s.pipe < 0 {
		s.pipe = 0
	}
	s.rtxCursor = s.highestAck
	s.lossScan = s.highestAck
	s.transmit(s.highestAck, true)
	s.armRTO()
}

func (s *Sender) recordRTT(rtt float64) {
	s.stats.RTTSamples++
	s.stats.rttSum += rtt
	if s.stats.rttMin == 0 || rtt < s.stats.rttMin {
		s.stats.rttMin = rtt
	}
	if rtt > s.stats.rttMax {
		s.stats.rttMax = rtt
	}
	if s.stats.RTTSamples == 1 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		const alpha, beta = 1.0 / 8, 1.0 / 4
		s.rttvar = (1-beta)*s.rttvar + beta*math.Abs(s.srtt-rtt)
		s.srtt = (1-alpha)*s.srtt + alpha*rtt
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.cc.OnRTT(rtt, s.eng.Now())
}

func (s *Sender) onAck(pkt *netem.Packet) {
	if s.stopped || pkt.Kind != netem.KindAck {
		s.out.ReleasePacket(pkt)
		return
	}
	s.stats.AcksReceived++
	s.sackedNow = 0
	if !s.cfg.NoSACK {
		if blocks, ok := pkt.Meta.([]Block); ok {
			s.processSACK(blocks)
		}
	}
	ack := pkt.Ack
	// The ACK is fully consumed; recycle it before the send burst it may
	// trigger, so trySend can reuse the very packet that clocked it out.
	s.out.ReleasePacket(pkt)
	switch {
	case ack > s.highestAck:
		s.onNewAck(ack)
	case ack == s.highestAck:
		s.onDupAck()
	}
	s.sampleDeliveryRate(s.eng.Now())
	s.declareLosses()
	s.maybeEnterRecovery()
	s.trySend()
}

// sampleDeliveryRate closes a delivery-rate measurement window once it
// spans at least one SRTT (10 ms floor before the first RTT sample).
func (s *Sender) sampleDeliveryRate(now float64) {
	interval := s.srtt
	if interval < 0.01 {
		interval = 0.01
	}
	elapsed := now - s.drMarkStamp
	if elapsed < interval {
		return
	}
	if n := s.delivered - s.drMarkDeliv; n > 0 {
		s.deliveryRate = float64(n) * float64(s.cfg.MSS) * 8 / elapsed
	}
	s.drMarkDeliv = s.delivered
	s.drMarkStamp = now
}

// processSACK merges the receiver-reported blocks into the scoreboard and
// adjusts the pipe for newly sacked segments.
func (s *Sender) processSACK(blocks []Block) {
	for _, b := range blocks {
		start, end := b.Start, b.End
		if start < s.highestAck {
			start = s.highestAck
		}
		if end > s.nextSeq {
			end = s.nextSeq
		}
		if end <= start {
			continue
		}
		for _, nb := range s.scoreboard.Subtract(start, end) {
			for seq := nb.Start; seq < nb.End; seq++ {
				st := s.seg(seq)
				if st.sacked {
					continue
				}
				st.sacked = true
				s.sackedNow++
				s.delivered++
				s.pipe -= int(st.inFlight)
				st.inFlight = 0
			}
		}
		s.scoreboard.Add(start, end)
	}
	if m := s.scoreboard.Max(); m > s.highSacked {
		s.highSacked = m
	}
	if s.pipe < 0 {
		s.pipe = 0
	}
}

// declareLosses applies the FACK-style rule: an unsacked segment with the
// highest sacked sequence more than dupThresh ahead is declared lost.
func (s *Sender) declareLosses() {
	if s.cfg.NoSACK || s.highSacked == 0 {
		return
	}
	if s.lossScan < s.highestAck {
		s.lossScan = s.highestAck
	}
	limit := s.highSacked - dupThresh
	for ; s.lossScan < limit; s.lossScan++ {
		st := s.seg(s.lossScan)
		if st.sacked || st.lost {
			continue
		}
		if st.rtx && st.inFlight > 0 {
			// An outstanding retransmission: leave it to the RTO.
			continue
		}
		st.lost = true
		s.pipe -= int(st.inFlight)
		st.inFlight = 0
		if s.pipe < 0 {
			s.pipe = 0
		}
		if s.rtxCursor > s.lossScan {
			s.rtxCursor = s.lossScan
		}
	}
}

// maybeEnterRecovery starts a loss-recovery episode (one congestion event)
// when loss has been detected and none is in progress.
func (s *Sender) maybeEnterRecovery() {
	if s.inRecovery || s.stopped {
		return
	}
	lossDetected := s.dupAcks >= dupThresh
	if !s.cfg.NoSACK && s.highSacked-s.highestAck > dupThresh {
		lossDetected = true
	}
	if !lossDetected {
		return
	}
	s.stats.LossEvents++
	s.stats.FastRetransmits++
	s.inRecovery = true
	s.recover = s.nextSeq
	s.cc.OnEnterRecovery(s.pipe, s.eng.Now())
	// The left edge is lost by definition of the trigger.
	st := s.seg(s.highestAck)
	if !st.sacked && !st.lost {
		st.lost = true
		s.pipe -= int(st.inFlight)
		st.inFlight = 0
		if s.pipe < 0 {
			s.pipe = 0
		}
	}
	if s.rtxCursor > s.highestAck {
		s.rtxCursor = s.highestAck
	}
	if s.cfg.NoSACK {
		// The dupThresh duplicate ACKs that triggered recovery each
		// signalled a delivered post-hole segment.
		s.vackCursor = s.highestAck + 1
		for i := 0; i < dupThresh; i++ {
			s.virtualDeliver()
		}
	}
}

// virtualDeliver retires the in-flight copy of the next outstanding
// segment above the hole (NewReno mode, where no SACK information says
// which segment a duplicate ACK stands for).
func (s *Sender) virtualDeliver() {
	if s.vackCursor <= s.highestAck {
		s.vackCursor = s.highestAck + 1
	}
	for ; s.vackCursor < s.nextSeq; s.vackCursor++ {
		st := s.seg(s.vackCursor)
		if st.inFlight == 0 {
			continue
		}
		st.inFlight--
		if s.pipe > 0 {
			s.pipe--
		}
		s.vackCursor++
		return
	}
}

func (s *Sender) onNewAck(ack int64) {
	s.backoff = 0
	// Retire acked segments from the pipe and take the RTT sample.
	for seq := s.highestAck; seq < ack; seq++ {
		st := s.seg(seq)
		if s.timing && seq == s.timedSeq {
			if !st.rtx {
				s.recordRTT(s.eng.Now() - s.timedAt)
			}
			s.timing = false
		}
		s.pipe -= int(st.inFlight)
		if !st.sacked {
			s.delivered++
		}
		*st = segState{} // the slot is free for seq+ringSize
	}
	if s.pipe < 0 {
		s.pipe = 0
	}
	acked := ack - s.highestAck
	s.highestAck = ack
	s.scoreboard.TrimBelow(ack)
	if s.lossScan < ack {
		s.lossScan = ack
	}

	// Growth and the recovery exit both belong to the congestion control,
	// but the exit ACK must not also count as a growth ACK (the pre-seam
	// code's if/else), so OnAck sees the recovery state from before the
	// exit was processed.
	wasInRecovery := s.inRecovery
	if s.inRecovery {
		if ack >= s.recover {
			s.inRecovery = false
			s.cc.OnExitRecovery(s.eng.Now())
			s.dupAcks = 0
		} else if s.cfg.NoSACK {
			// NewReno partial ACK: the next hole is the segment at the new
			// left edge; mark it lost so trySend retransmits it.
			st := s.seg(ack)
			if !st.lost && st.inFlight > 0 {
				st.lost = true
				s.pipe -= int(st.inFlight)
				st.inFlight = 0
				if s.pipe < 0 {
					s.pipe = 0
				}
			}
			if s.rtxCursor > ack {
				s.rtxCursor = ack
			}
		}
	} else {
		s.dupAcks = 0
	}
	s.cc.OnAck(AckInfo{
		Acked:      acked,
		Sacked:     s.sackedNow,
		Pipe:       s.pipe,
		Now:        s.eng.Now(),
		InRecovery: wasInRecovery,
	})

	if s.nextSeq > s.highestAck {
		s.armRTO()
	} else {
		s.rtoTimer.Cancel()
	}
	s.finishAck()
}

func (s *Sender) finishAck() {
	s.stats.BytesAcked = s.highestAck * int64(s.cfg.MSS)
	if s.limitSegments > 0 && s.highestAck >= s.limitSegments {
		s.stats.BytesAcked = s.limitSegments * int64(s.cfg.MSS)
		s.rtoTimer.Cancel()
		if s.done != nil {
			done := s.done
			s.done = nil
			done()
		}
	}
}

func (s *Sender) onDupAck() {
	if s.nextSeq == s.highestAck {
		return
	}
	s.stats.DupAcks++
	s.dupAcks++
	if s.cfg.NoSACK && s.inRecovery {
		// A dup ACK proves one more post-hole segment was delivered;
		// retire its in-flight copy via the virtual-ACK cursor so the
		// later cumulative ACK does not retire it a second time.
		s.virtualDeliver()
	}
	if s.cfg.NoSACK && !s.inRecovery && s.dupAcks >= dupThresh {
		// Loss of the left edge; maybeEnterRecovery (called by onAck)
		// performs the actual state change.
		st := s.seg(s.highestAck)
		if st.inFlight > 0 {
			st.lost = true
			s.pipe -= int(st.inFlight)
			st.inFlight = 0
			if s.pipe < 0 {
				s.pipe = 0
			}
		}
	}
	// No cumulative progress, but the SACK scoreboard may have moved:
	// delivery-model controls (BBR) account for it; window-based ones
	// ignore Acked == 0.
	s.cc.OnAck(AckInfo{
		Sacked:     s.sackedNow,
		Pipe:       s.pipe,
		Now:        s.eng.Now(),
		InRecovery: s.inRecovery,
	})
}
