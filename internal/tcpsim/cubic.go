package tcpsim

import "math"

// RFC 8312 constants: C scales the cubic curve; beta is the
// multiplicative-decrease factor (0.7, gentler than Reno's 0.5).
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// cubicCC implements CUBIC (RFC 8312), the window-growth function Linux
// has defaulted to since 2.6.19. After a loss at window W_max the window
// follows W_cubic(t) = C·(t−K)³ + W_max — concave while approaching the
// old maximum, a plateau around it, then convex probing beyond — where
// K = ∛(W_max·(1−β)/C) is the time the curve takes to climb back.
// Growth is therefore a function of *time since the loss*, not of RTT
// count, which is what detaches CUBIC throughput from the 1/RTT·√p
// PFTK form the paper's FB predictor assumes. Two RFC 8312 refinements
// are included: the TCP-friendly region (never grow slower than an
// ideal AIMD flow with the same β) and fast convergence (release
// bandwidth early when the loss point is drifting down).
type cubicCC struct {
	cwnd     float64
	ssthresh float64

	wMax       float64 // window at the last congestion event
	k          float64 // seconds from epoch start to reach wMax
	epochStart float64 // time the current growth epoch began; <0 = unset
	wEstRTT    float64 // SRTT mirror for the TCP-friendly estimate
}

func newCubic(cfg Config) *cubicCC {
	return &cubicCC{
		cwnd:       cfg.InitialCwnd,
		ssthresh:   cfg.InitialSsthresh,
		epochStart: -1,
	}
}

func (c *cubicCC) Name() Congestion  { return CCCubic }
func (c *cubicCC) Window() float64   { return c.cwnd }
func (c *cubicCC) Ssthresh() float64 { return c.ssthresh }

func (c *cubicCC) OnAck(info AckInfo) {
	if info.Acked == 0 || info.InRecovery {
		return
	}
	if c.cwnd < c.ssthresh {
		// Standard slow start below ssthresh, as RFC 8312 §4.8 keeps it.
		c.cwnd++
		if c.cwnd > c.ssthresh && !math.IsInf(c.ssthresh, 1) {
			c.cwnd = c.ssthresh
		}
		return
	}
	if c.epochStart < 0 {
		c.epochStart = info.Now
		if c.cwnd < c.wMax {
			c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
		} else {
			// No memory of a higher window: the curve starts at its
			// plateau and probes convexly from here.
			c.k = 0
			c.wMax = c.cwnd
		}
	}
	// Target the curve one RTT ahead (RFC 8312 §4.1's t+RTT), and close a
	// cwnd-th of the gap per ACK so a full window of ACKs reaches it.
	t := info.Now - c.epochStart + c.wEstRTT
	d := t - c.k
	target := cubicC*d*d*d + c.wMax
	if target > c.cwnd {
		maxTarget := 1.5 * c.cwnd // RFC 8312 §4.1 growth clamp
		if target > maxTarget {
			target = maxTarget
		}
		c.cwnd += (target - c.cwnd) / c.cwnd
	} else {
		// At or above the curve: probe minimally so the epoch clock still
		// eventually lifts the window (Linux's 1/(100·cwnd) tick).
		c.cwnd += 1 / (100 * c.cwnd)
	}
	// TCP-friendly region (RFC 8312 §4.2): an AIMD flow with β = 0.7
	// grows 3(1−β)/(1+β) segments per RTT; never undershoot it.
	if c.wEstRTT > 0 {
		wEst := c.wMax*cubicBeta + 3*(1-cubicBeta)/(1+cubicBeta)*(t/c.wEstRTT)
		if wEst > c.cwnd {
			c.cwnd = wEst
		}
	}
}

func (c *cubicCC) OnRTT(rtt, now float64) { c.wEstRTT = rtt }

func (c *cubicCC) OnEnterRecovery(pipe int, now float64) {
	c.epochStart = -1
	if c.cwnd < c.wMax {
		// Fast convergence: the achievable window is shrinking, so
		// remember a point below the current one to free bandwidth for
		// the newcomer that is squeezing us.
		c.wMax = c.cwnd * (2 - cubicBeta) / 2
	} else {
		c.wMax = c.cwnd
	}
	next := c.cwnd * cubicBeta
	if next < 2 {
		next = 2
	}
	c.ssthresh = next
	c.cwnd = next
}

func (c *cubicCC) OnExitRecovery(now float64) { c.cwnd = c.ssthresh }

func (c *cubicCC) OnTimeout(now float64) {
	c.epochStart = -1
	if c.cwnd < c.wMax {
		c.wMax = c.cwnd * (2 - cubicBeta) / 2
	} else {
		c.wMax = c.cwnd
	}
	next := c.cwnd * cubicBeta
	if next < 2 {
		next = 2
	}
	c.ssthresh = next
	c.cwnd = 1
}
