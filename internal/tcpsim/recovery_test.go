package tcpsim_test

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// dropper forwards packets to next but discards burstLen consecutive data
// packets out of every period data packets — a deterministic burst-loss
// process, the hardest case for non-SACK recovery.
type dropper struct {
	next     netem.Receiver
	period   int
	burstLen int
	count    int
	dropped  int
}

func (d *dropper) Receive(pkt *netem.Packet) {
	if pkt.Kind == netem.KindData {
		d.count++
		// Let slow start establish itself before the first burst, then
		// drop burstLen packets out of every period.
		if d.count > d.period {
			pos := d.count % d.period
			if pos > 0 && pos <= d.burstLen {
				d.dropped++
				return
			}
		}
	}
	d.next.Receive(pkt)
}

// runBurstLoss runs a 40 s bulk transfer through a deterministic
// burst dropper and returns throughput and timeout count.
func runBurstLoss(t *testing.T, noSACK bool, burstLen, period int) (tputBps float64, timeouts int64) {
	t.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	path := netem.NewPath(eng, rng, netem.PathSpec{
		Name: "burst",
		Forward: []netem.Hop{
			{CapacityBps: 10e6, PropDelay: 0.03, BufferBytes: 1 << 20},
		},
	})
	conn := tcpsim.Dial(eng, path, 1, tcpsim.Config{NoSACK: noSACK})
	// Interpose the dropper in front of the receiver's registered handler.
	d := &dropper{next: path.B.Handler(1), period: period, burstLen: burstLen}
	path.B.Register(1, d)
	conn.Sender.Start()
	eng.RunUntil(40)
	st := conn.Sender.Stats()
	conn.Stop()
	if d.dropped == 0 {
		t.Fatal("dropper never fired")
	}
	return float64(st.BytesAcked) * 8 / 40, st.Timeouts
}

// TestSACKBeatsNewRenoOnBurstLoss: with several losses per window, SACK
// retransmits all holes within one recovery episode; NewReno retransmits
// one hole per RTT and falls back to RTOs, costing throughput.
func TestSACKBeatsNewRenoOnBurstLoss(t *testing.T) {
	sackTput, sackTO := runBurstLoss(t, false, 8, 400)
	renoTput, renoTO := runBurstLoss(t, true, 8, 400)
	t.Logf("SACK: %.2f Mbps, %d timeouts; NewReno: %.2f Mbps, %d timeouts",
		sackTput/1e6, sackTO, renoTput/1e6, renoTO)
	if sackTput <= renoTput {
		t.Errorf("SACK (%.2f Mbps) should outperform NewReno (%.2f Mbps) under burst loss",
			sackTput/1e6, renoTput/1e6)
	}
	if sackTO > renoTO {
		t.Errorf("SACK had more timeouts (%d) than NewReno (%d)", sackTO, renoTO)
	}
}

// TestSingleLossBothRecover: an isolated loss per window is the easy case;
// both variants must recover without a timeout and at similar throughput.
func TestSingleLossBothRecover(t *testing.T) {
	sackTput, sackTO := runBurstLoss(t, false, 1, 500)
	renoTput, renoTO := runBurstLoss(t, true, 1, 500)
	t.Logf("SACK: %.2f Mbps, %d timeouts; NewReno: %.2f Mbps, %d timeouts",
		sackTput/1e6, sackTO, renoTput/1e6, renoTO)
	if sackTO > 1 || renoTO > 1 {
		t.Errorf("isolated losses should not cause timeouts (SACK %d, NewReno %d)", sackTO, renoTO)
	}
	ratio := sackTput / renoTput
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("throughput ratio %.2f for isolated losses, want ≈1", ratio)
	}
}

// TestDelayedAckTimerFires: a sender that stops at an odd segment count
// must still get the final segment acknowledged via the delayed-ACK timer.
func TestDelayedAckTimerFires(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	path := netem.NewPath(eng, rng, netem.PathSpec{
		Name: "delack",
		Forward: []netem.Hop{
			{CapacityBps: 10e6, PropDelay: 0.01, BufferBytes: 1 << 20},
		},
	})
	conn := tcpsim.Dial(eng, path, 1, tcpsim.Config{DelayedAck: true})
	done := false
	conn.Sender.SetLimit(1460, func() { done = true }) // exactly one segment
	conn.Sender.Start()
	eng.RunUntil(5)
	if !done {
		t.Error("single-segment transfer not acknowledged (delayed-ACK timer failed)")
	}
	conn.Stop()
}

// TestHandlerInterposition double-checks Endpoint.Handler returns the live
// receiver so wrappers see every packet.
func TestHandlerInterposition(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	path := netem.NewPath(eng, rng, netem.PathSpec{
		Name: "h",
		Forward: []netem.Hop{
			{CapacityBps: 10e6, PropDelay: 0.01, BufferBytes: 1 << 20},
		},
	})
	if path.B.Handler(1) != nil {
		t.Fatal("unexpected pre-registered handler")
	}
	conn := tcpsim.Dial(eng, path, 1, tcpsim.Config{})
	if path.B.Handler(1) == nil {
		t.Fatal("receiver did not register itself")
	}
	seen := 0
	inner := path.B.Handler(1)
	path.B.Register(1, netem.ReceiverFunc(func(pkt *netem.Packet) {
		seen++
		inner.Receive(pkt)
	}))
	conn.Sender.SetLimit(10*1460, nil)
	conn.Sender.Start()
	eng.RunUntil(5)
	if seen < 10 {
		t.Errorf("wrapper saw %d packets, want ≥10", seen)
	}
	conn.Stop()
}

// TestTCPSurvivesReordering: mild reordering must not collapse throughput
// (SACK + dupThresh absorb it), even though it causes some spurious
// retransmissions.
func TestTCPSurvivesReordering(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	path := netem.NewPath(eng, rng, netem.PathSpec{
		Name: "reorder",
		Forward: []netem.Hop{
			{CapacityBps: 10e6, PropDelay: 0.03, BufferBytes: 1 << 20},
		},
	})
	// A displacement of 1-2 packets (2 ms at 10 Mbps) stays below the
	// three-dup-ACK threshold; larger displacements legitimately trigger
	// spurious recoveries (the known FACK reordering intolerance).
	path.Fwd[0].ReorderProb = 0.02
	path.Fwd[0].ReorderDelay = 0.002
	conn := tcpsim.Dial(eng, path, 1, tcpsim.Config{})
	conn.Sender.Start()
	eng.RunUntil(30)
	st := conn.Sender.Stats()
	conn.Stop()
	tput := float64(st.BytesAcked) * 8 / 30
	t.Logf("2%% reordering: %.2f Mbps, %d rtx, %d timeouts", tput/1e6, st.Retransmits, st.Timeouts)
	if tput < 5e6 {
		t.Errorf("throughput %.2f Mbps collapsed under 1-2 packet reordering", tput/1e6)
	}
}
