package campaign

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunnerSinkOrdered: with a Sink set, every result arrives exactly
// once, in strict job-index order, even when completion order is
// scrambled — and the returned slice keeps metadata but not Values.
func TestRunnerSinkOrdered(t *testing.T) {
	jobs := makeJobs(24)
	var got []Result[int]
	r := &Runner[int]{
		Parallelism: 6,
		Sink:        func(res Result[int]) { got = append(got, res) },
	}
	results, err := r.Run(context.Background(), jobs, func(ctx context.Context, job Job, rep *Reporter) (int, error) {
		// Vary the work so completion order differs from job order.
		time.Sleep(time.Duration((23-job.Index)%5) * time.Millisecond)
		return job.Index*10 + 1, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("sink saw %d results, want %d", len(got), len(jobs))
	}
	for i, res := range got {
		if res.Job.Index != i {
			t.Fatalf("sink result %d carries job %d: delivery out of order", i, res.Job.Index)
		}
		if res.Value != i*10+1 || res.Err != nil {
			t.Errorf("sink result %d = (%d, %v), want (%d, nil)", i, res.Value, res.Err, i*10+1)
		}
	}
	for i, res := range results {
		if res.Value != 0 {
			t.Errorf("returned result %d retains Value %d; sink mode must strip payloads", i, res.Value)
		}
		if res.Job.Index != i || res.Attempts != 1 {
			t.Errorf("returned result %d lost its metadata: %+v", i, res)
		}
	}
}

// TestRunnerSinkCancelled: cancelling mid-campaign still delivers every
// job to the sink exactly once and in order — completed ones with their
// values, undispatched ones with the context error.
func TestRunnerSinkCancelled(t *testing.T) {
	jobs := makeJobs(40)
	ctx, cancel := context.WithCancel(context.Background())
	var delivered []Result[int]
	var ran atomic.Int32
	r := &Runner[int]{
		Parallelism: 4,
		Sink:        func(res Result[int]) { delivered = append(delivered, res) },
	}
	_, err := r.Run(ctx, jobs, func(ctx context.Context, job Job, rep *Reporter) (int, error) {
		if ran.Add(1) == 8 {
			cancel()
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(time.Millisecond):
		}
		return job.Index, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	if len(delivered) != len(jobs) {
		t.Fatalf("sink saw %d results, want %d (exactly once per job)", len(delivered), len(jobs))
	}
	completed, skipped := 0, 0
	for i, res := range delivered {
		if res.Job.Index != i {
			t.Fatalf("sink result %d carries job %d: delivery out of order", i, res.Job.Index)
		}
		switch {
		case res.Err == nil:
			completed++
		case res.Attempts == 0 && errors.Is(res.Err, context.Canceled):
			skipped++
		case isContextErr(res.Err):
			// Dispatched but aborted mid-run: also fine.
		default:
			t.Errorf("unexpected result %d: %+v", i, res)
		}
	}
	if completed == 0 || skipped == 0 {
		t.Errorf("want a mix of completed (%d) and skipped (%d) jobs", completed, skipped)
	}
}
