// Package campaign is the execution layer for measurement campaigns: it
// schedules independent trace jobs onto a bounded worker pool, plumbs
// context cancellation through them, isolates per-job faults (a panic in
// one job's simulation engine fails only that job, optionally retried with
// the same seed), and surfaces progress through an Observer.
//
// The package is deliberately generic — it knows about jobs, seeds and
// epochs, not about datasets — so the testbed layer builds on it without
// an import cycle, and future backends (sharded campaigns, remote
// collection) can reuse the same scheduling and observability machinery.
//
// Determinism contract: results are assembled by job index, never by
// completion order, so for jobs that are themselves deterministic in
// (Job, seed) the output is byte-identical regardless of Parallelism.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Job identifies one schedulable unit of a campaign — typically one trace
// on one path. Index is the job's slot in the result slice; Seed is the
// job's private RNG seed (retries reuse it, so a retried job replays the
// exact same simulation).
type Job struct {
	Index  int    // position in the campaign's job list and result slice
	Path   string // path name, for labelling and observers
	Trace  int    // trace index on the path
	Seed   int64  // private seed; identical across retries
	Epochs int    // expected epochs, for progress/ETA (0 if unknown)
}

func (j Job) String() string { return fmt.Sprintf("%s#%d", j.Path, j.Trace) }

// PanicError is the error a recovered job panic is converted into.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // stack trace captured at recovery
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// JobError describes one failed job with its identity attached, so a
// campaign report can say exactly which path/trace/seed to replay.
type JobError struct {
	Job      Job
	Attempts int // how many times the job was tried
	Err      error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("campaign: job %s (seed %d, attempt %d): %v", e.Job, e.Job.Seed, e.Attempts, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// Result is the outcome of one job. Value is meaningful only when Err is
// nil. Skipped jobs (campaign cancelled before they started) carry the
// context's error and zero Attempts.
type Result[T any] struct {
	Job      Job
	Value    T
	Err      error
	Attempts int
	Wall     time.Duration // wall-clock time spent across all attempts
	Events   uint64        // simulation events reported via Reporter.Epoch
	VirtualS float64       // virtual seconds reported via Reporter.Epoch
}

// Func executes one job. It must honour ctx (abort between epochs and
// return ctx.Err()) and report per-epoch progress through rep. The same
// function may run concurrently for different jobs; each invocation must
// keep its state private (one simulation engine per job).
type Func[T any] func(ctx context.Context, job Job, rep *Reporter) (T, error)

// Runner executes a campaign's jobs on a worker pool.
type Runner[T any] struct {
	// Parallelism is the number of concurrent workers; <= 0 means
	// GOMAXPROCS.
	Parallelism int

	// Retries is how many times a failed job is re-run (with the same
	// seed) before its error is recorded. Context errors are never
	// retried.
	Retries int

	// Observer receives lifecycle and progress callbacks. Nil means no
	// observation. Callbacks may fire concurrently from worker
	// goroutines; the observers in this package serialize internally.
	Observer Observer

	// Sink, when non-nil, switches the runner to streaming delivery:
	// every Result is handed to Sink exactly once, in strict job-index
	// order, and the slice Run returns carries the same Results with
	// their Values zeroed — the sink is the only holder of job payloads,
	// which is what keeps a 10k-job campaign at constant RSS. The reorder
	// buffer applies backpressure: a worker whose result is more than
	// ~2×Parallelism jobs ahead of the delivery cursor blocks until the
	// sink catches up, so a slow sink bounds memory instead of growing a
	// backlog. Sink is called from worker goroutines but never
	// concurrently with itself; it must not call back into the Runner.
	Sink func(Result[T])
}

// reorder delivers results to a Sink in job-index order no matter what
// order workers complete them in. Out-of-order results wait in pending,
// whose size is capped at window: a worker trying to park a result too
// far ahead of the delivery cursor waits on cond, which turns a slow
// sink into backpressure on the whole pool rather than an unbounded
// parked-results backlog. The worker owning index next is always inside
// the window, so delivery — and therefore every waiter — makes progress.
type reorder[T any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	next    int
	window  int
	pending map[int]Result[T]
	sink    func(Result[T])
}

func newReorder[T any](window int, sink func(Result[T])) *reorder[T] {
	ro := &reorder[T]{window: window, pending: make(map[int]Result[T]), sink: sink}
	ro.cond = sync.NewCond(&ro.mu)
	return ro
}

func (ro *reorder[T]) deliver(idx int, res Result[T]) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	for idx >= ro.next+ro.window {
		ro.cond.Wait()
	}
	ro.pending[idx] = res
	for {
		r, ok := ro.pending[ro.next]
		if !ok {
			return
		}
		delete(ro.pending, ro.next)
		ro.next++
		ro.cond.Broadcast()
		ro.sink(r)
	}
}

// Run executes all jobs and returns one Result per job, in job order
// (not completion order). Individual job failures do not fail the run;
// they are recorded in their Result and reported to the Observer. The
// returned error is non-nil only when ctx was cancelled or its deadline
// exceeded, in which case results for already-completed jobs are still
// returned (partial-campaign semantics). With a Sink set, results are
// additionally streamed to it in job order and the returned slice keeps
// only the metadata (Values zeroed).
func (r *Runner[T]) Run(ctx context.Context, jobs []Job, fn Func[T]) ([]Result[T], error) {
	workers := r.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	obs := r.Observer
	if obs == nil {
		obs = NopObserver{}
	}

	totalEpochs := 0
	for _, j := range jobs {
		totalEpochs += j.Epochs
	}
	obs.CampaignStarted(len(jobs), totalEpochs)

	var ro *reorder[T]
	if r.Sink != nil {
		ro = newReorder(2*workers+1, r.Sink)
	}

	results := make([]Result[T], len(jobs))
	feed := make(chan int)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range feed {
				res := r.runJob(ctx, jobs[idx], fn, obs)
				if ro != nil {
					ro.deliver(idx, res)
					var zero T
					res.Value = zero // the sink owns the payload
				}
				results[idx] = res
			}
		}()
	}

	sent := len(jobs)
dispatch:
	for i := range jobs {
		select {
		case feed <- i:
		case <-ctx.Done():
			sent = i
			break dispatch
		}
	}
	close(feed)
	wg.Wait()

	// Jobs never dispatched carry the context error so callers can tell
	// them apart from completed work; in sink mode they flow through the
	// reorder buffer too, keeping the exactly-once-in-order contract.
	if err := ctx.Err(); err != nil {
		for i := sent; i < len(jobs); i++ {
			res := Result[T]{Job: jobs[i], Err: err}
			if ro != nil {
				ro.deliver(i, res)
			}
			results[i] = res
		}
		// Dispatched jobs that aborted before their first attempt were
		// already recorded (and delivered) by runJob with Attempts == 0.
	}

	sum := Summary{Jobs: len(jobs), Wall: time.Since(start)}
	for _, res := range results {
		switch {
		case res.Attempts == 0:
			sum.Skipped++
		case res.Err != nil:
			sum.Failed++
		default:
			sum.Completed++
		}
		if res.Attempts > 1 {
			sum.Retried++
		}
		sum.Events += res.Events
		sum.VirtualS += res.VirtualS
	}
	obs.CampaignFinished(sum)
	return results, ctx.Err()
}

// runJob executes one job with panic isolation and retries.
func (r *Runner[T]) runJob(ctx context.Context, job Job, fn Func[T], obs Observer) Result[T] {
	res := Result[T]{Job: job}
	start := time.Now()
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			// Keep Attempts at the tried count: 0 means "never started".
			res.Err = err
			break
		}
		res.Attempts = attempt
		obs.TraceStarted(job, attempt)
		rep := &Reporter{obs: obs, job: job}
		val, err := protect(ctx, job, rep, fn)
		res.Value, res.Err = val, err
		res.Events += rep.events
		if rep.virtual > res.VirtualS {
			res.VirtualS = rep.virtual
		}
		obs.TraceFinished(job, err, attempt, time.Since(start))
		if err == nil || attempt > r.Retries || isContextErr(err) || ctx.Err() != nil {
			break
		}
	}
	res.Wall = time.Since(start)
	if res.Err != nil && res.Attempts > 0 && !isContextErr(res.Err) {
		if _, ok := res.Err.(*JobError); !ok {
			res.Err = &JobError{Job: job, Attempts: res.Attempts, Err: res.Err}
		}
	}
	return res
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// protect runs fn converting a panic into a *PanicError, so one trace
// blowing up inside its simulation engine cannot take the process down.
func protect[T any](ctx context.Context, job Job, rep *Reporter, fn Func[T]) (val T, err error) {
	defer func() {
		if p := recover(); p != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Value: p, Stack: buf}
		}
	}()
	return fn(ctx, job, rep)
}

// Reporter is the per-job handle through which a running job reports
// progress. It is created by the Runner; methods are safe to call from
// the job's goroutine only.
type Reporter struct {
	obs     Observer
	job     Job
	events  uint64
	virtual float64
}

// Epoch reports that one measurement epoch finished: its index, the
// engine's virtual clock, and the number of simulation events the epoch
// processed (a per-segment delta, not a cumulative count).
func (r *Reporter) Epoch(epoch int, virtualTime float64, events uint64) {
	if r == nil {
		return
	}
	r.events += events
	r.virtual = virtualTime
	r.obs.EpochDone(r.job, epoch, virtualTime, events)
}
