package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress is a terminal Observer: it repaints a single status line with
// trace counts, epoch completion, epoch and event rates, and an ETA, and
// prints one full line per failed trace. Safe for concurrent use.
type Progress struct {
	W io.Writer
	// MinInterval throttles repaints (default 200 ms).
	MinInterval time.Duration

	mu          sync.Mutex
	start       time.Time
	totalJobs   int
	totalEpochs int
	doneJobs    int
	failedJobs  int
	doneEpochs  int
	events      uint64
	lastDraw    time.Time
	lineLen     int
}

// NewProgress returns a terminal progress observer writing to w.
func NewProgress(w io.Writer) *Progress { return &Progress{W: w} }

func (p *Progress) CampaignStarted(jobs, epochs int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.start = time.Now()
	p.totalJobs, p.totalEpochs = jobs, epochs
	p.draw(true)
}

func (p *Progress) TraceStarted(job Job, attempt int) {
	if attempt <= 1 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.println(fmt.Sprintf("retrying trace %s (seed %d, attempt %d)", job, job.Seed, attempt))
}

func (p *Progress) EpochDone(job Job, epoch int, vt float64, events uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.doneEpochs++
	p.events += events
	p.draw(false)
}

func (p *Progress) TraceFinished(job Job, err error, attempt int, wall time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		// A retry will follow unless this was the last attempt, but
		// failures are rare enough that reporting each attempt beats
		// guessing the runner's retry budget here.
		p.println(fmt.Sprintf("trace %s failed after %v: %v", job, wall.Round(time.Millisecond), err))
		p.failedJobs++
		return
	}
	p.doneJobs++
	if attempt > 1 {
		// The earlier attempt was counted as failed; the retry redeemed it.
		p.failedJobs--
	}
	p.draw(true)
}

func (p *Progress) CampaignFinished(sum Summary) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clearLine()
	msg := fmt.Sprintf("campaign: %d/%d traces ok", sum.Completed, sum.Jobs)
	if sum.Failed > 0 {
		msg += fmt.Sprintf(", %d failed", sum.Failed)
	}
	if sum.Skipped > 0 {
		msg += fmt.Sprintf(", %d skipped", sum.Skipped)
	}
	if sum.Retried > 0 {
		msg += fmt.Sprintf(", %d retried", sum.Retried)
	}
	wall := sum.Wall.Seconds()
	if wall > 0 && sum.Events > 0 {
		msg += fmt.Sprintf(" | %.2g events (%.2g ev/s, %.0fx real time)",
			float64(sum.Events), float64(sum.Events)/wall, sum.VirtualS/wall)
	}
	msg += fmt.Sprintf(" in %v", sum.Wall.Round(time.Millisecond))
	fmt.Fprintln(p.W, msg)
}

// draw repaints the status line; force skips the throttle.
func (p *Progress) draw(force bool) {
	min := p.MinInterval
	if min == 0 {
		min = 200 * time.Millisecond
	}
	now := time.Now()
	if !force && now.Sub(p.lastDraw) < min {
		return
	}
	p.lastDraw = now
	elapsed := now.Sub(p.start).Seconds()

	line := fmt.Sprintf("traces %d/%d", p.doneJobs, p.totalJobs)
	if p.failedJobs > 0 {
		line += fmt.Sprintf(" (%d failed)", p.failedJobs)
	}
	if p.totalEpochs > 0 {
		line += fmt.Sprintf(" | epochs %d/%d (%.0f%%)", p.doneEpochs, p.totalEpochs,
			100*float64(p.doneEpochs)/float64(p.totalEpochs))
	} else {
		line += fmt.Sprintf(" | epochs %d", p.doneEpochs)
	}
	if elapsed > 0 && p.doneEpochs > 0 {
		rate := float64(p.doneEpochs) / elapsed
		line += fmt.Sprintf(" | %.1f ep/s | %.2g ev/s", rate, float64(p.events)/elapsed)
		if remaining := p.totalEpochs - p.doneEpochs; remaining > 0 && p.totalEpochs > 0 {
			eta := time.Duration(float64(remaining) / rate * float64(time.Second)).Round(time.Second)
			line += fmt.Sprintf(" | ETA %v", eta)
		}
	}

	pad := ""
	if n := p.lineLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(p.W, "\r%s%s", line, pad)
	p.lineLen = len(line)
}

// println clears the status line, prints msg on its own line, and redraws.
func (p *Progress) println(msg string) {
	p.clearLine()
	fmt.Fprintln(p.W, msg)
	p.draw(true)
}

func (p *Progress) clearLine() {
	if p.lineLen > 0 {
		fmt.Fprintf(p.W, "\r%s\r", strings.Repeat(" ", p.lineLen))
		p.lineLen = 0
	}
}

// JSONL is a machine-readable Observer: one JSON object per line per
// event, suitable for piping into analysis tooling or a log collector.
// Epoch events are sampled via EveryEpoch (default 1 = every epoch).
type JSONL struct {
	W io.Writer
	// EveryEpoch emits only every n-th epoch event per trace (plus the
	// trace's last epoch implicitly via trace_finished). 0 means 1.
	EveryEpoch int

	mu    sync.Mutex
	start time.Time
	enc   *json.Encoder
}

// NewJSONL returns a JSON-lines observer writing to w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{W: w} }

type jsonlEvent struct {
	Event    string  `json:"event"`
	Elapsed  float64 `json:"elapsed_s"` // wall seconds since campaign start
	Path     string  `json:"path,omitempty"`
	Trace    int     `json:"trace,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Attempt  int     `json:"attempt,omitempty"`
	Epoch    int     `json:"epoch,omitempty"`
	Virtual  float64 `json:"virtual_s,omitempty"`
	Events   uint64  `json:"events,omitempty"`
	Error    string  `json:"error,omitempty"`
	Jobs     int     `json:"jobs,omitempty"`
	Epochs   int     `json:"epochs,omitempty"`
	Done     int     `json:"completed,omitempty"`
	Failed   int     `json:"failed,omitempty"`
	Skipped  int     `json:"skipped,omitempty"`
	Retried  int     `json:"retried,omitempty"`
	VirtualT float64 `json:"virtual_total_s,omitempty"`
}

func (j *JSONL) emit(ev jsonlEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.enc == nil {
		j.enc = json.NewEncoder(j.W)
	}
	if j.start.IsZero() {
		j.start = time.Now()
	}
	ev.Elapsed = time.Since(j.start).Seconds()
	_ = j.enc.Encode(ev) // a broken sink must not abort the campaign
}

func (j *JSONL) CampaignStarted(jobs, epochs int) {
	j.emit(jsonlEvent{Event: "campaign_started", Jobs: jobs, Epochs: epochs})
}

func (j *JSONL) TraceStarted(job Job, attempt int) {
	j.emit(jsonlEvent{Event: "trace_started", Path: job.Path, Trace: job.Trace, Seed: job.Seed, Attempt: attempt})
}

func (j *JSONL) EpochDone(job Job, epoch int, vt float64, events uint64) {
	if every := j.EveryEpoch; every > 1 && epoch%every != 0 {
		return
	}
	j.emit(jsonlEvent{Event: "epoch", Path: job.Path, Trace: job.Trace, Epoch: epoch, Virtual: vt, Events: events})
}

func (j *JSONL) TraceFinished(job Job, err error, attempt int, wall time.Duration) {
	ev := jsonlEvent{Event: "trace_finished", Path: job.Path, Trace: job.Trace, Seed: job.Seed, Attempt: attempt}
	if err != nil {
		ev.Error = err.Error()
	}
	j.emit(ev)
}

func (j *JSONL) CampaignFinished(sum Summary) {
	j.emit(jsonlEvent{
		Event: "campaign_finished", Jobs: sum.Jobs, Done: sum.Completed,
		Failed: sum.Failed, Skipped: sum.Skipped, Retried: sum.Retried,
		Events: sum.Events, VirtualT: sum.VirtualS,
	})
}
