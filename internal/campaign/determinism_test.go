// Determinism and cancellation tests for the campaign runner driving the
// real testbed. This is an external test package, so it may depend on
// testbed (which itself builds on campaign) without an import cycle.
package campaign_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/testbed"
)

// shrunkDefaultScaled is DefaultScaled cut down to a few seconds of wall
// time while keeping its shape: multiple paths, classes, and traces per
// path, so parallel scheduling has real interleaving to get wrong.
func shrunkDefaultScaled(seed int64) testbed.RunConfig {
	cfg := testbed.DefaultScaled(seed)
	cfg.Catalog.NumPaths = 4
	cfg.Catalog.NumDSL = 1
	cfg.Catalog.NumTrans = 1
	cfg.Catalog.NumKorea = 0
	cfg.TracesPerPath = 2
	cfg.EpochsPerTrace = 3
	cfg.PingDuration = 8
	cfg.TransferSec = 6
	cfg.EpochGap = 2
	cfg.SmallTransferSec = 4
	return cfg
}

// TestRunDeterministicAcrossParallelism: byte-identical datasets whether
// traces run serially or eight wide.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign; skipped in -short mode")
	}
	serial := shrunkDefaultScaled(3)
	serial.Parallelism = 1
	wide := shrunkDefaultScaled(3)
	wide.Parallelism = 8

	a, err := testbed.CollectContext(context.Background(), serial)
	if err != nil {
		t.Fatalf("serial campaign: %v", err)
	}
	b, err := testbed.CollectContext(context.Background(), wide)
	if err != nil {
		t.Fatalf("parallel campaign: %v", err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("datasets differ between Parallelism 1 and 8: %d vs %d traces", len(a.Traces), len(b.Traces))
	}
	if len(a.Traces) != 4*2 {
		t.Fatalf("campaign produced %d traces, want 8", len(a.Traces))
	}
}

// cancelAfterEpochs cancels the campaign once it has seen n epoch events.
type cancelAfterEpochs struct {
	campaign.NopObserver
	mu     sync.Mutex
	n      int
	cancel context.CancelFunc
}

func (c *cancelAfterEpochs) EpochDone(job campaign.Job, epoch int, vt float64, events uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
	if c.n == 0 {
		c.cancel()
	}
}

// TestRunCancellationPartialDataset cancels mid-campaign and checks the
// contract: completed traces survive, the in-flight trace is dropped at
// an epoch boundary, and the error is ctx.Err().
func TestRunCancellationPartialDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign; skipped in -short mode")
	}
	cfg := shrunkDefaultScaled(5)
	cfg.Parallelism = 1
	obs := &cancelAfterEpochs{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel partway through the second trace (epochs are 3 per trace).
	obs.n = cfg.EpochsPerTrace + 1
	obs.cancel = cancel
	cfg.Observer = obs

	ds, err := testbed.CollectContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ds.Traces) != 1 {
		t.Fatalf("partial dataset has %d traces, want 1", len(ds.Traces))
	}
	if got := len(ds.Traces[0].Records); got != cfg.EpochsPerTrace {
		t.Errorf("completed trace has %d records, want %d", got, cfg.EpochsPerTrace)
	}
}

// TestRunDeadline: a context deadline aborts the campaign and still
// returns whatever completed, with context.DeadlineExceeded.
func TestRunDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign; skipped in -short mode")
	}
	cfg := shrunkDefaultScaled(7)
	cfg.EpochsPerTrace = 40 // long enough that the deadline always wins
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := testbed.CollectContext(ctx, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
