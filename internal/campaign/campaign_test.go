package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func makeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Index: i, Path: fmt.Sprintf("p%d", i), Trace: 0, Seed: int64(i + 1), Epochs: 4}
	}
	return jobs
}

func TestRunnerAssemblesInJobOrder(t *testing.T) {
	jobs := makeJobs(20)
	r := &Runner[int]{Parallelism: 7}
	results, err := r.Run(context.Background(), jobs, func(ctx context.Context, job Job, rep *Reporter) (int, error) {
		// Vary the work so completion order differs from job order.
		time.Sleep(time.Duration(19-job.Index) * time.Millisecond)
		return job.Index * 10, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, res := range results {
		if res.Err != nil || res.Value != i*10 {
			t.Errorf("result %d = (%d, %v), want (%d, nil)", i, res.Value, res.Err, i*10)
		}
		if res.Job.Index != i {
			t.Errorf("result %d carries job %d", i, res.Job.Index)
		}
	}
}

func TestRunnerPanicIsolation(t *testing.T) {
	jobs := makeJobs(6)
	r := &Runner[string]{Parallelism: 3}
	results, err := r.Run(context.Background(), jobs, func(ctx context.Context, job Job, rep *Reporter) (string, error) {
		if job.Index == 2 {
			panic("engine blew up")
		}
		return job.Path, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, res := range results {
		if i == 2 {
			if res.Err == nil {
				t.Fatal("panicking job reported no error")
			}
			var je *JobError
			if !errors.As(res.Err, &je) {
				t.Fatalf("error %T, want *JobError", res.Err)
			}
			if je.Job.Path != "p2" || je.Job.Seed != 3 {
				t.Errorf("JobError identity = %s seed %d", je.Job, je.Job.Seed)
			}
			var pe *PanicError
			if !errors.As(res.Err, &pe) {
				t.Fatalf("error does not wrap *PanicError: %v", res.Err)
			}
			if pe.Value != "engine blew up" || len(pe.Stack) == 0 {
				t.Errorf("PanicError = %v (stack %d bytes)", pe.Value, len(pe.Stack))
			}
			continue
		}
		if res.Err != nil {
			t.Errorf("healthy job %d failed: %v", i, res.Err)
		}
	}
}

func TestRunnerRetrySameSeed(t *testing.T) {
	jobs := makeJobs(3)
	var mu sync.Mutex
	seen := map[int][]int64{} // job index -> seeds per attempt
	r := &Runner[int]{Parallelism: 2, Retries: 1}
	results, err := r.Run(context.Background(), jobs, func(ctx context.Context, job Job, rep *Reporter) (int, error) {
		mu.Lock()
		seen[job.Index] = append(seen[job.Index], job.Seed)
		attempt := len(seen[job.Index])
		mu.Unlock()
		if job.Index == 1 && attempt == 1 {
			panic("transient")
		}
		return attempt, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if results[1].Err != nil {
		t.Fatalf("retried job still failed: %v", results[1].Err)
	}
	if results[1].Attempts != 2 || results[1].Value != 2 {
		t.Errorf("attempts = %d value = %d, want 2/2", results[1].Attempts, results[1].Value)
	}
	if s := seen[1]; len(s) != 2 || s[0] != s[1] {
		t.Errorf("retry did not reuse the seed: %v", s)
	}
}

func TestRunnerRetryExhaustion(t *testing.T) {
	jobs := makeJobs(1)
	calls := 0
	r := &Runner[int]{Parallelism: 1, Retries: 2}
	results, err := r.Run(context.Background(), jobs, func(ctx context.Context, job Job, rep *Reporter) (int, error) {
		calls++
		return 0, fmt.Errorf("persistent failure")
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3 (1 + 2 retries)", calls)
	}
	if results[0].Err == nil || results[0].Attempts != 3 {
		t.Errorf("result = %+v, want failure after 3 attempts", results[0])
	}
}

func TestRunnerCancellation(t *testing.T) {
	jobs := makeJobs(30)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	r := &Runner[int]{Parallelism: 2}
	results, err := r.Run(ctx, jobs, func(ctx context.Context, job Job, rep *Reporter) (int, error) {
		n := started.Add(1)
		if n == 4 {
			cancel()
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		default:
		}
		return 1, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	completed, skipped := 0, 0
	for _, res := range results {
		switch {
		case res.Err == nil:
			completed++
		case res.Attempts == 0:
			if !errors.Is(res.Err, context.Canceled) {
				t.Errorf("skipped job carries %v", res.Err)
			}
			skipped++
		}
	}
	if completed == 0 {
		t.Error("no jobs completed before cancellation")
	}
	if skipped == 0 {
		t.Error("no jobs were skipped after cancellation")
	}
	if completed == len(jobs) {
		t.Error("all jobs completed despite cancellation")
	}
}

func TestRunnerContextErrorNotRetried(t *testing.T) {
	jobs := makeJobs(1)
	calls := 0
	r := &Runner[int]{Parallelism: 1, Retries: 5}
	_, _ = r.Run(context.Background(), jobs, func(ctx context.Context, job Job, rep *Reporter) (int, error) {
		calls++
		return 0, fmt.Errorf("trace aborted: %w", context.Canceled)
	})
	if calls != 1 {
		t.Errorf("context error was retried %d times", calls-1)
	}
}

// countingObserver records callback counts for assertion.
type countingObserver struct {
	mu                               sync.Mutex
	started, epochs, finished, calls int
	events                           uint64
	sum                              Summary
}

func (c *countingObserver) CampaignStarted(jobs, epochs int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
}

func (c *countingObserver) TraceStarted(Job, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started++
}

func (c *countingObserver) EpochDone(j Job, ep int, vt float64, events uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epochs++
	c.events += events
}

func (c *countingObserver) TraceFinished(Job, error, int, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finished++
}

func (c *countingObserver) CampaignFinished(sum Summary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sum = sum
}

func TestObserverSeesEpochsAndSummary(t *testing.T) {
	jobs := makeJobs(4)
	obs := &countingObserver{}
	r := &Runner[int]{Parallelism: 4, Observer: obs}
	_, err := r.Run(context.Background(), jobs, func(ctx context.Context, job Job, rep *Reporter) (int, error) {
		for ep := 0; ep < job.Epochs; ep++ {
			rep.Epoch(ep, float64(ep+1)*10, 100)
		}
		return 0, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if obs.started != 4 || obs.finished != 4 || obs.epochs != 16 {
		t.Errorf("observer saw %d/%d/%d started/finished/epochs, want 4/4/16", obs.started, obs.finished, obs.epochs)
	}
	if obs.events != 1600 {
		t.Errorf("observer saw %d events, want 1600", obs.events)
	}
	if obs.sum.Completed != 4 || obs.sum.Events != 1600 || obs.sum.VirtualS != 4*40 {
		t.Errorf("summary = %+v", obs.sum)
	}
}

func TestProgressOutput(t *testing.T) {
	var buf bytes.Buffer
	jobs := makeJobs(2)
	r := &Runner[int]{Parallelism: 1, Observer: &Progress{W: &buf, MinInterval: 0}}
	_, err := r.Run(context.Background(), jobs, func(ctx context.Context, job Job, rep *Reporter) (int, error) {
		rep.Epoch(0, 5, 42)
		return 0, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "traces") || !strings.Contains(out, "campaign: 2/2 traces ok") {
		t.Errorf("progress output missing expected fields:\n%q", out)
	}
}

func TestJSONLOutput(t *testing.T) {
	var buf bytes.Buffer
	jobs := makeJobs(2)
	r := &Runner[int]{Parallelism: 1, Observer: NewJSONL(&buf)}
	_, err := r.Run(context.Background(), jobs, func(ctx context.Context, job Job, rep *Reporter) (int, error) {
		rep.Epoch(0, 2.5, 7)
		if job.Index == 1 {
			return 0, fmt.Errorf("boom")
		}
		return 0, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var kinds []string
	sawError := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		kinds = append(kinds, ev["event"].(string))
		if s, ok := ev["error"].(string); ok && strings.Contains(s, "boom") {
			sawError = true
		}
	}
	if kinds[0] != "campaign_started" || kinds[len(kinds)-1] != "campaign_finished" {
		t.Errorf("event order: %v", kinds)
	}
	if !sawError {
		t.Error("failed trace's error not present in JSONL stream")
	}
	found := map[string]bool{}
	for _, k := range kinds {
		found[k] = true
	}
	for _, want := range []string{"trace_started", "epoch", "trace_finished"} {
		if !found[want] {
			t.Errorf("missing %q event", want)
		}
	}
}
