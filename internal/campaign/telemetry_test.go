package campaign

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestTelemetryObserver runs a small campaign (with one job that fails
// once and is retried) and checks the spans and metrics it leaves in the
// observability layer.
func TestTelemetryObserver(t *testing.T) {
	o := obs.New(256)
	tel := NewTelemetry(o)

	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{Index: i, Path: "p", Trace: i, Seed: int64(i + 1), Epochs: 3}
	}
	failedOnce := false
	r := &Runner[int]{Parallelism: 2, Retries: 1, Observer: tel}
	results, err := r.Run(context.Background(), jobs, func(ctx context.Context, job Job, rep *Reporter) (int, error) {
		if job.Index == 2 && !failedOnce {
			failedOnce = true
			return 0, errors.New("transient")
		}
		for ep := 0; ep < job.Epochs; ep++ {
			rep.Epoch(ep, float64(ep), 10)
		}
		return job.Index, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d failed: %v", res.Job.Index, res.Err)
		}
	}

	var buf bytes.Buffer
	if err := o.M().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"campaign_jobs_started_total 5", // 4 jobs + 1 retry
		"campaign_jobs_completed_total 4",
		"campaign_jobs_failed_total 1",
		"campaign_retries_total 1",
		"campaign_epochs_total 12",
		"campaign_events_total 120",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("metrics missing %q\n---\n%s", want, out)
		}
	}
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Errorf("campaign metrics invalid: %v", err)
	}

	spans, _ := o.T().Snapshot()
	var campaignSpans, traceSpans int
	var campaignID uint64
	for _, sp := range spans {
		if sp.Name == "campaign" {
			campaignSpans++
			campaignID = sp.ID
		}
	}
	for _, sp := range spans {
		if strings.HasPrefix(sp.Name, "trace ") {
			traceSpans++
			if sp.Parent != campaignID {
				t.Errorf("trace span %q parented to %d, want campaign %d", sp.Name, sp.Parent, campaignID)
			}
		}
	}
	if campaignSpans != 1 || traceSpans != 5 {
		t.Errorf("got %d campaign / %d trace spans, want 1 / 5", campaignSpans, traceSpans)
	}
	if o.T().Active() != 0 {
		t.Errorf("%d spans left open", o.T().Active())
	}
}

// TestTelemetryNilObs pins that a telemetry observer over a nil Obs is
// safe to attach.
func TestTelemetryNilObs(t *testing.T) {
	tel := NewTelemetry(nil)
	jobs := []Job{{Index: 0, Path: "p", Seed: 1, Epochs: 1}}
	r := &Runner[int]{Observer: tel}
	if _, err := r.Run(context.Background(), jobs, func(ctx context.Context, job Job, rep *Reporter) (int, error) {
		rep.Epoch(0, 1, 1)
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
}
