package campaign

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Telemetry is an Observer that feeds campaign progress into the
// observability layer: one root span per campaign, one child span per
// job attempt (carrying its simulation-event count), and the campaign_*
// metric family. Attach it with MultiObserver alongside a progress
// observer; like every Observer its callbacks may fire concurrently and
// it serializes internally.
//
// Telemetry built on a nil *obs.Obs degrades to no-ops, so call sites
// can wire it unconditionally.
type Telemetry struct {
	tr *obs.Tracer

	jobsStarted   *obs.Counter
	jobsCompleted *obs.Counter
	jobsFailed    *obs.Counter
	retries       *obs.Counter
	epochs        *obs.Counter
	events        *obs.Counter
	virtualSecs   *obs.Gauge
	jobSeconds    *obs.Histogram

	mu       sync.Mutex
	campaign *obs.Span
	jobs     map[int]*obs.Span // job index → open attempt span
}

// NewTelemetry wires a telemetry observer into o's tracer and registry.
func NewTelemetry(o *obs.Obs) *Telemetry {
	m := o.M()
	return &Telemetry{
		tr:            o.T(),
		jobsStarted:   m.Counter("campaign_jobs_started_total", "job attempts started (retries count again)"),
		jobsCompleted: m.Counter("campaign_jobs_completed_total", "job attempts that finished without error"),
		jobsFailed:    m.Counter("campaign_jobs_failed_total", "job attempts that ended in an error"),
		retries:       m.Counter("campaign_retries_total", "job attempts beyond the first"),
		epochs:        m.Counter("campaign_epochs_total", "measurement epochs simulated"),
		events:        m.Counter("campaign_events_total", "simulation events processed, summed over epochs"),
		virtualSecs:   m.Gauge("campaign_virtual_seconds", "virtual time reached, summed over jobs"),
		jobSeconds: m.Histogram("campaign_job_seconds", "wall-clock duration of job attempts",
			[]float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}),
	}
}

// JobSpan returns the span of the job's currently running attempt, so
// the job body can parent its own finer-grained spans (epochs, phases)
// under the campaign tree. It returns nil when the job is not running or
// telemetry is off; callers need no nil check because child spans of a
// nil span are no-ops. The Observer contract guarantees TraceStarted ran
// before the job body, so the slot is populated by the time a job asks.
func (t *Telemetry) JobSpan(index int) *obs.Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobs[index]
}

// CampaignStarted implements Observer.
func (t *Telemetry) CampaignStarted(totalJobs, totalEpochs int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.campaign = t.tr.Start("campaign")
	t.jobs = make(map[int]*obs.Span, totalJobs)
}

// TraceStarted implements Observer.
func (t *Telemetry) TraceStarted(job Job, attempt int) {
	t.jobsStarted.Inc()
	if attempt > 1 {
		t.retries.Inc()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.jobs == nil {
		t.jobs = make(map[int]*obs.Span)
	}
	// A retry reuses the slot; the prior attempt's span already ended.
	t.jobs[job.Index] = t.campaign.Child("trace " + job.String())
}

// EpochDone implements Observer.
func (t *Telemetry) EpochDone(job Job, epoch int, virtualTime float64, events uint64) {
	t.epochs.Inc()
	t.events.Add(events)
	t.mu.Lock()
	sp := t.jobs[job.Index]
	t.mu.Unlock()
	sp.AddCount(int64(events))
}

// TraceFinished implements Observer.
func (t *Telemetry) TraceFinished(job Job, err error, attempt int, wall time.Duration) {
	if err == nil {
		t.jobsCompleted.Inc()
	} else {
		t.jobsFailed.Inc()
	}
	t.jobSeconds.Observe(wall.Seconds())
	t.mu.Lock()
	sp := t.jobs[job.Index]
	delete(t.jobs, job.Index)
	t.mu.Unlock()
	sp.End()
}

// CampaignFinished implements Observer.
func (t *Telemetry) CampaignFinished(sum Summary) {
	t.virtualSecs.Add(sum.VirtualS)
	t.mu.Lock()
	sp := t.campaign
	t.campaign = nil
	t.mu.Unlock()
	sp.AddCount(int64(sum.Events))
	sp.End()
}
