package campaign

import (
	"time"
)

// Summary totals a finished (or aborted) campaign.
type Summary struct {
	Jobs      int           // jobs submitted
	Completed int           // jobs that produced a result
	Failed    int           // jobs that errored after all retries
	Skipped   int           // jobs never started (campaign cancelled)
	Retried   int           // jobs that needed more than one attempt
	Events    uint64        // total simulation events processed
	VirtualS  float64       // total virtual seconds simulated
	Wall      time.Duration // wall-clock duration of the campaign
}

// Observer receives campaign lifecycle and progress callbacks. Methods
// may be called concurrently from worker goroutines; implementations must
// serialize internally. All callbacks must be non-blocking-ish: they run
// on the measurement hot path.
type Observer interface {
	// CampaignStarted fires once, before any job runs. totalEpochs is
	// the sum of the jobs' expected epochs (0 when unknown).
	CampaignStarted(totalJobs, totalEpochs int)
	// TraceStarted fires when a job attempt begins (attempt is 1-based;
	// >1 means a retry after a recovered fault).
	TraceStarted(job Job, attempt int)
	// EpochDone fires after each measurement epoch, with the engine's
	// virtual clock and the events processed by that epoch alone.
	EpochDone(job Job, epoch int, virtualTime float64, events uint64)
	// TraceFinished fires when a job attempt ends; err is nil on
	// success, a *PanicError for a recovered fault, or a context error.
	TraceFinished(job Job, err error, attempt int, wall time.Duration)
	// CampaignFinished fires once after all workers drain.
	CampaignFinished(sum Summary)
}

// NopObserver ignores every callback.
type NopObserver struct{}

func (NopObserver) CampaignStarted(int, int)                     {}
func (NopObserver) TraceStarted(Job, int)                        {}
func (NopObserver) EpochDone(Job, int, float64, uint64)          {}
func (NopObserver) TraceFinished(Job, error, int, time.Duration) {}
func (NopObserver) CampaignFinished(Summary)                     {}

// MultiObserver fans callbacks out to several observers in order.
type MultiObserver []Observer

func (m MultiObserver) CampaignStarted(jobs, epochs int) {
	for _, o := range m {
		o.CampaignStarted(jobs, epochs)
	}
}

func (m MultiObserver) TraceStarted(job Job, attempt int) {
	for _, o := range m {
		o.TraceStarted(job, attempt)
	}
}

func (m MultiObserver) EpochDone(job Job, epoch int, vt float64, events uint64) {
	for _, o := range m {
		o.EpochDone(job, epoch, vt, events)
	}
}

func (m MultiObserver) TraceFinished(job Job, err error, attempt int, wall time.Duration) {
	for _, o := range m {
		o.TraceFinished(job, err, attempt, wall)
	}
}

func (m MultiObserver) CampaignFinished(sum Summary) {
	for _, o := range m {
		o.CampaignFinished(sum)
	}
}
