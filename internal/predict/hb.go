package predict

import "strconv"

// HB is the interface of history-based one-step-ahead predictors. The usage
// protocol is: call Predict to obtain the forecast for the next
// measurement, then Observe the actual value, repeatedly. Predict before
// any observation returns (0, false).
//
// Implementations are NOT goroutine-safe: Predict, Observe and Reset must
// never be called concurrently on the same predictor. Concurrent callers
// (e.g. a prediction service handling many clients) must serialize access
// themselves; the predsvc.Session wrapper in internal/predsvc does exactly
// that and is the intended goroutine-safe entry point.
type HB interface {
	// Predict returns the forecast for the next value and whether enough
	// history exists to make one.
	Predict() (float64, bool)
	// Observe feeds the next actual measurement.
	Observe(x float64)
	// Reset discards all history.
	Reset()
	// Name identifies the predictor (e.g. "10-MA", "0.8-HW").
	Name() string
}

// MA is the n-order Moving Average predictor (paper §5.1.1): the forecast
// is the mean of the last n observations.
type MA struct {
	n    int
	buf  []float64
	head int
	full bool
	sum  float64
	name string
}

// NewMA returns an n-order moving average (n ≥ 1).
func NewMA(n int) *MA {
	if n < 1 {
		n = 1
	}
	return &MA{n: n, buf: make([]float64, 0, n), name: maName(n)}
}

func maName(n int) string {
	return strconv.Itoa(n) + "-MA"
}

// Predict implements HB.
func (m *MA) Predict() (float64, bool) {
	c := m.count()
	if c == 0 {
		return 0, false
	}
	return m.sum / float64(c), true
}

func (m *MA) count() int {
	if m.full {
		return m.n
	}
	return len(m.buf)
}

// Observe implements HB.
func (m *MA) Observe(x float64) {
	if !m.full && len(m.buf) < m.n {
		m.buf = append(m.buf, x)
		m.sum += x
		if len(m.buf) == m.n {
			m.full = true
			m.head = 0
		}
		return
	}
	m.sum += x - m.buf[m.head]
	m.buf[m.head] = x
	m.head = (m.head + 1) % m.n
}

// Reset implements HB.
func (m *MA) Reset() {
	m.buf = m.buf[:0]
	m.head = 0
	m.full = false
	m.sum = 0
}

// Name implements HB.
func (m *MA) Name() string { return m.name }

// Order returns n.
func (m *MA) Order() int { return m.n }

// EWMA is the exponentially weighted moving average predictor (paper
// §5.1.2): X̂_{i+1} = α·X_i + (1-α)·X̂_i.
type EWMA struct {
	alpha float64
	pred  float64
	seen  bool
	name  string
}

// NewEWMA returns an EWMA predictor with weight alpha in (0, 1).
func NewEWMA(alpha float64) *EWMA {
	return &EWMA{alpha: alpha, name: paramString(alpha) + "-EWMA"}
}

// Predict implements HB.
func (e *EWMA) Predict() (float64, bool) {
	if !e.seen {
		return 0, false
	}
	return e.pred, true
}

// Observe implements HB.
func (e *EWMA) Observe(x float64) {
	if !e.seen {
		e.pred = x
		e.seen = true
		return
	}
	e.pred = e.alpha*x + (1-e.alpha)*e.pred
}

// Reset implements HB.
func (e *EWMA) Reset() { e.seen = false; e.pred = 0 }

// Name implements HB.
func (e *EWMA) Name() string { return e.name }

// HoltWinters is the non-seasonal Holt-Winters predictor (paper §5.1.3),
// maintaining a smoothing component X̂ˢ and a trend component X̂ᵗ:
//
//	forecast  X̂ᶠ_i   = X̂ˢ_i + X̂ᵗ_i
//	smoothing X̂ˢ_{i+1} = α·X_i + (1-α)·X̂ᶠ_i
//	trend     X̂ᵗ_{i+1} = β·(X̂ˢ_{i+1} - X̂ˢ_i) + (1-β)·X̂ᵗ_i
//
// seeded with X̂ˢ_0 = X_0 and X̂ᵗ_0 = X_1 - X_0.
type HoltWinters struct {
	alpha, beta float64
	s, t        float64 // current smoothing and trend components
	x0          float64
	n           int // observations so far
	name        string
}

// NewHoltWinters returns a Holt-Winters predictor; the paper uses α = 0.8,
// β = 0.2.
func NewHoltWinters(alpha, beta float64) *HoltWinters {
	return &HoltWinters{alpha: alpha, beta: beta, name: paramString(alpha) + "-HW"}
}

// Predict implements HB.
func (h *HoltWinters) Predict() (float64, bool) {
	switch h.n {
	case 0:
		return 0, false
	case 1:
		// Only X_0 seen: no trend yet; forecast the level.
		return h.x0, true
	default:
		return h.s + h.t, true
	}
}

// Observe implements HB.
func (h *HoltWinters) Observe(x float64) {
	switch h.n {
	case 0:
		h.x0 = x
	case 1:
		// Seed: X̂ˢ_0 = X_0, X̂ᵗ_0 = X_1 - X_0, then absorb X_1.
		h.s = h.x0
		h.t = x - h.x0
		h.step(x)
	default:
		h.step(x)
	}
	h.n++
}

func (h *HoltWinters) step(x float64) {
	forecast := h.s + h.t
	sNext := h.alpha*x + (1-h.alpha)*forecast
	h.t = h.beta*(sNext-h.s) + (1-h.beta)*h.t
	h.s = sNext
}

// Reset implements HB.
func (h *HoltWinters) Reset() { h.s, h.t, h.x0, h.n = 0, 0, 0, 0 }

// Name implements HB.
func (h *HoltWinters) Name() string { return h.name }

// paramString renders a smoothing parameter for a predictor name using the
// shortest exact decimal representation ("0.8", "0.25").
func paramString(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
