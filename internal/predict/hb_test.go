package predict

import (
	"math"
	"testing"
	"testing/quick"
)

func feed(p HB, xs ...float64) {
	for _, x := range xs {
		p.Observe(x)
	}
}

func TestMABasic(t *testing.T) {
	m := NewMA(3)
	if _, ok := m.Predict(); ok {
		t.Error("MA with no history should not predict")
	}
	feed(m, 1, 2, 3)
	if got, _ := m.Predict(); got != 2 {
		t.Errorf("MA(3) after 1,2,3 = %v, want 2", got)
	}
	m.Observe(4) // window now 2,3,4
	if got, _ := m.Predict(); got != 3 {
		t.Errorf("MA(3) after sliding = %v, want 3", got)
	}
}

func TestMAPartialHistory(t *testing.T) {
	m := NewMA(10)
	feed(m, 4, 6)
	if got, ok := m.Predict(); !ok || got != 5 {
		t.Errorf("MA with partial history = %v,%v; want 5,true", got, ok)
	}
}

func TestMAOrder1IsLastValue(t *testing.T) {
	m := NewMA(1)
	feed(m, 7, 3, 9)
	if got, _ := m.Predict(); got != 9 {
		t.Errorf("1-MA = %v, want last value 9", got)
	}
}

func TestMAReset(t *testing.T) {
	m := NewMA(3)
	feed(m, 1, 2, 3, 4)
	m.Reset()
	if _, ok := m.Predict(); ok {
		t.Error("reset MA should not predict")
	}
	feed(m, 10)
	if got, _ := m.Predict(); got != 10 {
		t.Errorf("MA after reset = %v, want 10", got)
	}
}

func TestMAName(t *testing.T) {
	if NewMA(10).Name() != "10-MA" {
		t.Errorf("name = %q", NewMA(10).Name())
	}
	if NewMA(0).Order() != 1 {
		t.Error("order <1 should clamp to 1")
	}
}

// TestMAMatchesNaive cross-checks the O(1) sliding window against a naive
// recomputation.
func TestMAMatchesNaive(t *testing.T) {
	f := func(raw []uint8, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		m := NewMA(n)
		var hist []float64
		for _, r := range raw {
			x := float64(r)
			if pred, ok := m.Predict(); ok {
				start := len(hist) - n
				if start < 0 {
					start = 0
				}
				var sum float64
				for _, v := range hist[start:] {
					sum += v
				}
				want := sum / float64(len(hist[start:]))
				if math.Abs(pred-want) > 1e-9 {
					return false
				}
			}
			m.Observe(x)
			hist = append(hist, x)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEWMABasic(t *testing.T) {
	e := NewEWMA(0.5)
	if _, ok := e.Predict(); ok {
		t.Error("EWMA with no history should not predict")
	}
	e.Observe(10)
	if got, _ := e.Predict(); got != 10 {
		t.Errorf("EWMA after first obs = %v, want 10", got)
	}
	e.Observe(20) // 0.5·20 + 0.5·10 = 15
	if got, _ := e.Predict(); got != 15 {
		t.Errorf("EWMA = %v, want 15", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	feed(e, 100)
	for i := 0; i < 200; i++ {
		e.Observe(5)
	}
	if got, _ := e.Predict(); math.Abs(got-5) > 1e-6 {
		t.Errorf("EWMA did not converge: %v", got)
	}
}

func TestEWMAAlphaExtremes(t *testing.T) {
	// High α tracks the last sample closely.
	hi := NewEWMA(0.95)
	feed(hi, 1, 1, 1, 100)
	got, _ := hi.Predict()
	if got < 90 {
		t.Errorf("α=0.95 EWMA = %v, want ≈100", got)
	}
	// Low α barely moves.
	lo := NewEWMA(0.05)
	feed(lo, 1, 1, 1, 100)
	got, _ = lo.Predict()
	if got > 10 {
		t.Errorf("α=0.05 EWMA = %v, want ≈1", got)
	}
}

func TestHoltWintersSeeding(t *testing.T) {
	h := NewHoltWinters(0.8, 0.2)
	if _, ok := h.Predict(); ok {
		t.Error("HW with no history should not predict")
	}
	h.Observe(10)
	if got, _ := h.Predict(); got != 10 {
		t.Errorf("HW after X0 = %v, want 10", got)
	}
}

func TestHoltWintersTracksLinearTrend(t *testing.T) {
	// On a perfect linear series the trend component should let HW
	// extrapolate accurately, unlike MA which lags.
	h := NewHoltWinters(0.8, 0.2)
	m := NewMA(10)
	for i := 0; i < 50; i++ {
		v := float64(10 + 2*i)
		h.Observe(v)
		m.Observe(v)
	}
	next := 110.0
	hw, _ := h.Predict()
	ma, _ := m.Predict()
	if math.Abs(hw-next) > 2 {
		t.Errorf("HW on linear trend = %v, want ≈%v", hw, next)
	}
	if math.Abs(ma-next) < math.Abs(hw-next) {
		t.Errorf("MA (%v) should lag behind HW (%v) on a trend", ma, hw)
	}
}

func TestHoltWintersConstantSeries(t *testing.T) {
	h := NewHoltWinters(0.8, 0.2)
	for i := 0; i < 30; i++ {
		h.Observe(42)
	}
	if got, _ := h.Predict(); math.Abs(got-42) > 1e-9 {
		t.Errorf("HW on constant series = %v, want 42", got)
	}
}

func TestHoltWintersRecurrence(t *testing.T) {
	// Hand-checked: X0=2, X1=4 seeds s=2, t=2; absorb X1:
	// f=s+t=4; s'=0.5·4+0.5·4=4; t'=0.5·(4-2)+0.5·2=2 → predict 6.
	h := NewHoltWinters(0.5, 0.5)
	feed(h, 2, 4)
	if got, _ := h.Predict(); math.Abs(got-6) > 1e-12 {
		t.Errorf("HW predict = %v, want 6", got)
	}
}

func TestHBNames(t *testing.T) {
	if got := NewEWMA(0.8).Name(); got != "0.8-EWMA" {
		t.Errorf("EWMA name = %q", got)
	}
	if got := NewHoltWinters(0.8, 0.2).Name(); got != "0.8-HW" {
		t.Errorf("HW name = %q", got)
	}
	lso := NewLSO(NewMA(10), DefaultLSOConfig())
	if got := lso.Name(); got != "10-MA-LSO" {
		t.Errorf("LSO name = %q", got)
	}
}

func TestEvaluate(t *testing.T) {
	res := Evaluate(NewMA(1), []float64{10, 10, 20})
	// Predictions start after the first observation: E for x=10 (pred 10,
	// E=0) and x=20 (pred 10, E=-1).
	if res.Predictions != 2 {
		t.Fatalf("predictions = %d, want 2", res.Predictions)
	}
	if res.Errors[0] != 0 {
		t.Errorf("first error = %v, want 0", res.Errors[0])
	}
	if math.Abs(res.Errors[1]+1) > 1e-12 {
		t.Errorf("second error = %v, want -1", res.Errors[1])
	}
}

// TestPredictorsPositiveProperty: on positive series, all predictors yield
// positive forecasts.
func TestPredictorsPositiveProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		for _, p := range []HB{NewMA(5), NewEWMA(0.5), NewLSO(NewMA(5), DefaultLSOConfig())} {
			for _, x := range xs {
				p.Observe(x)
				if pred, ok := p.Predict(); ok && pred <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
