package predict

// AR implements an autoregressive AR(p) one-step predictor fitted online
// with the Yule-Walker equations (solved by Levinson-Durbin recursion)
// over a sliding window of past observations.
//
// The paper excludes ARMA/ARIMA from its main evaluation because fitting
// them needs more history than its applications have (§5), but names them
// as future work (§7). AR(p) is the natural first rung of that ladder: it
// subsumes the mean-reverting behaviour of MA/EWMA while capturing short
// autocorrelation, and degrades gracefully to the window mean when the
// series is white.
import "strconv"

type AR struct {
	order  int
	window int
	hist   []float64
	name   string
}

// NewAR returns an AR(p) predictor fitted over the last window samples
// (window 0 defaults to max(8·p, 32)).
func NewAR(order, window int) *AR {
	if order < 1 {
		order = 1
	}
	if window == 0 {
		window = 8 * order
		if window < 32 {
			window = 32
		}
	}
	if window < order+2 {
		window = order + 2
	}
	return &AR{order: order, window: window, name: "AR(" + strconv.Itoa(order) + ")"}
}

// Name implements HB.
func (a *AR) Name() string { return a.name }

// Reset implements HB.
func (a *AR) Reset() { a.hist = a.hist[:0] }

// Observe implements HB.
func (a *AR) Observe(x float64) {
	a.hist = append(a.hist, x)
	if len(a.hist) > a.window {
		a.hist = a.hist[len(a.hist)-a.window:]
	}
}

// Predict implements HB. With fewer than order+2 samples it falls back to
// the window mean (matching MA behaviour during warm-up).
func (a *AR) Predict() (float64, bool) {
	n := len(a.hist)
	if n == 0 {
		return 0, false
	}
	mean := meanOf(a.hist)
	if n < a.order+2 {
		return mean, true
	}
	phi, ok := a.fit()
	if !ok {
		return mean, true
	}
	// One-step forecast on the mean-removed series.
	var pred float64
	for k, c := range phi {
		pred += c * (a.hist[n-1-k] - mean)
	}
	pred += mean
	// Guard against explosive fits on near-degenerate windows: fall back
	// to the mean rather than forecasting outside 4× the observed range.
	lo, hi := minMaxOf(a.hist)
	span := hi - lo
	if pred < lo-2*span || pred > hi+2*span {
		return mean, true
	}
	return pred, true
}

// fit solves the Yule-Walker equations for the current window via
// Levinson-Durbin, returning the AR coefficients (lag 1..order).
func (a *AR) fit() ([]float64, bool) {
	n := len(a.hist)
	p := a.order
	if maxLag := n - 2; p > maxLag {
		p = maxLag
	}
	if p < 1 {
		return nil, false
	}
	mean := meanOf(a.hist)
	// Biased autocovariance estimates r[0..p].
	r := make([]float64, p+1)
	for lag := 0; lag <= p; lag++ {
		var s float64
		for i := lag; i < n; i++ {
			s += (a.hist[i] - mean) * (a.hist[i-lag] - mean)
		}
		r[lag] = s / float64(n)
	}
	if r[0] <= 0 {
		return nil, false // constant series
	}

	// Levinson-Durbin recursion.
	phi := make([]float64, p)
	prev := make([]float64, p)
	e := r[0]
	for k := 1; k <= p; k++ {
		acc := r[k]
		for j := 1; j < k; j++ {
			acc -= phi[j-1] * r[k-j]
		}
		if e == 0 {
			return nil, false
		}
		kappa := acc / e
		copy(prev, phi)
		phi[k-1] = kappa
		for j := 1; j < k; j++ {
			phi[j-1] = prev[j-1] - kappa*prev[k-1-j]
		}
		e *= 1 - kappa*kappa
		if e <= 0 {
			// Numerically singular: keep the coefficients found so far.
			return phi[:k], true
		}
	}
	return phi, true
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minMaxOf(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return
}
