package predict

import "math"

// SwitcherConfig tunes the stability-aware hybrid switcher.
type SwitcherConfig struct {
	// Window is the number of recent samples the stability statistic is
	// computed over (default 16).
	Window int
	// CoVThreshold is the coefficient-of-variation boundary between the
	// "stable" and "volatile" regimes (default 0.25, per Sun et al.'s
	// observation that throughput is highly predictable below ~25%
	// relative variation).
	CoVThreshold float64
}

func (c SwitcherConfig) defaults() SwitcherConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.CoVThreshold <= 0 {
		c.CoVThreshold = 0.25
	}
	return c
}

// StabilitySwitcher is the stability-aware hybrid predictor of Sun et
// al.: both inner predictors absorb every observation, and each forecast
// is delegated to the one matching the current regime — `stable` while
// the rolling coefficient of variation of recent samples stays below the
// threshold, `volatile` once it exceeds it. The typical pairing is a
// reactive tracker (EWMA/HW) for stable regimes and a robust smoother
// (wide MA) for volatile ones.
//
// All state is a bounded function of the recent observation history, so
// the serving layer restores a switcher exactly by replaying its
// retained history — nothing needs separate serialization.
type StabilitySwitcher struct {
	cfg      SwitcherConfig
	stable   HB
	volatile HB

	ring []float64
	next int
	full bool
}

// NewStabilitySwitcher wraps the two inner predictors.
func NewStabilitySwitcher(stable, volatile HB, cfg SwitcherConfig) *StabilitySwitcher {
	cfg = cfg.defaults()
	return &StabilitySwitcher{
		cfg:      cfg,
		stable:   stable,
		volatile: volatile,
		ring:     make([]float64, 0, cfg.Window),
	}
}

// Name implements HB.
func (s *StabilitySwitcher) Name() string { return "switcher" }

// Volatile reports whether the current regime is volatile (for tests
// and diagnostics).
func (s *StabilitySwitcher) Volatile() bool {
	return s.cov() > s.cfg.CoVThreshold
}

// cov returns the coefficient of variation of the retained window
// (0 with fewer than 2 samples). Both passes accumulate in chronological
// order so a restored (compacted) ring and a live (rotated) ring with the
// same contents produce bit-identical statistics.
func (s *StabilitySwitcher) cov() float64 {
	n := len(s.ring)
	if n < 2 {
		return 0
	}
	var sum float64
	s.forEachChrono(func(v float64) { sum += v })
	mean := sum / float64(n)
	if mean <= 0 {
		return 0
	}
	var ss float64
	s.forEachChrono(func(v float64) {
		d := v - mean
		ss += d * d
	})
	return math.Sqrt(ss/float64(n)) / mean
}

// forEachChrono visits the retained window oldest first.
func (s *StabilitySwitcher) forEachChrono(fn func(float64)) {
	if s.full {
		for _, v := range s.ring[s.next:] {
			fn(v)
		}
		for _, v := range s.ring[:s.next] {
			fn(v)
		}
		return
	}
	for _, v := range s.ring {
		fn(v)
	}
}

// Predict implements HB: delegate to the regime's predictor, falling
// back to the other one while the preferred predictor is not yet ready.
func (s *StabilitySwitcher) Predict() (float64, bool) {
	first, second := s.stable, s.volatile
	if s.Volatile() {
		first, second = s.volatile, s.stable
	}
	if f, ok := first.Predict(); ok {
		return f, true
	}
	return second.Predict()
}

// Observe implements HB.
func (s *StabilitySwitcher) Observe(x float64) {
	if !s.full && len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, x)
		if len(s.ring) == cap(s.ring) {
			s.full = true
			s.next = 0
		}
	} else {
		s.ring[s.next] = x
		s.next = (s.next + 1) % len(s.ring)
	}
	s.stable.Observe(x)
	s.volatile.Observe(x)
}

// Reset implements HB.
func (s *StabilitySwitcher) Reset() {
	s.ring = s.ring[:0]
	s.next = 0
	s.full = false
	s.stable.Reset()
	s.volatile.Reset()
}
