// Package predict implements the paper's two classes of TCP throughput
// predictors.
//
// Formula-Based (FB) prediction (paper §3) plugs a-priori path measurements
// into a TCP throughput model:
//
//	R̂ = min( PFTK(T̂, p̂, T̂0, W), W/T̂ )   if p̂ > 0
//	R̂ = min( W/T̂, Â )                     if p̂ = 0
//
// with T̂0 = max(1 s, 2·SRTT), SRTT = T̂ (paper Eq. 3).
//
// History-Based (HB) prediction (paper §5) forecasts from previous transfer
// throughputs on the same path using simple linear predictors — Moving
// Average, EWMA, non-seasonal Holt-Winters — optionally wrapped with the
// LSO heuristics: restart on detected level shifts, discard detected
// outliers.
//
// Symbols follow the paper's Table 1: T̂/p̂ are RTT/loss measured by
// periodic probing before the flow, T̃/p̃ during the flow, T/p what the flow
// itself experiences, R actual throughput, R̂ predicted, Â avail-bw prior
// to the flow, W the maximum window.
package predict

import (
	"math"

	"repro/internal/tcpmodel"
)

// Model selects the throughput formula an FB predictor uses.
type Model int

// Model values.
const (
	ModelPFTK        Model = iota // Padhye et al. (paper Eq. 2)
	ModelPFTKPaper                // Eq. 2 exactly as typeset in the paper
	ModelRevisedPFTK              // Chen et al. correction (paper §4.2.9)
	ModelMathis                   // square-root formula (paper Eq. 1)
)

func (m Model) String() string {
	switch m {
	case ModelPFTK:
		return "PFTK"
	case ModelPFTKPaper:
		return "PFTK(paper)"
	case ModelRevisedPFTK:
		return "revised-PFTK"
	case ModelMathis:
		return "Mathis"
	default:
		return "unknown"
	}
}

// FBInputs are the a-priori measurements an FB prediction consumes.
type FBInputs struct {
	RTT      float64 // T̂: RTT from periodic probing before the flow, seconds
	LossRate float64 // p̂: loss rate from periodic probing before the flow
	AvailBw  float64 // Â: available bandwidth estimate before the flow, bits/s
}

// FBConfig describes the transfer whose throughput is being predicted.
type FBConfig struct {
	Model          Model
	MSS            int // segment size, bytes (default 1460)
	MaxWindowBytes int // W, bytes (default 1 MB)
	B              int // segments per ACK (default 2: delayed ACKs)
}

func (c FBConfig) defaults() FBConfig {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.MaxWindowBytes == 0 {
		c.MaxWindowBytes = 1 << 20
	}
	if c.B == 0 {
		c.B = 2
	}
	return c
}

// FB implements the paper's Eq. (3) predictor.
type FB struct {
	cfg FBConfig
}

// NewFB returns a formula-based predictor.
func NewFB(cfg FBConfig) *FB {
	return &FB{cfg: cfg.defaults()}
}

// RTO returns the paper's pre-flow timeout estimate T̂0 = max(1 s, 2·SRTT)
// with SRTT set to the measured RTT.
func RTO(rtt float64) float64 {
	return math.Max(1, 2*rtt)
}

// Predict returns R̂ in bits per second for the given a-priori
// measurements. A zero RTT yields 0 (no basis for prediction).
func (f *FB) Predict(in FBInputs) float64 {
	if in.RTT <= 0 {
		return 0
	}
	w := float64(f.cfg.MaxWindowBytes)
	windowBps := w * 8 / in.RTT

	if in.LossRate <= 0 {
		// Lossless branch of Eq. (3): min(W/T̂, Â).
		if in.AvailBw > 0 && in.AvailBw < windowBps {
			return in.AvailBw
		}
		return windowBps
	}

	params := tcpmodel.Params{
		MSS:  f.cfg.MSS,
		RTT:  in.RTT,
		Loss: in.LossRate,
		B:    f.cfg.B,
		RTO:  RTO(in.RTT),
		Wmax: w / float64(f.cfg.MSS),
	}
	var bytesPerSec float64
	switch f.cfg.Model {
	case ModelMathis:
		bytesPerSec = math.Min(tcpmodel.Mathis(params), w/in.RTT)
	case ModelRevisedPFTK:
		bytesPerSec = tcpmodel.RevisedPFTK(params)
	case ModelPFTKPaper:
		bytesPerSec = tcpmodel.PFTKPaper(params)
	default:
		bytesPerSec = tcpmodel.PFTK(params)
	}
	if math.IsInf(bytesPerSec, 1) {
		return windowBps
	}
	return bytesPerSec * 8
}

// WindowLimited reports whether a transfer with the predictor's window
// would be window-limited on a path with the given measurements, i.e.
// W/T̂ < Â (paper §3.1).
func (f *FB) WindowLimited(in FBInputs) bool {
	if in.RTT <= 0 || in.AvailBw <= 0 {
		return false
	}
	return float64(f.cfg.MaxWindowBytes)*8/in.RTT < in.AvailBw
}
