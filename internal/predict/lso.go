package predict

import (
	"math"
	"sort"
)

// LSOConfig tunes the level-shift/outlier heuristics of paper §5.2. The
// paper's empirically chosen values are γ = 0.3 (level-shift relative
// median difference) and ψ = 0.4 (outlier relative deviation).
type LSOConfig struct {
	Gamma float64 // γ: minimum relative difference between segment medians
	Psi   float64 // ψ: minimum relative deviation from the median for outliers
	// MaxHistory bounds the retained window (0 = default 32). The paper's
	// applications keep only 10–20 samples; the bound also keeps the
	// re-scan cheap.
	MaxHistory int
}

// DefaultLSOConfig returns the paper's parameter choices.
func DefaultLSOConfig() LSOConfig {
	return LSOConfig{Gamma: 0.3, Psi: 0.4, MaxHistory: 32}
}

func (c LSOConfig) defaults() LSOConfig {
	if c.Gamma == 0 {
		c.Gamma = 0.3
	}
	if c.Psi == 0 {
		c.Psi = 0.4
	}
	if c.MaxHistory == 0 {
		c.MaxHistory = 32
	}
	return c
}

// LSO wraps an HB predictor with the paper's two heuristics:
//
//   - Outliers — samples deviating from the window median by more than a
//     relative difference ψ — are excluded from the history fed to the
//     inner predictor (the most recent sample is never judged an outlier,
//     since it may instead be the start of a level shift).
//
//   - Level shifts — a point X_k where every earlier sample is strictly
//     below (above) every sample from X_k on, the two segment medians
//     differ by more than a relative difference γ, and at least two
//     samples follow X_k — cause all history before X_k to be discarded
//     and the inner predictor to restart from X_k.
//
// Observations are processed incrementally: the window's order statistics
// are maintained by insertion into a sorted scratch slice rather than a
// per-call sort, and the inner predictor is only rebuilt by replay when the
// outlier/shift labelling of the retained history actually changes — when
// the new sample merely extends the clean series, one inner Observe
// suffices. The forecasts are bit-for-bit identical to rebuilding from
// scratch every observation (see TestLSOIncrementalMatchesNaive).
type LSO struct {
	cfg   LSOConfig
	inner HB

	history []float64 // raw samples since the last detected level shift
	// Shifts counts detected level shifts; Outliers counts samples
	// currently labelled as outliers.
	Shifts   int
	Outliers int

	// Incremental scratch state, reused across observations so the
	// steady-state Observe path performs no allocations.
	sorted     []float64 // history's values in ascending order
	mask       []bool    // outlier mask over history
	deviant    []bool    // scratch: |x-med|/med > ψ flags
	clean      []float64 // history minus outliers
	lastClean  []float64 // clean series the inner predictor has absorbed
	prefMin    []float64 // prefix/suffix extrema for the shift scan
	prefMax    []float64
	sufMin     []float64
	sufMax     []float64
	medScratch []float64 // segment-median scratch for shift candidates
}

// NewLSO wraps inner with the LSO heuristics.
func NewLSO(inner HB, cfg LSOConfig) *LSO {
	return &LSO{cfg: cfg.defaults(), inner: inner}
}

// Name implements HB.
func (l *LSO) Name() string { return l.inner.Name() + "-LSO" }

// Predict implements HB.
func (l *LSO) Predict() (float64, bool) { return l.inner.Predict() }

// Reset implements HB.
func (l *LSO) Reset() {
	l.history = l.history[:0]
	l.sorted = l.sorted[:0]
	l.lastClean = l.lastClean[:0]
	l.inner.Reset()
	l.Shifts = 0
	l.Outliers = 0
}

// History returns the retained raw sample count (for tests).
func (l *LSO) History() int { return len(l.history) }

// Observe implements HB.
func (l *LSO) Observe(x float64) {
	if cap(l.history) < l.cfg.MaxHistory {
		h := make([]float64, len(l.history), l.cfg.MaxHistory)
		copy(h, l.history)
		l.history = h
	}
	if len(l.history) == l.cfg.MaxHistory {
		// Window slide: evict the head in place and drop its order-statistic
		// entry, keeping both backing arrays stable.
		l.sortedRemove(l.history[0])
		copy(l.history, l.history[1:])
		l.history[len(l.history)-1] = x
	} else {
		l.history = append(l.history, x)
	}
	l.sortedInsert(x)

	l.computeClean()
	if k := l.findLevelShift(l.clean); k > 0 {
		l.Shifts++
		// Restart from the shift point: translate the index in the clean
		// series back to the raw history and drop everything before it.
		raw := l.cleanIndexToRaw(k, l.mask)
		n := copy(l.history, l.history[raw:])
		l.history = l.history[:n]
		l.rebuildSorted()
		l.computeClean()
	}
	l.Outliers = countTrue(l.mask)

	// Replay the inner predictor only when the labelling of the retained
	// history changed. In the common case the clean series is exactly what
	// the inner predictor already absorbed plus the new sample, and a
	// single incremental Observe produces the identical state.
	if l.cleanExtendsLast() {
		l.inner.Observe(x)
	} else {
		l.inner.Reset()
		for _, v := range l.clean {
			l.inner.Observe(v)
		}
	}
	l.lastClean = append(l.lastClean[:0], l.clean...)
}

// cleanExtendsLast reports whether clean == lastClean + [newest sample],
// i.e. no prior sample was relabelled and no window slide or shift
// discarded absorbed history.
func (l *LSO) cleanExtendsLast() bool {
	n := len(l.lastClean)
	if len(l.clean) != n+1 {
		return false
	}
	for i, v := range l.lastClean {
		if l.clean[i] != v {
			return false
		}
	}
	return true
}

// sortedInsert adds v to the ascending order-statistics view.
func (l *LSO) sortedInsert(v float64) {
	i := sort.SearchFloat64s(l.sorted, v)
	l.sorted = append(l.sorted, 0)
	copy(l.sorted[i+1:], l.sorted[i:])
	l.sorted[i] = v
}

// sortedRemove deletes one instance of v from the view.
func (l *LSO) sortedRemove(v float64) {
	i := sort.SearchFloat64s(l.sorted, v)
	copy(l.sorted[i:], l.sorted[i+1:])
	l.sorted = l.sorted[:len(l.sorted)-1]
}

// rebuildSorted reconstructs the view after a level-shift truncation.
func (l *LSO) rebuildSorted() {
	l.sorted = append(l.sorted[:0], l.history...)
	sort.Float64s(l.sorted)
}

// windowMedian returns the median of the raw window in O(1) from the
// maintained order statistics.
func (l *LSO) windowMedian() float64 {
	n := len(l.sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return l.sorted[n/2]
	}
	return (l.sorted[n/2-1] + l.sorted[n/2]) / 2
}

// computeClean refreshes l.mask (the outlier mask over the raw window) and
// l.clean (the non-outlier samples), reusing the scratch buffers. A sample
// is an outlier if it deviates from the window median by more than ψ in
// relative terms AND is part of a short (≤2 samples), already-ended run of
// such deviations. Longer runs, and runs still in progress at the end of
// the window, are candidate level shifts and must stay in the history for
// the shift detector — otherwise a genuine shift would be shredded into
// "outliers" before it can ever be recognized.
func (l *LSO) computeClean() {
	xs := l.history
	l.mask = growBool(l.mask, len(xs))
	l.clean = l.clean[:0]
	if len(xs) < 3 {
		l.clean = append(l.clean, xs...)
		return
	}
	med := l.windowMedian()
	if med <= 0 {
		l.clean = append(l.clean, xs...)
		return
	}
	l.deviant = growBool(l.deviant, len(xs))
	deviant := l.deviant
	for i, v := range xs {
		deviant[i] = relDiff(v, med) > l.cfg.Psi
	}
	for i := 0; i < len(xs); {
		if !deviant[i] {
			i++
			continue
		}
		j := i
		for j < len(xs) && deviant[j] {
			j++
		}
		if j-i <= 2 && j < len(xs) {
			for k := i; k < j; k++ {
				l.mask[k] = true
			}
		}
		i = j
	}
	for i, v := range xs {
		if !l.mask[i] {
			l.clean = append(l.clean, v)
		}
	}
}

// growBool resizes a scratch mask to n false entries without reallocating
// in steady state.
func growBool(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// findLevelShift returns the index k (in the clean series) of a detected
// level shift, or 0 if none. When several k qualify it picks the one with
// the largest relative median difference.
//
// The strict-separation screen (every sample before k below/above every
// sample from k on) runs over precomputed prefix/suffix extrema, turning
// the scan from O(n²) comparisons per observation into O(n); the segment
// medians, which do need a sort, are only computed for the rare candidates
// that survive the screen.
func (l *LSO) findLevelShift(xs []float64) int {
	n := len(xs)
	if n < 4 {
		return 0
	}
	l.prefMin = append(l.prefMin[:0], xs[0])
	l.prefMax = append(l.prefMax[:0], xs[0])
	for i := 1; i < n; i++ {
		mn, mx := l.prefMin[i-1], l.prefMax[i-1]
		if xs[i] < mn {
			mn = xs[i]
		}
		if xs[i] > mx {
			mx = xs[i]
		}
		l.prefMin = append(l.prefMin, mn)
		l.prefMax = append(l.prefMax, mx)
	}
	l.sufMin = growFloat(l.sufMin, n)
	l.sufMax = growFloat(l.sufMax, n)
	l.sufMin[n-1], l.sufMax[n-1] = xs[n-1], xs[n-1]
	for i := n - 2; i >= 0; i-- {
		mn, mx := l.sufMin[i+1], l.sufMax[i+1]
		if xs[i] < mn {
			mn = xs[i]
		}
		if xs[i] > mx {
			mx = xs[i]
		}
		l.sufMin[i], l.sufMax[i] = mn, mx
	}
	bestK, bestDiff := 0, 0.0
	// Condition 3: k+2 ≤ n with 1-based indexing, i.e. at least two
	// samples follow X_k. With 0-based k: k ≤ n-3.
	for k := 1; k <= n-3; k++ {
		increasing := l.prefMax[k-1] < l.sufMin[k]
		decreasing := l.prefMin[k-1] > l.sufMax[k]
		if !increasing && !decreasing {
			continue
		}
		m1, m2 := l.medianInto(xs[:k]), l.medianInto(xs[k:])
		d := relDiff(m1, m2)
		if d > l.cfg.Gamma && d > bestDiff {
			bestK, bestDiff = k, d
		}
	}
	return bestK
}

// medianInto computes a segment median through the reusable scratch slice.
func (l *LSO) medianInto(xs []float64) float64 {
	l.medScratch = append(l.medScratch[:0], xs...)
	sort.Float64s(l.medScratch)
	n := len(l.medScratch)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return l.medScratch[n/2]
	}
	return (l.medScratch[n/2-1] + l.medScratch[n/2]) / 2
}

func growFloat(xs []float64, n int) []float64 {
	if cap(xs) < n {
		return make([]float64, n)
	}
	return xs[:n]
}

// cleanIndexToRaw maps index k of the outlier-free series to the
// corresponding index in the raw history.
func (l *LSO) cleanIndexToRaw(k int, mask []bool) int {
	seen := 0
	for i := range mask {
		if mask[i] {
			continue
		}
		if seen == k {
			return i
		}
		seen++
	}
	return len(mask) - 1
}

// relDiff returns |a-b| / min(a, b), the paper's symmetric relative
// difference (infinite when the smaller value is non-positive but the
// values differ).
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	lo := a
	if b < lo {
		lo = b
	}
	if lo <= 0 {
		return 1e18
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / lo
}

func medianOf(xs []float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func countTrue(mask []bool) int {
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

// EvalResult summarizes running an HB predictor over a series.
type EvalResult struct {
	Name   string
	Errors []float64 // relative error per predicted sample
	// Predictions pairs each error with its forecast and actual value.
	Predictions int
}

// RMSRE returns the root mean square relative error (paper Eq. 5) of the
// evaluation, clamping |E| at clampAbs before squaring when clampAbs > 0.
// ok is false when the predictor never produced a forecast (empty or
// all-unready series), so callers get a guarded zero-count result instead
// of a division by zero.
func (r EvalResult) RMSRE(clampAbs float64) (rmsre float64, ok bool) {
	if r.Predictions == 0 || len(r.Errors) == 0 {
		return 0, false
	}
	var sum float64
	for _, e := range r.Errors {
		if clampAbs > 0 {
			if e > clampAbs {
				e = clampAbs
			} else if e < -clampAbs {
				e = -clampAbs
			}
		}
		sum += e * e
	}
	return math.Sqrt(sum / float64(len(r.Errors))), true
}

// Evaluate runs a fresh predictor over the series, collecting the relative
// error E = (X̂-X)/min(X̂,X) for every sample where a forecast existed.
// The predictor is left in its final state.
func Evaluate(p HB, series []float64) EvalResult {
	res := EvalResult{Name: p.Name()}
	for _, x := range series {
		if pred, ok := p.Predict(); ok {
			res.Errors = append(res.Errors, relErr(pred, x))
			res.Predictions++
		}
		p.Observe(x)
	}
	return res
}

func relErr(pred, actual float64) float64 {
	if pred == actual {
		return 0
	}
	lo := pred
	if actual < lo {
		lo = actual
	}
	if lo <= 0 {
		if pred > actual {
			return 1e18
		}
		return -1e18
	}
	return (pred - actual) / lo
}
