package predict

import (
	"math"
	"sort"
)

// LSOConfig tunes the level-shift/outlier heuristics of paper §5.2. The
// paper's empirically chosen values are γ = 0.3 (level-shift relative
// median difference) and ψ = 0.4 (outlier relative deviation).
type LSOConfig struct {
	Gamma float64 // γ: minimum relative difference between segment medians
	Psi   float64 // ψ: minimum relative deviation from the median for outliers
	// MaxHistory bounds the retained window (0 = default 32). The paper's
	// applications keep only 10–20 samples; the bound also keeps the
	// re-scan cheap.
	MaxHistory int
}

// DefaultLSOConfig returns the paper's parameter choices.
func DefaultLSOConfig() LSOConfig {
	return LSOConfig{Gamma: 0.3, Psi: 0.4, MaxHistory: 32}
}

func (c LSOConfig) defaults() LSOConfig {
	if c.Gamma == 0 {
		c.Gamma = 0.3
	}
	if c.Psi == 0 {
		c.Psi = 0.4
	}
	if c.MaxHistory == 0 {
		c.MaxHistory = 32
	}
	return c
}

// LSO wraps an HB predictor with the paper's two heuristics:
//
//   - Outliers — samples deviating from the window median by more than a
//     relative difference ψ — are excluded from the history fed to the
//     inner predictor (the most recent sample is never judged an outlier,
//     since it may instead be the start of a level shift).
//
//   - Level shifts — a point X_k where every earlier sample is strictly
//     below (above) every sample from X_k on, the two segment medians
//     differ by more than a relative difference γ, and at least two
//     samples follow X_k — cause all history before X_k to be discarded
//     and the inner predictor to restart from X_k.
//
// After every observation the inner predictor is rebuilt by replaying the
// retained non-outlier history, so outlier/shift relabelling stays
// consistent as new data arrives.
type LSO struct {
	cfg   LSOConfig
	inner HB

	history []float64 // raw samples since the last detected level shift
	// Shifts counts detected level shifts; Outliers counts samples
	// currently labelled as outliers.
	Shifts   int
	Outliers int
}

// NewLSO wraps inner with the LSO heuristics.
func NewLSO(inner HB, cfg LSOConfig) *LSO {
	return &LSO{cfg: cfg.defaults(), inner: inner}
}

// Name implements HB.
func (l *LSO) Name() string { return l.inner.Name() + "-LSO" }

// Predict implements HB.
func (l *LSO) Predict() (float64, bool) { return l.inner.Predict() }

// Reset implements HB.
func (l *LSO) Reset() {
	l.history = l.history[:0]
	l.inner.Reset()
	l.Shifts = 0
	l.Outliers = 0
}

// History returns the retained raw sample count (for tests).
func (l *LSO) History() int { return len(l.history) }

// Observe implements HB.
func (l *LSO) Observe(x float64) {
	l.history = append(l.history, x)
	if len(l.history) > l.cfg.MaxHistory {
		l.history = l.history[len(l.history)-l.cfg.MaxHistory:]
	}

	clean, outliers := l.removeOutliers(l.history)
	if k := l.findLevelShift(clean); k > 0 {
		l.Shifts++
		// Restart from the shift point: translate the index in the clean
		// series back to the raw history and drop everything before it.
		raw := l.cleanIndexToRaw(k, outliers)
		l.history = append([]float64(nil), l.history[raw:]...)
		clean, outliers = l.removeOutliers(l.history)
	}
	l.Outliers = countTrue(outliers)

	l.inner.Reset()
	for _, v := range clean {
		l.inner.Observe(v)
	}
}

// removeOutliers returns the samples that are not outliers, plus the
// outlier mask over the raw window. A sample is an outlier if it deviates
// from the window median by more than ψ in relative terms AND is part of a
// short (≤2 samples), already-ended run of such deviations. Longer runs,
// and runs still in progress at the end of the window, are candidate level
// shifts and must stay in the history for the shift detector — otherwise a
// genuine shift would be shredded into "outliers" before it can ever be
// recognized.
func (l *LSO) removeOutliers(xs []float64) ([]float64, []bool) {
	mask := make([]bool, len(xs))
	if len(xs) < 3 {
		return append([]float64(nil), xs...), mask
	}
	med := medianOf(xs)
	if med <= 0 {
		return append([]float64(nil), xs...), mask
	}
	deviant := make([]bool, len(xs))
	for i, v := range xs {
		deviant[i] = relDiff(v, med) > l.cfg.Psi
	}
	for i := 0; i < len(xs); {
		if !deviant[i] {
			i++
			continue
		}
		j := i
		for j < len(xs) && deviant[j] {
			j++
		}
		if j-i <= 2 && j < len(xs) {
			for k := i; k < j; k++ {
				mask[k] = true
			}
		}
		i = j
	}
	clean := make([]float64, 0, len(xs))
	for i, v := range xs {
		if !mask[i] {
			clean = append(clean, v)
		}
	}
	return clean, mask
}

// findLevelShift returns the index k (in the clean series) of a detected
// level shift, or 0 if none. When several k qualify it picks the one with
// the largest relative median difference.
func (l *LSO) findLevelShift(xs []float64) int {
	n := len(xs)
	if n < 4 {
		return 0
	}
	bestK, bestDiff := 0, 0.0
	// Condition 3: k+2 ≤ n with 1-based indexing, i.e. at least two
	// samples follow X_k. With 0-based k: k ≤ n-3.
	for k := 1; k <= n-3; k++ {
		lowMax, lowMin := maxOf(xs[:k]), minOf(xs[:k])
		hiMax, hiMin := maxOf(xs[k:]), minOf(xs[k:])
		increasing := lowMax < hiMin
		decreasing := lowMin > hiMax
		if !increasing && !decreasing {
			continue
		}
		m1, m2 := medianOf(xs[:k]), medianOf(xs[k:])
		d := relDiff(m1, m2)
		if d > l.cfg.Gamma && d > bestDiff {
			bestK, bestDiff = k, d
		}
	}
	return bestK
}

// cleanIndexToRaw maps index k of the outlier-free series to the
// corresponding index in the raw history.
func (l *LSO) cleanIndexToRaw(k int, mask []bool) int {
	seen := 0
	for i := range mask {
		if mask[i] {
			continue
		}
		if seen == k {
			return i
		}
		seen++
	}
	return len(mask) - 1
}

// relDiff returns |a-b| / min(a, b), the paper's symmetric relative
// difference (infinite when the smaller value is non-positive but the
// values differ).
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	lo := a
	if b < lo {
		lo = b
	}
	if lo <= 0 {
		return 1e18
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / lo
}

func medianOf(xs []float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func countTrue(mask []bool) int {
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

// EvalResult summarizes running an HB predictor over a series.
type EvalResult struct {
	Name   string
	Errors []float64 // relative error per predicted sample
	// Predictions pairs each error with its forecast and actual value.
	Predictions int
}

// RMSRE returns the root mean square relative error (paper Eq. 5) of the
// evaluation, clamping |E| at clampAbs before squaring when clampAbs > 0.
// ok is false when the predictor never produced a forecast (empty or
// all-unready series), so callers get a guarded zero-count result instead
// of a division by zero.
func (r EvalResult) RMSRE(clampAbs float64) (rmsre float64, ok bool) {
	if r.Predictions == 0 || len(r.Errors) == 0 {
		return 0, false
	}
	var sum float64
	for _, e := range r.Errors {
		if clampAbs > 0 {
			if e > clampAbs {
				e = clampAbs
			} else if e < -clampAbs {
				e = -clampAbs
			}
		}
		sum += e * e
	}
	return math.Sqrt(sum / float64(len(r.Errors))), true
}

// Evaluate runs a fresh predictor over the series, collecting the relative
// error E = (X̂-X)/min(X̂,X) for every sample where a forecast existed.
// The predictor is left in its final state.
func Evaluate(p HB, series []float64) EvalResult {
	res := EvalResult{Name: p.Name()}
	for _, x := range series {
		if pred, ok := p.Predict(); ok {
			res.Errors = append(res.Errors, relErr(pred, x))
			res.Predictions++
		}
		p.Observe(x)
	}
	return res
}

func relErr(pred, actual float64) float64 {
	if pred == actual {
		return 0
	}
	lo := pred
	if actual < lo {
		lo = actual
	}
	if lo <= 0 {
		if pred > actual {
			return 1e18
		}
		return -1e18
	}
	return (pred - actual) / lo
}
