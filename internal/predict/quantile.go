package predict

import "math"

// Quantiles is a three-point summary of a throughput forecast
// distribution. P10 ≤ P50 ≤ P90 always holds; all values are positive
// and finite when produced by this package.
type Quantiles struct {
	P10, P50, P90 float64
}

// QuantilePredictor is implemented by predictors that can emit a
// forecast distribution rather than a single point. Point predictors
// gain the interface through ResidualQuantile, which derives empirical
// quantiles from the window of recent Eq.-4 relative errors; ECM
// implements it natively from its conditional histograms.
type QuantilePredictor interface {
	// PredictQuantiles returns the P10/P50/P90 forecast for the next
	// value and whether enough history exists to calibrate one.
	PredictQuantiles() (Quantiles, bool)
}

// residualMinSamples is the minimum number of scored residuals before
// empirical quantiles are considered calibrated. Below it the tails are
// pure extrapolation from one or two errors.
const residualMinSamples = 3

// ResidualWindow keeps a bounded ring of recent Eq.-4 relative errors
// E = (X̂-X)/min(X̂,X) for one predictor and converts a point forecast
// into empirical throughput quantiles by inverting the error quantiles:
//
//	E ≥ 0 (overprediction):  X = X̂ / (1+E)
//	E < 0 (underprediction): X = X̂ · (1-E)
//
// X is monotone decreasing in E, so the throughput P10 comes from the
// error P90 and vice versa. Errors are clamped to ±clamp on entry, which
// keeps every stored value finite and JSON-safe even when a degenerate
// forecast produced the ±1e18 sentinel of relErr.
//
// The scratch slice used to sort errors is retained across calls, so
// Score and QuantilesFor allocate nothing in steady state.
type ResidualWindow struct {
	buf     []float64
	next    int
	full    bool
	clamp   float64
	scratch []float64
}

// NewResidualWindow returns a window retaining the last n errors
// (n ≥ 1), each clamped to ±clamp (clamp ≤ 0 means the paper's default
// bound of 10).
func NewResidualWindow(n int, clamp float64) *ResidualWindow {
	if n < 1 {
		n = 1
	}
	if clamp <= 0 {
		clamp = 10
	}
	return &ResidualWindow{
		buf:     make([]float64, 0, n),
		clamp:   clamp,
		scratch: make([]float64, 0, n),
	}
}

// Score records the Eq.-4 error of one (forecast, actual) pair. Pairs
// with a non-positive or non-finite forecast are scored as a maximal
// overprediction (+clamp) rather than skipped, so a pathological
// predictor widens its own intervals instead of silently keeping them
// tight.
func (w *ResidualWindow) Score(forecast, actual float64) {
	var e float64
	if !isFinitePositive(forecast) {
		e = w.clamp
	} else {
		e = relErr(forecast, actual)
		if e > w.clamp {
			e = w.clamp
		} else if e < -w.clamp {
			e = -w.clamp
		}
	}
	w.Push(e)
}

// Push records an already-computed (and caller-clamped) error value.
// Non-finite values are clamped to ±clamp so the window stays JSON-safe.
func (w *ResidualWindow) Push(e float64) {
	if math.IsNaN(e) {
		e = w.clamp
	} else if e > w.clamp {
		e = w.clamp
	} else if e < -w.clamp {
		e = -w.clamp
	}
	if !w.full && len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, e)
		if len(w.buf) == cap(w.buf) {
			w.full = true
			w.next = 0
		}
		return
	}
	w.buf[w.next] = e
	w.next = (w.next + 1) % len(w.buf)
}

// Count returns the number of retained errors.
func (w *ResidualWindow) Count() int { return len(w.buf) }

// Reset discards all retained errors.
func (w *ResidualWindow) Reset() {
	w.buf = w.buf[:0]
	w.next = 0
	w.full = false
}

// Errors returns the retained errors oldest-first, appended to dst.
func (w *ResidualWindow) Errors(dst []float64) []float64 {
	if w.full {
		dst = append(dst, w.buf[w.next:]...)
		return append(dst, w.buf[:w.next]...)
	}
	return append(dst, w.buf...)
}

// SetErrors replaces the window contents with errs (oldest-first),
// keeping at most the window capacity (the most recent entries win).
func (w *ResidualWindow) SetErrors(errs []float64) {
	w.Reset()
	if n := cap(w.buf); len(errs) > n {
		errs = errs[len(errs)-n:]
	}
	for _, e := range errs {
		w.Push(e)
	}
}

// QuantilesFor converts a point forecast into empirical throughput
// quantiles using the retained error distribution. ok is false until
// residualMinSamples errors have been scored or when the forecast is
// not a positive finite value.
func (w *ResidualWindow) QuantilesFor(forecast float64) (Quantiles, bool) {
	var q Quantiles
	var ok bool
	q, ok, w.scratch = QuantilesForErrors(forecast, w.buf, w.scratch)
	return q, ok
}

// QuantilesForErrors derives empirical throughput quantiles for a point
// forecast from a window of Eq.-4 relative errors, by inverting the
// error quantiles (see ResidualWindow). scratch (may be nil) is used to
// sort a copy of errs and is returned for reuse, so steady-state callers
// allocate nothing. ok is false with fewer than 3 errors or a
// non-positive/non-finite forecast.
func QuantilesForErrors(forecast float64, errs, scratch []float64) (Quantiles, bool, []float64) {
	if len(errs) < residualMinSamples || !isFinitePositive(forecast) {
		return Quantiles{}, false, scratch
	}
	scratch = append(scratch[:0], errs...)
	insertionSort(scratch)
	e10 := percentileSorted(scratch, 0.10)
	e50 := percentileSorted(scratch, 0.50)
	e90 := percentileSorted(scratch, 0.90)
	// X is monotone decreasing in E: the largest errors (overprediction)
	// map to the lowest throughputs.
	q := Quantiles{
		P10: invertRelErr(forecast, e90),
		P50: invertRelErr(forecast, e50),
		P90: invertRelErr(forecast, e10),
	}
	return q, true, scratch
}

// invertRelErr solves Eq. 4 for the actual value X given the forecast
// and an error quantile e.
func invertRelErr(forecast, e float64) float64 {
	if e >= 0 {
		return forecast / (1 + e)
	}
	return forecast * (1 - e)
}

// percentileSorted returns the p-th (0..1) percentile of an ascending
// slice with linear interpolation between order statistics.
func percentileSorted(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 1 {
		return xs[0]
	}
	pos := p * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return xs[n-1]
	}
	frac := pos - float64(i)
	return xs[i] + frac*(xs[i+1]-xs[i])
}

// insertionSort sorts xs ascending in place. The windows sorted here are
// small (≤ ~64 entries) and the allocation-free guarantee matters more
// than asymptotics, so this replaces sort.Float64s on the hot path.
func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

func isFinitePositive(x float64) bool {
	return x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x)
}

// ResidualQuantile adapts any point HB predictor into a
// QuantilePredictor: each Observe first scores the inner predictor's
// standing forecast against the actual value, then feeds the inner
// predictor. It implements both HB and QuantilePredictor and is the
// offline counterpart of the per-family residual tracking predsvc
// sessions do internally.
type ResidualQuantile struct {
	inner HB
	win   *ResidualWindow
}

// NewResidualQuantile wraps inner with a residual window of the given
// size (window ≤ 0 means 50, the service's default error window) and
// error clamp (≤ 0 means 10).
func NewResidualQuantile(inner HB, window int, clamp float64) *ResidualQuantile {
	if window <= 0 {
		window = 50
	}
	return &ResidualQuantile{inner: inner, win: NewResidualWindow(window, clamp)}
}

// Name implements HB.
func (r *ResidualQuantile) Name() string { return r.inner.Name() }

// Predict implements HB.
func (r *ResidualQuantile) Predict() (float64, bool) { return r.inner.Predict() }

// Observe implements HB.
func (r *ResidualQuantile) Observe(x float64) {
	if f, ok := r.inner.Predict(); ok {
		r.win.Score(f, x)
	}
	r.inner.Observe(x)
}

// Reset implements HB.
func (r *ResidualQuantile) Reset() {
	r.inner.Reset()
	r.win.Reset()
}

// PredictQuantiles implements QuantilePredictor.
func (r *ResidualQuantile) PredictQuantiles() (Quantiles, bool) {
	f, ok := r.inner.Predict()
	if !ok {
		return Quantiles{}, false
	}
	return r.win.QuantilesFor(f)
}

// Window exposes the residual window (for serialization and tests).
func (r *ResidualQuantile) Window() *ResidualWindow { return r.win }
