package predict

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestARWarmupFallsBackToMean(t *testing.T) {
	a := NewAR(3, 0)
	if _, ok := a.Predict(); ok {
		t.Error("AR with no data should not predict")
	}
	feed(a, 4, 6)
	got, ok := a.Predict()
	if !ok || got != 5 {
		t.Errorf("warm-up prediction = %v,%v; want mean 5", got, ok)
	}
}

func TestARConstantSeries(t *testing.T) {
	a := NewAR(2, 0)
	for i := 0; i < 50; i++ {
		a.Observe(7)
	}
	got, _ := a.Predict()
	if math.Abs(got-7) > 1e-9 {
		t.Errorf("AR on constant series = %v, want 7", got)
	}
}

func TestARTracksAR1Process(t *testing.T) {
	// Generate x_t = 0.8·x_{t-1} + ε; AR(1) should forecast ≈0.8·x_last
	// around the mean and beat the window mean.
	rng := sim.NewRNG(5)
	a := NewAR(1, 64)
	const phi = 0.8
	x := 0.0
	var xs []float64
	for i := 0; i < 500; i++ {
		x = phi*x + rng.Normal(0, 1)
		xs = append(xs, x+20) // positive offset like throughput
	}
	var errAR, errMean float64
	m := NewMA(64)
	for _, v := range xs {
		if p, ok := a.Predict(); ok {
			errAR += (p - v) * (p - v)
		}
		if p, ok := m.Predict(); ok {
			errMean += (p - v) * (p - v)
		}
		a.Observe(v)
		m.Observe(v)
	}
	if errAR >= errMean {
		t.Errorf("AR(1) MSE %.1f not better than mean MSE %.1f on an AR(1) process", errAR, errMean)
	}
}

func TestARWhiteNoiseNotWorseThanMean(t *testing.T) {
	rng := sim.NewRNG(9)
	a := NewAR(3, 0)
	m := NewMA(32)
	var errAR, errMean float64
	for i := 0; i < 400; i++ {
		v := rng.Normal(10, 1)
		if p, ok := a.Predict(); ok {
			errAR += (p - v) * (p - v)
		}
		if p, ok := m.Predict(); ok {
			errMean += (p - v) * (p - v)
		}
		a.Observe(v)
		m.Observe(v)
	}
	if errAR > errMean*1.25 {
		t.Errorf("AR(3) MSE %.1f much worse than mean MSE %.1f on white noise", errAR, errMean)
	}
}

func TestARGuardAgainstExplosiveForecast(t *testing.T) {
	a := NewAR(4, 16)
	// Degenerate near-linear ramp then a jump; the fit can go wild, the
	// guard must keep the forecast within a sane band of the window.
	for i := 0; i < 16; i++ {
		a.Observe(float64(i))
	}
	got, ok := a.Predict()
	if !ok {
		t.Fatal("no prediction")
	}
	if got < -40 || got > 60 {
		t.Errorf("forecast %v outside guard band", got)
	}
}

func TestARReset(t *testing.T) {
	a := NewAR(2, 0)
	feed(a, 1, 2, 3, 4, 5)
	a.Reset()
	if _, ok := a.Predict(); ok {
		t.Error("reset AR should not predict")
	}
}

func TestARName(t *testing.T) {
	if NewAR(3, 0).Name() != "AR(3)" {
		t.Errorf("name = %q", NewAR(3, 0).Name())
	}
}

func TestHybridStartsAsFB(t *testing.T) {
	h := NewHybrid(FBConfig{Model: ModelPFTK}, 0.5)
	fb := NewFB(FBConfig{Model: ModelPFTK})
	in := FBInputs{RTT: 0.08, LossRate: 0.01, AvailBw: 10e6}
	if h.Predict(in) != fb.Predict(in) {
		t.Error("untrained hybrid must equal pure FB")
	}
	if h.Bias() != 1 {
		t.Errorf("untrained bias %v, want 1", h.Bias())
	}
}

func TestHybridLearnsBias(t *testing.T) {
	h := NewHybrid(FBConfig{Model: ModelPFTK}, 0.5)
	in := FBInputs{RTT: 0.08, LossRate: 0.01, AvailBw: 10e6}
	raw := h.Predict(in)
	// The path consistently delivers half of what the formula says.
	for i := 0; i < 10; i++ {
		h.Predict(in)
		h.Observe(raw / 2)
	}
	corrected := h.Predict(in)
	if math.Abs(corrected-raw/2) > raw*0.05 {
		t.Errorf("hybrid after training = %v, want ≈%v", corrected, raw/2)
	}
	if h.Samples() != 10 {
		t.Errorf("samples = %d", h.Samples())
	}
}

func TestHybridBiasClamped(t *testing.T) {
	h := NewHybrid(FBConfig{Model: ModelPFTK}, 0.9)
	in := FBInputs{RTT: 0.08, LossRate: 0.01, AvailBw: 10e6}
	raw := h.Predict(in)
	for i := 0; i < 20; i++ {
		h.Predict(in)
		h.Observe(raw * 1e6) // absurd outcome
	}
	if h.Bias() > math.Exp(3)+1e-9 {
		t.Errorf("bias %v exceeds clamp e³", h.Bias())
	}
}

func TestHybridReset(t *testing.T) {
	h := NewHybrid(FBConfig{}, 0.5)
	in := FBInputs{RTT: 0.1, LossRate: 0.01}
	h.Predict(in)
	h.Observe(1e6)
	h.Reset()
	if h.Bias() != 1 || h.Samples() != 0 {
		t.Error("reset did not clear bias")
	}
}

func TestHybridIgnoresObserveWithoutPredict(t *testing.T) {
	h := NewHybrid(FBConfig{}, 0.5)
	h.Observe(5e6)
	if h.Samples() != 0 {
		t.Error("observe without a preceding predict should be ignored")
	}
}
