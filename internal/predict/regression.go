package predict

import "math"

// regDim is the fixed feature dimension of the Regression predictor:
// [1, last-X, mean of last-K X, avail-bw, window-limit, Mathis-rate],
// all in Mbps so the normal equations stay well conditioned.
const regDim = 6

// RegressionConfig tunes the online least-squares predictor.
type RegressionConfig struct {
	// Forget is the exponential forgetting factor β applied to the
	// accumulated normal equations per observation (0 < β ≤ 1, default
	// 0.97 ≈ a ~30-sample memory).
	Forget float64
	// Ridge is the Tikhonov regularizer λ added to the normal matrix
	// diagonal at solve time (default 1e-3), which keeps the solve
	// stable while features are still collinear early in a path's life.
	Ridge float64
	// LastK is how many recent throughputs feed the history features
	// (default 8).
	LastK int
}

func (c RegressionConfig) defaults() RegressionConfig {
	if c.Forget <= 0 || c.Forget > 1 {
		c.Forget = 0.97
	}
	if c.Ridge <= 0 {
		c.Ridge = 1e-3
	}
	if c.LastK <= 0 {
		c.LastK = 8
	}
	return c
}

// Regression is the Vazhkudai & Schopf-style online least-squares
// predictor: it regresses the next throughput on path features — RTT,
// loss rate, available bandwidth (fed via SetFeatures from FB-side
// measurements) and the last K throughputs — using exponentially
// decayed normal equations A ← βA + zzᵀ, b ← βb + z·y solved with a
// small fixed-size Cholesky factorization. It implements HB; calling
// SetFeatures before each Observe is optional (without features it
// degrades to a history-only autoregression).
//
// Forecasts are guarded the same way Holt-Winters forecasts are clamped
// in the serving layer: a degenerate solve (singular matrix, non-finite
// or non-positive output) falls back to the recent-history mean, and
// every forecast is clamped into a band around the observed history, so
// no ≤0 or ±Inf value can enter rolling error windows or JSON
// snapshots.
type Regression struct {
	cfg RegressionConfig

	// Normal equations, decayed. a holds the upper triangle of the
	// symmetric d×d matrix row-major: a[idx(i,j)] for i ≤ j.
	a [regDim * (regDim + 1) / 2]float64
	b [regDim]float64
	n uint64

	hist     []float64 // ring of the last K observations, raw bps
	histNext int
	histFull bool

	feat    FBInputs
	hasFeat bool

	// Solve scratch, reused so Predict allocates nothing.
	chol [regDim * regDim]float64
	w    [regDim]float64
}

// NewRegression returns an online least-squares predictor.
func NewRegression(cfg RegressionConfig) *Regression {
	cfg = cfg.defaults()
	return &Regression{cfg: cfg, hist: make([]float64, 0, cfg.LastK)}
}

// Name implements HB.
func (r *Regression) Name() string { return "regression" }

// SetFeatures supplies the conditioning measurements for the next
// Observe/Predict pair. Stale callers may simply never invoke it; the
// predictor then regresses on history features alone.
func (r *Regression) SetFeatures(in FBInputs) {
	r.feat = in
	r.hasFeat = true
}

// ClearFeatures drops the standing conditioning measurements (e.g. when
// the serving layer deems them stale).
func (r *Regression) ClearFeatures() { r.hasFeat = false }

// Observe implements HB.
func (r *Regression) Observe(x float64) {
	if !isFinitePositive(x) {
		return
	}
	var z [regDim]float64
	r.features(&z)
	y := x / 1e6
	beta := r.cfg.Forget
	k := 0
	for i := 0; i < regDim; i++ {
		for j := i; j < regDim; j++ {
			r.a[k] = beta*r.a[k] + z[i]*z[j]
			k++
		}
		r.b[i] = beta*r.b[i] + z[i]*y
	}
	r.n++
	r.histPush(x)
}

// Predict implements HB.
func (r *Regression) Predict() (float64, bool) {
	if r.n == 0 {
		return 0, false
	}
	var z [regDim]float64
	r.features(&z)
	pred, ok := r.solveDot(&z)
	lo, hi := r.histBand()
	if !ok || !isFinitePositive(pred) {
		pred = r.histMean()
	}
	pred *= 1e6
	if pred < lo {
		pred = lo
	} else if pred > hi {
		pred = hi
	}
	return pred, true
}

// Reset implements HB.
func (r *Regression) Reset() {
	r.a = [regDim * (regDim + 1) / 2]float64{}
	r.b = [regDim]float64{}
	r.n = 0
	r.hist = r.hist[:0]
	r.histNext = 0
	r.histFull = false
	r.hasFeat = false
}

// RegressionState is the JSON-serializable snapshot of a Regression
// predictor's decayed normal equations and history ring.
type RegressionState struct {
	A    []float64 `json:"a"` // upper triangle of the normal matrix
	B    []float64 `json:"b"`
	N    uint64    `json:"n"`
	Hist []float64 `json:"hist,omitempty"` // oldest-first recent throughputs, bps
}

// State captures the predictor for a snapshot. Pending features are not
// part of the state: the serving layer re-derives them from the
// snapshot's FB inputs on restore.
func (r *Regression) State() RegressionState {
	st := RegressionState{
		A: append([]float64(nil), r.a[:]...),
		B: append([]float64(nil), r.b[:]...),
		N: r.n,
	}
	st.Hist = r.histChronological(nil)
	return st
}

// SetState restores a snapshot produced by State, overwriting all
// learned state. Snapshots from a different feature dimension are
// ignored (the predictor keeps its replay-trained state instead).
func (r *Regression) SetState(st RegressionState) {
	if len(st.A) != len(r.a) || len(st.B) != regDim {
		return
	}
	copy(r.a[:], st.A)
	copy(r.b[:], st.B)
	r.n = st.N
	r.hist = r.hist[:0]
	r.histNext = 0
	r.histFull = false
	for _, v := range st.Hist {
		if isFinitePositive(v) {
			r.histPush(v)
		}
	}
}

// features fills z with the current feature vector in Mbps.
func (r *Regression) features(z *[regDim]float64) {
	const featCap = 1e4 // 10 Gbps cap keeps rate features bounded
	z[0] = 1
	if n := len(r.hist); n > 0 {
		last := r.histNext - 1
		if last < 0 {
			last = n - 1
		}
		if !r.histFull {
			last = n - 1
		}
		z[1] = r.hist[last] / 1e6
		z[2] = r.histMean()
	}
	if r.hasFeat {
		z[3] = r.feat.AvailBw / 1e6
		if z[3] > featCap {
			z[3] = featCap
		}
		if r.feat.RTT > 0 {
			// Receiver-window limit for the FB default 1 MiB window.
			z[4] = float64(1<<20) * 8 / r.feat.RTT / 1e6
			if z[4] > featCap {
				z[4] = featCap
			}
			if r.feat.LossRate > 0 {
				// Mathis et al. square-root rate: MSS/(RTT·sqrt(2p/3)).
				z[5] = 1460 * 8 / (r.feat.RTT * math.Sqrt(2*r.feat.LossRate/3)) / 1e6
				if z[5] > featCap {
					z[5] = featCap
				}
			} else {
				z[5] = z[4]
			}
		}
	}
}

func (r *Regression) histPush(x float64) {
	if !r.histFull && len(r.hist) < cap(r.hist) {
		r.hist = append(r.hist, x)
		if len(r.hist) == cap(r.hist) {
			r.histFull = true
			r.histNext = 0
		}
		return
	}
	r.hist[r.histNext] = x
	r.histNext = (r.histNext + 1) % len(r.hist)
}

// histMean returns the mean of the history ring in Mbps (0 when empty).
// The sum runs in chronological order, not ring-storage order: float
// addition is not associative, and a snapshot-restored ring is compacted
// while a live one is rotated — summing both the same way keeps restored
// predictions bit-identical to the live session's.
func (r *Regression) histMean() float64 {
	if len(r.hist) == 0 {
		return 0
	}
	var sum float64
	if r.histFull {
		for _, v := range r.hist[r.histNext:] {
			sum += v
		}
		for _, v := range r.hist[:r.histNext] {
			sum += v
		}
	} else {
		for _, v := range r.hist {
			sum += v
		}
	}
	return sum / float64(len(r.hist)) / 1e6
}

// histBand returns the clamp band [min/16, max·16] around the observed
// history in bps, or a wide default before any observation.
func (r *Regression) histBand() (lo, hi float64) {
	if len(r.hist) == 0 {
		return 1, 1e12
	}
	lo, hi = r.hist[0], r.hist[0]
	for _, v := range r.hist[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo / 16, hi * 16
}

func (r *Regression) histChronological(dst []float64) []float64 {
	if r.histFull {
		dst = append(dst, r.hist[r.histNext:]...)
		return append(dst, r.hist[:r.histNext]...)
	}
	return append(dst, r.hist...)
}

// solveDot solves (A + λI)w = b by Cholesky factorization and returns
// w·z (in Mbps). ok is false when the factorization breaks down.
func (r *Regression) solveDot(z *[regDim]float64) (float64, bool) {
	// Expand the triangle into the scratch matrix with the ridge term;
	// scale λ with the matrix trace so regularization tracks the decayed
	// sample mass.
	var trace float64
	k := 0
	for i := 0; i < regDim; i++ {
		trace += r.a[k]
		k += regDim - i
	}
	lam := r.cfg.Ridge * (1 + trace/regDim)
	k = 0
	for i := 0; i < regDim; i++ {
		for j := i; j < regDim; j++ {
			r.chol[i*regDim+j] = r.a[k]
			r.chol[j*regDim+i] = r.a[k]
			k++
		}
		r.chol[i*regDim+i] += lam
	}
	// In-place Cholesky: chol becomes the lower factor L.
	for i := 0; i < regDim; i++ {
		for j := 0; j <= i; j++ {
			sum := r.chol[i*regDim+j]
			for m := 0; m < j; m++ {
				sum -= r.chol[i*regDim+m] * r.chol[j*regDim+m]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return 0, false
				}
				r.chol[i*regDim+i] = math.Sqrt(sum)
			} else {
				r.chol[i*regDim+j] = sum / r.chol[j*regDim+j]
			}
		}
	}
	// Forward then backward substitution: L·Lᵀ·w = b.
	for i := 0; i < regDim; i++ {
		sum := r.b[i]
		for m := 0; m < i; m++ {
			sum -= r.chol[i*regDim+m] * r.w[m]
		}
		r.w[i] = sum / r.chol[i*regDim+i]
	}
	for i := regDim - 1; i >= 0; i-- {
		sum := r.w[i]
		for m := i + 1; m < regDim; m++ {
			sum -= r.chol[m*regDim+i] * r.w[m]
		}
		r.w[i] = sum / r.chol[i*regDim+i]
	}
	var dot float64
	for i := 0; i < regDim; i++ {
		dot += r.w[i] * z[i]
	}
	return dot, true
}
