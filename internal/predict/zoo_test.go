package predict

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestResidualWindowQuantileInversion(t *testing.T) {
	w := NewResidualWindow(50, 10)
	// A known symmetric error distribution around zero.
	for _, e := range []float64{-0.5, -0.25, 0, 0.25, 0.5} {
		w.Push(e)
	}
	q, ok := w.QuantilesFor(100)
	if !ok {
		t.Fatal("expected calibrated quantiles")
	}
	if !(q.P10 <= q.P50 && q.P50 <= q.P90) {
		t.Fatalf("quantiles out of order: %+v", q)
	}
	// Median error 0 → P50 equals the forecast exactly.
	if q.P50 != 100 {
		t.Fatalf("P50 = %v, want 100", q.P50)
	}
	// E=+0.4 (P90 of errors by interpolation) → X = 100/1.4; E=-0.4 → X = 140.
	if want := 100 / 1.4; math.Abs(q.P10-want) > 1e-9 {
		t.Fatalf("P10 = %v, want %v", q.P10, want)
	}
	if want := 140.0; math.Abs(q.P90-want) > 1e-9 {
		t.Fatalf("P90 = %v, want %v", q.P90, want)
	}
}

func TestResidualWindowClampsAndStaysFinite(t *testing.T) {
	w := NewResidualWindow(8, 10)
	w.Score(0, 5e6)           // non-positive forecast → +clamp, not ±1e18
	w.Score(math.Inf(1), 5e6) // non-finite forecast
	w.Score(5e6, 0)           // degenerate actual → relErr sentinel, clamped
	w.Push(math.NaN())        // direct garbage
	w.Push(math.Inf(-1))      //
	for _, e := range w.Errors(nil) {
		if math.IsNaN(e) || math.Abs(e) > 10 {
			t.Fatalf("unclamped error %v in window", e)
		}
	}
	if n := w.Count(); n != 5 {
		t.Fatalf("count = %d, want 5", n)
	}
}

func TestResidualWindowErrorsRoundTrip(t *testing.T) {
	w := NewResidualWindow(4, 10)
	for _, e := range []float64{1, 2, 3, 4, 5, 6} { // wraps: keeps 3,4,5,6
		w.Push(e)
	}
	got := w.Errors(nil)
	want := []float64{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("Errors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Errors = %v, want %v", got, want)
		}
	}
	w2 := NewResidualWindow(4, 10)
	w2.SetErrors(got)
	got2 := w2.Errors(nil)
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("after SetErrors: %v, want %v", got2, want)
		}
	}
}

// TestResidualQuantileCoverage checks the wrapper's core promise: on a
// noisy but stationary series, roughly 80% of actuals land inside
// [P10, P90].
func TestResidualQuantileCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewResidualQuantile(NewEWMA(0.8), 50, 10)
	in, total := 0, 0
	for i := 0; i < 2000; i++ {
		x := 10e6 * (1 + 0.3*rng.NormFloat64())
		if x < 1e5 {
			x = 1e5
		}
		if q, ok := p.PredictQuantiles(); ok {
			total++
			if x >= q.P10 && x <= q.P90 {
				in++
			}
		}
		p.Observe(x)
	}
	if total < 1000 {
		t.Fatalf("only %d calibrated predictions", total)
	}
	cov := float64(in) / float64(total)
	if cov < 0.70 || cov > 0.90 {
		t.Fatalf("coverage = %.3f, want within [0.70, 0.90]", cov)
	}
}

func TestRegressionLearnsFeatureSignal(t *testing.T) {
	// Throughput is a clean function of available bandwidth; history alone
	// cannot track it, the feature regression can.
	rng := rand.New(rand.NewSource(7))
	reg := NewRegression(RegressionConfig{})
	ma := NewMA(10)
	var regErr, maErr float64
	n := 0
	for i := 0; i < 400; i++ {
		abw := 5e6 + 45e6*rng.Float64()
		x := 0.8 * abw
		reg.SetFeatures(FBInputs{RTT: 0.05, AvailBw: abw})
		if i > 50 {
			f1, _ := reg.Predict()
			f2, _ := ma.Predict()
			regErr += math.Abs(relErr(f1, x))
			maErr += math.Abs(relErr(f2, x))
			n++
		}
		reg.Observe(x)
		ma.Observe(x)
	}
	if regErr >= maErr {
		t.Fatalf("regression mean |E| %.3f not better than MA %.3f", regErr/float64(n), maErr/float64(n))
	}
	if regErr/float64(n) > 0.05 {
		t.Fatalf("regression mean |E| %.3f, want < 0.05 on a clean linear signal", regErr/float64(n))
	}
}

// TestRegressionForecastGuards mirrors the PR-2 Holt-Winters fix for the
// new family: no input sequence may produce a ≤0 or non-finite forecast,
// because those values would poison rolling error windows and JSON
// snapshots.
func TestRegressionForecastGuards(t *testing.T) {
	reg := NewRegression(RegressionConfig{})
	// A collapsing series with adversarial features: huge loss swings,
	// zero RTT, enormous avail-bw.
	series := []float64{80e6, 40e6, 10e6, 1e6, 1e5, 1e4, 1e3, 1e3, 1e3}
	feats := []FBInputs{
		{RTT: 0, LossRate: 0, AvailBw: 0},
		{RTT: 1e-9, LossRate: 1, AvailBw: 1e18},
		{RTT: 10, LossRate: 1e-9, AvailBw: 1},
		{RTT: 0.05, LossRate: 0.5, AvailBw: 1e12},
		{},
		{RTT: math.MaxFloat64, AvailBw: math.MaxFloat64},
		{RTT: 0.001},
		{LossRate: 1},
		{AvailBw: 5e3},
	}
	for i, x := range series {
		reg.SetFeatures(feats[i])
		if f, ok := reg.Predict(); ok {
			if !(f > 0) || math.IsInf(f, 0) || math.IsNaN(f) {
				t.Fatalf("step %d: guarded forecast violated: %v", i, f)
			}
		}
		reg.Observe(x)
	}
	// Garbage observations must be rejected, not absorbed.
	reg.Observe(math.Inf(1))
	reg.Observe(-5)
	reg.Observe(math.NaN())
	f, ok := reg.Predict()
	if !ok || !(f > 0) || math.IsInf(f, 0) || math.IsNaN(f) {
		t.Fatalf("forecast after garbage observations: %v %v", f, ok)
	}
}

func TestRegressionStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	reg := NewRegression(RegressionConfig{})
	for i := 0; i < 100; i++ {
		reg.SetFeatures(FBInputs{RTT: 0.04, LossRate: 0.01, AvailBw: 20e6})
		reg.Observe(8e6 * (1 + 0.2*rng.Float64()))
	}
	st := reg.State()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var st2 RegressionState
	if err := json.Unmarshal(raw, &st2); err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegression(RegressionConfig{})
	reg2.SetState(st2)
	reg2.SetFeatures(FBInputs{RTT: 0.04, LossRate: 0.01, AvailBw: 20e6})
	reg.SetFeatures(FBInputs{RTT: 0.04, LossRate: 0.01, AvailBw: 20e6})
	f1, ok1 := reg.Predict()
	f2, ok2 := reg2.Predict()
	if ok1 != ok2 || f1 != f2 {
		t.Fatalf("restored forecast %v,%v != original %v,%v", f2, ok2, f1, ok1)
	}
}

func TestECMConditionalBeatsGlobal(t *testing.T) {
	// Two regimes distinguished only by loss rate: lossless ≈ 50 Mbps,
	// lossy ≈ 2 Mbps. After warm-up, conditioning must recover the right
	// regime's level while the global median sits in between.
	e := NewECM(ECMConfig{})
	lossless := FBInputs{RTT: 0.02, LossRate: 0, AvailBw: 60e6}
	lossy := FBInputs{RTT: 0.02, LossRate: 0.02, AvailBw: 60e6}
	for i := 0; i < 40; i++ {
		e.SetConditions(lossless)
		e.Observe(50e6)
		e.SetConditions(lossy)
		e.Observe(2e6)
	}
	e.SetConditions(lossless)
	f, ok := e.Predict()
	if !ok || math.Abs(f-50e6) > 1e6 {
		t.Fatalf("lossless forecast %v %v, want ≈50e6", f, ok)
	}
	q, ok := e.PredictQuantiles()
	if !ok || !(q.P10 <= q.P50 && q.P50 <= q.P90) {
		t.Fatalf("bad quantiles %+v %v", q, ok)
	}
	e.SetConditions(lossy)
	f, ok = e.Predict()
	if !ok || math.Abs(f-2e6) > 1e5 {
		t.Fatalf("lossy forecast %v %v, want ≈2e6", f, ok)
	}
}

func TestECMGlobalFallback(t *testing.T) {
	e := NewECM(ECMConfig{MinBucket: 5})
	for i := 0; i < 10; i++ {
		e.Observe(10e6) // no conditions set: global only
	}
	// A fresh bucket with too few samples falls back to the global median.
	e.SetConditions(FBInputs{RTT: 0.1, LossRate: 0.05, AvailBw: 1e6})
	e.Observe(1e6)
	f, ok := e.Predict()
	if !ok || f != 10e6 {
		t.Fatalf("fallback forecast %v %v, want global median 10e6", f, ok)
	}
}

// TestECMForecastGuards mirrors the HW clamp fix for ECM: garbage
// observations are rejected and every emitted value is a real observed
// sample — positive and finite.
func TestECMForecastGuards(t *testing.T) {
	e := NewECM(ECMConfig{})
	e.SetConditions(FBInputs{RTT: 0.05, LossRate: 0.001, AvailBw: 10e6})
	e.Observe(math.Inf(1))
	e.Observe(-1)
	e.Observe(0)
	e.Observe(math.NaN())
	if _, ok := e.Predict(); ok {
		t.Fatal("forecast from garbage-only history")
	}
	e.Observe(5e6)
	f, ok := e.Predict()
	if !ok || f != 5e6 {
		t.Fatalf("forecast %v %v, want the one valid sample", f, ok)
	}
}

func TestECMStateRoundTrip(t *testing.T) {
	e := NewECM(ECMConfig{})
	conds := []FBInputs{
		{RTT: 0.02, LossRate: 0, AvailBw: 60e6},
		{RTT: 0.1, LossRate: 0.01, AvailBw: 5e6},
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		c := conds[i%2]
		e.SetConditions(c)
		e.Observe(1e6 * (1 + 40*rng.Float64()))
	}
	st := e.State()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var st2 ECMState
	if err := json.Unmarshal(raw, &st2); err != nil {
		t.Fatal(err)
	}
	e2 := NewECM(ECMConfig{})
	e2.SetState(st2)
	for _, c := range conds {
		e.SetConditions(c)
		e2.SetConditions(c)
		f1, ok1 := e.Predict()
		f2, ok2 := e2.Predict()
		if ok1 != ok2 || f1 != f2 {
			t.Fatalf("restored forecast %v,%v != original %v,%v", f2, ok2, f1, ok1)
		}
		q1, _ := e.PredictQuantiles()
		q2, _ := e2.PredictQuantiles()
		if q1 != q2 {
			t.Fatalf("restored quantiles %+v != original %+v", q2, q1)
		}
	}
}

func TestStabilitySwitcherRegimes(t *testing.T) {
	stable := NewEWMA(0.8)
	volatile := NewMA(10)
	s := NewStabilitySwitcher(stable, volatile, SwitcherConfig{Window: 8, CoVThreshold: 0.25})
	for i := 0; i < 20; i++ {
		s.Observe(10e6 * (1 + 0.01*float64(i%2)))
	}
	if s.Volatile() {
		t.Fatal("near-constant series judged volatile")
	}
	f, _ := s.Predict()
	ef, _ := stable.Predict()
	if f != ef {
		t.Fatalf("stable regime forecast %v, want EWMA's %v", f, ef)
	}
	// Violent alternation flips the regime to the robust MA.
	for i := 0; i < 20; i++ {
		x := 1e6
		if i%2 == 0 {
			x = 50e6
		}
		s.Observe(x)
	}
	if !s.Volatile() {
		t.Fatal("alternating series judged stable")
	}
	f, _ = s.Predict()
	mf, _ := volatile.Predict()
	if f != mf {
		t.Fatalf("volatile regime forecast %v, want MA's %v", f, mf)
	}
}

// Steady-state allocation budgets, mirroring TestLSOObserveSteadyStateAllocs:
// the serving hot path runs these per observation for every tracked path.

func TestRegressionObserveSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	reg := NewRegression(RegressionConfig{})
	for i := 0; i < 200; i++ {
		reg.SetFeatures(FBInputs{RTT: 0.05, LossRate: 0.001, AvailBw: 30e6})
		reg.Observe(20e6 * (1 + 0.3*rng.Float64()))
	}
	x := 20e6 * (1 + 0.3*rng.Float64())
	avg := testing.AllocsPerRun(300, func() {
		reg.SetFeatures(FBInputs{RTT: 0.05, LossRate: 0.001, AvailBw: 30e6})
		reg.Observe(x)
		reg.Predict()
	})
	if avg != 0 {
		t.Fatalf("steady-state Regression Observe+Predict allocates %.1f times", avg)
	}
}

func TestECMObserveSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := NewECM(ECMConfig{})
	in := FBInputs{RTT: 0.05, LossRate: 0.001, AvailBw: 30e6}
	for i := 0; i < 200; i++ {
		e.SetConditions(in)
		e.Observe(20e6 * (1 + 0.3*rng.Float64()))
	}
	x := 20e6 * (1 + 0.3*rng.Float64())
	avg := testing.AllocsPerRun(300, func() {
		e.SetConditions(in)
		e.Observe(x)
		e.Predict()
		e.PredictQuantiles()
	})
	if avg != 0 {
		t.Fatalf("steady-state ECM Observe+Predict allocates %.1f times", avg)
	}
}
