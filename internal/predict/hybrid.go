package predict

import "math"

// Hybrid implements the paper's first future-work direction (§7):
// "examine hybrid predictors, which rely on TCP models as well as on
// recent history."
//
// The hybrid treats the FB formula as a structural prior and learns its
// multiplicative bias on the given path from history: each time a transfer
// completes, it observes the ratio R/R̂_FB between the achieved throughput
// and the formula's prediction, smooths the log-ratio with an EWMA, and
// scales future FB predictions by the learned correction. With no history
// it reduces to pure FB; with history it converges toward HB accuracy
// while retaining FB's ability to react instantly to measured path-state
// changes (a loss-rate jump moves the prediction immediately, which no
// pure history method can do).
type Hybrid struct {
	fb    *FB
	alpha float64

	logBias float64
	n       int

	lastInputs FBInputs
	havePred   bool
}

// NewHybrid builds a hybrid predictor around an FB configuration. alpha is
// the EWMA weight for the bias correction; the paper's HB results suggest
// weighting recent samples heavily (0.5 works well in our experiments).
func NewHybrid(cfg FBConfig, alpha float64) *Hybrid {
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.5
	}
	return &Hybrid{fb: NewFB(cfg), alpha: alpha}
}

// Name identifies the predictor.
func (h *Hybrid) Name() string { return "hybrid-FB+EWMA" }

// Predict returns the bias-corrected FB prediction for the given pre-flow
// measurements.
func (h *Hybrid) Predict(in FBInputs) float64 {
	h.lastInputs = in
	h.havePred = true
	raw := h.fb.Predict(in)
	if h.n == 0 {
		return raw
	}
	return raw * expApprox(h.logBias)
}

// Observe feeds the achieved throughput of the transfer whose inputs were
// last passed to Predict, updating the bias estimate.
func (h *Hybrid) Observe(actualBps float64) {
	if !h.havePred || actualBps <= 0 {
		return
	}
	raw := h.fb.Predict(h.lastInputs)
	if raw <= 0 {
		return
	}
	sample := logApprox(actualBps / raw)
	if h.n == 0 {
		h.logBias = sample
	} else {
		h.logBias = h.alpha*sample + (1-h.alpha)*h.logBias
	}
	h.n++
}

// Reset clears the learned bias.
func (h *Hybrid) Reset() {
	h.logBias = 0
	h.n = 0
	h.havePred = false
}

// Bias returns the current multiplicative correction (1.0 when untrained).
func (h *Hybrid) Bias() float64 {
	if h.n == 0 {
		return 1
	}
	return expApprox(h.logBias)
}

// Samples returns how many observations trained the bias.
func (h *Hybrid) Samples() int { return h.n }

// Tiny wrappers so the math dependency stays in one spot and the bias is
// clamped into a sane band (the correction should fix model bias, not
// substitute for the model entirely).
func logApprox(x float64) float64 {
	l := math.Log(x)
	if l > 3 {
		l = 3
	}
	if l < -3 {
		l = -3
	}
	return l
}

func expApprox(x float64) float64 { return math.Exp(x) }
