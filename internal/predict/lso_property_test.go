package predict

import (
	"math/rand"
	"testing"
)

// naiveLSO is the pre-optimization reference implementation: it re-sorts
// the window and rebuilds the inner predictor from scratch on every single
// observation. The incremental LSO must match it bit for bit.
type naiveLSO struct {
	cfg     LSOConfig
	inner   HB
	history []float64

	Shifts   int
	Outliers int
}

func newNaiveLSO(inner HB, cfg LSOConfig) *naiveLSO {
	return &naiveLSO{cfg: cfg.defaults(), inner: inner}
}

func (l *naiveLSO) Predict() (float64, bool) { return l.inner.Predict() }

func (l *naiveLSO) Observe(x float64) {
	l.history = append(l.history, x)
	if len(l.history) > l.cfg.MaxHistory {
		l.history = l.history[len(l.history)-l.cfg.MaxHistory:]
	}
	clean, outliers := l.removeOutliers(l.history)
	if k := l.findLevelShift(clean); k > 0 {
		l.Shifts++
		raw := l.cleanIndexToRaw(k, outliers)
		l.history = append([]float64(nil), l.history[raw:]...)
		clean, outliers = l.removeOutliers(l.history)
	}
	l.Outliers = countTrue(outliers)
	l.inner.Reset()
	for _, v := range clean {
		l.inner.Observe(v)
	}
}

func (l *naiveLSO) removeOutliers(xs []float64) ([]float64, []bool) {
	mask := make([]bool, len(xs))
	if len(xs) < 3 {
		return append([]float64(nil), xs...), mask
	}
	med := medianOf(xs)
	if med <= 0 {
		return append([]float64(nil), xs...), mask
	}
	deviant := make([]bool, len(xs))
	for i, v := range xs {
		deviant[i] = relDiff(v, med) > l.cfg.Psi
	}
	for i := 0; i < len(xs); {
		if !deviant[i] {
			i++
			continue
		}
		j := i
		for j < len(xs) && deviant[j] {
			j++
		}
		if j-i <= 2 && j < len(xs) {
			for k := i; k < j; k++ {
				mask[k] = true
			}
		}
		i = j
	}
	clean := make([]float64, 0, len(xs))
	for i, v := range xs {
		if !mask[i] {
			clean = append(clean, v)
		}
	}
	return clean, mask
}

func (l *naiveLSO) findLevelShift(xs []float64) int {
	n := len(xs)
	if n < 4 {
		return 0
	}
	bestK, bestDiff := 0, 0.0
	for k := 1; k <= n-3; k++ {
		lowMax, lowMin := maxOf(xs[:k]), minOf(xs[:k])
		hiMax, hiMin := maxOf(xs[k:]), minOf(xs[k:])
		increasing := lowMax < hiMin
		decreasing := lowMin > hiMax
		if !increasing && !decreasing {
			continue
		}
		m1, m2 := medianOf(xs[:k]), medianOf(xs[k:])
		d := relDiff(m1, m2)
		if d > l.cfg.Gamma && d > bestDiff {
			bestK, bestDiff = k, d
		}
	}
	return bestK
}

func (l *naiveLSO) cleanIndexToRaw(k int, mask []bool) int {
	seen := 0
	for i := range mask {
		if mask[i] {
			continue
		}
		if seen == k {
			return i
		}
		seen++
	}
	return len(mask) - 1
}

// throughputSeries generates a randomized series with the structures LSO
// exists to handle: a wandering base level, multiplicative noise, injected
// outlier spikes/dips (runs of 1–2), and occasional sharp level shifts.
func throughputSeries(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, 0, n)
	level := 2e6 + rng.Float64()*20e6
	for len(xs) < n {
		switch r := rng.Float64(); {
		case r < 0.03:
			// Level shift up or down by 1.5–4×.
			f := 1.5 + rng.Float64()*2.5
			if rng.Intn(2) == 0 {
				level *= f
			} else {
				level /= f
			}
		case r < 0.10:
			// Outlier run of 1–2 samples far off the level.
			run := 1 + rng.Intn(2)
			f := 2 + rng.Float64()*3
			v := level * f
			if rng.Intn(2) == 0 {
				v = level / f
			}
			for i := 0; i < run && len(xs) < n; i++ {
				xs = append(xs, v*(1+0.02*rng.NormFloat64()))
			}
			continue
		}
		xs = append(xs, level*(1+0.08*rng.NormFloat64()))
	}
	return xs
}

// TestLSOIncrementalMatchesNaive drives the incremental LSO and the naive
// rebuild-everything twin over randomized throughput series and requires
// bit-identical forecasts, shift counts, and outlier labelling after every
// observation, across all inner predictor families and several window
// sizes.
func TestLSOIncrementalMatchesNaive(t *testing.T) {
	inners := map[string]func() HB{
		"MA8":   func() HB { return NewMA(8) },
		"EWMA":  func() HB { return NewEWMA(0.5) },
		"HW":    func() HB { return NewHoltWinters(0.8, 0.2) },
		"Last":  func() HB { return NewMA(1) },
		"MA100": func() HB { return NewMA(100) },
	}
	for name, mk := range inners {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				for _, hist := range []int{10, 32} {
					cfg := LSOConfig{MaxHistory: hist}
					fast := NewLSO(mk(), cfg)
					slow := newNaiveLSO(mk(), cfg)
					rng := rand.New(rand.NewSource(seed))
					for i, x := range throughputSeries(rng, 400) {
						fast.Observe(x)
						slow.Observe(x)
						fp, fok := fast.Predict()
						sp, sok := slow.Predict()
						if fok != sok || fp != sp {
							t.Fatalf("seed %d hist %d sample %d: forecast diverged: incremental (%v,%v) naive (%v,%v)",
								seed, hist, i, fp, fok, sp, sok)
						}
						if fast.Shifts != slow.Shifts || fast.Outliers != slow.Outliers {
							t.Fatalf("seed %d hist %d sample %d: labelling diverged: shifts %d/%d outliers %d/%d",
								seed, hist, i, fast.Shifts, slow.Shifts, fast.Outliers, slow.Outliers)
						}
					}
				}
			}
		})
	}
}

// TestLSOObserveSteadyStateAllocs: once warm, the incremental Observe path
// must not touch the allocator (inner replay included).
func TestLSOObserveSteadyStateAllocs(t *testing.T) {
	l := NewLSO(NewHoltWinters(0.8, 0.2), DefaultLSOConfig())
	rng := rand.New(rand.NewSource(7))
	series := throughputSeries(rng, 600)
	for _, x := range series[:200] {
		l.Observe(x)
	}
	i := 200
	avg := testing.AllocsPerRun(300, func() {
		l.Observe(series[i])
		i++
	})
	if avg > 0 {
		t.Errorf("steady-state Observe allocates %.2f allocs/op, want 0", avg)
	}
}
