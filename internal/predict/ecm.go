package predict

import (
	"math"
	"sort"
)

// ECMConfig tunes the Empirical Conditional Method predictor.
type ECMConfig struct {
	// BucketCap bounds the samples retained per conditioning bucket
	// (default 64).
	BucketCap int
	// GlobalCap bounds the unconditional fallback ring (default 128).
	GlobalCap int
	// MinBucket is the minimum samples a bucket needs before it is
	// preferred over the global distribution (default 5).
	MinBucket int
}

func (c ECMConfig) defaults() ECMConfig {
	if c.BucketCap <= 0 {
		c.BucketCap = 64
	}
	if c.GlobalCap <= 0 {
		c.GlobalCap = 128
	}
	if c.MinBucket <= 0 {
		c.MinBucket = 5
	}
	return c
}

// ecmKey identifies one conditioning bucket: log-scale bins of the path
// measurements that Zheng's ECM conditions on. Small integer fields keep
// the key comparable and cheap to hash.
type ecmKey struct {
	RTT  int8 // floor(log2(RTT in ms)), clamped; -1 when unknown
	Loss int8 // floor(log10(loss rate)) in [-5,-1]; 0 = lossless
	ABW  int8 // floor(log2(avail-bw in Mbps)), clamped; -20 when unknown
}

// ECM is the Empirical Conditional Method predictor (Zheng et al.): it
// buckets the conditioning variables (loss rate, RTT, available
// bandwidth) on log scales, keeps a bounded ring of observed throughputs
// per bucket plus an unconditional fallback ring, and predicts from the
// empirical distribution of the matching bucket — the median as the
// point forecast (HB interface) and native P10/P50/P90 as quantiles
// (QuantilePredictor interface), no residual wrapper needed.
//
// Like Regression, its outputs are guarded: forecasts are drawn from
// observed (positive, finite) samples only, so no ≤0 or ±Inf value can
// reach rolling error windows or snapshots.
type ECM struct {
	cfg ECMConfig

	cond    ecmKey
	hasCond bool

	buckets map[ecmKey]*ecmRing
	global  *ecmRing

	scratch []float64
}

// NewECM returns an Empirical Conditional Method predictor.
func NewECM(cfg ECMConfig) *ECM {
	cfg = cfg.defaults()
	return &ECM{
		cfg:     cfg,
		buckets: make(map[ecmKey]*ecmRing),
		global:  newEcmRing(cfg.GlobalCap),
		scratch: make([]float64, 0, maxInt(cfg.BucketCap, cfg.GlobalCap)),
	}
}

// Name implements HB.
func (e *ECM) Name() string { return "ECM" }

// SetConditions supplies the conditioning measurements for subsequent
// Observe/Predict calls.
func (e *ECM) SetConditions(in FBInputs) {
	e.cond = bucketKey(in)
	e.hasCond = true
}

// ClearConditions drops the standing conditioning measurements.
func (e *ECM) ClearConditions() { e.hasCond = false }

// Observe implements HB. Non-positive or non-finite samples are
// rejected so the retained distributions stay JSON-safe.
func (e *ECM) Observe(x float64) {
	if !isFinitePositive(x) {
		return
	}
	e.global.push(x)
	if !e.hasCond {
		return
	}
	r := e.buckets[e.cond]
	if r == nil {
		r = newEcmRing(e.cfg.BucketCap)
		e.buckets[e.cond] = r
	}
	r.push(x)
}

// ring returns the distribution Predict and PredictQuantiles draw from:
// the conditioning bucket when it has enough mass, else the global
// fallback.
func (e *ECM) ring() *ecmRing {
	if e.hasCond {
		if r := e.buckets[e.cond]; r != nil && r.count() >= e.cfg.MinBucket {
			return r
		}
	}
	return e.global
}

// Predict implements HB: the forecast is the empirical median of the
// selected distribution.
func (e *ECM) Predict() (float64, bool) {
	r := e.ring()
	if r.count() == 0 {
		return 0, false
	}
	e.sortInto(r)
	return percentileSorted(e.scratch, 0.50), true
}

// PredictQuantiles implements QuantilePredictor.
func (e *ECM) PredictQuantiles() (Quantiles, bool) {
	r := e.ring()
	if r.count() < residualMinSamples {
		return Quantiles{}, false
	}
	e.sortInto(r)
	return Quantiles{
		P10: percentileSorted(e.scratch, 0.10),
		P50: percentileSorted(e.scratch, 0.50),
		P90: percentileSorted(e.scratch, 0.90),
	}, true
}

func (e *ECM) sortInto(r *ecmRing) {
	e.scratch = r.chronological(e.scratch[:0])
	insertionSort(e.scratch)
}

// Reset implements HB.
func (e *ECM) Reset() {
	e.buckets = make(map[ecmKey]*ecmRing)
	e.global.reset()
	e.hasCond = false
}

// ECMBucketState is one conditioning bucket's retained samples.
type ECMBucketState struct {
	RTT     int8      `json:"rtt"`
	Loss    int8      `json:"loss"`
	ABW     int8      `json:"abw"`
	Samples []float64 `json:"samples"`
}

// ECMState is the JSON-serializable snapshot of an ECM predictor.
// Buckets are sorted by key so encoding is deterministic.
type ECMState struct {
	Global  []float64        `json:"global,omitempty"`
	Buckets []ECMBucketState `json:"buckets,omitempty"`
}

// State captures the predictor for a snapshot.
func (e *ECM) State() ECMState {
	st := ECMState{Global: e.global.chronological(nil)}
	for k, r := range e.buckets {
		st.Buckets = append(st.Buckets, ECMBucketState{
			RTT: k.RTT, Loss: k.Loss, ABW: k.ABW,
			Samples: r.chronological(nil),
		})
	}
	sort.Slice(st.Buckets, func(i, j int) bool {
		a, b := st.Buckets[i], st.Buckets[j]
		if a.RTT != b.RTT {
			return a.RTT < b.RTT
		}
		if a.Loss != b.Loss {
			return a.Loss < b.Loss
		}
		return a.ABW < b.ABW
	})
	return st
}

// SetState restores a snapshot produced by State, overwriting all
// retained distributions. Conditioning state is not part of the
// snapshot; the serving layer re-derives it from FB inputs on restore.
func (e *ECM) SetState(st ECMState) {
	e.buckets = make(map[ecmKey]*ecmRing, len(st.Buckets))
	e.global.reset()
	for _, v := range st.Global {
		if isFinitePositive(v) {
			e.global.push(v)
		}
	}
	for _, b := range st.Buckets {
		r := newEcmRing(e.cfg.BucketCap)
		for _, v := range b.Samples {
			if isFinitePositive(v) {
				r.push(v)
			}
		}
		if r.count() > 0 {
			e.buckets[ecmKey{RTT: b.RTT, Loss: b.Loss, ABW: b.ABW}] = r
		}
	}
}

// bucketKey bins the conditioning variables on log scales.
func bucketKey(in FBInputs) ecmKey {
	var k ecmKey
	if in.RTT > 0 {
		k.RTT = clampInt8(int(math.Floor(math.Log2(in.RTT*1000))), 0, 12)
	} else {
		k.RTT = -1
	}
	if in.LossRate > 0 {
		k.Loss = clampInt8(int(math.Floor(math.Log10(in.LossRate))), -5, -1)
	}
	if in.AvailBw > 0 {
		k.ABW = clampInt8(int(math.Floor(math.Log2(in.AvailBw/1e6))), -4, 14)
	} else {
		k.ABW = -20
	}
	return k
}

func clampInt8(v, lo, hi int) int8 {
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return int8(v)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ecmRing is a bounded FIFO of throughput samples.
type ecmRing struct {
	buf  []float64
	next int
	full bool
}

func newEcmRing(n int) *ecmRing {
	return &ecmRing{buf: make([]float64, 0, n)}
}

func (r *ecmRing) push(x float64) {
	if !r.full && len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, x)
		if len(r.buf) == cap(r.buf) {
			r.full = true
			r.next = 0
		}
		return
	}
	r.buf[r.next] = x
	r.next = (r.next + 1) % len(r.buf)
}

func (r *ecmRing) count() int { return len(r.buf) }

func (r *ecmRing) reset() {
	r.buf = r.buf[:0]
	r.next = 0
	r.full = false
}

func (r *ecmRing) chronological(dst []float64) []float64 {
	if r.full {
		dst = append(dst, r.buf[r.next:]...)
		return append(dst, r.buf[:r.next]...)
	}
	return append(dst, r.buf...)
}
