package predict

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFBLosslessWindowLimited(t *testing.T) {
	fb := NewFB(FBConfig{MaxWindowBytes: 20 * 1024})
	// W/T̂ = 20KB·8/0.1 ≈ 1.64 Mbps, below the 5 Mbps avail-bw → W/T̂.
	got := fb.Predict(FBInputs{RTT: 0.1, LossRate: 0, AvailBw: 5e6})
	want := 20 * 1024 * 8 / 0.1
	if math.Abs(got-want) > 1 {
		t.Errorf("window-limited prediction %v, want %v", got, want)
	}
	if !fb.WindowLimited(FBInputs{RTT: 0.1, AvailBw: 5e6}) {
		t.Error("WindowLimited should be true")
	}
}

func TestFBLosslessAvailBwLimited(t *testing.T) {
	fb := NewFB(FBConfig{MaxWindowBytes: 1 << 20})
	// W/T̂ = 8Mb/0.1 = 84 Mbps ≫ 3 Mbps avail-bw → Â.
	got := fb.Predict(FBInputs{RTT: 0.1, LossRate: 0, AvailBw: 3e6})
	if got != 3e6 {
		t.Errorf("avail-bw prediction %v, want 3e6", got)
	}
	if fb.WindowLimited(FBInputs{RTT: 0.1, AvailBw: 3e6}) {
		t.Error("WindowLimited should be false")
	}
}

func TestFBLosslessNoAvailBw(t *testing.T) {
	fb := NewFB(FBConfig{MaxWindowBytes: 1 << 20})
	got := fb.Predict(FBInputs{RTT: 0.1, LossRate: 0, AvailBw: 0})
	want := float64(1<<20) * 8 / 0.1
	if math.Abs(got-want) > 1 {
		t.Errorf("no-avail-bw prediction %v, want W/T̂ = %v", got, want)
	}
}

func TestFBLossyUsesPFTK(t *testing.T) {
	fb := NewFB(FBConfig{})
	lossy := fb.Predict(FBInputs{RTT: 0.1, LossRate: 0.01, AvailBw: 100e6})
	lossless := fb.Predict(FBInputs{RTT: 0.1, LossRate: 0, AvailBw: 100e6})
	if lossy >= lossless {
		t.Errorf("lossy prediction %v should be below lossless %v", lossy, lossless)
	}
	// The lossy branch must ignore avail-bw entirely (paper Eq. 3).
	with := fb.Predict(FBInputs{RTT: 0.1, LossRate: 0.01, AvailBw: 1e3})
	without := fb.Predict(FBInputs{RTT: 0.1, LossRate: 0.01, AvailBw: 100e6})
	if with != without {
		t.Error("PFTK branch should not depend on avail-bw")
	}
}

func TestFBZeroRTT(t *testing.T) {
	fb := NewFB(FBConfig{})
	if got := fb.Predict(FBInputs{RTT: 0, LossRate: 0.01}); got != 0 {
		t.Errorf("zero-RTT prediction %v, want 0", got)
	}
}

func TestRTO(t *testing.T) {
	if RTO(0.05) != 1 {
		t.Errorf("RTO(50ms) = %v, want 1 s floor", RTO(0.05))
	}
	if RTO(0.8) != 1.6 {
		t.Errorf("RTO(800ms) = %v, want 2·SRTT = 1.6", RTO(0.8))
	}
}

func TestFBModelsOrdering(t *testing.T) {
	in := FBInputs{RTT: 0.08, LossRate: 0.02, AvailBw: 50e6}
	pftk := NewFB(FBConfig{Model: ModelPFTK}).Predict(in)
	mathis := NewFB(FBConfig{Model: ModelMathis}).Predict(in)
	if pftk >= mathis {
		t.Errorf("PFTK (%v) should predict below Mathis (%v): extra timeout term", pftk, mathis)
	}
	rev := NewFB(FBConfig{Model: ModelRevisedPFTK}).Predict(in)
	if rev <= 0 || math.IsInf(rev, 0) {
		t.Errorf("revised PFTK = %v", rev)
	}
}

func TestFBMonotoneInLossProperty(t *testing.T) {
	fb := NewFB(FBConfig{})
	f := func(aRaw, bRaw uint16) bool {
		a := 0.0005 + float64(aRaw%1000)/3000
		b := 0.0005 + float64(bRaw%1000)/3000
		if a > b {
			a, b = b, a
		}
		pa := fb.Predict(FBInputs{RTT: 0.1, LossRate: a})
		pb := fb.Predict(FBInputs{RTT: 0.1, LossRate: b})
		return pa >= pb-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFBWindowCapAlwaysHolds(t *testing.T) {
	f := func(pRaw, tRaw, wRaw uint16) bool {
		w := 8*1024 + int(wRaw)%(1<<20)
		fb := NewFB(FBConfig{MaxWindowBytes: w})
		in := FBInputs{
			RTT:      0.005 + float64(tRaw%500)/1000,
			LossRate: float64(pRaw%100) / 1000,
			AvailBw:  20e6,
		}
		pred := fb.Predict(in)
		cap := float64(w) * 8 / in.RTT
		return pred <= cap+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModelString(t *testing.T) {
	names := map[Model]string{
		ModelPFTK: "PFTK", ModelPFTKPaper: "PFTK(paper)",
		ModelRevisedPFTK: "revised-PFTK", ModelMathis: "Mathis",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestFBDefaultsApplied(t *testing.T) {
	fb := NewFB(FBConfig{})
	if fb.cfg.MSS != 1460 || fb.cfg.MaxWindowBytes != 1<<20 || fb.cfg.B != 2 {
		t.Errorf("defaults not applied: %+v", fb.cfg)
	}
}
