package predict

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestLSODetectsIncreasingShift(t *testing.T) {
	l := NewLSO(NewMA(10), DefaultLSOConfig())
	feed(l, 1, 1.1, 0.9, 1, 1.05, 5, 5.1, 4.9, 5)
	if l.Shifts == 0 {
		t.Fatal("increasing level shift not detected")
	}
	// After the restart the forecast should reflect the new level only.
	got, _ := l.Predict()
	if got < 4 {
		t.Errorf("post-shift forecast %v, want ≈5", got)
	}
}

func TestLSODetectsDecreasingShift(t *testing.T) {
	l := NewLSO(NewMA(10), DefaultLSOConfig())
	feed(l, 8, 8.2, 7.9, 8.1, 2, 2.1, 1.9)
	if l.Shifts == 0 {
		t.Fatal("decreasing level shift not detected")
	}
	got, _ := l.Predict()
	if got > 3 {
		t.Errorf("post-shift forecast %v, want ≈2", got)
	}
}

func TestLSOShiftNeedsTwoFollowers(t *testing.T) {
	// Condition 3 (k+2 ≤ n): a single high sample is not yet a shift.
	l := NewLSO(NewMA(10), DefaultLSOConfig())
	feed(l, 1, 1.05, 0.95, 1, 5)
	if l.Shifts != 0 {
		t.Error("shift declared with only one sample after the change")
	}
	feed(l, 5.1)
	if l.Shifts != 0 {
		t.Error("shift declared with only two samples at the new level... condition is k+2<=n with the shift at k; 2 followers are required")
	}
	feed(l, 4.9)
	if l.Shifts == 0 {
		t.Error("shift not declared once two samples follow the shift point")
	}
}

func TestLSOSmallShiftIgnored(t *testing.T) {
	// A 10% level change is below γ=0.3.
	l := NewLSO(NewMA(10), DefaultLSOConfig())
	feed(l, 1, 1, 1, 1, 1.1, 1.1, 1.1, 1.1)
	if l.Shifts != 0 {
		t.Errorf("shift detected for a sub-threshold change (γ=0.3)")
	}
}

func TestLSOIgnoresOutlier(t *testing.T) {
	l := NewLSO(NewMA(10), DefaultLSOConfig())
	feed(l, 10, 10.2, 9.8, 10, 2 /* outlier */, 10.1, 9.9)
	if l.Outliers == 0 {
		t.Fatal("outlier not detected")
	}
	if l.Shifts != 0 {
		t.Error("outlier misclassified as level shift")
	}
	got, _ := l.Predict()
	if math.Abs(got-10) > 0.5 {
		t.Errorf("forecast %v should ignore the outlier (want ≈10)", got)
	}
}

func TestLSOOutlierVsPlainMA(t *testing.T) {
	series := []float64{10, 10, 10, 1, 10, 10}
	plain := Evaluate(NewMA(5), append([]float64(nil), series...))
	lso := Evaluate(NewLSO(NewMA(5), DefaultLSOConfig()), append([]float64(nil), series...))
	rms := func(es []float64) float64 {
		var s float64
		for _, e := range es {
			s += e * e
		}
		return math.Sqrt(s / float64(len(es)))
	}
	// Prediction of the outlier itself is equally bad for both, but the
	// post-outlier forecasts recover faster with LSO.
	if rms(lso.Errors) >= rms(plain.Errors) {
		t.Errorf("LSO RMS %v not better than plain %v", rms(lso.Errors), rms(plain.Errors))
	}
}

func TestLSOLastSampleNeverOutlier(t *testing.T) {
	l := NewLSO(NewMA(10), DefaultLSOConfig())
	feed(l, 10, 10, 10, 10, 3)
	// The 3 could be the start of a shift; it must remain in history.
	if l.Outliers != 0 {
		t.Error("most recent sample must not be labelled an outlier")
	}
}

func TestLSOStationaryNoise(t *testing.T) {
	// Pure stationary noise: no shifts should be detected at γ=0.3 with
	// ±5% noise.
	rng := sim.NewRNG(4)
	l := NewLSO(NewMA(10), DefaultLSOConfig())
	for i := 0; i < 200; i++ {
		l.Observe(rng.Normal(10, 0.3))
	}
	if l.Shifts > 1 {
		t.Errorf("detected %d shifts in stationary noise", l.Shifts)
	}
}

func TestLSOHistoryBounded(t *testing.T) {
	cfg := DefaultLSOConfig()
	cfg.MaxHistory = 16
	l := NewLSO(NewMA(10), cfg)
	for i := 0; i < 100; i++ {
		l.Observe(5)
	}
	if l.History() > 16 {
		t.Errorf("history %d exceeds MaxHistory 16", l.History())
	}
}

func TestLSOReset(t *testing.T) {
	l := NewLSO(NewMA(5), DefaultLSOConfig())
	feed(l, 1, 1, 1, 5, 5, 5)
	l.Reset()
	if l.History() != 0 || l.Shifts != 0 || l.Outliers != 0 {
		t.Error("reset did not clear state")
	}
	if _, ok := l.Predict(); ok {
		t.Error("reset LSO should not predict")
	}
}

func TestLSOPassthroughWhenClean(t *testing.T) {
	// On a clean series LSO must agree with the bare predictor.
	series := []float64{5, 5.1, 4.9, 5.05, 4.95, 5}
	bare := Evaluate(NewMA(3), append([]float64(nil), series...))
	wrapped := Evaluate(NewLSO(NewMA(3), DefaultLSOConfig()), append([]float64(nil), series...))
	if len(bare.Errors) != len(wrapped.Errors) {
		t.Fatal("prediction counts differ")
	}
	for i := range bare.Errors {
		if math.Abs(bare.Errors[i]-wrapped.Errors[i]) > 1e-9 {
			t.Fatalf("clean-series divergence at %d: %v vs %v", i, bare.Errors[i], wrapped.Errors[i])
		}
	}
}

func TestLSOPaperTraceShapes(t *testing.T) {
	// The paper's Fig. 15 claim: on a shift+outlier trace, HW-LSO beats
	// plain HW substantially.
	rng := sim.NewRNG(77)
	var series []float64
	for i := 0; i < 150; i++ {
		level := 5.0
		if i >= 70 {
			level = 9.0
		}
		v := rng.Normal(level, 0.3)
		if rng.Bool(0.06) {
			v *= 0.25
		}
		series = append(series, v)
	}
	// Errors in the 15 epochs right after the shift: plain MA(10) averages
	// across the two levels for ~10 samples, LSO restarts and snaps to the
	// new level (paper Fig. 15 d-f). Unavoidable outlier-epoch errors are
	// identical for both, so the comparison targets the shift transient.
	postShiftRMS := func(p HB) float64 {
		res := Evaluate(p, append([]float64(nil), series...))
		var s float64
		n := 0
		for i := 73; i < 82; i++ {
			e := res.Errors[i-1] // Errors[k] predicts series[k+1]
			s += e * e
			n++
		}
		return math.Sqrt(s / float64(n))
	}
	plainMA := postShiftRMS(NewMA(10))
	lsoMA := postShiftRMS(NewLSO(NewMA(10), DefaultLSOConfig()))
	if lsoMA >= plainMA*0.75 {
		t.Errorf("MA-LSO post-shift RMSRE %v not clearly better than MA %v", lsoMA, plainMA)
	}
	// HW self-heals quickly (α=0.8), so the paper reports only a slight
	// gain; LSO must at least not hurt materially.
	plainHW := postShiftRMS(NewHoltWinters(0.8, 0.2))
	lsoHW := postShiftRMS(NewLSO(NewHoltWinters(0.8, 0.2), DefaultLSOConfig()))
	if lsoHW > plainHW*1.1 {
		t.Errorf("HW-LSO post-shift RMSRE %v materially worse than HW %v", lsoHW, plainHW)
	}
}

func TestRelDiff(t *testing.T) {
	if relDiff(1, 1.3) <= 0.29 || relDiff(1, 1.3) >= 0.31 {
		t.Errorf("relDiff(1,1.3) = %v, want 0.3", relDiff(1, 1.3))
	}
	if relDiff(1.3, 1) != relDiff(1, 1.3) {
		t.Error("relDiff must be symmetric")
	}
	if relDiff(2, 2) != 0 {
		t.Error("relDiff of equal values must be 0")
	}
	if relDiff(0, 1) < 1e17 {
		t.Error("relDiff with non-positive min should be huge")
	}
}

func TestMedianOf(t *testing.T) {
	if medianOf([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if medianOf([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("even median wrong")
	}
	if medianOf(nil) != 0 {
		t.Error("empty median should be 0")
	}
}

func TestEvalResultRMSREGuard(t *testing.T) {
	// Empty series: no forecast is ever made, so RMSRE must report ok=false
	// (a guarded zero-count result) rather than dividing by zero.
	if r, ok := Evaluate(NewMA(5), nil).RMSRE(10); ok || r != 0 {
		t.Errorf("empty series: got (%v, %v), want (0, false)", r, ok)
	}
	// All-unready series: a single observation never yields a prediction.
	if r, ok := Evaluate(NewMA(5), []float64{4e6}).RMSRE(10); ok || r != 0 {
		t.Errorf("all-unready series: got (%v, %v), want (0, false)", r, ok)
	}
	// Non-degenerate case: errors are clamped and averaged under a sqrt.
	res := Evaluate(NewMA(1), []float64{1e6, 2e6, 2e6})
	r, ok := res.RMSRE(10)
	if !ok {
		t.Fatal("expected ok=true with 2 predictions")
	}
	// Errors: (1e6-2e6)/1e6 = -1, (2e6-2e6) = 0 → RMSRE = sqrt(1/2).
	want := math.Sqrt(0.5)
	if math.Abs(r-want) > 1e-12 {
		t.Errorf("RMSRE = %v, want %v", r, want)
	}
}
