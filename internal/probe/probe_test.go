package probe_test

import (
	"math"
	"testing"

	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/sim"
)

func probePath(eng *sim.Engine, lossProb float64) *netem.Path {
	rng := sim.NewRNG(1)
	return netem.NewPath(eng, rng, netem.PathSpec{
		Name: "probe",
		Forward: []netem.Hop{
			{CapacityBps: 10e6, PropDelay: 0.025, BufferBytes: 1 << 20, LossProb: lossProb},
		},
		Reverse: []netem.Hop{
			{CapacityBps: 10e6, PropDelay: 0.025, BufferBytes: 1 << 20},
		},
	})
}

func TestProberMeasuresBaseRTT(t *testing.T) {
	eng := sim.NewEngine()
	path := probePath(eng, 0)
	probe.NewResponder(path.B, 2)
	res := probe.Measure(eng, path.A, 2, probe.Config{}, 10)
	base := path.BaseRTT(41)
	if math.Abs(res.MeanRTT-base) > 1e-6 {
		t.Errorf("mean RTT %.6f, want base %.6f on idle path", res.MeanRTT, base)
	}
	if res.LossRate != 0 {
		t.Errorf("loss rate %v on lossless path", res.LossRate)
	}
	if res.Sent < 95 || res.Sent > 105 {
		t.Errorf("sent %d probes in 10 s at 100 ms, want ≈100", res.Sent)
	}
	if res.MinRTT > res.MeanRTT || res.MeanRTT > res.MaxRTT {
		t.Error("RTT ordering broken")
	}
}

func TestProberMeasuresLossRate(t *testing.T) {
	eng := sim.NewEngine()
	path := probePath(eng, 0.1)
	probe.NewResponder(path.B, 2)
	res := probe.Measure(eng, path.A, 2, probe.Config{}, 120)
	if math.Abs(res.LossRate-0.1) > 0.035 {
		t.Errorf("loss rate %.3f, want ≈0.1", res.LossRate)
	}
}

func TestProberSeesQueueingDelay(t *testing.T) {
	eng := sim.NewEngine()
	path := probePath(eng, 0)
	probe.NewResponder(path.B, 2)
	// Saturating cross traffic into the bottleneck.
	src := netem.NewPoissonSource(eng, sim.NewRNG(2), 99, 9.5e6, 1000, nil, path.Bottleneck())
	src.Start()
	res := probe.Measure(eng, path.A, 2, probe.Config{}, 20)
	src.Stop()
	base := path.BaseRTT(41)
	// ρ=0.95 M/M/1: mean queue ≈ 19 packets ≈ 15 ms at 10 Mbps.
	if res.MeanRTT < base+0.005 {
		t.Errorf("mean RTT %.4f on 95%%-utilized path, want clearly above base %.4f", res.MeanRTT, base)
	}
	if res.MaxRTT <= res.MinRTT {
		t.Error("expected RTT variation under load")
	}
}

func TestProberWindowResets(t *testing.T) {
	eng := sim.NewEngine()
	path := probePath(eng, 0)
	probe.NewResponder(path.B, 2)
	p := probe.NewProber(eng, path.A, 2, probe.Config{})
	p.Start()
	eng.RunUntil(5)
	w1 := p.Window()
	eng.RunUntil(eng.Now() + 5)
	w2 := p.Window()
	p.Stop()
	if w1.Received == 0 || w2.Received == 0 {
		t.Fatal("windows empty")
	}
	// Both windows should have roughly 50 probes each, not cumulative.
	if w2.Sent > w1.Sent*2 {
		t.Errorf("second window (%d) looks cumulative vs first (%d)", w2.Sent, w1.Sent)
	}
}

func TestProberStops(t *testing.T) {
	eng := sim.NewEngine()
	path := probePath(eng, 0)
	probe.NewResponder(path.B, 2)
	p := probe.NewProber(eng, path.A, 2, probe.Config{})
	p.Start()
	eng.RunUntil(2)
	p.Stop()
	if p.Running() {
		t.Error("prober still running after Stop")
	}
	eng.RunUntil(4)
	w := p.Window()
	if w.Sent > 25 {
		t.Errorf("probes kept flowing after Stop: %d", w.Sent)
	}
}

func TestProbeConfigDefaults(t *testing.T) {
	cfg := probe.Config{}.Defaults()
	if cfg.Interval != 0.1 || cfg.ProbeSize != 41 || cfg.LossTimeout != 2.0 {
		t.Errorf("defaults = %+v, want paper's 41B @ 100ms", cfg)
	}
}

func TestLateEchoCountsAsLoss(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	// One-way delay of 3 s exceeds the 2 s loss timeout.
	path := netem.NewPath(eng, rng, netem.PathSpec{
		Name: "slow",
		Forward: []netem.Hop{
			{CapacityBps: 10e6, PropDelay: 1.5, BufferBytes: 1 << 20},
		},
	})
	probe.NewResponder(path.B, 2)
	res := probe.Measure(eng, path.A, 2, probe.Config{}, 10)
	if res.LossRate < 0.9 {
		t.Errorf("loss rate %.2f, want ≈1 when echoes always exceed the timeout", res.LossRate)
	}
}
