// Package probe implements the paper's "homespun ping utility": a periodic
// prober that sends a small packet every interval and measures RTT and loss
// over a window, plus the echo responder for the far end.
//
// The prober produces exactly the estimates the FB predictor consumes:
// (T̂, p̂) when run before a target flow and (T̃, p̃) when run during one.
package probe

import (
	"repro/internal/netem"
	"repro/internal/sim"
)

// Result summarizes one probing window.
type Result struct {
	Sent     int
	Received int
	MeanRTT  float64 // seconds; 0 if nothing was received
	MinRTT   float64
	MaxRTT   float64
	LossRate float64 // fraction of probes with no echo
}

// Config tunes the prober. Zero fields are defaulted to the paper's values:
// a 41-byte probe every 100 ms, with a 2 s loss timeout.
type Config struct {
	Interval    float64 // seconds between probes
	ProbeSize   int     // bytes
	LossTimeout float64 // how long to wait for an echo before declaring loss
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Interval == 0 {
		c.Interval = 0.1
	}
	if c.ProbeSize == 0 {
		c.ProbeSize = 41
	}
	if c.LossTimeout == 0 {
		c.LossTimeout = 2.0
	}
	return c
}

// Responder echoes probe packets back through its endpoint. Install one on
// the far endpoint of the path for each probe flow.
type Responder struct {
	out *netem.Endpoint
}

// NewResponder registers an echo responder for flow on ep.
func NewResponder(ep *netem.Endpoint, flow netem.FlowID) *Responder {
	r := &Responder{out: ep}
	ep.Register(flow, netem.ReceiverFunc(r.onProbe))
	return r
}

func (r *Responder) onProbe(pkt *netem.Packet) {
	if pkt.Kind != netem.KindProbe {
		r.out.ReleasePacket(pkt)
		return
	}
	// Turn the probe around in place: flipping Kind and re-injecting the
	// same packet keeps the echo path allocation-free, and SendRaw
	// preserves the original departure stamp so the prober computes a full
	// round-trip time.
	pkt.Kind = netem.KindEcho
	r.out.SendRaw(pkt)
}

// Prober sends periodic probes and accumulates RTT/loss statistics. A
// single prober can run continuously; Window snapshots and resets the
// counters, which is how the testbed obtains back-to-back before/during
// estimates.
type Prober struct {
	cfg  Config
	eng  *sim.Engine
	out  *netem.Endpoint
	flow netem.FlowID

	nextSeq   int64
	pending   map[int64]sim.Timer
	sent      int
	received  int
	rttSum    float64
	rttMin    float64
	rttMax    float64
	running   bool
	tickTimer sim.Timer
}

// NewProber creates a prober for flow on endpoint ep. The far endpoint
// needs a Responder registered for the same flow.
func NewProber(eng *sim.Engine, ep *netem.Endpoint, flow netem.FlowID, cfg Config) *Prober {
	cfg = cfg.Defaults()
	p := &Prober{
		cfg:     cfg,
		eng:     eng,
		out:     ep,
		flow:    flow,
		pending: make(map[int64]sim.Timer),
	}
	ep.Register(flow, netem.ReceiverFunc(p.onEcho))
	return p
}

// Start begins periodic probing.
func (p *Prober) Start() {
	if p.running {
		return
	}
	p.running = true
	p.tick()
}

// Stop halts probing. Outstanding probes still count as losses when their
// timeout fires, so call Window only after quiescence or accept the
// in-flight skew.
func (p *Prober) Stop() {
	p.running = false
	p.tickTimer.Cancel()
}

// Running reports whether the prober is active.
func (p *Prober) Running() bool { return p.running }

func (p *Prober) tick() {
	if !p.running {
		return
	}
	seq := p.nextSeq
	p.nextSeq++
	p.sent++
	pkt := p.out.NewPacket()
	pkt.Flow = p.flow
	pkt.Kind = netem.KindProbe
	pkt.Size = p.cfg.ProbeSize
	pkt.Seq = seq
	p.out.Send(pkt)
	p.pending[seq] = p.eng.Schedule(p.cfg.LossTimeout, func() {
		// Timeout: the probe (or its echo) was lost. The counter already
		// includes it in sent; removing it from pending marks the loss.
		delete(p.pending, seq)
	})
	p.tickTimer = p.eng.Schedule(p.cfg.Interval, p.tick)
}

func (p *Prober) onEcho(pkt *netem.Packet) {
	if pkt.Kind != netem.KindEcho {
		p.out.ReleasePacket(pkt)
		return
	}
	seq, sentAt := pkt.Seq, pkt.SentAt
	p.out.ReleasePacket(pkt)
	timer, ok := p.pending[seq]
	if !ok {
		return // echo arrived after its loss timeout; counted as lost
	}
	timer.Cancel()
	delete(p.pending, seq)
	rtt := p.eng.Now() - sentAt
	p.received++
	p.rttSum += rtt
	if p.rttMin == 0 || rtt < p.rttMin {
		p.rttMin = rtt
	}
	if rtt > p.rttMax {
		p.rttMax = rtt
	}
}

// Window snapshots the statistics accumulated since the last Window (or
// Start) and resets the counters. Probes still in flight carry over into
// the next window.
func (p *Prober) Window() Result {
	res := Result{
		Sent:     p.sent,
		Received: p.received,
		MinRTT:   p.rttMin,
		MaxRTT:   p.rttMax,
	}
	if p.received > 0 {
		res.MeanRTT = p.rttSum / float64(p.received)
	}
	// Only probes that were resolved (echoed or timed out) contribute to
	// the loss rate; in-flight probes are excluded from both counts.
	resolved := p.sent - len(p.pending)
	if resolved > 0 {
		res.LossRate = float64(resolved-p.received) / float64(resolved)
		res.Sent = resolved
	}
	p.sent = len(p.pending)
	p.received = 0
	p.rttSum, p.rttMin, p.rttMax = 0, 0, 0
	return res
}

// Measure runs a fresh prober for duration seconds and returns the window.
// It is a convenience for one-shot measurements; the prober is stopped and
// deregistered afterwards (the responder for the flow must already exist).
func Measure(eng *sim.Engine, ep *netem.Endpoint, flow netem.FlowID, cfg Config, duration float64) Result {
	p := NewProber(eng, ep, flow, cfg)
	p.Start()
	eng.RunUntil(eng.Now() + duration)
	p.Stop()
	// Let stragglers resolve so the loss rate is well-defined.
	eng.RunUntil(eng.Now() + cfg.Defaults().LossTimeout + 0.001)
	res := p.Window()
	ep.Register(flow, nil)
	return res
}
