package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/predict"
	"repro/internal/testbed"
)

// synthDataset fabricates a small dataset with known properties so the
// experiment runners can be tested without running the simulator.
func synthDataset() *testbed.Dataset {
	mkRec := func(path, class string, ep int, pre, dur, tput float64, preLoss float64) testbed.EpochRecord {
		return testbed.EpochRecord{
			Path: path, Class: class, Epoch: ep,
			AvailBw: tput * 1.1, AvailBwTrue: tput,
			PreRTT: pre, DurRTT: dur,
			PreLoss: preLoss, DurLoss: preLoss * 3,
			Throughput: tput, FlowRTT: dur, FlowLoss: preLoss * 4,
			FlowEventRate:      preLoss / 2,
			SmallThroughput:    tput / 3,
			SmallWindowBytes:   20 * 1024,
			SmallWindowLimited: true,
			Checkpoints:        []float64{tput * 0.9, tput * 0.95},
		}
	}
	var ds testbed.Dataset
	ds.Label = "synth"
	for p := 0; p < 3; p++ {
		for trIdx := 0; trIdx < 2; trIdx++ {
			tr := testbed.Trace{Path: pathName(p), Class: "us", Index: trIdx}
			for ep := 0; ep < 30; ep++ {
				tput := 2e6 + float64(p)*1e6 + float64(ep%5)*1e5
				loss := 0.0
				if p == 2 {
					loss = 0.01
				}
				tr.Records = append(tr.Records,
					mkRec(pathName(p), "us", ep, 0.05, 0.06, tput, loss))
			}
			ds.Traces = append(ds.Traces, tr)
		}
	}
	return &ds
}

func pathName(i int) string {
	return string(rune('a'+i)) + "-path"
}

func TestEvalFBCoversAllEpochs(t *testing.T) {
	ds := synthDataset()
	evals := EvalFB(ds, predict.ModelPFTK, SourcePre, 0)
	if len(evals) != ds.Epochs() {
		t.Fatalf("evaluations %d, want %d", len(evals), ds.Epochs())
	}
	lossy := 0
	for _, e := range evals {
		if e.Lossy {
			lossy++
		}
		if math.IsNaN(e.Err) {
			t.Fatal("NaN error")
		}
	}
	if lossy != 60 { // path c: 2 traces × 30 epochs
		t.Errorf("lossy evals %d, want 60", lossy)
	}
}

func TestEvalFBSources(t *testing.T) {
	ds := synthDataset()
	pre := EvalFB(ds, predict.ModelPFTK, SourcePre, 0)
	dur := EvalFB(ds, predict.ModelPFTK, SourceDuring, 0)
	// DurLoss = 3×PreLoss, so lossy predictions from in-flow inputs must
	// be lower (more pessimistic).
	for i := range pre {
		if pre[i].Lossy && dur[i].Pred >= pre[i].Pred {
			t.Fatalf("in-flow input should predict less: %v vs %v", dur[i].Pred, pre[i].Pred)
		}
	}
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	ds := synthDataset()
	results := All(ds, 2)
	if len(results) < 25 {
		t.Fatalf("only %d experiments", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if r.ID == "" || r.Title == "" {
			t.Errorf("experiment missing ID/title: %+v", r)
		}
		if seen[r.ID] {
			t.Errorf("duplicate experiment ID %s", r.ID)
		}
		seen[r.ID] = true
		if len(r.Tables) == 0 {
			t.Errorf("%s produced no tables", r.ID)
		}
		for _, tab := range r.Tables {
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("%s: row width %d != %d columns", r.ID, len(row), len(tab.Columns))
				}
			}
		}
	}
	for _, id := range []string{"fig2", "fig8", "fig16", "fig20", "fig23", "summary"} {
		if !seen[id] {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestResultFormat(t *testing.T) {
	var sb strings.Builder
	res := Result{
		ID:    "test",
		Title: "A test",
		Notes: []string{"note"},
		Tables: []Table{{
			Title:   "tbl",
			Columns: []string{"a", "b"},
			Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		}},
	}
	res.Format(&sb)
	out := sb.String()
	for _, want := range []string{"== test: A test ==", "note", "tbl", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestFig2SplitsLossyLossless(t *testing.T) {
	res := Fig2(synthDataset())
	tab := res.Tables[0]
	if len(tab.Columns) != 4 { // stat + all/lossy/lossless
		t.Fatalf("columns = %v", tab.Columns)
	}
	// The n row: 180 total, 60 lossy, 120 lossless.
	last := tab.Rows[len(tab.Rows)-1]
	if last[1] != "180" || last[2] != "60" || last[3] != "120" {
		t.Errorf("n row = %v", last)
	}
}

func TestFig11UsesCheckpoints(t *testing.T) {
	ds := synthDataset()
	res := Fig11(ds, []float64{15, 30}, 60)
	tab := res.Tables[0]
	if len(tab.Columns) != 4 { // stat, 15s, 30s, 60s(full)
		t.Fatalf("columns = %v", tab.Columns)
	}
}

func TestFig15Standalone(t *testing.T) {
	res := Fig15()
	if len(res.Tables[0].Rows) < 10 {
		t.Errorf("fig15 has %d predictor rows", len(res.Tables[0].Rows))
	}
}

func TestFig20CorrelationOnSynthetic(t *testing.T) {
	// The synthetic series are deterministic per path; CoV and RMSRE are
	// both small and positively related. Just assert sane output.
	res := Fig20(synthDataset())
	if len(res.Series) == 0 || len(res.Series[0].X) == 0 {
		t.Fatal("fig20 produced no scatter")
	}
	for _, v := range res.Series[0].X {
		if v < 0 || math.IsNaN(v) {
			t.Errorf("bad CoV value %v", v)
		}
	}
}

func TestSummaryHasAllMetrics(t *testing.T) {
	res := SummaryTable(synthDataset())
	if len(res.Tables[0].Rows) < 7 {
		t.Errorf("summary rows = %d", len(res.Tables[0].Rows))
	}
}

func TestRelErrFloorsZeroThroughput(t *testing.T) {
	e := relErr(1e6, 0)
	if math.IsInf(e, 0) || math.IsNaN(e) {
		t.Errorf("relErr with zero actual = %v, want finite (floored)", e)
	}
	if e < 100 {
		t.Errorf("relErr(1 Mbps, 0) = %v, want large", e)
	}
}

func TestClampErrs(t *testing.T) {
	got := clampErrs([]float64{-1e18, -1, 0, 1, 1e18})
	want := []float64{-errClamp, -1, 0, 1, errClamp}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("clampErrs[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHBPerTraceRMSRESmallSeries(t *testing.T) {
	ds := &testbed.Dataset{Traces: []testbed.Trace{{Path: "x", Records: nil}}}
	got := hbPerTraceRMSRE(ds, func() predict.HB { return predict.NewMA(5) }, false)
	if len(got) != 0 {
		t.Errorf("empty trace should be skipped, got %v", got)
	}
}
