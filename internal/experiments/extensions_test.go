package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtensionsProduceOutput(t *testing.T) {
	ds := synthDataset()
	results := Extensions(ds)
	if len(results) != 6 {
		t.Fatalf("extensions = %d, want 6", len(results))
	}
	ids := map[string]bool{}
	for _, r := range results {
		ids[r.ID] = true
		if len(r.Tables) == 0 || len(r.Tables[0].Rows) == 0 {
			t.Errorf("%s produced no table rows", r.ID)
		}
	}
	for _, want := range []string{"ext-ar", "ext-hybrid", "ext-nws", "ext-stationarity", "ext-short-transfers", "ext-zoo"} {
		if !ids[want] {
			t.Errorf("missing extension %s", want)
		}
	}
}

func TestExtHybridBeatsFBOnBiasedPaths(t *testing.T) {
	// The synthetic dataset has avail-bw ≈ 1.1×R on lossless paths, so FB
	// consistently overestimates ~10%; the hybrid must learn that away.
	res := ExtHybrid(synthDataset())
	tab := res.Tables[0]
	// Find the P50 row: FB col 1, hybrid col 2.
	for _, row := range tab.Rows {
		if row[0] == "P50" {
			fb, _ := strconv.ParseFloat(row[1], 64)
			hy, _ := strconv.ParseFloat(row[2], 64)
			if hy > fb {
				t.Errorf("hybrid median %v worse than FB %v on constant-bias data", hy, fb)
			}
			return
		}
	}
	t.Fatal("no P50 row")
}

func TestExtNWSCorrectionHelps(t *testing.T) {
	// Synthetic small-window throughput is exactly R/3, so the ratio
	// correction should nearly eliminate the probe error.
	res := ExtNWSProbes(synthDataset())
	tab := res.Tables[0]
	for _, row := range tab.Rows {
		if row[0] == "P50" {
			raw, _ := strconv.ParseFloat(row[1], 64)
			corr, _ := strconv.ParseFloat(row[2], 64)
			if corr >= raw {
				t.Errorf("corrected probe RMSRE %v not below raw %v", corr, raw)
			}
			return
		}
	}
	t.Fatal("no P50 row")
}

func TestExtShortTransfersShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates transfers; skipped in -short mode")
	}
	res := ExtShortTransfers(99)
	tab := res.Tables[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// At the smallest size, the short-transfer model must beat bulk PFTK;
	// the slow-start fraction must decrease with size.
	first := tab.Rows[0]
	shortE, _ := strconv.ParseFloat(first[1], 64)
	bulkE, _ := strconv.ParseFloat(first[2], 64)
	if shortE >= bulkE {
		t.Errorf("16KB: short model |E| %v not below bulk %v", shortE, bulkE)
	}
	prevFrac := 2.0
	for _, row := range tab.Rows {
		frac, _ := strconv.ParseFloat(row[3], 64)
		if frac > prevFrac+1e-9 {
			t.Errorf("slow-start fraction not decreasing: %v after %v", frac, prevFrac)
		}
		prevFrac = frac
	}
}

func TestExtARRunsAllVariants(t *testing.T) {
	res := ExtAR(synthDataset())
	if !strings.Contains(res.Tables[0].Columns[3], "AR(1)") {
		t.Errorf("columns = %v", res.Tables[0].Columns)
	}
}

func TestExtZooTournament(t *testing.T) {
	res := ExtZoo(synthDataset())
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %d, want 2 (CDF + tournament)", len(res.Tables))
	}
	tour := res.Tables[1]
	if len(tour.Rows) != 7 {
		t.Fatalf("tournament rows = %d, want 7 families", len(tour.Rows))
	}
	// Every trace crowns exactly one winner: wins sum to the trace count.
	wins := 0
	for _, row := range tour.Rows {
		w, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("wins column %q: %v", row[1], err)
		}
		wins += w
		// Coverage, when reported, is a fraction.
		if row[3] != "-" {
			c, err := strconv.ParseFloat(row[3], 64)
			if err != nil || c < 0 || c > 1 {
				t.Errorf("%s coverage %q out of [0,1]", row[0], row[3])
			}
		}
	}
	if wins != 6 {
		t.Errorf("total wins = %d, want 6 (one per synthetic trace)", wins)
	}
}

func TestExtStationarityCountsTraces(t *testing.T) {
	res := ExtStationarity(synthDataset())
	// 6 traces in the synthetic dataset, all ≥10 samples: every trace must
	// be classified into exactly one bucket.
	nRow := res.Tables[0].Rows[len(res.Tables[0].Rows)-1]
	a, _ := strconv.Atoi(nRow[1])
	b, _ := strconv.Atoi(nRow[2])
	if a+b != 6 {
		t.Errorf("classified %d+%d traces, want 6", a, b)
	}
}
