package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSV exports a result's tables and series as CSV files under dir:
// <id>.csv for the first table, <id>-<n>.csv for subsequent ones, and
// <id>-series-<name>.csv for each series — ready for gnuplot/matplotlib,
// so the paper's figures can be re-plotted from a reproduction run.
func WriteCSV(dir string, res Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for i, tab := range res.Tables {
		name := res.ID + ".csv"
		if i > 0 {
			name = fmt.Sprintf("%s-%d.csv", res.ID, i)
		}
		if err := writeTableCSV(filepath.Join(dir, name), tab); err != nil {
			return err
		}
	}
	for _, s := range res.Series {
		name := fmt.Sprintf("%s-series-%s.csv", res.ID, sanitize(s.Name))
		if err := writeSeriesCSV(filepath.Join(dir, name), s); err != nil {
			return err
		}
	}
	return nil
}

// WriteAllCSV exports every result.
func WriteAllCSV(dir string, results []Result) error {
	for _, res := range results {
		if err := WriteCSV(dir, res); err != nil {
			return err
		}
	}
	return nil
}

func writeTableCSV(path string, tab Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(tab.Columns); err != nil {
		return fmt.Errorf("experiments: %s: %w", path, err)
	}
	for _, row := range tab.Rows {
		if err := w.Write(row); err != nil {
			return fmt.Errorf("experiments: %s: %w", path, err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("experiments: %s: %w", path, err)
	}
	return f.Close()
}

func writeSeriesCSV(path string, s Series) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"x", "y"}); err != nil {
		return fmt.Errorf("experiments: %s: %w", path, err)
	}
	n := len(s.X)
	if len(s.Y) < n {
		n = len(s.Y)
	}
	for i := 0; i < n; i++ {
		if err := w.Write([]string{
			strconv.FormatFloat(s.X[i], 'g', 8, 64),
			strconv.FormatFloat(s.Y[i], 'g', 8, 64),
		}); err != nil {
			return fmt.Errorf("experiments: %s: %w", path, err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("experiments: %s: %w", path, err)
	}
	return f.Close()
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// WriteTo renders every result to one writer (convenience for logs).
func WriteTo(w io.Writer, results []Result) {
	for _, res := range results {
		res.Format(w)
	}
}
