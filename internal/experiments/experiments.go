// Package experiments reproduces every figure and table of the paper's
// evaluation from a collected testbed dataset. Each FigNN function returns
// a Result whose tables/series correspond to the published plot; cmd/repro
// renders them and EXPERIMENTS.md records the paper-vs-measured
// comparison.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/predict"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Series is a named list of (x, y) points (CDF curves, scatter plots).
type Series struct {
	Name string
	X, Y []float64
}

// Table is a printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Result is one experiment's output.
type Result struct {
	ID     string // e.g. "fig2"
	Title  string
	Notes  []string
	Tables []Table
	Series []Series
}

// Format renders the result as readable text.
func (r Result) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   %s\n", n)
	}
	for _, t := range r.Tables {
		if t.Title != "" {
			fmt.Fprintf(w, "-- %s --\n", t.Title)
		}
		widths := make([]int, len(t.Columns))
		for i, c := range t.Columns {
			widths[i] = len(c)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		var b strings.Builder
		for i, c := range t.Columns {
			fmt.Fprintf(&b, "%-*s ", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		for _, row := range t.Rows {
			b.Reset()
			for i, cell := range row {
				width := len(cell)
				if i < len(widths) {
					width = widths[i]
				}
				fmt.Fprintf(&b, "%-*s ", width, cell)
			}
			fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		}
	}
	fmt.Fprintln(w)
}

// minThroughputBps floors measured throughput when computing relative
// errors, so a (rare) zero-byte transfer yields a large finite error
// instead of an infinite one.
const minThroughputBps = 1e3

// errClamp bounds |E| in RMSRE aggregation; a single pathological epoch
// then contributes at most errClamp² to the mean square.
const errClamp = 50.0

// relErr computes the paper's Eq. (4) with the throughput floor applied to
// both operands.
func relErr(pred, actual float64) float64 {
	if pred < minThroughputBps {
		pred = minThroughputBps
	}
	if actual < minThroughputBps {
		actual = minThroughputBps
	}
	return stats.RelativeError(pred, actual)
}

// FBSource selects which measurements feed the FB formula, mirroring the
// paper's comparisons.
type FBSource int

// FB input sources.
const (
	SourcePre      FBSource = iota // T̂, p̂, Â — measured before the flow (Eq. 3)
	SourceDuring                   // T̃, p̃ — periodic probing during the flow (§4.2.3)
	SourceFlow                     // T, p — what the flow itself experienced
	SourceFlowCER                  // T, p′ — flow RTT and congestion-event rate
	SourceSmoothed                 // MA(10)-smoothed T̂, p̂ (§4.2.10)
)

// fbInputs extracts the inputs for a record. For SourceSmoothed the caller
// must provide pre-smoothed values via the history maps.
func fbInputs(rec testbed.EpochRecord, src FBSource) predict.FBInputs {
	switch src {
	case SourceDuring:
		return predict.FBInputs{RTT: rec.DurRTT, LossRate: rec.DurLoss, AvailBw: rec.AvailBw}
	case SourceFlow:
		return predict.FBInputs{RTT: rec.FlowRTT, LossRate: rec.FlowLoss, AvailBw: rec.AvailBw}
	case SourceFlowCER:
		return predict.FBInputs{RTT: rec.FlowRTT, LossRate: rec.FlowEventRate, AvailBw: rec.AvailBw}
	default:
		return predict.FBInputs{RTT: rec.PreRTT, LossRate: rec.PreLoss, AvailBw: rec.AvailBw}
	}
}

// FBEval is one epoch's FB prediction and error.
type FBEval struct {
	Rec   testbed.EpochRecord
	Pred  float64 // R̂, bps
	Err   float64 // E
	Lossy bool    // PFTK branch used (p̂ > 0)
}

// EvalFB runs the FB predictor over every epoch of the dataset.
func EvalFB(ds *testbed.Dataset, model predict.Model, src FBSource, windowBytes int) []FBEval {
	if windowBytes == 0 {
		windowBytes = 1 << 20
	}
	fb := predict.NewFB(predict.FBConfig{Model: model, MaxWindowBytes: windowBytes})
	var out []FBEval
	for _, tr := range ds.Traces {
		for _, rec := range tr.Records {
			in := fbInputs(rec, src)
			pred := fb.Predict(in)
			out = append(out, FBEval{
				Rec:   rec,
				Pred:  pred,
				Err:   relErr(pred, rec.Throughput),
				Lossy: in.LossRate > 0,
			})
		}
	}
	return out
}

// EvalFBSmoothed runs FB with MA(n)-smoothed RTT and loss inputs per path
// (paper §4.2.10): the inputs for epoch i are the moving averages of the
// previous n epochs' pre-flow measurements including epoch i's own.
func EvalFBSmoothed(ds *testbed.Dataset, model predict.Model, n int, windowBytes int) []FBEval {
	if windowBytes == 0 {
		windowBytes = 1 << 20
	}
	fb := predict.NewFB(predict.FBConfig{Model: model, MaxWindowBytes: windowBytes})
	var out []FBEval
	for _, tr := range ds.Traces {
		rttMA := predict.NewMA(n)
		lossMA := predict.NewMA(n)
		for _, rec := range tr.Records {
			rttMA.Observe(rec.PreRTT)
			lossMA.Observe(rec.PreLoss)
			rtt, _ := rttMA.Predict()
			loss, _ := lossMA.Predict()
			in := predict.FBInputs{RTT: rtt, LossRate: loss, AvailBw: rec.AvailBw}
			pred := fb.Predict(in)
			out = append(out, FBEval{
				Rec:   rec,
				Pred:  pred,
				Err:   relErr(pred, rec.Throughput),
				Lossy: in.LossRate > 0,
			})
		}
	}
	return out
}

// Errors extracts the error values from evaluations.
func Errors(evals []FBEval) []float64 {
	out := make([]float64, len(evals))
	for i, e := range evals {
		out[i] = e.Err
	}
	return out
}

// cdfTable renders the quantiles of several error samples side by side,
// plus the paper's headline exceedance fractions.
func cdfTable(title string, names []string, samples [][]float64) Table {
	qs := []float64{5, 10, 25, 50, 75, 90, 95}
	t := Table{Title: title, Columns: append([]string{"stat"}, names...)}
	for _, q := range qs {
		row := []string{fmt.Sprintf("P%02.0f", q)}
		for _, s := range samples {
			row = append(row, fmt.Sprintf("%.3f", stats.Percentile(s, q)))
		}
		t.Rows = append(t.Rows, row)
	}
	for _, th := range []float64{1, 9} {
		row := []string{fmt.Sprintf("frac |E|>%g", th)}
		for _, s := range samples {
			row = append(row, fmt.Sprintf("%.3f", stats.FractionAbove(s, th)))
		}
		t.Rows = append(t.Rows, row)
	}
	row := []string{"frac E>1 (over)"}
	for _, s := range samples {
		n := 0
		for _, e := range s {
			if e > 1 {
				n++
			}
		}
		row = append(row, fmt.Sprintf("%.3f", safeFrac(n, len(s))))
	}
	t.Rows = append(t.Rows, row)
	row = []string{"frac E<-1 (under)"}
	for _, s := range samples {
		n := 0
		for _, e := range s {
			if e < -1 {
				n++
			}
		}
		row = append(row, fmt.Sprintf("%.3f", safeFrac(n, len(s))))
	}
	t.Rows = append(t.Rows, row)
	row = []string{"n"}
	for _, s := range samples {
		row = append(row, fmt.Sprintf("%d", len(s)))
	}
	t.Rows = append(t.Rows, row)
	return t
}

func safeFrac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

func cdfSeries(name string, sample []float64) Series {
	cdf := stats.NewCDF(sample)
	pts := cdf.Points(50)
	s := Series{Name: name}
	for _, p := range pts {
		s.X = append(s.X, p[0])
		s.Y = append(s.Y, p[1])
	}
	return s
}
