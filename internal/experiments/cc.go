package experiments

import (
	"fmt"
	"math"

	"repro/internal/predict"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// ccFamilies is the zoo scored across the scenario matrix — the same
// seven families ExtZoo runs on the primary dataset, so the Reno/droptail
// cell is directly comparable to the paper-regime numbers.
var ccFamilies = []string{"10-MA-LSO", "0.8-EWMA-LSO", "0.8-HW-LSO", "switcher", "FB", "regression", "ECM"}

const ccIdxFB = 4

// ccCell is one (sender × link) scenario of the matrix.
type ccCell struct {
	cc   string
	link string
}

// ccCellOrder returns the canonical presentation order: link-major, with
// the sender axis in reno, cubic, bbr order — so each link's block reads
// as "how does the same substrate respond as the sender modernizes".
func ccCellOrder() []ccCell {
	var out []ccCell
	for _, link := range testbed.DefaultLinks() {
		for _, cc := range testbed.DefaultSenders() {
			out = append(out, ccCell{cc: string(cc), link: string(link)})
		}
	}
	return out
}

// ExtCC scores every predictor family across the (sender × link)
// scenario matrix of a scenario dataset (collected with ronsim
// -scenarios). The per-trace protocol is ExtZoo's: each family sees the
// same epoch stream — pre-flow measurements, then the achieved
// throughput — and is scored on RMSRE with training online.
//
// The experiment exists to answer one question the paper could not ask
// in 2005: the FB predictor encodes Reno's loss response (throughput ~
// MSS/(RTT·√p) with an RTO correction), so what happens when the sender
// is CUBIC (growth detached from RTT) or BBR (throughput detached from p
// entirely)? History-based families never look inside the sender, so
// they provide the control group.
func ExtCC(ds *testbed.Dataset) Result {
	n := len(ccFamilies)
	// Per-cell, per-family slices of per-trace RMSREs.
	rmsres := make(map[ccCell][][]float64)
	traces := make(map[ccCell]int)

	for _, tr := range ds.Traces {
		if len(tr.Records) < 5 {
			continue
		}
		cell := ccCell{cc: tr.Records[0].CC, link: tr.Records[0].Link}
		if cell.cc == "" || cell.link == "" {
			continue // not a scenario trace
		}
		if rmsres[cell] == nil {
			rmsres[cell] = make([][]float64, n)
		}
		traces[cell]++
		errs := ccScoreTrace(tr)
		for i := 0; i < n; i++ {
			if len(errs[i]) == 0 {
				continue
			}
			v := stats.RMSRE(clampErrs(errs[i]), errClamp)
			rmsres[cell][i] = append(rmsres[cell][i], v)
		}
	}

	matrix := Table{
		Title:   "median per-trace RMSRE by (sender × link) scenario",
		Columns: append([]string{"scenario", "traces", "best"}, ccFamilies...),
	}
	fbByLink := map[string]map[string]float64{} // link → cc → FB median RMSRE
	for _, cell := range ccCellOrder() {
		per := rmsres[cell]
		if per == nil {
			continue
		}
		row := []string{cell.cc + "/" + cell.link, fmt.Sprintf("%d", traces[cell])}
		best, bestV := "-", math.Inf(1)
		vals := make([]string, 0, n)
		for i := 0; i < n; i++ {
			if len(per[i]) == 0 {
				vals = append(vals, "-")
				continue
			}
			v := stats.Median(per[i])
			vals = append(vals, fmt.Sprintf("%.2f", v))
			if v < bestV {
				best, bestV = ccFamilies[i], v
			}
		}
		row = append(row, best)
		row = append(row, vals...)
		matrix.Rows = append(matrix.Rows, row)
		if len(per[ccIdxFB]) > 0 {
			if fbByLink[cell.link] == nil {
				fbByLink[cell.link] = map[string]float64{}
			}
			fbByLink[cell.link][cell.cc] = stats.Median(per[ccIdxFB])
		}
	}

	// FB degradation: per link, the ratio of FB's median RMSRE under
	// CUBIC/BBR to its Reno baseline on the identical substrate.
	degrade := Table{
		Title:   "FB median RMSRE vs the Reno baseline on the same substrate",
		Columns: []string{"link", "reno", "cubic", "bbr", "cubic/reno", "bbr/reno"},
	}
	for _, link := range testbed.DefaultLinks() {
		m := fbByLink[string(link)]
		if m == nil {
			continue
		}
		ratio := func(cc string) string {
			v, ok := m[cc]
			if !ok {
				return "-"
			}
			if cc == "reno" || m["reno"] <= 0 {
				return fmt.Sprintf("%.2f", v)
			}
			return fmt.Sprintf("%.2fx", v/m["reno"])
		}
		degrade.Rows = append(degrade.Rows, []string{
			string(link),
			fmt.Sprintf("%.2f", m["reno"]),
			fmt.Sprintf("%.2f", m["cubic"]),
			fmt.Sprintf("%.2f", m["bbr"]),
			ratio("cubic"),
			ratio("bbr"),
		})
	}

	return Result{
		ID:    "ext-cc",
		Title: "Extension: predictor zoo across the CC × link scenario matrix",
		Notes: []string{
			"scenario paths share their substrate across senders: cc-<sender>-<link>-p<i> differ only in the congestion control;",
			"FB encodes Reno's loss response, so its error under cubic/bbr isolates formula-model mismatch;",
			"history-based families (MA/EWMA/HW/switcher) never inspect the sender and act as the control group",
		},
		Tables: []Table{matrix, degrade},
	}
}

// ccScoreTrace runs the zoo's online train/predict protocol over one
// trace and returns the per-family relative-error series.
func ccScoreTrace(tr testbed.Trace) [][]float64 {
	n := len(ccFamilies)
	lso := predict.DefaultLSOConfig()
	fb := predict.NewFB(predict.FBConfig{})
	reg := predict.NewRegression(predict.RegressionConfig{})
	ecm := predict.NewECM(predict.ECMConfig{})
	trained := []predict.HB{
		predict.NewLSO(predict.NewMA(10), lso),
		predict.NewLSO(predict.NewEWMA(0.8), lso),
		predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), lso),
		predict.NewStabilitySwitcher(predict.NewEWMA(0.8), predict.NewMA(10), predict.SwitcherConfig{}),
		reg,
		ecm,
	}
	errs := make([][]float64, n)
	for _, rec := range tr.Records {
		in := predict.FBInputs{RTT: rec.PreRTT, LossRate: rec.PreLoss, AvailBw: rec.AvailBw}
		reg.SetFeatures(in)
		ecm.SetConditions(in)
		for i := 0; i < n; i++ {
			var f float64
			var ok bool
			if i == ccIdxFB {
				f = fb.Predict(in)
				ok = f > 0
			} else {
				idx := i
				if i > ccIdxFB {
					idx = i - 1 // FB is not in trained; shift past it
				}
				f, ok = trained[idx].Predict()
			}
			if !ok || f <= 0 {
				continue
			}
			errs[i] = append(errs[i], relErr(f, rec.Throughput))
		}
		for _, hb := range trained {
			hb.Observe(rec.Throughput)
		}
	}
	return errs
}
