package experiments

import (
	"fmt"
	"math"

	"repro/internal/predict"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// ExtZoo scores the full predictor zoo — the paper's LSO-wrapped HB trio,
// the stability-aware switcher (Sun et al.), the formula-based predictor,
// the online feature regression (Vazhkudai & Schopf style) and the
// empirical conditional method — offline over every trace of the primary
// dataset, with the pre-flow measurements of each epoch feeding the
// measurement-conditioned families exactly as the serving layer would.
//
// Three views come out: the per-trace RMSRE CDF per family, a tournament
// table (how often each family is the per-trace best, i.e. what an oracle
// selector would pick), and the empirical coverage of each family's
// [p10,p90] interval forecasts — residual-window quantiles for the point
// predictors, native conditional quantiles for the ECM.
func ExtZoo(ds *testbed.Dataset) Result {
	names := []string{"10-MA-LSO", "0.8-EWMA-LSO", "0.8-HW-LSO", "switcher", "FB", "regression", "ECM"}
	const (
		idxFB  = 4
		idxReg = 5
		idxECM = 6
	)
	n := len(names)
	rmsres := make([][]float64, n)
	wins := make([]int, n)
	covIn := make([]int, n)
	covTotal := make([]int, n)

	for _, tr := range ds.Traces {
		if len(tr.Records) < 5 {
			continue
		}
		lso := predict.DefaultLSOConfig()
		fb := predict.NewFB(predict.FBConfig{})
		reg := predict.NewRegression(predict.RegressionConfig{})
		ecm := predict.NewECM(predict.ECMConfig{})
		// Every non-FB family trains on each observation; FB only reads
		// the pre-flow measurements.
		trained := []predict.HB{
			predict.NewLSO(predict.NewMA(10), lso),
			predict.NewLSO(predict.NewEWMA(0.8), lso),
			predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), lso),
			predict.NewStabilitySwitcher(predict.NewEWMA(0.8), predict.NewMA(10), predict.SwitcherConfig{}),
			reg,
			ecm,
		}
		errs := make([][]float64, n)
		windows := make([]*predict.ResidualWindow, n)
		for i := range windows {
			windows[i] = predict.NewResidualWindow(50, 0)
		}
		for _, rec := range tr.Records {
			in := predict.FBInputs{RTT: rec.PreRTT, LossRate: rec.PreLoss, AvailBw: rec.AvailBw}
			reg.SetFeatures(in)
			ecm.SetConditions(in)

			forecast := func(i int) (float64, bool) {
				if i == idxFB {
					f := fb.Predict(in)
					return f, f > 0
				}
				idx := i
				if i > idxFB {
					idx = i - 1 // FB is not in trained; shift past it
				}
				return trained[idx].Predict()
			}
			for i := 0; i < n; i++ {
				f, ok := forecast(i)
				if !ok || f <= 0 {
					continue
				}
				errs[i] = append(errs[i], relErr(f, rec.Throughput))
				// Interval coverage, scored before this epoch's error
				// enters the calibration window.
				q, qok := windows[i].QuantilesFor(f)
				if i == idxECM {
					q, qok = ecm.PredictQuantiles()
				}
				if qok {
					covTotal[i]++
					if rec.Throughput >= q.P10 && rec.Throughput <= q.P90 {
						covIn[i]++
					}
				}
				windows[i].Score(f, rec.Throughput)
			}
			for _, hb := range trained {
				hb.Observe(rec.Throughput)
			}
		}
		best, bestV := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if len(errs[i]) == 0 {
				continue
			}
			v := stats.RMSRE(clampErrs(errs[i]), errClamp)
			rmsres[i] = append(rmsres[i], v)
			if v < bestV {
				best, bestV = i, v
			}
		}
		if best >= 0 {
			wins[best]++
		}
	}

	tournament := Table{
		Title:   "oracle tournament: per-trace wins and [p10,p90] interval coverage (nominal 0.80)",
		Columns: []string{"family", "wins", "median RMSRE", "coverage", "intervals"},
	}
	for i, name := range names {
		cov := "-"
		if covTotal[i] > 0 {
			cov = fmt.Sprintf("%.2f", float64(covIn[i])/float64(covTotal[i]))
		}
		tournament.Rows = append(tournament.Rows, []string{
			name,
			fmt.Sprintf("%d", wins[i]),
			fmt.Sprintf("%.2f", stats.Median(rmsres[i])),
			cov,
			fmt.Sprintf("%d", covTotal[i]),
		})
	}
	return Result{
		ID:    "ext-zoo",
		Title: "Extension: predictor-zoo tournament — regression & ECM families, quantile calibration",
		Notes: []string{
			"every family sees the same per-epoch stream: pre-flow measurements, then the achieved throughput;",
			"wins = traces where the family has the lowest RMSRE (the best-in-hindsight an online selector chases);",
			"coverage = fraction of actuals inside the family's [p10,p90] forecast interval once calibrated",
		},
		Tables: []Table{
			cdfTable("per-trace RMSRE quantiles", names, rmsres),
			tournament,
		},
	}
}
